# CI and humans invoke identical commands: .github/workflows/ci.yml runs
# `make lint build test race bench sweep-smoke serve-smoke coord-smoke
# refine-smoke churn-smoke docs-check` in the main job, `make staticcheck vuln` for the deeper
# static and vulnerability scans, and `make bench-json bench-compare`
# in the bench-compare job — and nothing else.

GO ?= go

# Steadier perf numbers: every bench entry runs 3x its base iterations.
BENCH_ITERS_SCALE ?= 3

.PHONY: build test race bench bench-json bench-compare bench-baseline fmt lint staticcheck vuln ci sweep-smoke serve-smoke coord-smoke refine-smoke churn-smoke docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark as a smoke test; drop -benchtime for
# real measurements (the Serial/Parallel pairs report the pool speedup).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The JSON perf harness over the canonical pinned-seed corpus; see
# README "Performance" for the schema and the regression-gating rules.
bench-json:
	$(GO) run ./cmd/bench -iters-scale $(BENCH_ITERS_SCALE) -o BENCH_results.json

# Gate BENCH_results.json against the committed baseline: fails on >20%
# calibration-normalized median-ns/op growth (entries sub-10us on both
# sides exempt), allocs/op growth beyond the noise floor on any
# alloc-gated entry, or unmatched entries (dropped benchmarks, or new
# alloc-gated ones the baseline does not cover yet).
bench-compare:
	$(GO) run ./cmd/bench -compare -ns-threshold 0.20 BENCH_baseline.json BENCH_results.json

# Refresh the committed baseline after an intentional perf change.
bench-baseline:
	$(GO) run ./cmd/bench -iters-scale $(BENCH_ITERS_SCALE) -o BENCH_baseline.json

# Distributed-sweep smoke test: compute fig2a as two shards, merge the
# shard cell files, and require the merged .dat to be byte-identical to
# an unsharded run — the Grid engine's sharding contract, end to end
# through the real CLI.
SWEEP_SMOKE_DIR ?= .sweep-smoke
sweep-smoke:
	rm -rf $(SWEEP_SMOKE_DIR)
	$(GO) run ./cmd/experiments -seeds 2 -only fig2a -workers 2 -out $(SWEEP_SMOKE_DIR)/full >/dev/null
	$(GO) run ./cmd/experiments -seeds 2 -only fig2a -workers 2 -shard 0/2 -out $(SWEEP_SMOKE_DIR)/shards >/dev/null
	$(GO) run ./cmd/experiments -seeds 2 -only fig2a -workers 2 -shard 1/2 -out $(SWEEP_SMOKE_DIR)/shards >/dev/null
	$(GO) run ./cmd/experiments -seeds 2 -only fig2a -merge 2 -out $(SWEEP_SMOKE_DIR)/shards >/dev/null
	cmp $(SWEEP_SMOKE_DIR)/full/fig2a.dat $(SWEEP_SMOKE_DIR)/shards/fig2a.dat
	@echo "sweep-smoke: sharded merge byte-identical to the unsharded run"
	rm -rf $(SWEEP_SMOKE_DIR)

# Allocation-daemon smoke test: build cmd/serve, boot it on an
# ephemeral port, hit /healthz, /v1/solve and /v1/verify over real
# HTTP, diff the responses against the goldens the unit tests pin, and
# require a clean exit 0 on SIGTERM graceful drain.
SERVE_SMOKE_DIR ?= .serve-smoke
serve-smoke:
	SERVE_SMOKE_DIR=$(SERVE_SMOKE_DIR) GO=$(GO) sh scripts/serve_smoke.sh

# Distributed-coordinator smoke test: boot cmd/serve with short shard
# leases and a durable -coord-state-dir, submit a 3-shard sweep job,
# run three real sweepworker processes — one kill -KILL'd mid-shard,
# one straggler whose lease expires and whose late result is discarded
# — then kill -KILL the coordinator itself mid-sweep and restart it on
# the same state dir. The restarted daemon must report the recovered
# job on /statsz and the merged figure output must be byte-identical
# to an unsharded single-process run, with at least one lease re-offer
# and a clean SIGTERM drain that seals a final snapshot.
COORD_SMOKE_DIR ?= .coord-smoke
coord-smoke:
	COORD_SMOKE_DIR=$(COORD_SMOKE_DIR) GO=$(GO) sh scripts/coord_smoke.sh

# Refinement-layer smoke test: run the refine figure (heuristics vs
# Refined vs Exact) small through the real CLI, diff its .dat against
# the committed golden, require a 2-shard merge to be byte-identical,
# and enforce the per-instance dominance gate (Refined never costs
# more than the best feasible constructive heuristic on any cell).
REFINE_SMOKE_DIR ?= .refine-smoke
refine-smoke:
	REFINE_SMOKE_DIR=$(REFINE_SMOKE_DIR) GO=$(GO) sh scripts/refine_smoke.sh

# Churn-subsystem smoke test: run the churn figure (journaled local
# repair vs from-scratch re-solve over dynamic scenarios) small through
# the real CLI, diff its .dat against the committed golden, require a
# 2-shard merge to be byte-identical, and enforce the dominance gate
# (repair cost within tolerance of re-solve on every scenario, strictly
# fewer operators migrated over the grid).
CHURN_SMOKE_DIR ?= .churn-smoke
churn-smoke:
	CHURN_SMOKE_DIR=$(CHURN_SMOKE_DIR) GO=$(GO) sh scripts/churn_smoke.sh

# Documentation gate: every non-main package must carry a "// Package
# <name> ..." godoc comment, and every local link in README.md and
# docs/*.md must point at an existing file. Links resolve relative to
# the file containing them (as GitHub renders them); external URLs,
# bare anchors and links escaping the repo (the GitHub-web-relative CI
# badge) are skipped.
docs-check:
	@fail=0; \
	for pkg in $$($(GO) list -f '{{if ne .Name "main"}}{{.Dir}}:{{.Name}}{{end}}' ./...); do \
		dir=$${pkg%%:*}; name=$${pkg##*:}; \
		if ! grep -qs "^// Package $$name " $$dir/*.go; then \
			echo "docs-check: package $$name ($$dir) has no package comment"; fail=1; \
		fi; \
	done; \
	for f in README.md docs/*.md; do \
		for link in $$(grep -oE '\]\([^)]+\)' $$f | sed -E 's/^\]\(//; s/\)$$//' | grep -vE '^(https?:|#)'); do \
			path=$$(dirname $$f)/$${link%%\#*}; \
			case $$(realpath -m --relative-to=. $$path) in ../*) continue;; esac; \
			if [ ! -e "$$path" ]; then echo "docs-check: $$f: broken link $$link"; fail=1; fi; \
		done; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "docs-check: OK"

fmt:
	gofmt -w .

lint:
	@fmtdiff="$$(gofmt -l .)"; if [ -n "$$fmtdiff" ]; then \
		echo "gofmt needed on:"; echo "$$fmtdiff"; exit 1; fi
	$(GO) vet ./...

# Deeper static analysis than go vet (needs network access to fetch
# the tool; CI runs it as its own lint step).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@latest ./...

# Known-vulnerability scan over all dependencies (needs network access).
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

ci: lint build test race bench sweep-smoke serve-smoke coord-smoke refine-smoke churn-smoke docs-check
