# CI and humans invoke identical commands: .github/workflows/ci.yml
# runs `make lint build test race bench` and nothing else.

GO ?= go

.PHONY: build test race bench fmt lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark as a smoke test; drop -benchtime for
# real measurements (the Serial/Parallel pairs report the pool speedup).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	gofmt -w .

lint:
	@fmtdiff="$$(gofmt -l .)"; if [ -n "$$fmtdiff" ]; then \
		echo "gofmt needed on:"; echo "$$fmtdiff"; exit 1; fi
	$(GO) vet ./...

ci: lint build test race bench
