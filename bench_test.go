// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's experiment index). Each benchmark measures the cost of
// one full experiment run and, once per run, logs the series/table it
// produced so `go test -bench . -v` doubles as the reproduction harness.
// cmd/experiments emits the same data as .dat files and ASCII plots.
package streamalloc_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/apptree"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/multiapp"
	"repro/internal/rewrite"
	"repro/internal/rng"
	"repro/internal/stream"
)

// benchCfg keeps benchmark iterations affordable; cmd/experiments uses the
// full 10-seed configuration.
var benchCfg = experiments.Config{Seeds: 3, BaseSeed: 1}

var logOnce sync.Map

func logFigure(b *testing.B, fig *experiments.Figure) {
	b.Helper()
	if _, dup := logOnce.LoadOrStore(fig.ID, true); !dup {
		b.Logf("\n%s\n%s", fig.Dat(), fig.ASCII(72, 16))
	}
}

// BenchmarkFig2aCostVsN regenerates Figure 2(a): cost vs N at alpha=0.9,
// high download frequency, small objects (experiment E1).
func BenchmarkFig2aCostVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logFigure(b, experiments.Fig2a(benchCfg))
	}
}

// BenchmarkFig2bCostVsN regenerates Figure 2(b): alpha=1.7 (E2).
func BenchmarkFig2bCostVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logFigure(b, experiments.Fig2b(benchCfg))
	}
}

// BenchmarkFig3CostVsAlpha regenerates Figure 3: cost vs alpha, N=60 (E3).
func BenchmarkFig3CostVsAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logFigure(b, experiments.Fig3(benchCfg))
	}
}

// BenchmarkFig3SmallTreeCostVsAlpha regenerates the Section 5 companion
// sweep at N=20 (E3b).
func BenchmarkFig3SmallTreeCostVsAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logFigure(b, experiments.Fig3SmallTree(benchCfg))
	}
}

// BenchmarkLargeObjectsCostVsN regenerates the large-object experiment
// (E4): feasibility collapses beyond a modest tree size.
func BenchmarkLargeObjectsCostVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logFigure(b, experiments.LargeObjects(benchCfg))
	}
}

// BenchmarkFrequencySweep regenerates the download-rate experiment (E5):
// costs plateau for update periods beyond ~10s.
func BenchmarkFrequencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logFigure(b, experiments.FrequencySweep(benchCfg))
	}
}

// BenchmarkOptimalComparison regenerates the paper's last experiment (E6):
// heuristics vs the exact optimum and the ILP bound, CONSTR-HOM.
func BenchmarkOptimalComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.OptimalComparison(experiments.Config{Seeds: 2, BaseSeed: 1})
		if _, dup := logOnce.LoadOrStore(tab.ID, true); !dup {
			b.Logf("\n%s", tab.String())
		}
	}
}

// BenchmarkCatalogLookup covers Table 1 (E7): the catalog data and its
// cheapest-fitting query used by the downgrade step.
func BenchmarkCatalogLookup(b *testing.B) {
	tab := experiments.Table1()
	if _, dup := logOnce.LoadOrStore(tab.ID, true); !dup {
		b.Logf("\n%s", tab.String())
	}
	in := instance.Generate(instance.Config{NumOps: 10}, 1)
	cat := in.Platform.Catalog
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cat.CheapestFitting(float64(i%300000), float64(i%2500)); !ok && i%300000 < 280000 {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkAblationDowngrade regenerates ablation A1 (downgrade on/off).
func BenchmarkAblationDowngrade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logFigure(b, experiments.AblationDowngrade(benchCfg))
	}
}

// BenchmarkAblationServerSelection regenerates ablation A2 (three-loop vs
// random server selection).
func BenchmarkAblationServerSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logFigure(b, experiments.AblationSelection(benchCfg))
	}
}

// BenchmarkThroughputValidation regenerates V1: stream-engine execution of
// every heuristic's mappings.
func BenchmarkThroughputValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.ThroughputValidation(experiments.Config{Seeds: 2, BaseSeed: 1})
		if _, dup := logOnce.LoadOrStore(tab.ID, true); !dup {
			b.Logf("\n%s", tab.String())
		}
	}
}

// Parallel-engine benchmarks: the serial/parallel pairs below share one
// workload, so their ns/op ratio is the speedup of the worker pool.
// Acceptance: BenchmarkSweepParallel ≥ 2x BenchmarkSweepSerial at 4
// workers on a 4-core runner (outputs are byte-identical either way —
// see TestSweepDeterministicAcrossWorkers).

func BenchmarkSweepSerial(b *testing.B) {
	cfg := benchCfg
	cfg.Workers = 1
	for i := 0; i < b.N; i++ {
		experiments.Fig2a(cfg)
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	cfg := benchCfg
	cfg.Workers = 4
	for i := 0; i < b.N; i++ {
		experiments.Fig2a(cfg)
	}
}

func BenchmarkSolveAllSerial(b *testing.B) {
	in := instance.Generate(instance.Config{NumOps: 60, Alpha: 0.9}, 1)
	s := core.Solver{Workers: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SolveAll(in)
	}
}

func BenchmarkSolveAllParallel(b *testing.B) {
	in := instance.Generate(instance.Config{NumOps: 60, Alpha: 0.9}, 1)
	s := core.Solver{Workers: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SolveAll(in)
	}
}

func BenchmarkSolveBatch(b *testing.B) {
	ins := make([]*instance.Instance, 16)
	for i := range ins {
		ins[i] = instance.Generate(instance.Config{NumOps: 40, Alpha: 0.9}, int64(i+1))
	}
	var s core.Solver // portfolio + batch workers at GOMAXPROCS
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SolveBatch(context.Background(), ins)
	}
}

func BenchmarkSimulateBatch(b *testing.B) {
	var ms []*mapping.Mapping
	for seed := int64(1); seed <= 8; seed++ {
		in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.1}, seed)
		res, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: seed})
		if err != nil {
			continue
		}
		ms = append(ms, res.Mapping)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.SimulateBatch(context.Background(), ms, stream.Options{Results: 60}, 0)
	}
}

// Micro-benchmarks for the core solver components.

func BenchmarkSubtreeBottomUpN60(b *testing.B) {
	in := instance.Generate(instance.Config{NumOps: 60, Alpha: 0.9}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompGreedyN60(b *testing.B) {
	in := instance.Generate(instance.Config{NumOps: 60, Alpha: 0.9}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.Solve(in, heuristics.CompGreedy{}, heuristics.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamEngineN20(b *testing.B) {
	in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.1}, 1)
	res, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.Simulate(res.Mapping, stream.Options{Results: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamEngineReusedN20 is BenchmarkStreamEngineN20 through an
// explicitly held SimRunner: the steady-state zero-allocation path. The
// allocs/op column should read 0 (the pooled package-level Simulate above
// pays only the one *Report copy).
func BenchmarkStreamEngineReusedN20(b *testing.B) {
	in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.1}, 1)
	res, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := stream.NewRunner()
	if _, err := r.Simulate(res.Mapping, stream.Options{Results: 60}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Simulate(res.Mapping, stream.Options{Results: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstanceGenerationN140(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		instance.Generate(instance.Config{NumOps: 140, Alpha: 0.9}, int64(i))
	}
}

// Benchmarks for the future-work extensions (DESIGN.md F1/F2).

func BenchmarkMultiAppCombine(b *testing.B) {
	base := instance.Generate(instance.Config{NumOps: 5}, 11)
	w := multiapp.Workload{
		NumTypes: base.NumTypes, Sizes: base.Sizes, Freqs: base.Freqs,
		Holders: base.Holders, Platform: base.Platform, Alpha: 1.1,
	}
	apps := []multiapp.App{
		{Tree: apptree.Random(rng.New(1), 10, w.NumTypes), Rho: 1},
		{Tree: apptree.Random(rng.New(2), 10, w.NumTypes), Rho: 4},
		{Tree: apptree.Random(rng.New(3), 10, w.NumTypes), Rho: 0.1},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in, err := multiapp.Combine(apps, w)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHuffmanRewrite(b *testing.B) {
	in := instance.Generate(instance.Config{NumOps: 40, Alpha: 1.5}, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.Optimize(in, heuristics.SubtreeBottomUp{}, heuristics.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
