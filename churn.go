package streamalloc

import (
	"context"

	"repro/internal/churn"
)

// Re-exported dynamic-workload types.
type (
	// Scenario is a deterministic seeded event stream over a shared
	// workload: applications arriving and departing, operator rates
	// drifting.
	Scenario = churn.Scenario
	// ScenarioConfig parameterizes NewScenario.
	ScenarioConfig = churn.ScenarioConfig
	// Event is one dynamic change in a Scenario.
	Event = churn.Event
	// RepairOptions tunes how a scenario's events are answered: the
	// policy (journaled local repair vs. from-scratch re-solve), the
	// seed, and the per-event refinement budgets.
	RepairOptions = churn.Options
	// ChurnEngine holds a live incumbent allocation and answers events
	// one at a time — the streaming counterpart of RunScenario.
	ChurnEngine = churn.Engine
	// ScenarioResult aggregates one scenario run.
	ScenarioResult = churn.Result
	// EventResult describes the engine's answer to one event.
	EventResult = churn.EventResult
)

// Churn policies and event kinds.
const (
	// PolicyRepair answers events by journaled local repair with a
	// re-solve fallback.
	PolicyRepair = churn.PolicyRepair
	// PolicyResolve answers every event with a from-scratch solve.
	PolicyResolve = churn.PolicyResolve

	// Arrive adds an application, Depart removes one, Drift rescales
	// one application's throughput target.
	Arrive = churn.Arrive
	Depart = churn.Depart
	Drift  = churn.Drift
)

// NewScenario generates a deterministic dynamic scenario: the same
// (cfg, seed) yields the identical workload, initial applications and
// event stream on every machine.
func NewScenario(cfg ScenarioConfig, seed int64) *Scenario {
	return churn.NewScenario(cfg, seed)
}

// RunScenario answers the scenario's whole event stream under opts and
// returns the per-event trace plus aggregates. The incumbent mapping is
// never invalid: every installed answer is validated, and a rejected
// event (infeasible post-event workload) leaves the pre-event incumbent
// untouched. Cancelling the context aborts the run mid-stream with the
// partial result.
func RunScenario(ctx context.Context, sc *Scenario, opts RepairOptions) (*ScenarioResult, error) {
	return churn.RunScenario(ctx, sc, opts)
}

// NewChurnEngine returns a reusable engine for answering events one at
// a time (serve-daemon style): Start a scenario, then Step each event.
func NewChurnEngine(opts RepairOptions) *ChurnEngine {
	return churn.NewEngine(opts)
}
