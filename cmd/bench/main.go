// Command bench is the repository's perf harness: it times the solve,
// sweep, simulate and serve (allocation-daemon request) hot paths over
// a canonical pinned-seed instance corpus (core.CanonicalCorpus: N in {20, 60, 140, 300, 600} x alpha in
// {0.9, 1.7}) and emits a machine-readable JSON report — the artifact CI compares
// against the committed BENCH_baseline.json to gate perf regressions.
//
// Usage:
//
//	bench [-o BENCH_results.json] [-seeds 3] [-iters-scale 1]
//	bench -compare BENCH_baseline.json BENCH_results.json [-ns-threshold 0.20]
//
// Run mode measures every benchmark entry (warm-up run excluded, then a
// fixed iteration count split into samples, benchstat-style) and records
// ns/op (mean, min and median across samples), allocs/op, B/op and
// ops/s. Allocation counts of serial entries are machine-independent, so
// they gate strictly; wall-clock is not, so every report carries a
// calibration entry (a fixed pure-CPU spin) and compare judges the
// calibration-normalized median-ns/op ratio — the median shrugs off a
// descheduled sample without the min's blind spot (samples rotate over
// corpus seeds, so a min only times the cheapest seed), which is what
// lets the gate sit at -ns-threshold 20%. Entries under 10us on both
// sides are reported but not ns-gated: they time dispatch overhead,
// and jitter dominates. Refresh baselines with the same -iters-scale
// CI uses (make bench-baseline) so sample shapes stay comparable.
// Parallel entries are timed for trend visibility but never alloc-gated
// (goroutine bookkeeping varies with GOMAXPROCS). Compare also reports
// unmatched entries on
// both sides and fails when the baseline misses an entry or lacks a
// newly added alloc-gated one — growing the corpus requires a
// deliberate baseline refresh.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/multiapp"
	"repro/internal/platform"
	"repro/internal/refine"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/stream"
)

// Schema identifies the report layout; bump on incompatible changes.
// v2 added the per-entry sample statistics (samples, ns_min, ns_median).
const Schema = "streamalloc-bench/v2"

// Entry is one measured benchmark.
type Entry struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	Samples    int     `json:"samples"`
	NsPerOp    float64 `json:"ns_per_op"`
	NsMin      float64 `json:"ns_min"`
	NsMedian   float64 `json:"ns_median"`
	AllocsPerO float64 `json:"allocs_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// AllocGated entries have machine-independent allocation counts
	// (single-goroutine, deterministic workloads); compare fails on any
	// allocs/op growth for them.
	AllocGated bool `json:"alloc_gated"`
}

// Report is the full JSON artifact.
type Report struct {
	Schema    string    `json:"schema"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	Seeds     int       `json:"corpus_seeds"`
	CorpusNs  []int     `json:"corpus_n"`
	CorpusAs  []float64 `json:"corpus_alpha"`
	Entries   []Entry   `json:"benchmarks"`
}

func main() {
	var (
		out         = flag.String("o", "", "write the JSON report to this file (default stdout)")
		seeds       = flag.Int("seeds", 3, "pinned seeds per corpus cell")
		itersScale  = flag.Int("iters-scale", 1, "multiply every entry's iteration count (longer, steadier runs)")
		compareMode = flag.Bool("compare", false, "compare two reports: bench -compare BASELINE RESULTS")
		nsThreshold = flag.Float64("ns-threshold", 0.20, "max allowed calibration-normalized median-ns/op growth")
	)
	flag.Parse()

	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: bench -compare BASELINE.json RESULTS.json")
			os.Exit(2)
		}
		if err := compare(flag.Arg(0), flag.Arg(1), *nsThreshold); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}

	rep, err := run(*seeds, *itersScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d entries to %s\n", len(rep.Entries), *out)
}

// benchSamples is how many timing samples each entry's iteration budget
// is split into; compare gates on the median (benchstat-style), so a
// single descheduled sample cannot fail the build.
const benchSamples = 5

// measure times iters runs of f (after one untimed warm-up), split into
// benchSamples timing samples, and reads the allocator's global counters
// around the whole loop — the testing.AllocsPerRun technique, plus
// per-sample wall-clock.
func measure(name string, iters int, allocGated bool, f func()) Entry {
	f() // warm every lazily-grown buffer so steady state is measured
	runtime.GC()
	perSample := iters / benchSamples
	if perSample < 1 {
		perSample = 1
	}
	// Preallocated before the MemStats window so the harness's own sample
	// bookkeeping is never charged to the entry's allocs/op.
	sampleNs := make([]float64, 0, benchSamples+1)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for done := 0; done < iters; {
		n := perSample
		if iters-done < n {
			n = iters - done
		}
		s0 := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		sampleNs = append(sampleNs, float64(time.Since(s0).Nanoseconds())/float64(n))
		done += n
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	ns := float64(elapsed.Nanoseconds()) / float64(iters)
	ops := 0.0
	if elapsed > 0 {
		ops = float64(iters) / elapsed.Seconds()
	}
	sort.Float64s(sampleNs)
	return Entry{
		Name:       name,
		Iterations: iters,
		Samples:    len(sampleNs),
		NsPerOp:    ns,
		NsMin:      sampleNs[0],
		NsMedian:   sampleNs[len(sampleNs)/2],
		AllocsPerO: math.Floor(float64(after.Mallocs-before.Mallocs) / float64(iters)),
		BytesPerOp: math.Floor(float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)),
		OpsPerSec:  ops,
		AllocGated: allocGated,
	}
}

// calibrationName is the pure-CPU spin every report carries so ns/op can
// be compared across machines as a ratio to it.
const calibrationName = "calibrate/spin"

// spin is a fixed floating-point workload (~1e7 FLOPs) with a data
// dependency so the compiler cannot elide or vectorize it away.
var spinSink float64

func spin() {
	x := 1.0
	for i := 0; i < 5_000_000; i++ {
		x = x*1.0000001 + 1e-9
	}
	spinSink = x
}

func run(seeds, itersScale int) (*Report, error) {
	if itersScale < 1 {
		itersScale = 1
	}
	corpus := core.CanonicalCorpus(seeds)
	rep := &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Seeds:     seeds,
		CorpusNs:  core.CorpusNs,
		CorpusAs:  core.CorpusAlphas,
	}
	add := func(e Entry) {
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(os.Stderr, "bench: %-40s %12.0f ns/op %10.0f allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerO)
	}

	add(measure(calibrationName, 12*itersScale, false, spin))

	// Solve: the best heuristic on every corpus cell, rotating seeds so
	// one op is one full solve. Large cells get fewer iterations — one
	// N=600 solve runs ~70ms, and the sample split keeps the gate robust.
	for _, n := range core.CorpusNs {
		for _, alpha := range core.CorpusAlphas {
			cell := cellItems(corpus, n, alpha)
			i := 0
			name := fmt.Sprintf("solve/subtree/N=%d,alpha=%g", n, alpha)
			add(measure(name, solveIters(n)*itersScale, true, func() {
				it := cell[i%len(cell)]
				i++
				// Infeasibility is a legitimate corpus outcome (the paper's
				// large trees stress exactly that); the attempt is what is
				// timed. Anything else is a harness bug.
				if _, err := heuristics.Solve(it.Inst, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: it.Seed}); err != nil && !core.IsInfeasible(err) {
					panic(fmt.Sprintf("%s: %v", name, err))
				}
			}))
		}
	}

	// Portfolio: all six heuristics, serial, on the medium cell.
	{
		cell := cellItems(corpus, 60, 0.9)
		s := core.Solver{Workers: 1}
		i := 0
		add(measure("solve/portfolio/N=60,alpha=0.9", 10*itersScale, true, func() {
			it := cell[i%len(cell)]
			i++
			s.Options.Seed = it.Seed
			s.SolveAll(it.Inst)
		}))
	}

	// Journal-on solve: the same subtree solve as solve/subtree/N=600
	// with the move journal recording — its entry makes the journal's
	// overhead an explicit, ns-gated number next to the journal-off one.
	{
		cell := cellItems(corpus, 600, 0.9)
		i := 0
		name := "solve/subtree/journal/N=600,alpha=0.9"
		add(measure(name, solveIters(600)*itersScale, true, func() {
			it := cell[i%len(cell)]
			i++
			if _, err := heuristics.Solve(it.Inst, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: it.Seed, Journal: true}); err != nil && !core.IsInfeasible(err) {
				panic(fmt.Sprintf("%s: %v", name, err))
			}
		}))
	}

	// Exact: branch-and-bound on a pinned multi-processor CONSTR-HOM
	// instance (slow CPU, 176 search nodes). The DFS backtracks through
	// the move journal and no longer clones per leaf, so the entry
	// alloc-gates the whole search.
	{
		p := platform.DefaultPlatform()
		p.Catalog = platform.Homogeneous(0, 4)
		in := instance.Generate(instance.Config{NumOps: 14, Alpha: 2.0, Platform: p}, 2)
		name := "solve/exact/N=14,alpha=2"
		add(measure(name, 30*itersScale, true, func() {
			if _, err := exact.Solve(in, exact.Limits{}); err != nil {
				panic(fmt.Sprintf("%s: %v", name, err))
			}
		}))
	}

	// Refine: the SA+LNS refinement layer (journaled moves, rollback on
	// rejection) over corpus cells, rotating seeds. Deterministic and
	// single-goroutine, so alloc-gated.
	for _, n := range []int{20, 60} {
		cell := cellItems(corpus, n, 0.9)
		i := 0
		name := fmt.Sprintf("refine/solve/N=%d,alpha=0.9", n)
		add(measure(name, 5*itersScale, true, func() {
			it := cell[i%len(cell)]
			i++
			if _, err := refine.Refine(it.Inst, refine.Options{Seed: it.Seed}); err != nil && !core.IsInfeasible(err) {
				panic(fmt.Sprintf("%s: %v", name, err))
			}
		}))
	}

	// Simulate: the stream engine on pre-solved small-cell mappings,
	// through a reusable Runner (the steady-state zero-alloc path).
	for _, alpha := range core.CorpusAlphas {
		var maps []*heuristics.Result
		for _, it := range cellItems(corpus, 20, alpha) {
			res, err := heuristics.Solve(it.Inst, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: it.Seed})
			if err != nil {
				continue // infeasible cells are skipped, not timed
			}
			maps = append(maps, res)
		}
		if len(maps) == 0 {
			continue
		}
		r := stream.NewRunner()
		i := 0
		name := fmt.Sprintf("simulate/subtree/N=20,alpha=%g", alpha)
		add(measure(name, 50*itersScale, true, func() {
			res := maps[i%len(maps)]
			i++
			if _, err := r.Simulate(res.Mapping, stream.Options{Results: 60}); err != nil {
				panic(fmt.Sprintf("%s: %v", name, err))
			}
		}))
	}

	// Sweep: one figure-sized experiment, serial (alloc-gated now that
	// the Grid engine's caller-owned mapping arena keeps the path
	// allocation-light) and at four workers (throughput trend; goroutine
	// bookkeeping makes its allocation count scheduler-dependent, so it
	// is not alloc-gated).
	add(measure("sweep/fig2a/workers=1", 2*itersScale, true, func() {
		experiments.Fig2a(experiments.Config{Seeds: 1, BaseSeed: 1, Workers: 1})
	}))
	add(measure("sweep/fig2a/workers=4", 2*itersScale, false, func() {
		experiments.Fig2a(experiments.Config{Seeds: 1, BaseSeed: 1, Workers: 4})
	}))

	// Serve: the allocation daemon's solve endpoint through the real
	// handler stack — parse, admission queue, worker arena, render —
	// serial (alloc-gated: one warmed worker, deterministic request
	// rotation) and with four concurrent clients against four workers
	// (throughput trend; scheduler-dependent, so not alloc-gated).
	{
		bodies := make([][]byte, 0, seeds)
		for s := 1; s <= seeds; s++ {
			bodies = append(bodies, []byte(fmt.Sprintf(`{"ref":{"n":60,"alpha":0.9,"seed":%d}}`, s)))
		}
		srv := serve.New(serve.Config{Workers: 1, QueueDepth: 8})
		i := 0
		name := "serve/solve/workers=1"
		add(measure(name, 10*itersScale, true, func() {
			req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(bodies[i%len(bodies)]))
			i++
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != 200 {
				panic(fmt.Sprintf("%s: status %d: %s", name, rec.Code, rec.Body.String()))
			}
		}))
		srv.Close()

		srv4 := serve.New(serve.Config{Workers: 4, QueueDepth: 16})
		name4 := "serve/solve/workers=4"
		add(measure(name4, 10*itersScale, false, func() {
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(bodies[c%len(bodies)]))
					rec := httptest.NewRecorder()
					srv4.ServeHTTP(rec, req)
					if rec.Code != 200 {
						panic(fmt.Sprintf("%s: status %d: %s", name4, rec.Code, rec.Body.String()))
					}
				}(c)
			}
			wg.Wait()
		}))
		srv4.Close()
	}

	// Multi-tenant sweep: the Grid engine over multiapp.Combine
	// workloads — two tenants per cell, one shared platform — serial and
	// deterministic, so it alloc-gates the combine+solve path of the
	// first multi-tenant harness.
	{
		g := multiTenantGrid()
		name := "sweep/multiapp/workers=1"
		add(measure(name, 6*itersScale, true, func() {
			if _, err := g.Cells(context.Background()); err != nil {
				panic(fmt.Sprintf("%s: %v", name, err))
			}
		}))
	}

	// Churn: a pinned dynamic scenario (arrivals, departures, rate
	// drift) answered by journaled local repair, and the same scenario
	// re-solved from scratch per event for comparison. Engine arenas
	// are reused across Run calls, so the steady-state event-answering
	// path alloc-gates; N counts the operators live at t=0.
	for _, c := range []struct {
		apps, ops, iters int
		seed             int64
		policy           churn.Policy
	}{
		{3, 20, 5, 3, churn.PolicyRepair},
		{4, 35, 3, 1, churn.PolicyRepair},
		{4, 35, 3, 1, churn.PolicyResolve},
	} {
		sc, e := churnScenario(c.apps, c.ops, c.seed, c.policy)
		name := fmt.Sprintf("churn/%s/N=%d", c.policy, c.apps*c.ops)
		// The engine's arenas (builder pool, solve contexts, refiner
		// buffers) take a few full scenario replays to reach their
		// high-water marks; warm past them so allocs/op is the true
		// steady state regardless of the iteration count.
		for i := 0; i < 3; i++ {
			if _, err := e.Run(context.Background(), sc); err != nil {
				panic(fmt.Sprintf("%s: %v", name, err))
			}
		}
		add(measure(name, c.iters*itersScale, true, func() {
			if _, err := e.Run(context.Background(), sc); err != nil {
				panic(fmt.Sprintf("%s: %v", name, err))
			}
		}))
	}

	return rep, nil
}

// churnScenario is the pinned churn benchmark workload: apps
// equal-sized applications on the slow-CPU CONSTR-HOM platform of the
// churn figure, six drift-heavy events, plus the engine that answers
// them. Seeds are chosen so the incumbent spans several processors and
// events genuinely migrate operators (not one-processor no-ops).
func churnScenario(apps, ops int, seed int64, policy churn.Policy) (*churn.Scenario, *churn.Engine) {
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(0, 4)
	cfg := churn.ScenarioConfig{
		InitialApps: apps, Events: 6,
		MinOps: ops, MaxOps: ops,
		Rho: 1, RhoMax: 8,
		Drift: churn.DriftUp, DriftMax: 1.6,
	}
	cfg.Base.Platform = p
	cfg.Base.Alpha = 1.5
	sc := churn.NewScenario(cfg, seed)
	return sc, churn.NewEngine(churn.Options{Policy: policy, Seed: seed})
}

// multiTenantGrid is the pinned multi-tenant benchmark workload: two
// tenants (8 and 10 operators) per cell, the second's throughput target
// swept over {1, 2, 4}, on the shared default platform.
func multiTenantGrid() *experiments.Grid {
	base := instance.Generate(instance.Config{NumOps: 5}, 11)
	w := multiapp.Workload{
		NumTypes: base.NumTypes, Sizes: base.Sizes, Freqs: base.Freqs,
		Holders: base.Holders, Platform: base.Platform, Alpha: 1.0,
	}
	return &experiments.Grid{
		Heuristics: []string{"Subtree-bottom-up", "Comp-Greedy"},
		Xs:         []float64{1, 2, 4},
		Seeds:      2,
		BaseSeed:   1,
		Workers:    1,
		Make: func(env *experiments.WorkerEnv, x float64, seed int64) (*instance.Instance, error) {
			// Trees and the combined instance come from the worker's
			// arenas (same streams, byte-identical cells), so the entry
			// gates the whole multi-tenant cell at ~0 steady-state allocs.
			apps := []multiapp.App{
				{Tree: env.RandomTree(rng.SeedFor(seed, "dashboard"), 8, w.NumTypes), Rho: 1},
				{Tree: env.RandomTree(rng.SeedFor(seed, "alerting"), 10, w.NumTypes), Rho: x},
			}
			return env.Combine(apps, w)
		},
	}
}

// solveIters scales a solve entry's iteration count to its tree size so
// the big cells don't dominate harness wall-clock.
func solveIters(n int) int {
	switch {
	case n <= 140:
		return 30
	case n <= 300:
		return 10
	default:
		return 5
	}
}

func cellItems(corpus []core.CorpusItem, n int, alpha float64) []core.CorpusItem {
	var out []core.CorpusItem
	for _, it := range corpus {
		if it.N == n && it.Alpha == alpha {
			out = append(out, it)
		}
	}
	return out
}

// gateNs returns the entry's timing statistic used for gating: the
// median across samples — robust to a descheduled sample, unlike the
// mean, without the min's blind spot (samples rotate over corpus seeds,
// so the min only times the cheapest seed). The mean fallback guards
// degenerate (hand-edited) reports with a missing median; load()'s
// schema check keeps genuinely old reports out.
func gateNs(e *Entry) float64 {
	if e.NsMedian > 0 {
		return e.NsMedian
	}
	return e.NsPerOp
}

// tinyNsFloor exempts entries from the ns gate only while BOTH sides
// are sub-10us: such entries measure fixed dispatch overhead (e.g. the
// corpus cells that fail Precheck immediately), where scheduler jitter
// dwarfs any real regression. An entry that grows past the floor is
// gated again, so a fast-reject path turning into real work cannot
// ship silently; allocation counts always gate strictly.
const tinyNsFloor = 10_000.0

// compare loads two reports and fails on regressions: allocs/op growth
// beyond the noise floor on an alloc-gated entry, or calibration-
// normalized median-ns/op growth beyond nsThreshold on any entry above
// the tiny-entry floor. Unmatched entries are reported on both sides and
// both directions can fail: an entry missing from the results means a
// benchmark was dropped, and an alloc-gated entry missing from the
// baseline means the corpus grew — either way the committed baseline
// must be refreshed deliberately, not slip through silently.
func compare(basePath, resultPath string, nsThreshold float64) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	result, err := load(resultPath)
	if err != nil {
		return err
	}
	baseCal := find(base, calibrationName)
	resCal := find(result, calibrationName)
	if baseCal == nil || resCal == nil {
		return fmt.Errorf("missing %q entry (baseline: %v, results: %v)", calibrationName, baseCal != nil, resCal != nil)
	}
	failures := 0
	for i := range base.Entries {
		b := &base.Entries[i]
		if b.Name == calibrationName {
			continue
		}
		r := find(result, b.Name)
		if r == nil {
			fmt.Printf("%-16s %-44s (in baseline, not in results)\n", "MISSING", b.Name)
			failures++
			continue
		}
		// median ns/op (gateNs), normalized by each side's calibration spin.
		bn := gateNs(b) / gateNs(baseCal)
		rn := gateNs(r) / gateNs(resCal)
		ratio := rn / bn
		status := "ok"
		switch {
		case gateNs(b) < tinyNsFloor && gateNs(r) < tinyNsFloor:
			status = "ok (tiny)"
		case ratio > 1+nsThreshold:
			status = "NS-REGRESSION"
			failures++
		}
		fmt.Printf("%-16s %-44s norm-ns x%.3f  allocs %v -> %v\n", status, b.Name, ratio, b.AllocsPerO, r.AllocsPerO)
		// Alloc gate: any growth beyond the runtime's noise floor fails.
		// GC-timing-dependent pool refills jitter counts by a few
		// allocations run-to-run, so a handful of allocs of slack is
		// needed; real regressions arrive in tens.
		if slack := math.Max(8, 0.01*b.AllocsPerO); b.AllocGated && r.AllocsPerO > b.AllocsPerO+slack {
			fmt.Printf("%-16s %-44s allocs/op grew %v -> %v\n", "ALLOC-REGRESSION", b.Name, b.AllocsPerO, r.AllocsPerO)
			failures++
		}
	}
	for i := range result.Entries {
		r := &result.Entries[i]
		if r.Name == calibrationName || find(base, r.Name) != nil {
			continue
		}
		if r.AllocGated {
			fmt.Printf("%-16s %-44s (alloc-gated entry not in baseline; refresh the baseline to gate it)\n", "UNGATED-NEW", r.Name)
			failures++
		} else {
			fmt.Printf("%-16s %-44s (not in baseline; refresh it to gate this entry)\n", "NEW", r.Name)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d perf regression(s) versus %s", failures, basePath)
	}
	fmt.Printf("no regressions versus %s (ns threshold %.0f%%)\n", basePath, nsThreshold*100)
	return nil
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, Schema)
	}
	return &rep, nil
}

func find(rep *Report, name string) *Entry {
	for i := range rep.Entries {
		if rep.Entries[i].Name == name {
			return &rep.Entries[i]
		}
	}
	return nil
}
