package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeReport marshals a minimal report with a calibration entry plus the
// given benchmarks.
func writeReport(t *testing.T, dir, name string, entries ...Entry) string {
	t.Helper()
	rep := Report{Schema: Schema}
	rep.Entries = append(rep.Entries, Entry{Name: calibrationName, NsPerOp: 1e6, NsMin: 1e6, NsMedian: 1e6})
	rep.Entries = append(rep.Entries, entries...)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func entry(name string, ns, allocs float64, gated bool) Entry {
	return Entry{Name: name, NsPerOp: ns, NsMin: ns, NsMedian: ns, AllocsPerO: allocs, AllocGated: gated}
}

func TestCompareOK(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", entry("solve/x", 5e5, 100, true))
	res := writeReport(t, dir, "res.json", entry("solve/x", 5.5e5, 100, true))
	if err := compare(base, res, 0.20); err != nil {
		t.Fatalf("10%% growth under a 20%% gate must pass: %v", err)
	}
}

func TestCompareNsRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", entry("solve/x", 5e5, 100, true))
	res := writeReport(t, dir, "res.json", entry("solve/x", 7e5, 100, true))
	if err := compare(base, res, 0.20); err == nil {
		t.Fatal("40% ns growth must fail the 20% gate")
	}
}

func TestCompareAllocRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", entry("solve/x", 5e5, 100, true))
	res := writeReport(t, dir, "res.json", entry("solve/x", 5e5, 200, true))
	if err := compare(base, res, 0.20); err == nil {
		t.Fatal("allocs/op growth on a gated entry must fail")
	}
}

func TestCompareTinyEntryNsExempt(t *testing.T) {
	// A 2us entry (fails-Precheck corpus cell) may jitter wildly in ns
	// but must still gate allocations.
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", entry("solve/tiny", 2e3, 4, true))
	res := writeReport(t, dir, "res.json", entry("solve/tiny", 6e3, 4, true))
	if err := compare(base, res, 0.20); err != nil {
		t.Fatalf("tiny entry ns growth must not gate: %v", err)
	}
	res2 := writeReport(t, dir, "res2.json", entry("solve/tiny", 2e3, 40, true))
	if err := compare(base, res2, 0.20); err == nil {
		t.Fatal("tiny entry alloc growth must still fail")
	}
}

func TestCompareFailsOnEntryMissingFromResults(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json",
		entry("solve/x", 5e5, 100, true), entry("solve/dropped", 5e5, 100, true))
	res := writeReport(t, dir, "res.json", entry("solve/x", 5e5, 100, true))
	if err := compare(base, res, 0.20); err == nil {
		t.Fatal("an entry present in the baseline but absent from the results must fail")
	}
}

func TestCompareFailsOnUngatedNewAllocEntry(t *testing.T) {
	// A new alloc-gated entry (e.g. a fresh N=600 corpus cell) must not
	// escape gating silently: growing the corpus requires refreshing the
	// committed baseline.
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", entry("solve/x", 5e5, 100, true))
	res := writeReport(t, dir, "res.json",
		entry("solve/x", 5e5, 100, true), entry("solve/N=600", 5e7, 100, true))
	if err := compare(base, res, 0.20); err == nil {
		t.Fatal("a new alloc-gated entry absent from the baseline must fail")
	}
}

func TestCompareAllowsNewUntrackedEntry(t *testing.T) {
	// Non-gated additions (parallel trend entries) are informational.
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", entry("solve/x", 5e5, 100, true))
	res := writeReport(t, dir, "res.json",
		entry("solve/x", 5e5, 100, true), entry("sweep/workers=4", 5e7, 100, false))
	if err := compare(base, res, 0.20); err != nil {
		t.Fatalf("a new non-gated entry must pass: %v", err)
	}
}
