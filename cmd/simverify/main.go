// Command simverify solves an instance and executes the mapping on the
// discrete-event stream engine, reporting measured versus target
// throughput — the dynamic counterpart of the static constraint checker.
//
// Usage:
//
//	simverify [-n N] [-alpha A] [-seed S] [-in FILE] [-heuristic NAME] [-results R]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	streamalloc "repro"
)

func main() {
	n := flag.Int("n", 30, "operators in the random tree")
	alpha := flag.Float64("alpha", 1.0, "computation exponent")
	seed := flag.Int64("seed", 1, "random seed")
	inFile := flag.String("in", "", "load instance JSON instead of generating")
	name := flag.String("heuristic", "Subtree-bottom-up", "placement heuristic")
	results := flag.Int("results", 150, "root results to simulate")
	flag.Parse()

	var in *streamalloc.Instance
	if *inFile != "" {
		data, err := os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		in = new(streamalloc.Instance)
		if err := json.Unmarshal(data, in); err != nil {
			fatal(err)
		}
	} else {
		in = streamalloc.Generate(streamalloc.InstanceConfig{NumOps: *n, Alpha: *alpha}, *seed)
	}

	var solver streamalloc.Solver
	solver.Options.Seed = *seed
	res, err := solver.Solve(in, *name)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: $%.0f, %d processors\n", res.Heuristic, res.Cost, res.Procs)

	rep, err := streamalloc.Simulate(res.Mapping, streamalloc.SimOptions{Results: *results})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("target rho          : %.3f results/s\n", in.Rho)
	fmt.Printf("analytic max        : %.3f results/s\n", rep.Analytic)
	fmt.Printf("measured (steady)   : %.3f results/s\n", rep.Throughput)
	fmt.Printf("simulated           : %d results in %.2f virtual seconds (%d events)\n",
		rep.Completed, rep.SimTime, rep.Events)
	if rep.Throughput >= in.Rho {
		fmt.Println("VERDICT: mapping sustains the QoS target")
	} else {
		fmt.Println("VERDICT: mapping MISSES the QoS target")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simverify:", err)
	os.Exit(1)
}
