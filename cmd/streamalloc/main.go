// Command streamalloc solves one instance of the constructive in-network
// stream processing problem and reports the purchased platform.
//
// Usage:
//
//	streamalloc [-n N] [-alpha A] [-seed S] [-in FILE] [-heuristic NAME|all] [-verify]
//
// With -in the instance is loaded from JSON (see cmd/gentree); otherwise a
// random instance is generated with the paper's defaults.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	streamalloc "repro"
)

func main() {
	n := flag.Int("n", 40, "operators in the random tree")
	alpha := flag.Float64("alpha", 0.9, "computation exponent")
	seed := flag.Int64("seed", 1, "random seed")
	inFile := flag.String("in", "", "load instance JSON instead of generating")
	name := flag.String("heuristic", "all", "heuristic name or 'all'")
	verify := flag.Bool("verify", false, "execute the best mapping on the stream engine")
	flag.Parse()

	var in *streamalloc.Instance
	if *inFile != "" {
		data, err := os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		in = new(streamalloc.Instance)
		if err := json.Unmarshal(data, in); err != nil {
			fatal(err)
		}
	} else {
		in = streamalloc.Generate(streamalloc.InstanceConfig{NumOps: *n, Alpha: *alpha}, *seed)
	}
	if err := in.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("instance: %d operators, %d leaves, %d object types, rho=%g, alpha=%g\n",
		in.Tree.NumOps(), in.Tree.NumLeaves(), in.NumTypes, in.Rho, in.Alpha)
	fmt.Printf("cost lower bound: $%.0f\n\n", streamalloc.LowerBound(in))

	var solver streamalloc.Solver
	solver.Options.Seed = *seed

	var best *streamalloc.Result
	if *name == "all" {
		for _, o := range solver.SolveAll(in) {
			if o.Err != nil {
				fmt.Printf("%-22s FAILED: %v\n", o.Name, o.Err)
				continue
			}
			fmt.Printf("%-22s $%-8.0f (%d processors)\n", o.Name, o.Result.Cost, o.Result.Procs)
			if best == nil || o.Result.Cost < best.Cost {
				best = o.Result
			}
		}
	} else {
		res, err := solver.Solve(in, *name)
		if err != nil {
			fatal(err)
		}
		best = res
		fmt.Printf("%-22s $%-8.0f (%d processors)\n", res.Heuristic, res.Cost, res.Procs)
	}
	if best == nil {
		fatal(fmt.Errorf("no feasible mapping found"))
	}

	fmt.Printf("\nbest mapping (%s):\n", best.Heuristic)
	procs, ops, dl := best.Mapping.Compact()
	cat := in.Platform.Catalog
	for i := range procs {
		fmt.Printf("  P%d: %.2f GHz / %.0f Gbps ($%.0f) operators=%v downloads=%v\n",
			i, cat.CPUs[procs[i].Config.CPU].SpeedGHz, cat.NICs[procs[i].Config.NIC].Gbps,
			cat.Cost(procs[i].Config), ops[i], dl[i])
	}

	if *verify {
		rep, err := streamalloc.Verify(best, streamalloc.SimOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nstream engine: measured %.2f results/s (target %.2f, analytic max %.2f)\n",
			rep.Throughput, in.Rho, rep.Analytic)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamalloc:", err)
	os.Exit(1)
}
