// Command streamalloc solves one instance of the constructive in-network
// stream processing problem and reports the purchased platform.
//
// Usage:
//
//	streamalloc [-n N] [-alpha A] [-seed S] [-in FILE] [-heuristic NAME|all] [-verify] [-workers W] [-batch B]
//
// With -in the instance is loaded from JSON (see cmd/gentree); otherwise a
// random instance is generated with the paper's defaults. With -batch B the
// command solves B instances (seeds S..S+B-1) concurrently on W workers and
// prints one summary line per instance.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	streamalloc "repro"
)

func main() {
	n := flag.Int("n", 40, "operators in the random tree")
	alpha := flag.Float64("alpha", 0.9, "computation exponent")
	seed := flag.Int64("seed", 1, "random seed")
	inFile := flag.String("in", "", "load instance JSON instead of generating")
	name := flag.String("heuristic", "all", "heuristic name or 'all'")
	verify := flag.Bool("verify", false, "execute the best mapping on the stream engine")
	workers := flag.Int("workers", 0, "solver worker goroutines (0: one per CPU, 1: serial)")
	batch := flag.Int("batch", 0, "solve this many instances (seeds seed..seed+batch-1) concurrently")
	flag.Parse()

	if *batch > 0 {
		if *inFile != "" || *name != "all" {
			fatal(fmt.Errorf("-batch generates random instances and runs the full portfolio; it cannot be combined with -in or -heuristic"))
		}
		runBatch(*batch, *n, *alpha, *seed, *workers, *verify)
		return
	}

	var in *streamalloc.Instance
	if *inFile != "" {
		data, err := os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		in = new(streamalloc.Instance)
		if err := json.Unmarshal(data, in); err != nil {
			fatal(err)
		}
	} else {
		in = streamalloc.Generate(streamalloc.InstanceConfig{NumOps: *n, Alpha: *alpha}, *seed)
	}
	if err := in.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("instance: %d operators, %d leaves, %d object types, rho=%g, alpha=%g\n",
		in.Tree.NumOps(), in.Tree.NumLeaves(), in.NumTypes, in.Rho, in.Alpha)
	fmt.Printf("cost lower bound: $%.0f\n\n", streamalloc.LowerBound(in))

	var solver streamalloc.Solver
	solver.Options.Seed = *seed
	solver.Workers = *workers

	var best *streamalloc.Result
	if *name == "all" {
		for _, o := range solver.SolveAll(in) {
			if o.Err != nil {
				fmt.Printf("%-22s FAILED: %v\n", o.Name, o.Err)
				continue
			}
			fmt.Printf("%-22s $%-8.0f (%d processors)\n", o.Name, o.Result.Cost, o.Result.Procs)
			if best == nil || o.Result.Cost < best.Cost {
				best = o.Result
			}
		}
	} else {
		res, err := solver.Solve(in, *name)
		if err != nil {
			fatal(err)
		}
		best = res
		fmt.Printf("%-22s $%-8.0f (%d processors)\n", res.Heuristic, res.Cost, res.Procs)
	}
	if best == nil {
		fatal(fmt.Errorf("no feasible mapping found"))
	}

	fmt.Printf("\nbest mapping (%s):\n", best.Heuristic)
	procs, ops, dl := best.Mapping.Compact()
	cat := in.Platform.Catalog
	for i := range procs {
		fmt.Printf("  P%d: %.2f GHz / %.0f Gbps ($%.0f) operators=%v downloads=%v\n",
			i, cat.CPUs[procs[i].Config.CPU].SpeedGHz, cat.NICs[procs[i].Config.NIC].Gbps,
			cat.Cost(procs[i].Config), ops[i], dl[i])
	}

	if *verify {
		rep, err := streamalloc.Verify(best, streamalloc.SimOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nstream engine: measured %.2f results/s (target %.2f, analytic max %.2f)\n",
			rep.Throughput, in.Rho, rep.Analytic)
	}
}

// runBatch generates and solves `batch` instances concurrently via
// SolveBatch, optionally verifying every feasible mapping on the stream
// engine (also fanned out), and prints one line per instance.
func runBatch(batch, n int, alpha float64, seed int64, workers int, verify bool) {
	ins := make([]*streamalloc.Instance, batch)
	for i := range ins {
		ins[i] = streamalloc.Generate(streamalloc.InstanceConfig{NumOps: n, Alpha: alpha}, seed+int64(i))
	}
	// Each instance solves with its own seed, so every batch line matches
	// a standalone `streamalloc -seed <that seed>` run exactly.
	solver := streamalloc.Solver{Workers: workers}
	results, errs := solver.SolveBatchWith(context.Background(), ins, func(i int) streamalloc.Options {
		return streamalloc.Options{Seed: seed + int64(i)}
	})

	var reports []*streamalloc.SimReport
	var verrs []error
	if verify {
		var feasible []*streamalloc.Result
		for _, res := range results {
			if res != nil {
				feasible = append(feasible, res)
			}
		}
		reps, ve := streamalloc.VerifyBatch(context.Background(), feasible, streamalloc.SimOptions{}, workers)
		reports, verrs = reps, ve
	}

	solved, vi := 0, 0
	for i := range ins {
		if errs[i] != nil {
			fmt.Printf("seed %-6d INFEASIBLE: %v\n", seed+int64(i), errs[i])
			continue
		}
		solved++
		line := fmt.Sprintf("seed %-6d %-22s $%-8.0f (%d processors)",
			seed+int64(i), results[i].Heuristic, results[i].Cost, results[i].Procs)
		if verify {
			if verrs[vi] != nil {
				line += fmt.Sprintf("  verify FAILED: %v", verrs[vi])
			} else {
				line += fmt.Sprintf("  verified %.2f results/s", reports[vi].Throughput)
			}
			vi++
		}
		fmt.Println(line)
	}
	fmt.Printf("\nbatch: %d/%d feasible\n", solved, batch)
	if solved == 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamalloc:", err)
	os.Exit(1)
}
