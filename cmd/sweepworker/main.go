// Command sweepworker computes shards for a streamalloc daemon's
// distributed sweep coordinator (cmd/serve + internal/coord). It
// claims shard leases in a loop with exponential backoff and jitter,
// heartbeats renewals while computing, ships completed cells back,
// and exits cleanly on SIGINT/SIGTERM without leaking goroutines. Any
// number of workers may point at the same coordinator; determinism
// (per-cell seeds are pure functions of grid coordinates) makes every
// lease idempotent, so workers can die, straggle or double-complete
// without corrupting the merged figure.
//
// Usage:
//
//	sweepworker -coord http://host:port[,http://host2:port] [-name N]
//	            [-job ID] [-workers W] [-poll D] [-exit-idle]
//
// -coord accepts a comma-separated failover list: connection-level
// errors rotate to the next endpoint (the answering one becomes the
// primary), so a worker survives a coordinator restart behind a new
// address without restarting itself.
//
// Fault-injection flags, used by the coord-smoke CI gate and
// fault-tolerance tests to script misbehaving workers:
//
//	-slow D      sleep D before computing each shard (straggler)
//	-no-renew    skip heartbeat renewals, letting slow leases expire
//	-abandon N   exit after claiming (never completing) N leases
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/coord"
)

func main() {
	var (
		coordURL = flag.String("coord", "http://127.0.0.1:8080", "coordinator base URL, or a comma-separated failover list (rotates on connection errors)")
		name     = flag.String("name", "", "worker name in leases and progress (default: sweepworker-<pid>)")
		job      = flag.String("job", "", "pin to one job id; exits when it finishes (default: claim from any job)")
		workers  = flag.Int("workers", 0, "per-shard compute parallelism (0: one per CPU)")
		poll     = flag.Duration("poll", 500*time.Millisecond, "base claim-retry interval (exponential backoff + jitter)")
		exitIdle = flag.Bool("exit-idle", false, "exit on the first poll that finds no work")
		slow     = flag.Duration("slow", 0, "fault injection: sleep this long before computing each shard")
		noRenew  = flag.Bool("no-renew", false, "fault injection: never renew leases")
		abandon  = flag.Int("abandon", 0, "fault injection: exit after claiming this many leases without completing")
	)
	flag.Parse()

	if *name == "" {
		*name = fmt.Sprintf("sweepworker-%d", os.Getpid())
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	err := coord.RunWorker(ctx, coord.NewClient(*coordURL), coord.WorkerOptions{
		Name:               *name,
		Job:                *job,
		Poll:               *poll,
		ExitIdle:           *exitIdle,
		Workers:            *workers,
		Log:                logger,
		SlowShard:          *slow,
		NoRenew:            *noRenew,
		AbandonAfterClaims: *abandon,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "sweepworker:", err)
		os.Exit(1)
	}
	logger.Printf("%s: exiting", *name)
}
