// Command gentree generates random problem instances with the paper's
// Section 5 methodology and writes them as JSON for cmd/streamalloc and
// cmd/simverify, plus optional Graphviz output of the operator tree.
//
// Usage:
//
//	gentree [-n N] [-alpha A] [-seed S] [-large] [-lowfreq] [-o FILE] [-dot FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	streamalloc "repro"
)

func main() {
	n := flag.Int("n", 40, "operators in the tree")
	alpha := flag.Float64("alpha", 0.9, "computation exponent")
	seed := flag.Int64("seed", 1, "random seed")
	large := flag.Bool("large", false, "large objects (450-530 MB) instead of 5-30 MB")
	lowfreq := flag.Bool("lowfreq", false, "low download frequency (1/50s) instead of 1/2s")
	out := flag.String("o", "", "output file (default stdout)")
	dot := flag.String("dot", "", "also write the tree in Graphviz dot format")
	flag.Parse()

	cfg := streamalloc.InstanceConfig{NumOps: *n, Alpha: *alpha}
	if *large {
		cfg.SizeMin, cfg.SizeMax = 450, 530
	}
	if *lowfreq {
		cfg.Freq = 1.0 / 50
	}
	in := streamalloc.Generate(cfg, *seed)

	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(string(data))
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(in.Tree.DOT(fmt.Sprintf("tree_n%d_seed%d", *n, *seed))), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gentree:", err)
	os.Exit(1)
}
