// Command serve runs the streamalloc allocation daemon: an HTTP server
// exposing the solve pipeline (POST /v1/solve), stream-engine
// verification (POST /v1/verify), the distributed sweep coordinator
// (POST /v1/sweep and lease routes; see internal/coord and command
// sweepworker), liveness (GET /healthz) and counters (GET /statsz) on
// a fixed-size pool of workers with warmed per-worker arenas. See
// internal/serve for the endpoint contracts and README "Server" for
// examples.
//
// Usage:
//
//	serve [-addr :8080] [-workers W] [-queue Q] [-timeout D] [-max-timeout D]
//	      [-max-ops N] [-sweep-lease-ttl D] [-coord-state-dir DIR] [-port-file PATH]
//
// The daemon stops accepting connections on SIGINT/SIGTERM, finishes
// every in-flight and queued request, drains the worker pool and exits
// 0 — smoke tests assert exactly that. With -addr host:0 the kernel
// picks the port; -port-file publishes the bound address for scripts.
// With -coord-state-dir the sweep coordinator journals its job state
// there and recovers it on restart, so a killed daemon resumes its
// sweeps where they stopped (see internal/coord).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers    = flag.Int("workers", 0, "solve workers, each with its own warmed arena (0: one per CPU)")
		queue      = flag.Int("queue", 0, "admission queue depth before 429 shedding (0: 4x workers)")
		timeout    = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		maxOps     = flag.Int("max-ops", 2000, "largest accepted instance, in operators")
		sweepTTL   = flag.Duration("sweep-lease-ttl", 0, "default sweep shard lease deadline (0: coordinator default 30s)")
		stateDir   = flag.String("coord-state-dir", "", "journal + snapshot sweep coordinator state here and recover it on restart (empty: in-memory only)")
		portFile   = flag.String("port-file", "", "write the bound listen address to this file once serving")
	)
	flag.Parse()

	if err := run(*addr, *portFile, serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxOps:         *maxOps,
		SweepLeaseTTL:  *sweepTTL,
		CoordStateDir:  *stateDir,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(addr, portFile string, cfg serve.Config) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	pool, err := serve.Open(cfg)
	if err != nil {
		ln.Close()
		return err
	}
	httpSrv := &http.Server{
		Handler:           pool,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if portFile != "" {
		// Written after Listen succeeded, so a reader that sees the file
		// can connect immediately.
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			pool.Close()
			return fmt.Errorf("writing -port-file: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		pool.Close()
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "serve: draining (signal received)")

	// Stop accepting and wait for in-flight handlers — each blocked on
	// its queued job — then drain the worker pool itself.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		pool.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	pool.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "serve: drained, exiting")
	return nil
}
