// Command experiments regenerates every table and figure of the paper's
// evaluation section and this repository's ablations, writing
// gnuplot-style .dat files and printing ASCII plots and tables.
//
// Usage:
//
//	experiments [-seeds N] [-out DIR] [-only ID] [-workers W] [-verify]
//	experiments -shard i/n [-only ID] ...   # compute one shard's cells
//	experiments -merge n   [-only ID] ...   # merge n shards into .dat
//	experiments -refine-gate [-seeds N]     # per-cell Refined-dominance check
//	experiments -churn-gate  [-seeds N]     # repair-vs-resolve dominance check
//
// IDs: fig2a fig2b fig3 fig3n20 large freq refine churn optimal table1
// v1 abl-downgrade abl-selection ilpwall (default: all).
//
// Sharded figure runs scale a sweep across machines: every shard writes
// <out>/<id>.cells.<i>-of-<n>, and -merge reassembles them into .dat
// output byte-identical to an unsharded run (per-cell seeds are pure
// functions of grid coordinates, so the shard union IS the full grid).
// Tables and ilpwall are not sharded and are skipped in shard mode.
// -verify executes every feasible figure cell on the stream engine and
// prints the verification verdict next to the ranking.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	seeds := flag.Int("seeds", 10, "random instances averaged per data point")
	out := flag.String("out", "results", "directory for .dat/.cells files (empty: skip files)")
	only := flag.String("only", "", "run a single experiment id")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0: one per CPU, 1: serial; output is identical)")
	shardFlag := flag.String("shard", "", "compute only shard i/n of every figure's cells (e.g. -shard 0/2)")
	mergeFlag := flag.Int("merge", 0, "merge n shards' cell files from -out into figures")
	verify := flag.Bool("verify", false, "execute every feasible figure cell on the stream engine and report the verdict")
	refineGate := flag.Bool("refine-gate", false, "run only the refine figure's per-cell dominance gate (Refined <= best constructive on every instance) and exit")
	churnGate := flag.Bool("churn-gate", false, "run only the churn figure's dominance gate (repair cost within tolerance of re-solve on every scenario, strictly fewer operators moved) and exit")
	flag.Parse()

	cfg := experiments.Config{Seeds: *seeds, BaseSeed: 1, Workers: *workers, Verify: *verify}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if *refineGate {
		if *shardFlag != "" || *mergeFlag > 0 {
			fatal(fmt.Errorf("-refine-gate runs unsharded"))
		}
		checked, err := experiments.RefineGate(context.Background(), cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("refine gate: Refined <= best constructive on all %d instances\n", checked)
		return
	}
	if *churnGate {
		if *shardFlag != "" || *mergeFlag > 0 {
			fatal(fmt.Errorf("-churn-gate runs unsharded"))
		}
		checked, err := experiments.ChurnGate(context.Background(), cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("churn gate: repair dominates full re-solve on all %d scenarios (cost within tolerance, strictly fewer operators moved)\n", checked)
		return
	}
	if *shardFlag != "" && *mergeFlag > 0 {
		fatal(fmt.Errorf("-shard and -merge are mutually exclusive"))
	}
	if (*shardFlag != "" || *mergeFlag > 0) && *out == "" {
		fatal(fmt.Errorf("sharded runs need -out to exchange cell files"))
	}
	if (*shardFlag != "" || *mergeFlag > 0) && *verify {
		fatal(fmt.Errorf("-verify is not supported with -shard/-merge (cell files carry no verification column); run it unsharded"))
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	switch {
	case *shardFlag != "":
		var sh experiments.Shard
		if _, err := fmt.Sscanf(*shardFlag, "%d/%d", &sh.Index, &sh.Count); err != nil {
			fatal(fmt.Errorf("bad -shard %q, want i/n: %v", *shardFlag, err))
		}
		runShard(cfg, sh, *only, *out)
	case *mergeFlag > 0:
		mergeShards(cfg, *mergeFlag, *only, *out)
	default:
		runAll(cfg, *only, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// selectedFigures returns the figure ids to run, honouring -only.
func selectedFigures(only string) []string {
	var ids []string
	for _, id := range experiments.FigureIDs() {
		if only == "" || only == id {
			ids = append(ids, id)
		}
	}
	return ids
}

func cellsPath(out, id string, sh experiments.Shard) string {
	return filepath.Join(out, fmt.Sprintf("%s.cells.%d-of-%d", id, sh.Index, sh.Count))
}

// runShard computes and writes one shard's cells for every selected figure.
func runShard(cfg experiments.Config, sh experiments.Shard, only, out string) {
	ids := selectedFigures(only)
	if len(ids) == 0 {
		fatal(fmt.Errorf("unknown experiment id %q", only))
	}
	for _, id := range ids {
		sc, err := experiments.RunFigureShard(context.Background(), id, cfg, sh)
		if err != nil {
			fatal(err)
		}
		path := cellsPath(out, id, sh)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := sc.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d units)\n", path, len(sc.Units))
	}
	if only == "" {
		fmt.Println("shard mode covers figures only; run tables (optimal, table1, v1, ilpwall) unsharded")
	}
}

// mergeShards reassembles n shards' cell files into figures and writes
// the .dat output an unsharded run would have produced.
func mergeShards(cfg experiments.Config, n int, only, out string) {
	ids := selectedFigures(only)
	if len(ids) == 0 {
		fatal(fmt.Errorf("unknown experiment id %q", only))
	}
	for _, id := range ids {
		parts := make([]*experiments.ShardCells, 0, n)
		for i := 0; i < n; i++ {
			sh := experiments.Shard{Index: i, Count: n}
			f, err := os.Open(cellsPath(out, id, sh))
			if err != nil {
				fatal(err)
			}
			sc, err := experiments.DecodeShardCells(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			parts = append(parts, sc)
		}
		fig, err := experiments.MergeFigure(id, cfg, parts)
		if err != nil {
			fatal(err)
		}
		emitFigure(fig, out)
	}
}

// emitFigure prints a figure and writes its .dat file.
func emitFigure(fig *experiments.Figure, out string) {
	fmt.Println(fig.ASCII(76, 18))
	fmt.Printf("ranking (cheapest first): %v\n", fig.Ranking())
	if fig.Verify != nil {
		fmt.Println(fig.Verify)
	}
	fmt.Println()
	if out != "" {
		path := filepath.Join(out, fig.ID+".dat")
		if err := os.WriteFile(path, []byte(fig.Dat()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n\n", path)
	}
}

// runAll is the classic unsharded mode: every figure, table and note.
func runAll(cfg experiments.Config, only, out string) {
	ran := 0
	for _, id := range selectedFigures(only) {
		ran++
		fig, err := experiments.BuildFigure(context.Background(), id, cfg)
		if err != nil {
			fatal(err)
		}
		emitFigure(fig, out)
	}

	tables := []struct {
		id  string
		run func(experiments.Config) *experiments.Table
	}{
		{"table1", func(experiments.Config) *experiments.Table { return experiments.Table1() }},
		{"optimal", experiments.OptimalComparison},
		{"v1", experiments.ThroughputValidation},
	}
	for _, tb := range tables {
		if only != "" && only != tb.id {
			continue
		}
		ran++
		tab := tb.run(cfg)
		fmt.Println(tab.String())
		if out != "" {
			path := filepath.Join(out, tab.ID+".txt")
			if err := os.WriteFile(path, []byte(tab.String()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if only == "" || only == "ilpwall" {
		ran++
		if n, err := experiments.ILPScalingNote(); err == nil {
			fmt.Printf("ILP wall: the full formulation exceeds the size budget from N=%d operators\n", n)
			fmt.Println("(the paper hit the same wall: CPLEX could not open the N=30 model)")
		} else {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment id %q\n", only)
		os.Exit(2)
	}
}
