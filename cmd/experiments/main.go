// Command experiments regenerates every table and figure of the paper's
// evaluation section and this repository's ablations, writing
// gnuplot-style .dat files and printing ASCII plots and tables.
//
// Usage:
//
//	experiments [-seeds N] [-out DIR] [-only ID] [-workers W]
//
// IDs: fig2a fig2b fig3 fig3n20 large freq optimal table1 v1 abl-downgrade
// abl-selection ilpwall (default: all).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	seeds := flag.Int("seeds", 10, "random instances averaged per data point")
	out := flag.String("out", "results", "directory for .dat files (empty: skip files)")
	only := flag.String("only", "", "run a single experiment id")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0: one per CPU, 1: serial; output is identical)")
	flag.Parse()

	cfg := experiments.Config{Seeds: *seeds, BaseSeed: 1, Workers: *workers}

	figures := []struct {
		id  string
		run func(experiments.Config) *experiments.Figure
	}{
		{"fig2a", experiments.Fig2a},
		{"fig2b", experiments.Fig2b},
		{"fig3", experiments.Fig3},
		{"fig3n20", experiments.Fig3SmallTree},
		{"large", experiments.LargeObjects},
		{"freq", experiments.FrequencySweep},
		{"abl-downgrade", experiments.AblationDowngrade},
		{"abl-selection", experiments.AblationSelection},
	}
	tables := []struct {
		id  string
		run func(experiments.Config) *experiments.Table
	}{
		{"table1", func(experiments.Config) *experiments.Table { return experiments.Table1() }},
		{"optimal", experiments.OptimalComparison},
		{"v1", experiments.ThroughputValidation},
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	ran := 0
	for _, f := range figures {
		if *only != "" && *only != f.id {
			continue
		}
		ran++
		fig := f.run(cfg)
		fmt.Println(fig.ASCII(76, 18))
		fmt.Printf("ranking (cheapest first): %v\n\n", fig.Ranking())
		if *out != "" {
			path := filepath.Join(*out, fig.ID+".dat")
			if err := os.WriteFile(path, []byte(fig.Dat()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	for _, tb := range tables {
		if *only != "" && *only != tb.id {
			continue
		}
		ran++
		tab := tb.run(cfg)
		fmt.Println(tab.String())
		if *out != "" {
			path := filepath.Join(*out, tab.ID+".txt")
			if err := os.WriteFile(path, []byte(tab.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if *only == "" || *only == "ilpwall" {
		ran++
		if n, err := experiments.ILPScalingNote(); err == nil {
			fmt.Printf("ILP wall: the full formulation exceeds the size budget from N=%d operators\n", n)
			fmt.Println("(the paper hit the same wall: CPLEX could not open the N=30 model)")
		} else {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment id %q\n", *only)
		os.Exit(2)
	}
}
