package streamalloc

import (
	"context"
	"time"

	"repro/internal/coord"
)

// Distributed sweeps are first-class jobs: a daemon (command serve)
// hosts the coordinator, any number of workers (command sweepworker)
// claim shard leases against it, and clients drive jobs through this
// surface — following sweep.go's pattern of aliasing the internal
// engine so users never import internal/coord. Because per-cell seeds
// are pure functions of grid coordinates (SeedFor), shard leases are
// idempotent: workers can die, straggle or double-complete and the
// merged figure is still byte-identical to a single-process
// SweepFigureCtx run. See README "Distributed sweeps".
type (
	// SweepJob is a distributed sweep submission: a named paper figure,
	// its parameters, and the number of shard work units.
	SweepJob = coord.SweepJob
	// Lease is one granted shard work unit with its deadline token.
	// Most users never touch leases — SweepWorker runs the claim/
	// renew/complete loop — but the type is public for custom workers.
	Lease = coord.Lease
	// Progress is a point-in-time job snapshot: per-shard lease states,
	// re-lease and duplicate-completion counters, merge latency.
	Progress = coord.Progress
	// SweepClient is a low-level client for the daemon's sweep
	// endpoints (claim/renew/complete, progress, result). SubmitSweep
	// and AwaitSweep cover the common path without it.
	SweepClient = coord.Client
	// SweepWorkerOptions tunes SweepWorker.
	SweepWorkerOptions = coord.WorkerOptions
)

// NewSweepClient returns a client for the daemon at baseURL, e.g.
// "http://127.0.0.1:8080".
func NewSweepClient(baseURL string) *SweepClient { return coord.NewClient(baseURL) }

// SubmitSweep submits a distributed sweep job to the daemon at
// baseURL and returns its job id for AwaitSweep or progress polling.
func SubmitSweep(ctx context.Context, baseURL string, job SweepJob) (string, error) {
	return coord.NewClient(baseURL).Submit(ctx, job)
}

// AwaitSweep polls the job until every shard has landed and returns
// the merged figure's .dat text — byte-identical to the same figure
// built by SweepFigureCtx in one process. It blocks until the job
// finishes, ctx is cancelled, or the job fails.
func AwaitSweep(ctx context.Context, baseURL, jobID string) (string, error) {
	return coord.NewClient(baseURL).Await(ctx, jobID, 250*time.Millisecond)
}

// SweepWorker claims, computes and completes shard leases against the
// daemon at baseURL until ctx is cancelled — the in-process
// equivalent of running the sweepworker command.
func SweepWorker(ctx context.Context, baseURL string, opts SweepWorkerOptions) error {
	return coord.RunWorker(ctx, coord.NewClient(baseURL), opts)
}
