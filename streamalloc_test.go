package streamalloc_test

import (
	"testing"

	streamalloc "repro"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	in := streamalloc.Generate(streamalloc.InstanceConfig{NumOps: 20, Alpha: 1.0}, 7)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	var s streamalloc.Solver
	best, err := s.Best(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := streamalloc.Validate(best.Mapping); err != nil {
		t.Fatal(err)
	}
	if lb := streamalloc.LowerBound(in); best.Cost < lb {
		t.Fatalf("cost %v below lower bound %v", best.Cost, lb)
	}
	rep, err := streamalloc.Verify(best, streamalloc.SimOptions{Results: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput < in.Rho {
		t.Fatalf("throughput %v below rho %v", rep.Throughput, in.Rho)
	}
	if mt := streamalloc.MaxThroughput(best.Mapping); mt < in.Rho {
		t.Fatalf("analytic max %v below rho", mt)
	}
}

func TestPublicSolveEachHeuristic(t *testing.T) {
	in := streamalloc.Generate(streamalloc.InstanceConfig{NumOps: 10, Alpha: 0.9}, 3)
	for _, name := range streamalloc.Heuristics() {
		res, err := streamalloc.Solve(in, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Heuristic != name {
			t.Fatalf("result labelled %q, want %q", res.Heuristic, name)
		}
	}
}

func TestPublicInfeasible(t *testing.T) {
	in := streamalloc.Generate(streamalloc.InstanceConfig{NumOps: 40, Alpha: 3}, 1)
	_, err := streamalloc.Solve(in, "Comp-Greedy")
	if err == nil || !streamalloc.IsInfeasible(err) {
		t.Fatalf("want infeasible, got %v", err)
	}
}

func TestHomogeneousPlatform(t *testing.T) {
	p := streamalloc.HomogeneousPlatform(2, 3)
	if !p.Catalog.Homogeneous() {
		t.Fatal("not homogeneous")
	}
	in := streamalloc.Generate(streamalloc.InstanceConfig{NumOps: 8, Platform: p}, 1)
	res, err := streamalloc.Solve(in, "Subtree-bottom-up")
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs < 1 {
		t.Fatal("no processors purchased")
	}
}

func TestPublicRefine(t *testing.T) {
	in := streamalloc.Generate(streamalloc.InstanceConfig{NumOps: 24, Alpha: 1.6}, 9)
	res, err := streamalloc.Refine(in, streamalloc.RefineOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamalloc.Validate(res.Mapping); err != nil {
		t.Fatal(err)
	}
	// The refined cost never exceeds any constructive heuristic's.
	for _, name := range streamalloc.Heuristics() {
		hres, err := streamalloc.Solve(in, name)
		if err != nil {
			if streamalloc.IsInfeasible(err) {
				continue
			}
			t.Fatal(err)
		}
		if res.Cost > hres.Cost+1e-9 {
			t.Fatalf("refined cost %v exceeds %s cost %v", res.Cost, name, hres.Cost)
		}
	}
	// The refinement layer is also addressable by name.
	byName, err := streamalloc.Solve(in, "Refined")
	if err != nil {
		t.Fatal(err)
	}
	if byName.Cost != res.Cost {
		t.Fatalf("Solve(\"Refined\") cost %v != Refine cost %v", byName.Cost, res.Cost)
	}
}
