package streamalloc_test

import (
	"context"
	"testing"

	streamalloc "repro"
)

// TestPublicGridEndToEnd drives the whole public sweep surface: a Grid
// over two heuristics, streaming cells in deterministic order, shard
// partitioning whose union equals the full grid, and per-cell seeds
// reproducible from the exported SeedFor.
func TestPublicGridEndToEnd(t *testing.T) {
	mk := streamalloc.MakeInstances(func(x float64) streamalloc.InstanceConfig {
		return streamalloc.InstanceConfig{NumOps: int(x), Alpha: 0.9}
	})
	grid := func() *streamalloc.Grid {
		return &streamalloc.Grid{
			Heuristics: []string{"Subtree-bottom-up", "Comp-Greedy"},
			Xs:         []float64{10, 20, 30},
			Seeds:      2,
			BaseSeed:   42,
			Workers:    4,
			Make:       mk,
		}
	}

	g := grid()
	full, err := g.Cells(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != g.Size() {
		t.Fatalf("got %d cells, want %d", len(full), g.Size())
	}
	feasible := 0
	for i, c := range full {
		if c.Index != i {
			t.Fatalf("cell %d carries index %d: stream out of order", i, c.Index)
		}
		if c.Feasible() {
			feasible++
			if c.Cost <= 0 || c.Procs <= 0 {
				t.Fatalf("cell %d: feasible but empty: %+v", i, c)
			}
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible cells on an easy grid")
	}

	// Sharding: the union of both shards is the full grid, cell for cell.
	seen := make(map[int]streamalloc.Cell)
	for i := 0; i < 2; i++ {
		sg := grid()
		sg.Shard = streamalloc.Shard{Index: i, Count: 2}
		sg.Workers = 1 + i // shards may run anywhere, at any width
		cells, err := sg.Cells(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			if _, dup := seen[c.Index]; dup {
				t.Fatalf("cell %d computed by two shards", c.Index)
			}
			seen[c.Index] = c
		}
	}
	if len(seen) != len(full) {
		t.Fatalf("shard union has %d cells, full grid %d", len(seen), len(full))
	}
	for i, want := range full {
		got := seen[i]
		if got.Cost != want.Cost || got.Procs != want.Procs || got.Seed != want.Seed ||
			got.Feasible() != want.Feasible() {
			t.Fatalf("cell %d differs between shard union and full run:\n%+v\n%+v", i, got, want)
		}
	}
}

// TestPublicDerivedSeeds: DerivedSeeds cells are reproducible from the
// exported SeedFor — the contract external shard orchestrators rely on.
func TestPublicDerivedSeeds(t *testing.T) {
	g := &streamalloc.Grid{
		Heuristics: []string{"Subtree-bottom-up"},
		Xs:         []float64{10, 20},
		Seeds:      2,
		BaseSeed:   7,
		SeedOf:     streamalloc.DerivedSeeds("mygrid"),
		Make: streamalloc.MakeInstances(func(x float64) streamalloc.InstanceConfig {
			return streamalloc.InstanceConfig{NumOps: int(x)}
		}),
	}
	cells, err := g.Cells(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Seed == 7+int64(c.Rep) {
			t.Fatalf("cell %d still uses sequential seeds", c.Index)
		}
	}
	// An external orchestrator recomputes cell (xi=1, rep=1)'s seed with
	// only the public SeedFor and the documented label scheme.
	want := streamalloc.SeedFor(7, "mygrid:x1:r1")
	if got := g.CellSeed(1, 1); got != want {
		t.Fatalf("CellSeed(1,1) = %d, SeedFor derivation = %d", got, want)
	}
}

// TestPublicMultiTenantSweep opens the multi-tenant harness through the
// public API: a Grid whose factory Combines several tenants onto one
// shared platform, swept over a tenant-load axis with a verification
// column.
func TestPublicMultiTenantSweep(t *testing.T) {
	base := streamalloc.Generate(streamalloc.InstanceConfig{NumOps: 5}, 11)
	w := streamalloc.Workload{
		NumTypes: base.NumTypes, Sizes: base.Sizes, Freqs: base.Freqs,
		Holders: base.Holders, Platform: base.Platform, Alpha: 1.0,
	}
	g := &streamalloc.Grid{
		Heuristics: []string{"Subtree-bottom-up", "Comp-Greedy"},
		Xs:         []float64{1, 2, 4}, // the alerting tenant's throughput target
		Seeds:      2,
		BaseSeed:   1,
		Verify:     &streamalloc.SimOptions{Results: 60},
		Make: func(env *streamalloc.WorkerEnv, x float64, seed int64) (*streamalloc.Instance, error) {
			// The worker-arena path: env.RandomTree/env.Combine draw the
			// same streams as the one-shot RandomTree/Combine, so cells
			// are identical and steady-state allocation-free.
			apps := []streamalloc.App{
				{Tree: env.RandomTree(streamalloc.SeedFor(seed, "dashboard"), 8, w.NumTypes), Rho: 1},
				{Tree: env.RandomTree(streamalloc.SeedFor(seed, "alerting"), 10, w.NumTypes), Rho: x},
			}
			return env.Combine(apps, w)
		},
	}
	cells, err := g.Cells(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	feasible, meets := 0, 0
	for _, c := range cells {
		if !c.Feasible() {
			continue
		}
		feasible++
		if c.MeetsRho() {
			meets++
		}
	}
	if feasible == 0 {
		t.Fatal("no multi-tenant cell was feasible")
	}
	if meets != feasible {
		t.Fatalf("%d/%d feasible multi-tenant cells meet rho on the stream engine", meets, feasible)
	}
}

// TestSweepFigure: the named paper figures are reachable from the
// public API and shaped as documented.
func TestSweepFigure(t *testing.T) {
	ids := streamalloc.FigureIDs()
	if len(ids) < 8 {
		t.Fatalf("FigureIDs = %v, want the 8 paper figures", ids)
	}
	fig, err := streamalloc.SweepFigure("fig2a", streamalloc.SweepConfig{Seeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 7 || fig.Dat() == "" {
		t.Fatalf("fig2a has %d series", len(fig.Series))
	}
	if _, err := streamalloc.SweepFigure("fig9z", streamalloc.SweepConfig{}); err == nil {
		t.Fatal("unknown figure id accepted")
	}
}
