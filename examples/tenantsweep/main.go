// Tenant sweep: the public Grid API end to end on a multi-tenant
// workload.
//
// Scenario: a platform team co-hosts two continuous queries — a
// dashboard (1 result/s) and an alerting pipeline whose target rate is
// being renegotiated — on one purchased platform. Before signing the
// SLA they sweep the alerting rate over 1..6 results/s, 5 seeded
// workloads per point, comparing two placement heuristics, with every
// feasible mapping re-executed on the discrete-event stream engine
// (Grid.Verify) to confirm the analytic model holds.
//
// The same grid shards across machines without code changes: run with
//
//	tenantsweep -shard 0/2    # on machine A
//	tenantsweep -shard 1/2    # on machine B
//
// and the printed cells of both runs together are exactly the cells of
// the unsharded run — per-cell seeds depend only on grid coordinates.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	streamalloc "repro"
)

func main() {
	shardFlag := flag.String("shard", "", "run only shard i/n of the grid (e.g. 0/2)")
	workers := flag.Int("workers", 0, "sweep workers (0: one per CPU; output identical)")
	flag.Parse()

	var shard streamalloc.Shard
	if *shardFlag != "" {
		if _, err := fmt.Sscanf(*shardFlag, "%d/%d", &shard.Index, &shard.Count); err != nil {
			log.Fatalf("bad -shard %q: %v", *shardFlag, err)
		}
	}

	// The shared environment: object catalog, holder placement and the
	// paper's purchasable platform, borrowed from a generated instance.
	base := streamalloc.Generate(streamalloc.InstanceConfig{NumOps: 5}, 11)
	w := streamalloc.Workload{
		NumTypes: base.NumTypes, Sizes: base.Sizes, Freqs: base.Freqs,
		Holders: base.Holders, Platform: base.Platform, Alpha: 1.0,
	}

	g := &streamalloc.Grid{
		Heuristics: []string{"Subtree-bottom-up", "Comp-Greedy"},
		Xs:         []float64{1, 2, 3, 4, 5, 6}, // alerting tenant's rho
		Seeds:      5,
		BaseSeed:   1,
		Workers:    *workers,
		Shard:      shard,
		Verify:     &streamalloc.SimOptions{Results: 60},
		Make: func(env *streamalloc.WorkerEnv, x float64, seed int64) (*streamalloc.Instance, error) {
			// env.RandomTree/env.Combine build each cell's tenants on the
			// worker's reusable arenas — same random streams as the
			// one-shot RandomTree/Combine, so output is unchanged, but a
			// long sweep stops paying per-cell tree construction.
			apps := []streamalloc.App{
				{Tree: env.RandomTree(streamalloc.SeedFor(seed, "dashboard"), 8, w.NumTypes), Rho: 1},
				{Tree: env.RandomTree(streamalloc.SeedFor(seed, "alerting"), 12, w.NumTypes), Rho: x},
			}
			return env.Combine(apps, w)
		},
	}

	fmt.Printf("%-22s %6s %4s %10s %6s %8s\n", "heuristic", "rho", "rep", "cost($)", "procs", "verified")
	err := g.Run(context.Background(), func(c streamalloc.Cell) {
		if !c.Feasible() {
			fmt.Printf("%-22s %6g %4d %10s\n", c.Heuristic, c.X, c.Rep, "infeasible")
			return
		}
		fmt.Printf("%-22s %6g %4d %10.0f %6d %8v\n", c.Heuristic, c.X, c.Rep, c.Cost, c.Procs, c.MeetsRho())
	})
	if err != nil {
		log.Fatal(err)
	}
}
