// Quickstart: generate a paper-style instance, run all six heuristics,
// validate and execute the cheapest mapping, and render the paper's
// Figure 1(a) example tree as Graphviz dot.
package main

import (
	"fmt"
	"log"

	streamalloc "repro"
	"repro/internal/apptree"
)

func main() {
	// A random 40-operator application with the paper's defaults: 15
	// object types of 5-30 MB refreshed every 2s, rho = 1 result/s.
	in := streamalloc.Generate(streamalloc.InstanceConfig{NumOps: 40, Alpha: 0.9}, 42)
	fmt.Printf("application: %d operators over %d basic-object leaves\n",
		in.Tree.NumOps(), in.Tree.NumLeaves())
	fmt.Printf("cost lower bound: $%.0f\n\n", streamalloc.LowerBound(in))

	var solver streamalloc.Solver
	for _, o := range solver.SolveAll(in) {
		if o.Err != nil {
			fmt.Printf("  %-22s no feasible mapping\n", o.Name)
			continue
		}
		fmt.Printf("  %-22s $%-7.0f (%d processors)\n", o.Name, o.Result.Cost, o.Result.Procs)
	}

	best, err := solver.Best(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := streamalloc.Validate(best.Mapping); err != nil {
		log.Fatal(err)
	}
	rep, err := streamalloc.Verify(best, streamalloc.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest: %s at $%.0f; stream engine sustains %.2f results/s (target %.0f)\n",
		best.Heuristic, best.Cost, rep.Throughput, in.Rho)

	// The paper's Figure 1(a) standard tree, ready for `dot -Tpng`.
	fig1a := paperFigure1a()
	fmt.Printf("\nFigure 1(a) as Graphviz dot:\n%s", fig1a.DOT("fig1a"))
}

// paperFigure1a builds the exact example of the paper's Figure 1(a).
func paperFigure1a() *apptree.Tree {
	t := &apptree.Tree{}
	t.Ops = make([]apptree.Operator, 5)
	t.Root = 3 // n4
	t.Ops[3] = apptree.Operator{Parent: apptree.NoParent, ChildOps: []int{4, 2}}
	t.Ops[4] = apptree.Operator{Parent: 3, ChildOps: []int{1, 0}}
	t.Ops[2] = apptree.Operator{Parent: 3}
	t.Ops[1] = apptree.Operator{Parent: 4}
	t.Ops[0] = apptree.Operator{Parent: 4}
	add := func(op, obj int) {
		li := len(t.Leaves)
		t.Leaves = append(t.Leaves, apptree.Leaf{Object: obj, Parent: op})
		t.Ops[op].Leaves = append(t.Ops[op].Leaves, li)
	}
	add(1, 0) // n2 <- o1
	add(0, 0) // n1 <- o1
	add(0, 1) // n1 <- o2
	add(2, 1) // n3 <- o2
	add(2, 2) // n3 <- o3
	return t
}
