// Video surveillance: the motivating application of the paper's
// introduction (after Srivastava et al.). Cameras spread over a campus
// continuously publish frames; the query tree applies motion filters per
// camera pair, then correlates regions, then aggregates a site-wide alert.
//
// This example builds the operator tree explicitly (no random generation),
// provisions a platform for it at two different QoS targets, and executes
// the chosen mapping on the stream engine.
package main

import (
	"fmt"
	"log"

	streamalloc "repro"
	"repro/internal/apptree"
	"repro/internal/instance"
)

func main() {
	// Eight cameras -> 8 object types. A frame bundle is ~12-20 MB and is
	// refreshed every 2 seconds (the paper's high-frequency regime).
	const cameras = 8
	sizes := []float64{12, 14, 16, 18, 20, 13, 15, 17}
	freqs := make([]float64, cameras)
	for i := range freqs {
		freqs[i] = 0.5
	}

	// Tree: per-pair motion detection (al-operators) -> regional
	// correlation -> site aggregation. 4 + 2 + 1 = 7 operators.
	t := &apptree.Tree{}
	t.Ops = make([]apptree.Operator, 7)
	addLeaf := func(op, cam int) {
		li := len(t.Leaves)
		t.Leaves = append(t.Leaves, apptree.Leaf{Object: cam, Parent: op})
		t.Ops[op].Leaves = append(t.Ops[op].Leaves, li)
	}
	// Operators 0-3: motion detection over camera pairs.
	for i := 0; i < 4; i++ {
		t.Ops[i] = apptree.Operator{Parent: 4 + i/2}
		addLeaf(i, 2*i)
		addLeaf(i, 2*i+1)
	}
	// Operators 4,5: regional correlation; operator 6: site aggregation.
	t.Ops[4] = apptree.Operator{Parent: 6, ChildOps: []int{0, 1}}
	t.Ops[5] = apptree.Operator{Parent: 6, ChildOps: []int{2, 3}}
	t.Ops[6] = apptree.Operator{Parent: apptree.NoParent, ChildOps: []int{4, 5}}
	t.Root = 6

	// Camera feeds are recorded on 3 of the 6 data servers, round-robin.
	holders := make([][]int, cameras)
	for cam := range holders {
		holders[cam] = []int{cam % 3}
	}

	for _, rho := range []float64{1, 5} {
		in := &instance.Instance{
			Tree:     t,
			NumTypes: cameras,
			Sizes:    sizes,
			Freqs:    freqs,
			Holders:  holders,
			Platform: streamalloc.DefaultPlatform(),
			Rho:      rho,
			Alpha:    1.1, // pattern recognition is slightly super-linear
		}
		in.Refresh()
		if err := in.Validate(); err != nil {
			log.Fatal(err)
		}

		var solver streamalloc.Solver
		best, err := solver.Best(in)
		if err != nil {
			log.Fatalf("rho=%g: %v", rho, err)
		}
		rep, err := streamalloc.Verify(best, streamalloc.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rho = %g alerts/s: %s buys %d processor(s) for $%.0f; sustains %.1f/s\n",
			rho, best.Heuristic, best.Procs, best.Cost, rep.Throughput)
		procs, ops, _ := best.Mapping.Compact()
		for i := range procs {
			cat := in.Platform.Catalog
			fmt.Printf("    P%d (%.2f GHz, %.0f Gbps): operators %v\n",
				i, cat.CPUs[procs[i].Config.CPU].SpeedGHz, cat.NICs[procs[i].Config.NIC].Gbps, ops[i])
		}
	}
}
