// Network monitoring: the paper's second motivating domain. Routers
// export flow summaries; a continuous query joins them against a slowly
// changing policy table — the classic left-deep join tree of Figure 1(b).
//
// The example compares the six heuristics on this structured (rather than
// random) workload and shows how the download frequency changes the
// purchased network cards (the paper's frequency experiment, in miniature).
package main

import (
	"fmt"
	"log"

	streamalloc "repro"
	"repro/internal/apptree"
	"repro/internal/instance"
)

func main() {
	// Object types: 0-5 are per-router flow summaries (25 MB), 6 is the
	// policy table (8 MB). The left-deep join chain folds routers one by
	// one into the running result, consulting the policy table first.
	const routers = 6
	sizes := []float64{25, 25, 25, 25, 25, 25, 8}
	holders := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {0, 1, 2}}

	// Left-deep chain: bottom operator joins policy with router 0, each
	// next operator joins one more router.
	objects := []int{6, 0, 1, 2, 3, 4, 5}
	tree := apptree.LeftDeep(objects)

	for _, period := range []float64{2, 50} {
		freqs := make([]float64, len(sizes))
		for i := range freqs {
			freqs[i] = 1 / period
		}
		in := &instance.Instance{
			Tree:     tree,
			NumTypes: routers + 1,
			Sizes:    sizes,
			Freqs:    freqs,
			Holders:  holders,
			Platform: streamalloc.DefaultPlatform(),
			Rho:      1,
			Alpha:    1.0, // joins roughly linear in input volume
		}
		in.Refresh()
		if err := in.Validate(); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("update period %gs (download rate %s):\n", period,
			map[float64]string{2: "high", 50: "low"}[period])
		var solver streamalloc.Solver
		for _, o := range solver.SolveAll(in) {
			if o.Err != nil {
				fmt.Printf("  %-22s no feasible mapping\n", o.Name)
				continue
			}
			fmt.Printf("  %-22s $%-7.0f (%d processors)\n", o.Name, o.Result.Cost, o.Result.Procs)
		}
		best, err := solver.Best(in)
		if err != nil {
			log.Fatal(err)
		}
		procs, _, _ := best.Mapping.Compact()
		cat := in.Platform.Catalog
		fmt.Printf("  -> best NICs purchased:")
		for i := range procs {
			fmt.Printf(" %.0fGbps", cat.NICs[procs[i].Config.NIC].Gbps)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("As in the paper, lower frequencies keep the same operator mapping but")
	fmt.Println("can downgrade to cheaper network cards.")
}
