// Multi-query provisioning: demonstrates the paper's two future-work
// directions, implemented in internal/multiapp and internal/rewrite.
//
// Scenario: an operator runs three continuous queries over the same data
// catalog — a dashboard (1 result/s), an alerting query (4/s) and a
// nightly digest (0.1/s). We compare buying one platform per query with
// co-allocating all three on a shared platform, then let the rewriter
// reshape the alerting query's join chain (its operators are associative
// and commutative) to cut the intermediate data volume.
package main

import (
	"fmt"
	"log"

	"repro/internal/apptree"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/multiapp"
	"repro/internal/rewrite"
	"repro/internal/rng"
)

func main() {
	base := instance.Generate(instance.Config{NumOps: 5}, 11) // borrow its catalog
	w := multiapp.Workload{
		NumTypes: base.NumTypes,
		Sizes:    base.Sizes,
		Freqs:    base.Freqs,
		Holders:  base.Holders,
		Platform: base.Platform,
		Alpha:    1.1,
	}

	dashboard := apptree.Random(rng.New(1), 8, w.NumTypes)
	alerting := apptree.Random(rng.New(2), 12, w.NumTypes)
	digest := apptree.Random(rng.New(3), 6, w.NumTypes)
	apps := []multiapp.App{{Tree: dashboard, Rho: 1}, {Tree: alerting, Rho: 4}, {Tree: digest, Rho: 0.1}}

	solve := func(in *instance.Instance) *heuristics.Result {
		res, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Independent platforms: one purchase per query.
	total := 0.0
	for i, app := range apps {
		in, err := multiapp.Combine([]multiapp.App{app}, w)
		if err != nil {
			log.Fatal(err)
		}
		res := solve(in)
		fmt.Printf("query %d alone (rho=%g): $%.0f (%d processors)\n", i+1, app.Rho, res.Cost, res.Procs)
		total += res.Cost
	}
	fmt.Printf("independent platforms total: $%.0f\n\n", total)

	// Shared platform.
	combined, err := multiapp.Combine(apps, w)
	if err != nil {
		log.Fatal(err)
	}
	res := solve(combined)
	fmt.Printf("shared platform: $%.0f (%d processors) — %.0f%% of the independent cost\n\n",
		res.Cost, res.Procs, 100*res.Cost/total)

	// Mutable-operator rewriting of the alerting query.
	alertIn := &instance.Instance{
		Tree: alerting, NumTypes: w.NumTypes, Sizes: w.Sizes, Freqs: w.Freqs,
		Holders: w.Holders, Platform: w.Platform, Rho: 4, Alpha: w.Alpha,
	}
	alertIn.Refresh()
	cands, err := rewrite.Optimize(alertIn, heuristics.SubtreeBottomUp{}, heuristics.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alerting query rewrites (volume = total intermediate MB per result):")
	for _, c := range cands {
		vol := rewrite.Volume(c.Tree, w.Sizes)
		if c.Err != nil {
			fmt.Printf("  %-13s volume %7.0f MB   infeasible\n", c.Name, vol)
			continue
		}
		fmt.Printf("  %-13s volume %7.0f MB   $%.0f (%d processors)\n",
			c.Name, vol, c.Result.Cost, c.Result.Procs)
	}
}
