// Cloud provisioning: the paper frames the constructive scenario as
// renting resources from a cloud provider (its reference [1] is Amazon
// EC2). This example sweeps the QoS target rho and tabulates how the
// purchased platform grows, comparing the best heuristic against the cost
// lower bound — the "how much does each extra unit of throughput cost me?"
// question an operator would ask.
package main

import (
	"fmt"

	streamalloc "repro"
)

func main() {
	fmt.Println("rho (results/s)  best heuristic       cost ($)  procs  lower bound ($)")
	fmt.Println("---------------  -------------------  --------  -----  ---------------")
	for _, rho := range []float64{1, 5, 10, 15, 20, 25, 30, 40, 60} {
		in := streamalloc.Generate(streamalloc.InstanceConfig{
			NumOps: 30,
			Alpha:  1.2,
			Rho:    rho,
		}, 7)
		var solver streamalloc.Solver
		best, err := solver.Best(in)
		if err != nil {
			fmt.Printf("%15g  no feasible platform at this throughput\n", rho)
			continue
		}
		fmt.Printf("%15g  %-19s  %8.0f  %5d  %15.0f\n",
			rho, best.Heuristic, best.Cost, best.Procs, streamalloc.LowerBound(in))
	}
	fmt.Println()
	fmt.Println("Higher targets force faster CPUs, then more processors, until the")
	fmt.Println("inter-processor links make the target unreachable (the paper's")
	fmt.Println("feasibility cliff, here in the rho dimension).")
}
