// Package streamalloc is a Go reproduction of "Resource Allocation
// Strategies for Constructive In-Network Stream Processing" (Benoit,
// Casanova, Rehn-Sonigo, Robert — IPDPS/APDCM 2009), grown into a
// library with a parallel solve & sweep engine.
//
// The library answers the paper's question: given an application that is a
// binary tree of operators over continuously-updated basic objects, which
// processors should be purchased from a price catalog, and how should
// operators be mapped onto them, so that a target result throughput rho is
// sustained at minimum platform cost?
//
// # Quick start
//
//	in := streamalloc.Generate(streamalloc.InstanceConfig{NumOps: 40, Alpha: 0.9}, 42)
//	var solver streamalloc.Solver
//	res, err := solver.Best(in)         // cheapest feasible mapping
//	rep, err := streamalloc.Verify(res, streamalloc.SimOptions{}) // run it
//
// # Components
//
// The public surface re-exports the internal packages:
//
//   - instance generation per the paper's Section 5 methodology,
//   - the six placement heuristics of Section 4 plus server selection and
//     the downgrade step,
//   - independent constraint validation (Section 2.3, equations (1)-(5)),
//   - cost lower bounds, an exact solver and an ILP (CPLEX substitute)
//     for small homogeneous instances,
//   - a discrete-event stream engine that executes mappings and measures
//     the throughput they sustain,
//   - a first-class sweep subsystem (Grid, see sweep.go): streaming
//     cells in deterministic order, exact Shard partitioning across
//     machines, an opt-in per-cell verification column, and multi-tenant
//     workloads via Combine,
//   - the experiment harness that regenerates every figure and table on
//     that same engine.
//
// See docs/ARCHITECTURE.md for the paper-section-to-package map and the
// solve/sweep data flow.
//
// # Performance contract
//
// The solve and simulate hot paths are built for sweep workloads
// (thousands of solves per experiment) and follow two repository-wide
// rules:
//
// Determinism. Every solve is a pure function of (instance, heuristic,
// seed): randomness flows through derived SplitMix64 substreams, sort
// orders are total (ties break on indices), and the Mapping's
// incrementally-maintained per-processor loads are evaluated in the same
// canonical order a from-scratch recomputation would use — so results are
// byte-identical at any worker count, shard partition, or scratch-reuse
// mode.
//
// Scratch ownership. Reusable state (a Mapping's constraint scratch and
// adjacency caches, a SimRunner's engine buffers, a sweep worker's
// generator/solve-context/runner environment) is single-owner and NOT
// safe for concurrent use; even read-only queries may write shared
// scratch. Batch and sweep engines hand every goroutine its own
// environment and hand out results before recycling storage. Anything a
// caller wants to keep across the owner's next use must be cloned.
package streamalloc
