package streamalloc_test

import (
	"context"
	"fmt"

	streamalloc "repro"
)

// ExampleGrid declares a small sweep — two heuristics over three tree
// sizes, two seeded instances per cell — and streams its cells in
// deterministic order. Output is byte-identical at any Workers count.
func ExampleGrid() {
	g := &streamalloc.Grid{
		Heuristics: []string{"Subtree-bottom-up", "Comp-Greedy"},
		Xs:         []float64{10, 20, 40},
		Seeds:      2,
		BaseSeed:   1,
		Workers:    4,
		Make: streamalloc.MakeInstances(func(x float64) streamalloc.InstanceConfig {
			return streamalloc.InstanceConfig{NumOps: int(x), Alpha: 0.9}
		}),
	}
	feasible := 0
	err := g.Run(context.Background(), func(c streamalloc.Cell) {
		if c.Feasible() {
			feasible++
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d/%d cells feasible\n", feasible, g.Size())
	// Output:
	// 12/12 cells feasible
}

// ExampleShard partitions one grid across two "machines". Per-cell
// seeds depend only on grid coordinates (recomputable via SeedFor), so
// the shard union is cell-for-cell identical to the unsharded run.
func ExampleShard() {
	grid := func(sh streamalloc.Shard) *streamalloc.Grid {
		return &streamalloc.Grid{
			Heuristics: []string{"Subtree-bottom-up"},
			Xs:         []float64{10, 20},
			Seeds:      3,
			BaseSeed:   1,
			Shard:      sh,
			Make: streamalloc.MakeInstances(func(x float64) streamalloc.InstanceConfig {
				return streamalloc.InstanceConfig{NumOps: int(x), Alpha: 0.9}
			}),
		}
	}
	full, _ := grid(streamalloc.Shard{}).Cells(context.Background())
	union := map[int]float64{}
	for i := 0; i < 2; i++ {
		part, _ := grid(streamalloc.Shard{Index: i, Count: 2}).Cells(context.Background())
		for _, c := range part {
			union[c.Index] = c.Cost
		}
	}
	identical := len(union) == len(full)
	for _, c := range full {
		identical = identical && union[c.Index] == c.Cost
	}
	fmt.Printf("shards cover %d cells, union == full grid: %v\n", len(union), identical)
	// Output:
	// shards cover 6 cells, union == full grid: true
}

// ExampleCombine provisions two tenants — a dashboard and a 3x-rate
// alerting query — on one shared platform and verifies the cheapest
// mapping on the discrete-event stream engine.
func ExampleCombine() {
	base := streamalloc.Generate(streamalloc.InstanceConfig{NumOps: 5}, 11)
	w := streamalloc.Workload{
		NumTypes: base.NumTypes, Sizes: base.Sizes, Freqs: base.Freqs,
		Holders: base.Holders, Platform: base.Platform, Alpha: 1.0,
	}
	in, err := streamalloc.Combine([]streamalloc.App{
		{Tree: streamalloc.RandomTree(1, 8, w.NumTypes), Rho: 1},
		{Tree: streamalloc.RandomTree(2, 10, w.NumTypes), Rho: 3},
	}, w)
	if err != nil {
		panic(err)
	}
	var s streamalloc.Solver
	res, err := s.Best(in)
	if err != nil {
		panic(err)
	}
	rep, err := streamalloc.Verify(res, streamalloc.SimOptions{Results: 60})
	if err != nil {
		panic(err)
	}
	fmt.Printf("two tenants on %d processors, throughput meets target: %v\n",
		res.Procs, rep.Throughput >= 0.9*in.Rho)
	// Output:
	// two tenants on 1 processors, throughput meets target: true
}

// ExampleSubmitSweep submits a distributed figure sweep to a running
// daemon (cmd/serve) and waits for the merged result — byte-identical
// to building the figure in one process, no matter how many workers
// computed it or how many of them failed mid-shard. This example is
// not run: it needs a live daemon plus workers (cmd/sweepworker).
func ExampleSubmitSweep() {
	ctx := context.Background()
	id, err := streamalloc.SubmitSweep(ctx, "http://127.0.0.1:8080", streamalloc.SweepJob{
		Figure: "fig2a", // any of streamalloc.FigureIDs()
		Seeds:  10,
		Shards: 8, // eight leaseable work units
	})
	if err != nil {
		panic(err)
	}
	dat, err := streamalloc.AwaitSweep(ctx, "http://127.0.0.1:8080", id)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(dat) > 0)
}

// ExampleSweepWorker runs an in-process sweep worker against a
// daemon: it claims shard leases with backoff and jitter, heartbeats
// renewals while computing, and exits once no work remains. The
// sweepworker command is this loop as a standalone binary. This
// example is not run: it needs a live daemon.
func ExampleSweepWorker() {
	err := streamalloc.SweepWorker(context.Background(), "http://127.0.0.1:8080",
		streamalloc.SweepWorkerOptions{Name: "w1", ExitIdle: true})
	fmt.Println(err == nil)
}
