package streamalloc

import (
	"context"

	"repro/internal/apptree"
	"repro/internal/experiments"
	"repro/internal/multiapp"
	"repro/internal/rng"
)

// Sweeps are first-class: a Grid declares a (heuristic x instance x
// seed) experiment — the same engine that regenerates every figure of
// the paper — and Run streams its completed Cells in deterministic
// order at any worker count. Grids partition exactly across machines
// with Shard (per-cell seeds are pure functions of grid coordinates,
// so the union of shards is cell-for-cell identical to one big run),
// and opt into a per-cell stream-engine verification column with
// Verify. See the package example and README "Sweeps".
type (
	// Grid is a declarative sweep; fill the axes and a Make factory,
	// then call Run or Cells.
	Grid = experiments.Grid
	// Cell is one completed grid point.
	Cell = experiments.Cell
	// Shard selects one of N disjoint, exactly-reassemblable cell
	// partitions of a Grid.
	Shard = experiments.Shard
	// WorkerEnv is the reusable per-worker environment handed to a
	// Grid's instance factory; its Generate method is the
	// zero-steady-state-allocation way to build per-cell instances.
	WorkerEnv = experiments.WorkerEnv
)

// MakeInstances adapts a per-column InstanceConfig into a Grid factory
// following the paper's generation methodology: cell (x, seed) solves
// the instance Generate(cfgOf(x), seed), built on the worker's reusable
// generator.
func MakeInstances(cfgOf func(x float64) InstanceConfig) func(*WorkerEnv, float64, int64) (*Instance, error) {
	return experiments.MakeInstances(cfgOf)
}

// DerivedSeeds returns a Grid.SeedOf that derives every cell seed
// through SeedFor from the given label and the cell coordinates, so
// distinct grids sharing a BaseSeed draw decorrelated instance streams.
func DerivedSeeds(label string) func(base int64, xi, rep int) int64 {
	return experiments.DerivedSeeds(label)
}

// SweepFigureCtx runs one of the repository's named paper figures
// ("fig2a", "fig2b", "fig3", ...; see FigureIDs) on the Grid engine.
// Cancelling ctx aborts the sweep between cells — the same contract as
// Grid.Run — which is what lets coordinator-driven and deadline-bound
// runs stop cleanly.
func SweepFigureCtx(ctx context.Context, id string, cfg SweepConfig) (*SweepResult, error) {
	return experiments.BuildFigure(ctx, id, cfg)
}

// SweepFigure is SweepFigureCtx without cancellation.
//
// Deprecated: use SweepFigureCtx, which threads a context.Context
// through the sweep.
func SweepFigure(id string, cfg SweepConfig) (*SweepResult, error) {
	return SweepFigureCtx(context.Background(), id, cfg)
}

// FigureIDs lists the reproducible paper-figure ids.
func FigureIDs() []string { return experiments.FigureIDs() }

type (
	// SweepConfig parameterizes the named paper figures.
	SweepConfig = experiments.Config
	// SweepResult is a reduced figure: labelled series of (x, mean
	// cost, CI) points with Dat/ASCII renderers.
	SweepResult = experiments.Figure
)

// SeedFor returns the deterministic SplitMix64 sub-seed this library
// derives for (seed, label) — the same function every internal
// experiment uses, exported so external shard orchestrators can
// recompute the exact per-cell seeds of a distributed Grid (see
// Grid.SeedOf and DerivedSeeds) instead of inventing a parallel scheme.
func SeedFor(seed int64, label string) int64 { return rng.SeedFor(seed, label) }

// Multi-tenant workloads: several applications, each with its own
// throughput target, provisioned on one shared platform. Combine folds
// them into a single solvable Instance (the reduction is exact — see
// internal/multiapp), so a Grid whose factory calls Combine sweeps
// multi-tenant scenarios with the same engine, sharding and
// verification as single-application sweeps.
type (
	// App is one tenant: an operator tree and its QoS target.
	App = multiapp.App
	// Workload is the environment all tenants share: object catalog,
	// holder placement, platform, alpha.
	Workload = multiapp.Workload
	// Tree is a binary operator tree over basic objects.
	Tree = apptree.Tree
)

// Combine folds the applications into one solvable instance with
// global rho = 1 (each tenant's target is pre-scaled into its
// operators' work and traffic).
func Combine(apps []App, w Workload) (*Instance, error) { return multiapp.Combine(apps, w) }

// RandomTree builds a random binary operator tree with numOps
// operators over numTypes basic-object types — the building block for
// custom multi-tenant workloads. Derive the seed from the sweep cell's
// seed with SeedFor (one label per tenant) to keep sharded sweeps
// reproducible.
func RandomTree(seed int64, numOps, numTypes int) *Tree {
	return apptree.Random(rng.New(seed), numOps, numTypes)
}
