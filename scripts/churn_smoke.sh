#!/usr/bin/env sh
# churn_smoke.sh — end-to-end smoke test for the churn subsystem.
#
# Runs the "churn" figure (journaled local repair vs from-scratch
# re-solve over dynamic scenarios) small through the real CLI and
# requires:
#   1. the .dat output to match the committed golden byte for byte
#      (scenarios and both answer policies are pure functions of their
#      seeds, on every machine);
#   2. a 2-shard merged run to be byte-identical to the unsharded run;
#   3. the dominance gate to pass: on EVERY scenario both policies can
#      start, repair's final cost stays within the gate tolerance of the
#      re-solve's, and over the whole grid repair migrates strictly
#      fewer surviving operators — the plotted means cannot witness the
#      per-cell half, so the gate re-checks raw cells via
#      `experiments -churn-gate`.
# Run via `make churn-smoke`. Refresh the golden after an intentional
# figure change with:
#   go run ./cmd/experiments -seeds 2 -only churn -out /tmp/cs >/dev/null \
#     && cp /tmp/cs/churn.dat scripts/testdata/churn_smoke.dat
set -eu

GO=${GO:-go}
DIR=${CHURN_SMOKE_DIR:-.churn-smoke}
GOLDEN=scripts/testdata/churn_smoke.dat

fail() {
    echo "churn-smoke: FAIL: $*" >&2
    exit 1
}

cleanup() {
    rm -rf "$DIR"
}
trap cleanup EXIT

rm -rf "$DIR"
mkdir -p "$DIR"

"$GO" run ./cmd/experiments -seeds 2 -only churn -workers 2 -out "$DIR/full" >/dev/null \
    || fail "unsharded churn figure run failed"
cmp "$DIR/full/churn.dat" "$GOLDEN" \
    || fail "churn.dat differs from the committed golden $GOLDEN"

"$GO" run ./cmd/experiments -seeds 2 -only churn -workers 2 -shard 0/2 -out "$DIR/shards" >/dev/null \
    || fail "shard 0/2 failed"
"$GO" run ./cmd/experiments -seeds 2 -only churn -workers 1 -shard 1/2 -out "$DIR/shards" >/dev/null \
    || fail "shard 1/2 failed"
"$GO" run ./cmd/experiments -seeds 2 -only churn -merge 2 -out "$DIR/shards" >/dev/null \
    || fail "shard merge failed"
cmp "$DIR/full/churn.dat" "$DIR/shards/churn.dat" \
    || fail "sharded merge differs from the unsharded run"

"$GO" run ./cmd/experiments -churn-gate -seeds 2 \
    || fail "dominance gate failed (repair cost beyond tolerance or operators moved not strictly lower)"

echo "churn-smoke: golden match, sharded merge identical, dominance gate passed"
