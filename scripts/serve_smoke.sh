#!/usr/bin/env sh
# serve_smoke.sh — end-to-end smoke test for the cmd/serve daemon.
#
# Builds the real binary, boots it on an ephemeral port, exercises
# /healthz, /v1/solve and /v1/verify over actual HTTP, diffs the solve
# and verify responses against the same committed goldens the unit
# tests pin (internal/serve/testdata), and asserts a clean exit 0 on
# SIGTERM-driven graceful drain. Run via `make serve-smoke`.
set -eu

GO=${GO:-go}
DIR=${SERVE_SMOKE_DIR:-.serve-smoke}
TESTDATA=internal/serve/testdata

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    exit 1
}

cleanup() {
    if [ -n "${SERVE_PID:-}" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -KILL "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$DIR"
}
trap cleanup EXIT

rm -rf "$DIR"
mkdir -p "$DIR"

"$GO" build -o "$DIR/serve" ./cmd/serve

"$DIR/serve" -addr 127.0.0.1:0 -workers 2 -port-file "$DIR/port" \
    2>"$DIR/serve.log" &
SERVE_PID=$!

# The daemon writes -port-file only after Listen succeeded.
i=0
while [ ! -s "$DIR/port" ]; do
    kill -0 "$SERVE_PID" 2>/dev/null || {
        cat "$DIR/serve.log" >&2
        fail "daemon exited before publishing its port"
    }
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "daemon did not publish a port within 10s"
    sleep 0.1
done
ADDR=$(head -n1 "$DIR/port")

curl -fsS "http://$ADDR/healthz" >"$DIR/healthz" ||
    fail "GET /healthz did not answer 200"
[ "$(cat "$DIR/healthz")" = "ok" ] || fail "unexpected /healthz body"

# Solve: the live daemon must answer byte-identically to the golden the
# httptest-driven unit tests pin (worker-count independent by contract).
curl -fsS -X POST --data-binary "@$TESTDATA/solve_request.json" \
    "http://$ADDR/v1/solve" >"$DIR/solve.json" ||
    fail "POST /v1/solve did not answer 200"
diff -u "$TESTDATA/solve_golden.json" "$DIR/solve.json" ||
    fail "solve response differs from $TESTDATA/solve_golden.json"

curl -fsS -X POST --data-binary "@$TESTDATA/verify_request.json" \
    "http://$ADDR/v1/verify" >"$DIR/verify.json" ||
    fail "POST /v1/verify did not answer 200"
diff -u "$TESTDATA/verify_golden.json" "$DIR/verify.json" ||
    fail "verify response differs from $TESTDATA/verify_golden.json"

curl -fsS "http://$ADDR/statsz" >"$DIR/statsz.json" ||
    fail "GET /statsz did not answer 200"
grep -q '"ok": 2' "$DIR/statsz.json" ||
    fail "/statsz does not count the 2 successful requests"

# Graceful drain: SIGTERM must produce a clean exit 0.
kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || {
    cat "$DIR/serve.log" >&2
    fail "daemon exited $STATUS on SIGTERM, want 0"
}
grep -q "drained, exiting" "$DIR/serve.log" ||
    fail "daemon log does not record the graceful drain"
SERVE_PID=

echo "serve-smoke: healthz/solve/verify golden-matched; SIGTERM drained cleanly"
