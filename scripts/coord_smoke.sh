#!/usr/bin/env sh
# coord_smoke.sh — end-to-end smoke test for the distributed sweep
# coordinator (cmd/serve + internal/coord + cmd/sweepworker).
#
# Builds the real binaries, produces the unsharded golden .dat with
# cmd/experiments, boots the daemon with short shard leases and a
# durable -coord-state-dir, submits a 3-shard fig2a job, and runs three
# real worker processes:
#
#   w1  a straggler (sleeps before computing, never renews) that is
#       kill -KILL'd mid-shard — a worker dying with a live lease,
#   w2  a straggler that survives but whose lease expires and is
#       re-offered; its late completion must be discarded,
#   w3  a healthy worker that picks up everything, including the
#       recovered shards.
#
# Then the coordinator itself is kill -KILL'd mid-sweep and a fresh
# daemon is restarted on the same address and state dir: it must replay
# its journal (statsz reports the recovered job), the surviving workers
# must ride out the downtime, and the job must still finish with its
# merged figure output byte-identical to the unsharded single-process
# run. The coordinator must record at least one re-lease, and SIGTERM
# must drain the daemon (final snapshot included) and the surviving
# workers to clean exit 0. Run via `make coord-smoke`.
set -eu

GO=${GO:-go}
DIR=${COORD_SMOKE_DIR:-.coord-smoke}

fail() {
    echo "coord-smoke: FAIL: $*" >&2
    exit 1
}

cleanup() {
    for pid in "${W1_PID:-}" "${W2_PID:-}" "${W3_PID:-}" "${SERVE_PID:-}"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

rm -rf "$DIR"
mkdir -p "$DIR/full"

"$GO" build -o "$DIR/serve" ./cmd/serve
"$GO" build -o "$DIR/sweepworker" ./cmd/sweepworker
"$GO" build -o "$DIR/experiments" ./cmd/experiments

# The unsharded golden: the same figure built in one process.
"$DIR/experiments" -seeds 2 -only fig2a -out "$DIR/full" >/dev/null ||
    fail "unsharded golden run failed"
[ -s "$DIR/full/fig2a.dat" ] || fail "golden fig2a.dat missing"

# Short leases so the killed and straggling workers' shards are
# re-offered within the smoke's budget; the state dir makes the
# coordinator's job state survive the kill -KILL below.
"$DIR/serve" -addr 127.0.0.1:0 -workers 2 -sweep-lease-ttl 2s \
    -coord-state-dir "$DIR/state" \
    -port-file "$DIR/port" 2>"$DIR/serve.log" &
SERVE_PID=$!

i=0
while [ ! -s "$DIR/port" ]; do
    kill -0 "$SERVE_PID" 2>/dev/null || {
        cat "$DIR/serve.log" >&2
        fail "daemon exited before publishing its port"
    }
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "daemon did not publish a port within 10s"
    sleep 0.1
done
ADDR=$(head -n1 "$DIR/port")

# Submit the 3-shard job and extract its id (no jq dependency).
curl -fsS -X POST -d '{"figure":"fig2a","seeds":2,"base_seed":1,"shards":3}' \
    "http://$ADDR/v1/sweep" >"$DIR/submit.json" ||
    fail "POST /v1/sweep did not answer 200"
JOB=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$DIR/submit.json")
[ -n "$JOB" ] || fail "submit response carries no job id: $(cat "$DIR/submit.json")"

# w1: claims a shard, sleeps without renewing, and is killed mid-shard.
"$DIR/sweepworker" -coord "http://$ADDR" -name w1 -job "$JOB" \
    -slow 30s -no-renew 2>"$DIR/w1.log" &
W1_PID=$!
# w2: a surviving straggler — slower than the lease TTL, never renews,
# so its shard is re-leased and its eventual result discarded.
"$DIR/sweepworker" -coord "http://$ADDR" -name w2 -job "$JOB" \
    -slow 4s -no-renew -poll 200ms 2>"$DIR/w2.log" &
W2_PID=$!
# w3: healthy.
"$DIR/sweepworker" -coord "http://$ADDR" -name w3 -job "$JOB" \
    -poll 200ms 2>"$DIR/w3.log" &
W3_PID=$!

# Give w1 time to grab its lease, then kill it mid-shard.
sleep 1
kill -KILL "$W1_PID" 2>/dev/null || fail "w1 already gone before the kill"
W1_PID=

# Crash the coordinator itself mid-sweep: the job cannot have finished
# (w1's shard is orphaned, w2 is still sleeping on its 4s shard), so
# the restarted daemon must recover a live job from the state dir.
kill -KILL "$SERVE_PID" 2>/dev/null || fail "daemon already gone before the kill"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=

# Restart on the exact same address (the workers were pointed at it)
# and the same state dir. A few bind retries cover slow socket reclaim.
i=0
while :; do
    rm -f "$DIR/port2"
    "$DIR/serve" -addr "$ADDR" -workers 2 -sweep-lease-ttl 2s \
        -coord-state-dir "$DIR/state" \
        -port-file "$DIR/port2" 2>"$DIR/serve2.log" &
    SERVE_PID=$!
    j=0
    while [ ! -s "$DIR/port2" ] && kill -0 "$SERVE_PID" 2>/dev/null; do
        j=$((j + 1))
        [ "$j" -le 100 ] || fail "restarted daemon did not publish a port within 10s"
        sleep 0.1
    done
    [ -s "$DIR/port2" ] && break
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=
    i=$((i + 1))
    [ "$i" -le 10 ] || {
        cat "$DIR/serve2.log" >&2
        fail "restarted daemon could not rebind $ADDR"
    }
    sleep 0.5
done
[ "$(head -n1 "$DIR/port2")" = "$ADDR" ] ||
    fail "restarted daemon bound $(head -n1 "$DIR/port2"), want $ADDR"

# The restart must have replayed the journal into a live job.
curl -fsS "http://$ADDR/statsz" >"$DIR/statsz-recovery.json" ||
    fail "GET /statsz after restart did not answer 200"
grep -q '"jobs_recovered": 1' "$DIR/statsz-recovery.json" || {
    cat "$DIR/statsz-recovery.json" >&2
    fail "/statsz after restart does not report the recovered job"
}

# Poll progress until the job reports done (well past 2 lease expiries).
i=0
while :; do
    curl -fsS "http://$ADDR/v1/sweep/$JOB" >"$DIR/progress.json" ||
        fail "GET /v1/sweep/$JOB did not answer 200"
    # The job-level state is adjacent to the done-counter; a bare
    # `"state":"done"` would also match individual finished shards.
    grep -q '"state":"done","done":' "$DIR/progress.json" && break
    grep -q '"state":"failed","done":' "$DIR/progress.json" && {
        cat "$DIR/progress.json" >&2
        fail "job failed"
    }
    i=$((i + 1))
    [ "$i" -le 120 ] || {
        cat "$DIR/progress.json" >&2
        fail "job did not finish within 60s"
    }
    sleep 0.5
done

# Fault tolerance must actually have been exercised: the killed (and/or
# straggling) worker's lease was re-offered at least once.
grep -q '"releases":0' "$DIR/progress.json" &&
    fail "no lease was ever re-offered — fault injection did not bite: $(cat "$DIR/progress.json")"

# The merged result must be byte-identical to the unsharded run.
curl -fsS "http://$ADDR/v1/sweep/$JOB/result" >"$DIR/merged.dat" ||
    fail "GET /v1/sweep/$JOB/result did not answer 200"
cmp "$DIR/full/fig2a.dat" "$DIR/merged.dat" ||
    fail "merged .dat differs from the unsharded golden"

# statsz carries the coordinator counters.
curl -fsS "http://$ADDR/statsz" >"$DIR/statsz.json" ||
    fail "GET /statsz did not answer 200"
grep -q '"merges": 1' "$DIR/statsz.json" ||
    fail "/statsz does not record exactly one merge"

# Surviving workers exit 0 on their own (job-pinned: ErrJobDone) or on
# SIGTERM; both paths must be clean.
for w in 2 3; do
    eval "pid=\$W${w}_PID"
    if kill -0 "$pid" 2>/dev/null; then
        kill -TERM "$pid" 2>/dev/null || true
    fi
    STATUS=0
    wait "$pid" || STATUS=$?
    [ "$STATUS" -eq 0 ] || {
        cat "$DIR/w$w.log" >&2
        fail "worker w$w exited $STATUS, want 0"
    }
    eval "W${w}_PID="
done

# Graceful daemon drain: SIGTERM must produce a clean exit 0, and the
# drain seals the durable state into a final snapshot.
kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || {
    cat "$DIR/serve2.log" >&2
    fail "daemon exited $STATUS on SIGTERM, want 0"
}
grep -q "drained, exiting" "$DIR/serve2.log" ||
    fail "daemon log does not record the graceful drain"
[ -s "$DIR/state/snapshot.json" ] ||
    fail "drain left no coordinator snapshot in the state dir"
SERVE_PID=

echo "coord-smoke: 3-shard sweep survived a killed worker, a straggler and a killed+restarted coordinator; merged output byte-identical; drained cleanly"
