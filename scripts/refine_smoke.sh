#!/usr/bin/env sh
# refine_smoke.sh — end-to-end smoke test for the refinement layer.
#
# Runs the "refine" figure (constructive heuristics vs Refined vs Exact
# on CONSTR-HOM slow-CPU instances) small through the real CLI and
# requires:
#   1. the .dat output to match the committed golden byte for byte
#      (the sweep is a pure function of its seeds, on every machine);
#   2. a 2-shard merged run to be byte-identical to the unsharded run;
#   3. the per-instance dominance gate to pass: Refined costs no more
#      than the cheapest feasible constructive heuristic on EVERY
#      (x, seed) cell — the plotted means cannot witness this, so the
#      gate re-checks raw cells via `experiments -refine-gate`.
# Run via `make refine-smoke`. Refresh the golden after an intentional
# figure change with:
#   go run ./cmd/experiments -seeds 2 -only refine -out /tmp/rs >/dev/null \
#     && cp /tmp/rs/refine.dat scripts/testdata/refine_smoke.dat
set -eu

GO=${GO:-go}
DIR=${REFINE_SMOKE_DIR:-.refine-smoke}
GOLDEN=scripts/testdata/refine_smoke.dat

fail() {
    echo "refine-smoke: FAIL: $*" >&2
    exit 1
}

cleanup() {
    rm -rf "$DIR"
}
trap cleanup EXIT

rm -rf "$DIR"
mkdir -p "$DIR"

"$GO" run ./cmd/experiments -seeds 2 -only refine -workers 2 -out "$DIR/full" >/dev/null \
    || fail "unsharded refine figure run failed"
cmp "$DIR/full/refine.dat" "$GOLDEN" \
    || fail "refine.dat differs from the committed golden $GOLDEN"

"$GO" run ./cmd/experiments -seeds 2 -only refine -workers 2 -shard 0/2 -out "$DIR/shards" >/dev/null \
    || fail "shard 0/2 failed"
"$GO" run ./cmd/experiments -seeds 2 -only refine -workers 1 -shard 1/2 -out "$DIR/shards" >/dev/null \
    || fail "shard 1/2 failed"
"$GO" run ./cmd/experiments -seeds 2 -only refine -merge 2 -out "$DIR/shards" >/dev/null \
    || fail "shard merge failed"
cmp "$DIR/full/refine.dat" "$DIR/shards/refine.dat" \
    || fail "sharded merge differs from the unsharded run"

"$GO" run ./cmd/experiments -refine-gate -seeds 2 \
    || fail "per-cell dominance gate failed (Refined cost exceeded a constructive heuristic)"

echo "refine-smoke: golden match, sharded merge identical, dominance gate passed"
