package streamalloc

import (
	"context"
	"math/rand"

	"repro/internal/core"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/refine"
	"repro/internal/stream"
)

// Re-exported model types.
type (
	// Instance is a complete problem: tree, objects, platform, rho.
	Instance = instance.Instance
	// InstanceConfig parameterizes Generate.
	InstanceConfig = instance.Config
	// Platform is the purchase catalog plus the fixed data servers.
	Platform = platform.Platform
	// Catalog is the set of purchasable CPU and NIC options (Table 1).
	Catalog = platform.Catalog
	// Mapping is an operator-to-processor allocation.
	Mapping = mapping.Mapping
	// Result is a validated heuristic solution.
	Result = heuristics.Result
	// Options tunes the solve pipeline (server selection, downgrade, seed).
	Options = heuristics.Options
	// Solver orchestrates the pipeline.
	Solver = core.Solver
	// Outcome pairs a heuristic with its result on one instance.
	Outcome = core.Outcome
	// SimOptions tunes the stream-engine execution.
	SimOptions = stream.Options
	// SimReport is the stream engine's measurement.
	SimReport = stream.Report
	// SimRunner is a reusable simulation engine: repeated Simulate calls
	// on one goroutine reuse every internal buffer and allocate nothing
	// in steady state. Not safe for concurrent use.
	SimRunner = stream.Runner
)

// NewSimRunner returns a reusable simulation engine for hot loops; the
// package-level Simulate already draws pooled runners for one-shot calls.
func NewSimRunner() *SimRunner { return stream.NewRunner() }

// Generate builds a random instance per the paper's methodology; see
// InstanceConfig for the knobs (zero values mean the paper's defaults).
func Generate(cfg InstanceConfig, seed int64) *Instance {
	return instance.Generate(cfg, seed)
}

// DefaultPlatform returns the paper's Section 5 platform: 6 data servers
// with 10 GB/s NICs, 1 GB/s links, and the Table 1 purchase catalog.
func DefaultPlatform() *Platform { return platform.DefaultPlatform() }

// HomogeneousPlatform returns a CONSTR-HOM platform built from the given
// CPU and NIC rows (0-4) of the default catalog.
func HomogeneousPlatform(cpu, nic int) *Platform {
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(cpu, nic)
	return p
}

// RefineOptions tunes Refine; the zero value uses the defaults.
type RefineOptions = refine.Options

// Refine runs the local-search refinement layer: the best constructive
// heuristic seeds a simulated-annealing plus large-neighborhood search
// over the mapping move journal. The result is never worse than the best
// constructive solution and the search stops early when the seed already
// matches the analytic cost lower bound. The heuristic also runs by name
// ("Refined") through Solve and the sweep Grid.
func Refine(in *Instance, opts RefineOptions) (*Result, error) {
	return refine.Refine(in, opts)
}

// Heuristics lists the six placement heuristic names in the paper's order.
func Heuristics() []string { return core.Heuristics() }

// Solve runs one named heuristic with default options.
func Solve(in *Instance, heuristic string) (*Result, error) {
	var s Solver
	return s.Solve(in, heuristic)
}

// Validate re-checks a mapping against all five steady-state constraints
// plus structural completeness; nil means feasible.
func Validate(m *Mapping) error { return m.Validate() }

// LowerBound returns a provable lower bound on the platform cost ($).
func LowerBound(in *Instance) float64 { return core.LowerBound(in) }

// Verify executes a result on the stream engine and confirms the measured
// throughput reaches the instance's target rho.
func Verify(res *Result, opt SimOptions) (*SimReport, error) {
	return core.Verify(res, opt)
}

// SolveBatch solves many instances concurrently on a bounded worker
// pool, returning each instance's cheapest feasible result (or error)
// in input order: slot i always belongs to ins[i], at any worker count
// (<= 0 means GOMAXPROCS). Cancelling ctx skips the instances not yet
// started; their error slots wrap the cancellation cause.
func SolveBatch(ctx context.Context, ins []*Instance, opts Options, workers int) ([]*Result, []error) {
	s := Solver{Options: opts, Workers: workers}
	return s.SolveBatch(ctx, ins)
}

// VerifyBatch executes many results on the stream engine concurrently
// (at most workers simulations at a time) and checks each measured
// throughput against its instance's QoS target, in input order.
func VerifyBatch(ctx context.Context, results []*Result, opt SimOptions, workers int) ([]*SimReport, []error) {
	return core.VerifyBatch(ctx, results, opt, workers)
}

// Simulate measures the steady-state throughput of an arbitrary complete
// mapping without asserting the QoS target.
func Simulate(m *Mapping, opt SimOptions) (*SimReport, error) {
	return stream.Simulate(m, opt)
}

// SimulateBatch measures many mappings concurrently; see SolveBatch for
// the ordering and cancellation contract.
func SimulateBatch(ctx context.Context, ms []*Mapping, opt SimOptions, workers int) ([]*SimReport, []error) {
	return stream.SimulateBatch(ctx, ms, opt, workers)
}

// MaxThroughput returns the analytic maximum throughput a mapping
// sustains under the constraint system.
func MaxThroughput(m *Mapping) float64 { return stream.AnalyticMaxThroughput(m) }

// IsInfeasible reports whether an error from Solve/Best means "no feasible
// mapping" rather than misuse.
func IsInfeasible(err error) bool { return core.IsInfeasible(err) }

// NewRand returns a seeded math/rand generator. It exists for examples
// and ad-hoc workload construction only: library code and anything that
// must shard or parallelize derives plain per-item seeds with SeedFor
// instead, so no *rand.Rand ever crosses a goroutine or machine
// boundary.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
