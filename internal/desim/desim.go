// Package desim is a minimal discrete-event simulation kernel: a virtual
// clock and a priority queue of cancellable events. The stream engine
// builds its fluid-flow execution model on top of it.
package desim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel it.
type Event struct {
	Time   float64
	Action func()

	seq       int64
	index     int // heap position, -1 when popped/cancelled
	cancelled bool
}

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    float64
	seq    int64
	queue  eventHeap
	events int64 // processed events, for introspection and runaway guards
}

// Now returns the current virtual time.
func (s *Sim) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() int64 { return s.events }

// Schedule runs action at absolute virtual time t (>= Now). Events at the
// same instant run in scheduling order.
func (s *Sim) Schedule(t float64, action func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("desim: scheduling in the past: %v < %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("desim: scheduling at NaN")
	}
	s.seq++
	e := &Event{Time: t, Action: action, seq: s.seq}
	heap.Push(&s.queue, e)
	return e
}

// After schedules action d time units from now.
func (s *Sim) After(d float64, action func()) *Event {
	return s.Schedule(s.now+d, action)
}

// Cancel revokes a scheduled event; cancelling an already-run or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.cancelled || e.index < 0 {
		e.markCancelled()
		return
	}
	e.cancelled = true
	heap.Remove(&s.queue, e.index)
}

func (e *Event) markCancelled() {
	if e != nil {
		e.cancelled = true
	}
}

// Step executes the next event; it reports false when the queue is empty.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.Time
		s.events++
		e.Action()
		return true
	}
	return false
}

// RunUntil processes events until the queue empties, virtual time would
// pass deadline, or maxEvents have run; it returns the reason it stopped.
func (s *Sim) RunUntil(deadline float64, maxEvents int64) StopReason {
	for {
		if maxEvents > 0 && s.events >= maxEvents {
			return StopEvents
		}
		// Peek.
		var next *Event
		for s.queue.Len() > 0 {
			top := s.queue[0]
			if top.cancelled {
				heap.Pop(&s.queue)
				continue
			}
			next = top
			break
		}
		if next == nil {
			return StopEmpty
		}
		if next.Time > deadline {
			s.now = deadline
			return StopDeadline
		}
		s.Step()
	}
}

// StopReason tells why RunUntil returned.
type StopReason int

// RunUntil outcomes.
const (
	StopEmpty StopReason = iota // no events left
	StopDeadline
	StopEvents
)

func (r StopReason) String() string {
	switch r {
	case StopEmpty:
		return "queue empty"
	case StopDeadline:
		return "deadline reached"
	case StopEvents:
		return "event budget exhausted"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// eventHeap orders by (Time, seq) so simultaneous events run FIFO.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
