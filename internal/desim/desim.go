// Package desim is a minimal discrete-event simulation kernel: a virtual
// clock and a priority queue of cancellable events. The stream engine
// builds its fluid-flow execution model on top of it.
//
// The simulator recycles Event objects through an internal free list, so
// steady-state Schedule/Cancel/Step cycles perform zero allocations. The
// price of pooling is a lifetime rule: once an event has run or been
// cancelled, its *Event may be handed out again by a later Schedule, so
// callers must drop their reference at that point (cancelling an event
// twice, or after it has run, is only safe while no new events have been
// scheduled since).
package desim

import (
	"fmt"
	"math"
)

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel it; see the package comment for the pooling lifetime rule.
type Event struct {
	Time   float64
	Action func()

	seq       int64
	index     int // heap position, -1 when popped/cancelled
	cancelled bool
}

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    float64
	seq    int64
	queue  []*Event // binary min-heap on (Time, seq)
	free   []*Event // recycled events
	events int64    // processed events, for introspection and runaway guards
}

// Now returns the current virtual time.
func (s *Sim) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() int64 { return s.events }

// Reset rewinds the simulator to its zero state — clock at 0, no pending
// events, counters cleared — while keeping the heap and free-list storage,
// so a Sim can run many simulations without reallocating.
func (s *Sim) Reset() {
	for _, e := range s.queue {
		s.release(e)
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.events = 0
}

// Schedule runs action at absolute virtual time t (>= Now). Events at the
// same instant run in scheduling order.
func (s *Sim) Schedule(t float64, action func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("desim: scheduling in the past: %v < %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("desim: scheduling at NaN")
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	*e = Event{Time: t, Action: action, seq: s.seq}
	s.push(e)
	return e
}

// After schedules action d time units from now.
func (s *Sim) After(d float64, action func()) *Event {
	return s.Schedule(s.now+d, action)
}

// Cancel revokes a scheduled event; cancelling nil is a no-op, as is
// re-cancelling an event the simulator still remembers as retired (see the
// package comment for when that reference becomes invalid).
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.cancelled || e.index < 0 {
		e.markCancelled()
		return
	}
	e.cancelled = true
	s.removeAt(e.index)
	s.release(e)
}

func (e *Event) markCancelled() {
	if e != nil {
		e.cancelled = true
	}
}

// release returns a retired event to the free list.
func (s *Sim) release(e *Event) {
	e.Action = nil
	e.index = -1
	s.free = append(s.free, e)
}

// Step executes the next event; it reports false when the queue is empty.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := s.pop()
		if e.cancelled {
			s.release(e)
			continue
		}
		s.now = e.Time
		s.events++
		action := e.Action
		s.release(e)
		action()
		return true
	}
	return false
}

// RunUntil processes events until the queue empties, virtual time would
// pass deadline, or maxEvents have run; it returns the reason it stopped.
func (s *Sim) RunUntil(deadline float64, maxEvents int64) StopReason {
	for {
		if maxEvents > 0 && s.events >= maxEvents {
			return StopEvents
		}
		// Peek. Cancelled events are removed eagerly, but stay defensive.
		var next *Event
		for len(s.queue) > 0 {
			top := s.queue[0]
			if top.cancelled {
				s.release(s.pop())
				continue
			}
			next = top
			break
		}
		if next == nil {
			return StopEmpty
		}
		if next.Time > deadline {
			s.now = deadline
			return StopDeadline
		}
		s.Step()
	}
}

// StopReason tells why RunUntil returned.
type StopReason int

// RunUntil outcomes.
const (
	StopEmpty StopReason = iota // no events left
	StopDeadline
	StopEvents
)

func (r StopReason) String() string {
	switch r {
	case StopEmpty:
		return "queue empty"
	case StopDeadline:
		return "deadline reached"
	case StopEvents:
		return "event budget exhausted"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// The priority queue is a hand-rolled binary min-heap on (Time, seq) —
// simultaneous events run FIFO — with per-event index tracking so Cancel
// removes in O(log n) without the container/heap interface indirection.

func (s *Sim) less(i, j int) bool {
	a, b := s.queue[i], s.queue[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (s *Sim) swap(i, j int) {
	q := s.queue
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (s *Sim) push(e *Event) {
	e.index = len(s.queue)
	s.queue = append(s.queue, e)
	s.siftUp(e.index)
}

func (s *Sim) pop() *Event {
	n := len(s.queue) - 1
	s.swap(0, n)
	e := s.queue[n]
	s.queue[n] = nil
	s.queue = s.queue[:n]
	if n > 0 {
		s.siftDown(0)
	}
	e.index = -1
	return e
}

// removeAt deletes the event at heap position i.
func (s *Sim) removeAt(i int) {
	n := len(s.queue) - 1
	if i != n {
		s.swap(i, n)
	}
	e := s.queue[n]
	s.queue[n] = nil
	s.queue = s.queue[:n]
	if i < n {
		s.siftDown(i)
		s.siftUp(i)
	}
	e.index = -1
}

func (s *Sim) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Sim) siftDown(i int) {
	n := len(s.queue)
	for {
		smallest := i
		if l := 2*i + 1; l < n && s.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.swap(i, smallest)
		i = smallest
	}
}
