package desim

import (
	"testing"
)

func TestOrdering(t *testing.T) {
	var s Sim
	var got []int
	s.Schedule(3, func() { got = append(got, 3) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(2, func() { got = append(got, 2) })
	if r := s.RunUntil(10, 0); r != StopEmpty {
		t.Fatalf("stop reason %v", r)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Fatalf("now = %v, want 3", s.Now())
	}
}

func TestSimultaneousFIFO(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(1, func() { got = append(got, i) })
	}
	s.RunUntil(2, 0)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var s Sim
	ran := false
	e := s.Schedule(1, func() { ran = true })
	s.Cancel(e)
	s.RunUntil(10, 0)
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double cancel is a no-op.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelDuringRun(t *testing.T) {
	var s Sim
	ran := false
	var e2 *Event
	s.Schedule(1, func() { s.Cancel(e2) })
	e2 = s.Schedule(2, func() { ran = true })
	s.RunUntil(10, 0)
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var s Sim
	var times []float64
	s.After(1, func() {
		times = append(times, s.Now())
		s.After(1.5, func() {
			times = append(times, s.Now())
		})
	})
	s.RunUntil(10, 0)
	if len(times) != 2 || times[0] != 1 || times[1] != 2.5 {
		t.Fatalf("times = %v", times)
	}
}

func TestDeadline(t *testing.T) {
	var s Sim
	ran := false
	s.Schedule(5, func() { ran = true })
	if r := s.RunUntil(3, 0); r != StopDeadline {
		t.Fatalf("stop reason %v", r)
	}
	if ran {
		t.Fatal("event past deadline ran")
	}
	if s.Now() != 3 {
		t.Fatalf("now = %v, want clamped to deadline 3", s.Now())
	}
}

func TestEventBudget(t *testing.T) {
	var s Sim
	var tick func()
	tick = func() { s.After(1, tick) }
	s.After(1, tick)
	if r := s.RunUntil(1e18, 100); r != StopEvents {
		t.Fatalf("stop reason %v", r)
	}
	if s.Processed() != 100 {
		t.Fatalf("processed = %d", s.Processed())
	}
}

func TestReset(t *testing.T) {
	var s Sim
	s.Schedule(5, func() {})
	s.Schedule(7, func() {})
	s.Step()
	s.Reset()
	if s.Now() != 0 || s.Processed() != 0 {
		t.Fatalf("after Reset: now=%v processed=%d", s.Now(), s.Processed())
	}
	ran := false
	s.Schedule(1, func() { ran = true })
	if r := s.RunUntil(10, 0); r != StopEmpty {
		t.Fatalf("stop reason %v", r)
	}
	if !ran {
		t.Fatal("event scheduled after Reset did not run")
	}
	if s.Processed() != 1 {
		t.Fatalf("processed = %d, want 1 (pre-Reset events leaked)", s.Processed())
	}
}

// TestScheduleStepZeroAllocs pins the event pool: a warmed simulator runs
// schedule/cancel/step cycles without allocating.
func TestScheduleStepZeroAllocs(t *testing.T) {
	var s Sim
	action := func() {}
	// Warm the heap, the free list and the clock.
	for i := 0; i < 16; i++ {
		s.Schedule(float64(i), action)
	}
	s.RunUntil(1e18, 0)
	allocs := testing.AllocsPerRun(100, func() {
		e1 := s.After(1, action)
		e2 := s.After(2, action)
		s.Cancel(e1)
		if !s.Step() {
			t.Fatal("no event to step")
		}
		_ = e2
	})
	if allocs != 0 {
		t.Fatalf("Schedule/Cancel/Step allocates %v per run, want 0", allocs)
	}
}

// TestEventRecycling checks pooled events are actually reused and that the
// heap stays consistent across a cancel-heavy workload.
func TestEventRecycling(t *testing.T) {
	var s Sim
	var got []int
	evs := make([]*Event, 0, 64)
	for i := 0; i < 64; i++ {
		i := i
		evs = append(evs, s.Schedule(float64(i%8), func() { got = append(got, i) }))
	}
	for i := 0; i < 64; i += 3 {
		s.Cancel(evs[i])
	}
	s.RunUntil(1e18, 0)
	want := 0
	for i := 0; i < 64; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("ran %d events, want %d", len(got), want)
	}
	// Time ordering must survive removeAt-driven heap surgery.
	lastTime := -1
	for _, i := range got {
		if i%8 < lastTime {
			t.Fatalf("events ran out of time order: %v", got)
		}
		lastTime = i % 8
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var s Sim
	s.Schedule(5, func() {})
	s.RunUntil(10, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Schedule(1, func() {})
}
