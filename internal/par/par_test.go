package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		n := 57
		hits := make([]atomic.Int32, n)
		if err := ForEach(context.Background(), workers, n, func(i int) {
			hits[i].Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) { t.Fatal("fn called") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		release := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			done <- ForEach(ctx, workers, 10_000, func(i int) {
				if ran.Add(1) == 1 {
					cancel()
					close(release)
				} else {
					<-release
				}
			})
		}()
		select {
		case err := <-done:
			if err != context.Canceled {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: ForEach did not return after cancellation", workers)
		}
		// Only in-flight items may have run: at most one per worker.
		if got := ran.Load(); int(got) > workers {
			t.Fatalf("workers=%d: %d items ran after cancellation", workers, got)
		}
	}
}

func TestForEachLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ForEach(context.Background(), 8, 100, func(int) {})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ForEach(ctx, 8, 100, func(int) {})
	// Workers are joined before ForEach returns, so the count should be
	// back to the baseline (allow slack for runtime housekeeping).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWorkers(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 10, runtime.GOMAXPROCS(0)},
		{-3, 10, runtime.GOMAXPROCS(0)},
		{4, 10, 4},
		{8, 3, 3},
		{1, 0, 1},
	}
	for _, c := range cases {
		if c.want > c.n && c.n > 0 {
			c.want = c.n
		}
		if got := Workers(c.workers, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestForEachWorkerIdentity(t *testing.T) {
	// Worker ids must stay in [0, Workers(workers, n)) and each worker's
	// items must run sequentially — one concurrent item per worker.
	for _, workers := range []int{1, 3} {
		n := 100
		owner := make([]int32, n)
		var active [8]atomic.Int32
		err := ForEachWorker(context.Background(), workers, n, func(w, i int) {
			if w < 0 || w >= Workers(workers, n) {
				t.Errorf("worker id %d out of range", w)
			}
			if active[w].Add(1) != 1 {
				t.Errorf("worker %d ran two items concurrently", w)
			}
			owner[i] = int32(w) + 1
			time.Sleep(time.Microsecond)
			active[w].Add(-1)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range owner {
			if o == 0 {
				t.Fatalf("item %d never ran", i)
			}
		}
	}
}

// TestForEachOrderedStreamsInOrder drives the ordered variant hard: at
// every worker count the emit sequence must be exactly 0..n-1 even
// though workers finish out of order.
func TestForEachOrderedStreamsInOrder(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 2, 4, 8} {
		var mu sync.Mutex
		emitted := make([]int, 0, n)
		results := make([]int, n)
		err := ForEachOrdered(context.Background(), workers, n, func(w, i int) {
			if i%7 == 0 {
				time.Sleep(time.Microsecond) // jitter completion order
			}
			results[i] = i * i
		}, func(i int) {
			mu.Lock()
			emitted = append(emitted, i)
			mu.Unlock()
			if results[i] != i*i {
				t.Errorf("emit %d before fn completed", i)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(emitted) != n {
			t.Fatalf("workers=%d: emitted %d of %d", workers, len(emitted), n)
		}
		for i, v := range emitted {
			if v != i {
				t.Fatalf("workers=%d: emit position %d got index %d", workers, i, v)
			}
		}
	}
}

// TestForEachOrderedCancellation: a cancelled ordered run emits at most
// a prefix, never an out-of-order or post-cancel suffix, and returns
// the context error.
func TestForEachOrderedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var emitted []int
	err := ForEachOrdered(ctx, 4, 200, func(w, i int) {
		if i == 20 {
			cancel()
		}
	}, func(i int) {
		mu.Lock()
		emitted = append(emitted, i)
		mu.Unlock()
	})
	if err == nil {
		t.Fatal("want context error")
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("cancelled run emitted non-prefix: position %d got %d", i, v)
		}
	}
}
