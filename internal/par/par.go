// Package par provides the bounded worker pool that drives every
// parallel layer of the repository: the solver portfolio (core), the
// experiment sweeps (experiments) and the stream-engine verification
// batches (stream).
//
// Determinism is the design constraint: ForEach hands out item
// indices, so callers write result i into slot i of a pre-sized slice
// and merge in input order — output is then byte-identical to a
// serial run at any worker count. Randomness never crosses goroutine
// boundaries: each work item derives its own substream from a plain
// per-item seed (rng.SeedFor / heuristics.Options.Seed), never from a
// shared *rand.Rand.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 mean
// runtime.GOMAXPROCS(0), and the pool is never wider than the n items
// it has to process.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEachDone is ForEach plus a dispatch mask: done[i] reports whether
// fn(i) actually ran. Items are skipped only after ctx cancellation, so
// callers use the mask to mark skipped slots without inventing
// per-result sentinel values.
func ForEachDone(ctx context.Context, workers, n int, fn func(i int)) ([]bool, error) {
	done := make([]bool, n)
	err := ForEach(ctx, workers, n, func(i int) {
		fn(i)
		done[i] = true
	})
	return done, err
}

// SkipErrors fills errs[i] for every slot whose done[i] is false with
// "<label> item i skipped: <cause>", where cause is context.Cause(ctx).
// Batch APIs call it after ForEachDone so undispatched slots carry a
// uniform, errors.Is-inspectable error instead of sentinel zero values.
func SkipErrors(ctx context.Context, done []bool, errs []error, label string) {
	for i := range done {
		if !done[i] {
			errs[i] = fmt.Errorf("%s item %d skipped: %w", label, i, context.Cause(ctx))
		}
	}
}

// ForEach runs fn(i) for every i in [0, n) on a pool of at most
// workers goroutines (<= 0 means GOMAXPROCS) and blocks until the
// pool drains. When ctx is cancelled, items not yet dispatched are
// skipped, in-flight items run to completion, and ForEach returns
// ctx.Err(); no goroutines outlive the call in either case. fn must
// be safe for concurrent invocation on distinct indices.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	return ForEachWorker(ctx, workers, n, func(_, i int) { fn(i) })
}

// ForEachOrdered is ForEachWorker plus deterministic streaming: after
// fn(w, i) completes, emit(i) is called for every finished item in
// strictly increasing index order — item i is emitted only once items
// 0..i-1 have been emitted, no matter which workers finished first, so a
// consumer observes the exact sequence a serial run would produce while
// the work itself fans out. Emission runs on whichever worker completed
// the gap item, one emit at a time under an internal lock; emit must not
// block on the pool's own items. On cancellation the already-complete
// prefix may be emitted, the rest never is, and the ctx error is
// returned.
func ForEachOrdered(ctx context.Context, workers, n int, fn func(worker, i int), emit func(i int)) error {
	if Workers(workers, n) == 1 {
		// Serial path: emit inline, no bookkeeping.
		return ForEachWorker(ctx, workers, n, func(w, i int) {
			fn(w, i)
			emit(i)
		})
	}
	var mu sync.Mutex
	next := 0
	ready := make([]bool, n)
	return ForEachWorker(ctx, workers, n, func(w, i int) {
		fn(w, i)
		mu.Lock()
		ready[i] = true
		for next < n && ready[next] {
			emit(next)
			next++
		}
		mu.Unlock()
	})
}

// ForEachWorker is ForEach with worker identity: fn(w, i) runs item i on
// worker w in [0, Workers(workers, n)). All of one worker's items run
// sequentially on one goroutine, so callers thread per-worker reusable
// state (scratch buffers, solver contexts) by indexing a slice with w —
// no pools, no locks, and a deterministic number of contexts.
func ForEachWorker(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Serial fast path: no goroutines, same cancellation contract.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}
