package core

import (
	"testing"

	"repro/internal/instance"
	"repro/internal/stream"
)

func TestSolveByName(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 15, Alpha: 1.0}, 1)
	var s Solver
	res, err := s.Solve(in, "Subtree-bottom-up")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(in, "bogus"); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestSolveAllSorted(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 25, Alpha: 1.0}, 2)
	var s Solver
	outcomes := s.SolveAll(in)
	if len(outcomes) != 6 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	prev := -1.0
	for _, o := range outcomes {
		if o.Err != nil {
			continue
		}
		if prev >= 0 && o.Result.Cost < prev {
			t.Fatal("outcomes not sorted by cost")
		}
		prev = o.Result.Cost
	}
}

func TestBestBeatsLowerBound(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.0}, 3)
	var s Solver
	best, err := s.Best(in)
	if err != nil {
		t.Fatal(err)
	}
	if lb := LowerBound(in); best.Cost < lb-1e-6 {
		t.Fatalf("best cost %v below lower bound %v", best.Cost, lb)
	}
}

func TestBestInfeasible(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 40, Alpha: 3}, 1)
	var s Solver
	if _, err := s.Best(in); err == nil || !IsInfeasible(err) {
		t.Fatalf("want infeasible error, got %v", err)
	}
}

func TestVerify(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 12, Alpha: 1.0}, 4)
	var s Solver
	res, err := s.Solve(in, "Comp-Greedy")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(res, stream.Options{Results: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput < in.Rho {
		t.Fatalf("throughput %v below rho", rep.Throughput)
	}
}

func TestHeuristicNames(t *testing.T) {
	names := Heuristics()
	if len(names) != 6 || names[0] != "Random" || names[3] != "Subtree-bottom-up" {
		t.Fatalf("names = %v", names)
	}
}
