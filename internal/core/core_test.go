package core

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/stream"
)

func TestSolveByName(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 15, Alpha: 1.0}, 1)
	var s Solver
	res, err := s.Solve(in, "Subtree-bottom-up")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(in, "bogus"); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestSolveAllSorted(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 25, Alpha: 1.0}, 2)
	var s Solver
	outcomes := s.SolveAll(in)
	if len(outcomes) != 6 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	prev := -1.0
	for _, o := range outcomes {
		if o.Err != nil {
			continue
		}
		if prev >= 0 && o.Result.Cost < prev {
			t.Fatal("outcomes not sorted by cost")
		}
		prev = o.Result.Cost
	}
}

func TestBestBeatsLowerBound(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.0}, 3)
	var s Solver
	best, err := s.Best(in)
	if err != nil {
		t.Fatal(err)
	}
	if lb := LowerBound(in); best.Cost < lb-1e-6 {
		t.Fatalf("best cost %v below lower bound %v", best.Cost, lb)
	}
}

func TestBestInfeasible(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 40, Alpha: 3}, 1)
	var s Solver
	if _, err := s.Best(in); err == nil || !IsInfeasible(err) {
		t.Fatalf("want infeasible error, got %v", err)
	}
}

func TestVerify(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 12, Alpha: 1.0}, 4)
	var s Solver
	res, err := s.Solve(in, "Comp-Greedy")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(res, stream.Options{Results: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput < in.Rho {
		t.Fatalf("throughput %v below rho", rep.Throughput)
	}
}

// TestSolveAllDeterministicAcrossWorkers asserts the portfolio returns
// identical outcomes at every worker count: same order, names, costs.
func TestSolveAllDeterministicAcrossWorkers(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 30, Alpha: 1.0}, 7)
	serial := Solver{Workers: 1}
	want := serial.SolveAll(in)
	for _, workers := range []int{4, 8} {
		s := Solver{Workers: workers}
		got := s.SolveAll(in)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Name != want[i].Name {
				t.Fatalf("workers=%d: outcome %d is %s, want %s", workers, i, got[i].Name, want[i].Name)
			}
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d: %s error mismatch: %v vs %v", workers, got[i].Name, got[i].Err, want[i].Err)
			}
			if got[i].Err == nil && got[i].Result.Cost != want[i].Result.Cost {
				t.Fatalf("workers=%d: %s cost %v, want %v", workers, got[i].Name, got[i].Result.Cost, want[i].Result.Cost)
			}
		}
	}
}

func TestBestCtxMatchesBest(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.0}, 3)
	serial := Solver{Workers: 1}
	want, err := serial.Best(in)
	if err != nil {
		t.Fatal(err)
	}
	parallel := Solver{Workers: 8}
	got, err := parallel.BestCtx(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Fatalf("parallel best cost %v, want %v", got.Cost, want.Cost)
	}
}

func TestSolveAllCtxCancelled(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 15, Alpha: 1.0}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var s Solver
	for _, o := range s.SolveAllCtx(ctx, in) {
		if o.Err == nil {
			t.Fatalf("%s ran under a cancelled context", o.Name)
		}
	}
	if _, err := s.BestCtx(ctx, in); err == nil {
		t.Fatal("BestCtx succeeded under a cancelled context")
	}
}

func TestSolveBatchMatchesIndividual(t *testing.T) {
	ins := make([]*instance.Instance, 6)
	for i := range ins {
		ins[i] = instance.Generate(instance.Config{NumOps: 15, Alpha: 1.0}, int64(i+1))
	}
	var s Solver
	s.Workers = 4
	results, errs := s.SolveBatch(context.Background(), ins)
	for i, in := range ins {
		serial := Solver{Workers: 1}
		want, wantErr := serial.Best(in)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("instance %d: error mismatch %v vs %v", i, errs[i], wantErr)
		}
		if errs[i] == nil && results[i].Cost != want.Cost {
			t.Fatalf("instance %d: batch cost %v, individual %v", i, results[i].Cost, want.Cost)
		}
	}
}

// TestSolveBatchWithPerSeed asserts a batch with per-item seeds
// reproduces the standalone runs exactly — heuristic name included,
// since the Random heuristic's rng stream depends on the seed.
func TestSolveBatchWithPerSeed(t *testing.T) {
	base := int64(5)
	ins := make([]*instance.Instance, 4)
	for i := range ins {
		ins[i] = instance.Generate(instance.Config{NumOps: 20, Alpha: 1.0}, base+int64(i))
	}
	s := Solver{Workers: 4}
	results, errs := s.SolveBatchWith(context.Background(), ins, func(i int) heuristics.Options {
		return heuristics.Options{Seed: base + int64(i)}
	})
	for i, in := range ins {
		single := Solver{Options: heuristics.Options{Seed: base + int64(i)}, Workers: 1}
		want, wantErr := single.Best(in)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("seed %d: error mismatch %v vs %v", base+int64(i), errs[i], wantErr)
		}
		if errs[i] == nil && (results[i].Cost != want.Cost || results[i].Heuristic != want.Heuristic) {
			t.Fatalf("seed %d: batch %s/$%v, standalone %s/$%v", base+int64(i),
				results[i].Heuristic, results[i].Cost, want.Heuristic, want.Cost)
		}
	}
}

// TestSolveBatchCancellation cancels a batch mid-flight and asserts it
// returns promptly, marks the skipped items, and leaks no goroutines.
func TestSolveBatchCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ins := make([]*instance.Instance, 64)
	for i := range ins {
		ins[i] = instance.Generate(instance.Config{NumOps: 40, Alpha: 0.9}, int64(i+1))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := Solver{Workers: 4}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, errs := s.SolveBatch(ctx, ins)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("batch took %v after cancellation", elapsed)
	}
	skipped := 0
	for i := range ins {
		if results[i] == nil && errs[i] == nil {
			t.Fatalf("item %d has neither result nor error", i)
		}
		if errs[i] != nil && strings.Contains(errs[i].Error(), "skipped") {
			skipped++
		}
	}
	if skipped == 0 {
		t.Log("cancellation landed after the batch drained; no items skipped")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestVerifyBelowTarget covers Verify's error path: a mapping whose
// measured throughput cannot reach an (inflated) QoS target must be
// rejected with the below-target error and still return the report.
func TestVerifyBelowTarget(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 12, Alpha: 1.0}, 4)
	var s Solver
	res, err := s.Solve(in, "Comp-Greedy")
	if err != nil {
		t.Fatal(err)
	}
	// Pin the QoS target safely above what the mapping actually sustains.
	measured, err := stream.Simulate(res.Mapping, stream.Options{Results: 60})
	if err != nil {
		t.Fatal(err)
	}
	in.Rho = 2 * measured.Throughput
	rep, err := Verify(res, stream.Options{Results: 60})
	if err == nil {
		t.Fatal("Verify accepted a mapping far below the target")
	}
	if !strings.Contains(err.Error(), "below target") {
		t.Fatalf("err = %v, want below-target", err)
	}
	if rep == nil {
		t.Fatal("Verify dropped the report on the below-target path")
	}
}

func TestVerifyBatch(t *testing.T) {
	var s Solver
	ins := []*instance.Instance{
		instance.Generate(instance.Config{NumOps: 10, Alpha: 1.0}, 1),
		instance.Generate(instance.Config{NumOps: 12, Alpha: 1.0}, 2),
		instance.Generate(instance.Config{NumOps: 14, Alpha: 1.0}, 3),
	}
	var batch []*heuristics.Result
	for _, in := range ins {
		res, err := s.Best(in)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, res)
	}
	reps, errs := VerifyBatch(context.Background(), batch, stream.Options{Results: 60}, 4)
	for i := range batch {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if reps[i] == nil || reps[i].Throughput <= 0 {
			t.Fatalf("item %d: bad report %+v", i, reps[i])
		}
	}
}

func TestHeuristicNames(t *testing.T) {
	names := Heuristics()
	if len(names) != 6 || names[0] != "Random" || names[3] != "Subtree-bottom-up" {
		t.Fatalf("names = %v", names)
	}
}
