// Package core orchestrates the full resource-allocation pipeline of
// Benoit et al. — generate or load an instance, run one or all placement
// heuristics (with server selection and downgrade), validate the mapping,
// bound its cost, and optionally execute it on the stream engine — behind
// one Solver type. The root streamalloc package re-exports this as the
// library's public API.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bounds"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/par"
	"repro/internal/stream"
)

// Solver runs the placement pipeline. The zero value uses the paper's
// defaults (three-loop server selection, downgrade enabled, seed 0) and
// one portfolio worker per CPU.
type Solver struct {
	Options heuristics.Options
	// Workers bounds the concurrency of SolveAll, Best and SolveBatch:
	// <= 0 means runtime.GOMAXPROCS(0), 1 forces the serial path. Each
	// heuristic derives its own rng substream from Options.Seed, so no
	// randomness is shared across goroutines: SolveAll returns
	// identical outcomes at every worker count, and Best's cost is
	// equally deterministic — though when heuristics tie at the cost
	// lower bound, which one Best reports may vary (see BestCtx).
	Workers int
}

// Solve runs the named heuristic (see Heuristics for valid names).
func (s *Solver) Solve(in *instance.Instance, name string) (*heuristics.Result, error) {
	h, err := heuristics.ByName(name)
	if err != nil {
		return nil, err
	}
	return heuristics.Solve(in, h, s.Options)
}

// Outcome pairs a heuristic name with its result or failure.
type Outcome struct {
	Name   string
	Result *heuristics.Result // nil when Err != nil
	Err    error
}

// SolveAll runs every paper heuristic and returns the outcomes sorted by
// cost (failures last, in name order). The heuristics run concurrently
// on s.Workers goroutines; the result is identical to a serial run.
func (s *Solver) SolveAll(in *instance.Instance) []Outcome {
	return s.SolveAllCtx(context.Background(), in)
}

// SolveAllCtx is SolveAll with cancellation: when ctx is cancelled,
// heuristics not yet started are skipped and reported as failed with an
// error wrapping ctx.Err(). Cancellation granularity is one heuristic —
// in-flight solves run to completion.
func (s *Solver) SolveAllCtx(ctx context.Context, in *instance.Instance) []Outcome {
	hs := heuristics.All()
	out := make([]Outcome, len(hs))
	done, _ := par.ForEachDone(ctx, s.Workers, len(hs), func(i int) {
		res, err := heuristics.Solve(in, hs[i], s.Options)
		out[i] = Outcome{Name: hs[i].Name(), Result: res, Err: err}
	})
	for i, h := range hs {
		if !done[i] {
			out[i] = Outcome{Name: h.Name(),
				Err: fmt.Errorf("core: %s skipped: %w", h.Name(), context.Cause(ctx))}
		}
	}
	sortOutcomes(out)
	return out
}

func sortOutcomes(out []Outcome) {
	sort.SliceStable(out, func(a, b int) bool {
		ra, rb := out[a], out[b]
		switch {
		case ra.Err == nil && rb.Err == nil:
			return ra.Result.Cost < rb.Result.Cost
		case ra.Err == nil:
			return true
		case rb.Err == nil:
			return false
		default:
			return ra.Name < rb.Name
		}
	})
}

// Best returns the cheapest feasible result across all heuristics — the
// paper's practical recommendation (Subtree-bottom-up usually wins, but
// when it fails one of the greedy heuristics often still succeeds).
func (s *Solver) Best(in *instance.Instance) (*heuristics.Result, error) {
	return s.BestCtx(context.Background(), in)
}

// BestCtx runs the portfolio on a bounded worker pool and exits early:
// once a feasible result matches the instance's provable cost lower
// bound, the remaining heuristics are cancelled — none of them can do
// better. The returned cost is deterministic; when several heuristics
// tie at the lower bound, which one is reported may depend on worker
// scheduling (every answer is provably optimal).
func (s *Solver) BestCtx(ctx context.Context, in *instance.Instance) (*heuristics.Result, error) {
	lb := bounds.CostLowerBound(in)
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hs := heuristics.All()
	results := make([]*heuristics.Result, len(hs))
	par.ForEach(pctx, s.Workers, len(hs), func(i int) {
		res, err := heuristics.Solve(in, hs[i], s.Options)
		if err != nil {
			return
		}
		results[i] = res
		if res.Cost <= lb+1e-9 {
			cancel()
		}
	})
	var best *heuristics.Result
	for _, r := range results {
		if r != nil && (best == nil || r.Cost < best.Cost) {
			best = r
		}
	}
	if best == nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: solve cancelled: %w", err)
		}
		return nil, fmt.Errorf("core: every heuristic failed: %w", heuristics.ErrInfeasible)
	}
	// A caller-side cancellation may have truncated the portfolio. Only a
	// result at the lower bound is still trustworthy — anything costlier
	// could have been beaten by a skipped heuristic, and returning it
	// would make the reported cost depend on scheduling.
	if err := ctx.Err(); err != nil && best.Cost > lb+1e-9 {
		return nil, fmt.Errorf("core: solve cancelled: %w", err)
	}
	return best, nil
}

// SolveBatch runs Best on every instance, fanning the batch across
// s.Workers goroutines (each item solves its portfolio serially, so
// the pool is never oversubscribed). Slot i of the returned slices
// holds instance i's result or error; cancelling ctx skips the items
// not yet started and reports them with an error wrapping ctx.Err().
// Every item solves with s.Options; use SolveBatchWith when items need
// their own options (e.g. per-instance seeds).
func (s *Solver) SolveBatch(ctx context.Context, ins []*instance.Instance) ([]*heuristics.Result, []error) {
	return s.SolveBatchWith(ctx, ins, func(int) heuristics.Options { return s.Options })
}

// SolveBatchWith is SolveBatch with per-item options: item i solves
// with opts(i). Batch runs that must reproduce individual runs pass
// each instance the Seed a standalone solve would use.
func (s *Solver) SolveBatchWith(ctx context.Context, ins []*instance.Instance,
	opts func(i int) heuristics.Options) ([]*heuristics.Result, []error) {
	results := make([]*heuristics.Result, len(ins))
	errs := make([]error, len(ins))
	done, _ := par.ForEachDone(ctx, s.Workers, len(ins), func(i int) {
		inner := Solver{Options: opts(i), Workers: 1}
		results[i], errs[i] = inner.BestCtx(ctx, ins[i])
	})
	par.SkipErrors(ctx, done, errs, "core: batch")
	return results, errs
}

// Heuristics lists the valid heuristic names in the paper's order.
func Heuristics() []string {
	var names []string
	for _, h := range heuristics.All() {
		names = append(names, h.Name())
	}
	return names
}

// LowerBound returns a provable lower bound on the platform cost.
func LowerBound(in *instance.Instance) float64 {
	return bounds.CostLowerBound(in)
}

// Verify executes the mapping on the stream engine and checks that the
// measured steady-state throughput reaches the instance's QoS target.
func Verify(res *heuristics.Result, opt stream.Options) (*stream.Report, error) {
	rep, err := stream.Simulate(res.Mapping, opt)
	if err != nil {
		return nil, err
	}
	if rep.Throughput < 0.9*res.Mapping.Inst.Rho {
		return rep, fmt.Errorf("core: measured throughput %.3f below target %.3f",
			rep.Throughput, res.Mapping.Inst.Rho)
	}
	return rep, nil
}

// VerifyBatch executes many results on the stream engine concurrently,
// at most workers at a time (<= 0 means GOMAXPROCS). Slot i of the
// returned slices holds result i's report or error; cancelling ctx
// skips the simulations not yet started.
func VerifyBatch(ctx context.Context, results []*heuristics.Result, opt stream.Options, workers int) ([]*stream.Report, []error) {
	reps := make([]*stream.Report, len(results))
	errs := make([]error, len(results))
	done, _ := par.ForEachDone(ctx, workers, len(results), func(i int) {
		reps[i], errs[i] = Verify(results[i], opt)
	})
	par.SkipErrors(ctx, done, errs, "core: verify")
	return reps, errs
}

// IsInfeasible reports whether err means "no feasible mapping exists /
// was found" rather than a usage error.
func IsInfeasible(err error) bool {
	return errors.Is(err, heuristics.ErrInfeasible)
}

// CorpusItem is one pinned instance of the canonical benchmark corpus.
type CorpusItem struct {
	Name  string // "N=60,alpha=0.9,seed=1"
	N     int
	Alpha float64
	Seed  int64
	Inst  *instance.Instance
}

// CorpusNs and CorpusAlphas are the canonical benchmark grid: the paper's
// evaluation sweeps tree size and computation exponent, and these pinned
// points cover its small/medium/large and sub/super-linear regimes. The
// N=300/600 cells (beyond the paper's N<=140 sweeps) became affordable
// once solve stopped allocating; they exist to expose O(N^2) hotspots
// such as TryPlace's affected-processor scans. At alpha=1.7 they fail
// Precheck immediately — a legitimate corpus outcome that pins the
// fast-reject path.
var (
	CorpusNs     = []int{20, 60, 140, 300, 600}
	CorpusAlphas = []float64{0.9, 1.7}
)

// CanonicalCorpus generates the pinned instance corpus the perf harness
// (cmd/bench) and the regression baseline are defined over: every
// (N, alpha) cell of the canonical grid with seeds 1..seedsPer. The
// corpus is a pure function of seedsPer — same instances on every
// machine, every run — so timings and allocation counts recorded against
// it are comparable across commits.
func CanonicalCorpus(seedsPer int) []CorpusItem {
	if seedsPer < 1 {
		seedsPer = 1
	}
	var items []CorpusItem
	for _, n := range CorpusNs {
		for _, alpha := range CorpusAlphas {
			for seed := int64(1); seed <= int64(seedsPer); seed++ {
				items = append(items, CorpusItem{
					Name:  fmt.Sprintf("N=%d,alpha=%g,seed=%d", n, alpha, seed),
					N:     n,
					Alpha: alpha,
					Seed:  seed,
					Inst:  instance.Generate(instance.Config{NumOps: n, Alpha: alpha}, seed),
				})
			}
		}
	}
	return items
}
