// Package core orchestrates the full resource-allocation pipeline of
// Benoit et al. — generate or load an instance, run one or all placement
// heuristics (with server selection and downgrade), validate the mapping,
// bound its cost, and optionally execute it on the stream engine — behind
// one Solver type. The root streamalloc package re-exports this as the
// library's public API.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bounds"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/stream"
)

// Solver runs the placement pipeline. The zero value uses the paper's
// defaults (three-loop server selection, downgrade enabled, seed 0).
type Solver struct {
	Options heuristics.Options
}

// Solve runs the named heuristic (see Heuristics for valid names).
func (s *Solver) Solve(in *instance.Instance, name string) (*heuristics.Result, error) {
	h, err := heuristics.ByName(name)
	if err != nil {
		return nil, err
	}
	return heuristics.Solve(in, h, s.Options)
}

// Outcome pairs a heuristic name with its result or failure.
type Outcome struct {
	Name   string
	Result *heuristics.Result // nil when Err != nil
	Err    error
}

// SolveAll runs every paper heuristic and returns the outcomes sorted by
// cost (failures last, in name order).
func (s *Solver) SolveAll(in *instance.Instance) []Outcome {
	var out []Outcome
	for _, h := range heuristics.All() {
		res, err := heuristics.Solve(in, h, s.Options)
		out = append(out, Outcome{Name: h.Name(), Result: res, Err: err})
	}
	sort.SliceStable(out, func(a, b int) bool {
		ra, rb := out[a], out[b]
		switch {
		case ra.Err == nil && rb.Err == nil:
			return ra.Result.Cost < rb.Result.Cost
		case ra.Err == nil:
			return true
		case rb.Err == nil:
			return false
		default:
			return ra.Name < rb.Name
		}
	})
	return out
}

// Best returns the cheapest feasible result across all heuristics — the
// paper's practical recommendation (Subtree-bottom-up usually wins, but
// when it fails one of the greedy heuristics often still succeeds).
func (s *Solver) Best(in *instance.Instance) (*heuristics.Result, error) {
	outcomes := s.SolveAll(in)
	if len(outcomes) == 0 || outcomes[0].Err != nil {
		return nil, fmt.Errorf("core: every heuristic failed: %w", heuristics.ErrInfeasible)
	}
	return outcomes[0].Result, nil
}

// Heuristics lists the valid heuristic names in the paper's order.
func Heuristics() []string {
	var names []string
	for _, h := range heuristics.All() {
		names = append(names, h.Name())
	}
	return names
}

// LowerBound returns a provable lower bound on the platform cost.
func LowerBound(in *instance.Instance) float64 {
	return bounds.CostLowerBound(in)
}

// Verify executes the mapping on the stream engine and checks that the
// measured steady-state throughput reaches the instance's QoS target.
func Verify(res *heuristics.Result, opt stream.Options) (*stream.Report, error) {
	rep, err := stream.Simulate(res.Mapping, opt)
	if err != nil {
		return nil, err
	}
	if rep.Throughput < 0.9*res.Mapping.Inst.Rho {
		return rep, fmt.Errorf("core: measured throughput %.3f below target %.3f",
			rep.Throughput, res.Mapping.Inst.Rho)
	}
	return rep, nil
}

// IsInfeasible reports whether err means "no feasible mapping exists /
// was found" rather than a usage error.
func IsInfeasible(err error) bool {
	return errors.Is(err, heuristics.ErrInfeasible)
}
