package mapping

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/apptree"
	"repro/internal/instance"
	"repro/internal/platform"
)

// fixedInstance builds a hand-checkable instance: the paper's Figure 1(a)
// tree with object sizes {10, 20, 30} MB, frequency 1/2 s, alpha = 1,
// rho = 1, objects held as o1->{S0}, o2->{S0,S1}, o3->{S2}.
func fixedInstance() *instance.Instance {
	t := &apptree.Tree{}
	t.Ops = make([]apptree.Operator, 5)
	t.Root = 3
	t.Ops[3] = apptree.Operator{Parent: apptree.NoParent, ChildOps: []int{4, 2}}
	t.Ops[4] = apptree.Operator{Parent: 3, ChildOps: []int{1, 0}}
	t.Ops[2] = apptree.Operator{Parent: 3}
	t.Ops[1] = apptree.Operator{Parent: 4}
	t.Ops[0] = apptree.Operator{Parent: 4}
	addLeaf := func(op, obj int) {
		li := len(t.Leaves)
		t.Leaves = append(t.Leaves, apptree.Leaf{Object: obj, Parent: op})
		t.Ops[op].Leaves = append(t.Ops[op].Leaves, li)
	}
	addLeaf(1, 0)
	addLeaf(0, 0)
	addLeaf(0, 1)
	addLeaf(2, 1)
	addLeaf(2, 2)
	in := &instance.Instance{
		Tree:     t,
		NumTypes: 3,
		Sizes:    []float64{10, 20, 30},
		Freqs:    []float64{0.5, 0.5, 0.5},
		Holders:  [][]int{{0}, {0, 1}, {2}},
		Platform: platform.DefaultPlatform(),
		Rho:      1,
		Alpha:    1,
	}
	in.Refresh()
	if err := in.Validate(); err != nil {
		panic(err)
	}
	return in
}

func bestConfig(in *instance.Instance) platform.Config {
	return in.Platform.Catalog.MostExpensive()
}

func TestBuySellPlace(t *testing.T) {
	in := fixedInstance()
	m := New(in)
	p := m.Buy(bestConfig(in))
	if len(m.AliveProcs()) != 1 {
		t.Fatal("bought processor not alive")
	}
	m.Place(0, p)
	m.Place(1, p)
	if got := m.OpsOn(p); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("OpsOn = %v", got)
	}
	if m.Complete() {
		t.Fatal("mapping should not be complete")
	}
	m.Unplace(0)
	m.Unplace(1)
	m.Sell(p)
	if len(m.AliveProcs()) != 0 {
		t.Fatal("sold processor still alive")
	}
}

func TestSellNonEmptyPanics(t *testing.T) {
	in := fixedInstance()
	m := New(in)
	p := m.Buy(bestConfig(in))
	m.Place(0, p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic selling non-empty processor")
		}
	}()
	m.Sell(p)
}

func TestComputeLoad(t *testing.T) {
	in := fixedInstance()
	m := New(in)
	p := m.Buy(bestConfig(in))
	m.Place(0, p) // n1: w = 10+20 = 30 (alpha=1)
	m.Place(2, p) // n3: w = 20+30 = 50
	if got := m.ComputeLoad(p); math.Abs(got-80) > 1e-9 {
		t.Fatalf("ComputeLoad = %v, want 80", got)
	}
}

func TestNeededObjectsAndDownloadLoad(t *testing.T) {
	in := fixedInstance()
	m := New(in)
	p := m.Buy(bestConfig(in))
	m.Place(0, p) // needs o1, o2
	m.Place(1, p) // needs o1 (shared with op 0: downloaded once)
	objs := m.NeededObjects(p)
	if len(objs) != 2 || objs[0] != 0 || objs[1] != 1 {
		t.Fatalf("NeededObjects = %v, want [0 1]", objs)
	}
	// rates: o1 = 10*0.5 = 5, o2 = 20*0.5 = 10.
	if got := m.DownloadLoad(p); math.Abs(got-15) > 1e-9 {
		t.Fatalf("DownloadLoad = %v, want 15", got)
	}
}

func TestCommLoadAndLinkTraffic(t *testing.T) {
	in := fixedInstance()
	m := New(in)
	p := m.Buy(bestConfig(in))
	q := m.Buy(bestConfig(in))
	// n1 (delta=30) on p, its parent n5 (delta=40) on q, n2 (delta=10) on q.
	m.Place(0, p)
	m.Place(4, q)
	m.Place(1, q)
	// p: sends delta(n1)=30 to parent on q. No children of n1.
	if got := m.CommLoad(p); math.Abs(got-30) > 1e-9 {
		t.Fatalf("CommLoad(p) = %v, want 30", got)
	}
	// q: n5 receives from n1 (30); n2's parent n5 is local; n5's parent n4
	// is unassigned and does not count; n2 has no operator children.
	if got := m.CommLoad(q); math.Abs(got-30) > 1e-9 {
		t.Fatalf("CommLoad(q) = %v, want 30", got)
	}
	// Worst-case static requirement for {n5, n2, n1}: downloads of o1
	// (rate 5) and o2 (rate 10) plus boundary edge n5->n4 (delta 40).
	if got := m.StaticNICReq(4, 1, 0); math.Abs(got-55) > 1e-9 {
		t.Fatalf("StaticNICReq = %v, want 55", got)
	}
	if got, rev := m.LinkTraffic(p, q), m.LinkTraffic(q, p); math.Abs(got-30) > 1e-9 || math.Abs(got-rev) > 1e-9 {
		t.Fatalf("LinkTraffic = %v / %v, want symmetric 30", got, rev)
	}
	if m.LinkTraffic(p, p) != 0 {
		t.Fatal("self link traffic must be 0")
	}
	// Now place n4 (root) on p: n5 on q sends delta(n5)=40 up to p, and n4
	// receives from n3 (unassigned, not counted).
	m.Place(3, p)
	if got := m.LinkTraffic(p, q); math.Abs(got-70) > 1e-9 {
		t.Fatalf("LinkTraffic after root = %v, want 70", got)
	}
}

func TestTryPlaceRollback(t *testing.T) {
	in := fixedInstance()
	in.Alpha = 3 // root work = (40+50)^3 = 729000 units > fastest 468800
	in.Refresh()
	m := New(in)
	p := m.Buy(bestConfig(in))
	if m.TryPlace(p, 3) {
		t.Fatal("root should not fit any processor at alpha=3")
	}
	if m.OpProc(3) != Unassigned {
		t.Fatal("failed TryPlace did not roll back")
	}
	// n2 alone is tiny and fits.
	if !m.TryPlace(p, 1) {
		t.Fatal("n2 should fit")
	}
	if m.OpProc(1) != p {
		t.Fatal("successful TryPlace did not commit")
	}
}

func TestTryPlaceDetectsNeighbourOverload(t *testing.T) {
	// Build a platform with tiny proc-proc links so that placing a parent
	// elsewhere overloads the link, even though each processor is fine.
	in := fixedInstance()
	in.Platform = platform.DefaultPlatform()
	in.Platform.ProcLinkMBps = 10 // delta(n1)=30 > 10
	in.Refresh()
	m := New(in)
	p := m.Buy(bestConfig(in))
	q := m.Buy(bestConfig(in))
	if !m.TryPlace(p, 0) {
		t.Fatal("n1 alone must fit")
	}
	if m.TryPlace(q, 4) {
		t.Fatal("placing parent across a 10 MB/s link must fail (needs 30)")
	}
	if m.OpProc(4) != Unassigned {
		t.Fatal("rollback failed")
	}
}

func fullValidMapping(t *testing.T, in *instance.Instance) *Mapping {
	t.Helper()
	m := New(in)
	p := m.Buy(bestConfig(in))
	for op := range in.Tree.Ops {
		if !m.TryPlace(p, op) {
			t.Fatalf("op %d does not fit single processor", op)
		}
	}
	for _, k := range m.NeededObjects(p) {
		m.SelectServer(p, k, in.Holders[k][0])
	}
	return m
}

func TestValidateAcceptsGoodMapping(t *testing.T) {
	in := fixedInstance()
	m := fullValidMapping(t, in)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	if got := m.Cost(); got != 7548+5299+5999 {
		t.Fatalf("Cost = %v", got)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	in := fixedInstance()

	// Unassigned operator.
	m := New(in)
	if m.Validate() == nil {
		t.Fatal("unassigned operators not caught")
	}

	// Missing download.
	m = fullValidMapping(t, in)
	delete(m.DL[0], 0)
	if m.Validate() == nil {
		t.Fatal("missing download not caught")
	}

	// Download from a server that does not hold the object (o3 only on S2).
	m = fullValidMapping(t, in)
	m.SelectServer(0, 2, 0)
	if m.Validate() == nil {
		t.Fatal("wrong holder not caught")
	}

	// Spurious download.
	m = fullValidMapping(t, in)
	m.SelectServer(0, 2, 2) // already selected; add an unneeded one
	m.DL[0][99] = 0
	if m.Validate() == nil {
		t.Fatal("spurious download not caught")
	}

	// Compute overload: tiny CPU.
	m = fullValidMapping(t, in)
	m.Procs[0].Config = platform.Config{CPU: 0, NIC: 4}
	// total work = 30+10+50+40+90 = 220 units; still fits 117200 units/s,
	// so shrink the platform budget instead via rho.
	// total work = 220 units; rho=1000 gives a 220,000 units/s load that
	// fits the 46.88 GHz CPU (468,800) but not the 11.72 GHz one (117,200).
	in2 := fixedInstance()
	in2.Rho = 1000
	in2.Refresh()
	m2 := fullValidMapping(t, in2)
	m2.Procs[0].Config = platform.Config{CPU: 0, NIC: 4}
	if m2.Validate() == nil {
		t.Fatal("compute overload not caught")
	}

	// NIC overload: downloads exceed the 1 Gbps card.
	in3 := fixedInstance()
	in3.Freqs = []float64{10, 10, 10} // rates 100,200,300 MB/s; sum=600 > 125
	in3.Refresh()
	m3 := fullValidMapping(t, in3)
	m3.Procs[0].Config = platform.Config{CPU: 4, NIC: 0}
	if m3.Validate() == nil {
		t.Fatal("NIC overload not caught")
	}

	// Server NIC overload.
	in4 := fixedInstance()
	in4.Platform.Servers[0].NICMBps = 1
	m4 := fullValidMapping(t, in4)
	if m4.Validate() == nil {
		t.Fatal("server NIC overload not caught")
	}

	// Server link overload.
	in5 := fixedInstance()
	in5.Platform.ServerLinkMBps = 1
	m5 := fullValidMapping(t, in5)
	if m5.Validate() == nil {
		t.Fatal("server link overload not caught")
	}
}

func TestValidateCatchesProcLinkOverload(t *testing.T) {
	in := fixedInstance()
	in.Platform.ProcLinkMBps = 10
	m := New(in)
	p := m.Buy(bestConfig(in))
	q := m.Buy(bestConfig(in))
	for _, op := range []int{0, 1} {
		m.Place(op, p)
	}
	for _, op := range []int{2, 3, 4} {
		m.Place(op, q) // edge n1->n5 crosses with 30 MB/s > 10
	}
	for _, pp := range []int{p, q} {
		for _, k := range m.NeededObjects(pp) {
			m.SelectServer(pp, k, in.Holders[k][0])
		}
	}
	if m.Validate() == nil {
		t.Fatal("proc-proc link overload not caught")
	}
}

func TestCloneIndependence(t *testing.T) {
	in := fixedInstance()
	m := fullValidMapping(t, in)
	c := m.Clone()
	c.Unplace(0)
	c.DL[0][0] = 5
	if m.OpProc(0) == Unassigned {
		t.Fatal("clone mutation leaked into original assignment")
	}
	if m.DL[0][0] == 5 {
		t.Fatal("clone mutation leaked into original downloads")
	}
}

func TestServerLoadAccounting(t *testing.T) {
	in := fixedInstance()
	m := fullValidMapping(t, in)
	// All three objects downloaded: o1 from S0 (rate 5), o2 from S0 (10),
	// o3 from S2 (15).
	if got := m.ServerLoad(0); math.Abs(got-15) > 1e-9 {
		t.Fatalf("ServerLoad(0) = %v, want 15", got)
	}
	if got := m.ServerLoad(1); got != 0 {
		t.Fatalf("ServerLoad(1) = %v, want 0", got)
	}
	if got := m.ServerLoad(2); math.Abs(got-15) > 1e-9 {
		t.Fatalf("ServerLoad(2) = %v, want 15", got)
	}
	if got := m.ServerLinkLoad(0, 0); math.Abs(got-15) > 1e-9 {
		t.Fatalf("ServerLinkLoad(0,0) = %v, want 15", got)
	}
}

func TestCompact(t *testing.T) {
	in := fixedInstance()
	m := New(in)
	p := m.Buy(bestConfig(in))
	dead := m.Buy(bestConfig(in))
	m.Sell(dead)
	q := m.Buy(bestConfig(in))
	m.Place(0, p)
	m.Place(1, q)
	procs, ops, _ := m.Compact()
	if len(procs) != 2 {
		t.Fatalf("Compact returned %d processors, want 2", len(procs))
	}
	if len(ops[0]) != 1 || ops[0][0] != 0 || len(ops[1]) != 1 || ops[1][0] != 1 {
		t.Fatalf("Compact ops = %v", ops)
	}
}

func TestGeneratedInstanceSingleProcessor(t *testing.T) {
	// Integration: a small generated instance fits on one big processor
	// and passes full validation with first-holder server selection.
	in := instance.Generate(instance.Config{NumOps: 10, Alpha: 0.9}, 42)
	m := fullValidMapping(t, in)
	if err := m.Validate(); err != nil {
		t.Fatalf("generated instance mapping invalid: %v", err)
	}
}

// TestIncrementalMatchesFresh is the differential property test behind
// the incremental-load rebuild: after arbitrary random sequences of
// Buy/Sell/Place/Unplace/TryPlace/MoveAll, every cached per-processor
// load must equal a fresh full-walk re-summation bit-for-bit, the
// adjacency state must re-derive exactly from the Assign vector
// (CheckInvariants), and the public queries must agree with reference
// implementations computed from first principles.
func TestIncrementalMatchesFresh(t *testing.T) {
	for _, n := range []int{1, 4, 12, 40, 90} {
		for seed := int64(1); seed <= 4; seed++ {
			in := instance.Generate(instance.Config{NumOps: n, Alpha: 0.9}, seed)
			r := rand.New(rand.NewSource(seed*1000 + int64(n)))
			m := New(in)
			check := func(step string) {
				t.Helper()
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("N=%d seed=%d after %s: %v", n, seed, step, err)
				}
				for p := range m.Procs {
					if got, want := m.NumOpsOn(p), len(m.OpsOn(p)); got != want {
						t.Fatalf("N=%d seed=%d after %s: NumOpsOn(%d)=%d, OpsOn len %d", n, seed, step, p, got, want)
					}
					// NeededObjects must match a fresh recount of the
					// leaf objects of the operators on p.
					fresh := map[int]bool{}
					for _, op := range m.OpsOn(p) {
						for _, k := range in.Tree.LeafObjects(op) {
							fresh[k] = true
						}
					}
					got := m.NeededObjects(p)
					if len(got) != len(fresh) {
						t.Fatalf("N=%d seed=%d after %s: NeededObjects(%d)=%v, fresh %v", n, seed, step, p, got, fresh)
					}
					for _, k := range got {
						if !fresh[k] {
							t.Fatalf("N=%d seed=%d after %s: NeededObjects(%d) lists %d not in fresh set", n, seed, step, p, k)
						}
					}
				}
			}
			for step := 0; step < 300; step++ {
				op := r.Intn(n)
				switch r.Intn(6) {
				case 0:
					m.Buy(in.Platform.Catalog.MostExpensive())
				case 1: // sell a random empty processor, if any
					for _, p := range m.AliveProcs() {
						if m.NumOpsOn(p) == 0 {
							m.Sell(p)
							break
						}
					}
				case 2:
					if alive := m.AliveProcs(); len(alive) > 0 {
						m.Place(op, alive[r.Intn(len(alive))])
					}
				case 3:
					m.Unplace(op)
				case 4:
					if alive := m.AliveProcs(); len(alive) > 0 {
						m.TryPlace(alive[r.Intn(len(alive))], op)
					}
				case 5:
					if alive := m.AliveProcs(); len(alive) >= 2 {
						m.MoveAll(alive[r.Intn(len(alive))], alive[r.Intn(len(alive))])
					}
				}
				if step%23 == 0 || step == 299 {
					check(fmt.Sprintf("step %d", step))
				}
			}
			// Drive the mapping to completion and require full Validate
			// (which re-runs CheckInvariants) to pass.
			p := m.Buy(in.Platform.Catalog.MostExpensive())
			complete := true
			for op := 0; op < n; op++ {
				if m.OpProc(op) == Unassigned && !m.TryPlace(p, op) {
					complete = false
				}
			}
			check("completion")
			if complete {
				for _, q := range m.AliveProcs() {
					for _, k := range m.NeededObjects(q) {
						m.SelectServer(q, k, in.Holders[k][0])
					}
				}
				if err := m.Validate(); err != nil && m.Complete() {
					// Validation may legitimately fail on capacity (the
					// random construction is not a heuristic), but never
					// on bookkeeping: invariants were already checked.
					if ierr := m.CheckInvariants(); ierr != nil {
						t.Fatalf("N=%d seed=%d: invariants broken at validation: %v", n, seed, ierr)
					}
				}
			}
		}
	}
}

// TestTryPlaceRollbackRestoresCaches pins the rollback path: a failed
// TryPlace must leave the incremental state exactly as before, including
// after multi-operator moves that detach operators from other processors.
func TestTryPlaceRollbackRestoresCaches(t *testing.T) {
	in := fixedInstance()
	in.Platform.ProcLinkMBps = 10 // delta(n1)=30 > 10: crossing edges fail
	m := New(in)
	p := m.Buy(bestConfig(in))
	q := m.Buy(bestConfig(in))
	if !m.TryPlace(p, 0) || !m.TryPlace(p, 1) {
		t.Fatal("setup placements must fit")
	}
	before := []float64{m.ComputeLoad(p), m.CommLoad(p), m.DownloadLoad(p)}
	if m.TryPlace(q, 4) {
		t.Fatal("crossing placement must fail on the 10 MB/s link")
	}
	after := []float64{m.ComputeLoad(p), m.CommLoad(p), m.DownloadLoad(p)}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rollback changed cached load %d: %v -> %v", i, before[i], after[i])
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rollback: %v", err)
	}
	if got := m.NumOpsOn(q); got != 0 {
		t.Fatalf("rolled-back processor hosts %d operators", got)
	}
}

// TestResetMatchesNew pins the arena contract: a Reset mapping is
// indistinguishable from a fresh New one — across instances of
// different sizes — and recycles its download tables instead of
// reallocating them.
func TestResetMatchesNew(t *testing.T) {
	arena := New(instance.Generate(instance.Config{NumOps: 9, Alpha: 0.9}, 7))
	p := arena.Buy(arena.Inst.Platform.Catalog.MostExpensive())
	arena.Place(0, p)
	arena.SelectServer(p, 0, arena.Inst.Holders[0][0])

	for _, n := range []int{4, 12, 4} {
		in := instance.Generate(instance.Config{NumOps: n, Alpha: 0.9}, int64(n))
		arena.Reset(in)
		fresh := New(in)
		if arena.Inst != in {
			t.Fatal("Reset did not rebind the instance")
		}
		if len(arena.Procs) != 0 || len(arena.DL) != 0 {
			t.Fatalf("Reset left %d procs, %d DL entries", len(arena.Procs), len(arena.DL))
		}
		if len(arena.Assign) != len(fresh.Assign) {
			t.Fatalf("Assign length %d, want %d", len(arena.Assign), len(fresh.Assign))
		}
		for op, q := range arena.Assign {
			if q != Unassigned {
				t.Fatalf("op %d not unassigned after Reset", op)
			}
		}
		// The recycled mapping must behave exactly like a fresh one.
		q := arena.Buy(in.Platform.Catalog.MostExpensive())
		arena.SelectServer(q, 0, in.Holders[0][0])
		if len(arena.DL[q]) != 1 || arena.DL[q][0] != in.Holders[0][0] {
			t.Fatalf("recycled DL table carries stale state: %v", arena.DL[q])
		}
	}
}

// TestResetSteadyStateAllocs pins the arena: after warm-up, a
// Reset/Buy/Place/SelectServer cycle allocates nothing.
func TestResetSteadyStateAllocs(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 20, Alpha: 0.9}, 1)
	m := New(in)
	cycle := func() {
		m.Reset(in)
		p := m.Buy(in.Platform.Catalog.MostExpensive())
		m.Place(0, p)
		m.PresizeDL(p, 2)
		m.SelectServer(p, 0, in.Holders[0][0])
		if err := m.ProcFeasible(p); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Fatalf("steady-state Reset cycle allocates %.1f allocs/op, want 0", allocs)
	}
}
