package mapping

import (
	"fmt"

	"repro/internal/platform"
)

// Mark identifies a journal position returned by Checkpoint; Rollback
// undoes every mutation recorded after it.
type Mark int

// recKind discriminates journal records. Every record is the *inverse* of
// the mutation it was appended by: it stores the old values needed to
// restore the pre-mutation state, never a delta. All mapping state behind
// the records is integral (assignments, sorted operator lists, refcounts,
// download-table entries, catalog indices) and every load query folds
// over that state on demand, so replaying the inverses restores loads
// bit-for-bit — there is no accumulated float state to drift.
type recKind uint8

const (
	recAttach   recKind = iota // a=op; undo: detach(op)
	recDetach                  // a=op, b=proc; undo: attach(op, b)
	recBuy                     // a=proc (always the newest); undo: pop it
	recSell                    // a=proc; undo: mark alive again (DL was kept)
	recDLNew                   // a=proc; undo: recycle the (again empty) table
	recDLInsert                // a=proc, b=object; undo: delete the entry
	recDLSet                   // a=proc, b=object, c=old server; undo: restore
	recConfig                  // a=proc, b=old CPU, c=old NIC; undo: restore
)

type record struct {
	kind    recKind
	a, b, c int
}

// SetJournal turns the per-mapping move journal on or off. While on,
// every state mutation (Place/Unplace/Buy/Sell/SelectServer/SetConfig and
// the adjacency updates behind them) appends its inverse record, so
// Checkpoint/Rollback give O(#moves-since-mark) transactional undo with
// zero allocations in steady state (the record slice is recycled).
// Turning the journal off discards all pending records. The journal is
// off by default: pure constructive solves pay nothing for it.
//
// Two deliberate asymmetries versus journal-off execution, both invisible
// to every query: Sell keeps the dead processor's download table intact
// (instead of recycling it) so Rollback can resurrect the processor
// exactly — dead processors are skipped by Validate, ServerLoad and
// Compact, and Reset recycles the tables as usual; and TryPlace rolls a
// failed probe back through the journal instead of its private
// previous-assignment buffer (the restored state is identical either
// way).
func (m *Mapping) SetJournal(on bool) {
	m.jon = on
	if !on {
		m.journal = m.journal[:0]
	}
}

// Journaling reports whether the move journal is recording.
func (m *Mapping) Journaling() bool { return m.jon }

// Checkpoint returns a mark for the current journal position. Marks nest:
// rolling back to an outer mark undoes everything after it, including
// regions inner marks were taken in. A mark is invalidated by Rollback
// past it, CommitJournal, Reset, CopyFrom and SetJournal(false).
func (m *Mapping) Checkpoint() Mark {
	if !m.jon {
		panic("mapping: Checkpoint without SetJournal(true)")
	}
	return Mark(len(m.journal))
}

// Rollback undoes every mutation recorded after mark, restoring the
// mapping to the exact state it had at Checkpoint time — assignments,
// adjacency, refcounts, processors and download tables all compare equal
// to a Clone taken at the mark (the differential tests assert ==). Cost
// is O(#records since mark), allocation-free.
func (m *Mapping) Rollback(mark Mark) {
	if int(mark) > len(m.journal) {
		panic(fmt.Sprintf("mapping: Rollback(%d) past journal end %d", mark, len(m.journal)))
	}
	jon := m.jon
	m.jon = false // the undos below must not journal themselves
	for i := len(m.journal) - 1; i >= int(mark); i-- {
		r := m.journal[i]
		switch r.kind {
		case recAttach:
			m.detach(r.a)
		case recDetach:
			m.attach(r.a, r.b)
		case recBuy:
			m.unbuy(r.a)
		case recSell:
			m.Procs[r.a].Alive = true
		case recDLNew:
			// LIFO: every entry inserted after the table was created has
			// been undone already, so the table is empty again.
			m.dlFree = append(m.dlFree, m.DL[r.a])
			m.DL[r.a] = nil
		case recDLInsert:
			delete(m.DL[r.a], r.b)
		case recDLSet:
			m.DL[r.a][r.b] = r.c
		case recConfig:
			m.Procs[r.a].Config = platform.Config{CPU: r.b, NIC: r.c}
		}
	}
	m.journal = m.journal[:mark]
	m.jon = jon
}

// CommitJournal accepts everything recorded so far: the records are
// discarded and earlier marks become invalid. Local-search acceptors call
// this after keeping a move so the journal never grows beyond one
// tentative region.
func (m *Mapping) CommitJournal() { m.journal = m.journal[:0] }

// unbuy reverses the most recent Buy: processor p vanishes again. LIFO
// rollback order guarantees p is the last slot and hosts nothing.
func (m *Mapping) unbuy(p int) {
	if p != len(m.Procs)-1 {
		panic(fmt.Sprintf("mapping: journal unbuy of %d but %d processors exist", p, len(m.Procs)))
	}
	if lst := m.opsOn[p]; lst != nil {
		m.opsFree = append(m.opsFree, lst[:0])
	}
	m.opsOn = m.opsOn[:p]
	if d := m.DL[p]; d != nil {
		// Possible only for a processor sold (DL kept) and resurrected
		// within the rolled-back region; the table is clean to recycle.
		clear(d)
		m.dlFree = append(m.dlFree, d)
	}
	m.DL = m.DL[:p]
	m.Procs = m.Procs[:p]
	m.objRef = m.objRef[:p*m.Inst.NumTypes]
}

// SetConfig swaps processor p's purchased configuration in place. The
// downgrade pass and the refinement layer's upgrade/refit moves use this
// instead of writing Procs[p].Config directly so the swap lands in the
// journal.
func (m *Mapping) SetConfig(p int, cfg platform.Config) {
	if m.jon {
		old := m.Procs[p].Config
		m.journal = append(m.journal, record{kind: recConfig, a: p, b: old.CPU, c: old.NIC})
	}
	m.Procs[p].Config = cfg
}

// ClearDownloads forgets every server selection while keeping the
// placement: all download tables become empty (entries journaled so
// Rollback restores them). The refinement layer clears selections before
// mutating a placement and re-runs server selection afterwards.
func (m *Mapping) ClearDownloads() {
	for p := range m.DL {
		d := m.DL[p]
		if d == nil {
			continue
		}
		if m.jon {
			for k, v := range d {
				m.journal = append(m.journal, record{kind: recDLSet, a: p, b: k, c: v})
			}
		}
		clear(d)
	}
}

// CopyFrom rebuilds m as a deep copy of src — placement, processors,
// download tables — reusing m's recycled storage like Reset does. Like
// Reset it discards m's journal (the copy is a new baseline); the
// journal on/off switch is preserved. The refinement layer uses this to
// install its best-found snapshot into the working arena.
func (m *Mapping) CopyFrom(src *Mapping) {
	if m == src {
		return
	}
	jon := m.jon
	m.Reset(src.Inst)
	m.jon = false // rebuild silently; the copy is the new journal baseline
	for p := range src.Procs {
		m.Buy(src.Procs[p].Config)
	}
	for op, p := range src.Assign {
		if p != Unassigned {
			m.attach(op, p)
		}
	}
	for p := range src.Procs {
		if !src.Procs[p].Alive {
			m.Procs[p].Alive = false
		}
		if d := src.DL[p]; len(d) > 0 {
			nd := m.newDL(len(d))
			for k, v := range d {
				nd[k] = v
			}
			m.DL[p] = nd
		}
	}
	m.jon = jon
}
