package mapping

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/instance"
	"repro/internal/platform"
)

// requireEqualState fails unless got's mapping state compares exactly
// equal (==, not approximately) to want's: assignments, processors,
// adjacency lists, refcounts, download tables and every load query. This
// is the journal contract: Rollback(mark) must restore the state a Clone
// taken at Checkpoint time captured.
func requireEqualState(t testing.TB, ctx string, got, want *Mapping) {
	t.Helper()
	if len(got.Procs) != len(want.Procs) {
		t.Fatalf("%s: %d processors, want %d", ctx, len(got.Procs), len(want.Procs))
	}
	for p := range want.Procs {
		if got.Procs[p] != want.Procs[p] {
			t.Fatalf("%s: processor %d = %+v, want %+v", ctx, p, got.Procs[p], want.Procs[p])
		}
	}
	if len(got.Assign) != len(want.Assign) {
		t.Fatalf("%s: %d assignments, want %d", ctx, len(got.Assign), len(want.Assign))
	}
	for op := range want.Assign {
		if got.Assign[op] != want.Assign[op] {
			t.Fatalf("%s: operator %d on %d, want %d", ctx, op, got.Assign[op], want.Assign[op])
		}
	}
	for p := range want.Procs {
		g, w := got.opsOn[p], want.opsOn[p]
		if len(g) != len(w) {
			t.Fatalf("%s: opsOn[%d] = %v, want %v", ctx, p, g, w)
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: opsOn[%d] = %v, want %v", ctx, p, g, w)
			}
		}
	}
	if len(got.objRef) != len(want.objRef) {
		t.Fatalf("%s: objRef length %d, want %d", ctx, len(got.objRef), len(want.objRef))
	}
	for i := range want.objRef {
		if got.objRef[i] != want.objRef[i] {
			t.Fatalf("%s: objRef[%d] = %d, want %d", ctx, i, got.objRef[i], want.objRef[i])
		}
	}
	for p := range want.Procs {
		g, w := got.DL[p], want.DL[p]
		if len(g) != len(w) {
			t.Fatalf("%s: DL[%d] = %v, want %v", ctx, p, g, w)
		}
		for k, v := range w {
			if gv, ok := g[k]; !ok || gv != v {
				t.Fatalf("%s: DL[%d] = %v, want %v", ctx, p, g, w)
			}
		}
	}
	if g, w := got.Cost(), want.Cost(); g != w {
		t.Fatalf("%s: cost %v, want %v", ctx, g, w)
	}
	for p := range want.Procs {
		if g, w := got.ComputeLoad(p), want.ComputeLoad(p); g != w {
			t.Fatalf("%s: ComputeLoad(%d) %v, want %v", ctx, p, g, w)
		}
		if g, w := got.NICLoad(p), want.NICLoad(p); g != w {
			t.Fatalf("%s: NICLoad(%d) %v, want %v", ctx, p, g, w)
		}
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants after rollback: %v", ctx, err)
	}
}

// journalDriver mutates a journaled mapping with the full move vocabulary
// while keeping a stack of (mark, clone) pairs; popping a level rolls the
// journal back and requires exact equality with the clone. Shared by the
// differential property test and the fuzz target.
type journalDriver struct {
	t     testing.TB
	in    *instance.Instance
	m     *Mapping
	cfgs  []platform.Config
	marks []Mark
	snaps []*Mapping
	steps int
}

func newJournalDriver(t testing.TB, in *instance.Instance) *journalDriver {
	d := &journalDriver{t: t, in: in, m: New(in)}
	d.m.SetJournal(true)
	cat := in.Platform.Catalog
	for ci := range cat.CPUs {
		for ni := range cat.NICs {
			d.cfgs = append(d.cfgs, platform.Config{CPU: ci, NIC: ni})
		}
	}
	return d
}

// mutate applies one of the journaled mutations, chosen by action.
func (d *journalDriver) mutate(action int, r *rand.Rand) {
	m, in := d.m, d.in
	n := in.Tree.NumOps()
	op := r.Intn(n)
	alive := m.AliveProcs()
	pick := func() int { return alive[r.Intn(len(alive))] }
	switch action % 9 {
	case 0:
		m.Buy(d.cfgs[r.Intn(len(d.cfgs))])
	case 1: // sell a random empty processor, if any
		for _, p := range alive {
			if m.NumOpsOn(p) == 0 {
				m.Sell(p)
				break
			}
		}
	case 2:
		if len(alive) > 0 {
			m.Place(op, pick())
		}
	case 3:
		m.Unplace(op)
	case 4:
		if len(alive) > 0 {
			m.TryPlace(pick(), op)
		}
	case 5:
		if len(alive) >= 2 {
			m.MoveAll(pick(), pick())
		}
	case 6: // select a server for a random needed (or arbitrary) object
		if len(alive) > 0 {
			p := pick()
			k := r.Intn(in.NumTypes)
			if needed := m.NeededObjects(p); len(needed) > 0 {
				k = needed[r.Intn(len(needed))]
			}
			if holders := in.Holders[k]; len(holders) > 0 {
				m.SelectServer(p, k, holders[r.Intn(len(holders))])
			}
		}
	case 7:
		if len(alive) > 0 {
			m.SetConfig(pick(), d.cfgs[r.Intn(len(d.cfgs))])
		}
	case 8:
		m.ClearDownloads()
	}
	d.steps++
}

func (d *journalDriver) push() {
	d.marks = append(d.marks, d.m.Checkpoint())
	d.snaps = append(d.snaps, d.m.Clone())
	if err := d.m.CheckInvariants(); err != nil {
		d.t.Fatalf("step %d: invariants at checkpoint: %v", d.steps, err)
	}
}

func (d *journalDriver) pop() {
	if len(d.marks) == 0 {
		return
	}
	top := len(d.marks) - 1
	d.m.Rollback(d.marks[top])
	requireEqualState(d.t, fmt.Sprintf("step %d rollback to mark %d", d.steps, top), d.m, d.snaps[top])
	d.marks, d.snaps = d.marks[:top], d.snaps[:top]
}

func (d *journalDriver) commit() {
	d.m.CommitJournal()
	// Every outstanding mark is invalidated; the current state is the new
	// baseline.
	d.marks, d.snaps = d.marks[:0], d.snaps[:0]
}

// TestJournalRollbackMatchesClone is the differential property test of
// the move journal: random mutation sequences with nested checkpoints,
// where every rollback must restore exactly the state a Clone captured at
// the mark, across instance sizes and seeds.
func TestJournalRollbackMatchesClone(t *testing.T) {
	for _, n := range []int{1, 4, 12, 40} {
		for seed := int64(1); seed <= 4; seed++ {
			in := instance.Generate(instance.Config{NumOps: n, Alpha: 0.9}, seed)
			r := rand.New(rand.NewSource(seed*1000 + int64(n)))
			d := newJournalDriver(t, in)
			d.push() // empty-state mark: the final pop rolls everything back
			for step := 0; step < 400; step++ {
				switch x := r.Intn(20); {
				case x < 2 && len(d.marks) < 6:
					d.push()
				case x == 2:
					d.pop()
				case x == 3 && len(d.marks) == 0:
					d.commit()
				default:
					d.mutate(r.Intn(9), r)
				}
			}
			for len(d.marks) > 0 {
				d.pop()
			}
		}
	}
}

// TestJournalOffTryPlaceUnchanged pins that a mapping with the journal
// off never records anything (the default constructive path pays zero).
func TestJournalOffTryPlaceUnchanged(t *testing.T) {
	in := fixedInstance()
	m := New(in)
	p := m.Buy(bestConfig(in))
	if !m.TryPlace(p, 0) {
		t.Fatal("placement must fit")
	}
	if len(m.journal) != 0 || m.Journaling() {
		t.Fatalf("journal recorded %d records while off", len(m.journal))
	}
	panicked := func() (p any) {
		defer func() { p = recover() }()
		m.Checkpoint()
		return nil
	}()
	if panicked == nil {
		t.Fatal("Checkpoint without SetJournal(true) must panic")
	}
}

// TestJournalSteadyStateAllocs pins the zero-allocation contract of the
// checkpoint/rollback cycle once the record slice has grown.
func TestJournalSteadyStateAllocs(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 30, Alpha: 0.9}, 3)
	m := New(in)
	m.SetJournal(true)
	p := m.Buy(in.Platform.Catalog.MostExpensive())
	for op := 0; op < 30; op++ {
		m.Place(op, p)
	}
	m.CommitJournal()
	cycle := func() {
		mark := m.Checkpoint()
		q := m.Buy(in.Platform.Catalog.MostExpensive())
		for op := 0; op < 10; op++ {
			m.TryPlace(q, op)
		}
		m.SetConfig(q, platform.Config{})
		m.Rollback(mark)
	}
	cycle() // warm up scratch and the record slice
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("checkpoint/rollback cycle allocates %v/op, want 0", allocs)
	}
}

// FuzzJournalRollback lets the fuzzer steer the mutation/checkpoint
// program directly: each program byte either pushes a checkpoint, pops
// one (rollback + exact-equality check against the clone), commits, or
// applies one mutation, with argument choice from a derived PRNG.
func FuzzJournalRollback(f *testing.F) {
	f.Add(int64(1), uint8(8), []byte{0, 1, 2, 9, 3, 4, 10, 5, 6, 7, 8, 9, 2, 2, 10, 11, 0})
	f.Add(int64(7), uint8(15), []byte{9, 0, 2, 2, 9, 4, 5, 10, 6, 8, 10})
	f.Add(int64(3), uint8(3), []byte{9, 9, 9, 2, 10, 2, 10, 2, 10})
	f.Fuzz(func(t *testing.T, seed int64, n uint8, prog []byte) {
		if len(prog) > 512 {
			prog = prog[:512]
		}
		in := instance.Generate(instance.Config{
			NumOps: 1 + int(n%24), NumTypes: 4, Alpha: 0.9,
		}, seed%64)
		r := rand.New(rand.NewSource(seed))
		d := newJournalDriver(t, in)
		d.push()
		for _, b := range prog {
			switch action := int(b % 12); action {
			case 9:
				if len(d.marks) < 8 {
					d.push()
				}
			case 10:
				d.pop()
			case 11:
				if len(d.marks) == 0 {
					d.commit()
				}
			default:
				d.mutate(action, r)
			}
		}
		for len(d.marks) > 0 {
			d.pop()
		}
	})
}
