// Package mapping implements the operator-to-processor allocation model of
// Benoit et al. and the five steady-state feasibility constraints of the
// paper's Section 2.3:
//
//	(1) compute:        sum_{i in a¯(u)} rho*w_i / s_u <= 1
//	(2) processor NIC:  downloads + crossing child traffic + crossing
//	                    parent traffic <= Bp_u
//	(3) server NIC:     sum of downloads served by S_l <= Bs_l
//	(4) server-proc link: downloads on (l,u) <= bs
//	(5) proc-proc link:   crossing traffic between (u,v) <= bp
//
// A Mapping is a mutable construction object for the placement heuristics:
// processors are bought and sold, operators placed and removed, and server
// choices recorded.
//
// # Incremental load tracking
//
// The constructive heuristics ask "is processor p still feasible?" after
// every tentative move, and a naive answer re-walks every operator of the
// tree per query — O(N) per load, O(N·P) per feasibility check, O(N²) per
// solve, which made the N=600 corpus solves entirely compute-bound. A
// Mapping therefore maintains, incrementally on every Place/Unplace (and
// Buy/Sell/Reset/Clone), two pieces of per-processor adjacency state:
//
//   - opsOn[p]: the operators assigned to p, kept sorted ascending, and
//   - objRef[p*NumTypes+k]: how many leaves of those operators reference
//     basic-object type k (the download-dedup refcount).
//
// Each update is O(degree) — a sorted insert or delete plus at most two
// leaf refcount bumps. Every load query (ComputeLoad, DownloadLoad,
// CommLoad, NICLoad, LinkTraffic, NeededObjects) then folds over this
// per-processor state in O(|ops on p|) instead of O(N), and ProcFeasible
// checks all (5)-links touching p in one pass over opsOn[p] instead of an
// O(P·N) all-pairs scan.
//
// The queries are deliberately NOT running float accumulators: they
// re-fold the per-processor lists on every call, in exactly the ascending
// operator / ascending object order that a fresh walk of the whole Assign
// vector would use. Floating-point addition is order-dependent and
// add-then-undo does not round-trip, so true O(1) accumulators would
// drift away from a fresh re-summation and could flip feasibility
// decisions at capacity boundaries (the PR 3 capacity-epsilon bug was
// exactly such a construction/verification disagreement). Folding cached
// adjacency in canonical order keeps every query bit-identical to the
// historical O(N) implementation — same solves, same figures, byte for
// byte — while still removing the O(N²).
//
// Validate doubles as the invariant checker for this contract: besides
// re-checking constraints (1)-(5) and the download tables from scratch,
// it re-derives opsOn/objRef from the Assign vector and re-sums every
// per-processor load with the historical full-walk implementations,
// failing on ANY divergence from the incremental state (load agreement is
// exact — stronger than the Eps capacity tolerance — because the
// summation orders match by construction).
//
// Assign and DL remain exported for cheap read access (the server
// selector iterates Assign directly); mutate assignments only through
// Place/Unplace/TryPlace/MoveAll, or the adjacency state goes stale and
// Validate will reject the mapping.
//
// A Mapping is not safe for concurrent use: the constraint-checking
// methods share per-Mapping scratch buffers (the placement heuristics
// hammer TryPlace/ProcFeasible, and reallocating dedup sets on every call
// dominated the solve profile), so even read-only methods may race. Batch
// solvers give every goroutine its own Mapping.
package mapping
