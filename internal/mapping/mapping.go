// Package mapping implements the operator-to-processor allocation model of
// Benoit et al. and the five steady-state feasibility constraints of the
// paper's Section 2.3:
//
//	(1) compute:        sum_{i in a¯(u)} rho*w_i / s_u <= 1
//	(2) processor NIC:  downloads + crossing child traffic + crossing
//	                    parent traffic <= Bp_u
//	(3) server NIC:     sum of downloads served by S_l <= Bs_l
//	(4) server-proc link: downloads on (l,u) <= bs
//	(5) proc-proc link:   crossing traffic between (u,v) <= bp
//
// A Mapping is a mutable construction object for the placement heuristics:
// processors are bought and sold, operators placed and removed, and server
// choices recorded. Validate performs a full independent re-check of every
// constraint from scratch, so heuristics cannot hide bookkeeping bugs.
//
// A Mapping is not safe for concurrent use: the constraint-checking
// methods share per-Mapping scratch buffers (the placement heuristics
// hammer TryPlace/ProcFeasible, and reallocating dedup sets on every call
// dominated the solve profile), so even read-only methods may race. Batch
// solvers give every goroutine its own Mapping.
package mapping

import (
	"fmt"

	"repro/internal/apptree"
	"repro/internal/instance"
	"repro/internal/platform"
	"repro/internal/xslice"
)

// Unassigned marks an operator without a processor.
const Unassigned = -1

// NoServer marks a download whose source server has not been selected yet.
const NoServer = -1

// Proc is one purchased processor.
type Proc struct {
	Config platform.Config
	Alive  bool // false once sold back
}

// Mapping is a (possibly partial) allocation of the operators of an
// instance onto purchased processors.
type Mapping struct {
	Inst   *instance.Instance
	Procs  []Proc
	Assign []int         // operator -> processor index, or Unassigned
	DL     []map[int]int // per processor: object type -> chosen server (NoServer until selected)

	scr    *scratch      // lazily-allocated reusable buffers, never shared via Clone
	dlFree []map[int]int // cleared download tables recycled across Reset cycles
}

// scratch holds the reusable buffers behind the hot constraint checks.
// Every user clears what it dirtied before returning, so the buffers are
// all-false/empty between calls and methods can nest (TryPlace ->
// ProcFeasible -> DownloadLoad) as long as they use disjoint fields.
type scratch struct {
	objSeen  []bool // per object type: dedup for download sums
	opSeen   []bool // per operator: group membership in StaticNICReq
	procSeen []bool // per processor: dedup of affected procs in TryPlace
	affected []int  // TryPlace: procs to re-check
	prev     []int  // TryPlace: rollback assignments
	ops      []int  // MoveAll: operator gather buffer
}

// scratchFor returns the mapping's scratch with the per-type and per-op
// buffers sized (those never change size); per-proc buffers are sized at
// the point of use because Buy grows the processor list.
func (m *Mapping) scratchFor() *scratch {
	if m.scr == nil {
		m.scr = &scratch{}
	}
	s := m.scr
	s.objSeen = xslice.Grow(s.objSeen, m.Inst.NumTypes)
	s.opSeen = xslice.Grow(s.opSeen, m.Inst.Tree.NumOps())
	return s
}

// New returns an empty mapping for the instance.
func New(in *instance.Instance) *Mapping {
	m := &Mapping{Inst: in, Assign: make([]int, in.Tree.NumOps())}
	for i := range m.Assign {
		m.Assign[i] = Unassigned
	}
	return m
}

// Reset rebinds m to in as an empty mapping, recycling every piece of
// storage a previous construction left behind: the processor and
// assignment vectors keep their capacity, the per-processor download
// tables are cleared onto an internal freelist that Buy/PresizeDL drain
// before calling make, and the constraint-check scratch survives as-is.
// A Reset mapping is indistinguishable from New(in) to every method;
// steady-state sweep solves through one arena mapping allocate nothing
// here. Anything previously reachable from m (its old Procs, DL tables)
// is invalidated — callers that handed those out must Clone first.
func (m *Mapping) Reset(in *instance.Instance) {
	m.Inst = in
	m.Assign = xslice.Grow(m.Assign, in.Tree.NumOps())
	for i := range m.Assign {
		m.Assign[i] = Unassigned
	}
	for p := range m.DL {
		if d := m.DL[p]; d != nil {
			clear(d)
			m.dlFree = append(m.dlFree, d)
			m.DL[p] = nil
		}
	}
	m.Procs = m.Procs[:0]
	m.DL = m.DL[:0]
}

// newDL returns an empty download table with room for n entries,
// preferring a recycled one from the Reset freelist.
func (m *Mapping) newDL(n int) map[int]int {
	if k := len(m.dlFree); k > 0 {
		d := m.dlFree[k-1]
		m.dlFree[k-1] = nil
		m.dlFree = m.dlFree[:k-1]
		return d
	}
	return make(map[int]int, n)
}

// Clone returns a deep copy; heuristics use it for tentative moves.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{Inst: m.Inst}
	c.Procs = append([]Proc(nil), m.Procs...)
	c.Assign = append([]int(nil), m.Assign...)
	c.DL = make([]map[int]int, len(m.DL))
	for i, d := range m.DL {
		if d == nil {
			continue
		}
		c.DL[i] = make(map[int]int, len(d))
		for k, v := range d {
			c.DL[i][k] = v
		}
	}
	return c
}

// Buy acquires a processor with the given configuration and returns its id.
func (m *Mapping) Buy(cfg platform.Config) int {
	m.Procs = append(m.Procs, Proc{Config: cfg, Alive: true})
	m.DL = append(m.DL, nil)
	return len(m.Procs) - 1
}

// Sell returns a processor; it must be empty.
func (m *Mapping) Sell(p int) {
	if n := m.NumOpsOn(p); n != 0 {
		panic(fmt.Sprintf("mapping: selling processor %d with %d operators", p, n))
	}
	m.Procs[p].Alive = false
	if d := m.DL[p]; d != nil {
		clear(d)
		m.dlFree = append(m.dlFree, d)
		m.DL[p] = nil
	}
}

// Place assigns operator op to processor p (which must be alive).
func (m *Mapping) Place(op, p int) {
	if !m.Procs[p].Alive {
		panic(fmt.Sprintf("mapping: placing on sold processor %d", p))
	}
	m.Assign[op] = p
}

// Unplace removes operator op from its processor.
func (m *Mapping) Unplace(op int) { m.Assign[op] = Unassigned }

// OpProc returns the processor hosting op, or Unassigned.
func (m *Mapping) OpProc(op int) int { return m.Assign[op] }

// OpsOn returns the operators currently assigned to p, ascending.
func (m *Mapping) OpsOn(p int) []int {
	var out []int
	for op, q := range m.Assign {
		if q == p {
			out = append(out, op)
		}
	}
	return out
}

// NumOpsOn returns how many operators are assigned to p without
// materializing the list.
func (m *Mapping) NumOpsOn(p int) int {
	n := 0
	for _, q := range m.Assign {
		if q == p {
			n++
		}
	}
	return n
}

// AliveProcs returns the ids of processors not yet sold.
func (m *Mapping) AliveProcs() []int {
	var out []int
	for p := range m.Procs {
		if m.Procs[p].Alive {
			out = append(out, p)
		}
	}
	return out
}

// Complete reports whether every operator is assigned.
func (m *Mapping) Complete() bool {
	for _, p := range m.Assign {
		if p == Unassigned {
			return false
		}
	}
	return true
}

// Cost returns the total purchase cost of alive processors (servers are
// fixed and free in the constructive model).
func (m *Mapping) Cost() float64 {
	total := 0.0
	for p := range m.Procs {
		if m.Procs[p].Alive {
			total += m.Inst.Platform.Catalog.Cost(m.Procs[p].Config)
		}
	}
	return total
}

// ComputeLoad returns the work rate rho * sum w_i demanded of p, in
// work-units/s; constraint (1) requires it not to exceed the processor's
// SpeedUnits.
func (m *Mapping) ComputeLoad(p int) float64 {
	load := 0.0
	for op, q := range m.Assign {
		if q == p {
			load += m.Inst.Rho * m.Inst.W[op]
		}
	}
	return load
}

// markNeeded sets objSeen for every object type the operators on p must
// download and reports whether any was marked. Callers clear the marks.
func (m *Mapping) markNeeded(p int, objSeen []bool) bool {
	tree := m.Inst.Tree
	any := false
	for op, q := range m.Assign {
		if q != p {
			continue
		}
		for _, li := range tree.Ops[op].Leaves {
			objSeen[tree.Leaves[li].Object] = true
			any = true
		}
	}
	return any
}

// NeededObjects returns the de-duplicated sorted object types the
// operators on p must download (union of Leaf(i) over i in a¯(p)).
func (m *Mapping) NeededObjects(p int) []int {
	s := m.scratchFor()
	if !m.markNeeded(p, s.objSeen) {
		return nil
	}
	var out []int
	for k, seen := range s.objSeen {
		if seen {
			out = append(out, k)
			s.objSeen[k] = false
		}
	}
	return out
}

// DownloadLoad returns the NIC bandwidth p spends on basic-object
// downloads: sum of rate_k over its needed objects (each object is
// downloaded once per processor regardless of how many local operators
// share it — the paper's DL(u) is a set). The sum runs in ascending
// object order, matching NeededObjects.
func (m *Mapping) DownloadLoad(p int) float64 {
	s := m.scratchFor()
	if !m.markNeeded(p, s.objSeen) {
		return 0
	}
	load := 0.0
	for k, seen := range s.objSeen {
		if seen {
			load += m.Inst.Rate(k)
			s.objSeen[k] = false
		}
	}
	return load
}

// CommLoad returns the NIC bandwidth p spends exchanging intermediate
// results with other processors: incoming traffic from operator children
// mapped elsewhere plus outgoing traffic to parents mapped elsewhere.
// Edges to still-Unassigned operators do not count; they are accounted for
// when the neighbour is placed (heuristics that buy small processors guard
// against this with StaticNICReq at purchase time). On a complete mapping
// the value is exact.
func (m *Mapping) CommLoad(p int) float64 {
	load := 0.0
	tree := m.Inst.Tree
	for op, onP := range m.Assign {
		if onP != p {
			continue
		}
		for _, c := range tree.Ops[op].ChildOps {
			if q := m.Assign[c]; q != p && q != Unassigned {
				load += m.Inst.EdgeTraffic(c)
			}
		}
		if par := tree.Ops[op].Parent; par != apptree.NoParent {
			if q := m.Assign[par]; q != p && q != Unassigned {
				load += m.Inst.EdgeTraffic(op)
			}
		}
	}
	return load
}

// StaticNICReq returns the worst-case NIC bandwidth a processor hosting
// exactly the given operator group must provide: the group's de-duplicated
// object download rates plus the traffic of every tree edge crossing the
// group's boundary, as if every neighbour were mapped remotely. Heuristics
// that buy the cheapest viable processor size its NIC with this bound so
// that later placements of neighbours can never overload it; the final
// downgrade step recovers the slack once the real crossing set is known.
func (m *Mapping) StaticNICReq(ops ...int) float64 {
	in := m.Inst
	s := m.scratchFor()
	group, seen := s.opSeen, s.objSeen
	for _, op := range ops {
		group[op] = true
	}
	load := 0.0
	for _, op := range ops {
		// A binary-tree operator has at most two leaves; sum its object
		// types in ascending order (the LeafObjects order) without a map.
		leaves := in.Tree.Ops[op].Leaves
		k0, k1 := -1, -1
		switch len(leaves) {
		case 1:
			k0 = in.Tree.Leaves[leaves[0]].Object
		case 2:
			k0, k1 = in.Tree.Leaves[leaves[0]].Object, in.Tree.Leaves[leaves[1]].Object
			if k1 < k0 {
				k0, k1 = k1, k0
			}
			if k1 == k0 {
				k1 = -1
			}
		}
		if k0 >= 0 && !seen[k0] {
			seen[k0] = true
			load += in.Rate(k0)
		}
		if k1 >= 0 && !seen[k1] {
			seen[k1] = true
			load += in.Rate(k1)
		}
		for _, c := range in.Tree.Ops[op].ChildOps {
			if !group[c] {
				load += in.EdgeTraffic(c)
			}
		}
		if par := in.Tree.Ops[op].Parent; par != apptree.NoParent && !group[par] {
			load += in.EdgeTraffic(op)
		}
	}
	for _, op := range ops {
		group[op] = false
		for _, li := range in.Tree.Ops[op].Leaves {
			seen[in.Tree.Leaves[li].Object] = false
		}
	}
	return load
}

// NICLoad is the total NIC bandwidth demanded of p (downloads plus
// communication); constraint (2) requires it not to exceed Bp.
func (m *Mapping) NICLoad(p int) float64 { return m.DownloadLoad(p) + m.CommLoad(p) }

// LinkTraffic returns the traffic on the bidirectional link between
// processors p and q: the sum of rho*delta over tree edges with one
// endpoint on each; constraint (5) bounds it by bp.
func (m *Mapping) LinkTraffic(p, q int) float64 {
	if p == q {
		return 0
	}
	load := 0.0
	tree := m.Inst.Tree
	for op, onP := range m.Assign {
		if onP != p {
			continue
		}
		for _, c := range tree.Ops[op].ChildOps {
			if m.Assign[c] == q {
				load += m.Inst.EdgeTraffic(c)
			}
		}
		if par := tree.Ops[op].Parent; par != apptree.NoParent && m.Assign[par] == q {
			load += m.Inst.EdgeTraffic(op)
		}
	}
	return load
}

// ProcFeasible checks constraints (1), (2) and every (5)-link touching p
// for the current (possibly partial) assignment. It returns nil or a
// descriptive error.
func (m *Mapping) ProcFeasible(p int) error {
	cat := m.Inst.Platform.Catalog
	if load, cap := m.ComputeLoad(p), cat.SpeedUnits(m.Procs[p].Config); load > cap+eps {
		return fmt.Errorf("mapping: processor %d compute overload %.3f > %.3f units/s", p, load, cap)
	}
	if load, cap := m.NICLoad(p), cat.BandwidthMBps(m.Procs[p].Config); load > cap+eps {
		return fmt.Errorf("mapping: processor %d NIC overload %.3f > %.3f MB/s", p, load, cap)
	}
	for q := range m.Procs {
		if q == p || !m.Procs[q].Alive {
			continue
		}
		if tr := m.LinkTraffic(p, q); tr > m.Inst.Platform.ProcLinkMBps+eps {
			return fmt.Errorf("mapping: link %d-%d overload %.3f > %.3f MB/s", p, q, tr, m.Inst.Platform.ProcLinkMBps)
		}
	}
	return nil
}

// Eps absorbs float rounding in constraint comparisons: a load may exceed
// a capacity by at most Eps before the constraint counts as violated.
// Every capacity comparison in the repository — the five Validate
// constraints here and the admission checks of the server-selection step
// in package heuristics — uses this one constant with this one direction
// (load > cap+Eps fails), so construction and verification can never
// disagree about feasibility at the boundary.
const Eps = 1e-9

// eps is the internal alias predating the export.
const eps = Eps

// TryPlace tentatively places ops on p; if any of constraints (1), (2),
// (5) would be violated for p or for a processor hosting a neighbour of
// ops, the placement is rolled back and false is returned.
func (m *Mapping) TryPlace(p int, ops ...int) bool {
	s := m.scratchFor()
	s.procSeen = xslice.Grow(s.procSeen, len(m.Procs))
	s.prev = xslice.Grow(s.prev, len(ops))
	prev := s.prev
	for i, op := range ops {
		prev[i] = m.Assign[op]
		m.Place(op, p)
	}
	affected := append(s.affected[:0], p)
	s.procSeen[p] = true
	tree := m.Inst.Tree
	for _, op := range ops {
		for _, c := range tree.Ops[op].ChildOps {
			if q := m.Assign[c]; q != Unassigned && !s.procSeen[q] {
				s.procSeen[q] = true
				affected = append(affected, q)
			}
		}
		if par := tree.Ops[op].Parent; par != apptree.NoParent {
			if q := m.Assign[par]; q != Unassigned && !s.procSeen[q] {
				s.procSeen[q] = true
				affected = append(affected, q)
			}
		}
	}
	ok := true
	for _, q := range affected {
		if m.ProcFeasible(q) != nil {
			ok = false
			break
		}
	}
	for _, q := range affected {
		s.procSeen[q] = false
	}
	s.affected = affected[:0]
	if !ok {
		for i, op := range ops {
			m.Assign[op] = prev[i]
		}
	}
	return ok
}

// MoveAll tries to move every operator of processor from onto processor
// to; on success from is sold and true returned, otherwise nothing
// changes. This is the heuristics' processor-merge primitive, kept here so
// it can gather the operator list into reusable scratch.
func (m *Mapping) MoveAll(from, to int) bool {
	if from == to {
		return false
	}
	s := m.scratchFor()
	ops := s.ops[:0]
	for op, q := range m.Assign {
		if q == from {
			ops = append(ops, op)
		}
	}
	s.ops = ops
	if !m.TryPlace(to, ops...) {
		return false
	}
	m.Sell(from)
	return true
}

// SelectServer records that processor p downloads object k from server l.
func (m *Mapping) SelectServer(p, k, l int) {
	if m.DL[p] == nil {
		m.DL[p] = m.newDL(1)
	}
	m.DL[p][k] = l
}

// PresizeDL pre-sizes processor p's download table for n entries. The
// server-selection step knows every processor's download count up front
// and calls this so the SelectServer writes that follow never rehash.
func (m *Mapping) PresizeDL(p, n int) {
	if m.DL[p] == nil && n > 0 {
		m.DL[p] = m.newDL(n)
	}
}

// NumAlive returns the number of processors not yet sold.
func (m *Mapping) NumAlive() int {
	n := 0
	for p := range m.Procs {
		if m.Procs[p].Alive {
			n++
		}
	}
	return n
}

// ServerLoad returns the total download bandwidth (MB/s) demanded of
// server l across all processors; constraint (3) bounds it by Bs_l.
func (m *Mapping) ServerLoad(l int) float64 {
	load := 0.0
	for p := range m.Procs {
		if !m.Procs[p].Alive {
			continue
		}
		for k, srv := range m.DL[p] {
			if srv == l {
				load += m.Inst.Rate(k)
			}
		}
	}
	return load
}

// ServerLinkLoad returns the download bandwidth on the link from server l
// to processor p; constraint (4) bounds it by bs.
func (m *Mapping) ServerLinkLoad(l, p int) float64 {
	load := 0.0
	for k, srv := range m.DL[p] {
		if srv == l {
			load += m.Inst.Rate(k)
		}
	}
	return load
}

// Validate re-checks the complete mapping from scratch:
//
//   - every operator assigned to an alive processor,
//   - every needed object of every processor has a selected server that
//     actually holds the object (and no spurious downloads),
//   - constraints (1) through (5).
func (m *Mapping) Validate() error {
	in := m.Inst
	for op, p := range m.Assign {
		if p == Unassigned {
			return fmt.Errorf("mapping: operator %d unassigned", op)
		}
		if p < 0 || p >= len(m.Procs) || !m.Procs[p].Alive {
			return fmt.Errorf("mapping: operator %d on invalid processor %d", op, p)
		}
	}
	s := m.scratchFor()
	for p := range m.Procs {
		if !m.Procs[p].Alive {
			continue
		}
		needed := 0
		m.markNeeded(p, s.objSeen)
		for _, seen := range s.objSeen {
			if seen {
				needed++
			}
		}
		var verr error
		if needed != len(m.DL[p]) {
			verr = fmt.Errorf("mapping: processor %d needs %d objects but has %d downloads", p, needed, len(m.DL[p]))
		}
		for k, seen := range s.objSeen {
			if !seen {
				continue
			}
			s.objSeen[k] = false
			if verr != nil {
				continue // keep clearing the marks before reporting
			}
			l, ok := m.DL[p][k]
			switch {
			case !ok:
				verr = fmt.Errorf("mapping: processor %d missing download for object %d", p, k)
			case l == NoServer:
				verr = fmt.Errorf("mapping: processor %d object %d has no server selected", p, k)
			default:
				holds := false
				for _, h := range in.Holders[k] {
					if h == l {
						holds = true
					}
				}
				if !holds {
					verr = fmt.Errorf("mapping: processor %d downloads object %d from server %d which does not hold it", p, k, l)
				}
			}
		}
		if verr != nil {
			return verr
		}
		if err := m.ProcFeasible(p); err != nil {
			return err
		}
	}
	for l := range in.Platform.Servers {
		if load, cap := m.ServerLoad(l), in.Platform.Servers[l].NICMBps; load > cap+eps {
			return fmt.Errorf("mapping: server %d NIC overload %.3f > %.3f MB/s", l, load, cap)
		}
		for p := range m.Procs {
			if !m.Procs[p].Alive {
				continue
			}
			if load := m.ServerLinkLoad(l, p); load > in.Platform.ServerLinkMBps+eps {
				return fmt.Errorf("mapping: server link %d->%d overload %.3f > %.3f MB/s", l, p, load, in.Platform.ServerLinkMBps)
			}
		}
	}
	return nil
}

// Compact returns the mapping's alive processors renumbered 0..n-1
// together with the per-processor operator lists; convenient for
// reporting and for the stream simulator.
func (m *Mapping) Compact() (procs []Proc, ops [][]int, dl []map[int]int) {
	for p := range m.Procs {
		if !m.Procs[p].Alive {
			continue
		}
		procs = append(procs, m.Procs[p])
		ops = append(ops, m.OpsOn(p))
		d := map[int]int{}
		for k, v := range m.DL[p] {
			d[k] = v
		}
		dl = append(dl, d)
	}
	return procs, ops, dl
}
