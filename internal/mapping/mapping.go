package mapping

import (
	"fmt"
	"sort"

	"repro/internal/apptree"
	"repro/internal/instance"
	"repro/internal/platform"
	"repro/internal/xslice"
)

// Unassigned marks an operator without a processor.
const Unassigned = -1

// NoServer marks a download whose source server has not been selected yet.
const NoServer = -1

// Proc is one purchased processor.
type Proc struct {
	Config platform.Config
	Alive  bool // false once sold back
}

// Mapping is a (possibly partial) allocation of the operators of an
// instance onto purchased processors.
type Mapping struct {
	Inst   *instance.Instance
	Procs  []Proc
	Assign []int         // operator -> processor index, or Unassigned; read-only for callers
	DL     []map[int]int // per processor: object type -> chosen server (NoServer until selected)

	// Incrementally-maintained per-processor adjacency (see doc.go):
	// opsOn[p] holds p's operators ascending, objRef[p*NumTypes+k] counts
	// leaf references to object k on p. Place/Unplace update both in
	// O(degree); every load query folds over them in canonical order, so
	// results are bit-identical to a fresh walk of Assign.
	opsOn  [][]int
	objRef []int32

	scr     *scratch      // lazily-allocated reusable buffers, never shared via Clone
	dlFree  []map[int]int // cleared download tables recycled across Reset cycles
	opsFree [][]int       // emptied opsOn lists recycled across Reset cycles

	// Optional transactional move journal (journal.go): while jon is set,
	// every mutation appends its inverse record so Checkpoint/Rollback
	// undo tentative move sequences without cloning. Never shared via
	// Clone; cleared by Reset.
	journal []record
	jon     bool
}

// scratch holds the reusable buffers behind the hot constraint checks.
// Every user clears what it dirtied before returning, so the buffers are
// all-false/empty between calls and methods can nest (TryPlace ->
// ProcFeasible) as long as they use disjoint fields.
type scratch struct {
	objSeen  []bool    // per object type: dedup for Validate's fresh download sums
	opSeen   []bool    // per operator: group membership in StaticNICReq
	procSeen []bool    // per processor: dedup of affected procs in TryPlace
	affected []int     // TryPlace: procs to re-check
	prev     []int     // TryPlace: rollback assignments
	ops      []int     // MoveAll: operator gather buffer
	linkOn   []bool    // ProcFeasible: per processor, link accumulator active
	linkAmt  []float64 // ProcFeasible: accumulated link traffic per processor
	linkTo   []int     // ProcFeasible: processors with accumulated traffic
	refCnt   []int32   // Validate: fresh per-object leaf recount
}

// scratchFor returns the mapping's scratch with the per-type and per-op
// buffers sized (those never change size); per-proc buffers are sized at
// the point of use because Buy grows the processor list.
func (m *Mapping) scratchFor() *scratch {
	if m.scr == nil {
		m.scr = &scratch{}
	}
	s := m.scr
	s.objSeen = xslice.Grow(s.objSeen, m.Inst.NumTypes)
	s.opSeen = xslice.Grow(s.opSeen, m.Inst.Tree.NumOps())
	return s
}

// New returns an empty mapping for the instance with the per-processor
// storage presized from the instance dimensions: a constructive solve
// buys at most about one processor per operator (sold slots included), so
// reserving NumOps slots up front — and prefilling the operator-list
// freelist with small lists carved from one backing array — means the
// first solve on a fresh Mapping grows nothing, closing most of the gap
// to an arena Reset.
func New(in *instance.Instance) *Mapping {
	n := in.Tree.NumOps()
	m := &Mapping{Inst: in, Assign: make([]int, n)}
	for i := range m.Assign {
		m.Assign[i] = Unassigned
	}
	m.Procs = make([]Proc, 0, n)
	m.DL = make([]map[int]int, 0, n)
	m.opsOn = make([][]int, 0, n)
	m.objRef = make([]int32, 0, n*in.NumTypes)
	// Full slice expressions cap each carved list at opsListCap, so a list
	// outgrowing it reallocates instead of clobbering its neighbour.
	backing := make([]int, n*opsListCap)
	m.opsFree = make([][]int, 0, n)
	for i := 0; i < n; i++ {
		m.opsFree = append(m.opsFree, backing[i*opsListCap:i*opsListCap:(i+1)*opsListCap])
	}
	return m
}

// opsListCap is the initial capacity of the per-processor operator lists
// New prefills its freelist with; most processors host only a few
// operators, so this kills the append-growth allocations of the first
// solve without oversizing the arena.
const opsListCap = 4

// Reset rebinds m to in as an empty mapping, recycling every piece of
// storage a previous construction left behind: the processor and
// assignment vectors keep their capacity, the per-processor download
// tables and operator lists are cleared onto internal freelists that Buy
// drains before calling make, and the constraint-check scratch survives
// as-is. A Reset mapping is indistinguishable from New(in) to every
// method; steady-state sweep solves through one arena mapping allocate
// nothing here. Anything previously reachable from m (its old Procs, DL
// tables) is invalidated — callers that handed those out must Clone
// first.
func (m *Mapping) Reset(in *instance.Instance) {
	m.Inst = in
	m.Assign = xslice.Grow(m.Assign, in.Tree.NumOps())
	for i := range m.Assign {
		m.Assign[i] = Unassigned
	}
	for p := range m.DL {
		if d := m.DL[p]; d != nil {
			clear(d)
			m.dlFree = append(m.dlFree, d)
			m.DL[p] = nil
		}
	}
	for p := range m.opsOn {
		if m.opsOn[p] != nil {
			m.opsFree = append(m.opsFree, m.opsOn[p][:0])
			m.opsOn[p] = nil
		}
	}
	m.Procs = m.Procs[:0]
	m.DL = m.DL[:0]
	m.opsOn = m.opsOn[:0]
	m.objRef = m.objRef[:0]
	m.journal = m.journal[:0]
}

// newDL returns an empty download table with room for n entries,
// preferring a recycled one from the Reset freelist.
func (m *Mapping) newDL(n int) map[int]int {
	if k := len(m.dlFree); k > 0 {
		d := m.dlFree[k-1]
		m.dlFree[k-1] = nil
		m.dlFree = m.dlFree[:k-1]
		return d
	}
	return make(map[int]int, n)
}

// Clone returns a deep copy; heuristics use it for tentative moves.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{Inst: m.Inst}
	c.Procs = append([]Proc(nil), m.Procs...)
	c.Assign = append([]int(nil), m.Assign...)
	c.DL = make([]map[int]int, len(m.DL))
	for i, d := range m.DL {
		if d == nil {
			continue
		}
		c.DL[i] = make(map[int]int, len(d))
		for k, v := range d {
			c.DL[i][k] = v
		}
	}
	c.opsOn = make([][]int, len(m.opsOn))
	for p, lst := range m.opsOn {
		if len(lst) > 0 {
			c.opsOn[p] = append([]int(nil), lst...)
		}
	}
	c.objRef = append([]int32(nil), m.objRef...)
	return c
}

// Buy acquires a processor with the given configuration and returns its id.
func (m *Mapping) Buy(cfg platform.Config) int {
	m.Procs = append(m.Procs, Proc{Config: cfg, Alive: true})
	m.DL = append(m.DL, nil)
	var lst []int
	if k := len(m.opsFree); k > 0 {
		lst = m.opsFree[k-1]
		m.opsFree[k-1] = nil
		m.opsFree = m.opsFree[:k-1]
	}
	m.opsOn = append(m.opsOn, lst)
	for k := 0; k < m.Inst.NumTypes; k++ {
		m.objRef = append(m.objRef, 0)
	}
	p := len(m.Procs) - 1
	if m.jon {
		m.journal = append(m.journal, record{kind: recBuy, a: p})
	}
	return p
}

// Sell returns a processor; it must be empty.
func (m *Mapping) Sell(p int) {
	if n := len(m.opsOn[p]); n != 0 {
		panic(fmt.Sprintf("mapping: selling processor %d with %d operators", p, n))
	}
	m.Procs[p].Alive = false
	if m.jon {
		// Keep the download table intact so Rollback resurrects p exactly;
		// dead processors are invisible to every query and Reset recycles
		// the table as usual.
		m.journal = append(m.journal, record{kind: recSell, a: p})
		return
	}
	if d := m.DL[p]; d != nil {
		clear(d)
		m.dlFree = append(m.dlFree, d)
		m.DL[p] = nil
	}
}

// attach adds op (currently unassigned) to processor p's adjacency state.
func (m *Mapping) attach(op, p int) {
	if m.jon {
		m.journal = append(m.journal, record{kind: recAttach, a: op})
	}
	m.Assign[op] = p
	lst := m.opsOn[p]
	i := len(lst)
	lst = append(lst, op)
	for i > 0 && lst[i-1] > op {
		lst[i] = lst[i-1]
		i--
	}
	lst[i] = op
	m.opsOn[p] = lst
	tree := m.Inst.Tree
	base := p * m.Inst.NumTypes
	for _, li := range tree.Ops[op].Leaves {
		m.objRef[base+tree.Leaves[li].Object]++
	}
}

// detach removes op from its processor's adjacency state.
func (m *Mapping) detach(op int) {
	p := m.Assign[op]
	if m.jon {
		m.journal = append(m.journal, record{kind: recDetach, a: op, b: p})
	}
	m.Assign[op] = Unassigned
	lst := m.opsOn[p]
	i := sort.SearchInts(lst, op)
	copy(lst[i:], lst[i+1:])
	m.opsOn[p] = lst[:len(lst)-1]
	tree := m.Inst.Tree
	base := p * m.Inst.NumTypes
	for _, li := range tree.Ops[op].Leaves {
		m.objRef[base+tree.Leaves[li].Object]--
	}
}

// Place assigns operator op to processor p (which must be alive),
// detaching it from any previous processor first.
func (m *Mapping) Place(op, p int) {
	if !m.Procs[p].Alive {
		panic(fmt.Sprintf("mapping: placing on sold processor %d", p))
	}
	if m.Assign[op] == p {
		return
	}
	if m.Assign[op] != Unassigned {
		m.detach(op)
	}
	m.attach(op, p)
}

// Unplace removes operator op from its processor.
func (m *Mapping) Unplace(op int) {
	if m.Assign[op] != Unassigned {
		m.detach(op)
	}
}

// OpProc returns the processor hosting op, or Unassigned.
func (m *Mapping) OpProc(op int) int { return m.Assign[op] }

// OpsOn returns the operators currently assigned to p, ascending.
func (m *Mapping) OpsOn(p int) []int {
	if len(m.opsOn[p]) == 0 {
		return nil
	}
	return append([]int(nil), m.opsOn[p]...)
}

// NumOpsOn returns how many operators are assigned to p without
// materializing the list.
func (m *Mapping) NumOpsOn(p int) int { return len(m.opsOn[p]) }

// AliveProcs returns the ids of processors not yet sold.
func (m *Mapping) AliveProcs() []int {
	var out []int
	for p := range m.Procs {
		if m.Procs[p].Alive {
			out = append(out, p)
		}
	}
	return out
}

// Complete reports whether every operator is assigned.
func (m *Mapping) Complete() bool {
	for _, p := range m.Assign {
		if p == Unassigned {
			return false
		}
	}
	return true
}

// Cost returns the total purchase cost of alive processors (servers are
// fixed and free in the constructive model).
func (m *Mapping) Cost() float64 {
	total := 0.0
	for p := range m.Procs {
		if m.Procs[p].Alive {
			total += m.Inst.Platform.Catalog.Cost(m.Procs[p].Config)
		}
	}
	return total
}

// ComputeLoad returns the work rate rho * sum w_i demanded of p, in
// work-units/s; constraint (1) requires it not to exceed the processor's
// SpeedUnits. O(|ops on p|) over the incremental adjacency, summed in
// ascending operator order (bit-identical to a full re-walk).
func (m *Mapping) ComputeLoad(p int) float64 {
	load := 0.0
	for _, op := range m.opsOn[p] {
		load += m.Inst.Rho * m.Inst.W[op]
	}
	return load
}

// markNeeded sets objSeen for every object type the operators on p must
// download and reports whether any was marked, re-walking every operator
// from scratch — the reference implementation Validate checks the
// incremental objRef counts against. Callers clear the marks.
func (m *Mapping) markNeeded(p int, objSeen []bool) bool {
	tree := m.Inst.Tree
	any := false
	for op, q := range m.Assign {
		if q != p {
			continue
		}
		for _, li := range tree.Ops[op].Leaves {
			objSeen[tree.Leaves[li].Object] = true
			any = true
		}
	}
	return any
}

// NeededObjects returns the de-duplicated sorted object types the
// operators on p must download (union of Leaf(i) over i in a¯(p)).
func (m *Mapping) NeededObjects(p int) []int {
	var out []int
	base := p * m.Inst.NumTypes
	for k := 0; k < m.Inst.NumTypes; k++ {
		if m.objRef[base+k] > 0 {
			out = append(out, k)
		}
	}
	return out
}

// DownloadLoad returns the NIC bandwidth p spends on basic-object
// downloads: sum of rate_k over its needed objects (each object is
// downloaded once per processor regardless of how many local operators
// share it — the paper's DL(u) is a set). The sum runs in ascending
// object order over the refcounts, matching NeededObjects.
func (m *Mapping) DownloadLoad(p int) float64 {
	load := 0.0
	base := p * m.Inst.NumTypes
	for k := 0; k < m.Inst.NumTypes; k++ {
		if m.objRef[base+k] > 0 {
			load += m.Inst.Rate(k)
		}
	}
	return load
}

// CommLoad returns the NIC bandwidth p spends exchanging intermediate
// results with other processors: incoming traffic from operator children
// mapped elsewhere plus outgoing traffic to parents mapped elsewhere.
// Edges to still-Unassigned operators do not count; they are accounted for
// when the neighbour is placed (heuristics that buy small processors guard
// against this with StaticNICReq at purchase time). On a complete mapping
// the value is exact.
func (m *Mapping) CommLoad(p int) float64 {
	load := 0.0
	tree := m.Inst.Tree
	for _, op := range m.opsOn[p] {
		for _, c := range tree.Ops[op].ChildOps {
			if q := m.Assign[c]; q != p && q != Unassigned {
				load += m.Inst.EdgeTraffic(c)
			}
		}
		if par := tree.Ops[op].Parent; par != apptree.NoParent {
			if q := m.Assign[par]; q != p && q != Unassigned {
				load += m.Inst.EdgeTraffic(op)
			}
		}
	}
	return load
}

// StaticNICReq returns the worst-case NIC bandwidth a processor hosting
// exactly the given operator group must provide: the group's de-duplicated
// object download rates plus the traffic of every tree edge crossing the
// group's boundary, as if every neighbour were mapped remotely. Heuristics
// that buy the cheapest viable processor size its NIC with this bound so
// that later placements of neighbours can never overload it; the final
// downgrade step recovers the slack once the real crossing set is known.
func (m *Mapping) StaticNICReq(ops ...int) float64 {
	in := m.Inst
	s := m.scratchFor()
	group, seen := s.opSeen, s.objSeen
	for _, op := range ops {
		group[op] = true
	}
	load := 0.0
	for _, op := range ops {
		// A binary-tree operator has at most two leaves; sum its object
		// types in ascending order (the LeafObjects order) without a map.
		leaves := in.Tree.Ops[op].Leaves
		k0, k1 := -1, -1
		switch len(leaves) {
		case 1:
			k0 = in.Tree.Leaves[leaves[0]].Object
		case 2:
			k0, k1 = in.Tree.Leaves[leaves[0]].Object, in.Tree.Leaves[leaves[1]].Object
			if k1 < k0 {
				k0, k1 = k1, k0
			}
			if k1 == k0 {
				k1 = -1
			}
		}
		if k0 >= 0 && !seen[k0] {
			seen[k0] = true
			load += in.Rate(k0)
		}
		if k1 >= 0 && !seen[k1] {
			seen[k1] = true
			load += in.Rate(k1)
		}
		for _, c := range in.Tree.Ops[op].ChildOps {
			if !group[c] {
				load += in.EdgeTraffic(c)
			}
		}
		if par := in.Tree.Ops[op].Parent; par != apptree.NoParent && !group[par] {
			load += in.EdgeTraffic(op)
		}
	}
	for _, op := range ops {
		group[op] = false
		for _, li := range in.Tree.Ops[op].Leaves {
			seen[in.Tree.Leaves[li].Object] = false
		}
	}
	return load
}

// NICLoad is the total NIC bandwidth demanded of p (downloads plus
// communication); constraint (2) requires it not to exceed Bp.
func (m *Mapping) NICLoad(p int) float64 { return m.DownloadLoad(p) + m.CommLoad(p) }

// LinkTraffic returns the traffic on the bidirectional link between
// processors p and q: the sum of rho*delta over tree edges with one
// endpoint on each; constraint (5) bounds it by bp.
func (m *Mapping) LinkTraffic(p, q int) float64 {
	if p == q {
		return 0
	}
	load := 0.0
	tree := m.Inst.Tree
	for _, op := range m.opsOn[p] {
		for _, c := range tree.Ops[op].ChildOps {
			if m.Assign[c] == q {
				load += m.Inst.EdgeTraffic(c)
			}
		}
		if par := tree.Ops[op].Parent; par != apptree.NoParent && m.Assign[par] == q {
			load += m.Inst.EdgeTraffic(op)
		}
	}
	return load
}

// gatherLinks accumulates the (5)-link traffic of every processor
// adjacent to p into the link scratch and returns the touched processor
// list (unsorted). Per-link sums accumulate in the same edge order
// LinkTraffic uses — operators ascending, child edges then parent edge —
// so each s.linkAmt[q] is bit-identical to LinkTraffic(p, q). The caller
// clears s.linkOn for every returned q and truncates s.linkTo.
func (m *Mapping) gatherLinks(p int, s *scratch) []int {
	s.linkOn = xslice.Grow(s.linkOn, len(m.Procs))
	s.linkAmt = xslice.Grow(s.linkAmt, len(m.Procs))
	touched := s.linkTo[:0]
	tree := m.Inst.Tree
	for _, op := range m.opsOn[p] {
		for _, c := range tree.Ops[op].ChildOps {
			if q := m.Assign[c]; q != p && q != Unassigned {
				if !s.linkOn[q] {
					s.linkOn[q] = true
					s.linkAmt[q] = 0
					touched = append(touched, q)
				}
				s.linkAmt[q] += m.Inst.EdgeTraffic(c)
			}
		}
		if par := tree.Ops[op].Parent; par != apptree.NoParent {
			if q := m.Assign[par]; q != p && q != Unassigned {
				if !s.linkOn[q] {
					s.linkOn[q] = true
					s.linkAmt[q] = 0
					touched = append(touched, q)
				}
				s.linkAmt[q] += m.Inst.EdgeTraffic(op)
			}
		}
	}
	return touched
}

// ProcFeasible checks constraints (1), (2) and every (5)-link touching p
// for the current (possibly partial) assignment. It returns nil or a
// descriptive error. One pass over p's operators accumulates the traffic
// of every touched link, so the cost is O(|ops on p|) rather than the
// historical all-pairs O(P·N) scan; links are checked in ascending
// processor order, so both the verdict and the reported violation are
// identical to the historical implementation's.
func (m *Mapping) ProcFeasible(p int) error {
	cat := m.Inst.Platform.Catalog
	if load, cap := m.ComputeLoad(p), cat.SpeedUnits(m.Procs[p].Config); load > cap+eps {
		return fmt.Errorf("mapping: processor %d compute overload %.3f > %.3f units/s", p, load, cap)
	}
	if load, cap := m.NICLoad(p), cat.BandwidthMBps(m.Procs[p].Config); load > cap+eps {
		return fmt.Errorf("mapping: processor %d NIC overload %.3f > %.3f MB/s", p, load, cap)
	}
	s := m.scratchFor()
	touched := m.gatherLinks(p, s)
	// Ascending q, like the historical scan over all processor pairs.
	for i := 1; i < len(touched); i++ {
		for j := i; j > 0 && touched[j] < touched[j-1]; j-- {
			touched[j], touched[j-1] = touched[j-1], touched[j]
		}
	}
	var err error
	for _, q := range touched {
		if tr := s.linkAmt[q]; err == nil && tr > m.Inst.Platform.ProcLinkMBps+eps {
			err = fmt.Errorf("mapping: link %d-%d overload %.3f > %.3f MB/s", p, q, tr, m.Inst.Platform.ProcLinkMBps)
		}
		s.linkOn[q] = false
	}
	s.linkTo = touched[:0]
	return err
}

// procFeasible is ProcFeasible as a bare verdict: the same checks in the
// same order, without materializing the diagnostic error. TryPlace probes
// candidate placements thousands of times per solve and discards the
// reason, so formatting it dominated the probe cost.
func (m *Mapping) procFeasible(p int) bool {
	cat := m.Inst.Platform.Catalog
	if m.ComputeLoad(p) > cat.SpeedUnits(m.Procs[p].Config)+eps {
		return false
	}
	if m.NICLoad(p) > cat.BandwidthMBps(m.Procs[p].Config)+eps {
		return false
	}
	s := m.scratchFor()
	touched := m.gatherLinks(p, s)
	ok := true
	for _, q := range touched {
		if s.linkAmt[q] > m.Inst.Platform.ProcLinkMBps+eps {
			ok = false
		}
		s.linkOn[q] = false
	}
	s.linkTo = touched[:0]
	return ok
}

// Eps absorbs float rounding in constraint comparisons: a load may exceed
// a capacity by at most Eps before the constraint counts as violated.
// Every capacity comparison in the repository — the five Validate
// constraints here and the admission checks of the server-selection step
// in package heuristics — uses this one constant with this one direction
// (load > cap+Eps fails), so construction and verification can never
// disagree about feasibility at the boundary.
const Eps = 1e-9

// eps is the internal alias predating the export.
const eps = Eps

// TryPlace tentatively places ops on p; if any of constraints (1), (2),
// (5) would be violated for p or for a processor hosting a neighbour of
// ops, the placement is rolled back and false is returned.
func (m *Mapping) TryPlace(p int, ops ...int) bool {
	s := m.scratchFor()
	s.procSeen = xslice.Grow(s.procSeen, len(m.Procs))
	s.prev = xslice.Grow(s.prev, len(ops))
	prev := s.prev
	var mark Mark
	if m.jon {
		// With the journal on, a failed probe rolls back through it — and
		// is truncated away — instead of replaying the prev buffer. The
		// restored state is identical: both paths re-run the same integer
		// attach/detach bookkeeping in opposite orders.
		mark = m.Checkpoint()
	}
	for i, op := range ops {
		prev[i] = m.Assign[op]
		m.Place(op, p)
	}
	affected := append(s.affected[:0], p)
	s.procSeen[p] = true
	tree := m.Inst.Tree
	for _, op := range ops {
		for _, c := range tree.Ops[op].ChildOps {
			if q := m.Assign[c]; q != Unassigned && !s.procSeen[q] {
				s.procSeen[q] = true
				affected = append(affected, q)
			}
		}
		if par := tree.Ops[op].Parent; par != apptree.NoParent {
			if q := m.Assign[par]; q != Unassigned && !s.procSeen[q] {
				s.procSeen[q] = true
				affected = append(affected, q)
			}
		}
	}
	ok := true
	for _, q := range affected {
		if !m.procFeasible(q) {
			ok = false
			break
		}
	}
	for _, q := range affected {
		s.procSeen[q] = false
	}
	s.affected = affected[:0]
	if !ok {
		if m.jon {
			m.Rollback(mark)
			return false
		}
		// Undo through Place/Unplace so the adjacency state rolls back
		// with the assignments (integer bookkeeping round-trips exactly).
		for i, op := range ops {
			if prev[i] == Unassigned {
				m.Unplace(op)
			} else {
				m.Place(op, prev[i])
			}
		}
	}
	return ok
}

// MoveAll tries to move every operator of processor from onto processor
// to; on success from is sold and true returned, otherwise nothing
// changes. This is the heuristics' processor-merge primitive, kept here so
// it can gather the operator list into reusable scratch.
func (m *Mapping) MoveAll(from, to int) bool {
	if from == to {
		return false
	}
	s := m.scratchFor()
	// Snapshot: TryPlace mutates opsOn[from] as it moves the operators.
	ops := append(s.ops[:0], m.opsOn[from]...)
	s.ops = ops
	if !m.TryPlace(to, ops...) {
		return false
	}
	m.Sell(from)
	return true
}

// SelectServer records that processor p downloads object k from server l.
func (m *Mapping) SelectServer(p, k, l int) {
	if m.DL[p] == nil {
		m.DL[p] = m.newDL(1)
		if m.jon {
			m.journal = append(m.journal, record{kind: recDLNew, a: p})
		}
	}
	if m.jon {
		if prev, ok := m.DL[p][k]; ok {
			m.journal = append(m.journal, record{kind: recDLSet, a: p, b: k, c: prev})
		} else {
			m.journal = append(m.journal, record{kind: recDLInsert, a: p, b: k})
		}
	}
	m.DL[p][k] = l
}

// PresizeDL pre-sizes processor p's download table for n entries. The
// server-selection step knows every processor's download count up front
// and calls this so the SelectServer writes that follow never rehash.
func (m *Mapping) PresizeDL(p, n int) {
	if m.DL[p] == nil && n > 0 {
		m.DL[p] = m.newDL(n)
		if m.jon {
			m.journal = append(m.journal, record{kind: recDLNew, a: p})
		}
	}
}

// NumAlive returns the number of processors not yet sold.
func (m *Mapping) NumAlive() int {
	n := 0
	for p := range m.Procs {
		if m.Procs[p].Alive {
			n++
		}
	}
	return n
}

// ServerLoad returns the total download bandwidth (MB/s) demanded of
// server l across all processors; constraint (3) bounds it by Bs_l.
func (m *Mapping) ServerLoad(l int) float64 {
	load := 0.0
	for p := range m.Procs {
		if !m.Procs[p].Alive {
			continue
		}
		for k, srv := range m.DL[p] {
			if srv == l {
				load += m.Inst.Rate(k)
			}
		}
	}
	return load
}

// ServerLinkLoad returns the download bandwidth on the link from server l
// to processor p; constraint (4) bounds it by bs.
func (m *Mapping) ServerLinkLoad(l, p int) float64 {
	load := 0.0
	for k, srv := range m.DL[p] {
		if srv == l {
			load += m.Inst.Rate(k)
		}
	}
	return load
}

// freshComputeLoad is ComputeLoad re-summed from the Assign vector — the
// historical O(N) implementation, kept as Validate's reference.
func (m *Mapping) freshComputeLoad(p int) float64 {
	load := 0.0
	for op, q := range m.Assign {
		if q == p {
			load += m.Inst.Rho * m.Inst.W[op]
		}
	}
	return load
}

// freshCommLoad is CommLoad re-summed from the Assign vector.
func (m *Mapping) freshCommLoad(p int) float64 {
	load := 0.0
	tree := m.Inst.Tree
	for op, onP := range m.Assign {
		if onP != p {
			continue
		}
		for _, c := range tree.Ops[op].ChildOps {
			if q := m.Assign[c]; q != p && q != Unassigned {
				load += m.Inst.EdgeTraffic(c)
			}
		}
		if par := tree.Ops[op].Parent; par != apptree.NoParent {
			if q := m.Assign[par]; q != p && q != Unassigned {
				load += m.Inst.EdgeTraffic(op)
			}
		}
	}
	return load
}

// freshDownloadLoad is DownloadLoad re-summed from the Assign vector.
func (m *Mapping) freshDownloadLoad(p int) float64 {
	s := m.scratchFor()
	if !m.markNeeded(p, s.objSeen) {
		return 0
	}
	load := 0.0
	for k, seen := range s.objSeen {
		if seen {
			load += m.Inst.Rate(k)
			s.objSeen[k] = false
		}
	}
	return load
}

// CheckInvariants re-derives the incremental adjacency state (opsOn,
// objRef) from the Assign vector and re-sums every per-processor load
// with the historical full-walk implementations, failing on any
// divergence. Load agreement is checked exactly (==, stronger than the
// Eps capacity tolerance): the incremental queries fold in the same
// canonical order as the fresh walks, so any difference at all is a
// bookkeeping bug. Validate calls this on every complete mapping; the
// differential property tests drive it after random mutation sequences.
func (m *Mapping) CheckInvariants() error {
	total := 0
	for p := range m.Procs {
		prev := -1
		for _, op := range m.opsOn[p] {
			if op <= prev {
				return fmt.Errorf("mapping: opsOn[%d] not strictly ascending: %v", p, m.opsOn[p])
			}
			prev = op
			if op < 0 || op >= len(m.Assign) || m.Assign[op] != p {
				return fmt.Errorf("mapping: opsOn[%d] lists operator %d assigned to %d", p, op, m.Assign[op])
			}
		}
		total += len(m.opsOn[p])
	}
	assigned := 0
	for _, p := range m.Assign {
		if p != Unassigned {
			assigned++
		}
	}
	if assigned != total {
		return fmt.Errorf("mapping: %d operators assigned but opsOn lists %d", assigned, total)
	}
	K := m.Inst.NumTypes
	tree := m.Inst.Tree
	s := m.scratchFor()
	s.refCnt = xslice.Grow(s.refCnt, K)
	for p := range m.Procs {
		cnt := s.refCnt[:K]
		for k := range cnt {
			cnt[k] = 0
		}
		for _, op := range m.opsOn[p] {
			for _, li := range tree.Ops[op].Leaves {
				cnt[tree.Leaves[li].Object]++
			}
		}
		base := p * K
		for k := 0; k < K; k++ {
			if cnt[k] != m.objRef[base+k] {
				return fmt.Errorf("mapping: processor %d object %d refcount %d, want %d", p, k, m.objRef[base+k], cnt[k])
			}
		}
		if got, want := m.ComputeLoad(p), m.freshComputeLoad(p); got != want {
			return fmt.Errorf("mapping: processor %d cached compute load %v, fresh %v", p, got, want)
		}
		if got, want := m.CommLoad(p), m.freshCommLoad(p); got != want {
			return fmt.Errorf("mapping: processor %d cached comm load %v, fresh %v", p, got, want)
		}
		if got, want := m.DownloadLoad(p), m.freshDownloadLoad(p); got != want {
			return fmt.Errorf("mapping: processor %d cached download load %v, fresh %v", p, got, want)
		}
	}
	return nil
}

// Validate re-checks the complete mapping from scratch:
//
//   - every operator assigned to an alive processor,
//   - the incremental adjacency state matches a fresh re-derivation and
//     every cached load a fresh re-summation (CheckInvariants),
//   - every needed object of every processor has a selected server that
//     actually holds the object (and no spurious downloads),
//   - constraints (1) through (5).
func (m *Mapping) Validate() error {
	in := m.Inst
	for op, p := range m.Assign {
		if p == Unassigned {
			return fmt.Errorf("mapping: operator %d unassigned", op)
		}
		if p < 0 || p >= len(m.Procs) || !m.Procs[p].Alive {
			return fmt.Errorf("mapping: operator %d on invalid processor %d", op, p)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		return err
	}
	s := m.scratchFor()
	for p := range m.Procs {
		if !m.Procs[p].Alive {
			continue
		}
		needed := 0
		m.markNeeded(p, s.objSeen)
		for _, seen := range s.objSeen {
			if seen {
				needed++
			}
		}
		var verr error
		if needed != len(m.DL[p]) {
			verr = fmt.Errorf("mapping: processor %d needs %d objects but has %d downloads", p, needed, len(m.DL[p]))
		}
		for k, seen := range s.objSeen {
			if !seen {
				continue
			}
			s.objSeen[k] = false
			if verr != nil {
				continue // keep clearing the marks before reporting
			}
			l, ok := m.DL[p][k]
			switch {
			case !ok:
				verr = fmt.Errorf("mapping: processor %d missing download for object %d", p, k)
			case l == NoServer:
				verr = fmt.Errorf("mapping: processor %d object %d has no server selected", p, k)
			default:
				holds := false
				for _, h := range in.Holders[k] {
					if h == l {
						holds = true
					}
				}
				if !holds {
					verr = fmt.Errorf("mapping: processor %d downloads object %d from server %d which does not hold it", p, k, l)
				}
			}
		}
		if verr != nil {
			return verr
		}
		if err := m.ProcFeasible(p); err != nil {
			return err
		}
	}
	for l := range in.Platform.Servers {
		if load, cap := m.ServerLoad(l), in.Platform.Servers[l].NICMBps; load > cap+eps {
			return fmt.Errorf("mapping: server %d NIC overload %.3f > %.3f MB/s", l, load, cap)
		}
		for p := range m.Procs {
			if !m.Procs[p].Alive {
				continue
			}
			if load := m.ServerLinkLoad(l, p); load > in.Platform.ServerLinkMBps+eps {
				return fmt.Errorf("mapping: server link %d->%d overload %.3f > %.3f MB/s", l, p, load, in.Platform.ServerLinkMBps)
			}
		}
	}
	return nil
}

// Compact returns the mapping's alive processors renumbered 0..n-1
// together with the per-processor operator lists; convenient for
// reporting and for the stream simulator.
func (m *Mapping) Compact() (procs []Proc, ops [][]int, dl []map[int]int) {
	for p := range m.Procs {
		if !m.Procs[p].Alive {
			continue
		}
		procs = append(procs, m.Procs[p])
		ops = append(ops, m.OpsOn(p))
		d := map[int]int{}
		for k, v := range m.DL[p] {
			d[k] = v
		}
		dl = append(dl, d)
	}
	return procs, ops, dl
}
