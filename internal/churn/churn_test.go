package churn

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/mapping"
	"repro/internal/platform"
)

// tightConfig is the scenario family most tests use: upward-only drift
// on a slow homogeneous catalog, so repairs are frequent, overloads are
// real, and the downgrade pass is exercised as skipped.
func tightConfig() ScenarioConfig {
	slow := platform.DefaultPlatform()
	slow.Catalog = platform.Homogeneous(0, 4)
	cfg := ScenarioConfig{Drift: DriftUp, DriftMax: 1.6, Rho: 2, RhoMax: 8}
	cfg.Base.Platform = slow
	cfg.Base.Alpha = 2
	return cfg
}

// TestScenarioDeterminism: the generator and both engine policies are
// pure functions of (config, seed).
func TestScenarioDeterminism(t *testing.T) {
	cfg := tightConfig()
	cfg.Events = 10
	a := NewScenario(cfg, 42)
	b := NewScenario(cfg, 42)
	if !reflect.DeepEqual(a.Initial, b.Initial) || !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("NewScenario is not deterministic")
	}
	if reflect.DeepEqual(a.Events, NewScenario(cfg, 43).Events) {
		t.Fatal("different seeds produced identical event streams")
	}
	for _, pol := range []Policy{PolicyRepair, PolicyResolve} {
		r1, err1 := RunScenario(context.Background(), a, Options{Policy: pol, Seed: 7})
		r2, err2 := RunScenario(context.Background(), b, Options{Policy: pol, Seed: 7})
		if err1 != nil || err2 != nil {
			t.Fatalf("%v: run failed: %v / %v", pol, err1, err2)
		}
		if r1.FinalCost != r2.FinalCost || r1.Moved != r2.Moved ||
			r1.Repaired != r2.Repaired || r1.Resolved != r2.Resolved || r1.Rejected != r2.Rejected {
			t.Fatalf("%v: two runs diverged: %+v vs %+v", pol, r1, r2)
		}
		for i := range r1.Events {
			e1, e2 := r1.Events[i], r2.Events[i]
			if e1.Outcome != e2.Outcome || e1.Cost != e2.Cost || e1.Moved != e2.Moved || e1.Procs != e2.Procs {
				t.Fatalf("%v: event %d diverged: %+v vs %+v", pol, i, e1, e2)
			}
		}
	}
}

// TestDifferentialRepairVsResolve is the subsystem's property test:
// across seeds and scenario sizes, after every event the repair
// engine's incumbent must re-validate cleanly (Validate and
// CheckInvariants on an independently rebuilt mapping), and repair must
// answer every event the resolve policy can answer — the fallback
// guarantees repair is never less available than a from-scratch solve.
func TestDifferentialRepairVsResolve(t *testing.T) {
	var m mapping.Mapping
	for _, events := range []int{6, 12} {
		for seed := int64(1); seed <= 5; seed++ {
			cfg := tightConfig()
			cfg.Events = events
			sc := NewScenario(cfg, seed)

			rep := NewEngine(Options{Policy: PolicyRepair, Seed: seed})
			res := NewEngine(Options{Policy: PolicyResolve, Seed: seed})
			if err := rep.Start(sc); err != nil {
				if errors.Is(err, heuristics.ErrInfeasible) {
					continue // this seed's initial workload has no mapping at all
				}
				t.Fatalf("events=%d seed=%d: repair Start: %v", events, seed, err)
			}
			if err := res.Start(sc); err != nil {
				t.Fatalf("events=%d seed=%d: resolve Start: %v", events, seed, err)
			}
			if rep.Cost() != res.Cost() {
				t.Fatalf("events=%d seed=%d: policies start from different incumbents: %v vs %v",
					events, seed, rep.Cost(), res.Cost())
			}
			for i, ev := range sc.Events {
				er, err := rep.Step(context.Background(), ev)
				if err != nil {
					t.Fatalf("events=%d seed=%d ev=%d: repair Step: %v", events, seed, i, err)
				}
				rr, err := res.Step(context.Background(), ev)
				if err != nil {
					t.Fatalf("events=%d seed=%d ev=%d: resolve Step: %v", events, seed, i, err)
				}
				if rr.Outcome != Rejected && er.Outcome == Rejected {
					t.Fatalf("events=%d seed=%d ev=%d (%v): resolve feasible but repair rejected: %v",
						events, seed, i, ev.Kind, er.Err)
				}
				if er.Moved < 0 || er.Moved > er.Ops {
					t.Fatalf("events=%d seed=%d ev=%d: moved=%d outside [0, ops=%d]",
						events, seed, i, er.Moved, er.Ops)
				}
				// The incumbent must re-validate from scratch after
				// every event, answered or rejected.
				if err := rep.IncumbentInto(&m); err != nil {
					t.Fatalf("events=%d seed=%d ev=%d: rebuild incumbent: %v", events, seed, i, err)
				}
				if err := m.Validate(); err != nil {
					t.Fatalf("events=%d seed=%d ev=%d: incumbent invalid after %v/%v: %v",
						events, seed, i, ev.Kind, er.Outcome, err)
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("events=%d seed=%d ev=%d: incumbent invariants: %v", events, seed, i, err)
				}
				if math.Abs(m.Cost()-er.Cost) > mapping.Eps {
					t.Fatalf("events=%d seed=%d ev=%d: rebuilt incumbent cost %v != reported %v",
						events, seed, i, m.Cost(), er.Cost)
				}
			}
		}
	}
}

// TestRepairFallbackFires pins that the re-solve fallback is live code:
// on a tight upward-drifting corpus, at least one event must be
// answered by each path (journaled repair and the constructive
// fallback).
func TestRepairFallbackFires(t *testing.T) {
	repaired, resolved := 0, 0
	for seed := int64(1); seed <= 12; seed++ {
		cfg := tightConfig()
		cfg.Events = 10
		cfg.DriftMax = 2.5
		cfg.RhoMax = 12
		sc := NewScenario(cfg, seed)
		res, err := RunScenario(context.Background(), sc, Options{Policy: PolicyRepair, Seed: seed})
		if err != nil {
			if errors.Is(err, heuristics.ErrInfeasible) {
				continue
			}
			t.Fatalf("seed=%d: %v", seed, err)
		}
		repaired += res.Repaired
		resolved += res.Resolved
	}
	if repaired == 0 {
		t.Error("no event was answered by local repair across the corpus")
	}
	if resolved == 0 {
		t.Error("the re-solve fallback never fired across the corpus; tighten the scenario")
	}
}

// TestRejectedEventLeavesIncumbent: an inapplicable or infeasible event
// is rejected with the pre-event incumbent untouched, and the engine
// keeps answering later events.
func TestRejectedEventLeavesIncumbent(t *testing.T) {
	cfg := tightConfig()
	sc := NewScenario(cfg, 3)
	e := NewEngine(Options{Policy: PolicyRepair, Seed: 3})
	if err := e.Start(sc); err != nil {
		t.Fatal(err)
	}
	cost, procs, apps := e.Cost(), e.Procs(), e.Apps()
	bad := []Event{
		{Kind: Depart, Slot: 99},
		{Kind: Drift, Slot: 0, Factor: -1},
		{Kind: Arrive, NumOps: 0},
		{Kind: Drift, Slot: 0, Factor: 1e9}, // overloads every catalog entry
	}
	for i, ev := range bad {
		er, err := e.Step(context.Background(), ev)
		if err != nil {
			t.Fatalf("bad event %d: unexpected hard error: %v", i, err)
		}
		if er.Outcome != Rejected || er.Err == nil {
			t.Fatalf("bad event %d: want rejection with reason, got %v (%v)", i, er.Outcome, er.Err)
		}
		if e.Cost() != cost || e.Procs() != procs || e.Apps() != apps {
			t.Fatalf("bad event %d: rejection mutated the incumbent", i)
		}
	}
	er, err := e.Step(context.Background(), Event{Kind: Drift, Slot: 0, Factor: 1.1})
	if err != nil || er.Outcome == Rejected {
		t.Fatalf("engine did not recover after rejections: %v %v", er.Outcome, err)
	}
}

// TestStepContextCancel: a cancelled context rejects the event, leaves
// the pre-event incumbent untouched, and surfaces the context error.
func TestStepContextCancel(t *testing.T) {
	cfg := tightConfig()
	sc := NewScenario(cfg, 5)
	e := NewEngine(Options{Policy: PolicyRepair, Seed: 5})
	if err := e.Start(sc); err != nil {
		t.Fatal(err)
	}
	cost, procs := e.Cost(), e.Procs()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	er, err := e.Step(ctx, sc.Events[0])
	if err == nil || er.Outcome != Rejected {
		t.Fatalf("cancelled Step: want rejection with error, got %v (%v)", er.Outcome, err)
	}
	if e.Cost() != cost || e.Procs() != procs {
		t.Fatal("cancelled Step mutated the incumbent")
	}
	// The same engine answers the same event once the pressure is off.
	er, err = e.Step(context.Background(), sc.Events[0])
	if err != nil || er.Outcome == Rejected {
		t.Fatalf("Step after cancellation: %v (%v)", er.Outcome, err)
	}
	// Run with a pre-cancelled context returns the partial trace and
	// the context error.
	res, err := RunScenario(ctx, sc, Options{Policy: PolicyRepair, Seed: 5})
	if err == nil {
		t.Fatal("RunScenario ignored a cancelled context")
	}
	if len(res.Events) != 1 || res.Rejected != 1 {
		t.Fatalf("cancelled RunScenario: want exactly one rejected event in the trace, got %+v", res)
	}
}

// TestRepairMovesFewerOps: over the tight corpus, journaled repair must
// migrate strictly fewer surviving operators in total than answering
// the same streams by from-scratch re-solves — the headline claim of
// the churn figure.
func TestRepairMovesFewerOps(t *testing.T) {
	movedRep, movedRes := 0, 0
	for seed := int64(1); seed <= 6; seed++ {
		cfg := tightConfig()
		cfg.Events = 10
		sc := NewScenario(cfg, seed)
		rep, err := RunScenario(context.Background(), sc, Options{Policy: PolicyRepair, Seed: seed})
		if err != nil {
			if errors.Is(err, heuristics.ErrInfeasible) {
				continue
			}
			t.Fatalf("seed=%d repair: %v", seed, err)
		}
		res, err := RunScenario(context.Background(), sc, Options{Policy: PolicyResolve, Seed: seed})
		if err != nil {
			t.Fatalf("seed=%d resolve: %v", seed, err)
		}
		movedRep += rep.Moved
		movedRes += res.Moved
	}
	if movedRep >= movedRes {
		t.Errorf("repair moved %d operators, full re-solve moved %d; repair must move strictly fewer",
			movedRep, movedRes)
	}
}
