package churn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"time"

	"repro/internal/apptree"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/multiapp"
	"repro/internal/platform"
	"repro/internal/refine"
	"repro/internal/rng"
)

// Policy selects how the engine answers events.
type Policy int

const (
	// PolicyRepair answers events by journaled local repair: transplant
	// the incumbent onto the post-event instance, unplace only what the
	// event invalidated, re-place greedily through the move journal and
	// refine within the step/time budget. Falls back to PolicyResolve
	// when repair finds no feasible completion.
	PolicyRepair Policy = iota
	// PolicyResolve answers every event with a from-scratch six-way
	// constructive portfolio solve (the paper's static method re-run).
	PolicyResolve
)

// String names the policy for figure series and serve responses.
func (p Policy) String() string {
	if p == PolicyResolve {
		return "resolve"
	}
	return "repair"
}

// Options tunes an Engine. The zero value is the repair policy with the
// default per-event refinement budget.
type Options struct {
	Policy Policy
	// Seed drives every random choice (refinement proposals, portfolio
	// sub-seeds). Same seed, same scenario, same trajectory.
	Seed int64
	// SAIters bounds the per-event refinement annealing steps; <= 0
	// means 400 + 20 per merged-tree operator.
	SAIters int
	// LNSRounds bounds the per-event destroy/repair rounds; <= 0 means 3.
	LNSRounds int
	// Budget additionally bounds each event's refinement pass by wall
	// clock (anytime: the best incumbent at the deadline wins; see
	// refine.Options.Budget). 0 means no deadline. A wall-clock budget
	// trades bit-exact reproducibility for latency control — sweeps
	// that must merge byte-identically leave it 0 and bound steps
	// instead.
	Budget time.Duration
}

// Outcome reports how one event was answered.
type Outcome int

const (
	// Repaired: journaled local repair produced the installed mapping.
	Repaired Outcome = iota
	// Resolved: a full constructive re-solve produced the installed
	// mapping (always under PolicyResolve; as the infeasibility
	// fallback under PolicyRepair).
	Resolved
	// Rejected: no feasible mapping exists for the post-event workload,
	// or the context was cancelled mid-event. The pre-event incumbent
	// stands and the event was not applied.
	Rejected
)

// String names the outcome for logs and serve responses.
func (o Outcome) String() string {
	switch o {
	case Repaired:
		return "repaired"
	case Resolved:
		return "resolved"
	case Rejected:
		return "rejected"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// EventResult describes the engine's answer to one event.
type EventResult struct {
	Event   Event
	Outcome Outcome
	Cost    float64       // incumbent platform cost after the event
	Procs   int           // processors purchased
	Moved   int           // surviving operators migrated by this answer
	Ops     int           // live application operators (combiners excluded)
	Apps    int           // live applications
	Wall    time.Duration // time spent answering
	Err     error         // rejection reason when Outcome == Rejected
}

// Result aggregates one scenario run. Engine.Run returns engine-owned
// storage, valid until the next Run or Start on the same engine.
type Result struct {
	Events      []EventResult
	InitialCost float64
	FinalCost   float64
	FinalProcs  int
	Moved       int // total surviving-operator migrations
	Repaired    int
	Resolved    int
	Rejected    int
	Wall        time.Duration
}

// errRejected prefixes every infeasibility rejection reason carried in
// EventResult.Err.
var errRejected = errors.New("churn: event rejected")

// snapshot is the engine's incumbent allocation, decoupled from any
// Mapping storage: processor configurations in dense id order plus, per
// live application, each operator's dense processor. It is exactly what
// transplanting the incumbent onto the next combined instance needs,
// and what the operators-moved metric diffs.
type snapshot struct {
	cfgs  []platform.Config // dense processor id -> configuration
	ops   []int             // slot-major operator assignments (dense ids)
	off   []int             // len(apps)+1 prefix offsets into ops
	comb  []int             // virtual combiner assignments, len(apps)-1
	remap []int             // scratch: mapping proc id -> dense id
	cost  float64
	procs int
}

// appState is one live application; the engine owns its tree arena.
type appState struct {
	tree *apptree.Tree
	b    *apptree.Builder // recycled on departure
	rho  float64
}

// movePair is one candidate (new processor, old processor) identity in
// the operators-moved matching.
type movePair struct{ np, op, cnt int }

// Engine holds the live incumbent allocation of a churning workload and
// answers events under one Options policy. All per-event state — the
// combined instance, the working mapping, both snapshots, every scratch
// buffer — lives on reusable arenas, so steady-state stepping allocates
// almost nothing. An Engine is not safe for concurrent use.
type Engine struct {
	opts Options
	w    multiapp.Workload

	apps  []appState
	freeB []*apptree.Builder // recycled tree builders

	combiner multiapp.Builder
	sc       heuristics.SolveContext
	all      []heuristics.Heuristic
	work     mapping.Mapping
	improveR *rand.Rand // refinement stream, reseeded per event
	treeR    *rand.Rand // arrival-tree stream, reseeded per arrival

	snap, next snapshot
	started    bool
	nev        int   // events answered since Start (seed derivation)
	impSeed    int64 // per-event refinement seed base
	resSeed    int64 // per-event portfolio seed base

	// Per-event scratch.
	mapps  []multiapp.App // candidate application list
	opOff  []int          // per-slot operator offsets in the merged tree
	opsBuf []int          // unplace gather
	oldAs  []int          // surviving-op assignments, incumbent side
	newAs  []int          // surviving-op assignments, answer side
	counts []int          // movedOps overlap matrix, flat new-major
	match  []int          // new dense proc -> matched old dense proc
	claim  []int          // old dense proc -> claiming new dense proc
	pairs  []movePair
	res    Result
}

// NewEngine returns an engine with a warmed, reusable solve arena; call
// Start (or Run, which starts for you) before Step.
func NewEngine(opts Options) *Engine {
	e := &Engine{opts: opts, all: heuristics.All()}
	e.sc.SetReuse(true)
	return e
}

// RunScenario runs the scenario on a fresh engine — the one-shot
// convenience behind the root streamalloc API. The result is owned by
// the discarded engine, so the caller may keep it.
func RunScenario(ctx context.Context, sc *Scenario, opts Options) (*Result, error) {
	return NewEngine(opts).Run(ctx, sc)
}

// Policy returns the engine's configured answer policy.
func (e *Engine) Policy() Policy { return e.opts.Policy }

// Cost returns the incumbent platform cost.
func (e *Engine) Cost() float64 { return e.snap.cost }

// Procs returns the incumbent processor count.
func (e *Engine) Procs() int { return e.snap.procs }

// Apps returns the number of live applications.
func (e *Engine) Apps() int { return len(e.apps) }

// Ops returns the number of live application operators (virtual
// combiners excluded).
func (e *Engine) Ops() int {
	n := 0
	for i := range e.apps {
		n += len(e.apps[i].tree.Ops)
	}
	return n
}

// IncumbentInto rebuilds the incumbent allocation on m: the live
// applications are re-combined, the incumbent's processors re-bought
// and every operator placed where the incumbent has it, then server
// selection is re-run. The mapping's instance lives on the engine's
// combiner arena, valid until the next Step, Run or IncumbentInto.
// Tests and the serve layer use this to inspect — and independently
// re-validate — the incumbent between events.
func (e *Engine) IncumbentInto(m *mapping.Mapping) error {
	if !e.started {
		return fmt.Errorf("churn: IncumbentInto before Start")
	}
	e.mapps = e.mapps[:0]
	for i := range e.apps {
		e.mapps = append(e.mapps, multiapp.App{Tree: e.apps[i].tree, Rho: e.apps[i].rho})
	}
	in, err := e.combiner.Combine(e.mapps, e.w)
	if err != nil {
		return err
	}
	e.fillOffsets(len(e.mapps))
	m.SetJournal(false)
	m.Reset(in)
	for _, cfg := range e.snap.cfgs {
		m.Buy(cfg)
	}
	for j := 0; j < len(e.snap.off)-1; j++ {
		base, so := e.opOff[j], e.snap.off[j]
		for i := 0; i < e.snap.off[j+1]-so; i++ {
			m.Place(base+i, e.snap.ops[so+i])
		}
	}
	combOff := e.opOff[len(e.mapps)]
	for ci, p := range e.snap.comb {
		m.Place(combOff+ci, p)
	}
	if err := heuristics.SelectServersThreeLoop(m); err != nil {
		return fmt.Errorf("churn: incumbent admits no server selection: %w", err)
	}
	return nil
}

// Start installs the scenario's initial applications and solves them
// from scratch — both policies share this entry solve, so policy
// comparisons start from identical incumbents. It resets any prior run.
func (e *Engine) Start(sc *Scenario) error {
	e.w = sc.Workload
	for i := range e.apps {
		if e.apps[i].b != nil {
			e.freeB = append(e.freeB, e.apps[i].b)
		}
	}
	e.apps = e.apps[:0]
	e.nev = 0
	e.started = false
	e.impSeed = rng.SeedFor(e.opts.Seed, "churn:improve")
	e.resSeed = rng.SeedFor(e.opts.Seed, "churn:resolve")
	for _, spec := range sc.Initial {
		e.apps = append(e.apps, e.buildApp(spec))
	}
	e.mapps = e.mapps[:0]
	for i := range e.apps {
		e.mapps = append(e.mapps, multiapp.App{Tree: e.apps[i].tree, Rho: e.apps[i].rho})
	}
	in, err := e.combiner.Combine(e.mapps, e.w)
	if err != nil {
		return fmt.Errorf("churn: initial workload: %v", err)
	}
	e.fillOffsets(len(e.mapps))
	if !e.resolveInto(in, rng.SeedFor(e.opts.Seed, "churn:init")) {
		return fmt.Errorf("churn: initial workload infeasible: %w", heuristics.ErrInfeasible)
	}
	e.snap, e.next = e.next, e.snap
	e.started = true
	return nil
}

// Run starts the engine on the scenario and answers its whole event
// stream. The returned Result is engine-owned and valid until the next
// Run or Start. A context cancellation aborts between events (and rolls
// back within one); the partial result is returned with the error.
func (e *Engine) Run(ctx context.Context, sc *Scenario) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.Start(sc); err != nil {
		return nil, err
	}
	res := &e.res
	*res = Result{Events: e.res.Events[:0]}
	res.InitialCost = e.snap.cost
	t0 := time.Now()
	var firstErr error
	for _, ev := range sc.Events {
		er, err := e.Step(ctx, ev)
		res.Events = append(res.Events, er)
		switch er.Outcome {
		case Repaired:
			res.Repaired++
		case Resolved:
			res.Resolved++
		default:
			res.Rejected++
		}
		res.Moved += er.Moved
		if err != nil {
			firstErr = err
			break
		}
	}
	res.FinalCost, res.FinalProcs = e.snap.cost, e.snap.procs
	res.Wall = time.Since(t0)
	return res, firstErr
}

// Step answers one event. On success the incumbent advances to a
// validated mapping of the post-event workload; on rejection —
// infeasible workload or context cancellation — the pre-event incumbent
// is untouched and the event is not applied. The returned error is
// non-nil only for engine misuse and context cancellation; an
// infeasible event is a Rejected result with a nil error (Err carries
// the reason), so callers can keep streaming events past it.
func (e *Engine) Step(ctx context.Context, ev Event) (EventResult, error) {
	start := time.Now()
	er := EventResult{
		Event: ev, Outcome: Rejected,
		Cost: e.snap.cost, Procs: e.snap.procs,
		Apps: len(e.apps), Ops: e.Ops(),
	}
	if !e.started {
		er.Err = fmt.Errorf("churn: Step before Start")
		return er, er.Err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		er.Err = err
		er.Wall = time.Since(start)
		return er, err
	}

	// Validate the event and stage the arrival's tree.
	var arr appState
	reject := func(reason error) (EventResult, error) {
		if arr.b != nil {
			e.freeB = append(e.freeB, arr.b)
		}
		er.Err = reason
		er.Wall = time.Since(start)
		return er, nil
	}
	switch ev.Kind {
	case Arrive:
		if ev.NumOps < 1 {
			return reject(fmt.Errorf("%w: arrival needs NumOps >= 1, got %d", errRejected, ev.NumOps))
		}
		arr = e.buildApp(AppSpec{NumOps: ev.NumOps, TreeSeed: ev.TreeSeed, Rho: ev.Rho})
	case Depart:
		if ev.Slot < 0 || ev.Slot >= len(e.apps) {
			return reject(fmt.Errorf("%w: departure slot %d of %d live applications", errRejected, ev.Slot, len(e.apps)))
		}
		if len(e.apps) == 1 {
			return reject(fmt.Errorf("%w: cannot depart the last application", errRejected))
		}
	case Drift:
		if ev.Slot < 0 || ev.Slot >= len(e.apps) {
			return reject(fmt.Errorf("%w: drift slot %d of %d live applications", errRejected, ev.Slot, len(e.apps)))
		}
		if !(ev.Factor > 0) {
			return reject(fmt.Errorf("%w: drift factor %v must be positive", errRejected, ev.Factor))
		}
	default:
		return reject(fmt.Errorf("%w: unknown event kind %d", errRejected, int(ev.Kind)))
	}

	// Stage the post-event application list and combine it.
	e.mapps = e.mapps[:0]
	for i := range e.apps {
		if ev.Kind == Depart && i == ev.Slot {
			continue
		}
		rho := e.apps[i].rho
		if ev.Kind == Drift && i == ev.Slot {
			rho *= ev.Factor
		}
		e.mapps = append(e.mapps, multiapp.App{Tree: e.apps[i].tree, Rho: rho})
	}
	if ev.Kind == Arrive {
		e.mapps = append(e.mapps, multiapp.App{Tree: arr.tree, Rho: arr.rho})
	}
	in, err := e.combiner.Combine(e.mapps, e.w)
	if err != nil {
		return reject(fmt.Errorf("%w: %v", errRejected, err))
	}
	e.fillOffsets(len(e.mapps))

	outcome := Rejected
	if e.opts.Policy == PolicyResolve {
		if e.resolveInto(in, e.eventSeed(e.resSeed)) {
			outcome = Resolved
		}
	} else {
		outcome, err = e.repair(ctx, in, ev)
		if err != nil {
			if arr.b != nil {
				e.freeB = append(e.freeB, arr.b)
			}
			er.Err = err
			er.Wall = time.Since(start)
			return er, err
		}
	}
	if outcome == Rejected {
		return reject(fmt.Errorf("%w: no feasible mapping for the post-event workload: %w", errRejected, heuristics.ErrInfeasible))
	}

	er.Moved = e.movedFrom(ev)
	e.commit(ev, arr)
	er.Outcome = outcome
	er.Cost, er.Procs = e.snap.cost, e.snap.procs
	er.Apps, er.Ops = len(e.apps), e.Ops()
	er.Wall = time.Since(start)
	e.nev++
	return er, nil
}

// repair is the journaled local-repair state machine: transplant the
// incumbent, unplace what the event invalidated, checkpoint, greedily
// re-place every unassigned operator (rolling back to the checkpoint if
// some operator fits nowhere), refine the repaired placement within the
// budget, and finish with server selection, downgrade and validation.
// Any dead end falls back to the constructive portfolio; cancellation
// aborts with the incumbent untouched.
func (e *Engine) repair(ctx context.Context, in *instance.Instance, ev Event) (Outcome, error) {
	m := &e.work
	baselineComplete := e.transplant(in, ev)

	// Unplace everything the event invalidated: on drift, the operators
	// of every processor the rescaled rates overload. (Arrivals leave
	// the new application unassigned; departures leave the re-chained
	// combiners unassigned; neither overloads a surviving processor.)
	feasible := true
	if ev.Kind == Drift {
		for p := range m.Procs {
			if !m.Procs[p].Alive || m.ProcFeasible(p) == nil {
				continue
			}
			feasible = false
			e.opsBuf = append(e.opsBuf[:0], m.OpsOn(p)...)
			for _, op := range e.opsBuf {
				m.Unplace(op)
			}
		}
	}
	for p := range m.Procs {
		if m.Procs[p].Alive && m.NumOpsOn(p) == 0 {
			m.Sell(p)
		}
	}
	// On a drift whose incumbent stayed fully feasible, the transplant
	// IS the pre-event incumbent (same configurations, same cost): the
	// never-regress fallback below compares against it.
	baselineValid := ev.Kind == Drift && baselineComplete && feasible

	// Journaled greedy repair of every unassigned operator.
	m.SetJournal(true)
	mark := m.Checkpoint()
	if !refine.PlaceUnassigned(m) {
		m.Rollback(mark)
		m.SetJournal(false)
		return e.fallback(in)
	}
	m.CommitJournal()
	m.SetJournal(false)
	if err := ctx.Err(); err != nil {
		return Rejected, err
	}

	// Budgeted refinement: anytime, never worse than the repaired seed.
	iters, rounds := e.opts.SAIters, e.opts.LNSRounds
	if iters <= 0 {
		iters = 400 + 20*in.Tree.NumOps()
	}
	if rounds <= 0 {
		rounds = 3
	}
	seed := e.eventSeed(e.impSeed)
	if e.improveR == nil {
		e.improveR = rng.New(seed)
	} else {
		e.improveR.Seed(seed)
	}
	if err := refine.Improve(ctx, m, e.improveR, refine.Options{
		SAIters: iters, LNSRounds: rounds, Budget: e.opts.Budget,
	}); err != nil {
		if errors.Is(err, heuristics.ErrInfeasible) {
			// The repaired placement admits no server selection.
			return e.fallback(in)
		}
		return Rejected, err // context cancellation
	}

	if !e.finish(m, in) {
		return e.fallback(in)
	}
	// Never regress: if repair somehow costs more than a still-valid
	// incumbent, reinstall the incumbent (Improve's never-worse
	// invariant makes this unreachable; the rollback keeps the
	// guarantee structural rather than inherited).
	if baselineValid && m.Cost() > e.snap.cost+mapping.Eps {
		e.transplant(in, ev)
		if !e.finish(m, in) {
			return e.fallback(in)
		}
	}
	e.snapInto(&e.next, m)
	// Portfolio guard: when repair cannot avoid raising the platform
	// cost, check whether a fresh constructive solve packs the grown
	// workload onto a cheaper platform before committing to the more
	// expensive one. Repair wins ties, so migrations stay minimal; the
	// guard runs only on cost-increasing events, so steady-state churn
	// keeps repair's latency.
	if m.Cost() > e.snap.cost+mapping.Eps &&
		e.resolveBelow(in, e.eventSeed(e.resSeed), m.Cost()-mapping.Eps) {
		return Resolved, nil
	}
	return Repaired, nil
}

// fallback answers the event with the constructive portfolio.
func (e *Engine) fallback(in *instance.Instance) (Outcome, error) {
	if e.resolveInto(in, e.eventSeed(e.resSeed)) {
		return Resolved, nil
	}
	return Rejected, nil
}

// transplant rebuilds the incumbent on the working mapping against the
// post-event instance: the incumbent's processors are re-bought in
// dense id order and every surviving application's operators are placed
// where the incumbent had them. Virtual combiners are transplanted only
// on drift (structural events re-chain them, so they are always
// re-placed). Reports whether the transplant covered every operator.
func (e *Engine) transplant(in *instance.Instance, ev Event) bool {
	m := &e.work
	m.SetJournal(false)
	m.Reset(in)
	for _, cfg := range e.snap.cfgs {
		m.Buy(cfg)
	}
	j := 0
	for o := 0; o < len(e.snap.off)-1; o++ {
		if ev.Kind == Depart && o == ev.Slot {
			continue
		}
		base, so := e.opOff[j], e.snap.off[o]
		n := e.snap.off[o+1] - so
		for i := 0; i < n; i++ {
			m.Place(base+i, e.snap.ops[so+i])
		}
		j++
	}
	if ev.Kind == Drift {
		combOff := e.opOff[len(e.mapps)]
		for ci, p := range e.snap.comb {
			m.Place(combOff+ci, p)
		}
	}
	return m.Complete()
}

// finish runs the solve pipeline's tail on a repaired placement: server
// selection, configuration downgrade on heterogeneous catalogs, full
// validation.
func (e *Engine) finish(m *mapping.Mapping, in *instance.Instance) bool {
	if heuristics.SelectServersThreeLoop(m) != nil {
		return false
	}
	if !in.Platform.Catalog.Homogeneous() {
		if heuristics.Downgrade(m) != nil {
			return false
		}
	}
	return m.Validate() == nil
}

// resolveInto runs the six-way constructive portfolio on the combined
// instance and snapshots the cheapest feasible result into e.next.
// Reports false when every heuristic fails.
func (e *Engine) resolveInto(in *instance.Instance, seed int64) bool {
	return e.resolveBelow(in, seed, math.Inf(1))
}

// resolveBelow is resolveInto with a bar: only results strictly cheaper
// than bar are snapshotted into e.next (the portfolio guard's "beat the
// repaired answer or leave it installed" comparison). Reports whether
// any heuristic went below the bar.
func (e *Engine) resolveBelow(in *instance.Instance, seed int64, bar float64) bool {
	found := false
	for _, h := range e.all {
		res, err := e.sc.Solve(in, h, heuristics.Options{Seed: seed})
		if err != nil {
			continue
		}
		if res.Cost < bar-mapping.Eps {
			bar = res.Cost
			found = true
			e.snapInto(&e.next, res.Mapping)
		}
	}
	return found
}

// snapInto captures m as a dense snapshot against the staged
// application list (e.mapps/e.opOff).
func (e *Engine) snapInto(dst *snapshot, m *mapping.Mapping) {
	dst.remap = intsFill(dst.remap, len(m.Procs), -1)
	dst.cfgs = dst.cfgs[:0]
	k := 0
	for p := range m.Procs {
		if m.Procs[p].Alive {
			dst.remap[p] = k
			dst.cfgs = append(dst.cfgs, m.Procs[p].Config)
			k++
		}
	}
	dst.procs = k
	dst.cost = m.Cost()
	nApps := len(e.mapps)
	dst.ops = dst.ops[:0]
	dst.off = dst.off[:0]
	for j := 0; j < nApps; j++ {
		dst.off = append(dst.off, len(dst.ops))
		for op := e.opOff[j]; op < e.opOff[j+1]; op++ {
			dst.ops = append(dst.ops, dst.remap[m.OpProc(op)])
		}
	}
	dst.off = append(dst.off, len(dst.ops))
	dst.comb = dst.comb[:0]
	for op := e.opOff[nApps]; op < m.Inst.Tree.NumOps(); op++ {
		dst.comb = append(dst.comb, dst.remap[m.OpProc(op)])
	}
}

// commit installs the answered event: the application list advances and
// the staged snapshot becomes the incumbent.
func (e *Engine) commit(ev Event, arr appState) {
	switch ev.Kind {
	case Arrive:
		e.apps = append(e.apps, arr)
	case Depart:
		if d := e.apps[ev.Slot]; d.b != nil {
			e.freeB = append(e.freeB, d.b)
		}
		e.apps = append(e.apps[:ev.Slot], e.apps[ev.Slot+1:]...)
	case Drift:
		e.apps[ev.Slot].rho *= ev.Factor
	}
	e.snap, e.next = e.next, e.snap
}

// movedFrom counts the surviving operators the staged answer migrates
// relative to the incumbent, under the most charitable matching of new
// processors onto old ones (see movedOps). Arriving operators are new
// placements, not migrations; departing operators are gone, not
// migrated; virtual combiners are bookkeeping, not workload.
func (e *Engine) movedFrom(ev Event) int {
	e.oldAs, e.newAs = e.oldAs[:0], e.newAs[:0]
	j := 0
	for o := 0; o < len(e.snap.off)-1; o++ {
		if ev.Kind == Depart && o == ev.Slot {
			continue
		}
		so, no := e.snap.off[o], e.next.off[j]
		n := e.snap.off[o+1] - so
		for i := 0; i < n; i++ {
			e.oldAs = append(e.oldAs, e.snap.ops[so+i])
			e.newAs = append(e.newAs, e.next.ops[no+i])
		}
		j++
	}
	return e.movedOps(e.snap.procs, e.next.procs)
}

// movedOps counts the i with oldAs[i] != newAs[i] after relabeling: new
// processors are matched onto old ones greedily by descending placement
// overlap (ties to the smaller old, then new, id), and an operator
// counts as moved when its new processor's matched identity differs
// from its old processor. A full re-solve renumbers processors
// arbitrarily, so raw ids cannot be compared; the matching gives every
// policy the most charitable relabeling before counting migrations.
func (e *Engine) movedOps(oldK, newK int) int {
	if len(e.oldAs) == 0 {
		return 0
	}
	e.counts = intsFill(e.counts, newK*oldK, 0)
	for i := range e.oldAs {
		e.counts[e.newAs[i]*oldK+e.oldAs[i]]++
	}
	e.pairs = e.pairs[:0]
	for np := 0; np < newK; np++ {
		for op := 0; op < oldK; op++ {
			if c := e.counts[np*oldK+op]; c > 0 {
				e.pairs = append(e.pairs, movePair{np: np, op: op, cnt: c})
			}
		}
	}
	slices.SortFunc(e.pairs, func(a, b movePair) int {
		if a.cnt != b.cnt {
			return b.cnt - a.cnt
		}
		if a.op != b.op {
			return a.op - b.op
		}
		return a.np - b.np
	})
	e.match = intsFill(e.match, newK, -1)
	e.claim = intsFill(e.claim, oldK, -1)
	for _, pr := range e.pairs {
		if e.match[pr.np] == -1 && e.claim[pr.op] == -1 {
			e.match[pr.np] = pr.op
			e.claim[pr.op] = pr.np
		}
	}
	moved := 0
	for i := range e.oldAs {
		if e.match[e.newAs[i]] != e.oldAs[i] {
			moved++
		}
	}
	return moved
}

// buildApp materializes an AppSpec on a recycled tree arena.
func (e *Engine) buildApp(spec AppSpec) appState {
	var b *apptree.Builder
	if n := len(e.freeB); n > 0 {
		b, e.freeB = e.freeB[n-1], e.freeB[:n-1]
	} else {
		b = new(apptree.Builder)
	}
	if e.treeR == nil {
		e.treeR = rng.New(spec.TreeSeed)
	} else {
		e.treeR.Seed(spec.TreeSeed)
	}
	rho := spec.Rho
	if rho <= 0 {
		rho = 1
	}
	n := spec.NumOps
	if n < 1 {
		n = 1
	}
	return appState{tree: b.Random(e.treeR, n, e.w.NumTypes), b: b, rho: rho}
}

// fillOffsets recomputes the merged-tree operator offsets of the staged
// application list: slot j's operators are [opOff[j], opOff[j+1]), the
// virtual combiners start at opOff[n].
func (e *Engine) fillOffsets(n int) {
	e.opOff = e.opOff[:0]
	off := 0
	for j := 0; j < n; j++ {
		e.opOff = append(e.opOff, off)
		off += len(e.mapps[j].Tree.Ops)
	}
	e.opOff = append(e.opOff, off)
}

// eventSeed derives the current event's sub-seed from a per-purpose
// base, allocation-free.
func (e *Engine) eventSeed(base int64) int64 {
	return int64(rng.SplitMix64(uint64(base) + uint64(e.nev)))
}

// intsFill returns s resized to n with every element set to v.
func intsFill(s []int, n, v int) []int {
	if cap(s) < n {
		s = make([]int, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = v
	}
	return s
}
