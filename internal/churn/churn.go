// Package churn models dynamic workloads — applications arriving and
// departing, operator rates drifting — on top of the paper's static
// allocation problem, and answers each change by journaled local repair
// on the live mapping instead of a from-scratch solve.
//
// A Scenario is a deterministic seeded event stream applied to a shared
// Workload. The Engine holds the live incumbent allocation and answers
// every Event with one of two policies: PolicyRepair transplants the
// incumbent onto the post-event instance, unplaces only the operators
// the event invalidated, re-places them greedily through the move
// journal and runs a budgeted refinement pass (falling back to a full
// constructive re-solve when repair finds no feasible completion);
// PolicyResolve re-solves every event from scratch with the six-way
// constructive portfolio. Both policies install only validated
// mappings, so the incumbent is never invalid, and a rejected event
// leaves the pre-event incumbent untouched.
package churn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/instance"
	"repro/internal/multiapp"
	"repro/internal/rng"
)

// EventKind enumerates the dynamic changes a Scenario can apply.
type EventKind int

const (
	// Arrive adds a new application (a fresh random tree) to the
	// platform.
	Arrive EventKind = iota
	// Depart removes a live application; its operators are unplaced and
	// emptied processors are sold.
	Depart
	// Drift multiplies one live application's throughput target,
	// rescaling every operator's work and traffic.
	Drift
)

// String names the kind for logs and serve responses.
func (k EventKind) String() string {
	switch k {
	case Arrive:
		return "arrive"
	case Depart:
		return "depart"
	case Drift:
		return "drift"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one dynamic change. Only the fields of its kind are
// meaningful: an arrival carries the new application (NumOps operators
// drawn from TreeSeed, target Rho), a departure the Slot of the leaving
// application, a drift the Slot plus the multiplicative Factor applied
// to its target. Slots index the engine's live application list in
// arrival order.
type Event struct {
	Kind EventKind

	NumOps   int     // Arrive: tree size (>= 1)
	TreeSeed int64   // Arrive: drives the random tree
	Rho      float64 // Arrive: throughput target (<= 0 means 1)

	Slot int // Depart, Drift: live application index

	Factor float64 // Drift: target multiplier (> 0)
}

// DriftModel selects how drift factors are drawn.
type DriftModel int

const (
	// DriftBoth draws factors uniformly in [1/DriftMax, DriftMax].
	DriftBoth DriftModel = iota
	// DriftUp draws factors uniformly in [1, DriftMax]: rates only grow.
	DriftUp
	// DriftDown draws factors uniformly in [1/DriftMax, 1].
	DriftDown
)

// AppSpec describes one application of a generated scenario: the engine
// builds its tree from TreeSeed at arrival time on reusable arenas.
type AppSpec struct {
	NumOps   int
	TreeSeed int64
	Rho      float64
}

// Scenario is a fully materialized dynamic workload: the shared object
// universe and platform, the applications live at t=0, and the event
// stream. Everything is plain data — a Scenario is immutable under Run
// and safe to share across engines.
type Scenario struct {
	Workload multiapp.Workload
	Initial  []AppSpec
	Events   []Event
}

// ScenarioConfig parameterizes NewScenario. The zero value means "use
// the defaults" field by field.
type ScenarioConfig struct {
	InitialApps int // applications live at t=0 (default 3)
	Events      int // events in the stream (default 8)

	MinOps, MaxOps int     // application tree sizes (defaults 5 and 9)
	Rho            float64 // initial per-application target (default 1)

	// Event mix: arrivals and departures as fractions of the stream;
	// the remaining mass is drift. Defaults 0.25 and 0.2.
	ArriveFrac, DepartFrac float64
	MaxApps                int // arrivals beyond this many live apps become drift (default 6)

	Drift          DriftModel
	DriftMax       float64 // max multiplicative step per drift event (default 1.25)
	RhoMin, RhoMax float64 // factors are clamped to keep targets here (defaults 0.25 and 4)

	// Base seeds the shared object universe and platform (its NumOps
	// and Rho are ignored); the zero value uses the paper defaults.
	Base instance.Config
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.InitialApps, 3)
	def(&c.Events, 8)
	def(&c.MinOps, 5)
	def(&c.MaxOps, 9)
	def(&c.MaxApps, 6)
	deff(&c.Rho, 1)
	deff(&c.ArriveFrac, 0.25)
	deff(&c.DepartFrac, 0.2)
	deff(&c.DriftMax, 1.25)
	deff(&c.RhoMin, 0.25)
	deff(&c.RhoMax, 4)
	if c.MaxOps < c.MinOps {
		c.MaxOps = c.MinOps
	}
	return c
}

// NewScenario generates a deterministic scenario: the same (cfg, seed)
// produces the identical workload, initial applications and event
// stream on every machine. The generator tracks the live application
// count and each application's drifted target, so every emitted event
// is applicable when replayed in order (departures never empty the
// platform, drift factors keep targets within [RhoMin, RhoMax]).
func NewScenario(cfg ScenarioConfig, seed int64) *Scenario {
	cfg = cfg.withDefaults()

	// The object universe and platform come from the standard instance
	// generator (sizes, frequencies, holders), on a decorrelated stream.
	bc := cfg.Base
	bc.NumOps = cfg.MaxOps
	base := instance.Generate(bc, rng.SeedFor(seed, "churn:universe"))
	sc := &Scenario{Workload: multiapp.Workload{
		NumTypes: base.NumTypes,
		Sizes:    base.Sizes,
		Freqs:    base.Freqs,
		Holders:  base.Holders,
		Platform: base.Platform,
		Alpha:    base.Alpha,
	}}

	r := rng.Derive(seed, "churn:events")
	size := func() int { return cfg.MinOps + r.Intn(cfg.MaxOps-cfg.MinOps+1) }
	var rhos []float64
	for i := 0; i < cfg.InitialApps; i++ {
		sc.Initial = append(sc.Initial, AppSpec{NumOps: size(), TreeSeed: r.Int63(), Rho: cfg.Rho})
		rhos = append(rhos, cfg.Rho)
	}

	for len(sc.Events) < cfg.Events {
		u := r.Float64()
		switch {
		case u < cfg.ArriveFrac && len(rhos) < cfg.MaxApps:
			sc.Events = append(sc.Events, Event{Kind: Arrive, NumOps: size(), TreeSeed: r.Int63(), Rho: cfg.Rho})
			rhos = append(rhos, cfg.Rho)
		case u < cfg.ArriveFrac+cfg.DepartFrac && len(rhos) > 1:
			slot := r.Intn(len(rhos))
			sc.Events = append(sc.Events, Event{Kind: Depart, Slot: slot})
			rhos = append(rhos[:slot], rhos[slot+1:]...)
		default:
			slot := r.Intn(len(rhos))
			f := driftFactor(r, cfg)
			// Clamp so the drifted target stays within the configured
			// band (and strictly positive).
			f = math.Min(f, cfg.RhoMax/rhos[slot])
			f = math.Max(f, cfg.RhoMin/rhos[slot])
			sc.Events = append(sc.Events, Event{Kind: Drift, Slot: slot, Factor: f})
			rhos[slot] *= f
		}
	}
	return sc
}

func driftFactor(r *rand.Rand, cfg ScenarioConfig) float64 {
	switch cfg.Drift {
	case DriftUp:
		return 1 + r.Float64()*(cfg.DriftMax-1)
	case DriftDown:
		lo := 1 / cfg.DriftMax
		return lo + r.Float64()*(1-lo)
	default:
		lo := 1 / cfg.DriftMax
		return lo + r.Float64()*(cfg.DriftMax-lo)
	}
}
