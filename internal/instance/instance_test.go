package instance

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestGenerateDefaults(t *testing.T) {
	in := Generate(Config{NumOps: 40}, 1)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.Tree.NumOps() != 40 {
		t.Fatalf("tree has %d ops", in.Tree.NumOps())
	}
	if in.NumTypes != 15 {
		t.Fatalf("NumTypes = %d, want 15", in.NumTypes)
	}
	for k := 0; k < in.NumTypes; k++ {
		if in.Sizes[k] < 5 || in.Sizes[k] >= 30 {
			t.Fatalf("size[%d] = %v out of [5,30)", k, in.Sizes[k])
		}
		if in.Freqs[k] != 0.5 {
			t.Fatalf("freq[%d] = %v, want 0.5", k, in.Freqs[k])
		}
		if n := len(in.Holders[k]); n < 1 || n > 3 {
			t.Fatalf("object %d held by %d servers", k, n)
		}
	}
	if in.Rho != 1 {
		t.Fatalf("rho = %v", in.Rho)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{NumOps: 30, Alpha: 1.3}, 99)
	b := Generate(Config{NumOps: 30, Alpha: 1.3}, 99)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("same seed gave different instances")
	}
	c := Generate(Config{NumOps: 30, Alpha: 1.3}, 100)
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds gave identical instances")
	}
}

func TestSizesStableAcrossTreeSizes(t *testing.T) {
	// Sub-stream decorrelation: changing NumOps must not change the
	// per-type sizes or placements for the same seed.
	a := Generate(Config{NumOps: 20}, 5)
	b := Generate(Config{NumOps: 120}, 5)
	for k := range a.Sizes {
		if a.Sizes[k] != b.Sizes[k] {
			t.Fatalf("size[%d] changed with tree size: %v vs %v", k, a.Sizes[k], b.Sizes[k])
		}
	}
}

func TestRate(t *testing.T) {
	in := Generate(Config{NumOps: 10}, 3)
	for k := 0; k < in.NumTypes; k++ {
		want := in.Sizes[k] * in.Freqs[k]
		if math.Abs(in.Rate(k)-want) > 1e-12 {
			t.Fatalf("Rate(%d) = %v, want %v", k, in.Rate(k), want)
		}
	}
}

func TestDerivedWork(t *testing.T) {
	in := Generate(Config{NumOps: 25, Alpha: 1.5}, 7)
	// Recompute independently and compare.
	w, delta := in.Tree.Derive(in.Sizes, 1.5)
	for i := range w {
		if in.W[i] != w[i] || in.Delta[i] != delta[i] {
			t.Fatalf("derived values differ at op %d", i)
		}
		if in.W[i] <= 0 || in.Delta[i] <= 0 {
			t.Fatalf("non-positive derived value at op %d", i)
		}
	}
	// Root delta equals the total leaf mass (alpha does not affect delta).
	total := 0.0
	for _, l := range in.Tree.Leaves {
		total += in.Sizes[l.Object]
	}
	if math.Abs(in.Delta[in.Tree.Root]-total) > 1e-6 {
		t.Fatalf("root delta %v != total leaf mass %v", in.Delta[in.Tree.Root], total)
	}
}

func TestEdgeTraffic(t *testing.T) {
	in := Generate(Config{NumOps: 10, Rho: 2}, 11)
	for i := range in.Tree.Ops {
		if got := in.EdgeTraffic(i); got != 2*in.Delta[i] {
			t.Fatalf("EdgeTraffic(%d) = %v, want %v", i, got, 2*in.Delta[i])
		}
	}
}

func TestLargeObjectConfig(t *testing.T) {
	in := Generate(Config{NumOps: 20, SizeMin: 450, SizeMax: 530}, 2)
	for k, s := range in.Sizes {
		if s < 450 || s >= 530 {
			t.Fatalf("large object %d has size %v", k, s)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := Generate(Config{NumOps: 15, Alpha: 0.9}, 13)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Instance
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("round-tripped instance invalid: %v", err)
	}
	if out.Tree.NumOps() != in.Tree.NumOps() || out.Alpha != in.Alpha {
		t.Fatal("round trip lost data")
	}
	for i := range in.W {
		if math.Abs(out.W[i]-in.W[i]) > 1e-9 {
			t.Fatalf("derived W not recomputed on load at op %d", i)
		}
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	mk := func() *Instance { return Generate(Config{NumOps: 8}, 21) }

	in := mk()
	in.Rho = 0
	if in.Validate() == nil {
		t.Fatal("rho=0 not caught")
	}
	in = mk()
	in.Sizes[0] = -1
	if in.Validate() == nil {
		t.Fatal("negative size not caught")
	}
	in = mk()
	in.Holders[in.Tree.Leaves[0].Object] = nil
	if in.Validate() == nil {
		t.Fatal("used object with no holder not caught")
	}
	in = mk()
	in.Holders[0] = []int{99}
	if in.Validate() == nil {
		t.Fatal("invalid server index not caught")
	}
	in = mk()
	in.W = nil
	if in.Validate() == nil {
		t.Fatal("stale derived data not caught")
	}
	in = mk()
	in.Tree = nil
	if in.Validate() == nil {
		t.Fatal("nil tree not caught")
	}
}

func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, n uint8, alphaRaw uint8) bool {
		cfg := Config{
			NumOps: int(n%80) + 1,
			Alpha:  0.5 + float64(alphaRaw%20)/10, // 0.5..2.4
		}
		in := Generate(cfg, seed)
		return in.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCustomPlatform(t *testing.T) {
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(4, 4)
	in := Generate(Config{NumOps: 10, Platform: p}, 1)
	if !in.Platform.Catalog.Homogeneous() {
		t.Fatal("custom platform not used")
	}
}

func TestHolderClamping(t *testing.T) {
	// MaxHolders beyond the server count must be clamped, not panic.
	in := Generate(Config{NumOps: 5, MinHolders: 6, MaxHolders: 10}, 1)
	for k := range in.Holders {
		if len(in.Holders[k]) != 6 {
			t.Fatalf("object %d held by %d servers, want all 6", k, len(in.Holders[k]))
		}
	}
}

func TestGeneratorMatchesGenerate(t *testing.T) {
	// A reused Generator must produce instances identical to the one-shot
	// Generate, across varying configs and seeds (the reuse must never
	// leak one instance's state into the next).
	var g Generator
	cfgs := []Config{
		{NumOps: 40, Alpha: 0.9},
		{NumOps: 7, Alpha: 1.7},
		{NumOps: 60, Alpha: 1.1, SizeMin: 450, SizeMax: 530},
		{NumOps: 20, Alpha: 0.9, Freq: 1.0 / 20},
	}
	for _, cfg := range cfgs {
		for seed := int64(1); seed <= 4; seed++ {
			want := Generate(cfg, seed)
			got := g.Generate(cfg, seed)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("cfg %+v seed %d: generator instance differs", cfg, seed)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("cfg %+v seed %d: %v", cfg, seed, err)
			}
		}
	}
}

func TestGeneratorAllocFree(t *testing.T) {
	var g Generator
	cfg := Config{NumOps: 60, Alpha: 0.9}
	g.Generate(cfg, 1) // warm every buffer
	seed := int64(0)
	allocs := testing.AllocsPerRun(20, func() {
		seed++
		g.Generate(cfg, seed)
	})
	if allocs > 0 {
		t.Fatalf("warmed generator allocates %.1f allocs/op, want 0", allocs)
	}
}
