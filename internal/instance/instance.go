// Package instance assembles a complete problem instance of the
// constructive in-network stream processing problem: an operator tree, a
// catalog of basic-object types (size, update frequency, server
// placement), the purchasable platform, and the QoS target rho.
//
// Generate reproduces the simulation methodology of the paper's Section 5;
// all randomness flows from one int64 seed through decorrelated
// sub-streams so experiments are exactly reproducible.
package instance

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/apptree"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/xslice"
)

// Instance is one solvable problem. W and Delta are derived from the tree,
// the object sizes and Alpha (call Refresh after mutating any of those).
type Instance struct {
	Tree     *apptree.Tree
	NumTypes int       // number of basic-object types
	Sizes    []float64 // MB, per object type
	Freqs    []float64 // downloads/s, per object type
	Holders  [][]int   // per object type, the servers holding it (sorted)
	Platform *platform.Platform
	Rho      float64 // target application throughput (results/s)
	Alpha    float64 // computation exponent: w_i = (delta_l+delta_r)^alpha

	W     []float64 `json:"-"` // derived: work-units per operator evaluation
	Delta []float64 `json:"-"` // derived: output size per operator (MB)
}

// Rate returns the paper's rate_k = delta_k x f_k for object type k, in
// MB/s: the bandwidth one processor spends continuously downloading k.
func (in *Instance) Rate(k int) float64 { return in.Sizes[k] * in.Freqs[k] }

// Refresh recomputes the derived per-operator work and output sizes.
func (in *Instance) Refresh() {
	in.W, in.Delta = in.Tree.Derive(in.Sizes, in.Alpha)
}

// EdgeTraffic returns the steady-state traffic (MB/s) on the tree edge
// from operator child to its parent: rho x delta_child.
func (in *Instance) EdgeTraffic(child int) float64 {
	return in.Rho * in.Delta[child]
}

// Availability returns av_k: how many servers hold object type k.
func (in *Instance) Availability(k int) int { return len(in.Holders[k]) }

// Validate checks cross-component consistency.
func (in *Instance) Validate() error {
	if in.Tree == nil {
		return fmt.Errorf("instance: nil tree")
	}
	if err := in.Tree.Validate(); err != nil {
		return err
	}
	if in.Platform == nil {
		return fmt.Errorf("instance: nil platform")
	}
	if err := in.Platform.Validate(); err != nil {
		return err
	}
	if in.NumTypes < 1 {
		return fmt.Errorf("instance: NumTypes = %d", in.NumTypes)
	}
	if len(in.Sizes) != in.NumTypes || len(in.Freqs) != in.NumTypes || len(in.Holders) != in.NumTypes {
		return fmt.Errorf("instance: per-type slice lengths disagree with NumTypes=%d", in.NumTypes)
	}
	for k := 0; k < in.NumTypes; k++ {
		if in.Sizes[k] <= 0 {
			return fmt.Errorf("instance: object %d has non-positive size", k)
		}
		if in.Freqs[k] <= 0 {
			return fmt.Errorf("instance: object %d has non-positive frequency", k)
		}
	}
	if in.Rho <= 0 {
		return fmt.Errorf("instance: rho = %v", in.Rho)
	}
	used := map[int]bool{}
	for _, l := range in.Tree.Leaves {
		if l.Object >= in.NumTypes {
			return fmt.Errorf("instance: leaf references type %d >= NumTypes %d", l.Object, in.NumTypes)
		}
		used[l.Object] = true
	}
	for k := range in.Holders {
		prev := -1
		for _, s := range in.Holders[k] {
			if s < 0 || s >= len(in.Platform.Servers) {
				return fmt.Errorf("instance: object %d held by invalid server %d", k, s)
			}
			if s <= prev {
				return fmt.Errorf("instance: holders of object %d not sorted/unique", k)
			}
			prev = s
		}
		if used[k] && len(in.Holders[k]) == 0 {
			return fmt.Errorf("instance: object %d used by the tree but held by no server", k)
		}
	}
	if len(in.W) != in.Tree.NumOps() || len(in.Delta) != in.Tree.NumOps() {
		return fmt.Errorf("instance: derived W/Delta stale; call Refresh")
	}
	return nil
}

// Config parameterizes Generate, mirroring the knobs varied in Section 5.
type Config struct {
	NumOps     int                // operators in the tree (the paper's N)
	NumTypes   int                // distinct basic-object types (paper: 15)
	SizeMin    float64            // MB (paper: 5 or 450)
	SizeMax    float64            // MB (paper: 30 or 530)
	Freq       float64            // downloads/s for every type (paper: 1/2 or 1/50)
	Alpha      float64            // computation exponent
	Rho        float64            // target throughput (paper: 1)
	MinHolders int                // min servers holding each type (default 1)
	MaxHolders int                // max servers holding each type (default 3)
	Platform   *platform.Platform // nil means platform.DefaultPlatform()
}

// PaperDefaults fills the unset fields of a Config with the paper's
// Section 5 values: 15 object types, small objects (5-30 MB), high
// frequency (1/2 s), rho = 1, 1-3 holders per type, default platform.
func (c Config) PaperDefaults() Config {
	if c.NumTypes == 0 {
		c.NumTypes = 15
	}
	if c.SizeMin == 0 && c.SizeMax == 0 {
		c.SizeMin, c.SizeMax = 5, 30
	}
	if c.Freq == 0 {
		c.Freq = 0.5
	}
	if c.Rho == 0 {
		c.Rho = 1
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.MinHolders == 0 {
		c.MinHolders = 1
	}
	if c.MaxHolders == 0 {
		c.MaxHolders = 3
	}
	if c.Platform == nil {
		c.Platform = platform.DefaultPlatform()
	}
	return c
}

// Generate builds a random instance from cfg and seed. Tree shape, object
// sizes and server placement come from independent sub-streams, so e.g.
// changing NumOps does not reshuffle the per-type sizes.
func Generate(cfg Config, seed int64) *Instance {
	// A one-shot Generator is discarded afterwards, making the returned
	// instance the sole owner of its storage.
	return new(Generator).Generate(cfg, seed)
}

// Generator builds instances like Generate while reusing every internal
// buffer across calls: the tree (via an apptree.Builder), the per-type
// size/frequency/holder tables, the derived W/Delta vectors and the three
// decorrelated random streams. Steady-state generation is allocation-free.
//
// The returned *Instance and everything it references are owned by the
// Generator and valid only until the next Generate call — sweep workers
// hold one Generator each and solve-then-discard instances seed by seed.
// A Generator is not safe for concurrent use.
type Generator struct {
	inst                          Instance
	builder                       apptree.Builder
	treeRand, sizeRand, placeRand *rand.Rand
	perm                          []int              // PickDistinctInto scratch
	defPlat                       *platform.Platform // cached default platform
}

// Generate builds the (cfg, seed) instance on the generator's reusable
// storage. The result is field-for-field identical to the package-level
// Generate's.
func (g *Generator) Generate(cfg Config, seed int64) *Instance {
	if cfg.Platform == nil {
		// Cache the default platform: it is immutable in the sweep paths,
		// and rebuilding it per seed was the generator's last allocation.
		if g.defPlat == nil {
			g.defPlat = platform.DefaultPlatform()
		}
		cfg.Platform = g.defPlat
	}
	cfg = cfg.PaperDefaults()
	if cfg.NumOps < 1 {
		panic("instance: Config.NumOps must be >= 1")
	}
	if cfg.MinHolders < 1 || cfg.MaxHolders < cfg.MinHolders {
		panic("instance: invalid holder range")
	}
	numServers := len(cfg.Platform.Servers)
	if cfg.MaxHolders > numServers {
		cfg.MaxHolders = numServers
	}

	if g.treeRand == nil {
		g.treeRand, g.sizeRand, g.placeRand = rng.New(0), rng.New(0), rng.New(0)
	}
	rng.Reseed(g.treeRand, seed, "tree")
	rng.Reseed(g.sizeRand, seed, "sizes")
	rng.Reseed(g.placeRand, seed, "placement")

	in := &g.inst
	in.Tree = g.builder.Random(g.treeRand, cfg.NumOps, cfg.NumTypes)
	in.NumTypes = cfg.NumTypes
	in.Sizes = xslice.Grow(in.Sizes, cfg.NumTypes)
	in.Freqs = xslice.Grow(in.Freqs, cfg.NumTypes)
	in.Holders = xslice.Grow(in.Holders, cfg.NumTypes)
	in.Platform = cfg.Platform
	in.Rho = cfg.Rho
	in.Alpha = cfg.Alpha
	g.perm = xslice.Grow(g.perm, numServers)
	for k := 0; k < cfg.NumTypes; k++ {
		in.Sizes[k] = rng.UniformIn(g.sizeRand, cfg.SizeMin, cfg.SizeMax)
		in.Freqs[k] = cfg.Freq
		n := cfg.MinHolders
		if cfg.MaxHolders > cfg.MinHolders {
			n += g.placeRand.Intn(cfg.MaxHolders - cfg.MinHolders + 1)
		}
		h := rng.PickDistinctInto(g.placeRand, numServers, n, in.Holders[k][:0], g.perm)
		sortInts(h)
		in.Holders[k] = h
	}
	in.W, in.Delta = in.Tree.DeriveInto(in.Sizes, in.Alpha, in.W, in.Delta)
	return in
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// MarshalJSON / UnmarshalJSON round-trip an instance; derived fields are
// recomputed on load.

type instanceJSON struct {
	Tree     *apptree.Tree
	NumTypes int
	Sizes    []float64
	Freqs    []float64
	Holders  [][]int
	Platform *platform.Platform
	Rho      float64
	Alpha    float64
}

// MarshalJSON implements json.Marshaler.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(instanceJSON{
		Tree: in.Tree, NumTypes: in.NumTypes, Sizes: in.Sizes,
		Freqs: in.Freqs, Holders: in.Holders, Platform: in.Platform,
		Rho: in.Rho, Alpha: in.Alpha,
	})
}

// UnmarshalJSON implements json.Unmarshaler and recomputes derived fields.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var aux instanceJSON
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	in.Tree = aux.Tree
	in.NumTypes = aux.NumTypes
	in.Sizes = aux.Sizes
	in.Freqs = aux.Freqs
	in.Holders = aux.Holders
	in.Platform = aux.Platform
	in.Rho = aux.Rho
	in.Alpha = aux.Alpha
	if in.Tree != nil && len(in.Sizes) > 0 {
		in.Refresh()
	}
	return nil
}
