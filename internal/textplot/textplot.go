// Package textplot renders multi-series line charts as plain text, so the
// experiment binaries can show the paper's figures directly in a terminal
// alongside the gnuplot-ready .dat files.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line. Points with NaN Y are skipped (used for
// "no feasible mapping found" gaps, matching how the paper's curves stop).
type Series struct {
	Label string
	X, Y  []float64
}

// markers distinguish series, in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot renders the series onto a width x height character grid with a
// y-axis, x-axis and a legend.
func Plot(title string, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if !any {
		b.WriteString("(no feasible points)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(height-1)))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}
	yLabelW := 11
	for r, row := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%*.4g |%s\n", yLabelW-2, yVal, string(row))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", yLabelW-1), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s%-*.4g%*.4g\n", yLabelW, "", width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}
