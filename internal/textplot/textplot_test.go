package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	out := Plot("demo", []Series{
		{Label: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Label: "flat", X: []float64{0, 1, 2, 3}, Y: []float64{1, 1, 1, 1}},
	}, 40, 10)
	for _, want := range []string{"demo", "linear", "flat", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotHandlesNaN(t *testing.T) {
	out := Plot("gaps", []Series{
		{Label: "s", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}},
	}, 30, 8)
	if !strings.Contains(out, "s") {
		t.Fatalf("plot broken:\n%s", out)
	}
}

func TestPlotAllNaN(t *testing.T) {
	out := Plot("empty", []Series{
		{Label: "s", X: []float64{0, 1}, Y: []float64{math.NaN(), math.NaN()}},
	}, 30, 8)
	if !strings.Contains(out, "no feasible points") {
		t.Fatalf("expected empty-plot message:\n%s", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	// Degenerate ranges (single point) must not divide by zero.
	out := Plot("const", []Series{
		{Label: "point", X: []float64{5}, Y: []float64{7}},
	}, 30, 8)
	if !strings.Contains(out, "point") {
		t.Fatalf("plot broken:\n%s", out)
	}
}

func TestMinimumDimensions(t *testing.T) {
	out := Plot("tiny", []Series{
		{Label: "s", X: []float64{0, 1}, Y: []float64{0, 1}},
	}, 1, 1)
	if len(out) == 0 {
		t.Fatal("empty output")
	}
}
