// Package xslice holds the one slice helper the zero-allocation hot
// paths share: grow-only buffer resizing. flow, mapping and stream all
// recycle scratch through it, so the growth policy lives in one place.
package xslice

// Grow returns buf resized to n, reallocating (with headroom) only when
// capacity is short. Recycled storage keeps its previous values; fresh
// storage is zeroed by make. Callers that need cleared buffers reset the
// entries they dirty.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n, n+n/2)
	}
	return buf[:n]
}
