// Package flow computes max-min fair rate allocations for flows sharing
// capacitated resources — the fluid counterpart of the paper's bounded
// multi-port model. The stream engine uses it to share NIC and link
// bandwidth among concurrent transfers.
package flow

import (
	"fmt"
	"math"

	"repro/internal/xslice"
)

// Flow describes one flow: the resources it crosses (indices into the
// capacity vector; a flow consumes its rate on each of them simultaneously,
// as a transfer does on the sender NIC, the link, and the receiver NIC)
// and an optional rate ceiling (Demand <= 0 means unbounded).
type Flow struct {
	Resources []int
	Demand    float64
}

// Allocator owns the scratch state of the progressive-filling algorithm so
// that repeated MaxMin calls perform zero steady-state allocations. The
// zero value is ready to use; an Allocator must not be used concurrently.
type Allocator struct {
	rates    []float64
	active   []bool
	residual []float64
	count    []int
}

// MaxMin returns the max-min fair rates for the flows given per-resource
// capacities, via progressive filling: all unfrozen flows grow at the same
// rate; a flow freezes when it hits its demand or when one of its
// resources saturates.
//
// The returned slice is owned by the Allocator and is valid until its next
// MaxMin call; callers that need to keep the rates must copy them.
func (a *Allocator) MaxMin(capacity []float64, flows []Flow) ([]float64, error) {
	for r, c := range capacity {
		if c < 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("flow: resource %d has invalid capacity %v", r, c)
		}
	}
	for i, f := range flows {
		for _, r := range f.Resources {
			if r < 0 || r >= len(capacity) {
				return nil, fmt.Errorf("flow: flow %d crosses invalid resource %d", i, r)
			}
		}
	}

	a.rates = xslice.Grow(a.rates, len(flows))
	a.active = xslice.Grow(a.active, len(flows))
	a.residual = xslice.Grow(a.residual, len(capacity))
	a.count = xslice.Grow(a.count, len(capacity))
	rates, active, residual := a.rates, a.active, a.residual
	for i := range rates {
		rates[i] = 0
	}
	copy(residual, capacity)
	nActive := 0
	for i, f := range flows {
		if len(f.Resources) == 0 && f.Demand <= 0 {
			return nil, fmt.Errorf("flow: flow %d is unbounded (no resources, no demand)", i)
		}
		active[i] = true
		nActive++
	}

	for nActive > 0 {
		// Count active flows per resource.
		count := a.count
		for r := range count {
			count[r] = 0
		}
		for i, f := range flows {
			if !active[i] {
				continue
			}
			for _, r := range f.Resources {
				count[r]++
			}
		}
		// The common growth increment lambda is limited by the tightest
		// resource share and by the nearest demand ceiling.
		lambda := math.Inf(1)
		for r := range capacity {
			if count[r] > 0 {
				if share := residual[r] / float64(count[r]); share < lambda {
					lambda = share
				}
			}
		}
		for i, f := range flows {
			if active[i] && f.Demand > 0 {
				if room := f.Demand - rates[i]; room < lambda {
					lambda = room
				}
			}
		}
		if math.IsInf(lambda, 1) {
			return nil, fmt.Errorf("flow: unbounded allocation")
		}
		if lambda < 0 {
			lambda = 0
		}
		// Grow, charge resources, freeze.
		for i, f := range flows {
			if !active[i] {
				continue
			}
			rates[i] += lambda
			for _, r := range f.Resources {
				residual[r] -= lambda
			}
		}
		frozenThisRound := 0
		for i, f := range flows {
			if !active[i] {
				continue
			}
			frozen := false
			if f.Demand > 0 && rates[i] >= f.Demand-1e-12 {
				frozen = true
			}
			for _, r := range f.Resources {
				if residual[r] <= 1e-12 {
					frozen = true
				}
			}
			if frozen {
				active[i] = false
				nActive--
				frozenThisRound++
			}
		}
		if frozenThisRound == 0 {
			// lambda was positive yet nothing froze: numerically stuck.
			return nil, fmt.Errorf("flow: progressive filling stalled")
		}
	}
	return rates, nil
}

// MaxMin is the allocation-per-call convenience wrapper around
// Allocator.MaxMin; the returned slice is freshly allocated and owned by
// the caller. Hot paths should hold an Allocator instead.
func MaxMin(capacity []float64, flows []Flow) ([]float64, error) {
	var a Allocator
	rates, err := a.MaxMin(capacity, flows)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rates))
	copy(out, rates)
	return out, nil
}

// Utilization returns how much of each resource the given rates consume.
func Utilization(capacity []float64, flows []Flow, rates []float64) []float64 {
	used := make([]float64, len(capacity))
	for i, f := range flows {
		for _, r := range f.Resources {
			used[r] += rates[i]
		}
	}
	return used
}
