package flow

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSingleLinkEqualShare(t *testing.T) {
	rates, err := MaxMin([]float64{90}, []Flow{
		{Resources: []int{0}},
		{Resources: []int{0}},
		{Resources: []int{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		if math.Abs(r-30) > 1e-9 {
			t.Fatalf("rate[%d] = %v, want 30", i, r)
		}
	}
}

func TestDemandCeiling(t *testing.T) {
	rates, err := MaxMin([]float64{90}, []Flow{
		{Resources: []int{0}, Demand: 10},
		{Resources: []int{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-10) > 1e-9 || math.Abs(rates[1]-80) > 1e-9 {
		t.Fatalf("rates = %v, want [10 80]", rates)
	}
}

func TestClassicParkingLot(t *testing.T) {
	// Flow A crosses links 0 and 1; flow B link 0; flow C link 1.
	// Capacities 10 each: A=5, B=5, C=5.
	rates, err := MaxMin([]float64{10, 10}, []Flow{
		{Resources: []int{0, 1}},
		{Resources: []int{0}},
		{Resources: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 5, 5}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestBottleneckAsymmetry(t *testing.T) {
	// Link 0 cap 6 shared by A and B; link 1 cap 100 crossed only by B.
	// A=3, B=3 (B limited at link 0, not link 1).
	rates, err := MaxMin([]float64{6, 100}, []Flow{
		{Resources: []int{0}},
		{Resources: []int{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-3) > 1e-9 || math.Abs(rates[1]-3) > 1e-9 {
		t.Fatalf("rates = %v, want [3 3]", rates)
	}
}

func TestDemandOnlyFlow(t *testing.T) {
	rates, err := MaxMin(nil, []Flow{{Demand: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-7) > 1e-9 {
		t.Fatalf("rates = %v, want [7]", rates)
	}
}

func TestUnboundedRejected(t *testing.T) {
	if _, err := MaxMin(nil, []Flow{{}}); err == nil {
		t.Fatal("unbounded flow accepted")
	}
}

func TestBadResourceIndex(t *testing.T) {
	if _, err := MaxMin([]float64{1}, []Flow{{Resources: []int{5}}}); err == nil {
		t.Fatal("invalid resource index accepted")
	}
}

func TestZeroCapacity(t *testing.T) {
	rates, err := MaxMin([]float64{0}, []Flow{{Resources: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] != 0 {
		t.Fatalf("rate = %v, want 0", rates[0])
	}
}

// TestAllocatorMatchesMaxMin checks the reusable-scratch path returns the
// exact rates of the allocating wrapper across random networks.
func TestAllocatorMatchesMaxMin(t *testing.T) {
	var a Allocator
	for seed := int64(0); seed < 200; seed++ {
		r := rng.New(seed)
		nRes := 1 + r.Intn(5)
		caps := make([]float64, nRes)
		for i := range caps {
			caps[i] = rng.UniformIn(r, 1, 100)
		}
		flows := make([]Flow, 1+r.Intn(6))
		for i := range flows {
			flows[i].Resources = rng.PickDistinct(r, nRes, 1+r.Intn(nRes))
			if r.Intn(2) == 0 {
				flows[i].Demand = rng.UniformIn(r, 1, 50)
			}
		}
		want, err := MaxMin(caps, flows)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.MaxMin(caps, flows)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: allocator rates %v, wrapper %v", seed, got, want)
			}
		}
	}
}

// TestAllocatorZeroAllocs pins the tentpole property: steady-state MaxMin
// calls on a warmed Allocator allocate nothing.
func TestAllocatorZeroAllocs(t *testing.T) {
	var a Allocator
	caps := []float64{90, 50, 70}
	flows := []Flow{
		{Resources: []int{0, 1}},
		{Resources: []int{1, 2}, Demand: 5},
		{Resources: []int{0, 2}},
		{Resources: []int{2}},
	}
	if _, err := a.MaxMin(caps, flows); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := a.MaxMin(caps, flows); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Allocator.MaxMin allocates %v per run, want 0", allocs)
	}
}

// Properties of max-min fairness on random networks:
//  1. feasibility: no resource over capacity,
//  2. demands respected,
//  3. maximality: every flow is blocked by a saturated resource or its
//     own demand (no flow can unilaterally increase).
func TestMaxMinProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		nRes := 1 + r.Intn(5)
		caps := make([]float64, nRes)
		for i := range caps {
			caps[i] = rng.UniformIn(r, 1, 100)
		}
		nFlows := 1 + r.Intn(6)
		flows := make([]Flow, nFlows)
		for i := range flows {
			k := 1 + r.Intn(nRes)
			flows[i].Resources = rng.PickDistinct(r, nRes, k)
			if r.Intn(2) == 0 {
				flows[i].Demand = rng.UniformIn(r, 1, 50)
			}
		}
		rates, err := MaxMin(caps, flows)
		if err != nil {
			return false
		}
		used := Utilization(caps, flows, rates)
		for i := range caps {
			if used[i] > caps[i]+1e-6 {
				return false
			}
		}
		for i, fl := range flows {
			if fl.Demand > 0 && rates[i] > fl.Demand+1e-6 {
				return false
			}
			blocked := fl.Demand > 0 && rates[i] >= fl.Demand-1e-6
			for _, res := range fl.Resources {
				if used[res] >= caps[res]-1e-6 {
					blocked = true
				}
			}
			if !blocked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
