package rewrite

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/apptree"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/rng"
)

func TestHuffmanClassic(t *testing.T) {
	// Sizes {1,2,3,4}: optimal volume = classic Huffman cost:
	// combine 1+2=3, 3+3=6, 6+4=10 -> total intermediate = 3+6+10 = 19.
	sizes := []float64{1, 2, 3, 4}
	tr := Huffman([]int{0, 1, 2, 3}, sizes)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := Volume(tr, sizes); math.Abs(got-19) > 1e-9 {
		t.Fatalf("Huffman volume = %v, want 19", got)
	}
}

func TestHuffmanBeatsWorstChain(t *testing.T) {
	// A chain in descending order maximizes intermediate volume; Huffman
	// must be at most the best chain.
	sizes := []float64{1, 5, 10, 20, 40}
	objs := []int{0, 1, 2, 3, 4}
	huff := Volume(Huffman(objs, sizes), sizes)
	desc := Volume(apptree.LeftDeep([]int{4, 3, 2, 1, 0}), sizes)
	asc := Volume(apptree.LeftDeep(objs), sizes)
	if huff > asc+1e-9 || huff > desc+1e-9 {
		t.Fatalf("huffman %v worse than chains asc=%v desc=%v", huff, asc, desc)
	}
}

func TestHuffmanOptimalProperty(t *testing.T) {
	// Property: no random alternative tree over the same leaves has lower
	// total intermediate volume (checked against random binary shapes).
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(6) // 3..8 leaves
		sizes := make([]float64, n)
		objs := make([]int, n)
		for i := range sizes {
			sizes[i] = rng.UniformIn(r, 1, 100)
			objs[i] = i
		}
		best := Volume(Huffman(objs, sizes), sizes)
		// Random alternative: shuffle objects into a random tree via
		// apptree.Random shape with relabelled leaves.
		alt := apptree.Random(r, n-1, n)
		// Relabel the alt tree's leaves with a permutation of objs.
		perm := r.Perm(n)
		for li := range alt.Leaves {
			alt.Leaves[li].Object = objs[perm[li]]
		}
		return best <= Volume(alt, sizes)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanPanicsOnSingle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Huffman([]int{0}, []float64{1})
}

func TestOptimizeReducesOrMatchesCost(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.6}, seed)
		cands, err := Optimize(in, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: seed})
		if err != nil {
			continue // all variants infeasible at this alpha is acceptable
		}
		var origCost float64 = math.Inf(1)
		for _, c := range cands {
			if c.Name == "original" && c.Err == nil {
				origCost = c.Result.Cost
			}
		}
		if cands[0].Err != nil {
			t.Fatalf("seed %d: sorted candidates start with a failure", seed)
		}
		if cands[0].Result.Cost > origCost+1e-9 {
			t.Fatalf("seed %d: best rewrite %v worse than original %v", seed, cands[0].Result.Cost, origCost)
		}
		if err := cands[0].Result.Mapping.Validate(); err != nil {
			t.Fatalf("seed %d: best rewrite mapping invalid: %v", seed, err)
		}
	}
}

func TestOptimizeExtendsFeasibility(t *testing.T) {
	// At high alpha the original random tree's root operator can exceed
	// the fastest CPU while the Huffman rewrite (smaller intermediate
	// results) stays feasible. Find at least one such seed.
	extended := false
	for seed := int64(0); seed < 20 && !extended; seed++ {
		in := instance.Generate(instance.Config{NumOps: 30, Alpha: 1.85}, seed)
		_, origErr := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: seed})
		cands, err := Optimize(in, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: seed})
		if origErr != nil && err == nil && cands[0].Err == nil {
			extended = true
		}
	}
	if !extended {
		t.Skip("no seed demonstrated feasibility extension (acceptable; depends on calibration)")
	}
}

func TestVolumeMatchesDerive(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 10}, 1)
	v := Volume(in.Tree, in.Sizes)
	sum := 0.0
	for _, d := range in.Delta {
		sum += d
	}
	if math.Abs(v-sum) > 1e-9 {
		t.Fatalf("Volume = %v, want %v", v, sum)
	}
}
