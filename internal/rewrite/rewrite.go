// Package rewrite implements the paper's second future-work direction:
// mutable applications whose operators can be rearranged by associativity
// and commutativity (e.g. chains of joins or aggregations). For such an
// application only the *set* of input objects is fixed; the combining tree
// is free.
//
// Because an operator's output size is delta_l + delta_r, the total
// intermediate data volume of a combining tree over fixed leaves is
// sum_over_leaves(size * depth) — exactly the weighted external path
// length a Huffman tree minimizes. Lower intermediate volumes mean lower
// w_i = volume^alpha and lower edge traffic, so the Huffman shape is the
// natural cost-reducing rewrite; Optimize also tries sorted and original
// left-deep chains and keeps whichever mapping is cheapest.
package rewrite

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/apptree"
	"repro/internal/heuristics"
	"repro/internal/instance"
)

// Huffman builds the combining tree over the given basic-object types that
// minimizes the total intermediate data volume, combining the two
// currently-smallest partial results at each step (sizes indexed by object
// type). It panics if fewer than two objects are given.
func Huffman(objects []int, sizes []float64) *apptree.Tree {
	if len(objects) < 2 {
		panic("rewrite: Huffman needs at least two objects")
	}
	t := &apptree.Tree{}
	// Each heap node is either a pending leaf (object occurrence) or a
	// built operator subtree.
	h := &nodeHeap{}
	for _, k := range objects {
		heap.Push(h, node{mass: sizes[k], object: k, op: -1})
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(node)
		b := heap.Pop(h).(node)
		id := len(t.Ops)
		t.Ops = append(t.Ops, apptree.Operator{Parent: apptree.NoParent})
		attach := func(n node) {
			if n.op >= 0 {
				t.Ops[n.op].Parent = id
				t.Ops[id].ChildOps = append(t.Ops[id].ChildOps, n.op)
				return
			}
			li := len(t.Leaves)
			t.Leaves = append(t.Leaves, apptree.Leaf{Object: n.object, Parent: id})
			t.Ops[id].Leaves = append(t.Ops[id].Leaves, li)
		}
		attach(a)
		attach(b)
		heap.Push(h, node{mass: a.mass + b.mass, op: id})
	}
	t.Root = heap.Pop(h).(node).op
	return t
}

type node struct {
	mass   float64
	object int
	op     int // -1 for a leaf
}

type nodeHeap []node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].mass != h[j].mass {
		return h[i].mass < h[j].mass
	}
	// Deterministic tie-breaking: leaves before operators, then by id.
	if (h[i].op < 0) != (h[j].op < 0) {
		return h[i].op < 0
	}
	if h[i].op != h[j].op {
		return h[i].op < h[j].op
	}
	return h[i].object < h[j].object
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(node)) }
func (h *nodeHeap) Pop() any     { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }

// Volume returns the total intermediate data volume of a tree: the sum of
// delta_i over all operators, which the Huffman shape minimizes.
func Volume(t *apptree.Tree, sizes []float64) float64 {
	_, delta := t.Derive(sizes, 1)
	v := 0.0
	for _, d := range delta {
		v += d
	}
	return v
}

// Candidate is one rewriting with its solved cost.
type Candidate struct {
	Name   string
	Tree   *apptree.Tree
	Result *heuristics.Result // nil when infeasible
	Err    error
}

// Optimize treats the instance's application as mutable: its leaf objects
// are recombined as (a) the original tree, (b) a left-deep chain in
// non-decreasing size order, and (c) the Huffman tree, each solved with
// the given heuristic; candidates are returned sorted by cost (infeasible
// last) so the first entry is the recommended rewrite.
func Optimize(in *instance.Instance, h heuristics.Heuristic, opts heuristics.Options) ([]Candidate, error) {
	objects := make([]int, 0, in.Tree.NumLeaves())
	for _, l := range in.Tree.Leaves {
		objects = append(objects, l.Object)
	}
	if len(objects) < 2 {
		return nil, fmt.Errorf("rewrite: application has fewer than two inputs")
	}
	sortedObjs := append([]int(nil), objects...)
	sort.Slice(sortedObjs, func(a, b int) bool {
		if in.Sizes[sortedObjs[a]] != in.Sizes[sortedObjs[b]] {
			return in.Sizes[sortedObjs[a]] < in.Sizes[sortedObjs[b]]
		}
		return sortedObjs[a] < sortedObjs[b]
	})

	cands := []Candidate{
		{Name: "original", Tree: in.Tree},
		{Name: "sorted-chain", Tree: apptree.LeftDeep(sortedObjs)},
		{Name: "huffman", Tree: Huffman(objects, in.Sizes)},
	}
	for i := range cands {
		variant := *in
		variant.Tree = cands[i].Tree
		variant.Refresh()
		if err := variant.Validate(); err != nil {
			return nil, fmt.Errorf("rewrite: %s variant invalid: %v", cands[i].Name, err)
		}
		cands[i].Result, cands[i].Err = heuristics.Solve(&variant, h, opts)
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		switch {
		case ca.Err == nil && cb.Err == nil:
			return ca.Result.Cost < cb.Result.Cost
		case ca.Err == nil:
			return true
		default:
			return false
		}
	})
	if cands[0].Err != nil {
		return cands, fmt.Errorf("rewrite: no variant is feasible: %w", cands[0].Err)
	}
	return cands, nil
}
