package rng

import (
	"testing"
	"testing/quick"
)

func TestSeedForMatchesDerive(t *testing.T) {
	// Derive must remain a pure function of SeedFor, so parallel work
	// items can ship the int64 across goroutines and reconstruct the
	// exact same stream locally.
	a := Derive(42, "heuristic:Random")
	b := New(SeedFor(42, "heuristic:Random"))
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("stream diverges at draw %d", i)
		}
	}
	if SeedFor(1, "x") == SeedFor(2, "x") || SeedFor(1, "x") == SeedFor(1, "y") {
		t.Fatal("SeedFor collides on distinct inputs")
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	if SplitMix64(42) != SplitMix64(42) {
		t.Fatal("SplitMix64 is not deterministic")
	}
	if SplitMix64(42) == SplitMix64(43) {
		t.Fatal("SplitMix64(42) == SplitMix64(43): suspicious collision")
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := SplitMix64(0x123456789abcdef)
	flip := SplitMix64(0x123456789abcdee)
	diff := base ^ flip
	ones := 0
	for diff != 0 {
		ones += int(diff & 1)
		diff >>= 1
	}
	if ones < 16 || ones > 48 {
		t.Fatalf("poor avalanche: %d differing bits", ones)
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	a := Derive(1, "tree")
	b := Derive(1, "sizes")
	c := Derive(1, "tree")
	va, vb, vc := a.Int63(), b.Int63(), c.Int63()
	if va != vc {
		t.Fatalf("same (seed,label) gave different streams: %d vs %d", va, vc)
	}
	if va == vb {
		t.Fatalf("different labels gave identical streams: %d", va)
	}
}

func TestDeriveDifferentSeeds(t *testing.T) {
	if Derive(1, "x").Int63() == Derive(2, "x").Int63() {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestUniformInRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		v := UniformIn(r, 5, 30)
		if v < 5 || v >= 30 {
			t.Fatalf("UniformIn out of range: %v", v)
		}
	}
}

func TestPickDistinct(t *testing.T) {
	r := New(11)
	for k := 0; k <= 6; k++ {
		got := PickDistinct(r, 6, k)
		if len(got) != k {
			t.Fatalf("PickDistinct(6,%d) returned %d values", k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 6 {
				t.Fatalf("value out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("duplicate value: %d", v)
			}
			seen[v] = true
		}
	}
}

func TestPickDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	PickDistinct(New(1), 3, 4)
}

func TestPickDistinctProperty(t *testing.T) {
	f := func(seed int64, n, k uint8) bool {
		nn := int(n%20) + 1
		kk := int(k) % (nn + 1)
		got := PickDistinct(New(seed), nn, kk)
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= nn || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(got) == kk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReseedMatchesDerive(t *testing.T) {
	r := New(99)
	r.Int63() // desync, Reseed must fully rewind
	Reseed(r, 42, "tree")
	want := Derive(42, "tree")
	for i := 0; i < 50; i++ {
		if a, b := r.Int63(), want.Int63(); a != b {
			t.Fatalf("draw %d: %d != %d", i, a, b)
		}
	}
}

func TestPickDistinctIntoMatchesPickDistinct(t *testing.T) {
	// Same picks AND same stream consumption: downstream draws must
	// align too.
	r1, r2 := New(7), New(7)
	perm := make([]int, 10)
	var out []int
	for i := 0; i < 30; i++ {
		n, k := 10, i%11
		a := PickDistinct(r1, n, k)
		b := PickDistinctInto(r2, n, k, out[:0], perm)
		out = b
		if len(a) != len(b) {
			t.Fatalf("round %d: lengths differ", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("round %d: picks differ at %d", i, j)
			}
		}
		if r1.Int63() != r2.Int63() {
			t.Fatalf("round %d: streams diverged", i)
		}
	}
}

// TestSeedFor2MatchesConcat pins the split-label derivation to the
// canonical one: SeedFor2(s, a, b) must equal SeedFor(s, a+b) for any
// split, so the allocation-free hot path cannot drift from the
// documented scheme.
func TestSeedFor2MatchesConcat(t *testing.T) {
	cases := []struct{ a, b string }{
		{"heuristic:", "Subtree-bottom-up"},
		{"selection:", "Random"},
		{"", "whole"},
		{"whole", ""},
		{"", ""},
	}
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		for _, c := range cases {
			if got, want := SeedFor2(seed, c.a, c.b), SeedFor(seed, c.a+c.b); got != want {
				t.Fatalf("SeedFor2(%d, %q, %q) = %d, want %d", seed, c.a, c.b, got, want)
			}
		}
	}
}
