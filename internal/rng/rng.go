// Package rng provides small deterministic random-number helpers used by
// the instance generators and experiments.
//
// Every experiment in this repository is reproducible from a single int64
// seed. Sub-streams are derived with SplitMix64 so that, e.g., the tree
// shape, the object sizes, and the server placement of one instance are
// decorrelated yet individually stable when other parameters change.
package rng

import "math/rand"

// SplitMix64 advances and hashes a 64-bit state. It is the standard
// splitmix64 finalizer (Steele et al.), good enough to seed independent
// math/rand streams.
func SplitMix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeedFor returns the deterministic sub-seed that Derive uses for
// (seed, label). It is exported so parallel work items can carry a
// plain int64 across goroutine boundaries instead of sharing a
// *rand.Rand: hand each item SeedFor(base, itemLabel) and let it
// Derive its own streams locally.
func SeedFor(seed int64, label string) int64 {
	h := uint64(seed)
	for _, b := range []byte(label) {
		h = SplitMix64(h ^ uint64(b))
	}
	return int64(SplitMix64(h))
}

// SeedFor2 is SeedFor over the concatenation a+b without materializing
// it: the hash consumes the bytes of a then the bytes of b, so
// SeedFor2(s, a, b) == SeedFor(s, a+b) for all inputs. Hot paths that
// build labels like "heuristic:"+name per call use it to keep seed
// derivation allocation-free.
func SeedFor2(seed int64, a, b string) int64 {
	h := uint64(seed)
	for _, c := range []byte(a) {
		h = SplitMix64(h ^ uint64(c))
	}
	for _, c := range []byte(b) {
		h = SplitMix64(h ^ uint64(c))
	}
	return int64(SplitMix64(h))
}

// Derive returns a new seeded *rand.Rand whose stream is a deterministic
// function of (seed, label). Distinct labels give decorrelated streams.
func Derive(seed int64, label string) *rand.Rand {
	return rand.New(rand.NewSource(SeedFor(seed, label)))
}

// Reseed rewinds an existing *rand.Rand to the exact stream Derive(seed,
// label) would start, without allocating a new generator. Scratch-reusing
// generators (instance.Generator) hold their streams across calls and
// Reseed them per seed.
func Reseed(r *rand.Rand, seed int64, label string) {
	r.Seed(SeedFor(seed, label))
}

// Reseed2 is Reseed with the label split as in SeedFor2:
// Reseed2(r, s, a, b) rewinds r to the stream of Derive(s, a+b) without
// concatenating the label.
func Reseed2(r *rand.Rand, seed int64, a, b string) {
	r.Seed(SeedFor2(seed, a, b))
}

// New returns a seeded *rand.Rand.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// UniformIn returns a pseudo-random float64 in [lo, hi) drawn from r.
func UniformIn(r *rand.Rand, lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// PickDistinct returns k distinct pseudo-random integers in [0, n),
// in random order. It panics if k > n or k < 0.
func PickDistinct(r *rand.Rand, n, k int) []int {
	return PickDistinctInto(r, n, k, make([]int, 0, k), make([]int, n))
}

// PickDistinctInto is PickDistinct appending into out (reusing its
// capacity) with perm as permutation scratch (len >= n). It consumes
// exactly the same stream from r as PickDistinct — a full n-element
// Fisher-Yates — so reusing scratch never changes downstream draws.
func PickDistinctInto(r *rand.Rand, n, k int, out, perm []int) []int {
	if k < 0 || k > n {
		panic("rng: PickDistinct: k out of range")
	}
	// rand.Perm's loop, into scratch: same Intn sequence, no allocation.
	perm = perm[:n]
	for i := 0; i < n; i++ {
		j := r.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
	return append(out[:0], perm[:k]...)
}
