// Package stats provides the small set of summary statistics the
// experiment harness reports (means, deviations, normal-approximation
// confidence intervals).
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator; 0 for
// fewer than two values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under the normal approximation (1.96 sigma / sqrt(n)).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min returns the smallest value (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary is a one-line numeric digest.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs), Min: Min(xs), Max: Max(xs)}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", s.N, s.Mean, s.Std, s.Min, s.Max)
}
