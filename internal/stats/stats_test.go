package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of one value != 0")
	}
	// Known sample: {2,4,4,4,5,5,7,9} has sample stddev sqrt(32/7).
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	want := 1.96 * StdDev(xs) / math.Sqrt(5)
	if got := CI95(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI95 of one value != 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty Min/Max not NaN")
	}
}

func TestSummary(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip values whose running sum could overflow float64.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
