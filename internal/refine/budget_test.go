package refine

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/instance"
	"repro/internal/mapping"
)

// TestBudgetTinyStillValid: a deadline too small to run a single
// annealing step must still return a valid result that is never worse
// than the best constructive seed — the anytime contract the churn
// repair path and the serve daemon rely on.
func TestBudgetTinyStillValid(t *testing.T) {
	for _, n := range []int{12, 30} {
		for seed := int64(1); seed <= 3; seed++ {
			in := instance.Generate(instance.Config{NumOps: n, Alpha: 1.6}, seed)
			best := bestConstructive(t, in, seed)
			if math.IsInf(best, 1) {
				continue
			}
			res, err := Refine(in, Options{Seed: seed, Budget: time.Nanosecond})
			if err != nil {
				t.Fatalf("N=%d seed=%d: %v", n, seed, err)
			}
			if err := res.Mapping.Validate(); err != nil {
				t.Fatalf("N=%d seed=%d: budgeted result invalid: %v", n, seed, err)
			}
			if res.Cost > best+mapping.Eps {
				t.Fatalf("N=%d seed=%d: budgeted cost %v worse than constructive seed %v",
					n, seed, res.Cost, best)
			}
		}
	}
}

// TestBudgetUnlimitedMatchesNoBudget: a deadline far in the future must
// not change the trajectory — the budget only ever truncates.
func TestBudgetUnlimitedMatchesNoBudget(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 24, Alpha: 1.6}, 9)
	free, err := Refine(in, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	far, err := Refine(in, Options{Seed: 9, Budget: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if free.Cost != far.Cost || free.Procs != far.Procs {
		t.Fatalf("hour-long budget changed the result: cost %v vs %v", far.Cost, free.Cost)
	}
}

// TestImproveInPlace: the in-place entry point refines a complete
// mapping without ever making it worse, and a cancelled context aborts
// with the incumbent (not garbage) installed.
func TestImproveInPlace(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 30, Alpha: 1.6}, 4)
	res, err := Refine(in, Options{Seed: 4, SAIters: 1, LNSRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mapping
	seedCost := m.Cost()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Improve(ctx, m, nil, Options{Seed: 4}); err != context.Canceled {
		t.Fatalf("cancelled Improve: got %v, want context.Canceled", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("mapping invalid after cancelled Improve: %v", err)
	}
	if m.Cost() > seedCost+mapping.Eps {
		t.Fatalf("cancelled Improve made the mapping worse: %v > %v", m.Cost(), seedCost)
	}

	if err := Improve(context.Background(), m, nil, Options{Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("mapping invalid after Improve: %v", err)
	}
	if m.Cost() > seedCost+mapping.Eps {
		t.Fatalf("Improve made the mapping worse: %v > %v", m.Cost(), seedCost)
	}
}
