// Package refine implements a local-search refinement layer on top of
// the constructive heuristics: simulated annealing plus a
// large-neighborhood (destroy/repair) search over operator moves,
// processor buys/sells and configuration swaps, seeded from the best
// constructive placement and driven entirely through the mapping move
// journal (mapping.Checkpoint/Rollback), so a rejected move costs one
// O(#records) rollback instead of a clone.
//
// The paper's six heuristics are one-shot constructions; PR 5 made
// Place/Unplace/TryPlace O(degree) with instant feasibility reads, which
// turns candidate-move evaluation into a commodity. This package spends
// that budget: Refine never returns a mapping worse than the best
// constructive seed (it falls back to the seed when no improving,
// selection-feasible state is found) and stops early when the seed
// already matches the analytic cost lower bound.
//
// The layer is exposed three ways: the Refine entry point mirrors
// heuristics.Solve; the Refined heuristic (registered with
// heuristics.Register under the name "Refined") makes it sweepable by
// name through the experiment Grid and CLIs next to the paper's six; and
// the root streamalloc package re-exports Refine/RefineOptions.
// Refinement is deterministic: all randomness flows from the solve
// pipeline's per-(seed, heuristic) stream, so results are byte-identical
// at any sweep worker count.
package refine
