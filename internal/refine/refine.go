package refine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"
	"time"

	"repro/internal/bounds"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/rng"
)

// Options tunes Refine. The zero value uses the defaults.
type Options struct {
	// Seed drives every random choice (candidate sub-streams, annealing
	// proposals and acceptances). Same seed, same result, regardless of
	// how many sweep workers run concurrently.
	Seed int64
	// SAIters bounds the simulated-annealing move budget;
	// 0 means 1200 + 60 per operator.
	SAIters int
	// LNSRounds bounds the large-neighborhood destroy/repair rounds run
	// after annealing; 0 means 8.
	LNSRounds int
	// Budget bounds the wall clock of the refinement loops (anytime
	// behaviour: at the deadline the best incumbent found so far is
	// returned, never worse than the constructive seed). The search
	// trajectory is a pure function of the seed and the number of steps
	// executed — the budget only decides how many steps that is — so two
	// runs that execute the same step count return identical results.
	// 0 means no deadline.
	Budget time.Duration
}

// Refine runs the full solve pipeline with the Refined heuristic:
// constructive seeding from the best of the paper's six heuristics,
// simulated annealing plus large-neighborhood search over the move
// journal, then server selection, downgrade and validation. The result
// never costs more than the best constructive solution, and the search
// stops early when the seed already matches the analytic lower bound.
func Refine(in *instance.Instance, opts Options) (*heuristics.Result, error) {
	return heuristics.Solve(in,
		Refined{SAIters: opts.SAIters, LNSRounds: opts.LNSRounds, Budget: opts.Budget},
		heuristics.Options{Seed: opts.Seed})
}

// Refined is the refinement layer as a placement Heuristic, so the sweep
// Grid and CLIs can run it by name next to the paper's six. It is
// registered with heuristics.ByName as "Refined" (zero-value options).
type Refined struct {
	SAIters   int           // see Options.SAIters
	LNSRounds int           // see Options.LNSRounds
	Budget    time.Duration // see Options.Budget
}

func init() { heuristics.Register(Refined{}) }

// Name implements heuristics.Heuristic.
func (Refined) Name() string { return "Refined" }

// refScratch is the pooled per-call state: a candidate-evaluation arena,
// the best-state snapshot arena and the index/position buffers.
type refScratch struct {
	sm    mapping.Mapping // candidate construction arena
	best  mapping.Mapping // best selection-feasible state found
	seeds []int64         // per-candidate placement sub-seeds
	costs []float64       // per-candidate seed cost (downgraded)
	order []int           // candidate indices by cost
	buPos []int           // operator -> bottom-up position
	bu    []int           // BottomUpInto buffers
	stack []int
	alive []int // alive-processor gather
	ops   []int // subtree / source-processor gather
	srcs  []int
}

var scratchPool = sync.Pool{New: func() any { return &refScratch{} }}

// Place implements heuristics.Heuristic: it fills m with the refined
// placement (server selection stays with the pipeline). The seed is the
// cheapest constructive placement (after a config refit, cost is
// placement-determined) that admits a three-loop server selection; the
// refinement only ever replaces it with cheaper selection-feasible
// states, so the refined cost never exceeds the best constructive cost.
func (h Refined) Place(pc *heuristics.PlaceContext, m *mapping.Mapping, r *rand.Rand) error {
	in := m.Inst
	sc := scratchPool.Get().(*refScratch)
	defer scratchPool.Put(sc)

	// The budget clock starts before seeding so the whole call is
	// bounded; a tiny budget still finishes the constructive seed (the
	// validity and never-worse guarantees need one) and only cuts the
	// refinement loops short.
	var deadline time.Time
	if h.Budget > 0 {
		deadline = time.Now().Add(h.Budget)
	}

	cands := heuristics.All()
	// Per-candidate placement streams, drawn up front in plot order so
	// evaluation order cannot perturb them.
	sc.seeds = sc.seeds[:0]
	for range cands {
		sc.seeds = append(sc.seeds, r.Int63())
	}

	// Pass 1: the downgraded cost of every constructive placement. Server
	// selection never changes the cost (NICLoad is fully determined by the
	// placement), so this is each candidate's final pipeline cost.
	sm := &sc.sm
	sm.SetJournal(false)
	sc.costs = sc.costs[:0]
	for i, ch := range cands {
		cost := math.Inf(1)
		if buildCandidate(pc, sm, in, ch, sc.seeds[i]) {
			cost = sm.Cost()
		}
		sc.costs = append(sc.costs, cost)
	}
	sc.order = sc.order[:0]
	for i := range cands {
		sc.order = append(sc.order, i)
	}
	slices.SortStableFunc(sc.order, func(a, b int) int {
		if sc.costs[a] < sc.costs[b] {
			return -1
		}
		if sc.costs[a] > sc.costs[b] {
			return 1
		}
		return a - b
	})

	// Pass 2: cheapest candidate whose placement admits a server
	// selection becomes the seed.
	winner := -1
	for _, i := range sc.order {
		if math.IsInf(sc.costs[i], 1) {
			break
		}
		buildCandidate(pc, sm, in, cands[i], sc.seeds[i])
		if heuristics.SelectServersThreeLoop(sm) == nil {
			winner = i
			break
		}
	}
	if winner < 0 {
		return fmt.Errorf("refine: no constructive seed admits a server selection: %w", heuristics.ErrInfeasible)
	}
	sm.ClearDownloads() // the pipeline re-selects on the final placement
	wasJournal := m.Journaling()
	m.CopyFrom(sm)

	lb := bounds.CostLowerBound(in)
	if m.Cost() <= lb+mapping.Eps {
		return nil // the seed is provably optimal; nothing to refine
	}

	sc.bu, sc.stack = in.Tree.BottomUpInto(sc.bu, sc.stack)
	sc.buPos = grow(sc.buPos, in.Tree.NumOps())
	for pos, op := range sc.bu {
		sc.buPos[op] = pos
	}

	m.SetJournal(true)
	rf := refiner{m: m, in: in, r: r, sc: sc, lb: lb, deadline: deadline,
		cat: in.Platform.Catalog, most: in.Platform.Catalog.MostExpensive()}
	rf.unit = rf.cat.Cost(platform.Config{}) // cheapest purchase: the move-cost scale
	rf.bestCost = m.Cost()
	sc.best.SetJournal(false)
	sc.best.CopyFrom(m)

	rf.run(h.SAIters, h.LNSRounds)
	m.CopyFrom(&sc.best)
	m.SetJournal(wasJournal)
	return nil
}

// run drives the annealing and LNS loops with their defaulted budgets;
// the refiner must be fully initialized and sc.best seeded.
func (rf *refiner) run(iters, rounds int) {
	if iters <= 0 {
		iters = 1200 + 60*rf.in.Tree.NumOps()
	}
	if rounds <= 0 {
		rounds = 8
	}
	rf.anneal(iters)
	for i := 0; i < rounds && rf.bestCost > rf.lb+mapping.Eps && !rf.stopNow(); i++ {
		rf.lnsRound()
	}
}

// Improve refines an existing complete placement of m in place: the
// current placement is the seed, and the annealing + LNS loops only ever
// replace it with cheaper selection-feasible states, so the result never
// costs more than the state passed in. It is the churn repair engine's
// local-search pass. The mapping must be complete; its placement must
// admit a three-loop server selection (else ErrInfeasible wraps the
// error and m is unchanged). Server selection is re-run on the refined
// placement before returning, so m is valid as-is; on heterogeneous
// catalogs callers wanting cost-minimal configurations additionally run
// Downgrade, as the solve pipeline does.
//
// r drives every random choice; a nil r derives one from opts.Seed.
// Cancelling ctx stops the search at the next step boundary and returns
// the incumbent in m together with the context error, so callers can
// distinguish "refined" from "cut short" while still holding a valid
// never-worse state.
func Improve(ctx context.Context, m *mapping.Mapping, r *rand.Rand, opts Options) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var deadline time.Time
	if opts.Budget > 0 {
		deadline = time.Now().Add(opts.Budget)
	}
	in := m.Inst
	if !m.Complete() {
		return fmt.Errorf("refine: Improve needs a complete placement")
	}
	if r == nil {
		r = rng.New(opts.Seed)
	}
	sc := scratchPool.Get().(*refScratch)
	defer scratchPool.Put(sc)

	wasJournal := m.Journaling()
	m.SetJournal(false) // discard any caller records; marks do not survive Improve
	m.ClearDownloads()  // selection is re-run on the refined placement
	m.SetJournal(true)

	// Seed feasibility, probed through the journal: the incumbent the
	// anytime contract falls back to must itself admit a selection.
	mark := m.Checkpoint()
	err := heuristics.SelectServersThreeLoop(m)
	m.Rollback(mark)
	if err != nil {
		m.SetJournal(wasJournal)
		return fmt.Errorf("refine: seed placement admits no server selection: %v: %w", err, heuristics.ErrInfeasible)
	}

	lb := bounds.CostLowerBound(in)
	if m.Cost() > lb+mapping.Eps {
		sc.bu, sc.stack = in.Tree.BottomUpInto(sc.bu, sc.stack)
		sc.buPos = grow(sc.buPos, in.Tree.NumOps())
		for pos, op := range sc.bu {
			sc.buPos[op] = pos
		}
		rf := refiner{m: m, in: in, r: r, sc: sc, lb: lb, ctx: ctx, deadline: deadline,
			cat: in.Platform.Catalog, most: in.Platform.Catalog.MostExpensive()}
		rf.unit = rf.cat.Cost(platform.Config{})
		rf.bestCost = m.Cost()
		sc.best.SetJournal(false)
		sc.best.CopyFrom(m)
		rf.run(opts.SAIters, opts.LNSRounds)
		m.CopyFrom(&sc.best)
	}
	// Re-run selection so the caller gets a valid mapping as-is; the
	// installed placement was probed above (or in noteBest), so this
	// cannot fail.
	m.SetJournal(false)
	if err := heuristics.SelectServersThreeLoop(m); err != nil {
		m.SetJournal(wasJournal)
		return fmt.Errorf("refine: refined placement admits no server selection: %v: %w", err, heuristics.ErrInfeasible)
	}
	m.SetJournal(wasJournal)
	return ctx.Err()
}

// PlaceUnassigned greedily places every unassigned operator of m,
// children before parents, each onto the alive processor — or a fresh
// purchase — that minimizes the refitted total cost (the same repair
// operator the LNS rounds use, probed and rolled back through the
// journal, ties to the lowest processor id). Afterwards every alive
// processor is refitted to the cheapest configuration sustaining its
// loads. It is deterministic, requires journaling to be enabled, and
// reports false when some operator fits nowhere — the mapping is then
// left mid-repair and the caller owns rolling back to its checkpoint.
func PlaceUnassigned(m *mapping.Mapping) bool {
	in := m.Inst
	sc := scratchPool.Get().(*refScratch)
	defer scratchPool.Put(sc)
	rf := refiner{m: m, in: in, sc: sc,
		cat: in.Platform.Catalog, most: in.Platform.Catalog.MostExpensive()}
	sc.bu, sc.stack = in.Tree.BottomUpInto(sc.bu, sc.stack)
	for _, op := range sc.bu {
		if m.OpProc(op) != mapping.Unassigned {
			continue
		}
		if !rf.repairOp(op) {
			return false
		}
	}
	for _, p := range rf.aliveInto() {
		rf.refit(p)
	}
	return true
}

// buildCandidate constructs heuristic ch's finished placement on the
// arena: place, sell empty processors, refit every configuration to its
// loads. Reports false when the placement fails.
func buildCandidate(pc *heuristics.PlaceContext, sm *mapping.Mapping, in *instance.Instance, ch heuristics.Heuristic, seed int64) bool {
	sm.Reset(in)
	if ch.Place(pc, sm, rng.New(seed)) != nil || !sm.Complete() {
		return false
	}
	for p := range sm.Procs {
		if sm.Procs[p].Alive && sm.NumOpsOn(p) == 0 {
			sm.Sell(p)
		}
	}
	if heuristics.Downgrade(sm) != nil {
		return false
	}
	return true
}

func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// refiner drives the annealing and destroy/repair loops over one
// journaled mapping.
type refiner struct {
	m        *mapping.Mapping
	in       *instance.Instance
	r        *rand.Rand
	sc       *refScratch
	cat      *platform.Catalog
	most     platform.Config
	lb       float64 // bounds.CostLowerBound: stop when reached
	unit     float64 // cheapest purchase cost: temperature scale
	bestCost float64

	ctx      context.Context // optional cancellation; nil means none
	deadline time.Time       // optional Options.Budget deadline; zero means none
	halted   bool            // latched once either signal fires
}

// stopCheckEvery throttles the annealing loop's clock polls: the budget
// and cancellation signals are sampled once per this many steps, keeping
// the hot loop free of time syscalls.
const stopCheckEvery = 16

// stopNow polls the cancellation and budget signals and latches the
// answer, so callers exit promptly without re-polling.
func (rf *refiner) stopNow() bool {
	if rf.halted {
		return true
	}
	if rf.ctx != nil && rf.ctx.Err() != nil {
		rf.halted = true
	} else if !rf.deadline.IsZero() && !time.Now().Before(rf.deadline) {
		rf.halted = true
	}
	return rf.halted
}

// stopAt is stopNow throttled to every stopCheckEvery-th annealing step.
func (rf *refiner) stopAt(i int) bool {
	if rf.halted {
		return true
	}
	if rf.ctx == nil && rf.deadline.IsZero() {
		return false
	}
	if i%stopCheckEvery != 0 {
		return false
	}
	return rf.stopNow()
}

// anneal runs the simulated-annealing loop: geometric cooling from half
// a purchase to one percent of one, journal rollback on rejection.
func (rf *refiner) anneal(iters int) {
	t0, tEnd := 0.5*rf.unit, 0.01*rf.unit
	decay := math.Pow(tEnd/t0, 1/float64(iters))
	temp := t0
	for i := 0; i < iters && rf.bestCost > rf.lb+mapping.Eps && !rf.stopAt(i); i++ {
		rf.step(temp)
		temp *= decay
	}
}

// step proposes one move and accepts it by the Metropolis rule.
func (rf *refiner) step(temp float64) {
	m := rf.m
	cur := m.Cost()
	mark := m.Checkpoint()
	newCost, ok := rf.propose()
	if !ok {
		m.Rollback(mark)
		return
	}
	delta := newCost - cur
	if delta <= mapping.Eps || rf.r.Float64() < math.Exp(-delta/temp) {
		m.CommitJournal()
		if newCost < rf.bestCost-mapping.Eps {
			rf.noteBest(newCost)
		}
	} else {
		m.Rollback(mark)
	}
}

// propose mutates the mapping by one tentative move and returns the new
// cost. On false the caller rolls the partial move back.
func (rf *refiner) propose() (float64, bool) {
	m, r := rf.m, rf.r
	n := rf.in.Tree.NumOps()
	switch r.Intn(4) {
	case 0: // move one operator onto an existing processor
		op := r.Intn(n)
		alive := rf.aliveInto()
		dst := alive[r.Intn(len(alive))]
		if dst == m.OpProc(op) {
			return 0, false
		}
		return rf.moveOps(dst, rf.oneOp(op))
	case 1: // split one operator out onto a fresh purchase
		op := r.Intn(n)
		if m.NumOpsOn(m.OpProc(op)) <= 1 {
			return 0, false // already alone: a pure relabeling
		}
		return rf.moveOps(m.Buy(rf.most), rf.oneOp(op))
	case 2: // merge one processor into another
		alive := rf.aliveInto()
		if len(alive) < 2 {
			return 0, false
		}
		from := alive[r.Intn(len(alive))]
		to := alive[r.Intn(len(alive))]
		if from == to {
			return 0, false
		}
		m.SetConfig(to, rf.most)
		if !m.MoveAll(from, to) {
			return 0, false
		}
		rf.refit(to)
		return m.Cost(), true
	default: // move a whole subtree onto an existing processor
		ops := rf.subtreeInto(r.Intn(n))
		alive := rf.aliveInto()
		dst := alive[r.Intn(len(alive))]
		return rf.moveOps(dst, ops)
	}
}

// oneOp returns the single-element operator list in reusable scratch.
func (rf *refiner) oneOp(op int) []int {
	rf.sc.ops = append(rf.sc.ops[:0], op)
	return rf.sc.ops
}

// moveOps moves ops onto dst (upgraded for the attempt), sells emptied
// source processors and refits every touched configuration.
func (rf *refiner) moveOps(dst int, ops []int) (float64, bool) {
	m := rf.m
	srcs := rf.sc.srcs[:0]
	for _, op := range ops {
		p := m.OpProc(op)
		if p == dst || p == mapping.Unassigned {
			continue
		}
		if !slices.Contains(srcs, p) {
			srcs = append(srcs, p)
		}
	}
	rf.sc.srcs = srcs
	if len(srcs) == 0 {
		return 0, false // nothing would change
	}
	m.SetConfig(dst, rf.most)
	if !m.TryPlace(dst, ops...) {
		return 0, false
	}
	for _, p := range srcs {
		if m.NumOpsOn(p) == 0 {
			m.Sell(p)
		} else {
			rf.refit(p)
		}
	}
	rf.refit(dst)
	return m.Cost(), true
}

// refit swaps p onto the cheapest configuration sustaining its current
// loads (never an upgrade: the current configuration fits by construction).
func (rf *refiner) refit(p int) {
	cfg, ok := rf.cat.CheapestFitting(rf.m.ComputeLoad(p), rf.m.NICLoad(p))
	if ok && rf.cat.Cost(cfg) <= rf.cat.Cost(rf.m.Procs[p].Config) {
		rf.m.SetConfig(p, cfg)
	}
}

// noteBest records the current state as the best found so far — if its
// placement admits a server selection (probed through the journal, so
// the mapping is left untouched).
func (rf *refiner) noteBest(cost float64) {
	m := rf.m
	mark := m.Checkpoint()
	err := heuristics.SelectServersThreeLoop(m)
	m.Rollback(mark)
	if err != nil {
		return
	}
	rf.bestCost = cost
	rf.sc.best.CopyFrom(m)
}

// aliveInto gathers the alive processor ids into reusable scratch.
func (rf *refiner) aliveInto() []int {
	rf.sc.alive = rf.sc.alive[:0]
	for p := range rf.m.Procs {
		if rf.m.Procs[p].Alive {
			rf.sc.alive = append(rf.sc.alive, p)
		}
	}
	return rf.sc.alive
}

// subtreeInto gathers op and its operator descendants into scratch.
func (rf *refiner) subtreeInto(root int) []int {
	sc := rf.sc
	sc.ops = sc.ops[:0]
	sc.stack = append(sc.stack[:0], root)
	for len(sc.stack) > 0 {
		op := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		sc.ops = append(sc.ops, op)
		sc.stack = append(sc.stack, rf.in.Tree.Ops[op].ChildOps...)
	}
	return sc.ops
}

// lnsRound destroys a random subtree's placement and repairs it greedily
// (each operator onto the processor minimizing the resulting cost,
// bottom-up), accepting only strict improvements.
func (rf *refiner) lnsRound() {
	m, r := rf.m, rf.r
	n := rf.in.Tree.NumOps()
	cur := m.Cost()
	mark := m.Checkpoint()
	ops := rf.subtreeInto(r.Intn(n))
	if len(ops) > max(3, n/2) {
		m.Rollback(mark) // destroying most of the tree is a re-solve, not a repair
		return
	}
	for _, op := range ops {
		p := m.OpProc(op)
		m.Unplace(op)
		if m.NumOpsOn(p) == 0 {
			m.Sell(p)
		}
	}
	// Repair children before parents so CommLoad sees settled neighbours.
	slices.SortFunc(ops, func(a, b int) int { return rf.sc.buPos[a] - rf.sc.buPos[b] })
	for _, op := range ops {
		if !rf.repairOp(op) {
			m.Rollback(mark)
			return
		}
	}
	for _, p := range rf.aliveInto() {
		rf.refit(p)
	}
	newCost := m.Cost()
	if newCost < cur-mapping.Eps {
		m.CommitJournal()
		if newCost < rf.bestCost-mapping.Eps {
			rf.noteBest(newCost)
		}
	} else {
		m.Rollback(mark)
	}
}

// repairOp places op onto the alive processor (or a fresh purchase)
// minimizing the refitted total cost; candidates are probed and rolled
// back through the journal. Ties resolve to the lowest processor id,
// fresh purchase last, so repair is deterministic.
func (rf *refiner) repairOp(op int) bool {
	m := rf.m
	// Probing mutates the processor set, so iterate over a snapshot.
	cands := append(rf.sc.srcs[:0], rf.aliveInto()...)
	rf.sc.srcs = cands
	bestCost := math.Inf(1)
	bestProc := -1
	fresh := false
	probe := func(dst int) (float64, bool) {
		mark := m.Checkpoint()
		m.SetConfig(dst, rf.most)
		ok := m.TryPlace(dst, op)
		var cost float64
		if ok {
			rf.refit(dst)
			cost = m.Cost()
		}
		m.Rollback(mark)
		return cost, ok
	}
	for _, q := range cands {
		if cost, ok := probe(q); ok && cost < bestCost {
			bestCost, bestProc = cost, q
		}
	}
	{
		mark := m.Checkpoint()
		q := m.Buy(rf.most)
		if m.TryPlace(q, op) {
			rf.refit(q)
			if cost := m.Cost(); cost < bestCost {
				bestCost, fresh = cost, true
			}
		}
		m.Rollback(mark)
	}
	switch {
	case fresh:
		q := m.Buy(rf.most)
		if !m.TryPlace(q, op) {
			return false
		}
		rf.refit(q)
	case bestProc >= 0:
		m.SetConfig(bestProc, rf.most)
		if !m.TryPlace(bestProc, op) {
			return false
		}
		rf.refit(bestProc)
	default:
		return false
	}
	return true
}
