package refine

import (
	"errors"
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
)

// bestConstructive runs the paper's six heuristics standalone and returns
// the cheapest feasible cost (Inf when all fail).
func bestConstructive(t *testing.T, in *instance.Instance, seed int64) float64 {
	t.Helper()
	best := math.Inf(1)
	for _, h := range heuristics.All() {
		res, err := heuristics.Solve(in, h, heuristics.Options{Seed: seed})
		if err != nil {
			if errors.Is(err, heuristics.ErrInfeasible) {
				continue
			}
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if res.Cost < best {
			best = res.Cost
		}
	}
	return best
}

// TestRefinedNeverWorseThanConstructive is the package's contract: on
// every instance where some constructive heuristic succeeds, Refine
// succeeds too and never costs more.
func TestRefinedNeverWorseThanConstructive(t *testing.T) {
	slow := platform.DefaultPlatform()
	slow.Catalog = platform.Homogeneous(0, 4)
	plats := map[string]*platform.Platform{
		"default": nil,
		"slowCPU": slow,
	}
	for pname, plat := range plats {
		for _, n := range []int{6, 12, 24, 48} {
			for seed := int64(1); seed <= 3; seed++ {
				in := instance.Generate(instance.Config{NumOps: n, Alpha: 1.6, Platform: plat}, seed)
				best := bestConstructive(t, in, seed)
				res, err := Refine(in, Options{Seed: seed})
				if err != nil {
					if errors.Is(err, heuristics.ErrInfeasible) && math.IsInf(best, 1) {
						continue
					}
					t.Fatalf("%s N=%d seed=%d: refine failed (best constructive %.3f): %v",
						pname, n, seed, best, err)
				}
				if err := res.Mapping.Validate(); err != nil {
					t.Fatalf("%s N=%d seed=%d: refined mapping invalid: %v", pname, n, seed, err)
				}
				if res.Cost > best+mapping.Eps {
					t.Errorf("%s N=%d seed=%d: refined cost %.6f exceeds best constructive %.6f",
						pname, n, seed, res.Cost, best)
				}
				if lb := bounds.CostLowerBound(in); res.Cost < lb-mapping.Eps {
					t.Errorf("%s N=%d seed=%d: refined cost %.6f below lower bound %.6f",
						pname, n, seed, res.Cost, lb)
				}
			}
		}
	}
}

// TestRefineImprovesSomewhere guards against the refinement silently
// degenerating into "return the seed": across a small sweep on the
// heterogeneous default catalog (where constructive over-buys leave
// room) it must beat the best constructive strictly at least once.
func TestRefineImprovesSomewhere(t *testing.T) {
	improved := 0
	cells := []struct {
		n     int
		alpha float64
	}{{20, 2.0}, {80, 1.6}}
	for _, c := range cells {
		for seed := int64(1); seed <= 4; seed++ {
			in := instance.Generate(instance.Config{NumOps: c.n, Alpha: c.alpha}, seed)
			best := bestConstructive(t, in, seed)
			res, err := Refine(in, Options{Seed: seed})
			if err != nil {
				continue
			}
			if res.Cost < best-mapping.Eps {
				improved++
			}
		}
	}
	if improved == 0 {
		t.Fatal("refinement never improved on the best constructive heuristic across the sweep")
	}
}

// TestRefineDeterministic: same seed, same result — byte-identical
// assignment, cost and processor count on repeated runs.
func TestRefineDeterministic(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 30, Alpha: 1.6}, 7)
	first, err := Refine(in, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := Refine(in, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if again.Cost != first.Cost || again.Procs != first.Procs {
			t.Fatalf("run %d: got cost=%v procs=%d, want cost=%v procs=%d",
				run, again.Cost, again.Procs, first.Cost, first.Procs)
		}
		for op, p := range first.Mapping.Assign {
			if again.Mapping.Assign[op] != p {
				t.Fatalf("run %d: operator %d on processor %d, want %d",
					run, op, again.Mapping.Assign[op], p)
			}
		}
	}
}

// TestRefineLeavesJournalOff: the returned mapping must not keep the
// internal refinement journal enabled (callers did not opt in).
func TestRefineLeavesJournalOff(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 16, Alpha: 1.6}, 3)
	res, err := Refine(in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.Journaling() {
		t.Fatal("returned mapping still has the journal enabled")
	}
	if err := res.Mapping.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRefinedByName: the heuristic is sweepable by its registered name.
func TestRefinedByName(t *testing.T) {
	h, err := heuristics.ByName("Refined")
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "Refined" {
		t.Fatalf("got %q", h.Name())
	}
	in := instance.Generate(instance.Config{NumOps: 12, Alpha: 1.6}, 5)
	res, err := heuristics.Solve(in, h, heuristics.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Refine(in, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != want.Cost {
		t.Fatalf("ByName cost %v != Refine cost %v", res.Cost, want.Cost)
	}
}
