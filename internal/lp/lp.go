// Package lp implements a small dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c'x
//	subject to  a_i'x  (<= | = | >=)  b_i      for every row i
//	            x >= 0
//
// It substitutes for the commercial CPLEX solver the paper used: the
// instances arising from the paper's experiments are tiny (tens of rows),
// so numerical sophistication is unnecessary — the solver favours
// robustness (Bland's anti-cycling rule after a degeneracy streak,
// explicit infeasibility/unboundedness detection) over speed.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a row relation.
type Rel int

// Row relations.
const (
	LE Rel = iota // a'x <= b
	EQ            // a'x  = b
	GE            // a'x >= b
)

// Problem is an LP in the package form. All rows must have len(C) columns.
type Problem struct {
	C   []float64   // objective coefficients (minimized)
	A   [][]float64 // constraint matrix
	B   []float64   // right-hand sides
	Rel []Rel       // row relations
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a successful Solve.
type Solution struct {
	Status    Status
	X         []float64 // primal values, len == len(Problem.C)
	Objective float64   // c'X (only meaningful when Status == Optimal)
}

// ErrBadProblem reports malformed input.
var ErrBadProblem = errors.New("lp: malformed problem")

const (
	tol      = 1e-9
	maxIters = 200000
)

// Solve runs two-phase simplex on p.
func Solve(p *Problem) (*Solution, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m || len(p.Rel) != m {
		return nil, fmt.Errorf("%w: %d rows, %d rhs, %d relations", ErrBadProblem, m, len(p.B), len(p.Rel))
	}
	for i, row := range p.A {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrBadProblem, i, len(row), n)
		}
	}

	// Canonical form: every row b_i >= 0 (flip rows), then add one slack
	// (LE), surplus (GE) or nothing (EQ) per row, plus one artificial per
	// EQ/GE row (and per flipped LE row, which became GE).
	type rowT struct {
		a   []float64
		b   float64
		rel Rel
	}
	rows := make([]rowT, m)
	for i := range p.A {
		a := append([]float64(nil), p.A[i]...)
		b := p.B[i]
		rel := p.Rel[i]
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = rowT{a, b, rel}
	}

	nSlack := 0
	nArt := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
		if r.rel != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Build tableau: m rows x total cols, basis per row.
	t := make([][]float64, m)
	basis := make([]int, m)
	rhs := make([]float64, m)
	slackAt := n
	artAt := n + nSlack
	for i, r := range rows {
		t[i] = make([]float64, total)
		copy(t[i], r.a)
		rhs[i] = r.b
		switch r.rel {
		case LE:
			t[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			t[i][slackAt] = -1
			slackAt++
			t[i][artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			t[i][artAt] = 1
			basis[i] = artAt
			artAt++
		}
	}

	// Phase 1: minimize the sum of artificials.
	enterLimit := total
	if nArt > 0 {
		obj := make([]float64, total)
		for j := n + nSlack; j < total; j++ {
			obj[j] = 1
		}
		v, err := runSimplex(t, rhs, basis, obj, total)
		if err != nil {
			return nil, err
		}
		if v > tol {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive leftover artificials out of the basis where possible; a
		// redundant row keeps its artificial basic at value 0, which is
		// harmless because phase 2 bars artificial columns from entering.
		for i := range basis {
			if basis[i] < n+nSlack {
				continue
			}
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(t[i][j]) > tol {
					pivot(t, rhs, basis, i, j)
					break
				}
			}
		}
		enterLimit = n + nSlack
	}

	// Phase 2: original objective (zero on slack and artificial columns).
	obj := make([]float64, total)
	copy(obj, p.C)
	if _, err := runSimplex(t, rhs, basis, obj, enterLimit); err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	x := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = rhs[i]
		}
	}
	objVal := 0.0
	for j := range x {
		objVal += p.C[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: objVal}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// runSimplex minimizes obj over the tableau in place and returns the final
// objective value. Basic solutions are kept primal feasible throughout.
// Only columns with index < enterLimit may enter the basis (phase 2 uses
// this to bar artificial columns).
func runSimplex(t [][]float64, rhs []float64, basis []int, obj []float64, enterLimit int) (float64, error) {
	m := len(t)
	if m == 0 {
		return 0, nil
	}
	total := enterLimit
	// Reduced costs: z_j - c_j computed from scratch each iteration (the
	// instances are small; clarity over speed).
	degenerate := 0
	for iter := 0; iter < maxIters; iter++ {
		// y = c_B' B^-1 is implicit: reduced cost r_j = c_j - sum_i c_B[i]*t[i][j].
		enter := -1
		var bestR float64
		useBland := degenerate > 50
		for j := 0; j < total; j++ {
			r := obj[j]
			for i := 0; i < m; i++ {
				if cb := obj[basis[i]]; cb != 0 {
					r -= cb * t[i][j]
				}
			}
			if r < -tol {
				if useBland {
					enter = j
					break
				}
				if enter == -1 || r < bestR {
					enter, bestR = j, r
				}
			}
		}
		if enter == -1 {
			v := 0.0
			for i := 0; i < m; i++ {
				v += obj[basis[i]] * rhs[i]
			}
			return v, nil
		}
		// Ratio test.
		leave := -1
		var bestRatio float64
		for i := 0; i < m; i++ {
			if t[i][enter] > tol {
				ratio := rhs[i] / t[i][enter]
				if leave == -1 || ratio < bestRatio-tol ||
					(math.Abs(ratio-bestRatio) <= tol && basis[i] < basis[leave]) {
					leave, bestRatio = i, ratio
				}
			}
		}
		if leave == -1 {
			return 0, errUnbounded
		}
		if bestRatio <= tol {
			degenerate++
		} else {
			degenerate = 0
		}
		pivot(t, rhs, basis, leave, enter)
	}
	return 0, errors.New("lp: iteration limit exceeded")
}

// pivot makes column enter basic in row leave.
func pivot(t [][]float64, rhs []float64, basis []int, leave, enter int) {
	piv := t[leave][enter]
	for j := range t[leave] {
		t[leave][j] /= piv
	}
	rhs[leave] /= piv
	for i := range t {
		if i == leave {
			continue
		}
		f := t[i][enter]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * t[leave][j]
		}
		rhs[i] -= f * rhs[leave]
		if math.Abs(rhs[i]) < 1e-12 {
			rhs[i] = 0
		}
	}
	basis[leave] = enter
}
