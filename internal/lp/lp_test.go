package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestSimple2D(t *testing.T) {
	// maximize x+y s.t. x+2y<=4, 3x+y<=6  => minimize -x-y.
	// Optimum at intersection: x=8/5, y=6/5, value 14/5.
	p := &Problem{
		C:   []float64{-1, -1},
		A:   [][]float64{{1, 2}, {3, 1}},
		B:   []float64{4, 6},
		Rel: []Rel{LE, LE},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective+14.0/5) > 1e-6 {
		t.Fatalf("objective = %v, want -2.8", s.Objective)
	}
	if math.Abs(s.X[0]-1.6) > 1e-6 || math.Abs(s.X[1]-1.2) > 1e-6 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// minimize 2x+3y s.t. x+y = 10, x >= 4  => x=10? No: y free to 0.
	// x+y=10, x>=4, minimize 2x+3y: prefer more x (cheaper) => x=10,y=0, obj 20.
	p := &Problem{
		C:   []float64{2, 3},
		A:   [][]float64{{1, 1}, {1, 0}},
		B:   []float64{10, 4},
		Rel: []Rel{EQ, GE},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-20) > 1e-6 {
		t.Fatalf("objective = %v, want 20", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		B:   []float64{1, 2},
		Rel: []Rel{LE, GE},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// minimize -x with only x >= 0.
	p := &Problem{
		C:   []float64{-1},
		A:   [][]float64{{1}},
		B:   []float64{1},
		Rel: []Rel{GE},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -3  <=>  x >= 3; minimize x => 3.
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{-1}},
		B:   []float64{-3},
		Rel: []Rel{LE},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-3) > 1e-6 {
		t.Fatalf("objective = %v, want 3", s.Objective)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Classic degeneracy: multiple constraints active at the optimum.
	p := &Problem{
		C: []float64{-2, -3},
		A: [][]float64{
			{1, 1},
			{1, 1},
			{2, 1},
		},
		B:   []float64{4, 4, 6},
		Rel: []Rel{LE, LE, LE},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective+12) > 1e-6 { // x=0,y=4 -> -12
		t.Fatalf("objective = %v, want -12", s.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows leave an artificial basic at zero; the
	// solver must still finish.
	p := &Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 1}, {1, 1}},
		B:   []float64{2, 2},
		Rel: []Rel{EQ, EQ},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-2) > 1e-6 {
		t.Fatalf("objective = %v, want 2", s.Objective)
	}
}

func TestMalformed(t *testing.T) {
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Rel: []Rel{LE}}); err == nil {
		t.Fatal("bad row width accepted")
	}
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}, Rel: []Rel{LE}}); err == nil {
		t.Fatal("rhs length mismatch accepted")
	}
}

// bruteForceLE exhaustively checks all basic solutions of a small LE-only
// problem by enumerating constraint subsets; used as an oracle.
func bruteForceLE(c []float64, a [][]float64, b []float64) (float64, bool) {
	n := len(c)
	m := len(a)
	best := math.Inf(1)
	found := false
	// Candidate vertices: intersections of n active constraints chosen
	// from the m rows plus the n axes x_j = 0.
	rows := make([][]float64, 0, m+n)
	rhs := make([]float64, 0, m+n)
	for i := 0; i < m; i++ {
		rows = append(rows, a[i])
		rhs = append(rhs, b[i])
	}
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		rows = append(rows, e)
		rhs = append(rhs, 0)
	}
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(rows, rhs, idx)
			if !ok {
				return
			}
			for j := range x {
				if x[j] < -1e-7 {
					return
				}
			}
			for i := 0; i < m; i++ {
				dot := 0.0
				for j := range x {
					dot += a[i][j] * x[j]
				}
				if dot > b[i]+1e-7 {
					return
				}
			}
			v := 0.0
			for j := range x {
				v += c[j] * x[j]
			}
			if v < best {
				best = v
				found = true
			}
			return
		}
		for i := start; i < len(rows); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// solveSquare solves the n x n system rows[idx] * x = rhs[idx] by Gaussian
// elimination; returns ok=false for singular systems.
func solveSquare(rows [][]float64, rhs []float64, idx []int) ([]float64, bool) {
	n := len(idx)
	a := make([][]float64, n)
	b := make([]float64, n)
	for i, ri := range idx {
		a[i] = append([]float64(nil), rows[ri]...)
		b[i] = rhs[ri]
	}
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if math.Abs(a[r][col]) > 1e-9 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[i] / a[i][i]
	}
	return x, true
}

func TestAgainstBruteForce(t *testing.T) {
	// Property: on random small bounded LE problems, simplex matches the
	// vertex-enumeration oracle.
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(2) // 2-3 variables
		m := 2 + r.Intn(3) // 2-4 constraints
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.UniformIn(r, -5, 5)
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.UniformIn(r, 0.1, 5) // positive rows: bounded feasible region
			}
			b[i] = rng.UniformIn(r, 1, 10)
		}
		rel := make([]Rel, m)
		p := &Problem{C: c, A: a, B: b, Rel: rel}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false // positive rows, positive rhs: origin is feasible and region bounded in the c<0 directions? c may be negative but rows positive => bounded
		}
		want, ok := bruteForceLE(c, a, b)
		if !ok {
			return false
		}
		return math.Abs(s.Objective-want) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
