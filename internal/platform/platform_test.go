package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1Reproduced(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot-check the exact Table 1 rows.
	wantCPUs := []struct{ ghz, up float64 }{
		{11.72, 0}, {19.20, 1550}, {25.60, 2399}, {38.40, 3949}, {46.88, 5299},
	}
	for i, w := range wantCPUs {
		if c.CPUs[i].SpeedGHz != w.ghz || c.CPUs[i].Upcharge != w.up {
			t.Fatalf("CPU row %d = %+v, want %+v", i, c.CPUs[i], w)
		}
	}
	wantNICs := []struct{ gbps, up float64 }{
		{1, 0}, {2, 399}, {4, 1197}, {10, 2800}, {20, 5999},
	}
	for i, w := range wantNICs {
		if c.NICs[i].Gbps != w.gbps || c.NICs[i].Upcharge != w.up {
			t.Fatalf("NIC row %d = %+v, want %+v", i, c.NICs[i], w)
		}
	}
}

func TestTable1Ratios(t *testing.T) {
	// The paper reports GHz/$ and Gbps/$ ratios; verify ours match to the
	// printed precision (2-3 significant digits).
	c := Default()
	// The paper's printed GHz/$ column matches base+upcharge only for the
	// first CPU row (1.55e-3); rows 2-5 of the printed column disagree
	// with the paper's own cost column by a constant ~$820, so we verify
	// the first row exactly and the qualitative property the paper uses
	// (faster CPUs have better GHz/$, i.e. the column is increasing).
	got0 := c.CPUs[0].SpeedGHz / (c.Base + c.CPUs[0].Upcharge)
	if math.Abs(got0-1.55e-3)/1.55e-3 > 0.01 {
		t.Fatalf("CPU ratio 0 = %v, want ~1.55e-3", got0)
	}
	prev := 0.0
	for i := range c.CPUs {
		r := c.CPUs[i].SpeedGHz / (c.Base + c.CPUs[i].Upcharge)
		if r <= prev {
			t.Fatalf("CPU GHz/$ not increasing at row %d", i)
		}
		prev = r
	}
	wantNIC := []float64{1.32e-4, 2.51e-4, 4.57e-4, 9.66e-4, 14.76e-4}
	for i, w := range wantNIC {
		got := c.NICs[i].Gbps / (c.Base + c.NICs[i].Upcharge)
		if math.Abs(got-w)/w > 0.01 {
			t.Fatalf("NIC ratio %d = %v, want ~%v", i, got, w)
		}
	}
}

func TestCost(t *testing.T) {
	c := Default()
	if got := c.Cost(Config{0, 0}); got != 7548 {
		t.Fatalf("cheapest config costs %v, want 7548", got)
	}
	if got := c.Cost(Config{4, 4}); got != 7548+5299+5999 {
		t.Fatalf("most expensive config costs %v, want %v", got, 7548+5299+5999.0)
	}
	if c.MostExpensive() != (Config{4, 4}) {
		t.Fatalf("MostExpensive = %+v", c.MostExpensive())
	}
}

func TestSpeedAndBandwidthUnits(t *testing.T) {
	c := Default()
	if got := c.SpeedUnits(Config{4, 4}); got != 46.88*WorkUnitsPerGHz {
		t.Fatalf("SpeedUnits = %v", got)
	}
	if got := c.BandwidthMBps(Config{0, 0}); got != 125 {
		t.Fatalf("1 Gbps NIC = %v MB/s, want 125", got)
	}
	if got := c.BandwidthMBps(Config{0, 4}); got != 2500 {
		t.Fatalf("20 Gbps NIC = %v MB/s, want 2500", got)
	}
}

func TestCheapestFitting(t *testing.T) {
	c := Default()
	// A tiny load fits the base config.
	cfg, ok := c.CheapestFitting(1000, 10)
	if !ok || cfg != (Config{0, 0}) {
		t.Fatalf("tiny load -> %+v ok=%v, want base config", cfg, ok)
	}
	// Load requiring the 25.60 GHz CPU and the 4 Gbps NIC.
	cfg, ok = c.CheapestFitting(20*WorkUnitsPerGHz, 300)
	if !ok || cfg != (Config{2, 2}) {
		t.Fatalf("mid load -> %+v ok=%v, want {2 2}", cfg, ok)
	}
	// Infeasible compute.
	if _, ok = c.CheapestFitting(47*WorkUnitsPerGHz, 0); ok {
		t.Fatal("infeasible compute load reported as fitting")
	}
	// Infeasible bandwidth.
	if _, ok = c.CheapestFitting(0, 2501); ok {
		t.Fatal("infeasible NIC load reported as fitting")
	}
	// Exact boundary fits.
	if _, ok = c.CheapestFitting(46.88*WorkUnitsPerGHz, 2500); !ok {
		t.Fatal("exact max load should fit")
	}
}

func TestCheapestFittingIsOptimal(t *testing.T) {
	// Property: CheapestFitting returns the min-cost feasible combo, as
	// verified by brute force over the 25 configurations.
	c := Default()
	f := func(wSeed, bSeed uint16) bool {
		w := float64(wSeed) / 65535 * 50 * WorkUnitsPerGHz
		bw := float64(bSeed) / 65535 * 2600
		got, ok := c.CheapestFitting(w, bw)
		bestCost := math.Inf(1)
		found := false
		for ci := range c.CPUs {
			for ni := range c.NICs {
				if c.SpeedUnits(Config{ci, ni}) >= w && c.BandwidthMBps(Config{ci, ni}) >= bw {
					found = true
					if cost := c.Cost(Config{ci, ni}); cost < bestCost {
						bestCost = cost
					}
				}
			}
		}
		if found != ok {
			return false
		}
		return !ok || c.Cost(got) == bestCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHomogeneous(t *testing.T) {
	c := Homogeneous(2, 3)
	if !c.Homogeneous() {
		t.Fatal("Homogeneous catalog not homogeneous")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.CPUs[0].SpeedGHz != 25.60 || c.NICs[0].Gbps != 10 {
		t.Fatalf("wrong options selected: %+v", c)
	}
	if Default().Homogeneous() {
		t.Fatal("default catalog must not be homogeneous")
	}
}

func TestDefaultPlatform(t *testing.T) {
	p := DefaultPlatform()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Servers) != 6 {
		t.Fatalf("want 6 servers, got %d", len(p.Servers))
	}
	for _, s := range p.Servers {
		if s.NICMBps != 10000 {
			t.Fatalf("server NIC = %v, want 10000 MB/s", s.NICMBps)
		}
	}
	if p.ServerLinkMBps != 1000 || p.ProcLinkMBps != 1000 {
		t.Fatalf("links = %v/%v, want 1000/1000", p.ServerLinkMBps, p.ProcLinkMBps)
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	bad := Default()
	bad.CPUs[0].SpeedGHz = -1
	if bad.Validate() == nil {
		t.Fatal("negative speed not caught")
	}
	bad = Default()
	bad.CPUs[1].Upcharge = -5
	if bad.Validate() == nil {
		t.Fatal("negative upcharge not caught")
	}
	bad = Default()
	bad.NICs = nil
	if bad.Validate() == nil {
		t.Fatal("empty NIC list not caught")
	}
	bad = Default()
	bad.CPUs[0], bad.CPUs[1] = bad.CPUs[1], bad.CPUs[0]
	if bad.Validate() == nil {
		t.Fatal("unsorted CPUs not caught")
	}
	p := DefaultPlatform()
	p.Servers = nil
	if p.Validate() == nil {
		t.Fatal("no servers not caught")
	}
	p = DefaultPlatform()
	p.ProcLinkMBps = 0
	if p.Validate() == nil {
		t.Fatal("zero link bandwidth not caught")
	}
}
