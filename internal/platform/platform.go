// Package platform models the "constructive" compute platform of Benoit
// et al.: processors are purchased (or rented) from a price catalog of CPU
// and network-card options, data servers are fixed and free, and all
// resources obey the full-overlap bounded multi-port model.
//
// The default catalog reproduces the paper's Table 1 exactly (Dell
// PowerEdge R900 configurations, March 2008): a base chassis at $7,548
// plus a CPU upcharge and a NIC upcharge.
//
// # Units
//
// The paper mixes GB and Gb and leaves the GHz-to-operations scale
// implicit; this package fixes the units used throughout the repository:
//
//   - data sizes are in MB,
//   - bandwidths are in MB/s (catalog NICs are Gbps x 125),
//   - CPU work is in abstract work-units, with a processor of speed s GHz
//     sustaining s x WorkUnitsPerGHz units/s.
//
// WorkUnitsPerGHz is the single calibration constant of the reproduction:
// it was chosen so that the feasibility thresholds in alpha land where the
// paper reports them (see DESIGN.md section 3).
package platform

import "fmt"

// BaseChassisCost is the Table 1 base price in dollars shared by every
// processor configuration.
const BaseChassisCost = 7548.0

// WorkUnitsPerGHz converts catalog GHz figures into work-units/s; work for
// an operator is (delta_l+delta_r)^alpha with delta in MB.
//
// The value 6000 makes the fastest CPU sustain 46.88 x 6000 = 281,280
// units/s, which places the paper's three reported feasibility anchors
// where it reports them: trees of 60 operators become unmappable just
// above alpha = 1.8 (root work (1068 MB)^1.8 = 2.8e5), trees of 20
// operators just above alpha = 2.1-2.2, and at alpha = 1.7 mappings
// disappear beyond roughly 80-90 operators.
const WorkUnitsPerGHz = 6000.0

// MBpsPerGbps converts the catalog's Gbps NIC figures to MB/s.
const MBpsPerGbps = 125.0

// CPUOption is one row of the CPU half of Table 1.
type CPUOption struct {
	SpeedGHz float64 // aggregate compute speed
	Upcharge float64 // dollars on top of the base chassis
}

// NICOption is one row of the network-card half of Table 1.
type NICOption struct {
	Gbps     float64
	Upcharge float64
}

// MBps returns the NIC bandwidth in MB/s.
func (n NICOption) MBps() float64 { return n.Gbps * MBpsPerGbps }

// Config identifies a purchasable processor configuration by its CPU and
// NIC indices into a Catalog.
type Config struct {
	CPU int
	NIC int
}

// Catalog is the set of purchasable CPU and NIC options. CPUs and NICs
// must each be sorted by non-decreasing capability (the constructors
// guarantee this for the defaults).
type Catalog struct {
	CPUs []CPUOption
	NICs []NICOption
	Base float64 // chassis cost added to every configuration
}

// Default returns the paper's Table 1 catalog (CONSTR-LAN: all 25 CPU x
// NIC combinations are purchasable).
func Default() *Catalog {
	return &Catalog{
		CPUs: []CPUOption{
			{SpeedGHz: 11.72, Upcharge: 0},
			{SpeedGHz: 19.20, Upcharge: 1550},
			{SpeedGHz: 25.60, Upcharge: 2399},
			{SpeedGHz: 38.40, Upcharge: 3949},
			{SpeedGHz: 46.88, Upcharge: 5299},
		},
		NICs: []NICOption{
			{Gbps: 1, Upcharge: 0},
			{Gbps: 2, Upcharge: 399},
			{Gbps: 4, Upcharge: 1197},
			{Gbps: 10, Upcharge: 2800},
			{Gbps: 20, Upcharge: 5999},
		},
		Base: BaseChassisCost,
	}
}

// Homogeneous returns a single-configuration catalog (the paper's
// CONSTR-HOM scenario) built from the given option of the default catalog.
func Homogeneous(cpu, nic int) *Catalog {
	d := Default()
	return &Catalog{
		CPUs: []CPUOption{d.CPUs[cpu]},
		NICs: []NICOption{d.NICs[nic]},
		Base: d.Base,
	}
}

// Homogeneous reports whether the catalog offers a single configuration.
func (c *Catalog) Homogeneous() bool { return len(c.CPUs) == 1 && len(c.NICs) == 1 }

// Validate checks catalog sanity: non-empty, positive capabilities,
// options sorted by capability with costs non-decreasing.
func (c *Catalog) Validate() error {
	if len(c.CPUs) == 0 || len(c.NICs) == 0 {
		return fmt.Errorf("platform: catalog needs at least one CPU and one NIC option")
	}
	for i, o := range c.CPUs {
		if o.SpeedGHz <= 0 || o.Upcharge < 0 {
			return fmt.Errorf("platform: CPU option %d has invalid values %+v", i, o)
		}
		if i > 0 && (o.SpeedGHz < c.CPUs[i-1].SpeedGHz || o.Upcharge < c.CPUs[i-1].Upcharge) {
			return fmt.Errorf("platform: CPU options not sorted at %d", i)
		}
	}
	for i, o := range c.NICs {
		if o.Gbps <= 0 || o.Upcharge < 0 {
			return fmt.Errorf("platform: NIC option %d has invalid values %+v", i, o)
		}
		if i > 0 && (o.Gbps < c.NICs[i-1].Gbps || o.Upcharge < c.NICs[i-1].Upcharge) {
			return fmt.Errorf("platform: NIC options not sorted at %d", i)
		}
	}
	if c.Base < 0 {
		return fmt.Errorf("platform: negative base cost")
	}
	return nil
}

// Cost returns the purchase price of a configuration in dollars.
func (c *Catalog) Cost(cfg Config) float64 {
	return c.Base + c.CPUs[cfg.CPU].Upcharge + c.NICs[cfg.NIC].Upcharge
}

// SpeedUnits returns the configuration's compute rate in work-units/s.
func (c *Catalog) SpeedUnits(cfg Config) float64 {
	return c.CPUs[cfg.CPU].SpeedGHz * WorkUnitsPerGHz
}

// BandwidthMBps returns the configuration's NIC bandwidth in MB/s.
func (c *Catalog) BandwidthMBps(cfg Config) float64 {
	return c.NICs[cfg.NIC].MBps()
}

// MostExpensive returns the most powerful (and priciest) configuration:
// fastest CPU with the widest NIC. The placement heuristics buy these
// first and rely on the later downgrade step for cost.
func (c *Catalog) MostExpensive() Config {
	return Config{CPU: len(c.CPUs) - 1, NIC: len(c.NICs) - 1}
}

// CheapestFitting returns the least expensive configuration able to
// sustain the given compute load (work-units/s) and NIC load (MB/s), and
// whether one exists. Ties are broken toward smaller capability.
func (c *Catalog) CheapestFitting(workUnits, bwMBps float64) (Config, bool) {
	best := Config{}
	bestCost := -1.0
	for ci := range c.CPUs {
		if c.CPUs[ci].SpeedGHz*WorkUnitsPerGHz < workUnits {
			continue
		}
		for ni := range c.NICs {
			if c.NICs[ni].MBps() < bwMBps {
				continue
			}
			cost := c.Cost(Config{ci, ni})
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				best = Config{ci, ni}
			}
			break // NICs sorted by cost: the first fitting NIC is cheapest for this CPU
		}
	}
	return best, bestCost >= 0
}

// Server is a fixed data server with a NIC of the given bandwidth. Servers
// are not purchased; they host and continuously update basic objects.
type Server struct {
	NICMBps float64
}

// Platform bundles the purchase catalog with the fixed data-server fleet
// and the (uniform) link bandwidths of the paper's model: every
// server-to-processor link has bandwidth ServerLinkMBps (the paper's bs)
// and every processor-to-processor link ProcLinkMBps (bp).
type Platform struct {
	Catalog        *Catalog
	Servers        []Server
	ServerLinkMBps float64
	ProcLinkMBps   float64
}

// DefaultPlatform returns the paper's Section 5 setting: 6 servers with
// 10 GB/s NICs, and 1 GB/s links between all resources, over the Table 1
// catalog.
func DefaultPlatform() *Platform {
	servers := make([]Server, 6)
	for i := range servers {
		servers[i] = Server{NICMBps: 10000}
	}
	return &Platform{
		Catalog:        Default(),
		Servers:        servers,
		ServerLinkMBps: 1000,
		ProcLinkMBps:   1000,
	}
}

// Validate checks platform sanity.
func (p *Platform) Validate() error {
	if p.Catalog == nil {
		return fmt.Errorf("platform: nil catalog")
	}
	if err := p.Catalog.Validate(); err != nil {
		return err
	}
	if len(p.Servers) == 0 {
		return fmt.Errorf("platform: no data servers")
	}
	for i, s := range p.Servers {
		if s.NICMBps <= 0 {
			return fmt.Errorf("platform: server %d has non-positive NIC bandwidth", i)
		}
	}
	if p.ServerLinkMBps <= 0 || p.ProcLinkMBps <= 0 {
		return fmt.Errorf("platform: non-positive link bandwidth")
	}
	return nil
}
