package coord

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// frameRecords encodes a sequence of records into one journal byte
// stream, assigning LSNs 1..n.
func frameRecords(t *testing.T, recs []record) []byte {
	t.Helper()
	var out []byte
	for i := range recs {
		recs[i].LSN = uint64(i + 1)
		payload, err := json.Marshal(&recs[i])
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		out = frameRecord(out, payload)
	}
	return out
}

func sampleRecords() []record {
	return []record{
		{Type: recSubmit, Job: "j1", Seq: 1, Spec: &SweepJob{Figure: "fig2a", Seeds: 2, Shards: 3, LeaseTTLMS: 30_000}},
		{Type: recClaim, Job: "j1", Shard: 0, Seq: 2, Token: "t2", Worker: "w1", Deadline: 1_000_030_000_000_000_000},
		{Type: recRenew, Job: "j1", Shard: 0, Token: "t2", Deadline: 1_000_060_000_000_000_000},
		{Type: recComplete, Job: "j1", Shard: 0, Worker: "w1", Cells: []byte("streamalloc-cells/v1 ...")},
		{Type: recDuplicate, Job: "j1", Shard: 0},
		{Type: recMerge, Job: "j1", Dat: []byte("# merged"), MergeNS: 12345},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	want := sampleRecords()
	data := frameRecords(t, want)
	got, valid := decodeJournal(data)
	if valid != len(data) {
		t.Fatalf("valid prefix %d, want the whole %d bytes", valid, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		gj, _ := json.Marshal(got[i])
		wj, _ := json.Marshal(want[i])
		if !bytes.Equal(gj, wj) {
			t.Errorf("record %d: got %s, want %s", i, gj, wj)
		}
	}
}

// TestJournalTruncatedTail: a frame cut anywhere — header or payload —
// must yield exactly the records before it, never a partial one.
func TestJournalTruncatedTail(t *testing.T) {
	recs := sampleRecords()
	full := frameRecords(t, recs)
	// Find the byte offsets where each record's frame ends.
	var ends []int
	off := 0
	for off < len(full) {
		n := int(binary.LittleEndian.Uint32(full[off : off+4]))
		off += 8 + n
		ends = append(ends, off)
	}
	for cut := 0; cut <= len(full); cut++ {
		got, valid := decodeJournal(full[:cut])
		wantN := 0
		for _, e := range ends {
			if e <= cut {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut at %d: decoded %d records, want %d", cut, len(got), wantN)
		}
		if wantN > 0 && valid != ends[wantN-1] {
			t.Fatalf("cut at %d: valid prefix %d, want %d", cut, valid, ends[wantN-1])
		}
	}
}

// TestJournalBitFlip: flipping any single byte invalidates the record
// it lands in (checksum, length or framing) and every record after it,
// but never resurrects garbage or panics.
func TestJournalBitFlip(t *testing.T) {
	recs := sampleRecords()
	full := frameRecords(t, recs)
	clean, _ := decodeJournal(full)
	for pos := 0; pos < len(full); pos++ {
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0x40
		got, valid := decodeJournal(corrupt)
		if valid > len(corrupt) {
			t.Fatalf("flip at %d: valid prefix %d beyond data", pos, valid)
		}
		if len(got) >= len(clean) {
			// The flip may land in a JSON field without breaking framing
			// only if the checksum still matches — impossible for a single
			// byte flip with CRC32.
			t.Fatalf("flip at %d: decoded %d records, corruption undetected", pos, len(got))
		}
		// Every surviving record must be one of the originals, byte-equal.
		for i := range got {
			gj, _ := json.Marshal(got[i])
			wj, _ := json.Marshal(clean[i])
			if !bytes.Equal(gj, wj) {
				t.Fatalf("flip at %d: surviving record %d differs: %s vs %s", pos, i, gj, wj)
			}
		}
	}
}

func TestJournalGarbageTail(t *testing.T) {
	recs := sampleRecords()
	full := frameRecords(t, recs)
	for _, tail := range [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3},     // absurd length
		{0, 0, 0, 0, 0, 0, 0, 0},                          // zero length
		bytes.Repeat([]byte{0xaa}, 100),                   // noise
		{5, 0, 0, 0, 1, 2, 3, 4, 'h', 'e', 'l', 'l', 'o'}, // bad checksum
	} {
		data := append(append([]byte(nil), full...), tail...)
		got, valid := decodeJournal(data)
		if len(got) != len(recs) || valid != len(full) {
			t.Fatalf("tail %x: decoded %d records valid %d, want %d records valid %d",
				tail, len(got), valid, len(recs), len(full))
		}
	}
}

// TestJournalNonIncreasingLSN: a replayed-back or duplicated frame
// (same or lower LSN) ends the scan — a hole or a rewind in the
// history must never be applied.
func TestJournalNonIncreasingLSN(t *testing.T) {
	recs := sampleRecords()[:2]
	full := frameRecords(t, recs)
	dup := append(append([]byte(nil), full...), full...) // LSN restarts at 1
	got, valid := decodeJournal(dup)
	if len(got) != 2 || valid != len(full) {
		t.Fatalf("duplicated journal: decoded %d records valid %d, want 2 records valid %d",
			len(got), valid, len(full))
	}
}

// FuzzJournalDecode: decodeJournal must never panic, must report a
// valid prefix bounded by the input, and re-decoding the valid prefix
// must reproduce exactly the same records (idempotent truncation —
// recovery truncates the file there and trusts the result).
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	clean := sampleRecords()
	var seedT testing.T
	full := frameRecords(&seedT, clean)
	f.Add(full)
	f.Add(full[:len(full)-3])
	flipped := append([]byte(nil), full...)
	flipped[9] ^= 0x01
	f.Add(flipped)
	f.Add(append(append([]byte(nil), full...), 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := decodeJournal(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of bounds [0, %d]", valid, len(data))
		}
		// Each record must frame back to a slice of the valid prefix, and
		// LSNs must be strictly increasing — a partial record can never
		// appear because its checksum cannot match.
		var last uint64
		for i := range recs {
			if recs[i].LSN <= last {
				t.Fatalf("record %d: LSN %d not above %d", i, recs[i].LSN, last)
			}
			last = recs[i].LSN
		}
		again, validAgain := decodeJournal(data[:valid])
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("re-decode of valid prefix: %d records valid %d, want %d records valid %d",
				len(again), validAgain, len(recs), valid)
		}
	})
}
