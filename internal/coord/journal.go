package coord

// The durable half of the coordinator: an append-only record journal
// plus periodic shard-table snapshots in Config.StateDir, so a
// restarted coordinator replays itself back into exactly the shard
// table it crashed with (see recovery.go).
//
// Journal format (journal.wal): a stream of framed records,
//
//	uint32 LE  payload length
//	uint32 LE  CRC32 (IEEE) of the payload
//	payload    one JSON-encoded record
//
// Records carry a strictly increasing LSN. Decoding stops at the first
// frame that fails the length bound, the checksum, JSON decoding or
// LSN monotonicity — everything before it is the valid prefix, and
// recovery truncates the file there, so a torn tail (machine crash
// mid-write) costs at most the records after the last good one and a
// partial record is never resurrected. FuzzJournalDecode pins this.
//
// Durability policy (group commit): every append is written to the
// file synchronously under the coordinator mutex — which is what makes
// replay equivalent to the live history — but fsync is batched:
// critical records (submit, complete, merge, open) sync immediately,
// while the claim/renew hot path only syncs when the group-commit
// window (Config.SyncInterval) has elapsed, when the next critical
// record lands, on snapshot, or on Close. Losing an unsynced
// claim/renew to a machine crash is safe: the shard recovers as
// pending, the re-issued lease gets a fresh token, and the old
// worker's stale token maps to ErrLeaseLost exactly like any other
// lost lease. (A process kill loses nothing: written bytes survive in
// the page cache.)
//
// Snapshots (snapshot.json): after Config.SnapshotEvery journal
// appends the whole shard table is marshalled to snapshot.json.tmp,
// fsynced, renamed over snapshot.json, and the journal is truncated to
// zero — the snapshot's LSN marks how much history it absorbs, so a
// crash between the rename and the truncate merely replays records the
// snapshot already covers (replay skips LSNs <= the snapshot's).

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

const (
	journalFileName  = "journal.wal"
	snapshotFileName = "snapshot.json"

	// maxRecordLen bounds a frame's declared payload length so a
	// corrupted length field cannot drive a huge allocation. Complete
	// records embed whole shard-cell artifacts (HTTP-capped well below
	// this), everything else is bookkeeping-sized.
	maxRecordLen = 256 << 20
)

// Record types, in the order they appear in a typical job's history.
const (
	recOpen      = "open"     // coordinator (re)opened the state dir; bumps the epoch
	recSubmit    = "submit"   // job registered
	recClaim     = "claim"    // shard leased (a claim over a still-leased shard implies an expiry)
	recRenew     = "renew"    // lease deadline extended
	recComplete  = "complete" // shard result accepted
	recDuplicate = "dup"      // late duplicate completion discarded
	recMerge     = "merge"    // final merge result (or failure) recorded
)

// record is one journal entry. A single struct covers every type;
// unused fields stay at their zero value and are omitted from the
// JSON payload.
type record struct {
	LSN  uint64 `json:"lsn"`
	Type string `json:"type"`

	// Epoch is the open count of the state dir (recOpen).
	Epoch int `json:"epoch,omitempty"`
	// Seq is the coordinator counter value the event consumed
	// (recSubmit, recClaim); replay raises the counter floor so
	// recovered ids and tokens never collide with pre-crash ones.
	Seq int `json:"seq,omitempty"`

	Job  string    `json:"job,omitempty"`
	Spec *SweepJob `json:"spec,omitempty"` // recSubmit, normalized (Seeds and LeaseTTLMS resolved)

	Shard  int    `json:"shard,omitempty"`
	Token  string `json:"token,omitempty"`
	Worker string `json:"worker,omitempty"`
	// Deadline is the lease deadline in Unix nanoseconds (recClaim,
	// recRenew). Absolute, so recovery needs no clock arithmetic:
	// recovered leases expire lazily against the live wall clock
	// exactly as they would have without the restart.
	Deadline int64 `json:"deadline,omitempty"`

	Cells []byte `json:"cells,omitempty"` // recComplete: the accepted shard artifact

	Dat     []byte `json:"dat,omitempty"`      // recMerge: merged figure bytes
	Failed  string `json:"failed,omitempty"`   // recMerge: merge error, if any
	MergeNS int64  `json:"merge_ns,omitempty"` // recMerge: merge latency
}

// critical reports whether the record must be fsynced before the
// operation that produced it returns (group commit never delays it).
func (r *record) critical() bool {
	switch r.Type {
	case recSubmit, recComplete, recMerge, recOpen:
		return true
	}
	return false
}

// frameRecord appends one framed record (header + payload) to dst.
func frameRecord(dst, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodeJournal scans data and returns every valid record plus the
// byte length of the valid prefix. It never fails: a frame with an
// impossible length, a checksum mismatch, undecodable JSON or a
// non-increasing LSN ends the scan, and the caller truncates the file
// there. Records after a corrupt one are unreachable by design — a
// hole in the history would make replay diverge from the live run.
func decodeJournal(data []byte) ([]record, int) {
	var recs []record
	off := 0
	var lastLSN uint64
	for len(data)-off >= 8 {
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n == 0 || n > maxRecordLen || int(n) > len(data)-off-8 {
			break
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			break
		}
		var r record
		if json.Unmarshal(payload, &r) != nil {
			break
		}
		if r.LSN <= lastLSN {
			break
		}
		lastLSN = r.LSN
		recs = append(recs, r)
		off += 8 + int(n)
	}
	return recs, off
}

// errJournalClosed: an append was attempted after Close (or after a
// write error poisoned the file).
var errJournalClosed = errors.New("journal closed")

// journal is the open WAL of a durable coordinator. All access is
// guarded by the coordinator mutex; appends happen inline in the
// operation that they record.
type journal struct {
	dir      string
	f        *os.File
	buf      []byte // reused frame buffer
	lsn      uint64 // last LSN written (or absorbed by the snapshot)
	dirty    bool   // written but not yet fsynced
	lastSync time.Time
	appends  int // appends since the last snapshot
	closed   bool
}

// append frames and writes r (assigning the next LSN), fsyncing per
// the group-commit policy. Returns the framed size and whether this
// append carried an fsync. A write error closes the journal: bytes
// may have landed torn, and appending after them would strand every
// later record behind an undecodable frame.
func (jn *journal) append(r *record, syncInterval time.Duration, now time.Time) (int, bool, error) {
	if jn.closed {
		return 0, false, errJournalClosed
	}
	r.LSN = jn.lsn + 1
	payload, err := json.Marshal(r)
	if err != nil {
		return 0, false, err
	}
	jn.buf = frameRecord(jn.buf[:0], payload)
	if _, err := jn.f.Write(jn.buf); err != nil {
		jn.closed = true
		return 0, false, err
	}
	jn.lsn++
	jn.appends++
	jn.dirty = true
	synced := false
	if r.critical() || now.Sub(jn.lastSync) >= syncInterval {
		if err := jn.f.Sync(); err != nil {
			jn.closed = true
			return len(jn.buf), false, err
		}
		jn.dirty = false
		jn.lastSync = now
		synced = true
	}
	return len(jn.buf), synced, nil
}

// sync flushes any batched (non-critical) appends to disk.
func (jn *journal) sync(now time.Time) error {
	if jn.closed || !jn.dirty {
		return nil
	}
	if err := jn.f.Sync(); err != nil {
		jn.closed = true
		return err
	}
	jn.dirty = false
	jn.lastSync = now
	return nil
}

// reset truncates the journal to zero after a snapshot absorbed its
// history. The LSN keeps counting — future records must stay above the
// snapshot's LSN so a stale journal tail is skipped on replay.
func (jn *journal) reset() error {
	if err := jn.f.Truncate(0); err != nil {
		return err
	}
	if _, err := jn.f.Seek(0, 0); err != nil {
		return err
	}
	jn.appends = 0
	jn.dirty = false
	return nil
}

// snapshotDoc is the snapshot.json document: the complete durable
// state of a coordinator at one LSN.
type snapshotDoc struct {
	Version int        `json:"version"`
	LSN     uint64     `json:"lsn"`
	Epoch   int        `json:"epoch"`
	Seq     int        `json:"seq"`
	Stats   SweepStats `json:"stats"`
	Jobs    []jobSnap  `json:"jobs"` // submission order
}

const snapshotVersion = 1

// jobSnap is one job's row in a snapshot.
type jobSnap struct {
	ID         string      `json:"id"`
	Spec       SweepJob    `json:"spec"`
	Done       int         `json:"done"`
	Merged     bool        `json:"merged,omitempty"`
	Dat        []byte      `json:"dat,omitempty"`
	Failed     string      `json:"failed,omitempty"`
	MergeNS    int64       `json:"merge_ns,omitempty"`
	Releases   int         `json:"releases,omitempty"`
	Duplicates int         `json:"duplicates,omitempty"`
	Shards     []shardSnap `json:"shards"`
}

// shardSnap is one shard's row in a snapshot. Deadline is absolute
// Unix nanoseconds, like in claim/renew records.
type shardSnap struct {
	State    string `json:"state"`
	Token    string `json:"token,omitempty"`
	Worker   string `json:"worker,omitempty"`
	Deadline int64  `json:"deadline,omitempty"`
	Leases   int    `json:"leases,omitempty"`
	Renewals int    `json:"renewals,omitempty"`
	Cells    []byte `json:"cells,omitempty"`
	DoneBy   string `json:"done_by,omitempty"`
}

// writeSnapshot atomically replaces dir/snapshot.json with doc:
// write to a temp file, fsync it, rename over the target, fsync the
// directory. A crash leaves either the old snapshot or the new one,
// never a torn file.
func writeSnapshot(dir string, doc *snapshotDoc) error {
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, snapshotFileName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotFileName)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// readSnapshot loads dir/snapshot.json; (nil, nil) when none exists.
// Snapshots are rename-atomic, so a decode failure is real disk
// corruption and fails the open loudly rather than silently dropping
// committed jobs.
func readSnapshot(dir string) (*snapshotDoc, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var doc snapshotDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("corrupt snapshot: %w", err)
	}
	if doc.Version != snapshotVersion {
		return nil, fmt.Errorf("snapshot version %d, this build reads %d", doc.Version, snapshotVersion)
	}
	return &doc, nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
// Best-effort: some platforms reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
