package coord_test

// End-to-end fault injection over the real HTTP stack: a daemon
// (internal/serve) with the coordinator mounted, three RunWorker
// loops — one that dies mid-shard, one slow straggler that never
// renews and gets re-leased, one steady — and the acceptance check
// that the merged figure is byte-identical to the unsharded run.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/experiments"
	"repro/internal/serve"
)

func TestDistributedSweepFaultInjectionE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker e2e in -short mode")
	}
	before := runtime.NumGoroutine()

	// Short leases so the flaky worker's abandoned shard and the
	// non-renewing straggler's shard both expire within the test.
	pool := serve.New(serve.Config{Workers: 1, SweepLeaseTTL: 300 * time.Millisecond})
	ts := httptest.NewServer(pool)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	c := coord.NewClient(ts.URL)
	id, err := c.Submit(ctx, coord.SweepJob{Figure: "fig2a", Seeds: 2, BaseSeed: 1, Shards: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	var wg sync.WaitGroup
	runWorker := func(opts coord.WorkerOptions) {
		opts.Job = id
		opts.Poll = 50 * time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			coord.RunWorker(ctx, coord.NewClient(ts.URL), opts)
		}()
	}
	// Flaky: claims one lease and dies without completing it.
	runWorker(coord.WorkerOptions{Name: "flaky", AbandonAfterClaims: 1})
	// Straggler: sleeps past its lease TTL and never renews, so its
	// shard is re-leased; its late completion must be discarded.
	runWorker(coord.WorkerOptions{Name: "straggler", SlowShard: 700 * time.Millisecond, NoRenew: true})
	// Steady: picks up everything, including the recovered shards.
	runWorker(coord.WorkerOptions{Name: "steady"})

	dat, err := c.Await(ctx, id, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("Await: %v", err)
	}
	// All three workers exit on ErrJobDone (they are job-pinned).
	wg.Wait()

	fig, err := experiments.BuildFigure(ctx, "fig2a", experiments.Config{Seeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatalf("BuildFigure golden: %v", err)
	}
	if dat != fig.Dat() {
		t.Errorf("merged dat differs from unsharded golden:\n got %d bytes\nwant %d bytes", len(dat), len(fig.Dat()))
	}

	p, err := c.Progress(ctx, id)
	if err != nil {
		t.Fatalf("Progress: %v", err)
	}
	if p.State != "done" || p.Done != 3 {
		t.Fatalf("job not done: %+v", p)
	}
	if p.Releases < 1 {
		t.Errorf("expected at least one re-lease (flaky abandoned a shard), got %d", p.Releases)
	}
	for _, sp := range p.Shards {
		if sp.State != "done" || sp.DoneBy == "" {
			t.Errorf("shard %d not completed exactly once: %+v", sp.Shard, sp)
		}
	}

	ts.Close()
	pool.Close()

	// Nothing may outlive the drain: worker heartbeats are joined per
	// lease, the coordinator owns no goroutines, the pool drained.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCoordinatorRecoveryE2E drives the full recovery path over the
// real HTTP stack: a durable daemon takes a sweep partway (one shard
// done, one lease outstanding), drains; a second daemon opens the same
// state dir, reports the recovered job on /statsz, and a worker
// finishes the sweep byte-identical to the unsharded run. The
// goroutine-leak check brackets both daemon lifetimes, so open →
// replay → serve → drain may leave nothing behind (run under -race in
// CI).
func TestCoordinatorRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery e2e in -short mode")
	}
	before := runtime.NumGoroutine()
	stateDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// First incarnation: partial progress, then a drain (which must
	// snapshot, per the Close contract).
	// Short leases: the doomed lease's restored (absolute) deadline must
	// pass in wall time before the post-restart worker can reclaim it.
	pool1, err := serve.Open(serve.Config{Workers: 1, CoordStateDir: stateDir, SweepLeaseTTL: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open #1: %v", err)
	}
	ts1 := httptest.NewServer(pool1)
	c1 := coord.NewClient(ts1.URL)
	id, err := c1.Submit(ctx, coord.SweepJob{Figure: "fig2a", Seeds: 2, BaseSeed: 1, Shards: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	l, err := c1.Claim(ctx, id, "pre-restart")
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	sc, err := experiments.RunFigureShard(ctx, l.Figure,
		experiments.Config{Seeds: l.Seeds, BaseSeed: l.BaseSeed},
		experiments.Shard{Index: l.Shard, Count: l.Shards})
	if err != nil {
		t.Fatalf("RunFigureShard: %v", err)
	}
	var cells bytes.Buffer
	if err := sc.Encode(&cells); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := c1.Complete(ctx, l, "pre-restart", cells.Bytes()); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if _, err := c1.Claim(ctx, id, "doomed"); err != nil {
		t.Fatalf("second Claim: %v", err) // lease dies with this incarnation
	}
	ts1.Close()
	pool1.Close()

	// Second incarnation on the same state dir.
	pool2, err := serve.Open(serve.Config{Workers: 1, CoordStateDir: stateDir, SweepLeaseTTL: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open #2: %v", err)
	}
	ts2 := httptest.NewServer(pool2)
	c2 := coord.NewClient(ts2.URL)

	resp, err := http.Get(ts2.URL + "/statsz")
	if err != nil {
		t.Fatalf("GET /statsz: %v", err)
	}
	var stats struct {
		Sweep coord.SweepStats `json:"sweep"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decoding statsz: %v", err)
	}
	resp.Body.Close()
	if stats.Sweep.JobsRecovered != 1 || stats.Sweep.ShardsRecovered != 1 {
		t.Fatalf("statsz sweep: jobs_recovered=%d shards_recovered=%d, want 1 and 1",
			stats.Sweep.JobsRecovered, stats.Sweep.ShardsRecovered)
	}

	// A worker finishes the recovered job: the doomed lease's shard is
	// re-offered once its (restored) deadline passes.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		coord.RunWorker(ctx, coord.NewClient(ts2.URL), coord.WorkerOptions{
			Name: "post-restart", Job: id, Poll: 50 * time.Millisecond,
		})
	}()
	dat, err := c2.Await(ctx, id, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("Await: %v", err)
	}
	wg.Wait()

	fig, err := experiments.BuildFigure(ctx, "fig2a", experiments.Config{Seeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatalf("BuildFigure golden: %v", err)
	}
	if dat != fig.Dat() {
		t.Errorf("recovered merge differs from unsharded golden: got %d bytes, want %d", len(dat), len(fig.Dat()))
	}
	p, err := c2.Progress(ctx, id)
	if err != nil {
		t.Fatalf("Progress: %v", err)
	}
	if p.Shards[l.Shard].DoneBy != "pre-restart" {
		t.Errorf("shard %d recomputed after restart: done by %q", l.Shard, p.Shards[l.Shard].DoneBy)
	}

	ts2.Close()
	pool2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak across recovery: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorkerExitIdle: an unpinned worker with ExitIdle returns once
// the coordinator has nothing to offer.
func TestWorkerExitIdle(t *testing.T) {
	pool := serve.New(serve.Config{Workers: 1})
	defer pool.Close()
	ts := httptest.NewServer(pool)
	defer ts.Close()

	err := coord.RunWorker(t.Context(), coord.NewClient(ts.URL), coord.WorkerOptions{
		Name: "idler", ExitIdle: true, Poll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
}
