package coord

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openDurable opens a durable coordinator on dir with the injected
// clock and test-friendly defaults.
func openDurable(t *testing.T, dir string, clk *fakeClock, mut func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		DefaultLeaseTTL: 10 * time.Second,
		Now:             clk.Now,
		StateDir:        dir,
		SnapshotEvery:   1 << 30, // no automatic snapshots unless the test asks
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return c
}

// cellsCache memoizes shard artifacts per (count, index): every test
// job here is testJob, so shard results are shared across crash points.
var cellsCache = map[[2]int][]byte{}

func cachedCells(t *testing.T, l *Lease) []byte {
	t.Helper()
	key := [2]int{l.Shards, l.Shard}
	if b, ok := cellsCache[key]; ok {
		return b
	}
	b := shardBytes(t, l)
	cellsCache[key] = b
	return b
}

// captureState serializes a coordinator's full state the way a
// snapshot would, normalized for restart-equivalence comparison:
// incarnation-local fields (LSN, epoch, process-local stats) are
// zeroed, everything semantic (shard states, tokens, deadlines,
// counters, results) is kept verbatim.
func captureState(t *testing.T, c *Coordinator) []byte {
	t.Helper()
	c.mu.Lock()
	doc := c.snapshotDocLocked()
	c.mu.Unlock()
	doc.LSN = 0
	doc.Epoch = 0
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatalf("marshal capture: %v", err)
	}
	return out
}

// observeExpiry folds pending lease expiries into both sides of a
// comparison: expiry is lazy and never journaled, so live and
// recovered coordinators are compared after both observe the clock.
func observeExpiry(t *testing.T, c *Coordinator, jobIDs []string) {
	t.Helper()
	for _, id := range jobIDs {
		if _, err := c.Progress(id); err != nil {
			t.Fatalf("Progress(%s): %v", id, err)
		}
	}
}

// TestReopenRestoresState: clean shutdown, reopen, the job continues —
// leases survive with their tokens, done shards stay done, and the
// finished merge matches the unsharded golden byte-for-byte.
func TestReopenRestoresState(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c1 := openDurable(t, dir, clk, nil)

	id, err := c1.Submit(testJob(3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	l0, err := c1.Claim(id, "w1")
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if err := c1.Complete(id, l0.Shard, l0.Token, "w1", cachedCells(t, l0)); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	l1, err := c1.Claim(id, "w2")
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFileName)); err != nil {
		t.Fatalf("Close left no snapshot: %v", err)
	}

	c2 := openDurable(t, dir, clk, nil)
	st := c2.StatsSnapshot()
	if st.JobsRecovered != 1 || st.ShardsRecovered != 1 {
		t.Fatalf("recovered jobs=%d shards=%d, want 1 and 1", st.JobsRecovered, st.ShardsRecovered)
	}
	p, err := c2.Progress(id)
	if err != nil {
		t.Fatalf("Progress after reopen: %v", err)
	}
	if p.Done != 1 || p.Shards[l1.Shard].State != "leased" {
		t.Fatalf("recovered progress: done=%d shard %d state=%s", p.Done, l1.Shard, p.Shards[l1.Shard].State)
	}
	// The surviving worker's lease (not expired) completes against the
	// recovered coordinator with its pre-restart token.
	if err := c2.Complete(id, l1.Shard, l1.Token, "w2", cachedCells(t, l1)); err != nil {
		t.Fatalf("Complete with pre-restart token: %v", err)
	}
	l2, err := c2.Claim(id, "w3")
	if err != nil {
		t.Fatalf("Claim after reopen: %v", err)
	}
	if err := c2.Complete(id, l2.Shard, l2.Token, "w3", cachedCells(t, l2)); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	dat, err := c2.Result(id)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if string(dat) != goldenDat(t) {
		t.Fatal("recovered merge differs from unsharded golden")
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestRecoveredStaleLeaseSemantics: a lease that expired while the
// coordinator was down behaves exactly like one that expired live —
// it is re-offered on the next claim, and the dead incarnation's token
// then maps to ErrLeaseLost (409), never a 500.
func TestRecoveredStaleLeaseSemantics(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c1 := openDurable(t, dir, clk, nil)
	id, err := c1.Submit(testJob(2))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	stale, err := c1.Claim(id, "w1")
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	// Crash: no Close, the journal tail is all there is.
	clk.Advance(11 * time.Second) // past the 10s TTL while "down"

	c2 := openDurable(t, dir, clk, nil)
	// Lazy expiry: recovery restored the lease as leased; the next
	// claim observes the deadline, releases it and re-leases.
	fresh, err := c2.Claim(id, "w2")
	if err != nil {
		t.Fatalf("Claim after recovery: %v", err)
	}
	if fresh.Shard != stale.Shard {
		t.Fatalf("expired shard %d not re-offered first, got %d", stale.Shard, fresh.Shard)
	}
	if fresh.Token == stale.Token {
		t.Fatal("re-issued lease reuses the dead incarnation's token")
	}
	p, err := c2.Progress(id)
	if err != nil {
		t.Fatalf("Progress: %v", err)
	}
	if p.Releases != 1 {
		t.Fatalf("releases = %d, want 1", p.Releases)
	}
	if _, err := c2.Renew(id, stale.Shard, stale.Token); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Renew: got %v, want ErrLeaseLost", err)
	}
	if err := c2.Complete(id, stale.Shard, stale.Token, "w1", cachedCells(t, stale)); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Complete: got %v, want ErrLeaseLost", err)
	}
}

// TestRecoveryRepairsMissingMerge: every shard's complete record is
// durable but the crash beat the merge record to disk — recovery
// re-merges from the cells and the result is byte-identical.
func TestRecoveryRepairsMissingMerge(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c1 := openDurable(t, dir, clk, nil)
	id, err := c1.Submit(testJob(2))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i := 0; i < 2; i++ {
		l, err := c1.Claim(id, "w")
		if err != nil {
			t.Fatalf("Claim: %v", err)
		}
		if err := c1.Complete(id, l.Shard, l.Token, "w", cachedCells(t, l)); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	// Simulate the crash window: drop the trailing merge record from
	// the journal (no Close — the snapshot would absorb everything).
	path := filepath.Join(dir, journalFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	recs, _ := decodeJournal(data)
	if recs[len(recs)-1].Type != recMerge {
		t.Fatalf("last record is %q, want merge", recs[len(recs)-1].Type)
	}
	var truncated []byte
	for i := range recs[:len(recs)-1] {
		payload, _ := json.Marshal(&recs[i])
		truncated = frameRecord(truncated, payload)
	}
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatalf("rewrite journal: %v", err)
	}

	c2 := openDurable(t, dir, clk, nil)
	dat, err := c2.Result(id)
	if err != nil {
		t.Fatalf("Result after repair: %v", err)
	}
	if string(dat) != goldenDat(t) {
		t.Fatal("repaired merge differs from unsharded golden")
	}
}

// TestSnapshotRotation: after SnapshotEvery appends the journal is
// absorbed into snapshot.json and truncated, and a coordinator
// recovered from snapshot+tail is intact.
func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c1 := openDurable(t, dir, clk, func(cfg *Config) { cfg.SnapshotEvery = 4 })
	id, err := c1.Submit(testJob(3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i := 0; i < 2; i++ {
		l, err := c1.Claim(id, "w")
		if err != nil {
			t.Fatalf("Claim: %v", err)
		}
		if err := c1.Complete(id, l.Shard, l.Token, "w", cachedCells(t, l)); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	st := c1.StatsSnapshot()
	if st.Snapshots == 0 {
		t.Fatalf("no snapshot after %d appends", st.JournalAppends)
	}
	if fi, err := os.Stat(filepath.Join(dir, journalFileName)); err != nil {
		t.Fatalf("stat journal: %v", err)
	} else if fi.Size() > 1<<12 {
		t.Fatalf("journal not truncated by snapshot: %d bytes", fi.Size())
	}

	c2 := openDurable(t, dir, clk, nil)
	p, err := c2.Progress(id)
	if err != nil {
		t.Fatalf("Progress: %v", err)
	}
	if p.Done != 2 {
		t.Fatalf("recovered done=%d, want 2", p.Done)
	}
	l, err := c2.Claim(id, "w")
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if err := c2.Complete(id, l.Shard, l.Token, "w", cachedCells(t, l)); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	dat, err := c2.Result(id)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if string(dat) != goldenDat(t) {
		t.Fatal("merge after snapshot recovery differs from golden")
	}
}

// TestSubmitIdempotent: the same job key answers with the same job,
// in-process and across a restart.
func TestSubmitIdempotent(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c1 := openDurable(t, dir, clk, nil)
	spec := testJob(2)
	spec.JobKey = "ck-test-idempotent"
	id, err := c1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	again, err := c1.Submit(spec)
	if err != nil {
		t.Fatalf("repeat Submit: %v", err)
	}
	if again != id {
		t.Fatalf("repeat Submit made a new job: %s vs %s", again, id)
	}
	st := c1.StatsSnapshot()
	if st.JobsSubmitted != 1 || st.SubmitsDeduped != 1 {
		t.Fatalf("submitted=%d deduped=%d, want 1 and 1", st.JobsSubmitted, st.SubmitsDeduped)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The key table is durable: a post-restart retry still dedupes.
	c2 := openDurable(t, dir, clk, nil)
	after, err := c2.Submit(spec)
	if err != nil {
		t.Fatalf("Submit after reopen: %v", err)
	}
	if after != id {
		t.Fatalf("post-restart Submit made a new job: %s vs %s", after, id)
	}
	if st := c2.StatsSnapshot(); st.JobsSubmitted != 1 {
		t.Fatalf("jobs_submitted=%d after restart dedup, want 1", st.JobsSubmitted)
	}

	long := testJob(2)
	long.JobKey = string(bytes.Repeat([]byte("k"), maxJobKeyLen+1))
	if _, err := c2.Submit(long); err == nil {
		t.Fatal("oversized job_key accepted")
	}
}

// propOp drives one random operation against the live coordinator and
// reports whether it mutated state (and thus appended records).
type propState struct {
	rng    *rand.Rand
	jobIDs []string
	leases []*Lease // leases "workers" currently hold (may be stale)
}

func (ps *propState) step(t *testing.T, c *Coordinator, clk *fakeClock) {
	t.Helper()
	switch ps.rng.Intn(12) {
	case 0, 1:
		// Keep up to two jobs running; submit a fresh one as they finish.
		running := 0
		for _, id := range ps.jobIDs {
			if p, err := c.Progress(id); err == nil && p.State == "running" {
				running++
			}
		}
		if running < 2 {
			spec := testJob(2 + ps.rng.Intn(2)) // 2 or 3 shards
			id, err := c.Submit(spec)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			ps.jobIDs = append(ps.jobIDs, id)
		}
	case 2, 3, 4:
		if len(ps.jobIDs) == 0 {
			return
		}
		target := "" // any-job claim
		if ps.rng.Intn(2) == 0 {
			target = ps.jobIDs[ps.rng.Intn(len(ps.jobIDs))]
		}
		l, err := c.Claim(target, "w"+string(rune('a'+ps.rng.Intn(3))))
		switch {
		case errors.Is(err, ErrNoWork), errors.Is(err, ErrJobDone):
			return
		case err != nil:
			t.Fatalf("Claim: %v", err)
		}
		ps.leases = append(ps.leases, l)
	case 5:
		if len(ps.leases) == 0 {
			return
		}
		l := ps.leases[ps.rng.Intn(len(ps.leases))]
		// May be stale (expired and re-leased, or completed): both
		// outcomes are part of the property.
		if _, err := c.Renew(l.Job, l.Shard, l.Token); err != nil && !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("Renew: %v", err)
		}
	case 6, 7, 8:
		if len(ps.leases) == 0 {
			return
		}
		i := ps.rng.Intn(len(ps.leases))
		l := ps.leases[i]
		ps.leases = append(ps.leases[:i], ps.leases[i+1:]...)
		err := c.Complete(l.Job, l.Shard, l.Token, "w", cachedCells(t, l))
		if err != nil && !errors.Is(err, ErrLeaseLost) && !errors.Is(err, ErrDuplicate) {
			t.Fatalf("Complete: %v", err)
		}
	case 9:
		if len(ps.leases) == 0 {
			return
		}
		// Double-complete a lease without forgetting it: exercises the
		// duplicate path deterministically.
		l := ps.leases[ps.rng.Intn(len(ps.leases))]
		err := c.Complete(l.Job, l.Shard, l.Token, "w-dup", cachedCells(t, l))
		if err != nil && !errors.Is(err, ErrLeaseLost) && !errors.Is(err, ErrDuplicate) {
			t.Fatalf("duplicate Complete: %v", err)
		}
	case 10, 11:
		clk.Advance(time.Duration(1+ps.rng.Intn(8)) * time.Second)
	}
}

// journalFrameEnds returns the end offset of every frame in data.
func journalFrameEnds(t *testing.T, data []byte) []int {
	t.Helper()
	recs, valid := decodeJournal(data)
	if valid != len(data) {
		t.Fatalf("live journal has an invalid tail: %d of %d bytes valid", valid, len(data))
	}
	ends := make([]int, 0, len(recs))
	off := 0
	for off < valid {
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 8 + n
		ends = append(ends, off)
	}
	return ends
}

// boundary is the expected post-recovery state for a crash point: the
// live coordinator's captured state, the clock it was captured at, and
// how many journal records existed then.
type boundary struct {
	cum     int
	clock   time.Time
	capture []byte
}

// expectedFor maps a crash after k valid records onto a boundary. A k
// strictly between two boundaries is a mid-operation crash — only the
// final complete+merge pair spans two records — and recovery's merge
// repair lands it on the operation's post-state.
func expectedFor(bounds []boundary, k int) boundary {
	i := len(bounds) - 1
	for i > 0 && bounds[i].cum > k {
		i--
	}
	if bounds[i].cum == k || i == len(bounds)-1 {
		return bounds[i]
	}
	if bounds[i].cum < k {
		return bounds[i+1] // mid-op: the op's records are partially durable
	}
	return bounds[i] // k below the first boundary: initial state
}

// recoverPrefix writes journal bytes (and optionally snapshot bytes)
// into a fresh dir and opens a coordinator on it at the given clock.
func recoverPrefix(t *testing.T, journal, snapshot []byte, at time.Time) *Coordinator {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalFileName), journal, 0o644); err != nil {
		t.Fatalf("write journal prefix: %v", err)
	}
	if snapshot != nil {
		if err := os.WriteFile(filepath.Join(dir, snapshotFileName), snapshot, 0o644); err != nil {
			t.Fatalf("write snapshot: %v", err)
		}
	}
	clk := &fakeClock{now: at}
	return openDurable(t, dir, clk, nil)
}

// driveToGolden claims and completes every remaining shard of every
// job on a recovered coordinator (advancing its injected clock past
// recovered lease deadlines) and asserts each merged result is
// byte-identical to the unsharded golden.
func driveToGolden(t *testing.T, c *Coordinator, jobIDs []string, golden string) {
	t.Helper()
	clk := &fakeClock{now: c.cfg.Now()}
	c.cfg.Now = clk.Now
	for iter := 0; ; iter++ {
		if iter > 1000 {
			t.Fatal("driveToGolden: no progress after 1000 iterations")
		}
		l, err := c.Claim("", "finisher")
		if errors.Is(err, ErrNoWork) {
			running := false
			for _, id := range jobIDs {
				p, perr := c.Progress(id)
				if perr != nil {
					t.Fatalf("Progress: %v", perr)
				}
				if p.State == "running" {
					running = true
				}
			}
			if !running {
				break
			}
			clk.Advance(time.Minute) // expire recovered leases
			continue
		}
		if err != nil {
			t.Fatalf("Claim: %v", err)
		}
		err = c.Complete(l.Job, l.Shard, l.Token, "finisher", cachedCells(t, l))
		if err != nil && !errors.Is(err, ErrDuplicate) {
			t.Fatalf("Complete: %v", err)
		}
	}
	for _, id := range jobIDs {
		dat, err := c.Result(id)
		if err != nil {
			t.Fatalf("Result(%s): %v", id, err)
		}
		if string(dat) != golden {
			t.Fatalf("job %s: recovered merge differs from unsharded golden", id)
		}
	}
}

// TestRestartEquivalenceJournalPrefixes is the restart-equivalence
// property test over the journal alone (snapshots disabled): a random
// operation sequence runs against a live durable coordinator under an
// injected clock, capturing the full normalized state at every
// operation boundary; then, for every journal record prefix — plus
// mid-frame cuts that simulate torn writes — a fresh coordinator
// recovers from that prefix and must reproduce the captured state
// exactly (same pending/leased/done sets, tokens, deadlines and
// counters) once both sides observe lease expiry at the same clock.
// A sample of crash points is then driven to completion and must merge
// byte-identical to the unsharded golden.
func TestRestartEquivalenceJournalPrefixes(t *testing.T) {
	golden := goldenDat(t)
	dir := t.TempDir()
	clk := newFakeClock()
	live := openDurable(t, dir, clk, nil)
	ps := &propState{rng: rand.New(rand.NewSource(7))}

	countRecords := func() int {
		data, err := os.ReadFile(filepath.Join(dir, journalFileName))
		if err != nil {
			t.Fatalf("read journal: %v", err)
		}
		recs, valid := decodeJournal(data)
		if valid != len(data) {
			t.Fatalf("live journal invalid at %d of %d", valid, len(data))
		}
		return len(recs)
	}

	bounds := []boundary{{cum: countRecords(), clock: clk.Now(), capture: captureState(t, live)}}
	const ops = 80
	for i := 0; i < ops; i++ {
		ps.step(t, live, clk)
		observeExpiry(t, live, ps.jobIDs)
		bounds = append(bounds, boundary{cum: countRecords(), clock: clk.Now(), capture: captureState(t, live)})
	}

	data, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	ends := journalFrameEnds(t, data)
	if len(ends) < 20 {
		t.Fatalf("random run produced only %d journal records; property too weak", len(ends))
	}

	// Crash points: before any record, after every record, and torn
	// mid-frame cuts (header and payload) of every record.
	cuts := []int{0}
	prev := 0
	for _, e := range ends {
		cuts = append(cuts, prev+4, prev+(e-prev)/2, e-1, e)
		prev = e
	}
	checked := 0
	for _, cut := range cuts {
		if cut < 0 || cut > len(data) {
			continue
		}
		prefix := data[:cut]
		_, valid := decodeJournal(prefix)
		k := 0
		for _, e := range ends {
			if e <= valid {
				k++
			}
		}
		want := expectedFor(bounds, k)
		rec := recoverPrefix(t, prefix, nil, want.clock)
		observeExpiry(t, rec, ps.jobIDs[:jobsIn(want.capture)])
		got := captureState(t, rec)
		if !bytes.Equal(got, want.capture) {
			t.Fatalf("crash at byte %d (record prefix %d): recovered state differs\n--- recovered ---\n%s\n--- live capture ---\n%s",
				cut, k, got, want.capture)
		}
		// Every 7th crash point also proves end-to-end progress: the
		// recovered coordinator finishes its jobs byte-identical to the
		// unsharded run.
		if checked%7 == 0 {
			driveToGolden(t, rec, ps.jobIDs[:jobsIn(want.capture)], golden)
		}
		checked++
	}
	if checked < 4*len(ends) {
		t.Fatalf("only %d crash points checked for %d records", checked, len(ends))
	}
}

// jobsIn counts the jobs present in a normalized capture, so recovery
// checks only poll jobs that existed at that crash point.
func jobsIn(capture []byte) int {
	var doc snapshotDoc
	if json.Unmarshal(capture, &doc) != nil {
		return 0
	}
	return len(doc.Jobs)
}

// TestRestartEquivalenceWithSnapshots is the same property across
// operation-boundary crashes with aggressive snapshot rotation: every
// few appends the journal is absorbed into snapshot.json, so recovery
// exercises the snapshot+tail path (including the dedup of records the
// snapshot already covers, via the snapshot LSN).
func TestRestartEquivalenceWithSnapshots(t *testing.T) {
	golden := goldenDat(t)
	dir := t.TempDir()
	clk := newFakeClock()
	live := openDurable(t, dir, clk, func(cfg *Config) { cfg.SnapshotEvery = 3 })
	ps := &propState{rng: rand.New(rand.NewSource(11))}

	readFiles := func() (journal, snapshot []byte) {
		journal, err := os.ReadFile(filepath.Join(dir, journalFileName))
		if err != nil {
			t.Fatalf("read journal: %v", err)
		}
		snapshot, err = os.ReadFile(filepath.Join(dir, snapshotFileName))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("read snapshot: %v", err)
		}
		return journal, snapshot
	}

	const ops = 60
	for i := 0; i < ops; i++ {
		ps.step(t, live, clk)
		observeExpiry(t, live, ps.jobIDs)
		want := captureState(t, live)
		journal, snapshot := readFiles()
		rec := recoverPrefix(t, journal, snapshot, clk.Now())
		observeExpiry(t, rec, ps.jobIDs)
		got := captureState(t, rec)
		if !bytes.Equal(got, want) {
			t.Fatalf("op %d: snapshot+tail recovery differs\n--- recovered ---\n%s\n--- live ---\n%s", i, got, want)
		}
		if i%10 == 9 {
			driveToGolden(t, rec, ps.jobIDs, golden)
		}
	}
	if st := live.StatsSnapshot(); st.Snapshots == 0 {
		t.Fatal("snapshot rotation never triggered; property too weak")
	}
}
