package coord

// Wire types shared by the coordinator, the HTTP layer in
// internal/serve, and Client. All JSON, all stable: these are the
// public jobs surface re-exported at the repo root.

// SweepJob is a sweep submission: which figure to build, the
// experiment parameters, and how many shards to decompose it into.
type SweepJob struct {
	// Figure is the figure id to build (see FigureIDs).
	Figure string `json:"figure"`
	// Seeds is the number of repetitions per grid point; 0 means the
	// experiments default (10).
	Seeds int `json:"seeds,omitempty"`
	// BaseSeed offsets every derived seed; 0 is the committed default.
	BaseSeed int64 `json:"base_seed,omitempty"`
	// Shards is the number of work units to decompose the run into.
	Shards int `json:"shards"`
	// LeaseTTLMS overrides the coordinator's default lease TTL,
	// milliseconds; capped at the coordinator's maximum.
	LeaseTTLMS int64 `json:"lease_ttl_ms,omitempty"`
	// JobKey is an optional idempotency key (≤ 200 bytes). Submitting
	// the same key twice returns the first submission's job id instead
	// of registering a second job, which makes retrying a Submit over a
	// flaky connection safe — Client fills one in automatically.
	JobKey string `json:"job_key,omitempty"`
}

// Lease is a granted work unit: compute Shard of Shards for the job's
// figure, then Complete with Token before the TTL runs out (or keep
// renewing). Expired leases are re-offered to other workers.
type Lease struct {
	Job      string `json:"job"`
	Figure   string `json:"figure"`
	Seeds    int    `json:"seeds"`
	BaseSeed int64  `json:"base_seed"`
	Shard    int    `json:"shard"`
	Shards   int    `json:"shards"`
	Token    string `json:"token"`
	TTLMS    int64  `json:"ttl_ms"`
}

// ShardProgress is one shard's row in a Progress snapshot.
type ShardProgress struct {
	Shard int `json:"shard"`
	// State is "pending", "leased" or "done".
	State string `json:"state"`
	// Worker is the current or most recent lessee.
	Worker string `json:"worker,omitempty"`
	// Leases counts leases ever granted for this shard; >1 means it was
	// re-leased after an expiry.
	Leases   int `json:"leases"`
	Renewals int `json:"renewals,omitempty"`
	// DoneBy names the worker whose result was accepted.
	DoneBy string `json:"done_by,omitempty"`
}

// Progress is a point-in-time snapshot of a sweep job.
type Progress struct {
	ID       string `json:"id"`
	Figure   string `json:"figure"`
	Seeds    int    `json:"seeds"`
	BaseSeed int64  `json:"base_seed"`
	// State is "running", "done" or "failed".
	State  string          `json:"state"`
	Done   int             `json:"done"`
	Total  int             `json:"total"`
	Shards []ShardProgress `json:"shards"`
	// Releases counts leases that expired and were re-offered
	// (straggler / dead-worker recoveries).
	Releases int `json:"releases"`
	// Duplicates counts completions discarded because the shard already
	// had an accepted result.
	Duplicates int `json:"duplicates"`
	// MergeMS is the final merge latency, set once State is "done".
	MergeMS float64 `json:"merge_ms,omitempty"`
	// Error carries the merge failure when State is "failed".
	Error string `json:"error,omitempty"`
}

// submitResponse is POST /v1/sweep's reply.
type submitResponse struct {
	ID string `json:"id"`
}

// claimRequest is the body of POST /v1/sweep/lease and
// POST /v1/sweep/{id}/lease.
type claimRequest struct {
	Worker string `json:"worker,omitempty"`
}

// renewRequest is the body of POST /v1/sweep/{id}/renew.
type renewRequest struct {
	Shard  int    `json:"shard"`
	Token  string `json:"token"`
	Worker string `json:"worker,omitempty"`
}

// renewResponse is its reply.
type renewResponse struct {
	TTLMS int64 `json:"ttl_ms"`
}

// completeRequest is the body of POST /v1/sweep/{id}/complete. Cells
// carries the shard's encoded cell artifact (the streamalloc-cells/v1
// text format) verbatim.
type completeRequest struct {
	Shard  int    `json:"shard"`
	Token  string `json:"token"`
	Worker string `json:"worker,omitempty"`
	Cells  string `json:"cells"`
}

// completeResponse is its reply. Duplicate is set when the result was
// discarded because the shard already completed — benign by the
// determinism contract.
type completeResponse struct {
	Duplicate bool `json:"duplicate,omitempty"`
}
