package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/experiments"
)

// WorkerOptions tunes RunWorker.
type WorkerOptions struct {
	// Name identifies this worker in leases and progress snapshots.
	Name string
	// Job pins the worker to one job id; empty claims from any running
	// job (and never exits on ErrJobDone).
	Job string
	// Poll is the base claim-retry interval when no work is available;
	// backed off exponentially with jitter up to MaxBackoff. Defaults
	// 500ms and 10s.
	Poll       time.Duration
	MaxBackoff time.Duration
	// ExitIdle makes the worker return nil on the first idle poll once
	// its pinned job is done (Job set), or on the first ErrNoWork (Job
	// empty). Off, the worker keeps polling until ctx is cancelled.
	ExitIdle bool
	// Workers is the per-shard compute parallelism (Grid.Workers).
	Workers int
	// Log receives progress lines; nil discards them.
	Log *log.Logger

	// Fault-injection hooks, exposed as cmd/sweepworker flags so the
	// e2e smoke can script flaky and straggling workers.

	// SlowShard sleeps this long before computing each shard, turning
	// the worker into a straggler.
	SlowShard time.Duration
	// NoRenew disables heartbeat renewals, so a slow shard's lease
	// expires mid-compute and is re-offered.
	NoRenew bool
	// AbandonAfterClaims makes the worker return after claiming (and
	// never completing) this many leases — a worker that dies
	// mid-shard.
	AbandonAfterClaims int
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Name == "" {
		o.Name = "worker"
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 10 * time.Second
	}
	return o
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log.Printf(format, args...)
	}
}

// RunWorker claims, computes and completes sweep shards against a
// coordinator until ctx is cancelled (or, with ExitIdle, until there
// is no work left). Claim failures back off exponentially with
// jitter; while computing, a heartbeat goroutine renews the lease at
// a third of its TTL, and a lost lease cancels the computation so the
// worker moves on instead of finishing work someone else now owns.
// The heartbeat goroutine is joined before the next claim, so a
// returning RunWorker leaves nothing behind.
func RunWorker(ctx context.Context, c *Client, opts WorkerOptions) error {
	opts = opts.withDefaults()
	backoff := opts.Poll
	claims := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := c.Claim(ctx, opts.Job, opts.Name)
		switch {
		case err == nil:
			backoff = opts.Poll
		case errors.Is(err, ErrJobDone):
			opts.logf("%s: job %s done, exiting", opts.Name, opts.Job)
			return nil
		case errors.Is(err, ErrNoWork):
			if opts.ExitIdle && opts.Job == "" {
				opts.logf("%s: no work, exiting", opts.Name)
				return nil
			}
			if !sleepCtx(ctx, jitter(backoff)) {
				return ctx.Err()
			}
			backoff = min(backoff*2, opts.MaxBackoff)
			continue
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return ctx.Err()
		default:
			// Coordinator unreachable or erroring: same backoff loop.
			opts.logf("%s: claim: %v", opts.Name, err)
			if !sleepCtx(ctx, jitter(backoff)) {
				return ctx.Err()
			}
			backoff = min(backoff*2, opts.MaxBackoff)
			continue
		}

		claims++
		opts.logf("%s: leased shard %d/%d of job %s (%s)", opts.Name, lease.Shard, lease.Shards, lease.Job, lease.Figure)
		if opts.AbandonAfterClaims > 0 && claims >= opts.AbandonAfterClaims {
			opts.logf("%s: abandoning lease on shard %d and exiting (fault injection)", opts.Name, lease.Shard)
			return nil
		}
		if err := runLease(ctx, c, lease, opts); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			opts.logf("%s: shard %d: %v", opts.Name, lease.Shard, err)
		}
	}
}

// runLease computes one leased shard under a heartbeat and submits the
// result. Lease loss mid-compute cancels the work; a duplicate accept
// is logged and treated as success (the shard is done either way).
func runLease(ctx context.Context, c *Client, lease *Lease, opts WorkerOptions) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	hbDone := make(chan struct{})
	if opts.NoRenew {
		close(hbDone)
	} else {
		go func() {
			defer close(hbDone)
			t := time.NewTicker(time.Duration(lease.TTLMS) * time.Millisecond / 3)
			defer t.Stop()
			for {
				select {
				case <-cctx.Done():
					return
				case <-t.C:
				}
				if _, err := c.Renew(cctx, lease); err != nil {
					if errors.Is(err, ErrLeaseLost) {
						opts.logf("%s: lease on shard %d lost, cancelling compute", opts.Name, lease.Shard)
						cancel()
						return
					}
					// Transient renew failures are survivable as long as one
					// succeeds per TTL; keep ticking.
					opts.logf("%s: renew shard %d: %v", opts.Name, lease.Shard, err)
				}
			}
		}()
	}
	// Join the heartbeat before returning so RunWorker never stacks
	// goroutines across leases.
	defer func() { cancel(); <-hbDone }()

	if opts.SlowShard > 0 {
		if !sleepCtx(cctx, opts.SlowShard) {
			return cctx.Err()
		}
	}
	sc, err := experiments.RunFigureShard(cctx, lease.Figure,
		experiments.Config{Seeds: lease.Seeds, BaseSeed: lease.BaseSeed, Workers: opts.Workers},
		experiments.Shard{Index: lease.Shard, Count: lease.Shards})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := sc.Encode(&buf); err != nil {
		return err
	}
	switch err := c.Complete(ctx, lease, opts.Name, buf.Bytes()); {
	case err == nil:
		opts.logf("%s: completed shard %d of job %s", opts.Name, lease.Shard, lease.Job)
		return nil
	case errors.Is(err, ErrDuplicate):
		opts.logf("%s: shard %d already completed by another worker, result discarded", opts.Name, lease.Shard)
		return nil
	default:
		return fmt.Errorf("complete: %w", err)
	}
}

// jitter spreads d uniformly over [d/2, 3d/2) so a fleet of workers
// doesn't thunder in lockstep. Worker-side randomness never touches
// sweep results (cell seeds come from the lease), so math/rand's
// global source is fine here.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleepCtx sleeps d or until ctx cancels; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
