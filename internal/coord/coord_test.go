package coord

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// fakeClock drives lease expiry deterministically: tests advance it
// instead of sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testJob is the cheap standard job most tests submit: fig2a at 2
// seeds is milliseconds of compute since the incremental-load PR.
func testJob(shards int) SweepJob {
	return SweepJob{Figure: "fig2a", Seeds: 2, BaseSeed: 1, Shards: shards}
}

// shardBytes computes one lease's cells exactly as a worker would.
func shardBytes(t *testing.T, l *Lease) []byte {
	t.Helper()
	sc, err := experiments.RunFigureShard(t.Context(), l.Figure,
		experiments.Config{Seeds: l.Seeds, BaseSeed: l.BaseSeed},
		experiments.Shard{Index: l.Shard, Count: l.Shards})
	if err != nil {
		t.Fatalf("RunFigureShard(%d/%d): %v", l.Shard, l.Shards, err)
	}
	var buf bytes.Buffer
	if err := sc.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// goldenDat is the unsharded reference output every merged result must
// match byte-for-byte.
func goldenDat(t *testing.T) string {
	t.Helper()
	fig, err := experiments.BuildFigure(t.Context(), "fig2a", experiments.Config{Seeds: 2, BaseSeed: 1})
	if err != nil {
		t.Fatalf("BuildFigure: %v", err)
	}
	return fig.Dat()
}

func TestSubmitValidation(t *testing.T) {
	c := New(Config{MaxShards: 8, Now: newFakeClock().Now})
	for _, tc := range []struct {
		name string
		job  SweepJob
		want string
	}{
		{"unknown figure", SweepJob{Figure: "nope", Shards: 2}, "unknown figure"},
		{"zero shards", SweepJob{Figure: "fig2a", Shards: 0}, "shards must be"},
		{"too many shards", SweepJob{Figure: "fig2a", Shards: 9}, "shards must be"},
		{"negative seeds", SweepJob{Figure: "fig2a", Seeds: -1, Shards: 2}, "seeds must be"},
	} {
		if _, err := c.Submit(tc.job); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
	// Seeds 0 is normalized to the experiments default.
	id, err := c.Submit(SweepJob{Figure: "fig2a", Shards: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	p, err := c.Progress(id)
	if err != nil {
		t.Fatalf("Progress: %v", err)
	}
	if p.Seeds != 10 {
		t.Fatalf("seeds not defaulted: %d", p.Seeds)
	}
}

func TestMaxJobs(t *testing.T) {
	c := New(Config{MaxJobs: 1, Now: newFakeClock().Now})
	if _, err := c.Submit(testJob(2)); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if _, err := c.Submit(testJob(2)); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("second Submit: got %v, want ErrTooManyJobs", err)
	}
}

// TestHappyPath drives a 3-shard job through claim/complete and checks
// the merged result is byte-identical to the unsharded run.
func TestHappyPath(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Now: clk.Now})
	id, err := c.Submit(testJob(3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Result(id); !errors.Is(err, ErrNotDone) {
		t.Fatalf("early Result: got %v, want ErrNotDone", err)
	}
	for i := 0; i < 3; i++ {
		l, err := c.Claim(id, "w")
		if err != nil {
			t.Fatalf("Claim %d: %v", i, err)
		}
		if l.Shard != i || l.Shards != 3 {
			t.Fatalf("lease %d: got shard %d/%d", i, l.Shard, l.Shards)
		}
		if err := c.Complete(id, l.Shard, l.Token, "w", shardBytes(t, l)); err != nil {
			t.Fatalf("Complete %d: %v", i, err)
		}
	}
	if _, err := c.Claim(id, "w"); !errors.Is(err, ErrJobDone) {
		t.Fatalf("Claim after done: %v, want ErrJobDone", err)
	}
	dat, err := c.Result(id)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if string(dat) != goldenDat(t) {
		t.Fatalf("merged dat differs from unsharded golden")
	}
	p, _ := c.Progress(id)
	if p.State != "done" || p.Done != 3 || p.Releases != 0 || p.Duplicates != 0 {
		t.Fatalf("progress: %+v", p)
	}
	st := c.StatsSnapshot()
	if st.Merges != 1 || st.LeasesGranted != 3 || st.JobsDone != 1 || st.JobsActive != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestExpiryRelease: an expired lease goes back to pending, is
// re-leased to another worker with a fresh token, and the dead
// worker's stale token can no longer renew or complete.
func TestExpiryRelease(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{DefaultLeaseTTL: 10 * time.Second, Now: clk.Now})
	id, _ := c.Submit(testJob(1))

	dead, err := c.Claim(id, "flaky")
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	// Same shard is not claimable while the lease is live.
	if _, err := c.Claim(id, "other"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("second Claim: %v, want ErrNoWork", err)
	}
	clk.Advance(11 * time.Second)
	fresh, err := c.Claim(id, "steady")
	if err != nil {
		t.Fatalf("re-Claim after expiry: %v", err)
	}
	if fresh.Shard != dead.Shard || fresh.Token == dead.Token {
		t.Fatalf("re-lease: shard %d token %q vs dead %d %q", fresh.Shard, fresh.Token, dead.Shard, dead.Token)
	}
	if _, err := c.Renew(id, dead.Shard, dead.Token); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Renew: %v, want ErrLeaseLost", err)
	}
	if err := c.Complete(id, dead.Shard, dead.Token, "flaky", shardBytes(t, dead)); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Complete: %v, want ErrLeaseLost", err)
	}
	if err := c.Complete(id, fresh.Shard, fresh.Token, "steady", shardBytes(t, fresh)); err != nil {
		t.Fatalf("fresh Complete: %v", err)
	}
	p, _ := c.Progress(id)
	if p.Releases != 1 || p.Shards[0].Leases != 2 || p.Shards[0].DoneBy != "steady" {
		t.Fatalf("progress after re-lease: %+v", p)
	}
	if st := c.StatsSnapshot(); st.Releases != 1 {
		t.Fatalf("stats releases: %+v", st)
	}
}

// TestRenewExtends: renewing pushes the deadline, so a heartbeating
// worker is never re-leased; dropping the heartbeat expires it.
func TestRenewExtends(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{DefaultLeaseTTL: 10 * time.Second, Now: clk.Now})
	id, _ := c.Submit(testJob(1))
	l, _ := c.Claim(id, "w")
	for i := 0; i < 5; i++ {
		clk.Advance(8 * time.Second)
		ttl, err := c.Renew(id, l.Shard, l.Token)
		if err != nil {
			t.Fatalf("Renew %d: %v", i, err)
		}
		if ttl != (10 * time.Second).Milliseconds() {
			t.Fatalf("Renew TTL: %d", ttl)
		}
	}
	// 40s of wall time elapsed, lease still held.
	if _, err := c.Claim(id, "thief"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("Claim against heartbeating lease: %v", err)
	}
	clk.Advance(11 * time.Second)
	if _, err := c.Claim(id, "thief"); err != nil {
		t.Fatalf("Claim after heartbeat stops: %v", err)
	}
}

// TestDuplicateCompletion: after a straggler's shard is re-leased and
// completed by someone else, the straggler's late result is discarded
// as a duplicate, the job merges once, and the output still matches
// the unsharded golden.
func TestDuplicateCompletion(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{DefaultLeaseTTL: 5 * time.Second, Now: clk.Now})
	id, _ := c.Submit(testJob(2))

	slow, _ := c.Claim(id, "slow")
	clk.Advance(6 * time.Second) // slow's lease expires
	fast, err := c.Claim(id, "fast")
	if err != nil || fast.Shard != slow.Shard {
		t.Fatalf("re-claim: lease %+v err %v", fast, err)
	}
	other, err := c.Claim(id, "fast")
	if err != nil {
		t.Fatalf("claim second shard: %v", err)
	}
	if err := c.Complete(id, fast.Shard, fast.Token, "fast", shardBytes(t, fast)); err != nil {
		t.Fatalf("fast Complete: %v", err)
	}
	// The straggler finally lands: shard already done -> duplicate.
	if err := c.Complete(id, slow.Shard, slow.Token, "slow", shardBytes(t, slow)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("late Complete: %v, want ErrDuplicate", err)
	}
	if err := c.Complete(id, other.Shard, other.Token, "fast", shardBytes(t, other)); err != nil {
		t.Fatalf("final Complete: %v", err)
	}
	dat, err := c.Result(id)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if string(dat) != goldenDat(t) {
		t.Fatalf("merged dat differs from unsharded golden after duplicate")
	}
	p, _ := c.Progress(id)
	if p.Duplicates != 1 || p.Shards[fast.Shard].DoneBy != "fast" {
		t.Fatalf("progress: %+v", p)
	}
}

// TestCompleteRejectsMismatchedCells: an artifact for the wrong
// figure, shard or parameters fails the completing worker immediately
// instead of poisoning the merge.
func TestCompleteRejectsMismatchedCells(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Now: clk.Now})
	id, _ := c.Submit(testJob(2))
	l, _ := c.Claim(id, "w")

	wrong := *l
	wrong.Shard = 1 - l.Shard // cells for the other shard
	if err := c.Complete(id, l.Shard, l.Token, "w", shardBytes(t, &wrong)); err == nil ||
		!strings.Contains(err.Error(), "lease was") {
		t.Fatalf("mismatched shard cells: %v", err)
	}
	if err := c.Complete(id, l.Shard, l.Token, "w", []byte("garbage")); err == nil {
		t.Fatal("garbage cells accepted")
	}
	// The lease survives a rejected completion; the real cells land.
	if err := c.Complete(id, l.Shard, l.Token, "w", shardBytes(t, l)); err != nil {
		t.Fatalf("correct Complete after rejects: %v", err)
	}
}

func TestAnyJobClaimAndUnknowns(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Now: clk.Now})
	if _, err := c.Claim("", "w"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("Claim with no jobs: %v", err)
	}
	if _, err := c.Claim("nope", "w"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Claim unknown job: %v", err)
	}
	if _, err := c.Progress("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Progress unknown job: %v", err)
	}
	idA, _ := c.Submit(testJob(1))
	idB, _ := c.Submit(testJob(1))
	// Any-job claims drain submission order: job A first, then B.
	l1, err := c.Claim("", "w")
	if err != nil || l1.Job != idA {
		t.Fatalf("first any-claim: %+v err %v", l1, err)
	}
	l2, err := c.Claim("", "w")
	if err != nil || l2.Job != idB {
		t.Fatalf("second any-claim: %+v err %v", l2, err)
	}
}
