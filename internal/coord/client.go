package coord

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Client talks to a coordinator mounted in a streamalloc daemon
// (cmd/serve). Methods map HTTP statuses back onto the package's
// sentinel errors, so worker loops can branch with errors.Is exactly
// as they would against an in-process Coordinator.
//
// A Client can carry several equivalent coordinator endpoints (a
// restarted daemon, a hot standby behind distinct addresses): a
// transport-level failure — connection refused/reset, DNS, timeout;
// never an HTTP status — rotates to the next endpoint within the same
// call, and the endpoint that answers becomes the new primary. HTTP
// errors never rotate: every replica would answer the same. When every
// endpoint is down the last transport error is returned, and the
// caller's retry loop (RunWorker backs off with jitter between claim
// attempts) provides the pacing before the rotation is probed again.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	// Ignored when Endpoints is set.
	BaseURL string
	// Endpoints is the failover rotation. Empty means BaseURL only.
	Endpoints []string
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client

	// cursor indexes Endpoints at the current primary; atomic because
	// the worker's heartbeat goroutine shares the Client with its
	// solve loop.
	cursor atomic.Int64
}

// NewClient returns a Client for the daemon(s) at baseURL: a single
// root, or a comma-separated failover list such as
// "http://a:8080,http://b:8080" (tried in order, rotating on
// connection errors).
func NewClient(baseURL string) *Client {
	var eps []string
	for _, p := range strings.Split(baseURL, ",") {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
			eps = append(eps, p)
		}
	}
	c := &Client{}
	if len(eps) > 0 {
		c.BaseURL = eps[0]
	}
	if len(eps) > 1 {
		c.Endpoints = eps
	}
	return c
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// endpoints returns the rotation list (BaseURL alone without failover).
func (c *Client) endpoints() []string {
	if len(c.Endpoints) > 0 {
		return c.Endpoints
	}
	return []string{strings.TrimRight(c.BaseURL, "/")}
}

// send builds the request against the current primary endpoint and
// issues it, rotating across the failover list on transport errors —
// once around at most, stopping early on context cancellation (which
// is the caller's doing, not an endpoint's).
func (c *Client) send(ctx context.Context, build func(base string) (*http.Request, error)) (*http.Response, error) {
	eps := c.endpoints()
	start := c.cursor.Load()
	var lastErr error
	for i := 0; i < len(eps); i++ {
		idx := (start + int64(i)) % int64(len(eps))
		req, err := build(eps[idx])
		if err != nil {
			return nil, err
		}
		resp, err := c.httpClient().Do(req)
		if err == nil {
			c.cursor.Store(idx) // the answering endpoint is the new primary
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// doJSON issues one request and decodes a JSON reply into out (unless
// out is nil or the status is 204). Non-2xx replies become errors
// carrying the server's {"error": ...} message.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) (int, error) {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return 0, err
		}
	}
	resp, err := c.send(ctx, func(base string) (*http.Request, error) {
		// A fresh reader per attempt: a failed endpoint may have
		// consumed part of the body before the connection dropped.
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(buf)
		}
		req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, nil
	})
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("%s %s: %s", method, path, e.Error)
		}
		return resp.StatusCode, fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s %s: decoding reply: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// Submit registers a sweep job and returns its id. When the job
// carries no JobKey, Submit generates one, so a retry after a
// transport failure — including send's own failover rotation, which
// can land on a replica after the primary committed the job but died
// before replying — dedupes on the coordinator instead of registering
// the sweep twice.
func (c *Client) Submit(ctx context.Context, job SweepJob) (string, error) {
	if job.JobKey == "" {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "", fmt.Errorf("coord: generating job key: %w", err)
		}
		job.JobKey = "ck-" + hex.EncodeToString(b[:])
	}
	var out submitResponse
	if _, err := c.doJSON(ctx, http.MethodPost, "/v1/sweep", job, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Progress fetches a job's progress snapshot.
func (c *Client) Progress(ctx context.Context, jobID string) (*Progress, error) {
	var out Progress
	status, err := c.doJSON(ctx, http.MethodGet, "/v1/sweep/"+jobID, nil, &out)
	if status == http.StatusNotFound {
		return nil, ErrUnknownJob
	}
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Claim asks for a lease — on jobID when non-empty, otherwise on any
// running job. Returns ErrNoWork (204) when nothing is claimable and
// ErrJobDone (410) when a named job has finished.
func (c *Client) Claim(ctx context.Context, jobID, worker string) (*Lease, error) {
	path := "/v1/sweep/lease"
	if jobID != "" {
		path = "/v1/sweep/" + jobID + "/lease"
	}
	var out Lease
	status, err := c.doJSON(ctx, http.MethodPost, path, claimRequest{Worker: worker}, &out)
	switch status {
	case http.StatusNoContent:
		return nil, ErrNoWork
	case http.StatusGone:
		return nil, ErrJobDone
	case http.StatusNotFound:
		return nil, ErrUnknownJob
	}
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Renew extends a lease, returning the fresh TTL. ErrLeaseLost means
// the shard was re-leased or completed by someone else; abandon it.
func (c *Client) Renew(ctx context.Context, l *Lease) (time.Duration, error) {
	var out renewResponse
	status, err := c.doJSON(ctx, http.MethodPost, "/v1/sweep/"+l.Job+"/renew",
		renewRequest{Shard: l.Shard, Token: l.Token}, &out)
	switch status {
	case http.StatusConflict:
		return 0, ErrLeaseLost
	case http.StatusNotFound:
		return 0, ErrUnknownJob
	}
	if err != nil {
		return 0, err
	}
	return time.Duration(out.TTLMS) * time.Millisecond, nil
}

// Complete submits a shard's encoded cells under the lease. A
// duplicate (someone else's result was already accepted) returns
// ErrDuplicate; ErrLeaseLost means the lease was re-issued and the
// result was refused.
func (c *Client) Complete(ctx context.Context, l *Lease, worker string, cells []byte) error {
	var out completeResponse
	status, err := c.doJSON(ctx, http.MethodPost, "/v1/sweep/"+l.Job+"/complete",
		completeRequest{Shard: l.Shard, Token: l.Token, Worker: worker, Cells: string(cells)}, &out)
	switch status {
	case http.StatusConflict:
		return ErrLeaseLost
	case http.StatusNotFound:
		return ErrUnknownJob
	}
	if err != nil {
		return err
	}
	if out.Duplicate {
		return ErrDuplicate
	}
	return nil
}

// Result fetches the merged figure's .dat text; ErrNotDone while
// shards are still outstanding.
func (c *Client) Result(ctx context.Context, jobID string) (string, error) {
	resp, err := c.send(ctx, func(base string) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/sweep/"+jobID+"/result", nil)
	})
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return "", err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return string(raw), nil
	case http.StatusConflict:
		return "", ErrNotDone
	case http.StatusNotFound:
		return "", ErrUnknownJob
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return "", errors.New(e.Error)
	}
	return "", fmt.Errorf("GET /v1/sweep/%s/result: status %d", jobID, resp.StatusCode)
}

// Await polls a job until it finishes (default every 250ms) and
// returns the merged .dat text. It respects ctx for cancellation.
func (c *Client) Await(ctx context.Context, jobID string, poll time.Duration) (string, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		p, err := c.Progress(ctx, jobID)
		if err != nil {
			return "", err
		}
		switch p.State {
		case "done":
			return c.Result(ctx, jobID)
		case "failed":
			return "", fmt.Errorf("coord: job %s failed: %s", jobID, p.Error)
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-t.C:
		}
	}
}
