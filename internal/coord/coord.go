// Package coord is the fault-tolerant distributed sweep coordinator:
// it decomposes a figure-sized Grid run into shard work units, hands
// them to workers as leases with deadlines, re-leases shards whose
// lease expired (worker died, or a straggler that stopped renewing),
// deduplicates double-completions by accepting the first result per
// shard, and folds the completed shard cells into the figure with the
// byte-identical experiments.MergeFigure reduction.
//
// Fault tolerance is nearly free because every shard is idempotent:
// per-cell seeds are pure functions of grid coordinates (rng.SeedFor),
// so any two workers computing the same shard produce cell-for-cell
// identical results and the coordinator may accept whichever lands
// first — a late straggler's duplicate is simply discarded. The state
// machine per shard is
//
//	pending ──Claim──► leased ──Complete──► done
//	   ▲                  │
//	   └──deadline passed─┘   (re-lease; Releases counter)
//
// The Coordinator is purely reactive bookkeeping: it owns no
// goroutines and no timers (lease expiry is evaluated lazily on every
// claim/progress/renew), so a server embedding one has nothing extra
// to drain on shutdown. internal/serve mounts it under POST /v1/sweep
// and friends; Client and RunWorker are the matching worker side.
package coord

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/experiments"
)

// Sentinel errors the HTTP layer maps onto status codes (and Client
// maps back); test with errors.Is.
var (
	// ErrUnknownJob: the job id was never submitted (404).
	ErrUnknownJob = errors.New("coord: unknown job")
	// ErrNoWork: no shard is currently claimable — all leased or done;
	// poll again later (204).
	ErrNoWork = errors.New("coord: no work available")
	// ErrJobDone: the job has finished; per-job workers should exit (410).
	ErrJobDone = errors.New("coord: job is done")
	// ErrLeaseLost: the lease token is not the shard's current lease —
	// it expired and was re-issued, or the shard completed (409).
	ErrLeaseLost = errors.New("coord: lease lost")
	// ErrNotDone: the merged result was requested before every shard
	// landed (409).
	ErrNotDone = errors.New("coord: job not done yet")
	// ErrDuplicate wraps a completion for a shard that already has a
	// result; the coordinator keeps the first and discards this one (200,
	// flagged). Harmless by the determinism contract.
	ErrDuplicate = errors.New("coord: shard already completed")
	// ErrTooManyJobs: the live-jobs bound was hit (429).
	ErrTooManyJobs = errors.New("coord: too many live jobs")
	// ErrJournal wraps a failed journal append on a durable coordinator
	// (500): the operation was refused so the on-disk history never
	// diverges from what clients observed.
	ErrJournal = errors.New("coord: journal append failed")
)

// Config tunes a Coordinator. The zero value is serviceable: 30s
// leases capped at 5m, at most 256 shards per job and 64 live jobs.
type Config struct {
	// DefaultLeaseTTL applies when a job's spec carries no lease_ttl_ms.
	DefaultLeaseTTL time.Duration
	// MaxLeaseTTL caps client-requested lease TTLs.
	MaxLeaseTTL time.Duration
	// MaxShards bounds a job's shard count.
	MaxShards int
	// MaxJobs bounds jobs retained in memory (running and finished).
	MaxJobs int
	// Now overrides the clock; nil means time.Now. Tests drive lease
	// expiry deterministically through it.
	Now func() time.Time

	// StateDir, when non-empty, makes job state durable: every
	// submit/claim/renew/complete appends to an append-only journal
	// there, the shard table is snapshotted periodically, and Open
	// replays both back into an identical coordinator after a crash or
	// restart (see journal.go and recovery.go). Empty keeps the
	// coordinator purely in-memory. Durable coordinators must be
	// created with Open, not New.
	StateDir string
	// SnapshotEvery is the number of journal appends between shard-table
	// snapshots (journal truncation points); <= 0 means 256.
	SnapshotEvery int
	// SyncInterval is the group-commit window: non-critical journal
	// records (claim/renew) are fsynced at most this long after they are
	// written, batching the lease hot path's syncs. Critical records
	// (submit/complete/merge) always sync immediately. <= 0 means 100ms.
	SyncInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.DefaultLeaseTTL <= 0 {
		c.DefaultLeaseTTL = 30 * time.Second
	}
	if c.MaxLeaseTTL <= 0 {
		c.MaxLeaseTTL = 5 * time.Minute
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	return c
}

// shardState is one shard's position in the lease state machine.
type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

func (s shardState) String() string {
	switch s {
	case shardPending:
		return "pending"
	case shardLeased:
		return "leased"
	default:
		return "done"
	}
}

// shard is the coordinator-side record of one work unit.
type shard struct {
	state    shardState
	token    string    // current lease token (shardLeased only)
	worker   string    // current/last lessee
	deadline time.Time // current lease deadline
	leases   int       // leases ever granted (>1 means re-leased)
	renewals int
	cells    []byte // encoded ShardCells once done
	doneBy   string // worker whose result was accepted
}

// job is one submitted sweep with its shard table.
type job struct {
	id     string
	spec   SweepJob // normalized
	ttl    time.Duration
	shards []shard
	done   int // shards in shardDone

	merged   bool
	dat      []byte // merged Figure.Dat bytes
	failed   string // merge error (determinism bug — should never happen)
	mergeDur time.Duration

	releases   int // leases expired and made claimable again
	duplicates int // completions discarded because the shard was done
}

func (j *job) finished() bool { return j.merged || j.failed != "" }

// Coordinator schedules sweep jobs over leases. Safe for concurrent
// use; create with New (in-memory) or Open (durable).
type Coordinator struct {
	cfg Config

	mu    sync.Mutex
	jobs  map[string]*job
	order []string          // submission order, for any-job claims
	seq   int               // job-id and lease-token counter
	byKey map[string]string // client job key -> job id (idempotent Submit)

	// Durable-state machinery (nil journal = in-memory coordinator).
	// epoch counts Opens of the state dir; it namespaces lease tokens
	// so a recovered coordinator can never re-issue a dead
	// incarnation's token.
	jnl   *journal
	epoch int

	// lifetime counters (mu-guarded; see StatsSnapshot)
	stats SweepStats
}

// New returns an empty in-memory Coordinator. It panics when cfg
// names a StateDir whose recovery fails — durable coordinators should
// use Open and handle the error.
func New(cfg Config) *Coordinator {
	c, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// maxJobKeyLen bounds client-supplied idempotency keys.
const maxJobKeyLen = 200

// Submit validates and registers a sweep job, returning its id. Shard
// decomposition is immediate: the job's shards are claimable as soon
// as Submit returns.
//
// Submit is idempotent over spec.JobKey: a second submission carrying
// a known key returns the existing job's id without creating
// anything, which makes client retries safe even when a previous
// attempt committed but the response was lost (a dying primary, a
// failover rotation). Client.Submit always attaches a key.
func (c *Coordinator) Submit(spec SweepJob) (string, error) {
	if err := validFigure(spec.Figure); err != nil {
		return "", err
	}
	if spec.Seeds < 0 {
		return "", fmt.Errorf("coord: seeds must be >= 0 (0 means the default 10), got %d", spec.Seeds)
	}
	if spec.Seeds == 0 {
		spec.Seeds = 10 // the experiments.Config default, pinned here so leases are explicit
	}
	if spec.Shards < 1 || spec.Shards > c.cfg.MaxShards {
		return "", fmt.Errorf("coord: shards must be in [1, %d], got %d", c.cfg.MaxShards, spec.Shards)
	}
	if len(spec.JobKey) > maxJobKeyLen {
		return "", fmt.Errorf("coord: job_key longer than %d bytes", maxJobKeyLen)
	}
	ttl := c.cfg.DefaultLeaseTTL
	if spec.LeaseTTLMS > 0 {
		ttl = time.Duration(spec.LeaseTTLMS) * time.Millisecond
		if ttl > c.cfg.MaxLeaseTTL {
			ttl = c.cfg.MaxLeaseTTL
		}
	}
	spec.LeaseTTLMS = ttl.Milliseconds()

	c.mu.Lock()
	defer c.mu.Unlock()
	if spec.JobKey != "" {
		if id, ok := c.byKey[spec.JobKey]; ok {
			c.stats.SubmitsDeduped++
			return id, nil
		}
	}
	if len(c.jobs) >= c.cfg.MaxJobs {
		return "", ErrTooManyJobs
	}
	seq := c.seq + 1
	id := fmt.Sprintf("j%d", seq)
	if err := c.logRecord(record{Type: recSubmit, Job: id, Spec: &spec, Seq: seq}); err != nil {
		return "", err
	}
	c.seq = seq
	j := &job{
		id:     id,
		spec:   spec,
		ttl:    ttl,
		shards: make([]shard, spec.Shards),
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	if spec.JobKey != "" {
		c.byKey[spec.JobKey] = j.id
	}
	c.stats.JobsSubmitted++
	c.maybeSnapshotLocked()
	return j.id, nil
}

// validFigure rejects unknown figure ids before any worker burns a
// lease on them.
func validFigure(id string) error {
	for _, known := range experiments.FigureIDs() {
		if id == known {
			return nil
		}
	}
	return fmt.Errorf("coord: unknown figure %q (have %v)", id, experiments.FigureIDs())
}

// expireLeases returns every over-deadline lease of j to the pending
// pool. Called under mu with the current time; lazy expiry instead of
// timers keeps the Coordinator goroutine-free.
func (c *Coordinator) expireLeases(j *job, now time.Time) {
	for i := range j.shards {
		s := &j.shards[i]
		if s.state == shardLeased && now.After(s.deadline) {
			s.state = shardPending
			s.token = ""
			j.releases++
			c.stats.Releases++
		}
	}
}

// Claim leases the lowest pending shard of jobID — or, with jobID
// empty, of the oldest unfinished job — to worker. The lease must be
// completed or renewed before its deadline or the shard is re-leased.
// Returns ErrNoWork when every shard is leased or done but the job is
// unfinished, and ErrJobDone when a specifically named job finished.
func (c *Coordinator) Claim(jobID, worker string) (*Lease, error) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()

	var candidates []string
	if jobID != "" {
		if _, ok := c.jobs[jobID]; !ok {
			return nil, ErrUnknownJob
		}
		candidates = []string{jobID}
	} else {
		candidates = c.order
	}
	sawRunning := false
	for _, id := range candidates {
		j := c.jobs[id]
		if j.finished() {
			continue
		}
		sawRunning = true
		c.expireLeases(j, now)
		for i := range j.shards {
			s := &j.shards[i]
			if s.state != shardPending {
				continue
			}
			seq := c.seq + 1
			token := c.leaseToken(seq)
			deadline := now.Add(j.ttl)
			if err := c.logRecord(record{
				Type: recClaim, Job: j.id, Shard: i, Seq: seq,
				Token: token, Worker: worker, Deadline: deadline.UnixNano(),
			}); err != nil {
				return nil, err
			}
			c.seq = seq
			s.state = shardLeased
			s.token = token
			s.worker = worker
			s.deadline = deadline
			s.leases++
			c.stats.LeasesGranted++
			c.maybeSnapshotLocked()
			return &Lease{
				Job:      j.id,
				Figure:   j.spec.Figure,
				Seeds:    j.spec.Seeds,
				BaseSeed: j.spec.BaseSeed,
				Shard:    i,
				Shards:   len(j.shards),
				Token:    s.token,
				TTLMS:    j.ttl.Milliseconds(),
			}, nil
		}
	}
	if jobID != "" && !sawRunning {
		return nil, ErrJobDone
	}
	return nil, ErrNoWork
}

// leaseToken formats the token for the lease consuming counter value
// seq. Durable coordinators qualify tokens with the state dir's open
// count: even if a machine crash lost unsynced claim records (so the
// counter floor regressed), a recovered coordinator can never re-issue
// a token the dead incarnation handed out.
func (c *Coordinator) leaseToken(seq int) string {
	if c.epoch > 0 {
		return fmt.Sprintf("t%d.%d", c.epoch, seq)
	}
	return fmt.Sprintf("t%d", seq)
}

// Renew extends the lease identified by (jobID, shardIdx, token) by a
// full TTL from now and returns the remaining TTL in milliseconds. A
// lease that expired but was not yet re-issued is revived — the worker
// is provably still alive, and reviving beats a wasted recompute.
func (c *Coordinator) Renew(jobID string, shardIdx int, token string) (int64, error) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return 0, ErrUnknownJob
	}
	if shardIdx < 0 || shardIdx >= len(j.shards) {
		return 0, fmt.Errorf("coord: shard %d out of range [0, %d): %w", shardIdx, len(j.shards), ErrLeaseLost)
	}
	s := &j.shards[shardIdx]
	if s.state != shardLeased || s.token != token {
		return 0, ErrLeaseLost
	}
	deadline := now.Add(j.ttl)
	if err := c.logRecord(record{
		Type: recRenew, Job: j.id, Shard: shardIdx, Token: token, Deadline: deadline.UnixNano(),
	}); err != nil {
		return 0, err
	}
	s.deadline = deadline
	s.renewals++
	c.stats.Renewals++
	c.maybeSnapshotLocked()
	return j.ttl.Milliseconds(), nil
}

// Complete records one shard's encoded cells. The first result per
// shard wins; a duplicate (the shard was re-leased and someone else
// finished first — or finished twice) returns ErrDuplicate and is
// discarded, which is sound because shard results are deterministic
// functions of their coordinates. The token must be the shard's
// current lease: a worker whose lease expired unclaimed may still
// land its result (lazy expiry keeps the token current until someone
// else claims), but once re-leased only the new lessee or the final
// state matters. When the last shard lands the merge runs inline and
// the job transitions to done before Complete returns.
func (c *Coordinator) Complete(jobID string, shardIdx int, token, worker string, cells []byte) error {
	c.mu.Lock()
	j, ok := c.jobs[jobID]
	if !ok {
		c.mu.Unlock()
		return ErrUnknownJob
	}
	if shardIdx < 0 || shardIdx >= len(j.shards) {
		c.mu.Unlock()
		return fmt.Errorf("coord: shard %d out of range [0, %d): %w", shardIdx, len(j.shards), ErrLeaseLost)
	}
	s := &j.shards[shardIdx]
	if s.state == shardDone {
		if err := c.logRecord(record{Type: recDuplicate, Job: j.id, Shard: shardIdx}); err != nil {
			c.mu.Unlock()
			return err
		}
		j.duplicates++
		c.stats.Duplicates++
		c.mu.Unlock()
		return ErrDuplicate
	}
	if s.state != shardLeased || s.token != token {
		c.mu.Unlock()
		return ErrLeaseLost
	}

	// Decode before accepting so a malformed or mismatched artifact
	// fails the completing worker, not the eventual merge.
	sc, err := experiments.DecodeShardCells(bytes.NewReader(cells))
	if err != nil {
		c.mu.Unlock()
		return fmt.Errorf("coord: shard %d cells: %w", shardIdx, err)
	}
	switch {
	case sc.FigID != j.spec.Figure:
		err = fmt.Errorf("coord: cells belong to figure %q, job runs %q", sc.FigID, j.spec.Figure)
	case sc.Shard.Index != shardIdx || sc.Shard.Count != len(j.shards):
		err = fmt.Errorf("coord: cells cover shard %d/%d, lease was %d/%d",
			sc.Shard.Index, sc.Shard.Count, shardIdx, len(j.shards))
	case sc.Seeds != j.spec.Seeds || sc.BaseSeed != j.spec.BaseSeed:
		err = fmt.Errorf("coord: cells ran with seeds=%d base=%d, job wants seeds=%d base=%d",
			sc.Seeds, sc.BaseSeed, j.spec.Seeds, j.spec.BaseSeed)
	}
	if err != nil {
		c.mu.Unlock()
		return err
	}

	if err := c.logRecord(record{
		Type: recComplete, Job: j.id, Shard: shardIdx, Worker: worker, Cells: cells,
	}); err != nil {
		c.mu.Unlock()
		return err
	}
	s.state = shardDone
	s.token = ""
	s.cells = cells
	s.doneBy = worker
	j.done++
	c.stats.ShardsCompleted++
	if j.done < len(j.shards) {
		c.maybeSnapshotLocked()
		c.mu.Unlock()
		return nil
	}
	// Last shard: merge inline on this caller's goroutine. Decode and
	// fold outside the lock (progress polls stay responsive); no other
	// Complete can race in — every shard is shardDone, so concurrent
	// completions take the duplicate path above.
	parts := make([][]byte, len(j.shards))
	for i := range j.shards {
		parts[i] = j.shards[i].cells
	}
	c.mu.Unlock()

	start := c.cfg.Now()
	dat, err := mergeParts(j.spec, parts)
	dur := c.cfg.Now().Sub(start)

	c.mu.Lock()
	j.mergeDur = dur
	failed := ""
	if err != nil {
		failed = err.Error()
	}
	c.recordMergeOutcome(j, dat, failed)
	// The merge record is best-effort: every complete is already
	// durable and the merge is a pure function of them, so a lost
	// append merely means the next Open re-merges.
	_ = c.logRecord(record{Type: recMerge, Job: j.id, Dat: dat, Failed: failed, MergeNS: int64(dur)})
	c.maybeSnapshotLocked()
	c.mu.Unlock()
	return nil
}

// mergeParts decodes every shard's cells and folds them into the
// figure's .dat bytes — byte-identical to an unsharded BuildFigure run
// by the MergeFigure contract.
func mergeParts(spec SweepJob, parts [][]byte) ([]byte, error) {
	decoded := make([]*experiments.ShardCells, len(parts))
	for i, raw := range parts {
		sc, err := experiments.DecodeShardCells(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("re-decoding shard %d: %w", i, err)
		}
		decoded[i] = sc
	}
	cfg := experiments.Config{Seeds: spec.Seeds, BaseSeed: spec.BaseSeed}
	fig, err := experiments.MergeFigure(spec.Figure, cfg, decoded)
	if err != nil {
		return nil, err
	}
	return []byte(fig.Dat()), nil
}

// Progress snapshots a job: per-shard lease state and counters, plus
// the job-level re-lease/duplicate totals. Expired leases are folded
// back to pending first, so the snapshot never shows a dead lease as
// live.
func (c *Coordinator) Progress(jobID string) (*Progress, error) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, ErrUnknownJob
	}
	if !j.finished() {
		c.expireLeases(j, now)
	}
	p := &Progress{
		ID:         j.id,
		Figure:     j.spec.Figure,
		Seeds:      j.spec.Seeds,
		BaseSeed:   j.spec.BaseSeed,
		State:      "running",
		Done:       j.done,
		Total:      len(j.shards),
		Releases:   j.releases,
		Duplicates: j.duplicates,
		Error:      j.failed,
	}
	if j.merged {
		p.State = "done"
		p.MergeMS = j.mergeDur.Seconds() * 1e3
	} else if j.failed != "" {
		p.State = "failed"
	}
	for i := range j.shards {
		s := &j.shards[i]
		p.Shards = append(p.Shards, ShardProgress{
			Shard:    i,
			State:    s.state.String(),
			Worker:   s.worker,
			Leases:   s.leases,
			Renewals: s.renewals,
			DoneBy:   s.doneBy,
		})
	}
	return p, nil
}

// Result returns the merged figure's .dat bytes once every shard
// landed; ErrNotDone before that, or the recorded merge failure.
func (c *Coordinator) Result(jobID string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.failed != "" {
		return nil, fmt.Errorf("coord: job %s failed: %s", jobID, j.failed)
	}
	if !j.merged {
		return nil, ErrNotDone
	}
	return j.dat, nil
}

// SweepStats are the coordinator's lifetime counters, exposed on the
// daemon's /statsz. The scheduling counters (jobs, leases, merges) are
// durable: a recovered coordinator restores them from its snapshot and
// journal. The persistence counters below the marker describe this
// process incarnation only — recovery resets them.
type SweepStats struct {
	JobsSubmitted   int     `json:"jobs_submitted"`
	JobsActive      int     `json:"jobs_active"`
	JobsDone        int     `json:"jobs_done"`
	JobsFailed      int     `json:"jobs_failed"`
	LeasesGranted   int     `json:"leases_granted"`
	Renewals        int     `json:"renewals"`
	Releases        int     `json:"releases"` // expired leases re-offered (stragglers, dead workers)
	ShardsCompleted int     `json:"shards_completed"`
	Duplicates      int     `json:"duplicate_completions"`
	Merges          int     `json:"merges"`
	LastMergeMS     float64 `json:"last_merge_ms"`
	MaxMergeMS      float64 `json:"max_merge_ms"`

	// Process-local counters: not restored by recovery. SubmitsDeduped
	// hits append no journal record (dedup changes no state; the byKey
	// table itself is durable, so dedup keeps working after a restart).
	SubmitsDeduped int `json:"submits_deduped"`

	// Persistence counters (durable coordinators only; process-lifetime).
	JobsRecovered    int   `json:"jobs_recovered"`           // unfinished jobs restored at the last Open
	ShardsRecovered  int   `json:"shards_recovered"`         // completed shards restored (recomputes avoided)
	JournalReplayed  int   `json:"journal_records_replayed"` // records applied at the last Open
	JournalAppends   int64 `json:"journal_appends"`
	JournalSyncs     int64 `json:"journal_syncs"` // fsyncs issued (group commit batches appends between them)
	JournalBytes     int64 `json:"journal_bytes"`
	JournalTruncated int64 `json:"journal_truncated_bytes"` // torn/corrupt tail bytes dropped at Open
	Snapshots        int64 `json:"snapshots_written"`
}

// durable returns the stats as written into a snapshot: scheduling
// counters kept, process-local persistence counters zeroed.
func (st SweepStats) durable() SweepStats {
	st.JobsActive = 0
	st.SubmitsDeduped = 0
	st.JobsRecovered = 0
	st.ShardsRecovered = 0
	st.JournalReplayed = 0
	st.JournalAppends = 0
	st.JournalSyncs = 0
	st.JournalBytes = 0
	st.JournalTruncated = 0
	st.Snapshots = 0
	return st
}

// StatsSnapshot returns the current counters.
func (c *Coordinator) StatsSnapshot() SweepStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	for _, j := range c.jobs {
		if !j.finished() {
			st.JobsActive++
		}
	}
	return st
}
