package coord

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestNewClientParsesFailoverList(t *testing.T) {
	c := NewClient("http://a:8080")
	if c.BaseURL != "http://a:8080" {
		t.Fatalf("BaseURL = %q", c.BaseURL)
	}
	if c.Endpoints != nil {
		t.Fatalf("single URL must leave Endpoints nil, got %v", c.Endpoints)
	}

	c = NewClient(" http://a:8080/ , http://b:9090 ")
	if c.BaseURL != "http://a:8080" {
		t.Fatalf("BaseURL = %q", c.BaseURL)
	}
	want := []string{"http://a:8080", "http://b:9090"}
	if len(c.Endpoints) != len(want) {
		t.Fatalf("Endpoints = %v, want %v", c.Endpoints, want)
	}
	for i := range want {
		if c.Endpoints[i] != want[i] {
			t.Fatalf("Endpoints[%d] = %q, want %q", i, c.Endpoints[i], want[i])
		}
	}
}

// TestClientFailover points a Client at a dead endpoint followed by a
// live daemon and requires the call to succeed by rotating — and the
// answering endpoint to become the sticky primary for the next call.
func TestClientFailover(t *testing.T) {
	live := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		live++
		w.WriteHeader(http.StatusNotFound) // any HTTP answer proves the transport worked
	}))
	defer srv.Close()

	// 127.0.0.1:1 refuses connections essentially everywhere.
	c := NewClient("http://127.0.0.1:1," + srv.URL)
	if len(c.Endpoints) != 2 {
		t.Fatalf("Endpoints = %v", c.Endpoints)
	}

	_, err := c.Progress(context.Background(), "nope")
	if err != ErrUnknownJob {
		t.Fatalf("Progress after rotation: err = %v, want ErrUnknownJob", err)
	}
	if live != 1 {
		t.Fatalf("live endpoint hit %d times, want 1", live)
	}
	if got := c.cursor.Load(); got != 1 {
		t.Fatalf("cursor = %d after failover, want 1 (sticky primary)", got)
	}

	// The second call must go straight to the live endpoint.
	if _, err := c.Progress(context.Background(), "nope"); err != ErrUnknownJob {
		t.Fatalf("second Progress: err = %v", err)
	}
	if live != 2 {
		t.Fatalf("live endpoint hit %d times, want 2", live)
	}
}

// TestClientAllEndpointsDown requires the last transport error back
// when the whole rotation is unreachable.
func TestClientAllEndpointsDown(t *testing.T) {
	c := NewClient("http://127.0.0.1:1,http://127.0.0.1:1")
	if _, err := c.Progress(context.Background(), "x"); err == nil {
		t.Fatal("want a transport error when every endpoint is down")
	}
}

// TestClientSubmitIdempotentAcrossFailover is the double-submit
// regression: the primary commits a Submit but dies before answering,
// the client rotates and retries against a replica sharing the same
// coordinator — the auto-generated job key must dedupe, leaving
// exactly one job.
func TestClientSubmitIdempotentAcrossFailover(t *testing.T) {
	co := New(Config{Now: newFakeClock().Now})
	submitHandler := func(kill *bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var spec SweepJob
			if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
				t.Errorf("decoding submit: %v", err)
			}
			if spec.JobKey == "" {
				t.Error("Client.Submit sent no job_key")
			}
			id, err := co.Submit(spec)
			if err != nil {
				t.Errorf("Submit: %v", err)
			}
			if *kill {
				*kill = false
				// Commit happened; die before the response reaches the
				// client, like a crashing primary.
				panic(http.ErrAbortHandler)
			}
			json.NewEncoder(w).Encode(submitResponse{ID: id})
		}
	}
	killNext := true
	primary := httptest.NewServer(submitHandler(&killNext))
	defer primary.Close()
	noKill := false
	replica := httptest.NewServer(submitHandler(&noKill))
	defer replica.Close()

	c := NewClient(primary.URL + "," + replica.URL)
	id, err := c.Submit(context.Background(), testJob(2))
	if err != nil {
		t.Fatalf("Submit across failover: %v", err)
	}
	st := co.StatsSnapshot()
	if st.JobsSubmitted != 1 {
		t.Fatalf("jobs_submitted = %d after failover retry, want 1 (double-submit)", st.JobsSubmitted)
	}
	if st.SubmitsDeduped != 1 {
		t.Fatalf("submits_deduped = %d, want 1", st.SubmitsDeduped)
	}
	if _, err := co.Progress(id); err != nil {
		t.Fatalf("returned id %q unknown to the coordinator: %v", id, err)
	}

	// Distinct Submit calls must still create distinct jobs: the key is
	// per-call, not per-client.
	if _, err := c.Submit(context.Background(), testJob(2)); err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	if st := co.StatsSnapshot(); st.JobsSubmitted != 2 {
		t.Fatalf("jobs_submitted = %d after a distinct Submit, want 2", st.JobsSubmitted)
	}
}

// TestClientFailoverResendsBody verifies a POST body survives rotation:
// the live endpoint must receive the full JSON payload even though the
// first endpoint failed mid-flight.
func TestClientFailoverResendsBody(t *testing.T) {
	var gotWorker string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding rotated body: %v", err)
		}
		gotWorker = req.Worker
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	c := NewClient("http://127.0.0.1:1," + srv.URL)
	if _, err := c.Claim(context.Background(), "job", "w1"); err != ErrNoWork {
		t.Fatalf("Claim: err = %v, want ErrNoWork", err)
	}
	if gotWorker != "w1" {
		t.Fatalf("rotated request body lost: worker = %q, want %q", gotWorker, "w1")
	}
}
