package coord

// Recovery: Open replays snapshot + journal back into the exact shard
// table the previous process had, then serves as if the restart never
// happened. The equivalence argument, piece by piece:
//
//   - Submit/Claim/Renew/Complete each append their record under the
//     same mutex hold that mutates the table, so the journal is a
//     serialization of the live history.
//   - Lease deadlines are journaled as absolute timestamps. Recovery
//     does not expire anything itself: a lease whose deadline passed
//     while the coordinator was down is restored as leased and expires
//     lazily on the next Claim/Progress — the same code path, the same
//     observable effect, as a lease that expired with the coordinator
//     up. Stale Renew/Complete calls therefore keep mapping to
//     ErrLeaseLost (409), never to a 500.
//   - Lease expiry itself is never journaled: a claim record over a
//     shard the replay still sees as leased *is* the expiry, and replay
//     counts the release exactly where the live path did.
//   - Tokens are journaled verbatim, and fresh tokens carry the state
//     dir's open count (epoch), so a token issued by a crashed
//     incarnation can never collide with one issued after recovery even
//     if unsynced claim records were lost to a machine crash.
//   - A crash after the last Complete but before its merge record is
//     repaired at open: shard cells are durable, the merge is a pure
//     function of them, so recovery just re-merges (byte-identical by
//     the MergeFigure contract).
//
// The restart-equivalence property test (recovery_test.go) checks all
// of this mechanically at every journal prefix.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Open returns a Coordinator, recovering any durable state when
// cfg.StateDir is set (the directory is created if missing). With an
// empty StateDir the coordinator is purely in-memory and Open never
// fails; New is the must-succeed wrapper for that case.
func Open(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg, jobs: make(map[string]*job), byKey: make(map[string]string)}
	if cfg.StateDir == "" {
		return c, nil
	}
	if err := c.recover(); err != nil {
		return nil, fmt.Errorf("coord: opening state dir %s: %w", cfg.StateDir, err)
	}
	return c, nil
}

// recover loads the snapshot, replays the journal tail, repairs any
// missing merge, and marks the new epoch. Runs before the Coordinator
// is published, so no locking is needed.
func (c *Coordinator) recover() error {
	dir := c.cfg.StateDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var snapLSN uint64
	snap, err := readSnapshot(dir)
	if err != nil {
		return err
	}
	if snap != nil {
		c.restoreSnapshot(snap)
		snapLSN = snap.LSN
	}

	f, err := os.OpenFile(filepath.Join(dir, journalFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return err
	}
	recs, valid := decodeJournal(data)
	if valid < len(data) {
		// Torn or corrupt tail: truncate to the last valid record. The
		// dropped bytes were never acknowledged as durable (they lost a
		// race with a crash), so no committed state disappears.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return err
		}
		c.stats.JournalTruncated += int64(len(data) - valid)
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return err
	}

	lsn := snapLSN
	for i := range recs {
		r := &recs[i]
		if r.LSN <= snapLSN {
			continue // the snapshot already absorbed this record
		}
		c.applyRecord(r)
		lsn = r.LSN
		c.stats.JournalReplayed++
	}
	c.jnl = &journal{dir: dir, f: f, lsn: lsn, lastSync: c.cfg.Now()}

	// Crash between the last Complete and its merge record: cells are
	// durable and the merge is deterministic, so finish it now.
	for _, id := range c.order {
		j := c.jobs[id]
		if j.done == len(j.shards) && !j.finished() {
			c.mergeLocked(j)
		}
	}

	for _, id := range c.order {
		j := c.jobs[id]
		if !j.finished() {
			c.stats.JobsRecovered++
		}
		c.stats.ShardsRecovered += j.done
	}

	// Mark the open. The epoch bump namespaces every future lease token
	// away from any token the dead incarnation handed out.
	c.epoch++
	if err := c.logRecord(record{Type: recOpen, Epoch: c.epoch}); err != nil {
		f.Close()
		return err
	}
	return nil
}

// applyRecord folds one journal record into the shard table — the
// replay twin of the live Submit/Claim/Renew/Complete mutations.
// Records that no longer make sense (unknown job, out-of-range shard,
// completing a done shard) are skipped rather than trusted: the WAL
// fuzz target guarantees we only see checksummed records, but replay
// still refuses to let one bad record corrupt the table.
func (c *Coordinator) applyRecord(r *record) {
	if r.Seq > c.seq {
		c.seq = r.Seq
	}
	switch r.Type {
	case recOpen:
		if r.Epoch > c.epoch {
			c.epoch = r.Epoch
		}
	case recSubmit:
		if r.Spec == nil || r.Job == "" {
			return
		}
		if _, ok := c.jobs[r.Job]; ok {
			return
		}
		spec := *r.Spec
		j := &job{
			id:     r.Job,
			spec:   spec,
			ttl:    time.Duration(spec.LeaseTTLMS) * time.Millisecond,
			shards: make([]shard, spec.Shards),
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
		if spec.JobKey != "" {
			c.byKey[spec.JobKey] = j.id
		}
		c.stats.JobsSubmitted++
	case recClaim:
		j, s := c.replayShard(r)
		if s == nil || s.state == shardDone {
			return
		}
		if s.state == shardLeased {
			// The live path expired this lease (lazily) before re-leasing;
			// the re-claim is where replay observes and counts it.
			j.releases++
			c.stats.Releases++
		}
		s.state = shardLeased
		s.token = r.Token
		s.worker = r.Worker
		s.deadline = time.Unix(0, r.Deadline)
		s.leases++
		c.stats.LeasesGranted++
	case recRenew:
		_, s := c.replayShard(r)
		if s == nil || s.state != shardLeased || s.token != r.Token {
			return
		}
		s.deadline = time.Unix(0, r.Deadline)
		s.renewals++
		c.stats.Renewals++
	case recComplete:
		j, s := c.replayShard(r)
		if s == nil || s.state == shardDone {
			return
		}
		s.state = shardDone
		s.token = ""
		s.cells = r.Cells
		s.doneBy = r.Worker
		j.done++
		c.stats.ShardsCompleted++
	case recDuplicate:
		j, s := c.replayShard(r)
		if s == nil {
			return
		}
		j.duplicates++
		c.stats.Duplicates++
	case recMerge:
		j, ok := c.jobs[r.Job]
		if !ok || j.finished() {
			return
		}
		j.mergeDur = time.Duration(r.MergeNS)
		c.recordMergeOutcome(j, r.Dat, r.Failed)
	}
}

// replayShard resolves a record's (job, shard) pair, nil on anything
// out of range.
func (c *Coordinator) replayShard(r *record) (*job, *shard) {
	j, ok := c.jobs[r.Job]
	if !ok || r.Shard < 0 || r.Shard >= len(j.shards) {
		return nil, nil
	}
	return j, &j.shards[r.Shard]
}

// recordMergeOutcome applies a merge result (live or replayed) to the
// job and the lifetime counters.
func (c *Coordinator) recordMergeOutcome(j *job, dat []byte, failed string) {
	if failed != "" {
		j.failed = failed
		c.stats.JobsFailed++
		return
	}
	j.dat = dat
	j.merged = true
	c.stats.JobsDone++
	c.stats.Merges++
	ms := j.mergeDur.Seconds() * 1e3
	c.stats.LastMergeMS = ms
	if ms > c.stats.MaxMergeMS {
		c.stats.MaxMergeMS = ms
	}
}

// mergeLocked runs a job's final merge inline (recovery path: nothing
// is serving yet, so holding everything is fine), records the outcome
// and journals it.
func (c *Coordinator) mergeLocked(j *job) {
	parts := make([][]byte, len(j.shards))
	for i := range j.shards {
		parts[i] = j.shards[i].cells
	}
	start := c.cfg.Now()
	dat, err := mergeParts(j.spec, parts)
	j.mergeDur = c.cfg.Now().Sub(start)
	failed := ""
	if err != nil {
		failed = err.Error()
	}
	c.recordMergeOutcome(j, dat, failed)
	// Journal append failures here are swallowed: the in-memory result
	// is correct, completes are durable, and the next open re-merges.
	_ = c.logRecord(record{Type: recMerge, Job: j.id, Dat: dat, Failed: failed, MergeNS: int64(j.mergeDur)})
}

// restoreSnapshot rebuilds the coordinator from a snapshot document.
func (c *Coordinator) restoreSnapshot(doc *snapshotDoc) {
	c.seq = doc.Seq
	c.epoch = doc.Epoch
	c.stats = doc.Stats
	for i := range doc.Jobs {
		js := &doc.Jobs[i]
		j := &job{
			id:         js.ID,
			spec:       js.Spec,
			ttl:        time.Duration(js.Spec.LeaseTTLMS) * time.Millisecond,
			shards:     make([]shard, len(js.Shards)),
			done:       js.Done,
			merged:     js.Merged,
			dat:        js.Dat,
			failed:     js.Failed,
			mergeDur:   time.Duration(js.MergeNS),
			releases:   js.Releases,
			duplicates: js.Duplicates,
		}
		for k := range js.Shards {
			ss := &js.Shards[k]
			s := &j.shards[k]
			switch ss.State {
			case "leased":
				s.state = shardLeased
			case "done":
				s.state = shardDone
			default:
				s.state = shardPending
			}
			s.token = ss.Token
			s.worker = ss.Worker
			if ss.Deadline != 0 {
				s.deadline = time.Unix(0, ss.Deadline)
			}
			s.leases = ss.Leases
			s.renewals = ss.Renewals
			s.cells = ss.Cells
			s.doneBy = ss.DoneBy
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
		if js.Spec.JobKey != "" {
			c.byKey[js.Spec.JobKey] = j.id
		}
	}
}

// snapshotDocLocked serializes the full coordinator state. Called
// under mu. Process-local persistence counters are zeroed in the doc:
// they describe this incarnation, not the durable history.
func (c *Coordinator) snapshotDocLocked() *snapshotDoc {
	doc := &snapshotDoc{
		Version: snapshotVersion,
		Epoch:   c.epoch,
		Seq:     c.seq,
		Stats:   c.stats.durable(),
	}
	if c.jnl != nil {
		doc.LSN = c.jnl.lsn
	}
	for _, id := range c.order {
		j := c.jobs[id]
		js := jobSnap{
			ID:         j.id,
			Spec:       j.spec,
			Done:       j.done,
			Merged:     j.merged,
			Dat:        j.dat,
			Failed:     j.failed,
			MergeNS:    int64(j.mergeDur),
			Releases:   j.releases,
			Duplicates: j.duplicates,
			Shards:     make([]shardSnap, len(j.shards)),
		}
		for i := range j.shards {
			s := &j.shards[i]
			ss := &js.Shards[i]
			ss.State = s.state.String()
			ss.Token = s.token
			ss.Worker = s.worker
			if !s.deadline.IsZero() {
				ss.Deadline = s.deadline.UnixNano()
			}
			ss.Leases = s.leases
			ss.Renewals = s.renewals
			ss.Cells = s.cells
			ss.DoneBy = s.doneBy
		}
		doc.Jobs = append(doc.Jobs, js)
	}
	return doc
}

// snapshotLocked writes a snapshot and truncates the journal it
// absorbs. Called under mu.
func (c *Coordinator) snapshotLocked() error {
	if c.jnl == nil || c.jnl.closed {
		return nil
	}
	// The snapshot must cover everything the journal holds, including
	// batched appends that have not hit the disk yet — sync first so a
	// crash right after the truncate cannot lose them.
	if err := c.jnl.sync(c.cfg.Now()); err != nil {
		return err
	}
	if err := writeSnapshot(c.jnl.dir, c.snapshotDocLocked()); err != nil {
		return err
	}
	if err := c.jnl.reset(); err != nil {
		return err
	}
	c.stats.Snapshots++
	return nil
}

// maybeSnapshotLocked snapshots when enough journal appends piled up
// since the last one. Failures are ignored: the journal remains the
// authority and simply keeps growing until a snapshot succeeds.
func (c *Coordinator) maybeSnapshotLocked() {
	if c.jnl == nil || c.jnl.closed || c.jnl.appends < c.cfg.SnapshotEvery {
		return
	}
	_ = c.snapshotLocked()
}

// Close flushes and seals the coordinator's durable state: batched
// journal appends are fsynced and a final snapshot is written, so the
// next Open recovers from the snapshot alone. In-memory coordinators
// Close as a no-op. Safe to call more than once; operations arriving
// after Close fail with ErrJournal.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jnl == nil || c.jnl.closed {
		return nil
	}
	err := c.snapshotLocked()
	if err != nil {
		// Snapshot failed; the synced journal (if the sync half worked)
		// still recovers everything.
		_ = c.jnl.sync(c.cfg.Now())
	}
	if cerr := c.jnl.f.Close(); err == nil {
		err = cerr
	}
	c.jnl.closed = true
	return err
}

// logRecord appends one record to the journal; a no-op for in-memory
// coordinators. Called under mu. Errors wrap ErrJournal (the HTTP
// layer maps it to 500): the mutation the record describes must not
// proceed, or replay would diverge from the history a client observed.
func (c *Coordinator) logRecord(r record) error {
	if c.jnl == nil {
		return nil
	}
	n, synced, err := c.jnl.append(&r, c.cfg.SyncInterval, c.cfg.Now())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	c.stats.JournalAppends++
	c.stats.JournalBytes += int64(n)
	if synced {
		c.stats.JournalSyncs++
	}
	return nil
}
