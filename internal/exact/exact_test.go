package exact

import (
	"errors"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/platform"
)

func homPlatform() *platform.Platform {
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(4, 4)
	return p
}

func TestRejectsHeterogeneous(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 5}, 1)
	if _, err := Solve(in, Limits{}); !errors.Is(err, ErrHeterogeneous) {
		t.Fatalf("want ErrHeterogeneous, got %v", err)
	}
}

func TestSmallTreeOptimalIsOneProcessor(t *testing.T) {
	// The paper's CPLEX finding: for 20-operator trees the optimum buys a
	// single processor.
	for seed := int64(0); seed < 5; seed++ {
		in := instance.Generate(instance.Config{NumOps: 12, Alpha: 0.9, Platform: homPlatform()}, seed)
		res, err := Solve(in, Limits{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Proven {
			t.Fatalf("seed %d: search did not complete", seed)
		}
		if res.Procs != 1 {
			t.Fatalf("seed %d: optimal = %d processors, want 1", seed, res.Procs)
		}
		if err := res.Mapping.Validate(); err != nil {
			t.Fatalf("seed %d: optimal mapping invalid: %v", seed, err)
		}
	}
}

func TestOptimalNeverWorseThanHeuristics(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := instance.Generate(instance.Config{NumOps: 10, Alpha: 1.4, Platform: homPlatform()}, seed)
		res, err := Solve(in, Limits{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, h := range heuristics.All() {
			hres, herr := heuristics.Solve(in, h, heuristics.Options{Seed: seed})
			if herr != nil {
				continue
			}
			if res.Cost > hres.Cost+1e-6 {
				t.Fatalf("seed %d: optimal %v worse than %s %v", seed, res.Cost, h.Name(), hres.Cost)
			}
		}
	}
}

func TestMultiProcessorOptimum(t *testing.T) {
	// A slow homogeneous CPU at high alpha cannot carry the whole tree on
	// one processor; the optimum must use >= 2 and match the compute lower
	// bound.
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(0, 4)
	in := instance.Generate(instance.Config{NumOps: 12, Alpha: 2.0, Platform: p}, 0)
	res, err := Solve(in, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs < 2 {
		t.Fatalf("expected a multi-processor optimum, got %d", res.Procs)
	}
	total := 0.0
	for _, w := range in.W {
		total += in.Rho * w
	}
	speed := in.Platform.Catalog.SpeedUnits(platform.Config{})
	lb := int((total + speed - 1) / speed)
	if res.Procs < lb {
		t.Fatalf("optimal %d below compute lower bound %d", res.Procs, lb)
	}
}

func TestInfeasibleInstance(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 10, Alpha: 3, Platform: homPlatform()}, 1)
	if _, err := Solve(in, Limits{}); !errors.Is(err, heuristics.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 14, Alpha: 1.2, Rho: 40, Platform: homPlatform()}, 2)
	res, err := Solve(in, Limits{MaxNodes: 50})
	if err == nil {
		// Tiny budgets may still complete thanks to the heuristic seed and
		// pruning; when they do the result must be proven.
		if !res.Proven {
			t.Fatal("no error but result not proven")
		}
		return
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res != nil && res.Mapping != nil {
		if verr := res.Mapping.Validate(); verr != nil {
			t.Fatalf("best-found mapping invalid: %v", verr)
		}
	}
}

// BenchmarkSolve measures the branch-and-bound search on a pinned
// multi-processor instance (slow homogeneous CPU, so the search actually
// branches); cmd/bench derives its gated solve/exact entries from the
// same shape.
func BenchmarkSolve(b *testing.B) {
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(0, 4)
	in := instance.Generate(instance.Config{NumOps: 14, Alpha: 2.0, Platform: p}, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(in, Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExactHeuristicByName: the "Exact" adapter runs through the full
// solve pipeline and lands on the same optimum Solve reports.
func TestExactHeuristicByName(t *testing.T) {
	h, err := heuristics.ByName("Exact")
	if err != nil {
		t.Fatal(err)
	}
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(0, 4)
	in := instance.Generate(instance.Config{NumOps: 12, Alpha: 2.0, Platform: p}, 0)
	res, err := heuristics.Solve(in, h, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(in, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != want.Cost || res.Procs != want.Procs {
		t.Fatalf("pipeline got cost=%v procs=%d, Solve got cost=%v procs=%d",
			res.Cost, res.Procs, want.Cost, want.Procs)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heterogeneous cells must fail loudly, not silently approximate.
	het := instance.Generate(instance.Config{NumOps: 12, Alpha: 2.0}, 0)
	if _, err := heuristics.Solve(het, h, heuristics.Options{}); !errors.Is(err, ErrHeterogeneous) {
		t.Fatalf("want ErrHeterogeneous, got %v", err)
	}
}
