// Package exact computes optimal mappings for small instances on
// homogeneous platforms (the paper's CONSTR-HOM scenario) by
// branch-and-bound over operator-to-processor assignments.
//
// This plays the role of the paper's CPLEX runs: the paper, too, could
// only obtain optimal solutions "in a homogeneous setting" for trees of
// about 20 operators. With a single processor configuration the objective
// reduces to minimizing the number of purchased processors.
package exact

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
)

// ErrHeterogeneous is returned for non-CONSTR-HOM catalogs.
var ErrHeterogeneous = errors.New("exact: catalog is not homogeneous (CONSTR-HOM required)")

// ErrBudget is returned when the node budget is exhausted before the
// search space is covered; the best solution found so far (if any) is
// still returned alongside it.
var ErrBudget = errors.New("exact: node budget exhausted")

// Limits bounds the search.
type Limits struct {
	MaxNodes int // explored search nodes; 0 means DefaultMaxNodes
}

// DefaultMaxNodes caps the branch-and-bound search.
const DefaultMaxNodes = 2_000_000

// Result is an optimal (or best-found, when ErrBudget) solution.
type Result struct {
	Procs   int
	Cost    float64
	Mapping *mapping.Mapping
	Nodes   int  // search nodes explored
	Proven  bool // true when the search completed and the result is optimal
}

// Solve finds a minimum-processor mapping for an instance on a homogeneous
// catalog. Operators are assigned in bottom-up order; branching tries the
// existing processors first, then at most one fresh processor (symmetry
// breaking). A complete assignment must additionally pass the three-loop
// server selection to count.
func Solve(in *instance.Instance, lim Limits) (*Result, error) {
	if !in.Platform.Catalog.Homogeneous() {
		return nil, ErrHeterogeneous
	}
	if err := heuristics.Precheck(in); err != nil {
		return nil, err
	}
	maxNodes := lim.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}

	cfg := platform.Config{}
	cat := in.Platform.Catalog
	speed := cat.SpeedUnits(cfg)

	order := in.Tree.BottomUp()
	m := mapping.New(in)
	// The DFS backtracks through the move journal: every branch checkpoints,
	// recurses and rolls back, so the journal never holds more than the
	// records along the current root-to-node path and a complete leaf is
	// undone — server selection included — without cloning. The mapping is
	// cloned only when a leaf strictly improves the incumbent.
	m.SetJournal(true)

	// Seed the incumbent with a heuristic solution to prune early.
	bestProcs := math.MaxInt
	var bestMapping *mapping.Mapping
	if res, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{}); err == nil {
		bestProcs = res.Procs
		bestMapping = res.Mapping
	}

	// Suffix work sums for the compute-based pruning bound.
	suffixWork := make([]float64, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		suffixWork[i] = suffixWork[i+1] + in.Rho*in.W[order[i]]
	}

	nodes := 0
	budgetHit := false
	var dfs func(idx int)
	dfs = func(idx int) {
		if budgetHit {
			return
		}
		nodes++
		if nodes > maxNodes {
			budgetHit = true
			return
		}
		// Rollback pops rejected purchases, so every processor is alive and
		// the processor count is the purchase count.
		used := len(m.Procs)
		if used >= bestProcs {
			return
		}
		if idx == len(order) {
			mark := m.Checkpoint()
			if heuristics.SelectServersThreeLoop(m) == nil && m.Validate() == nil {
				bestProcs = used
				bestMapping = m.Clone() // strict improvement: snapshot
			}
			m.Rollback(mark) // undo the server selection; placement stays
			return
		}
		// Compute-slack bound: the remaining work cannot fit in fewer than
		// lbExtra additional processors.
		slack := 0.0
		for p := 0; p < used; p++ {
			slack += speed - m.ComputeLoad(p)
		}
		if rem := suffixWork[idx] - slack; rem > 0 {
			extra := int(math.Ceil(rem/speed - 1e-9))
			if used+extra >= bestProcs {
				return
			}
		}
		op := order[idx]
		for p := 0; p < used; p++ {
			mark := m.Checkpoint()
			if m.TryPlace(p, op) {
				dfs(idx + 1)
			}
			m.Rollback(mark)
			if budgetHit {
				return
			}
		}
		if used+1 < bestProcs {
			mark := m.Checkpoint()
			if m.TryPlace(m.Buy(cfg), op) {
				dfs(idx + 1)
			}
			m.Rollback(mark) // un-buys the fresh processor again
		}
	}
	dfs(0)

	if bestMapping == nil {
		if budgetHit {
			return nil, fmt.Errorf("no solution within budget: %w", ErrBudget)
		}
		return nil, fmt.Errorf("exact: %w", heuristics.ErrInfeasible)
	}
	res := &Result{
		Procs:   len(bestMapping.AliveProcs()),
		Cost:    bestMapping.Cost(),
		Mapping: bestMapping,
		Nodes:   nodes,
		Proven:  !budgetHit,
	}
	if budgetHit {
		return res, ErrBudget
	}
	return res, nil
}
