package exact

import (
	"errors"
	"math/rand"

	"repro/internal/heuristics"
	"repro/internal/mapping"
)

// Exact adapts Solve to the heuristics.Heuristic interface so the
// branch-and-bound optimum can run through the experiment Grid and CLIs
// by name, next to the constructive heuristics and the refinement layer.
// It is registered with heuristics.ByName as "Exact" (default limits).
//
// Like Solve it only supports homogeneous catalogs (CONSTR-HOM); on
// heterogeneous cells the placement fails with ErrHeterogeneous. When the
// node budget runs out the best mapping found so far is used, so a cell
// degrades to "best found" rather than failing.
type Exact struct {
	Limits Limits
}

func init() { heuristics.Register(Exact{}) }

// Name implements heuristics.Heuristic.
func (Exact) Name() string { return "Exact" }

// Place implements heuristics.Heuristic: it runs the branch-and-bound
// search and copies the optimal placement into m. Server selection is
// redone by the pipeline on the copied placement (the search already
// proved one exists), so downstream steps see exactly the state any
// other heuristic leaves behind. The rand stream is unused: the search
// is deterministic.
func (e Exact) Place(pc *heuristics.PlaceContext, m *mapping.Mapping, r *rand.Rand) error {
	res, err := Solve(m.Inst, e.Limits)
	if err != nil && (res == nil || !errors.Is(err, ErrBudget)) {
		return err
	}
	m.CopyFrom(res.Mapping)
	m.ClearDownloads()
	return nil
}
