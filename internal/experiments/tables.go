package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/bounds"
	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/ilp"
	"repro/internal/instance"
	"repro/internal/platform"
	"repro/internal/stream"
)

// Table is a reproduced paper table (or text-experiment summary).
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
}

// String pretty-prints the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		widths[i] = w
		b.WriteString(strings.Repeat("-", w) + "  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Table1 reproduces the paper's Table 1 (the platform cost catalog) from
// the live platform package, so any drift from the paper's numbers shows
// up in the output.
func Table1() *Table {
	cat := platform.Default()
	t := &Table{
		ID:      "table1",
		Title:   "Table 1: platform costs (Dell PowerEdge R900, March 2008)",
		Headers: []string{"component", "capability", "cost ($)", "ratio"},
	}
	for _, c := range cat.CPUs {
		t.Rows = append(t.Rows, []string{
			"CPU", fmt.Sprintf("%.2f GHz", c.SpeedGHz),
			fmt.Sprintf("%.0f + %.0f", cat.Base, c.Upcharge),
			fmt.Sprintf("%.2e GHz/$", c.SpeedGHz/(cat.Base+c.Upcharge)),
		})
	}
	for _, n := range cat.NICs {
		t.Rows = append(t.Rows, []string{
			"NIC", fmt.Sprintf("%.0f Gbps", n.Gbps),
			fmt.Sprintf("%.0f + %.0f", cat.Base, n.Upcharge),
			fmt.Sprintf("%.2e Gbps/$", n.Gbps/(cat.Base+n.Upcharge)),
		})
	}
	return t
}

// OptimalComparison reproduces the paper's last experiment (E6):
// heuristics versus the optimal solution on small trees in the
// homogeneous setting (CONSTR-HOM, no downgrade step), with the ILP
// relaxation and the analytic bound as certified lower bounds.
func OptimalComparison(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "optimal",
		Title: "Heuristics vs optimal, CONSTR-HOM small trees (processor counts, averaged)",
		Headers: []string{"N", "alpha", "LB(analytic)", "LB(ILP)", "optimal",
			"Subtree", "Comp-G", "Comm-G", "Obj-Grp", "Obj-Avl", "Random"},
	}
	hs := []heuristics.Heuristic{
		heuristics.SubtreeBottomUp{}, heuristics.CompGreedy{}, heuristics.CommGreedy{},
		heuristics.ObjectGrouping{}, heuristics.ObjectAvailability{}, heuristics.Random{},
	}
	for _, sc := range []struct {
		n     int
		alpha float64
	}{{6, 0.9}, {6, 2.0}, {8, 0.9}, {8, 1.9}, {10, 0.9}, {12, 1.6}} {
		sums := make([]float64, len(hs))
		counts := make([]int, len(hs))
		var optSum, lbSum, ilpSum float64
		var optCount, ilpCount int
		for s := 0; s < cfg.Seeds; s++ {
			seed := cfg.BaseSeed + int64(s)
			p := platform.DefaultPlatform()
			p.Catalog = platform.Homogeneous(0, 4) // slow CPU: multi-processor optima appear
			in := instance.Generate(instance.Config{
				NumOps: sc.n, NumTypes: 5, Alpha: sc.alpha, Platform: p,
			}, seed)
			res, err := exact.Solve(in, exact.Limits{})
			if err != nil {
				continue // infeasible seed: skip entirely
			}
			optSum += float64(res.Procs)
			optCount++
			lbSum += float64(bounds.MinProcessors(in))
			if model, err := ilp.Build(in, res.Procs+1); err == nil {
				if lb, err := model.RelaxationLB(); err == nil {
					unit := in.Platform.Catalog.Cost(platform.Config{})
					ilpSum += lb / unit
					ilpCount++
				}
			}
			for hi, h := range hs {
				hres, err := heuristics.Solve(in, h, heuristics.Options{Seed: seed})
				if err != nil {
					continue
				}
				sums[hi] += float64(hres.Procs)
				counts[hi]++
			}
		}
		if optCount == 0 {
			continue
		}
		row := []string{
			fmt.Sprintf("%d", sc.n), fmt.Sprintf("%.1f", sc.alpha),
			fmt.Sprintf("%.2f", lbSum/float64(optCount)),
			cellOrDash(ilpSum, ilpCount),
			fmt.Sprintf("%.2f", optSum/float64(optCount)),
		}
		for hi := range hs {
			row = append(row, cellOrDash(sums[hi], counts[hi]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func cellOrDash(sum float64, count int) string {
	if count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", sum/float64(count))
}

// ThroughputValidation runs experiment V1 on the sweep Grid's
// verification column: every heuristic mapping is executed by the
// stream engine and its measured steady-state throughput compared
// against the QoS target rho.
func ThroughputValidation(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "v1",
		Title: "V1: simulated throughput of heuristic mappings (target rho = 1)",
		Headers: []string{"N", "heuristic", "feasible", "min measured", "min analytic",
			"meets rho"},
	}
	ns := []float64{10, 20, 40}
	var hs []string
	for _, h := range heuristics.All() {
		hs = append(hs, h.Name())
	}
	g := &Grid{
		Heuristics: hs,
		Xs:         ns,
		Seeds:      cfg.Seeds,
		BaseSeed:   cfg.BaseSeed,
		Workers:    cfg.Workers,
		Make: MakeInstances(func(x float64) instance.Config {
			return instance.Config{NumOps: int(x), Alpha: 1.1}
		}),
		Verify: &stream.Options{Results: 80},
	}
	cells, err := g.Cells(context.Background())
	if err != nil {
		panic(err) // static inputs; only a programming error can land here
	}
	for ni, n := range ns {
		for hi, name := range hs {
			minMeasured, minAnalytic := -1.0, -1.0
			feasible := 0
			allMeet := true
			for s := 0; s < cfg.Seeds; s++ {
				c := &cells[(hi*len(ns)+ni)*cfg.Seeds+s]
				if c.Err != nil {
					continue
				}
				feasible++
				if c.VerifyErr != nil {
					allMeet = false
					continue
				}
				if minMeasured < 0 || c.Measured < minMeasured {
					minMeasured = c.Measured
				}
				if minAnalytic < 0 || c.Analytic < minAnalytic {
					minAnalytic = c.Analytic
				}
				if c.Measured < 0.9*c.Rho {
					allMeet = false
				}
			}
			row := []string{fmt.Sprintf("%.0f", n), name, fmt.Sprintf("%d/%d", feasible, cfg.Seeds)}
			if feasible == 0 {
				row = append(row, "-", "-", "-")
			} else {
				row = append(row,
					fmt.Sprintf("%.2f", minMeasured),
					fmt.Sprintf("%.2f", minAnalytic),
					fmt.Sprintf("%v", allMeet))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// ILPScalingNote reproduces the paper's negative result: the full ILP
// cannot even be built for moderate trees. It returns the tree size at
// which Build starts failing with ErrTooLarge.
func ILPScalingNote() (int, error) {
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(4, 4)
	for n := 5; n <= 120; n += 5 {
		in := instance.Generate(instance.Config{NumOps: n, Platform: p}, 1)
		_, err := ilp.Build(in, n)
		if errors.Is(err, ilp.ErrTooLarge) {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("ILP never exceeded the size budget")
}
