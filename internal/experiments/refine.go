package experiments

import (
	"context"
	"fmt"
	"math"

	_ "repro/internal/exact" // registers the "Exact" heuristic with ByName
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
	_ "repro/internal/refine" // registers the "Refined" heuristic with ByName
)

// refinePlatform is the optimal-comparison table's CONSTR-HOM slow-CPU
// platform: the whole tree stops fitting on one processor, so
// multi-processor optima appear and the constructive heuristics, the
// refinement layer and the branch-and-bound optimum can actually differ.
func refinePlatform() *platform.Platform {
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(0, 4)
	return p
}

// refineGrid is the sweep behind the "refine" figure and RefineGate: the
// full heuristic set plus the refinement layer plus the exact optimum,
// on small high-alpha CONSTR-HOM instances where the optimum is provable.
func refineGrid(cfg Config) *Grid {
	plat := refinePlatform()
	g := stdGrid(cfg, []float64{6, 8, 10, 12}, func(x float64) instance.Config {
		return instance.Config{NumOps: int(x), Alpha: 2.0, Platform: plat}
	})
	g.Heuristics = append(g.Heuristics, "Refined", "Exact")
	return g
}

// refineDef is the PR's headline figure: per-heuristic mean cost next to
// the refined and the exact-optimal curves. The constructive heuristics
// fan out (the worst buys more processors than the best); "Refined" and
// "Exact" sit on the optimal envelope.
func refineDef() figDef {
	return figDef{
		id: "refine", title: "Refinement vs constructive heuristics vs exact optimum (CONSTR-HOM slow CPU, alpha=2.0)",
		xlabel: "number of nodes", ylabel: "cost ($)",
		units: []unitDef{{grid: refineGrid, fold: meanSeries}},
	}
}

// RefineGate runs the refine figure's grid and enforces the refinement
// layer's contract cell by cell (not on the plotted means, which average
// over per-heuristic feasible sets and so cannot witness per-instance
// dominance): on every (x, seed) instance where at least one constructive
// heuristic finds a feasible mapping, "Refined" must be feasible too and
// must not cost more than the cheapest constructive result. Returns the
// number of instances checked; any violation is an error naming the cell.
func RefineGate(ctx context.Context, cfg Config) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	cfg = cfg.withDefaults()
	g := refineGrid(cfg)
	cells, err := g.Cells(ctx)
	if err != nil {
		return 0, err
	}
	nx, ns := len(g.Xs), g.Seeds
	refined := -1
	constructive := make([]int, 0, len(g.Heuristics))
	for hi, name := range g.Heuristics {
		switch name {
		case "Refined":
			refined = hi
		case "Exact":
		default:
			constructive = append(constructive, hi)
		}
	}
	checked := 0
	for xi := 0; xi < nx; xi++ {
		for s := 0; s < ns; s++ {
			best := math.Inf(1)
			for _, hi := range constructive {
				if c := &cells[(hi*nx+xi)*ns+s]; c.Err == nil && c.Cost < best {
					best = c.Cost
				}
			}
			if math.IsInf(best, 1) {
				continue // no constructive baseline on this instance
			}
			checked++
			rc := &cells[(refined*nx+xi)*ns+s]
			if rc.Err != nil {
				return checked, fmt.Errorf("refine gate: N=%g seed=%d: Refined infeasible while a constructive heuristic found cost %.6g: %w",
					rc.X, rc.Seed, best, rc.Err)
			}
			if rc.Cost > best+mapping.Eps {
				return checked, fmt.Errorf("refine gate: N=%g seed=%d: Refined cost %.6g exceeds best constructive %.6g",
					rc.X, rc.Seed, rc.Cost, best)
			}
		}
	}
	if checked == 0 {
		return 0, fmt.Errorf("refine gate: no instance had a feasible constructive baseline")
	}
	return checked, nil
}
