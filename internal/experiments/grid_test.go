package experiments

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/stats"
	"repro/internal/stream"
)

// referenceFig2a rebuilds Figure 2(a) the pedestrian way — package-level
// instance.Generate and heuristics.Solve, no generators, no solve
// contexts, no arena, no worker pool — exactly the pre-Grid semantics.
// The Grid engine must reproduce its .dat bytes.
func referenceFig2a(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	fig := &Figure{
		ID: "fig2a", Title: "Figure 2(a): cost vs N (alpha=0.9, f=1/2s, small objects)",
		XLabel: "number of nodes", YLabel: "cost ($)",
	}
	for _, name := range heuristicSet() {
		h, err := heuristics.ByName(name)
		if err != nil {
			panic(err)
		}
		s := Series{Label: name}
		for _, x := range nRange() {
			var costs []float64
			fails := 0
			for rep := 0; rep < cfg.Seeds; rep++ {
				seed := cfg.BaseSeed + int64(rep)
				in := instance.Generate(instance.Config{NumOps: int(x), Alpha: 0.9}, seed)
				res, err := heuristics.Solve(in, h, heuristics.Options{Seed: seed})
				if err != nil {
					fails++
					continue
				}
				costs = append(costs, res.Cost)
			}
			pt := Point{X: x, Fails: fails, Runs: cfg.Seeds, Mean: math.NaN()}
			if len(costs) > 0 {
				pt.Mean = stats.Mean(costs)
				pt.CI = stats.CI95(costs)
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// TestGridMatchesReference is the tentpole's golden test: the Grid
// engine — reused arenas, worker pool, streaming emission and all —
// renders byte-identical .dat output to a from-scratch serial
// reimplementation of the figure.
func TestGridMatchesReference(t *testing.T) {
	cfg := Config{Seeds: 3, BaseSeed: 1}
	want := referenceFig2a(cfg).Dat()
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		if got := Fig2a(cfg).Dat(); got != want {
			t.Fatalf("workers=%d: Grid output diverges from reference:\n--- reference ---\n%s--- grid ---\n%s",
				workers, want, got)
		}
	}
}

// TestShardUnionEqualsFullGrid: for several shard widths and worker
// counts, merging every shard's cells reproduces the unsharded .dat
// bytes, for a plain figure and for both multi-unit ablations.
func TestShardUnionEqualsFullGrid(t *testing.T) {
	cfg := Config{Seeds: 2, BaseSeed: 1}
	for _, id := range []string{"fig2a", "abl-downgrade", "abl-selection"} {
		full, err := BuildFigure(context.Background(), id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := full.Dat()
		for _, count := range []int{2, 3, 5} {
			for _, workers := range []int{1, 4} {
				cfg.Workers = workers
				parts := make([]*ShardCells, count)
				for i := 0; i < count; i++ {
					sc, err := RunFigureShard(context.Background(), id, cfg, Shard{Index: i, Count: count})
					if err != nil {
						t.Fatal(err)
					}
					parts[i] = sc
				}
				merged, err := MergeFigure(id, cfg, parts)
				if err != nil {
					t.Fatal(err)
				}
				if got := merged.Dat(); got != want {
					t.Fatalf("%s: %d shards at %d workers diverge:\n--- full ---\n%s--- merged ---\n%s",
						id, count, workers, want, got)
				}
			}
		}
	}
}

// TestShardCellsRoundTrip: Encode/Decode preserves everything the folds
// consume, including infeasible cells and exact float costs, so a merge
// from files equals a merge from memory.
func TestShardCellsRoundTrip(t *testing.T) {
	cfg := Config{Seeds: 2, BaseSeed: 1}
	// fig3n20 at high alpha has genuinely infeasible cells.
	sc, err := RunFigureShard(context.Background(), "fig3n20", cfg, Shard{Index: 1, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShardCells(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FigID != sc.FigID || got.Shard != sc.Shard.normalized() ||
		got.Seeds != sc.Seeds || got.BaseSeed != sc.BaseSeed || len(got.Units) != len(sc.Units) {
		t.Fatalf("header mismatch: %+v vs %+v", got, sc)
	}
	sawInfeasible := false
	for ui := range sc.Units {
		if len(got.Units[ui]) != len(sc.Units[ui]) {
			t.Fatalf("unit %d: %d cells, want %d", ui, len(got.Units[ui]), len(sc.Units[ui]))
		}
		for i := range sc.Units[ui] {
			w, g := &sc.Units[ui][i], &got.Units[ui][i]
			if g.Index != w.Index || g.Seed != w.Seed || g.Cost != w.Cost || g.Procs != w.Procs ||
				(g.Err == nil) != (w.Err == nil) {
				t.Fatalf("unit %d cell %d: %+v != %+v", ui, i, g, w)
			}
			if w.Err != nil {
				sawInfeasible = true
			}
		}
	}
	if !sawInfeasible {
		t.Fatal("round-trip exercised no infeasible cell; pick a harder figure")
	}
}

// TestGridValidation: malformed grids and shards fail loudly instead of
// producing silent empty sweeps.
func TestGridValidation(t *testing.T) {
	ok := func() *Grid {
		return &Grid{
			Heuristics: []string{"Subtree-bottom-up"},
			Xs:         []float64{10},
			Seeds:      1,
			Make: MakeInstances(func(x float64) instance.Config {
				return instance.Config{NumOps: int(x)}
			}),
		}
	}
	if err := ok().Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Grid)
		want   string
	}{
		{"no heuristics", func(g *Grid) { g.Heuristics = nil }, "Heuristics is empty"},
		{"unknown heuristic", func(g *Grid) { g.Heuristics = []string{"Quantum-Annealing"} }, "unknown heuristic"},
		{"no columns", func(g *Grid) { g.Xs = nil }, "Xs is empty"},
		{"zero seeds", func(g *Grid) { g.Seeds = 0 }, "Seeds must be positive"},
		{"negative seeds", func(g *Grid) { g.Seeds = -4 }, "Seeds must be positive"},
		{"nil factory", func(g *Grid) { g.Make = nil }, "Make is nil"},
		{"shard index high", func(g *Grid) { g.Shard = Shard{Index: 2, Count: 2} }, "out of range"},
		{"shard index negative", func(g *Grid) { g.Shard = Shard{Index: -1, Count: 2} }, "out of range"},
	}
	for _, tc := range cases {
		g := ok()
		tc.mutate(g)
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
		if runErr := g.Run(context.Background(), nil); runErr == nil {
			t.Fatalf("%s: Run accepted an invalid grid", tc.name)
		}
	}
	if err := (Config{Seeds: -1}).Validate(); err == nil {
		t.Fatal("negative Config.Seeds accepted")
	}
	if err := (Config{Workers: -1}).Validate(); err == nil {
		t.Fatal("negative Config.Workers accepted")
	}
}

// TestGridStreamsInOrder: cells arrive at the callback in strictly
// increasing full-grid index order at any worker count, each fully
// populated.
func TestGridStreamsInOrder(t *testing.T) {
	g := &Grid{
		Heuristics: []string{"Subtree-bottom-up", "Comp-Greedy"},
		Xs:         []float64{10, 20, 30},
		Seeds:      2,
		BaseSeed:   1,
		Workers:    8,
		Make: MakeInstances(func(x float64) instance.Config {
			return instance.Config{NumOps: int(x), Alpha: 0.9}
		}),
	}
	next := 0
	err := g.Run(context.Background(), func(c Cell) {
		if c.Index != next {
			t.Fatalf("emitted index %d, want %d", c.Index, next)
		}
		wantH := g.Heuristics[c.Index/(len(g.Xs)*g.Seeds)]
		if c.Heuristic != wantH {
			t.Fatalf("cell %d heuristic %q, want %q", c.Index, c.Heuristic, wantH)
		}
		if c.Err == nil && c.Cost <= 0 {
			t.Fatalf("cell %d: feasible with cost %v", c.Index, c.Cost)
		}
		next++
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != g.Size() {
		t.Fatalf("emitted %d cells, want %d", next, g.Size())
	}
}

// TestGridVerifyColumn: the opt-in verification column executes
// feasible cells on the stream engine without perturbing the solve.
func TestGridVerifyColumn(t *testing.T) {
	mk := MakeInstances(func(x float64) instance.Config {
		return instance.Config{NumOps: int(x), Alpha: 1.1}
	})
	plain := &Grid{
		Heuristics: []string{"Subtree-bottom-up"}, Xs: []float64{15}, Seeds: 3, BaseSeed: 1, Make: mk,
	}
	verified := &Grid{
		Heuristics: []string{"Subtree-bottom-up"}, Xs: []float64{15}, Seeds: 3, BaseSeed: 1, Make: mk,
		Verify: &stream.Options{Results: 60},
	}
	pc, err := plain.Cells(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	vc, err := verified.Cells(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range pc {
		if pc[i].Cost != vc[i].Cost || pc[i].Procs != vc[i].Procs {
			t.Fatalf("cell %d: verification changed the solve: %+v vs %+v", i, pc[i], vc[i])
		}
		if pc[i].Err != nil {
			continue
		}
		v := &vc[i]
		if v.VerifyErr != nil {
			t.Fatalf("cell %d: simulation failed: %v", i, v.VerifyErr)
		}
		if v.Rho <= 0 || v.Measured <= 0 || v.Analytic <= 0 {
			t.Fatalf("cell %d: verification column empty: %+v", i, v)
		}
		if !v.MeetsRho() {
			t.Fatalf("cell %d: feasible mapping missed rho: measured %v, rho %v", i, v.Measured, v.Rho)
		}
	}
}

// TestSweepSteadyStateAllocs gates the arena payoff at the sweep level:
// a warmed fig2a-shaped sweep must run in a small fraction of the
// pre-arena ~4.7k allocs (the residue is per-solve tree traversals and
// per-figure series assembly, not per-cell mapping state).
func TestSweepSteadyStateAllocs(t *testing.T) {
	cfg := Config{Seeds: 1, BaseSeed: 1, Workers: 1}
	Fig2a(cfg) // warm shared platform caches
	allocs := testing.AllocsPerRun(3, func() { Fig2a(cfg) })
	// Measured ~1.7k today (49 cells; the residue is heuristic-internal
	// sort scratch). The 2k bound catches any arena regression back
	// toward the old per-cell mapping allocations; the exact count is
	// gated strictly by cmd/bench against BENCH_baseline.json.
	if allocs > 2000 {
		t.Fatalf("fig2a sweep allocates %.0f allocs/run, want <= 2000 (pre-arena baseline ~4700)", allocs)
	}
}

// TestDecodeRejectsBadShardHeader: a corrupted cells artifact whose
// shard index escapes its count fails decode cleanly instead of
// panicking the merge.
func TestDecodeRejectsBadShardHeader(t *testing.T) {
	bad := "# streamalloc-cells/v1 fig=fig2a shard=5/2 seeds=2 baseseed=1 units=1\n" +
		"# unit index seed ok cost procs\n0 5 1 1 100 1\n"
	if _, err := DecodeShardCells(strings.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad shard header decoded: %v", err)
	}
	// Defense in depth: MergeFigure rejects an out-of-range part even if
	// it arrives by construction rather than decode.
	cfg := Config{Seeds: 2, BaseSeed: 1}
	parts := []*ShardCells{{FigID: "fig2a", Shard: Shard{Index: 5, Count: 2}, Seeds: 2, BaseSeed: 1, Units: make([][]Cell, 1)}}
	if _, err := MergeFigure("fig2a", cfg, parts); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range shard part merged: %v", err)
	}
}
