package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/churn"
	"repro/internal/mapping"
	"repro/internal/stats"
)

// churnScenario parameterizes the dynamic-workload figure: x is the
// event-stream length (the churn rate knob — more events, more churn
// answered per scenario) on the refine figure's CONSTR-HOM slow-CPU
// platform at alpha=2, with targets high enough that applications span
// processors and upward drift forces real repairs.
func churnScenario(x float64) churn.ScenarioConfig {
	cfg := churn.ScenarioConfig{
		Events:   int(x),
		Drift:    churn.DriftUp,
		DriftMax: 1.6,
		Rho:      2,
		RhoMax:   8,
	}
	cfg.Base.Platform = refinePlatform()
	cfg.Base.Alpha = 2.0
	return cfg
}

// churnGrid is the sweep behind the "churn" figure and ChurnGate: both
// answer policies over event-stream lengths, one full dynamic scenario
// per cell. The grid runs through Grid.Eval — series are policy labels,
// not registry heuristics — and each cell records the scenario's final
// platform cost (Cost) and its total surviving-operator migrations
// (Procs), the two deterministic columns the shard wire format carries.
// Budgets are step-bounded only (Options.Budget stays 0), so sharded
// runs merge byte-identically.
func churnGrid(cfg Config) *Grid {
	return &Grid{
		Heuristics: []string{churn.PolicyRepair.String(), churn.PolicyResolve.String()},
		Xs:         []float64{3, 6, 9, 12},
		Seeds:      cfg.Seeds,
		BaseSeed:   cfg.BaseSeed,
		Workers:    cfg.Workers,
		SeedOf:     DerivedSeeds("churn"),
		Eval: func(ctx context.Context, env *WorkerEnv, c *Cell) {
			pol := churn.PolicyRepair
			if c.Heuristic == churn.PolicyResolve.String() {
				pol = churn.PolicyResolve
			}
			sc := churn.NewScenario(churnScenario(c.X), c.Seed)
			res, err := churn.RunScenario(ctx, sc, churn.Options{Policy: pol, Seed: c.Seed})
			if err != nil {
				c.Err = err
				return
			}
			c.Cost = res.FinalCost
			c.Procs = res.Moved
		},
	}
}

// churnFold emits two curves per policy: mean final cost and mean
// operators moved over the feasible scenarios of each column.
func churnFold(g *Grid, cells []Cell) []Series {
	nx, ns := len(g.Xs), g.Seeds
	series := make([]Series, 0, 2*len(g.Heuristics))
	vals := make([]float64, 0, ns)
	for hi, name := range g.Heuristics {
		cost := Series{Label: "cost:" + name, Points: make([]Point, 0, nx)}
		moved := Series{Label: "moved:" + name, Points: make([]Point, 0, nx)}
		for xi, x := range g.Xs {
			vals = vals[:0]
			fails := 0
			movedSum := 0
			for s := 0; s < ns; s++ {
				c := &cells[(hi*nx+xi)*ns+s]
				if c.Err != nil {
					fails++
					continue
				}
				vals = append(vals, c.Cost)
				movedSum += c.Procs
			}
			cp := Point{X: x, Fails: fails, Runs: ns, Mean: math.NaN()}
			mp := cp
			if len(vals) > 0 {
				cp.Mean = stats.Mean(vals)
				cp.CI = stats.CI95(vals)
				mp.Mean = float64(movedSum) / float64(len(vals))
			}
			cost.Points = append(cost.Points, cp)
			moved.Points = append(moved.Points, mp)
		}
		series = append(series, cost, moved)
	}
	return series
}

// churnDef is the dynamic-workload figure: journaled local repair
// versus from-scratch re-solves on final cost and operators migrated,
// swept over churn rate.
func churnDef() figDef {
	return figDef{
		id: "churn", title: "Churn: local repair vs full re-solve (CONSTR-HOM slow CPU, alpha=2.0, drift-up scenarios)",
		xlabel: "events per scenario", ylabel: "cost ($) / operators moved",
		units: []unitDef{{grid: churnGrid, fold: churnFold}},
	}
}

// churnGateTol is the dominance gate's per-cell cost tolerance: repair
// may not cost more than the from-scratch re-solve beyond this fraction
// on any scenario. Repair refines every answer it installs, so in
// practice it is at or below the constructive re-solve; the tolerance
// absorbs tie-breaking noise, not systematic regressions.
const churnGateTol = 0.02

// ChurnGate runs the churn figure's grid and enforces the repair
// policy's dominance cell by cell: on every scenario both policies can
// start, repair's final cost must be within churnGateTol of the
// re-solve's (never worse beyond it), and across the whole grid repair
// must migrate strictly fewer surviving operators in total. Returns the
// number of scenarios checked; any violation is an error naming the
// cell.
func ChurnGate(ctx context.Context, cfg Config) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	cfg = cfg.withDefaults()
	g := churnGrid(cfg)
	cells, err := g.Cells(ctx)
	if err != nil {
		return 0, err
	}
	nx, ns := len(g.Xs), g.Seeds
	repairIdx, resolveIdx := 0, 1
	if g.Heuristics[0] != churn.PolicyRepair.String() {
		repairIdx, resolveIdx = 1, 0
	}
	checked := 0
	movedRepair, movedResolve := 0, 0
	for xi := 0; xi < nx; xi++ {
		for s := 0; s < ns; s++ {
			rep := &cells[(repairIdx*nx+xi)*ns+s]
			res := &cells[(resolveIdx*nx+xi)*ns+s]
			if res.Err != nil {
				continue // no re-solve baseline on this scenario
			}
			if rep.Err != nil {
				return checked, fmt.Errorf("churn gate: events=%g seed=%d: repair failed while re-solve finished at cost %.6g: %w",
					rep.X, rep.Seed, res.Cost, rep.Err)
			}
			checked++
			if rep.Cost > res.Cost*(1+churnGateTol)+mapping.Eps {
				return checked, fmt.Errorf("churn gate: events=%g seed=%d: repair cost %.6g exceeds re-solve cost %.6g beyond the %.0f%% tolerance",
					rep.X, rep.Seed, rep.Cost, res.Cost, 100*churnGateTol)
			}
			movedRepair += rep.Procs
			movedResolve += res.Procs
		}
	}
	if checked == 0 {
		return 0, fmt.Errorf("churn gate: no scenario had a feasible re-solve baseline")
	}
	if movedRepair >= movedResolve {
		return checked, fmt.Errorf("churn gate: repair moved %d operators over the grid, re-solve moved %d; repair must move strictly fewer",
			movedRepair, movedResolve)
	}
	return checked, nil
}

// Churn builds the dynamic-workload figure (repair vs re-solve).
func Churn(cfg Config) *Figure { return mustFigure("churn", cfg) }
