package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/apptree"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/multiapp"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Shard selects a slice of a Grid's cells for one of Count cooperating
// runs: shard i owns the full-grid cell indices {i, i+Count, i+2*Count,
// ...}. Every per-cell seed is a pure function of the cell's grid
// coordinates (never of execution order), so the union of all Count
// shards is cell-for-cell — and, after reduction, byte-for-byte —
// identical to a single unsharded run. The zero value means "the whole
// grid".
type Shard struct {
	Index int // which shard this run computes, in [0, Count)
	Count int // total cooperating shards; <= 1 means unsharded
}

// normalized maps the zero value (and any Count <= 1) onto 1 shard.
func (s Shard) normalized() Shard {
	if s.Count <= 1 {
		return Shard{Index: 0, Count: 1}
	}
	return s
}

func (s Shard) validate() error {
	if s.Count < 0 {
		return fmt.Errorf("sweep: negative shard count %d", s.Count)
	}
	n := s.normalized()
	if s.Index < 0 || s.Index >= n.Count {
		return fmt.Errorf("sweep: shard index %d out of range [0, %d)", s.Index, n.Count)
	}
	return nil
}

// String renders "i/n" (the cmd/experiments -shard syntax).
func (s Shard) String() string {
	n := s.normalized()
	return fmt.Sprintf("%d/%d", n.Index, n.Count)
}

// WorkerEnv is the reusable per-worker environment a Grid hands to its
// instance factory: one worker of the sweep pool owns one WorkerEnv and
// runs its cells sequentially, so everything here — the instance
// generator, the solve context with its caller-owned mapping arena, the
// stream runner behind the verification column — is recycled across that
// worker's cells and a figure-sized sweep allocates almost nothing in
// steady state. A WorkerEnv is not safe for concurrent use and is only
// valid inside the Grid callbacks that receive it.
type WorkerEnv struct {
	gen    instance.Generator
	sc     heuristics.SolveContext
	runner stream.Runner

	// Multi-tenant cell arenas: one reusable tree builder per RandomTree
	// call within a cell (ntrees is reset before every Make), a reseeded
	// rand stream shared by all of them, and the Combine builder.
	treeRand     *rand.Rand
	treeBuilders []*apptree.Builder
	ntrees       int
	combiner     multiapp.Builder
}

// Generate builds the (cfg, seed) instance on the worker's reusable
// generator, exactly like the package-level instance.Generate. The
// returned instance is owned by the environment and valid only for the
// current cell; the sweep engine solves and discards it before the
// worker's next cell.
func (e *WorkerEnv) Generate(cfg instance.Config, seed int64) *instance.Instance {
	return e.gen.Generate(cfg, seed)
}

// RandomTree builds a random binary operator tree on the worker's
// reusable arenas, drawing the exact random stream of the one-shot
// apptree.Random(rng.New(seed), ...) — so sweeps that switch to it
// stay byte-identical. Each call within one cell draws a fresh builder
// (all of a cell's tenant trees are alive at once for Combine); trees
// are owned by the environment and valid only for the current cell.
func (e *WorkerEnv) RandomTree(seed int64, numOps, numTypes int) *apptree.Tree {
	if e.treeRand == nil {
		e.treeRand = rng.New(seed)
	} else {
		// Seed on an existing rand.Rand restarts the identical stream
		// rng.New would produce for this seed.
		e.treeRand.Seed(seed)
	}
	if e.ntrees == len(e.treeBuilders) {
		e.treeBuilders = append(e.treeBuilders, new(apptree.Builder))
	}
	b := e.treeBuilders[e.ntrees]
	e.ntrees++
	return b.Random(e.treeRand, numOps, numTypes)
}

// Combine folds multi-tenant applications into one solvable instance
// on the worker's reusable multiapp.Builder — identical output to the
// one-shot multiapp.Combine, without its per-cell tree and instance
// allocations. The instance is owned by the environment and valid only
// for the current cell.
func (e *WorkerEnv) Combine(apps []multiapp.App, w multiapp.Workload) (*instance.Instance, error) {
	return e.combiner.Combine(apps, w)
}

// envPool recycles WorkerEnvs across Grid runs: repeated sweeps (perf
// harness loops, shard batches, figure suites) draw already-warmed
// generators, solve contexts and stream runners instead of replaying
// every buffer's growth per run. Within one run each pool worker owns
// one env exclusively; envs go back only after the run completes.
var envPool = sync.Pool{New: func() any {
	e := &WorkerEnv{}
	// The engine owns every Result for the duration of one cell, so
	// solves run on the context's mapping arena: steady-state cells
	// reuse the same mapping, download tables and random streams.
	e.sc.SetReuse(true)
	return e
}}

func newWorkerEnvs(workers, n int) []*WorkerEnv {
	envs := make([]*WorkerEnv, par.Workers(workers, n))
	for i := range envs {
		envs[i] = envPool.Get().(*WorkerEnv)
	}
	return envs
}

func releaseWorkerEnvs(envs []*WorkerEnv) {
	for _, e := range envs {
		envPool.Put(e)
	}
}

// Cell is one completed grid point: one heuristic solved on one
// generated instance. Cells stream out of Grid.Run in deterministic
// full-grid index order.
type Cell struct {
	Index           int // position in the full grid's h-major, x-then-rep order
	HIdx, XIdx, Rep int // grid coordinates (Index = (HIdx*len(Xs)+XIdx)*Seeds+Rep)

	Heuristic string
	X         float64
	Seed      int64

	Cost  float64 // platform cost of the feasible mapping (Err == nil)
	Procs int     // processors purchased
	Err   error   // nil when a feasible mapping was found

	// Verification column, populated when Grid.Verify is set and the
	// cell is feasible: the mapping is executed on the stream engine.
	Rho       float64 // the instance's QoS target
	Measured  float64 // simulated steady-state throughput
	Analytic  float64 // analytic maximum sustainable throughput
	VerifyErr error   // stream-engine failure (nil when Verify is off)
}

// Feasible reports whether the cell found a feasible mapping.
func (c *Cell) Feasible() bool { return c.Err == nil }

// MeetsRho reports whether the cell's simulated throughput sustains the
// instance's QoS target (with the repository's standard 10% simulation
// tolerance). Only meaningful when the grid ran with a Verify column.
func (c *Cell) MeetsRho() bool {
	return c.Err == nil && c.VerifyErr == nil && c.Measured >= 0.9*c.Rho
}

// Grid is a declarative sweep over (heuristic x instance x seed): every
// heuristic is solved on every generated instance of every column Xs[i],
// Seeds times with distinct seeds. It is the engine behind every figure
// of the paper reproduction and the public streamalloc sweep API.
//
// The grid's cells are independent work items fanned across Workers
// goroutines; results stream to the Run callback in deterministic
// full-grid index order (heuristic-major, then x, then repetition), so
// output is byte-identical at any worker count and any Shard partition.
type Grid struct {
	// Heuristics are the series, by name (heuristics.ByName, e.g.
	// "Subtree-bottom-up"); every name the experiment harness plots is
	// valid, including "Subtree-bottom-up-nofold".
	Heuristics []string
	// Xs are the columns — whatever instance parameter Make varies.
	Xs []float64
	// Seeds is the number of repetitions per (heuristic, x) cell; it
	// must be positive.
	Seeds int
	// BaseSeed anchors every per-cell seed (see SeedOf).
	BaseSeed int64
	// Workers bounds the sweep's concurrency: <= 0 means GOMAXPROCS, 1
	// forces the serial path. Output is identical at any width.
	Workers int
	// Shard restricts the run to one partition of the cells; the zero
	// value runs the whole grid.
	Shard Shard

	// Make builds the instance for one cell. It runs on a sweep worker
	// with that worker's reusable environment; the returned instance
	// needs to stay valid only until Make is called again on the same
	// environment. Returning an error marks the cell failed.
	Make func(env *WorkerEnv, x float64, seed int64) (*instance.Instance, error)

	// Opts, when non-nil, supplies per-heuristic solve options. The
	// engine overwrites Options.Seed with the cell seed.
	Opts func(heuristic string) heuristics.Options

	// Verify, when non-nil, additionally executes every feasible cell's
	// mapping on the discrete-event stream engine with these options and
	// fills the cell's verification column. Simulation never perturbs
	// the solve (separate rng streams), so Cost/Procs are unchanged.
	Verify *stream.Options

	// Eval, when non-nil, replaces the per-cell solve entirely: the
	// sweep engine fills the cell's coordinates (Index, HIdx/XIdx/Rep,
	// Heuristic, X, Seed) and hands it to Eval, which computes the
	// payload columns (Cost, Procs, Err, ...) however it likes — the
	// churn figure runs whole dynamic scenarios per cell this way. With
	// Eval set, the Heuristics entries are series labels rather than
	// registry names, and Make/Opts/Verify are ignored. Eval runs on a
	// pool worker and must be a pure function of the cell coordinates
	// plus the reusable environment, so sharded output stays
	// byte-identical to an unsharded run.
	Eval func(ctx context.Context, env *WorkerEnv, c *Cell)

	// SeedOf derives the seed of repetition rep of column index xi.
	// Seeds are shared across heuristics so every series solves the same
	// instances (the paper's paired-comparison methodology) and depend
	// only on grid coordinates, which is what makes sharding exact. Nil
	// means sequential seeds, BaseSeed + rep — the paper figures'
	// scheme; DerivedSeeds gives decorrelated rng.SeedFor streams.
	SeedOf func(base int64, xi, rep int) int64
}

// DerivedSeeds returns a SeedOf that derives every cell seed through
// rng.SeedFor from the given label and the cell coordinates, so distinct
// grids (distinct labels) sharing one BaseSeed draw decorrelated
// instance streams. External shard orchestrators can recompute any
// cell's seed with streamalloc.SeedFor and the same label.
func DerivedSeeds(label string) func(base int64, xi, rep int) int64 {
	return func(base int64, xi, rep int) int64 {
		return rng.SeedFor(base, fmt.Sprintf("%s:x%d:r%d", label, xi, rep))
	}
}

// Size returns the number of cells in the full (unsharded) grid.
func (g *Grid) Size() int { return len(g.Heuristics) * len(g.Xs) * g.Seeds }

// CellSeed returns the seed used for repetition rep of column xi.
func (g *Grid) CellSeed(xi, rep int) int64 {
	if g.SeedOf != nil {
		return g.SeedOf(g.BaseSeed, xi, rep)
	}
	return g.BaseSeed + int64(rep)
}

// Validate rejects grids that would otherwise produce silently empty or
// truncated sweeps: no heuristics, unknown heuristic names, no columns,
// non-positive seeds-per-cell, a missing factory, or an out-of-range
// shard.
func (g *Grid) Validate() error {
	if len(g.Heuristics) == 0 {
		return fmt.Errorf("sweep: Grid.Heuristics is empty")
	}
	if g.Eval == nil {
		for _, name := range g.Heuristics {
			if _, err := heuristics.ByName(name); err != nil {
				return fmt.Errorf("sweep: %w", err)
			}
		}
	}
	if len(g.Xs) == 0 {
		return fmt.Errorf("sweep: Grid.Xs is empty")
	}
	if g.Seeds <= 0 {
		return fmt.Errorf("sweep: Grid.Seeds must be positive, got %d", g.Seeds)
	}
	if g.Make == nil && g.Eval == nil {
		return fmt.Errorf("sweep: Grid.Make is nil")
	}
	return g.Shard.validate()
}

// resolve validates the grid and materializes the heuristic values.
func (g *Grid) resolve() ([]heuristics.Heuristic, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Eval != nil {
		return nil, nil // labels only; no registry lookup
	}
	hs := make([]heuristics.Heuristic, len(g.Heuristics))
	for i, name := range g.Heuristics {
		hs[i], _ = heuristics.ByName(name)
	}
	return hs, nil
}

// shardIndices lists the full-grid indices this run's shard owns, in
// increasing order.
func (g *Grid) shardIndices() []int {
	sh := g.Shard.normalized()
	n := g.Size()
	idxs := make([]int, 0, (n-sh.Index+sh.Count-1)/sh.Count)
	for i := sh.Index; i < n; i += sh.Count {
		idxs = append(idxs, i)
	}
	return idxs
}

// Run executes the grid's (sharded) cells on a worker pool and streams
// every completed Cell to emit in deterministic order — increasing
// full-grid index, exactly the sequence a serial run would produce —
// regardless of which workers finish first. emit runs serially (one call
// at a time, on a pool worker) and may be nil. When ctx is cancelled,
// cells not yet started are skipped, an already-complete prefix may
// still be emitted, and the context error is returned.
func (g *Grid) Run(ctx context.Context, emit func(Cell)) error {
	hs, err := g.resolve()
	if err != nil {
		return err
	}
	idxs := g.shardIndices()
	envs := newWorkerEnvs(g.Workers, len(idxs))
	defer releaseWorkerEnvs(envs)
	out := make([]Cell, len(idxs))
	return par.ForEachOrdered(ctx, g.Workers, len(idxs), func(w, i int) {
		if g.Eval != nil {
			out[i] = g.runEvalCell(ctx, envs[w], idxs[i])
		} else {
			out[i] = g.runCell(envs[w], hs[idxs[i]/(len(g.Xs)*g.Seeds)], idxs[i])
		}
	}, func(i int) {
		if emit != nil {
			emit(out[i])
		}
	})
}

// Cells runs the grid and collects the (sharded) cells in emit order.
func (g *Grid) Cells(ctx context.Context) ([]Cell, error) {
	out := make([]Cell, 0, len(g.shardIndices()))
	err := g.Run(ctx, func(c Cell) { out = append(out, c) })
	return out, err
}

// runEvalCell computes one cell of an Eval-driven grid: coordinates are
// filled by the engine, the payload by the grid's callback.
func (g *Grid) runEvalCell(ctx context.Context, env *WorkerEnv, idx int) Cell {
	nx, ns := len(g.Xs), g.Seeds
	c := Cell{
		Index: idx,
		HIdx:  idx / (nx * ns),
		XIdx:  (idx / ns) % nx,
		Rep:   idx % ns,
	}
	c.Heuristic = g.Heuristics[c.HIdx]
	c.X = g.Xs[c.XIdx]
	c.Seed = g.CellSeed(c.XIdx, c.Rep)
	env.ntrees = 0
	g.Eval(ctx, env, &c)
	return c
}

// runCell solves one cell on the worker's environment.
func (g *Grid) runCell(env *WorkerEnv, h heuristics.Heuristic, idx int) Cell {
	nx, ns := len(g.Xs), g.Seeds
	c := Cell{
		Index: idx,
		HIdx:  idx / (nx * ns),
		XIdx:  (idx / ns) % nx,
		Rep:   idx % ns,
	}
	c.Heuristic = g.Heuristics[c.HIdx]
	c.X = g.Xs[c.XIdx]
	c.Seed = g.CellSeed(c.XIdx, c.Rep)
	env.ntrees = 0 // recycle the cell's tenant-tree builders
	in, err := g.Make(env, c.X, c.Seed)
	if err != nil {
		c.Err = fmt.Errorf("sweep: cell %d factory: %w", idx, err)
		return c
	}
	o := heuristics.Options{}
	if g.Opts != nil {
		o = g.Opts(c.Heuristic)
	}
	o.Seed = c.Seed
	res, err := env.sc.Solve(in, h, o)
	if err != nil {
		c.Err = err
		return c
	}
	c.Cost, c.Procs = res.Cost, res.Procs
	if g.Verify != nil {
		c.Rho = in.Rho
		rep, err := env.runner.Simulate(res.Mapping, *g.Verify)
		c.VerifyErr = err
		if err == nil {
			c.Measured, c.Analytic = rep.Throughput, rep.Analytic
		}
	}
	return c
}

// MakeInstances adapts a per-column instance.Config into a Grid factory:
// each cell generates cfgOf(x) with the cell's seed on the worker's
// reusable generator — the zero-allocation path for paper-methodology
// sweeps.
func MakeInstances(cfgOf func(x float64) instance.Config) func(*WorkerEnv, float64, int64) (*instance.Instance, error) {
	return func(env *WorkerEnv, x float64, seed int64) (*instance.Instance, error) {
		return env.Generate(cfgOf(x), seed), nil
	}
}
