// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) plus the text-described experiments and this
// repository's ablations. Each experiment is a pure function of a Config,
// so benchmark and CLI output are identical and reproducible.
//
// The experiment index (IDs E1-E8, A1-A3, V1) lives in DESIGN.md;
// EXPERIMENTS.md records paper-versus-measured outcomes.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/textplot"
)

// Config controls an experiment run.
type Config struct {
	Seeds    int   // instances averaged per point (default 10)
	BaseSeed int64 // first seed
	// Workers bounds the sweep's concurrency: <= 0 means GOMAXPROCS, 1
	// forces the serial path. Every (heuristic, x, seed) work item
	// regenerates its own instance and derives its own rng substream
	// from its seed, so figures are byte-identical at any worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 10
	}
	return c
}

// Point is one x position of one series.
type Point struct {
	X     float64
	Mean  float64 // mean cost over feasible runs (NaN when none)
	CI    float64 // 95% confidence half-width
	Fails int     // runs with no feasible mapping
	Runs  int
}

// Series is one heuristic's curve.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced paper figure.
type Figure struct {
	ID     string // e.g. "fig2a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// heuristicSet returns the paper's six heuristics plus the A3
// conservative-merging variant of Subtree-bottom-up.
func heuristicSet() []heuristics.Heuristic {
	return append(heuristics.All(), heuristics.SubtreeBottomUp{DisableFold: true})
}

// sweepCtx is one sweep worker's reusable state: an instance generator,
// a solve context and (for the simulation harnesses) a stream runner,
// all recycled across the worker's items so a figure-sized sweep stops
// re-allocating per (heuristic, x, seed) cell. Each worker of a
// par.ForEachWorker pool owns exactly one sweepCtx; instances produced
// by gen are solved and discarded before the worker's next item.
type sweepCtx struct {
	gen    instance.Generator
	sc     heuristics.SolveContext
	runner stream.Runner
}

// sweepCtxs returns one context per pool worker.
func sweepCtxs(workers, n int) []sweepCtx {
	return make([]sweepCtx, par.Workers(workers, n))
}

// sweep evaluates every heuristic at every x, averaging cost over seeds.
// The (heuristic, x, seed) grid is flattened into independent work items
// fanned across cfg.Workers goroutines; the reduction below merges the
// per-item cells back in input order, so the resulting Series — and the
// Figure.Dat() bytes rendered from them — are identical to a serial run.
// mk receives the worker's instance generator; the instance it returns
// is owned by that generator and lives only for the one solve.
func sweep(cfg Config, xs []float64, mk func(g *instance.Generator, x float64, seed int64) *instance.Instance,
	opts func(h heuristics.Heuristic) heuristics.Options) []Series {
	cfg = cfg.withDefaults()
	hs := heuristicSet()
	nx, ns := len(xs), cfg.Seeds
	type cell struct {
		cost float64
		ok   bool
	}
	cells := make([]cell, len(hs)*nx*ns)
	ctxs := sweepCtxs(cfg.Workers, len(cells))
	par.ForEachWorker(context.Background(), cfg.Workers, len(cells), func(w, idx int) {
		c := &ctxs[w]
		h := hs[idx/(nx*ns)]
		x := xs[(idx/ns)%nx]
		seed := cfg.BaseSeed + int64(idx%ns)
		in := mk(&c.gen, x, seed)
		o := heuristics.Options{Seed: seed}
		if opts != nil {
			o = opts(h)
			o.Seed = seed
		}
		if res, err := c.sc.Solve(in, h, o); err == nil {
			cells[idx] = cell{cost: res.Cost, ok: true}
		}
	})
	series := make([]Series, len(hs))
	for hi, h := range hs {
		series[hi].Label = h.Name()
		for xi, x := range xs {
			var costs []float64
			fails := 0
			for s := 0; s < ns; s++ {
				c := cells[(hi*nx+xi)*ns+s]
				if !c.ok {
					fails++
					continue
				}
				costs = append(costs, c.cost)
			}
			pt := Point{X: x, Fails: fails, Runs: cfg.Seeds, Mean: math.NaN()}
			if len(costs) > 0 {
				pt.Mean = stats.Mean(costs)
				pt.CI = stats.CI95(costs)
			}
			series[hi].Points = append(series[hi].Points, pt)
		}
	}
	return series
}

// nRange is the paper's x-axis for Figure 2: N in 20..140.
func nRange() []float64 { return []float64{20, 40, 60, 80, 100, 120, 140} }

// alphaRange is the paper's x-axis for Figure 3.
func alphaRange() []float64 {
	var xs []float64
	for a := 0.5; a <= 2.51; a += 0.2 {
		xs = append(xs, math.Round(a*100)/100)
	}
	return xs
}

// Fig2a reproduces Figure 2(a): cost versus N, alpha=0.9, high download
// frequency (1/2 s), small objects (5-30 MB).
func Fig2a(cfg Config) *Figure {
	return &Figure{
		ID: "fig2a", Title: "Figure 2(a): cost vs N (alpha=0.9, f=1/2s, small objects)",
		XLabel: "number of nodes", YLabel: "cost ($)",
		Series: sweep(cfg, nRange(), func(g *instance.Generator, x float64, seed int64) *instance.Instance {
			return g.Generate(instance.Config{NumOps: int(x), Alpha: 0.9}, seed)
		}, nil),
	}
}

// Fig2b reproduces Figure 2(b): as Fig2a with alpha=1.7.
func Fig2b(cfg Config) *Figure {
	return &Figure{
		ID: "fig2b", Title: "Figure 2(b): cost vs N (alpha=1.7, f=1/2s, small objects)",
		XLabel: "number of nodes", YLabel: "cost ($)",
		Series: sweep(cfg, nRange(), func(g *instance.Generator, x float64, seed int64) *instance.Instance {
			return g.Generate(instance.Config{NumOps: int(x), Alpha: 1.7}, seed)
		}, nil),
	}
}

// Fig3 reproduces Figure 3: cost versus alpha at N=60.
func Fig3(cfg Config) *Figure {
	return &Figure{
		ID: "fig3", Title: "Figure 3: cost vs alpha (N=60, f=1/2s, small objects)",
		XLabel: "alpha", YLabel: "cost ($)",
		Series: sweep(cfg, alphaRange(), func(g *instance.Generator, x float64, seed int64) *instance.Instance {
			return g.Generate(instance.Config{NumOps: 60, Alpha: x}, seed)
		}, nil),
	}
}

// Fig3SmallTree reproduces the Section 5 text companion of Figure 3 for
// N=20 (thresholds around alpha=1.7 and 2.2).
func Fig3SmallTree(cfg Config) *Figure {
	return &Figure{
		ID: "fig3n20", Title: "cost vs alpha (N=20, f=1/2s, small objects)",
		XLabel: "alpha", YLabel: "cost ($)",
		Series: sweep(cfg, alphaRange(), func(g *instance.Generator, x float64, seed int64) *instance.Instance {
			return g.Generate(instance.Config{NumOps: 20, Alpha: x}, seed)
		}, nil),
	}
}

// LargeObjects reproduces the Section 5 text experiment with 450-530 MB
// objects: feasibility collapses beyond a modest tree size.
func LargeObjects(cfg Config) *Figure {
	xs := []float64{5, 10, 15, 20, 30, 45, 60}
	return &Figure{
		ID: "large", Title: "cost vs N (alpha=0.9, f=1/2s, LARGE objects 450-530MB)",
		XLabel: "number of nodes", YLabel: "cost ($)",
		Series: sweep(cfg, xs, func(g *instance.Generator, x float64, seed int64) *instance.Instance {
			return g.Generate(instance.Config{NumOps: int(x), Alpha: 0.9, SizeMin: 450, SizeMax: 530}, seed)
		}, nil),
	}
}

// FrequencySweep reproduces the download-rate experiment: cost versus
// update period (1/f from 2s to 50s) at N=60; below 1/10s the solutions
// stop changing.
func FrequencySweep(cfg Config) *Figure {
	periods := []float64{2, 5, 10, 20, 50}
	return &Figure{
		ID: "freq", Title: "cost vs update period 1/f (N=60, alpha=0.9, small objects)",
		XLabel: "update period (s)", YLabel: "cost ($)",
		Series: sweep(cfg, periods, func(g *instance.Generator, x float64, seed int64) *instance.Instance {
			return g.Generate(instance.Config{NumOps: 60, Alpha: 0.9, Freq: 1 / x}, seed)
		}, nil),
	}
}

// AblationDowngrade (A1) isolates the paper's third pipeline step: the
// same placements with and without the downgrade step.
func AblationDowngrade(cfg Config) *Figure {
	fig := &Figure{
		ID: "abl-downgrade", Title: "Ablation A1: downgrade step on/off (alpha=0.9)",
		XLabel: "number of nodes", YLabel: "cost ($)",
	}
	for _, variant := range []struct {
		label string
		skip  bool
	}{{"with downgrade", false}, {"without downgrade", true}} {
		s := sweep(cfg, nRange(), func(g *instance.Generator, x float64, seed int64) *instance.Instance {
			return g.Generate(instance.Config{NumOps: int(x), Alpha: 0.9}, seed)
		}, func(heuristics.Heuristic) heuristics.Options {
			return heuristics.Options{SkipDowngrade: variant.skip}
		})
		// Keep only Subtree-bottom-up and Comp-Greedy to keep the figure
		// readable; the effect is uniform across heuristics.
		for _, sr := range s {
			if sr.Label == "Subtree-bottom-up" || sr.Label == "Comp-Greedy" {
				sr.Label += " (" + variant.label + ")"
				fig.Series = append(fig.Series, sr)
			}
		}
	}
	return fig
}

// AblationSelection (A2) compares the paper's three-loop server selection
// with the naive random selection on the same placements.
func AblationSelection(cfg Config) *Figure {
	fig := &Figure{
		ID: "abl-selection", Title: "Ablation A2: three-loop vs random server selection (alpha=0.9)",
		XLabel: "number of nodes", YLabel: "feasible runs (of Seeds)",
	}
	cfg = cfg.withDefaults()
	for _, variant := range []struct {
		label string
		mode  heuristics.ServerSelectionMode
	}{{"three-loop", heuristics.SelectThreeLoop}, {"random", heuristics.SelectRandom}} {
		s := Series{Label: "Subtree-bottom-up (" + variant.label + ")"}
		xs := nRange()
		feasible := make([]bool, len(xs)*cfg.Seeds)
		ctxs := sweepCtxs(cfg.Workers, len(feasible))
		par.ForEachWorker(context.Background(), cfg.Workers, len(feasible), func(w, idx int) {
			c := &ctxs[w]
			x := xs[idx/cfg.Seeds]
			seed := cfg.BaseSeed + int64(idx%cfg.Seeds)
			in := c.gen.Generate(instance.Config{NumOps: int(x), Alpha: 0.9}, seed)
			_, err := c.sc.Solve(in, heuristics.SubtreeBottomUp{},
				heuristics.Options{Seed: seed, Selection: variant.mode})
			feasible[idx] = err == nil
		})
		for xi, x := range xs {
			ok := 0
			for i := 0; i < cfg.Seeds; i++ {
				if feasible[xi*cfg.Seeds+i] {
					ok++
				}
			}
			s.Points = append(s.Points, Point{X: x, Mean: float64(ok), Runs: cfg.Seeds, Fails: cfg.Seeds - ok})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Dat renders the figure as a gnuplot-style whitespace table: one x column
// followed by one cost column per series ("nan" for infeasible points).
func (f *Figure) Dat() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# x", f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\t%q", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "\t%g", s.Points[i].Mean)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCII renders the figure as a terminal plot.
func (f *Figure) ASCII(width, height int) string {
	var series []textplot.Series
	for _, s := range f.Series {
		ts := textplot.Series{Label: s.Label}
		for _, p := range s.Points {
			ts.X = append(ts.X, p.X)
			ts.Y = append(ts.Y, p.Mean)
		}
		series = append(series, ts)
	}
	return textplot.Plot(f.Title, series, width, height)
}

// Ranking returns the series labels ordered by mean cost across all
// feasible points (cheapest first) — the paper's headline comparison.
func (f *Figure) Ranking() []string {
	type agg struct {
		label string
		mean  float64
	}
	var out []agg
	for _, s := range f.Series {
		var costs []float64
		for _, p := range s.Points {
			if !math.IsNaN(p.Mean) {
				costs = append(costs, p.Mean)
			}
		}
		if len(costs) > 0 {
			out = append(out, agg{s.Label, stats.Mean(costs)})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].mean < out[b].mean })
	labels := make([]string, len(out))
	for i, a := range out {
		labels[i] = a.label
	}
	return labels
}

// SeriesByLabel returns the series with the given label, or nil.
func (f *Figure) SeriesByLabel(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}
