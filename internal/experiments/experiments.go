// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) plus the text-described experiments and this
// repository's ablations. Each experiment is a pure function of a Config,
// so benchmark and CLI output are identical and reproducible.
//
// Since the Grid redesign every figure is a declarative definition — one
// or more sweep Grids plus a fold from cells to series — evaluated by
// the shared engine in grid.go. That is what makes figures shardable
// across machines (RunFigureShard / MergeFigure reassemble byte-identical
// .dat output from disjoint cell sets) and verifiable (Config.Verify
// executes every feasible cell on the stream engine).
//
// The experiment index (IDs E1-E8, A1-A3, V1) lives in DESIGN.md;
// EXPERIMENTS.md records paper-versus-measured outcomes.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/textplot"
)

// Config controls an experiment run.
type Config struct {
	Seeds    int   // instances averaged per point (default 10)
	BaseSeed int64 // first seed
	// Workers bounds the sweep's concurrency: <= 0 means GOMAXPROCS, 1
	// forces the serial path. Every (heuristic, x, seed) work item
	// regenerates its own instance and derives its own rng substream
	// from its seed, so figures are byte-identical at any worker count.
	Workers int
	// Verify executes every feasible figure cell on the discrete-event
	// stream engine and attaches a VerifySummary to the figure. The
	// .dat output is unchanged (simulation never perturbs the solve).
	Verify bool
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 10
	}
	return c
}

// Validate rejects configurations that would silently degrade into
// empty or misleading output. Zero values remain valid (withDefaults
// fills them); explicit negatives are user error and reported as such.
func (c Config) Validate() error {
	if c.Seeds < 0 {
		return fmt.Errorf("experiments: Seeds must be positive (or 0 for the default 10), got %d", c.Seeds)
	}
	if c.Workers < 0 {
		return fmt.Errorf("experiments: Workers must be >= 0 (0 means one per CPU), got %d", c.Workers)
	}
	return nil
}

// Point is one x position of one series.
type Point struct {
	X     float64
	Mean  float64 // mean cost over feasible runs (NaN when none)
	CI    float64 // 95% confidence half-width
	Fails int     // runs with no feasible mapping
	Runs  int
}

// Series is one heuristic's curve.
type Series struct {
	Label  string
	Points []Point
}

// VerifySummary aggregates the stream-engine verification column of a
// figure run with Config.Verify: every feasible cell's mapping was
// executed and its measured steady-state throughput compared against
// the instance's QoS target rho (with the standard 10% simulation
// tolerance) and against the analytic bound.
type VerifySummary struct {
	Cells    int     // feasible cells executed on the stream engine
	MeetRho  int     // cells whose measured throughput reached 0.9*rho
	SimFails int     // stream-engine failures (event budget, etc.)
	MinRatio float64 // min measured/rho over simulated cells (+Inf when none)
	MaxDrift float64 // max |measured-analytic|/analytic over simulated cells
}

// String renders the one-line sweep verification verdict.
func (v *VerifySummary) String() string {
	return fmt.Sprintf("verify: %d/%d simulated cells meet rho (%d sim failures, min measured/rho %.3f, max analytic drift %.1f%%)",
		v.MeetRho, v.Cells, v.SimFails, v.MinRatio, 100*v.MaxDrift)
}

// add folds one feasible cell into the summary.
func (v *VerifySummary) add(c *Cell) {
	v.Cells++
	if c.VerifyErr != nil {
		v.SimFails++
		return
	}
	if c.MeetsRho() {
		v.MeetRho++
	}
	if ratio := c.Measured / c.Rho; ratio < v.MinRatio {
		v.MinRatio = ratio
	}
	if c.Analytic > 0 {
		if drift := math.Abs(c.Measured-c.Analytic) / c.Analytic; drift > v.MaxDrift {
			v.MaxDrift = drift
		}
	}
}

// Figure is a reproduced paper figure.
type Figure struct {
	ID     string // e.g. "fig2a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Verify *VerifySummary // non-nil after a Config.Verify run
}

// heuristicSet returns the names of the paper's six heuristics plus the
// A3 conservative-merging variant of Subtree-bottom-up, in plot order.
func heuristicSet() []string {
	var names []string
	for _, h := range heuristics.All() {
		names = append(names, h.Name())
	}
	return append(names, heuristics.SubtreeBottomUp{DisableFold: true}.Name())
}

// nRange is the paper's x-axis for Figure 2: N in 20..140.
func nRange() []float64 { return []float64{20, 40, 60, 80, 100, 120, 140} }

// alphaRange is the paper's x-axis for Figure 3.
func alphaRange() []float64 {
	var xs []float64
	for a := 0.5; a <= 2.51; a += 0.2 {
		xs = append(xs, math.Round(a*100)/100)
	}
	return xs
}

// seriesFold reduces one unit's full grid of cells (index order, length
// grid.Size()) to plot series.
type seriesFold func(g *Grid, cells []Cell) []Series

// unitDef is one sweep of a figure: a grid builder plus its fold. Most
// figures are a single unit; ablations run one unit per variant.
type unitDef struct {
	grid func(cfg Config) *Grid
	fold seriesFold
}

// figDef is a declarative figure: metadata plus its sweep units.
type figDef struct {
	id, title, xlabel, ylabel string
	units                     []unitDef
}

// stdGrid assembles the common figure grid: the full heuristic set over
// xs with the Config's seeds/workers and an instance factory.
func stdGrid(cfg Config, xs []float64, cfgOf func(x float64) instance.Config) *Grid {
	return &Grid{
		Heuristics: heuristicSet(),
		Xs:         xs,
		Seeds:      cfg.Seeds,
		BaseSeed:   cfg.BaseSeed,
		Workers:    cfg.Workers,
		Make:       MakeInstances(cfgOf),
	}
}

// meanSeries is the standard fold: per (heuristic, x), mean cost and
// 95% CI over the feasible repetitions, NaN when none.
func meanSeries(g *Grid, cells []Cell) []Series {
	nx, ns := len(g.Xs), g.Seeds
	series := make([]Series, len(g.Heuristics))
	costs := make([]float64, 0, ns) // shared gather buffer; stats copy nothing out
	for hi, name := range g.Heuristics {
		series[hi].Label = name
		series[hi].Points = make([]Point, 0, nx)
		for xi, x := range g.Xs {
			costs = costs[:0]
			fails := 0
			for s := 0; s < ns; s++ {
				c := &cells[(hi*nx+xi)*ns+s]
				if c.Err != nil {
					fails++
					continue
				}
				costs = append(costs, c.Cost)
			}
			pt := Point{X: x, Fails: fails, Runs: ns, Mean: math.NaN()}
			if len(costs) > 0 {
				pt.Mean = stats.Mean(costs)
				pt.CI = stats.CI95(costs)
			}
			series[hi].Points = append(series[hi].Points, pt)
		}
	}
	return series
}

// relabeled wraps a fold, rewriting every series label through rename.
func relabeled(fold seriesFold, rename func(label string) string) seriesFold {
	return func(g *Grid, cells []Cell) []Series {
		series := fold(g, cells)
		for i := range series {
			series[i].Label = rename(series[i].Label)
		}
		return series
	}
}

// feasSeries folds a single-heuristic grid into one feasibility-count
// series (the A2 ablation's y-axis).
func feasSeries(label string) seriesFold {
	return func(g *Grid, cells []Cell) []Series {
		s := Series{Label: label, Points: make([]Point, 0, len(g.Xs))}
		ns := g.Seeds
		for xi, x := range g.Xs {
			ok := 0
			for i := 0; i < ns; i++ {
				if cells[xi*ns+i].Err == nil {
					ok++
				}
			}
			s.Points = append(s.Points, Point{X: x, Mean: float64(ok), Runs: ns, Fails: ns - ok})
		}
		return []Series{s}
	}
}

// figDefs returns every figure definition, in the CLI's order.
func figDefs() []figDef {
	paperSweep := func(xs []float64, cfgOf func(x float64) instance.Config) []unitDef {
		return []unitDef{{
			grid: func(cfg Config) *Grid { return stdGrid(cfg, xs, cfgOf) },
			fold: meanSeries,
		}}
	}
	defs := []figDef{
		{
			id: "fig2a", title: "Figure 2(a): cost vs N (alpha=0.9, f=1/2s, small objects)",
			xlabel: "number of nodes", ylabel: "cost ($)",
			units: paperSweep(nRange(), func(x float64) instance.Config {
				return instance.Config{NumOps: int(x), Alpha: 0.9}
			}),
		},
		{
			id: "fig2b", title: "Figure 2(b): cost vs N (alpha=1.7, f=1/2s, small objects)",
			xlabel: "number of nodes", ylabel: "cost ($)",
			units: paperSweep(nRange(), func(x float64) instance.Config {
				return instance.Config{NumOps: int(x), Alpha: 1.7}
			}),
		},
		{
			id: "fig3", title: "Figure 3: cost vs alpha (N=60, f=1/2s, small objects)",
			xlabel: "alpha", ylabel: "cost ($)",
			units: paperSweep(alphaRange(), func(x float64) instance.Config {
				return instance.Config{NumOps: 60, Alpha: x}
			}),
		},
		{
			id: "fig3n20", title: "cost vs alpha (N=20, f=1/2s, small objects)",
			xlabel: "alpha", ylabel: "cost ($)",
			units: paperSweep(alphaRange(), func(x float64) instance.Config {
				return instance.Config{NumOps: 20, Alpha: x}
			}),
		},
		{
			id: "large", title: "cost vs N (alpha=0.9, f=1/2s, LARGE objects 450-530MB)",
			xlabel: "number of nodes", ylabel: "cost ($)",
			units: paperSweep([]float64{5, 10, 15, 20, 30, 45, 60}, func(x float64) instance.Config {
				return instance.Config{NumOps: int(x), Alpha: 0.9, SizeMin: 450, SizeMax: 530}
			}),
		},
		{
			id: "freq", title: "cost vs update period 1/f (N=60, alpha=0.9, small objects)",
			xlabel: "update period (s)", ylabel: "cost ($)",
			units: paperSweep([]float64{2, 5, 10, 20, 50}, func(x float64) instance.Config {
				return instance.Config{NumOps: 60, Alpha: 0.9, Freq: 1 / x}
			}),
		},
	}
	defs = append(defs, refineDef(), churnDef(), ablationDowngradeDef(), ablationSelectionDef())
	return defs
}

// ablationDowngradeDef (A1) isolates the paper's third pipeline step:
// the same placements with and without the downgrade step. Only
// Subtree-bottom-up and Comp-Greedy are swept (the effect is uniform
// across heuristics and the figure stays readable); per-cell results
// are independent across heuristics, so the curves are identical to a
// full-set sweep filtered down.
func ablationDowngradeDef() figDef {
	def := figDef{
		id: "abl-downgrade", title: "Ablation A1: downgrade step on/off (alpha=0.9)",
		xlabel: "number of nodes", ylabel: "cost ($)",
	}
	for _, variant := range []struct {
		label string
		skip  bool
	}{{"with downgrade", false}, {"without downgrade", true}} {
		skip, label := variant.skip, variant.label
		def.units = append(def.units, unitDef{
			grid: func(cfg Config) *Grid {
				g := stdGrid(cfg, nRange(), func(x float64) instance.Config {
					return instance.Config{NumOps: int(x), Alpha: 0.9}
				})
				g.Heuristics = []string{"Comp-Greedy", "Subtree-bottom-up"}
				g.Opts = func(string) heuristics.Options {
					return heuristics.Options{SkipDowngrade: skip}
				}
				return g
			},
			fold: relabeled(meanSeries, func(l string) string { return l + " (" + label + ")" }),
		})
	}
	return def
}

// ablationSelectionDef (A2) compares the paper's three-loop server
// selection with the naive random selection on the same placements.
func ablationSelectionDef() figDef {
	def := figDef{
		id: "abl-selection", title: "Ablation A2: three-loop vs random server selection (alpha=0.9)",
		xlabel: "number of nodes", ylabel: "feasible runs (of Seeds)",
	}
	for _, variant := range []struct {
		label string
		mode  heuristics.ServerSelectionMode
	}{{"three-loop", heuristics.SelectThreeLoop}, {"random", heuristics.SelectRandom}} {
		mode, label := variant.mode, variant.label
		def.units = append(def.units, unitDef{
			grid: func(cfg Config) *Grid {
				g := stdGrid(cfg, nRange(), func(x float64) instance.Config {
					return instance.Config{NumOps: int(x), Alpha: 0.9}
				})
				g.Heuristics = []string{"Subtree-bottom-up"}
				g.Opts = func(string) heuristics.Options {
					return heuristics.Options{Selection: mode}
				}
				return g
			},
			fold: feasSeries("Subtree-bottom-up (" + label + ")"),
		})
	}
	return def
}

// FigureIDs lists every figure id, in the CLI's order.
func FigureIDs() []string {
	var ids []string
	for _, def := range figDefs() {
		ids = append(ids, def.id)
	}
	return ids
}

func figDefByID(id string) (figDef, error) {
	for _, def := range figDefs() {
		if def.id == id {
			return def, nil
		}
	}
	return figDef{}, fmt.Errorf("experiments: unknown figure %q (have %v)", id, FigureIDs())
}

// BuildFigure runs the figure's full grid(s) and folds the cells into
// the Figure — the one path behind the legacy Fig2a-style wrappers, the
// CLI and the shard merge, so their outputs are identical by
// construction. Cancelling ctx aborts the sweep between cells (the
// same contract as Grid.Run), which is how coordinator-driven runs
// stop cleanly.
func BuildFigure(ctx context.Context, id string, cfg Config) (*Figure, error) {
	def, err := figDefByID(id)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	fig := def.newFigure()
	var verify *VerifySummary
	if cfg.Verify {
		verify = &VerifySummary{MinRatio: math.Inf(1)}
	}
	for _, u := range def.units {
		g := u.grid(cfg)
		// Eval-driven grids (churn) have no per-cell mapping to execute
		// on the stream engine; the verification column skips them.
		if verify != nil && g.Eval == nil {
			g.Verify = &stream.Options{Results: 80}
		}
		cells, err := g.Cells(ctx)
		if err != nil {
			return nil, err
		}
		if verify != nil && g.Eval == nil {
			for i := range cells {
				if cells[i].Err == nil {
					verify.add(&cells[i])
				}
			}
		}
		fig.Series = append(fig.Series, u.fold(g, cells)...)
	}
	fig.Verify = verify
	return fig, nil
}

func (def figDef) newFigure() *Figure {
	return &Figure{ID: def.id, Title: def.title, XLabel: def.xlabel, YLabel: def.ylabel}
}

// mustFigure backs the legacy figure wrappers, whose signatures predate
// the error-returning Grid engine; their inputs are static and valid.
func mustFigure(id string, cfg Config) *Figure {
	fig, err := BuildFigure(context.Background(), id, cfg)
	if err != nil {
		panic(err)
	}
	return fig
}

// Fig2a reproduces Figure 2(a): cost versus N, alpha=0.9, high download
// frequency (1/2 s), small objects (5-30 MB).
func Fig2a(cfg Config) *Figure { return mustFigure("fig2a", cfg) }

// Fig2b reproduces Figure 2(b): as Fig2a with alpha=1.7.
func Fig2b(cfg Config) *Figure { return mustFigure("fig2b", cfg) }

// Fig3 reproduces Figure 3: cost versus alpha at N=60.
func Fig3(cfg Config) *Figure { return mustFigure("fig3", cfg) }

// Fig3SmallTree reproduces the Section 5 text companion of Figure 3 for
// N=20 (thresholds around alpha=1.7 and 2.2).
func Fig3SmallTree(cfg Config) *Figure { return mustFigure("fig3n20", cfg) }

// LargeObjects reproduces the Section 5 text experiment with 450-530 MB
// objects: feasibility collapses beyond a modest tree size.
func LargeObjects(cfg Config) *Figure { return mustFigure("large", cfg) }

// FrequencySweep reproduces the download-rate experiment: cost versus
// update period (1/f from 2s to 50s) at N=60; below 1/10s the solutions
// stop changing.
func FrequencySweep(cfg Config) *Figure { return mustFigure("freq", cfg) }

// AblationDowngrade (A1) isolates the paper's third pipeline step: the
// same placements with and without the downgrade step.
func AblationDowngrade(cfg Config) *Figure { return mustFigure("abl-downgrade", cfg) }

// AblationSelection (A2) compares the paper's three-loop server selection
// with the naive random selection on the same placements.
func AblationSelection(cfg Config) *Figure { return mustFigure("abl-selection", cfg) }

// Dat renders the figure as a gnuplot-style whitespace table: one x column
// followed by one cost column per series ("nan" for infeasible points).
func (f *Figure) Dat() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# x", f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\t%q", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "\t%g", s.Points[i].Mean)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCII renders the figure as a terminal plot.
func (f *Figure) ASCII(width, height int) string {
	var series []textplot.Series
	for _, s := range f.Series {
		ts := textplot.Series{Label: s.Label}
		for _, p := range s.Points {
			ts.X = append(ts.X, p.X)
			ts.Y = append(ts.Y, p.Mean)
		}
		series = append(series, ts)
	}
	return textplot.Plot(f.Title, series, width, height)
}

// Ranking returns the series labels ordered by mean cost across all
// feasible points (cheapest first) — the paper's headline comparison.
func (f *Figure) Ranking() []string {
	type agg struct {
		label string
		mean  float64
	}
	var out []agg
	for _, s := range f.Series {
		var costs []float64
		for _, p := range s.Points {
			if !math.IsNaN(p.Mean) {
				costs = append(costs, p.Mean)
			}
		}
		if len(costs) > 0 {
			out = append(out, agg{s.Label, stats.Mean(costs)})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].mean < out[b].mean })
	labels := make([]string, len(out))
	for i, a := range out {
		labels[i] = a.label
	}
	return labels
}

// SeriesByLabel returns the series with the given label, or nil.
func (f *Figure) SeriesByLabel(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}
