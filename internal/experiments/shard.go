package experiments

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// cellsSchema identifies the shard cell-file layout; bump on
// incompatible changes so stale shard outputs cannot be merged silently.
const cellsSchema = "streamalloc-cells/v1"

// errCellInfeasible marks a decoded cell that recorded no feasible
// mapping; the concrete solve error is not serialized (folds only need
// feasibility).
var errCellInfeasible = errors.New("experiments: cell recorded as infeasible")

// ShardCells is one shard's worth of one figure's raw sweep cells — the
// unit of work a distributed figure run ships between machines. Each
// entry of Units parallels the figure definition's sweep units and
// holds that unit's shard cells in full-grid index order.
type ShardCells struct {
	FigID    string
	Shard    Shard
	Seeds    int
	BaseSeed int64
	Units    [][]Cell
}

// RunFigureShard computes the figure's cells belonging to one shard.
// Per-cell seeds are pure functions of grid coordinates, so the union
// of all shards reproduces the unsharded run cell-for-cell; MergeFigure
// folds that union into a byte-identical Figure.
func RunFigureShard(ctx context.Context, id string, cfg Config, sh Shard) (*ShardCells, error) {
	def, err := figDefByID(id)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sh.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	out := &ShardCells{FigID: id, Shard: sh.normalized(), Seeds: cfg.Seeds, BaseSeed: cfg.BaseSeed}
	for _, u := range def.units {
		g := u.grid(cfg)
		g.Shard = sh
		cells, err := g.Cells(ctx)
		if err != nil {
			return nil, err
		}
		out.Units = append(out.Units, cells)
	}
	return out, nil
}

// MergeFigure reassembles the full cell grid from every shard's cells
// and folds it into the Figure. The parts must cover every shard index
// exactly once and agree on figure id, seeds and base seed; every cell
// of every unit must be present exactly once. The result is
// byte-identical (Figure.Dat) to an unsharded BuildFigure run.
func MergeFigure(id string, cfg Config, parts []*ShardCells) (*Figure, error) {
	def, err := figDefByID(id)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(parts) == 0 {
		return nil, fmt.Errorf("experiments: merge %s: no shard parts", id)
	}
	count := parts[0].Shard.normalized().Count
	seenShard := make([]bool, count)
	for _, p := range parts {
		if err := p.Shard.validate(); err != nil {
			return nil, fmt.Errorf("experiments: merge %s: %w", id, err)
		}
		switch {
		case p.FigID != id:
			return nil, fmt.Errorf("experiments: merge %s: part belongs to figure %q", id, p.FigID)
		case p.Seeds != cfg.Seeds || p.BaseSeed != cfg.BaseSeed:
			return nil, fmt.Errorf("experiments: merge %s: part ran with seeds=%d base=%d, want seeds=%d base=%d",
				id, p.Seeds, p.BaseSeed, cfg.Seeds, cfg.BaseSeed)
		case p.Shard.normalized().Count != count:
			return nil, fmt.Errorf("experiments: merge %s: mixed shard counts %d and %d", id, p.Shard.normalized().Count, count)
		case len(p.Units) != len(def.units):
			return nil, fmt.Errorf("experiments: merge %s: part has %d sweep units, figure has %d", id, len(p.Units), len(def.units))
		}
		i := p.Shard.normalized().Index
		if seenShard[i] {
			return nil, fmt.Errorf("experiments: merge %s: shard %d supplied twice", id, i)
		}
		seenShard[i] = true
	}
	for i, seen := range seenShard {
		if !seen {
			return nil, fmt.Errorf("experiments: merge %s: shard %d/%d missing", id, i, count)
		}
	}

	fig := def.newFigure()
	for ui, u := range def.units {
		g := u.grid(cfg)
		full := make([]Cell, g.Size())
		filled := make([]bool, g.Size())
		for _, p := range parts {
			for _, c := range p.Units[ui] {
				if c.Index < 0 || c.Index >= g.Size() {
					return nil, fmt.Errorf("experiments: merge %s: unit %d cell index %d out of range [0, %d)",
						id, ui, c.Index, g.Size())
				}
				if filled[c.Index] {
					return nil, fmt.Errorf("experiments: merge %s: unit %d cell %d supplied twice", id, ui, c.Index)
				}
				filled[c.Index] = true
				full[c.Index] = c
			}
		}
		for i, ok := range filled {
			if !ok {
				return nil, fmt.Errorf("experiments: merge %s: unit %d cell %d missing", id, ui, i)
			}
		}
		fig.Series = append(fig.Series, u.fold(g, full)...)
	}
	return fig, nil
}

// Encode writes the shard cells as a line-oriented text artifact. Costs
// round-trip exactly (strconv 'g' with precision -1), so a merged
// figure is byte-identical to an in-memory one.
func (sc *ShardCells) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	sh := sc.Shard.normalized()
	fmt.Fprintf(bw, "# %s fig=%s shard=%d/%d seeds=%d baseseed=%d units=%d\n",
		cellsSchema, sc.FigID, sh.Index, sh.Count, sc.Seeds, sc.BaseSeed, len(sc.Units))
	fmt.Fprintf(bw, "# unit index seed ok cost procs\n")
	for ui, cells := range sc.Units {
		for i := range cells {
			c := &cells[i]
			ok := 0
			if c.Err == nil {
				ok = 1
			}
			fmt.Fprintf(bw, "%d %d %d %d %s %d\n", ui, c.Index, c.Seed, ok,
				strconv.FormatFloat(c.Cost, 'g', -1, 64), c.Procs)
		}
	}
	return bw.Flush()
}

// DecodeShardCells parses an Encode artifact. Only the fields the
// figure folds consume survive the round trip: index, seed,
// feasibility, cost and processor count (infeasible cells carry the
// errCellInfeasible sentinel).
func DecodeShardCells(r io.Reader) (*ShardCells, error) {
	sc := &ShardCells{}
	scanner := bufio.NewScanner(r)
	if !scanner.Scan() {
		return nil, fmt.Errorf("experiments: empty cells artifact")
	}
	header := scanner.Text()
	var units int
	if _, err := fmt.Sscanf(header, "# "+cellsSchema+" fig=%s shard=%d/%d seeds=%d baseseed=%d units=%d",
		&sc.FigID, &sc.Shard.Index, &sc.Shard.Count, &sc.Seeds, &sc.BaseSeed, &units); err != nil {
		return nil, fmt.Errorf("experiments: bad cells header %q (want %s): %v", header, cellsSchema, err)
	}
	if err := sc.Shard.validate(); err != nil {
		return nil, fmt.Errorf("experiments: bad cells header %q: %w", header, err)
	}
	if units < 0 || units > 64 {
		return nil, fmt.Errorf("experiments: implausible unit count %d", units)
	}
	sc.Units = make([][]Cell, units)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 6 {
			return nil, fmt.Errorf("experiments: bad cells line %q", line)
		}
		ui, err1 := strconv.Atoi(f[0])
		idx, err2 := strconv.Atoi(f[1])
		seed, err3 := strconv.ParseInt(f[2], 10, 64)
		ok, err4 := strconv.Atoi(f[3])
		cost, err5 := strconv.ParseFloat(f[4], 64)
		procs, err6 := strconv.Atoi(f[5])
		if err := errors.Join(err1, err2, err3, err4, err5, err6); err != nil {
			return nil, fmt.Errorf("experiments: bad cells line %q: %v", line, err)
		}
		if ui < 0 || ui >= units {
			return nil, fmt.Errorf("experiments: cells line %q references unit %d of %d", line, ui, units)
		}
		c := Cell{Index: idx, Seed: seed, Cost: cost, Procs: procs}
		if ok == 0 {
			c.Err = errCellInfeasible
		}
		sc.Units[ui] = append(sc.Units[ui], c)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}
