package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
)

// fast config keeps test runtime reasonable.
var fast = Config{Seeds: 3, BaseSeed: 1}

func TestFig2aShape(t *testing.T) {
	fig := Fig2a(fast)
	if len(fig.Series) != 7 {
		t.Fatalf("want 7 series (6 heuristics + nofold), got %d", len(fig.Series))
	}
	// Paper shape: Random is the most expensive curve; Subtree-bottom-up
	// is the cheapest (or tied) wherever both are feasible.
	rnd := fig.SeriesByLabel("Random")
	sbu := fig.SeriesByLabel("Subtree-bottom-up")
	if rnd == nil || sbu == nil {
		t.Fatal("missing expected series")
	}
	compared := 0
	for i := range rnd.Points {
		if math.IsNaN(rnd.Points[i].Mean) || math.IsNaN(sbu.Points[i].Mean) {
			continue
		}
		compared++
		if sbu.Points[i].Mean > rnd.Points[i].Mean {
			t.Fatalf("N=%v: Subtree-bottom-up (%v) above Random (%v)",
				rnd.Points[i].X, sbu.Points[i].Mean, rnd.Points[i].Mean)
		}
	}
	if compared == 0 {
		t.Fatal("no comparable points")
	}
	// Ranking: Subtree-bottom-up among the cheapest, Random the last of
	// the paper heuristics.
	rank := fig.Ranking()
	if len(rank) == 0 || rank[len(rank)-1] != "Random" {
		t.Fatalf("ranking = %v, want Random last", rank)
	}
}

func TestFig3Thresholds(t *testing.T) {
	fig := Fig3(Config{Seeds: 3, BaseSeed: 1})
	sbu := fig.SeriesByLabel("Subtree-bottom-up")
	if sbu == nil {
		t.Fatal("missing Subtree-bottom-up")
	}
	// Paper shape at N=60: feasible and flat at low alpha, cost rises near
	// alpha ~1.6-1.8, everything infeasible by alpha ~1.9-2.
	lowIdx, highIdx := -1, -1
	for i, p := range sbu.Points {
		if p.X <= 1.1 && !math.IsNaN(p.Mean) {
			lowIdx = i
		}
		if p.X >= 2.3 {
			highIdx = i
		}
	}
	if lowIdx < 0 {
		t.Fatal("no feasible low-alpha point")
	}
	if highIdx >= 0 && sbu.Points[highIdx].Fails != sbu.Points[highIdx].Runs {
		t.Fatalf("alpha=%v should be infeasible, got %d/%d fails",
			sbu.Points[highIdx].X, sbu.Points[highIdx].Fails, sbu.Points[highIdx].Runs)
	}
}

func TestLargeObjectsFeasibilityCliff(t *testing.T) {
	fig := LargeObjects(Config{Seeds: 3, BaseSeed: 1})
	sbu := fig.SeriesByLabel("Subtree-bottom-up")
	small, large := -1, -1
	for i, p := range sbu.Points {
		if p.X == 5 {
			small = i
		}
		if p.X == 60 {
			large = i
		}
	}
	if sbu.Points[small].Fails == sbu.Points[small].Runs {
		t.Fatal("5-node large-object trees should mostly be feasible")
	}
	if sbu.Points[large].Fails != sbu.Points[large].Runs {
		t.Fatal("60-node large-object trees should be infeasible (paper: cliff at ~45)")
	}
}

func TestFrequencyPlateau(t *testing.T) {
	fig := FrequencySweep(Config{Seeds: 3, BaseSeed: 1})
	sbu := fig.SeriesByLabel("Subtree-bottom-up")
	// The paper: periods beyond 10s change nothing. Compare 10s vs 50s.
	var at10, at50 float64 = math.NaN(), math.NaN()
	for _, p := range sbu.Points {
		if p.X == 10 {
			at10 = p.Mean
		}
		if p.X == 50 {
			at50 = p.Mean
		}
	}
	if math.IsNaN(at10) || math.IsNaN(at50) {
		t.Fatal("missing frequency points")
	}
	if math.Abs(at10-at50)/at10 > 0.25 {
		t.Fatalf("cost at 10s (%v) and 50s (%v) differ too much: no plateau", at10, at50)
	}
}

// TestSweepDeterministicAcrossWorkers is the tentpole's contract: the
// parallel sweep must render byte-identical .dat output to the serial
// path at every worker count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	serial := Fig2a(Config{Seeds: 2, BaseSeed: 1, Workers: 1}).Dat()
	for _, workers := range []int{0, 4, 8} {
		got := Fig2a(Config{Seeds: 2, BaseSeed: 1, Workers: workers}).Dat()
		if got != serial {
			t.Fatalf("workers=%d output diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, got)
		}
	}
	// Same contract for the selection ablation, which has its own fan-out.
	serialAbl := AblationSelection(Config{Seeds: 2, BaseSeed: 1, Workers: 1}).Dat()
	if got := AblationSelection(Config{Seeds: 2, BaseSeed: 1, Workers: 8}).Dat(); got != serialAbl {
		t.Fatalf("ablation diverges:\n--- serial ---\n%s--- parallel ---\n%s", serialAbl, got)
	}
}

// TestTablesDeterministicAcrossWorkers pins the parallel V1 harness to
// the serial rendering.
func TestTablesDeterministicAcrossWorkers(t *testing.T) {
	serial := ThroughputValidation(Config{Seeds: 2, BaseSeed: 1, Workers: 1}).String()
	if got := ThroughputValidation(Config{Seeds: 2, BaseSeed: 1, Workers: 8}).String(); got != serial {
		t.Fatalf("V1 table diverges:\n--- serial ---\n%s--- parallel ---\n%s", serial, got)
	}
}

func TestDatAndASCII(t *testing.T) {
	fig := Fig2a(Config{Seeds: 2, BaseSeed: 5})
	dat := fig.Dat()
	if !strings.Contains(dat, "# Figure 2(a)") || !strings.Contains(dat, "Subtree-bottom-up") {
		t.Fatalf("bad dat output:\n%s", dat)
	}
	lines := strings.Split(strings.TrimSpace(dat), "\n")
	if len(lines) != 2+len(nRange()) {
		t.Fatalf("dat has %d lines, want %d", len(lines), 2+len(nRange()))
	}
	ascii := fig.ASCII(60, 12)
	if !strings.Contains(ascii, "Figure 2(a)") {
		t.Fatalf("bad ascii output:\n%s", ascii)
	}
}

func TestTable1Output(t *testing.T) {
	tab := Table1()
	out := tab.String()
	for _, want := range []string{"46.88 GHz", "20 Gbps", "7548 + 5999", "7548 + 5299"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("Table 1 has %d rows, want 10", len(tab.Rows))
	}
}

func TestOptimalComparison(t *testing.T) {
	tab := OptimalComparison(Config{Seeds: 2, BaseSeed: 3})
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Column order: N alpha LB(analytic) LB(ILP) optimal Subtree ...
	for _, row := range tab.Rows {
		var lb, opt, sbu float64
		if _, err := fmtSscan(row[2], &lb); err != nil {
			t.Fatalf("bad LB cell %q", row[2])
		}
		if _, err := fmtSscan(row[4], &opt); err != nil {
			t.Fatalf("bad optimal cell %q", row[4])
		}
		if lb > opt+1e-9 {
			t.Fatalf("analytic LB %v above optimal %v", lb, opt)
		}
		if row[5] != "-" {
			if _, err := fmtSscan(row[5], &sbu); err != nil {
				t.Fatalf("bad subtree cell %q", row[5])
			}
			if sbu < opt-1e-9 {
				t.Fatalf("Subtree-bottom-up %v below optimal %v", sbu, opt)
			}
		}
	}
	if tab.String() == "" {
		t.Fatal("empty render")
	}
}

func TestThroughputValidation(t *testing.T) {
	tab := ThroughputValidation(Config{Seeds: 2, BaseSeed: 1})
	if len(tab.Rows) != 3*6 {
		t.Fatalf("rows = %d, want 18", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[5] == "false" {
			t.Fatalf("mapping failed to meet rho: %v", row)
		}
	}
}

func TestILPScalingNote(t *testing.T) {
	n, err := ILPScalingNote()
	if err != nil {
		t.Fatal(err)
	}
	// The paper could not load N=30; our wall must be in the same regime
	// (somewhere between 10 and 120 operators).
	if n < 10 || n > 120 {
		t.Fatalf("ILP wall at N=%d, outside the plausible regime", n)
	}
}

// fmtSscan wraps fmt.Sscan to keep the test imports tidy.
func fmtSscan(s string, v *float64) (int, error) {
	return sscan(s, v)
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// TestRefineFigure covers the PR 8 figure end to end: the grid runs, the
// per-cell dominance gate holds, and the sharded run reassembles the
// byte-identical .dat at any worker count.
func TestRefineFigure(t *testing.T) {
	cfg := Config{Seeds: 3, BaseSeed: 1}
	checked, err := RefineGate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("refine gate checked no instances")
	}

	full, err := BuildFigure(context.Background(), "refine", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := full.Dat()
	if got := len(full.Series); got != 9 {
		t.Fatalf("want 9 series (7 heuristic set + Refined + Exact), got %d", got)
	}
	for _, workers := range []int{1, 3} {
		for _, shards := range []int{1, 2, 3} {
			c := cfg
			c.Workers = workers
			parts := make([]*ShardCells, 0, shards)
			for i := 0; i < shards; i++ {
				sc, err := RunFigureShard(context.Background(), "refine", c, Shard{Index: i, Count: shards})
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, sc)
			}
			fig, err := MergeFigure("refine", c, parts)
			if err != nil {
				t.Fatal(err)
			}
			if got := fig.Dat(); got != want {
				t.Fatalf("workers=%d shards=%d: merged .dat differs from unsharded run\ngot:\n%s\nwant:\n%s",
					workers, shards, got, want)
			}
		}
	}
}
