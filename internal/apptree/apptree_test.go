package apptree

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// paperTree builds the "standard tree" of the paper's Figure 1(a):
// n4 is the root with children n5 and n3; n5 has children n2 and n1;
// n2 reads o1; n1 reads o1 and o2; n3 reads o2 and o3.
func paperTree() *Tree {
	t := &Tree{}
	// indices: 0=n1, 1=n2, 2=n3, 3=n4(root), 4=n5
	t.Ops = make([]Operator, 5)
	t.Root = 3
	t.Ops[3] = Operator{Parent: NoParent, ChildOps: []int{4, 2}}
	t.Ops[4] = Operator{Parent: 3, ChildOps: []int{1, 0}}
	t.Ops[2] = Operator{Parent: 3}
	t.Ops[1] = Operator{Parent: 4}
	t.Ops[0] = Operator{Parent: 4}
	addLeaf := func(op, obj int) {
		li := len(t.Leaves)
		t.Leaves = append(t.Leaves, Leaf{Object: obj, Parent: op})
		t.Ops[op].Leaves = append(t.Ops[op].Leaves, li)
	}
	addLeaf(1, 0) // n2: o1
	addLeaf(0, 0) // n1: o1
	addLeaf(0, 1) // n1: o2
	addLeaf(2, 1) // n3: o2
	addLeaf(2, 2) // n3: o3
	return t
}

func TestPaperTreeValid(t *testing.T) {
	tr := paperTree()
	if err := tr.Validate(); err != nil {
		t.Fatalf("paper tree invalid: %v", err)
	}
	if tr.NumOps() != 5 || tr.NumLeaves() != 5 {
		t.Fatalf("got %d ops, %d leaves", tr.NumOps(), tr.NumLeaves())
	}
}

func TestALOperators(t *testing.T) {
	tr := paperTree()
	al := tr.ALOperators()
	want := []int{0, 1, 2}
	if len(al) != len(want) {
		t.Fatalf("al-operators = %v, want %v", al, want)
	}
	for i := range al {
		if al[i] != want[i] {
			t.Fatalf("al-operators = %v, want %v", al, want)
		}
	}
	if tr.IsAL(3) || tr.IsAL(4) {
		t.Fatal("n4/n5 must not be al-operators")
	}
}

func TestLeafObjects(t *testing.T) {
	tr := paperTree()
	got := tr.LeafObjects(0)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Leaf(n1) = %v, want [0 1]", got)
	}
	if len(tr.LeafObjects(4)) != 0 {
		t.Fatal("n5 should need no objects")
	}
}

func TestLeafObjectsDedup(t *testing.T) {
	tr := &Tree{}
	tr.Ops = []Operator{{Parent: NoParent}}
	tr.Root = 0
	tr.Leaves = []Leaf{{Object: 3, Parent: 0}, {Object: 3, Parent: 0}}
	tr.Ops[0].Leaves = []int{0, 1}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.LeafObjects(0); len(got) != 1 || got[0] != 3 {
		t.Fatalf("duplicate leaves not deduped: %v", got)
	}
}

func TestPopularity(t *testing.T) {
	tr := paperTree()
	pop := tr.Popularity(4)
	// o1 needed by n1,n2; o2 by n1,n3; o3 by n3; type 3 unused.
	want := []int{2, 2, 1, 0}
	for k := range want {
		if pop[k] != want[k] {
			t.Fatalf("popularity = %v, want %v", pop, want)
		}
	}
}

func TestBottomUpOrder(t *testing.T) {
	tr := paperTree()
	pos := map[int]int{}
	for idx, op := range tr.BottomUp() {
		pos[op] = idx
	}
	for i, op := range tr.Ops {
		for _, c := range op.ChildOps {
			if pos[c] >= pos[i] {
				t.Fatalf("child %d not before parent %d in bottom-up order", c, i)
			}
		}
	}
	td := tr.TopDown()
	if td[0] != tr.Root {
		t.Fatalf("top-down order must start at root, got %v", td)
	}
}

func TestEdges(t *testing.T) {
	tr := paperTree()
	edges := tr.Edges()
	if len(edges) != 4 {
		t.Fatalf("got %d edges, want 4", len(edges))
	}
	seen := map[Edge]bool{}
	for _, e := range edges {
		seen[e] = true
	}
	for _, want := range []Edge{{3, 4}, {3, 2}, {4, 1}, {4, 0}} {
		if !seen[want] {
			t.Fatalf("missing edge %v in %v", want, edges)
		}
	}
}

func TestDerivePaperTree(t *testing.T) {
	tr := paperTree()
	sizes := []float64{10, 20, 30} // o1, o2, o3
	w, delta := tr.Derive(sizes, 1.0)
	// n1 = o1+o2 = 30; n2 = o1 = 10; n3 = o2+o3 = 50;
	// n5 = n1+n2 = 40; n4 = n5+n3 = 90.
	wantDelta := map[int]float64{0: 30, 1: 10, 2: 50, 4: 40, 3: 90}
	for i, want := range wantDelta {
		if math.Abs(delta[i]-want) > 1e-9 {
			t.Fatalf("delta[%d] = %v, want %v", i, delta[i], want)
		}
		if math.Abs(w[i]-want) > 1e-9 { // alpha=1 => w == delta
			t.Fatalf("w[%d] = %v, want %v", i, w[i], want)
		}
	}
	w2, _ := tr.Derive(sizes, 2.0)
	if math.Abs(w2[3]-90*90) > 1e-6 {
		t.Fatalf("w[root] at alpha=2 = %v, want %v", w2[3], 90.0*90)
	}
}

func TestRandomTreeInvariants(t *testing.T) {
	r := rng.New(42)
	for _, n := range []int{1, 2, 3, 10, 60, 140} {
		tr := Random(r, n, 15)
		if err := tr.Validate(); err != nil {
			t.Fatalf("Random(%d) invalid: %v", n, err)
		}
		if tr.NumOps() != n {
			t.Fatalf("Random(%d) has %d ops", n, tr.NumOps())
		}
		if tr.NumLeaves() != n+1 {
			t.Fatalf("Random(%d) has %d leaves, want %d", n, tr.NumLeaves(), n+1)
		}
		for _, l := range tr.Leaves {
			if l.Object < 0 || l.Object >= 15 {
				t.Fatalf("object type out of range: %d", l.Object)
			}
		}
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	a := Random(rng.New(7), 25, 15)
	b := Random(rng.New(7), 25, 15)
	if a.DOT("x") != b.DOT("x") {
		t.Fatal("same seed produced different trees")
	}
	c := Random(rng.New(8), 25, 15)
	if a.DOT("x") == c.DOT("x") {
		t.Fatal("different seeds produced identical trees (suspicious)")
	}
}

func TestRandomTreeProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		nn := int(n%100) + 1
		tr := Random(rng.New(seed), nn, 15)
		if tr.Validate() != nil || tr.NumOps() != nn || tr.NumLeaves() != nn+1 {
			return false
		}
		// binary-tree constraint |Leaf(i)| + |Ch(i)| <= 2
		for i := range tr.Ops {
			if len(tr.Ops[i].ChildOps)+len(tr.Ops[i].Leaves) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLeftDeep(t *testing.T) {
	tr := LeftDeep([]int{0, 0, 2, 1, 1}) // paper Fig 1(b): o1,o1,o3,o2,o2 bottom-up
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumOps() != 4 || tr.NumLeaves() != 5 {
		t.Fatalf("left-deep: %d ops, %d leaves", tr.NumOps(), tr.NumLeaves())
	}
	// Every operator is an al-operator in a left-deep tree.
	if got := len(tr.ALOperators()); got != 4 {
		t.Fatalf("left-deep should have 4 al-operators, got %d", got)
	}
	// Depth is numOps-1 edges.
	if tr.Depth() != 3 {
		t.Fatalf("left-deep depth = %d, want 3", tr.Depth())
	}
}

func TestLeftDeepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short object list")
		}
	}()
	LeftDeep([]int{1})
}

func TestDOTOutput(t *testing.T) {
	tr := paperTree()
	dot := tr.DOT("fig1a")
	for _, want := range []string{"digraph", "n4 -> n3", "shape=box", "shape=ellipse"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Tree)
	}{
		{"bad root parent", func(tr *Tree) { tr.Ops[tr.Root].Parent = 0 }},
		{"orphan child", func(tr *Tree) { tr.Ops[4].Parent = 2 }},
		{"too many children", func(tr *Tree) {
			tr.Ops[3].ChildOps = append(tr.Ops[3].ChildOps, 1)
		}},
		{"bad leaf parent", func(tr *Tree) { tr.Leaves[0].Parent = 3 }},
		{"negative object", func(tr *Tree) { tr.Leaves[0].Object = -1 }},
		{"root out of range", func(tr *Tree) { tr.Root = 99 }},
	}
	for _, tc := range cases {
		tr := paperTree()
		tc.mutate(tr)
		if tr.Validate() == nil {
			t.Fatalf("%s: corruption not detected", tc.name)
		}
	}
}

func TestValidateEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Validate() == nil {
		t.Fatal("empty tree must be invalid")
	}
}

func TestBuilderRandomMatchesRandom(t *testing.T) {
	// A reused Builder must produce trees identical to the one-shot
	// Random across varying sizes (growing and shrinking its storage).
	var b Builder
	for _, n := range []int{1, 7, 40, 3, 60, 2} {
		want := Random(rand.New(rand.NewSource(int64(n)*17+1)), n, 5)
		got := b.Random(rand.New(rand.NewSource(int64(n)*17+1)), n, 5)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("n=%d: builder tree differs from Random's", n)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBuilderRandomAllocFree(t *testing.T) {
	var b Builder
	r := rand.New(rand.NewSource(1))
	b.Random(r, 50, 5) // warm the arenas
	allocs := testing.AllocsPerRun(20, func() {
		b.Random(r, 50, 5)
	})
	if allocs > 0 {
		t.Fatalf("warmed builder allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestRandomPreorderIndices(t *testing.T) {
	// DeriveInto's reverse-pass fast path relies on Random indexing every
	// operator before its children.
	for seed := int64(1); seed <= 20; seed++ {
		tr := Random(rand.New(rand.NewSource(seed)), 30, 4)
		for i, op := range tr.Ops {
			for _, c := range op.ChildOps {
				if c <= i {
					t.Fatalf("seed %d: operator %d has child %d <= its own index", seed, i, c)
				}
			}
		}
	}
}

func TestDeriveIntoMatchesDerive(t *testing.T) {
	sizes := []float64{3, 5, 8, 2}
	var w, delta []float64
	// Random trees take the reverse-pass fast path; LeftDeep trees index
	// children before parents and must hit the fallback.
	trees := []*Tree{
		Random(rand.New(rand.NewSource(3)), 25, 4),
		LeftDeep([]int{0, 1, 2, 3, 1}),
	}
	for ti, tr := range trees {
		for _, alpha := range []float64{0.9, 1, 1.7} {
			wantW, wantD := tr.Derive(sizes, alpha)
			w, delta = tr.DeriveInto(sizes, alpha, w, delta)
			if !reflect.DeepEqual(wantW, w) || !reflect.DeepEqual(wantD, delta) {
				t.Fatalf("tree %d alpha %g: DeriveInto differs from Derive", ti, alpha)
			}
		}
	}
}
