// Package apptree models the application side of the in-network stream
// processing problem of Benoit et al. (IPDPS/APDCM 2009): a binary tree
// whose internal nodes are operators and whose leaves are occurrences of
// basic objects, continuously updated at data servers.
//
// Following the paper's notation, for an operator n_i:
//
//   - Leaf(i) is the index set of basic objects its leaf children need,
//   - Ch(i) is the index set of its operator children,
//   - Par(i) is its parent operator (if any),
//   - |Leaf(i)| + |Ch(i)| <= 2 because the tree is binary,
//   - an operator with at least one leaf child is an "al-operator"
//     ("almost leaf").
//
// The package is purely structural: object sizes, download frequencies
// and the computation exponent alpha live in package instance, which
// derives per-operator work w_i and output size delta_i from a Tree.
package apptree

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strings"

	"repro/internal/xslice"
)

// NoParent marks the root operator's Parent field.
const NoParent = -1

// Leaf is one occurrence of a basic object as a tree leaf. Several leaves
// may reference the same object type (the paper's Figure 1 shows o1 and o2
// appearing twice).
type Leaf struct {
	Object int // basic-object type index, 0-based
	Parent int // operator index owning this leaf
}

// Operator is an internal node of the application tree.
type Operator struct {
	Parent   int   // parent operator index, or NoParent for the root
	ChildOps []int // operator children, in left-to-right order (0..2)
	Leaves   []int // indices into Tree.Leaves of leaf children (0..2)
}

// Tree is a binary operator tree. The zero value is not useful; build
// trees with Random, LeftDeep or NewBuilder.
type Tree struct {
	Ops    []Operator
	Leaves []Leaf
	Root   int
}

// NumOps returns the number of operators (internal nodes).
func (t *Tree) NumOps() int { return len(t.Ops) }

// NumLeaves returns the number of leaf occurrences.
func (t *Tree) NumLeaves() int { return len(t.Leaves) }

// IsAL reports whether operator i is an al-operator, i.e. has at least one
// basic-object leaf child.
func (t *Tree) IsAL(i int) bool { return len(t.Ops[i].Leaves) > 0 }

// ALOperators returns the indices of all al-operators, in increasing
// order, as one exactly-sized allocation (solve pipelines call this per
// solve).
func (t *Tree) ALOperators() []int {
	n := 0
	for i := range t.Ops {
		if t.IsAL(i) {
			n++
		}
	}
	return t.ALOperatorsInto(make([]int, 0, n))
}

// ALOperatorsInto is ALOperators into a reusable buffer (reset to buf[:0]
// before filling); the placement heuristics call it once per solve.
func (t *Tree) ALOperatorsInto(buf []int) []int {
	out := buf[:0]
	for i := range t.Ops {
		if t.IsAL(i) {
			out = append(out, i)
		}
	}
	return out
}

// LeafObjects returns the sorted de-duplicated set Leaf(i) of basic-object
// types operator i must download.
func (t *Tree) LeafObjects(i int) []int {
	var buf [2]int
	objs := t.LeafObjectsBuf(i, &buf)
	if objs == nil {
		return nil
	}
	return append([]int(nil), objs...)
}

// LeafObjectsBuf is LeafObjects into a caller-provided buffer — a
// binary-tree operator has at most two leaves, so Leaf(i) always fits
// [2]int and hot loops (placement heuristics, Popularity) pay no
// allocation. Returns nil for operators without leaf children.
func (t *Tree) LeafObjectsBuf(i int, buf *[2]int) []int {
	n := 0
	for _, li := range t.Ops[i].Leaves {
		k := t.Leaves[li].Object
		if n == 1 && buf[0] == k {
			continue
		}
		buf[n] = k
		n++
	}
	if n == 0 {
		return nil
	}
	if n == 2 && buf[1] < buf[0] {
		buf[0], buf[1] = buf[1], buf[0]
	}
	return buf[:n]
}

// ObjectSet returns the sorted set of distinct basic-object types used
// anywhere in the tree. One exact allocation: gather, sort, dedup in
// place.
func (t *Tree) ObjectSet() []int {
	return t.ObjectSetInto(make([]int, 0, len(t.Leaves)))
}

// ObjectSetInto is ObjectSet into a reusable buffer: gather, sort, dedup
// in place.
func (t *Tree) ObjectSetInto(buf []int) []int {
	out := buf[:0]
	for _, l := range t.Leaves {
		out = append(out, l.Object)
	}
	sort.Ints(out)
	w := 0
	for i, k := range out {
		if i == 0 || k != out[w-1] {
			out[w] = k
			w++
		}
	}
	return out[:w]
}

// Popularity returns, for each object type in [0, numTypes), how many
// operators need it (the paper's Object-Grouping "popularity" count).
// An operator with two leaves of the same type counts once.
func (t *Tree) Popularity(numTypes int) []int {
	return t.PopularityInto(numTypes, make([]int, numTypes))
}

// PopularityInto is Popularity into a reusable buffer (grown to numTypes
// and zeroed before counting).
func (t *Tree) PopularityInto(numTypes int, buf []int) []int {
	pop := xslice.Grow(buf, numTypes)
	for k := range pop {
		pop[k] = 0
	}
	var lbuf [2]int
	for i := range t.Ops {
		for _, k := range t.LeafObjectsBuf(i, &lbuf) {
			pop[k]++
		}
	}
	return pop
}

// BottomUp returns the operator indices in a bottom-up topological order:
// every operator appears after all of its operator children.
func (t *Tree) BottomUp() []int {
	// Iterative post-order on an explicit stack: exactly two fixed-size
	// allocations per call instead of a recursive closure.
	order, _ := t.BottomUpInto(make([]int, 0, len(t.Ops)), make([]int, 0, len(t.Ops)))
	return order
}

// BottomUpInto is BottomUp into reusable buffers: out receives the
// post-order and stack backs the traversal (both grown as needed and
// returned for the caller to reuse).
func (t *Tree) BottomUpInto(out, stack []int) (order, stackOut []int) {
	out, stack = out[:0], stack[:0]
	stack = append(stack, t.Root)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		if i >= 0 {
			// First visit: revisit marker, then children (reversed so the
			// leftmost child pops — and therefore emits — first).
			stack[len(stack)-1] = ^i
			cs := t.Ops[i].ChildOps
			for c := len(cs) - 1; c >= 0; c-- {
				stack = append(stack, cs[c])
			}
			continue
		}
		stack = stack[:len(stack)-1]
		out = append(out, ^i)
	}
	return out, stack
}

// TopDown returns operator indices with every operator before its children.
func (t *Tree) TopDown() []int {
	bu := t.BottomUp()
	for l, r := 0, len(bu)-1; l < r; l, r = l+1, r-1 {
		bu[l], bu[r] = bu[r], bu[l]
	}
	return bu
}

// Depth returns the number of edges on the longest root-to-operator path.
func (t *Tree) Depth() int {
	var depth func(i int) int
	depth = func(i int) int {
		d := 0
		for _, c := range t.Ops[i].ChildOps {
			if dc := depth(c) + 1; dc > d {
				d = dc
			}
		}
		return d
	}
	if len(t.Ops) == 0 {
		return 0
	}
	return depth(t.Root)
}

// Edge is a parent-child pair of operators; it carries the intermediate
// result of the child up to the parent.
type Edge struct {
	Parent, Child int
}

// Edges lists all operator-operator tree edges, sorted by (Parent, Child).
func (t *Tree) Edges() []Edge {
	return t.EdgesInto(nil)
}

// EdgesInto is Edges into a reusable buffer. The (Parent, Child) order is
// total, so any correct sort yields the one canonical edge list.
func (t *Tree) EdgesInto(buf []Edge) []Edge {
	out := buf[:0]
	for i, op := range t.Ops {
		for _, c := range op.ChildOps {
			out = append(out, Edge{Parent: i, Child: c})
		}
	}
	slices.SortFunc(out, func(a, b Edge) int {
		if a.Parent != b.Parent {
			return a.Parent - b.Parent
		}
		return a.Child - b.Child
	})
	return out
}

// Validate checks the structural invariants of the paper's model and
// returns a descriptive error on the first violation:
//
//   - exactly one root with Parent == NoParent, reachable from Root,
//   - parent/child links are mutually consistent,
//   - every operator has 1..2 children total and |Leaf(i)|+|Ch(i)| <= 2,
//   - every leaf has a valid owning operator,
//   - the structure is a tree (no cycles, all operators reachable).
func (t *Tree) Validate() error {
	n := len(t.Ops)
	if n == 0 {
		return fmt.Errorf("apptree: empty tree")
	}
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("apptree: root index %d out of range", t.Root)
	}
	if t.Ops[t.Root].Parent != NoParent {
		return fmt.Errorf("apptree: root %d has parent %d", t.Root, t.Ops[t.Root].Parent)
	}
	for i, op := range t.Ops {
		total := len(op.ChildOps) + len(op.Leaves)
		if total < 1 || total > 2 {
			return fmt.Errorf("apptree: operator %d has %d children, want 1..2", i, total)
		}
		if i != t.Root {
			p := op.Parent
			if p < 0 || p >= n {
				return fmt.Errorf("apptree: operator %d has invalid parent %d", i, p)
			}
			found := false
			for _, c := range t.Ops[p].ChildOps {
				if c == i {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("apptree: operator %d not listed as child of its parent %d", i, p)
			}
		} else if op.Parent != NoParent {
			return fmt.Errorf("apptree: root %d must have NoParent", i)
		}
		for _, c := range op.ChildOps {
			if c < 0 || c >= n {
				return fmt.Errorf("apptree: operator %d has invalid child %d", i, c)
			}
			if t.Ops[c].Parent != i {
				return fmt.Errorf("apptree: child %d of %d has parent %d", c, i, t.Ops[c].Parent)
			}
		}
		for _, li := range op.Leaves {
			if li < 0 || li >= len(t.Leaves) {
				return fmt.Errorf("apptree: operator %d has invalid leaf index %d", i, li)
			}
			if t.Leaves[li].Parent != i {
				return fmt.Errorf("apptree: leaf %d of operator %d has parent %d", li, i, t.Leaves[li].Parent)
			}
		}
	}
	for li, l := range t.Leaves {
		if l.Parent < 0 || l.Parent >= n {
			return fmt.Errorf("apptree: leaf %d has invalid parent %d", li, l.Parent)
		}
		found := false
		for _, x := range t.Ops[l.Parent].Leaves {
			if x == li {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("apptree: leaf %d not listed by its parent %d", li, l.Parent)
		}
		if l.Object < 0 {
			return fmt.Errorf("apptree: leaf %d has negative object type", li)
		}
	}
	// Reachability doubles as a cycle check: in a consistent parent/child
	// structure, a cycle would make some operator unreachable from Root.
	seen := make([]bool, n)
	var visit func(i int) error
	visit = func(i int) error {
		if seen[i] {
			return fmt.Errorf("apptree: operator %d visited twice (cycle)", i)
		}
		seen[i] = true
		for _, c := range t.Ops[i].ChildOps {
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(t.Root); err != nil {
		return err
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("apptree: operator %d unreachable from root", i)
		}
	}
	return nil
}

// Random generates a uniformly-shaped random full binary tree with exactly
// numOps operators (hence numOps+1 leaves), each leaf referencing a basic
// object type drawn uniformly from [0, numTypes). numOps must be >= 1 and
// numTypes >= 1. This follows the paper's simulation methodology:
// "randomly generated binary operator trees ... all leaves correspond to
// basic objects, and each basic object is chosen randomly among 15
// different types".
//
// Operators are indexed in construction pre-order, so every operator's
// index is smaller than its children's — the invariant DeriveInto's fast
// path relies on (see TestRandomPreorderIndices).
func Random(r *rand.Rand, numOps, numTypes int) *Tree {
	// The one-shot builder is discarded, making the returned tree the sole
	// owner of its storage.
	return new(Builder).Random(r, numOps, numTypes)
}

// Builder builds Random trees on reusable storage: the operator and leaf
// tables are grow-only, and every operator's ChildOps/Leaves slice is
// carved out of two shared arenas (a binary-tree operator has at most two
// children total), so steady-state tree generation does not allocate.
// The returned *Tree aliases the builder's storage and is valid only
// until the next Random call; instance.Generator owns one Builder per
// sweep worker.
type Builder struct {
	tree                  Tree
	childArena, leafArena []int
}

// Random is apptree.Random on the builder's reusable storage. It consumes
// exactly the same stream from r, so shapes are byte-identical to the
// package-level function's.
func (b *Builder) Random(r *rand.Rand, numOps, numTypes int) *Tree {
	if numOps < 1 {
		panic("apptree: Random needs numOps >= 1")
	}
	if numTypes < 1 {
		panic("apptree: Random needs numTypes >= 1")
	}
	if cap(b.tree.Ops) < numOps {
		b.tree.Ops = make([]Operator, 0, numOps)
	} else {
		b.tree.Ops = b.tree.Ops[:0]
	}
	if cap(b.tree.Leaves) < numOps+1 {
		b.tree.Leaves = make([]Leaf, 0, numOps+1)
	} else {
		b.tree.Leaves = b.tree.Leaves[:0]
	}
	if cap(b.childArena) < 2*numOps {
		b.childArena = make([]int, 2*numOps)
		b.leafArena = make([]int, 2*numOps)
	}
	b.tree.Root = b.build(r, numTypes, numOps, NoParent)
	return &b.tree
}

// build creates a subtree containing n operators and returns its root
// operator index; a zero-operator side becomes a basic-object leaf.
func (b *Builder) build(r *rand.Rand, numTypes, n, parent int) int {
	t := &b.tree
	id := len(t.Ops)
	t.Ops = append(t.Ops, Operator{
		Parent:   parent,
		ChildOps: b.childArena[2*id : 2*id : 2*id+2],
		Leaves:   b.leafArena[2*id : 2*id : 2*id+2],
	})
	nl := r.Intn(n) // operators in the left subtree: 0..n-1
	nr := n - 1 - nl
	for _, sub := range [2]int{nl, nr} {
		if sub == 0 {
			li := len(t.Leaves)
			t.Leaves = append(t.Leaves, Leaf{Object: r.Intn(numTypes), Parent: id})
			t.Ops[id].Leaves = append(t.Ops[id].Leaves, li)
		} else {
			c := b.build(r, numTypes, sub, id)
			t.Ops[id].ChildOps = append(t.Ops[id].ChildOps, c)
		}
	}
	return id
}

// LeftDeep builds the paper's Figure 1(b) shape: a left-deep tree whose
// i-th operator (from the bottom) combines the running intermediate result
// with one basic object. objects lists the object type of each operator's
// leaf from the bottom up; the bottom-most operator gets two leaves
// (objects[0] and objects[1]), so len(objects) must be >= 2 and the tree
// has len(objects)-1 operators.
func LeftDeep(objects []int) *Tree {
	if len(objects) < 2 {
		panic("apptree: LeftDeep needs at least two objects")
	}
	t := &Tree{}
	numOps := len(objects) - 1
	// Operator numOps-1 is the bottom, operator 0 the root, matching the
	// figure where n1 is at the bottom; we instead index root last for
	// construction simplicity and fix parents as we go.
	prev := -1
	for i := 0; i < numOps; i++ {
		id := len(t.Ops)
		t.Ops = append(t.Ops, Operator{Parent: NoParent})
		if i == 0 {
			for j := 0; j < 2; j++ {
				li := len(t.Leaves)
				t.Leaves = append(t.Leaves, Leaf{Object: objects[j], Parent: id})
				t.Ops[id].Leaves = append(t.Ops[id].Leaves, li)
			}
		} else {
			t.Ops[id].ChildOps = append(t.Ops[id].ChildOps, prev)
			t.Ops[prev].Parent = id
			li := len(t.Leaves)
			t.Leaves = append(t.Leaves, Leaf{Object: objects[i+1], Parent: id})
			t.Ops[id].Leaves = append(t.Ops[id].Leaves, li)
		}
		prev = id
	}
	t.Root = prev
	return t
}

// DOT renders the tree in Graphviz dot format (operators as boxes, basic
// objects as ellipses labelled o<k+1> like the paper's Figure 1).
func (t *Tree) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=BT;\n", name)
	for i := range t.Ops {
		fmt.Fprintf(&b, "  n%d [shape=box,label=\"n%d\"];\n", i, i+1)
	}
	for li, l := range t.Leaves {
		fmt.Fprintf(&b, "  o%d [shape=ellipse,label=\"o%d\"];\n", li, l.Object+1)
	}
	for i, op := range t.Ops {
		for _, c := range op.ChildOps {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", c, i)
		}
		for _, li := range op.Leaves {
			fmt.Fprintf(&b, "  o%d -> n%d;\n", li, i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Derive computes, bottom-up, the per-operator output sizes delta_i and
// work amounts w_i given the basic-object sizes (MB, indexed by object
// type) and the computation exponent alpha:
//
//	delta_i = delta_left + delta_right
//	w_i     = (delta_left + delta_right)^alpha
//
// where each child contribution is the object size for a leaf child and
// delta_child for an operator child. This is exactly the paper's
// simulation methodology (Section 5).
func (t *Tree) Derive(sizes []float64, alpha float64) (w, delta []float64) {
	w = make([]float64, len(t.Ops))
	delta = make([]float64, len(t.Ops))
	for _, i := range t.BottomUp() {
		t.deriveOp(i, sizes, alpha, w, delta)
	}
	return w, delta
}

// deriveOp computes delta_i and w_i assuming the children are done. The
// summation order (operator children, then leaves) is shared by Derive
// and DeriveInto so both produce bit-identical values.
func (t *Tree) deriveOp(i int, sizes []float64, alpha float64, w, delta []float64) {
	sum := 0.0
	for _, c := range t.Ops[i].ChildOps {
		sum += delta[c]
	}
	for _, li := range t.Ops[i].Leaves {
		sum += sizes[t.Leaves[li].Object]
	}
	delta[i] = sum
	w[i] = math.Pow(sum, alpha)
}

// DeriveInto is Derive reusing caller-provided buffers (grown as needed).
// Trees indexed in pre-order — every operator before its children, as
// Random and Builder.Random guarantee — are derived in one reverse pass
// with zero allocations; arbitrary trees fall back to the allocating
// bottom-up traversal.
func (t *Tree) DeriveInto(sizes []float64, alpha float64, w, delta []float64) ([]float64, []float64) {
	n := len(t.Ops)
	w, delta = xslice.Grow(w, n), xslice.Grow(delta, n)
	for i := range t.Ops {
		for _, c := range t.Ops[i].ChildOps {
			if c < i {
				ww, dd := t.Derive(sizes, alpha)
				copy(w, ww)
				copy(delta, dd)
				return w, delta
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		t.deriveOp(i, sizes, alpha, w, delta)
	}
	return w, delta
}
