// Package bounds computes provable lower bounds on the platform cost of
// an instance, used to assess the absolute performance of the heuristics
// (the role CPLEX's optimal solutions play in the paper's last
// experiment).
//
// All bounds are sound: no feasible mapping can cost less. They are not
// tight in general — tightness comes from the exact/ILP solvers on small
// instances.
package bounds

import (
	"math"

	"repro/internal/instance"
	"repro/internal/platform"
)

// TotalWork returns rho times the summed work of all operators, in
// work-units/s: the aggregate compute rate any platform must provide.
func TotalWork(in *instance.Instance) float64 {
	total := 0.0
	for _, w := range in.W {
		total += in.Rho * w
	}
	return total
}

// TotalDownload returns the summed download rate of every object type the
// tree uses, in MB/s. Every used type must be downloaded by at least one
// processor, so the platform's aggregate NIC bandwidth must cover it.
func TotalDownload(in *instance.Instance) float64 {
	total := 0.0
	for _, k := range in.Tree.ObjectSet() {
		total += in.Rate(k)
	}
	return total
}

// MinProcessors returns a lower bound on the number of processors any
// feasible mapping purchases: enough aggregate CPU for the total work and
// enough aggregate NIC for the mandatory downloads, given that a single
// processor provides at most the catalog's best CPU and widest NIC.
func MinProcessors(in *instance.Instance) int {
	cat := in.Platform.Catalog
	best := cat.MostExpensive()
	n := 1
	if c := int(math.Ceil(TotalWork(in)/cat.SpeedUnits(best) - 1e-9)); c > n {
		n = c
	}
	if c := int(math.Ceil(TotalDownload(in)/cat.BandwidthMBps(best) - 1e-9)); c > n {
		n = c
	}
	return n
}

// CostLowerBound returns a lower bound on the total platform cost in
// dollars. It combines three sound ingredients:
//
//   - every processor costs at least the cheapest configuration,
//   - aggregate CPU capacity must reach TotalWork; capacity beyond the
//     base CPU included with each chassis costs at least the catalog's
//     best marginal $/unit (the minimum slope from the base option, which
//     under-estimates every real option by construction),
//   - symmetrically for NIC capacity versus TotalDownload.
func CostLowerBound(in *instance.Instance) float64 {
	cat := in.Platform.Catalog
	n := float64(MinProcessors(in))
	cheapest := cat.Cost(platform.Config{})
	cost := n * cheapest

	// Marginal cost of CPU capacity beyond n base CPUs.
	baseSpeed := cat.SpeedUnits(platform.Config{})
	if extra := TotalWork(in) - n*baseSpeed; extra > 0 {
		cost += extra * minSlopeCPU(cat)
	}
	baseNIC := cat.BandwidthMBps(platform.Config{})
	if extra := TotalDownload(in) - n*baseNIC; extra > 0 {
		cost += extra * minSlopeNIC(cat)
	}
	return cost
}

// minSlopeCPU returns the smallest upcharge per extra work-unit/s over the
// base CPU option; every catalog option lies on or above the line from the
// base option with this slope, so charging it under-estimates all choices.
func minSlopeCPU(cat *platform.Catalog) float64 {
	base := cat.CPUs[0]
	slope := math.Inf(1)
	for _, o := range cat.CPUs[1:] {
		extra := (o.SpeedGHz - base.SpeedGHz) * platform.WorkUnitsPerGHz
		if extra > 0 {
			if s := (o.Upcharge - base.Upcharge) / extra; s < slope {
				slope = s
			}
		}
	}
	if math.IsInf(slope, 1) {
		return 0 // single option: no purchasable extra capacity to price
	}
	return slope
}

// minSlopeNIC is minSlopeCPU for network cards, in $ per extra MB/s.
func minSlopeNIC(cat *platform.Catalog) float64 {
	base := cat.NICs[0]
	slope := math.Inf(1)
	for _, o := range cat.NICs[1:] {
		extra := o.MBps() - base.MBps()
		if extra > 0 {
			if s := (o.Upcharge - base.Upcharge) / extra; s < slope {
				slope = s
			}
		}
	}
	if math.IsInf(slope, 1) {
		return 0
	}
	return slope
}
