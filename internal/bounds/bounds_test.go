package bounds

import (
	"math"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/platform"
)

func TestTotals(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.1}, 1)
	w := TotalWork(in)
	manual := 0.0
	for _, wi := range in.W {
		manual += wi * in.Rho
	}
	if math.Abs(w-manual) > 1e-9 {
		t.Fatalf("TotalWork = %v, want %v", w, manual)
	}
	dl := TotalDownload(in)
	if dl <= 0 {
		t.Fatalf("TotalDownload = %v", dl)
	}
	manual = 0.0
	for _, k := range in.Tree.ObjectSet() {
		manual += in.Rate(k)
	}
	if math.Abs(dl-manual) > 1e-9 {
		t.Fatalf("TotalDownload = %v, want %v", dl, manual)
	}
}

func TestMinProcessorsAtLeastOne(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 1, Alpha: 0.5}, 1)
	if got := MinProcessors(in); got != 1 {
		t.Fatalf("MinProcessors = %d, want 1", got)
	}
}

func TestMinProcessorsComputeDriven(t *testing.T) {
	// High rho multiplies the work: force the compute bound to bind.
	in := instance.Generate(instance.Config{NumOps: 40, Alpha: 1.2, Rho: 50}, 2)
	cat := in.Platform.Catalog
	best := cat.MostExpensive()
	want := int(math.Ceil(TotalWork(in) / cat.SpeedUnits(best)))
	if want < 2 {
		t.Skip("instance too small to exercise the compute bound")
	}
	if got := MinProcessors(in); got != want {
		t.Fatalf("MinProcessors = %d, want %d", got, want)
	}
}

func TestCostLowerBoundIsSound(t *testing.T) {
	// Soundness: the bound never exceeds the cost of any heuristic
	// solution (which is feasible by construction).
	for seed := int64(0); seed < 10; seed++ {
		in := instance.Generate(instance.Config{NumOps: 30, Alpha: 1.2}, seed)
		lb := CostLowerBound(in)
		if lb <= 0 {
			t.Fatalf("seed %d: non-positive lower bound %v", seed, lb)
		}
		for _, h := range heuristics.All() {
			res, err := heuristics.Solve(in, h, heuristics.Options{Seed: seed})
			if err != nil {
				continue
			}
			if lb > res.Cost+1e-6 {
				t.Fatalf("seed %d: lower bound %v exceeds %s cost %v", seed, lb, h.Name(), res.Cost)
			}
		}
	}
}

func TestCostLowerBoundAtLeastOneChassis(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 5, Alpha: 0.5}, 3)
	if lb := CostLowerBound(in); lb < platform.BaseChassisCost {
		t.Fatalf("lower bound %v below one base chassis", lb)
	}
}

func TestCostLowerBoundGrowsWithRho(t *testing.T) {
	a := instance.Generate(instance.Config{NumOps: 40, Alpha: 1.3, Rho: 1}, 4)
	b := instance.Generate(instance.Config{NumOps: 40, Alpha: 1.3, Rho: 40}, 4)
	if CostLowerBound(b) < CostLowerBound(a) {
		t.Fatal("lower bound decreased when rho grew")
	}
}

func TestHomogeneousCatalogBound(t *testing.T) {
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(2, 2)
	in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.0, Platform: p}, 5)
	lb := CostLowerBound(in)
	unit := p.Catalog.Cost(platform.Config{})
	if lb < unit {
		t.Fatalf("bound %v below one unit cost %v", lb, unit)
	}
	// With a single option the marginal slopes are zero; the bound must be
	// an integer multiple of the unit cost.
	ratio := lb / unit
	if math.Abs(ratio-math.Round(ratio)) > 1e-9 {
		t.Fatalf("homogeneous bound %v not a multiple of unit cost %v", lb, unit)
	}
}
