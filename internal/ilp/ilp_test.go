package ilp

import (
	"errors"
	"testing"

	"repro/internal/exact"
	"repro/internal/instance"
	"repro/internal/platform"
)

func tinyPlatform(cpu, nic int) *platform.Platform {
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(cpu, nic)
	// Fewer servers keep the d_ukl block small.
	p.Servers = p.Servers[:3]
	return p
}

func tinyInstance(seed int64, alpha float64, cpu int) *instance.Instance {
	return instance.Generate(instance.Config{
		NumOps:   6,
		NumTypes: 5,
		Alpha:    alpha,
		Platform: tinyPlatform(cpu, 4),
	}, seed)
}

func TestRejectsHeterogeneous(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 4}, 1)
	if _, err := Build(in, 2); !errors.Is(err, ErrHeterogeneous) {
		t.Fatalf("want ErrHeterogeneous, got %v", err)
	}
}

func TestTooLargeMirrorsPaper(t *testing.T) {
	// The paper could not even load its 30-operator ILP into CPLEX; we
	// surface the same wall as an explicit error.
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(4, 4)
	in := instance.Generate(instance.Config{NumOps: 60, Platform: p}, 1)
	if _, err := Build(in, 60); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestRelaxationIsLowerBound(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		in := tinyInstance(seed, 1.0, 4)
		m, err := Build(in, 3)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := m.RelaxationLB()
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Solve(in, exact.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if lb > opt.Cost+1e-6 {
			t.Fatalf("seed %d: relaxation LB %v exceeds exact optimum %v", seed, lb, opt.Cost)
		}
		if lb < in.Platform.Catalog.Cost(platform.Config{}) {
			t.Fatalf("seed %d: LB %v below one processor", seed, lb)
		}
	}
}

func TestBranchAndBoundMatchesExactSingleProc(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		in := tinyInstance(seed, 1.0, 4)
		m, err := Build(in, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Solve(Limits{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt, err := exact.Solve(in, exact.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		// The ILP omits communication terms, so its optimum can only be
		// at or below the exact combinatorial optimum.
		if res.Proven && res.Procs > opt.Procs {
			t.Fatalf("seed %d: ILP procs %d above exact %d", seed, res.Procs, opt.Procs)
		}
		if res.Procs < 1 {
			t.Fatalf("seed %d: ILP procs %d", seed, res.Procs)
		}
	}
}

func TestMultiProcILP(t *testing.T) {
	// Slow CPU at high alpha: the ILP must report >= 2 processors.
	in := instance.Generate(instance.Config{
		NumOps:   6,
		NumTypes: 5,
		Alpha:    2.0,
		Platform: tinyPlatform(0, 4),
	}, 4)
	m, err := Build(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(Limits{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, w := range in.W {
		total += in.Rho * w
	}
	speed := in.Platform.Catalog.SpeedUnits(platform.Config{})
	if total > speed && res.Procs < 2 {
		t.Fatalf("work %v exceeds one processor (%v) but ILP says %d procs", total, speed, res.Procs)
	}
}

func TestModelShape(t *testing.T) {
	in := tinyInstance(0, 1.0, 4)
	m, err := Build(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVars != len(m.Prob.C) {
		t.Fatalf("NumVars %d != len(C) %d", m.NumVars, len(m.Prob.C))
	}
	if m.NumRows != len(m.Prob.A) {
		t.Fatalf("NumRows %d != len(A) %d", m.NumRows, len(m.Prob.A))
	}
	// x and z variables exist for every (op, proc) pair.
	wantMin := in.Tree.NumOps()*2 + 2
	if m.NumVars < wantMin {
		t.Fatalf("only %d variables, want >= %d", m.NumVars, wantMin)
	}
}
