// Package ilp builds the paper's integer-linear-programming formulation of
// the homogeneous operator-placement problem and solves it by
// branch-and-bound over the LP relaxation (package lp plays CPLEX).
//
// Faithful to the paper's Section 3, the formulation covers the assignment
// (x_iu), processor-usage (z_u) and download (d_ukl) variables with the
// compute, download-cover, processor-NIC, server-NIC and server-link
// constraints. Like the paper, which could not even load the full model
// for 30-operator trees into CPLEX, the model size explodes quickly;
// Build returns ErrTooLarge beyond a variable budget, and the
// inter-processor communication terms are omitted from the NIC constraint
// (a relaxation), so the ILP optimum is a certified lower bound on the
// true optimal cost. On the small instances the paper evaluates, the
// optimum co-locates whole subtrees and the bound is typically exact.
package ilp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/instance"
	"repro/internal/lp"
	"repro/internal/platform"
)

// ErrHeterogeneous is returned for non-CONSTR-HOM catalogs.
var ErrHeterogeneous = errors.New("ilp: catalog is not homogeneous (CONSTR-HOM required)")

// ErrTooLarge is returned when the formulation exceeds MaxVariables —
// the same wall the paper hit with CPLEX.
var ErrTooLarge = errors.New("ilp: formulation too large")

// ErrBudget is returned when branch-and-bound exhausts its node budget.
var ErrBudget = errors.New("ilp: node budget exhausted")

// MaxVariables bounds the model size Build accepts.
const MaxVariables = 4000

// Model is a built formulation.
type Model struct {
	Prob     *lp.Problem
	NumVars  int
	NumRows  int
	unitCost float64
	// Variable layout.
	numOps   int
	maxProcs int
	xBase    int            // x_iu at xBase + i*maxProcs + u
	zBase    int            // z_u at zBase + u
	dIndex   map[[3]int]int // (u, k, l) -> column of d_ukl
	binaries []int          // all binary columns
}

// Build constructs the formulation with at most maxProcs processors.
func Build(in *instance.Instance, maxProcs int) (*Model, error) {
	if !in.Platform.Catalog.Homogeneous() {
		return nil, ErrHeterogeneous
	}
	if maxProcs < 1 {
		return nil, fmt.Errorf("ilp: maxProcs = %d", maxProcs)
	}
	cat := in.Platform.Catalog
	cfg := platform.Config{}
	speed := cat.SpeedUnits(cfg)
	nicBW := cat.BandwidthMBps(cfg)

	n := in.Tree.NumOps()
	used := in.Tree.ObjectSet()

	m := &Model{
		numOps:   n,
		maxProcs: maxProcs,
		unitCost: cat.Cost(cfg),
		dIndex:   map[[3]int]int{},
	}
	m.xBase = 0
	m.zBase = n * maxProcs
	next := m.zBase + maxProcs
	for u := 0; u < maxProcs; u++ {
		for _, k := range used {
			for _, l := range in.Holders[k] {
				m.dIndex[[3]int{u, k, l}] = next
				next++
			}
		}
	}
	m.NumVars = next
	if m.NumVars > MaxVariables {
		return nil, fmt.Errorf("%w: %d variables (max %d)", ErrTooLarge, m.NumVars, MaxVariables)
	}

	var (
		rows [][]float64
		rhs  []float64
		rel  []lp.Rel
	)
	addRow := func(coef map[int]float64, r lp.Rel, b float64) {
		row := make([]float64, m.NumVars)
		for j, v := range coef {
			row[j] = v
		}
		rows = append(rows, row)
		rhs = append(rhs, b)
		rel = append(rel, r)
	}
	x := func(i, u int) int { return m.xBase + i*maxProcs + u }
	z := func(u int) int { return m.zBase + u }

	// (a) every operator on exactly one processor.
	for i := 0; i < n; i++ {
		coef := map[int]float64{}
		for u := 0; u < maxProcs; u++ {
			coef[x(i, u)] = 1
		}
		addRow(coef, lp.EQ, 1)
	}
	// (b) x_iu <= z_u.
	for i := 0; i < n; i++ {
		for u := 0; u < maxProcs; u++ {
			addRow(map[int]float64{x(i, u): 1, z(u): -1}, lp.LE, 0)
		}
	}
	// (c) compute: sum_i rho w_i x_iu <= s z_u.
	for u := 0; u < maxProcs; u++ {
		coef := map[int]float64{z(u): -speed}
		for i := 0; i < n; i++ {
			coef[x(i, u)] = in.Rho * in.W[i]
		}
		addRow(coef, lp.LE, 0)
	}
	// (d) download cover: operator i on u with leaf object k implies a
	// download of k on u from some holder.
	for i := 0; i < n; i++ {
		for _, k := range in.Tree.LeafObjects(i) {
			for u := 0; u < maxProcs; u++ {
				coef := map[int]float64{x(i, u): 1}
				for _, l := range in.Holders[k] {
					coef[m.dIndex[[3]int{u, k, l}]] = -1
				}
				addRow(coef, lp.LE, 0)
			}
		}
	}
	// (e) processor NIC (downloads; communication omitted — relaxation).
	for u := 0; u < maxProcs; u++ {
		coef := map[int]float64{z(u): -nicBW}
		for _, k := range used {
			for _, l := range in.Holders[k] {
				coef[m.dIndex[[3]int{u, k, l}]] += in.Rate(k)
			}
		}
		addRow(coef, lp.LE, 0)
	}
	// (f) server NIC.
	for l := range in.Platform.Servers {
		coef := map[int]float64{}
		for u := 0; u < maxProcs; u++ {
			for _, k := range used {
				if j, ok := m.dIndex[[3]int{u, k, l}]; ok {
					coef[j] += in.Rate(k)
				}
			}
		}
		if len(coef) > 0 {
			addRow(coef, lp.LE, in.Platform.Servers[l].NICMBps)
		}
	}
	// (g) server-processor links.
	for u := 0; u < maxProcs; u++ {
		for l := range in.Platform.Servers {
			coef := map[int]float64{}
			for _, k := range used {
				if j, ok := m.dIndex[[3]int{u, k, l}]; ok {
					coef[j] += in.Rate(k)
				}
			}
			if len(coef) > 0 {
				addRow(coef, lp.LE, in.Platform.ServerLinkMBps)
			}
		}
	}
	// (h) symmetry breaking and binary upper bounds.
	for u := 0; u+1 < maxProcs; u++ {
		addRow(map[int]float64{z(u + 1): 1, z(u): -1}, lp.LE, 0)
	}
	for u := 0; u < maxProcs; u++ {
		addRow(map[int]float64{z(u): 1}, lp.LE, 1)
	}
	for _, j := range m.dIndex {
		addRow(map[int]float64{j: 1}, lp.LE, 1)
	}

	c := make([]float64, m.NumVars)
	for u := 0; u < maxProcs; u++ {
		c[z(u)] = 1
	}
	m.Prob = &lp.Problem{C: c, A: rows, B: rhs, Rel: rel}
	m.NumRows = len(rows)

	for i := 0; i < n; i++ {
		for u := 0; u < maxProcs; u++ {
			m.binaries = append(m.binaries, x(i, u))
		}
	}
	for u := 0; u < maxProcs; u++ {
		m.binaries = append(m.binaries, z(u))
	}
	for _, j := range m.dIndex {
		m.binaries = append(m.binaries, j)
	}
	return m, nil
}

// RelaxationLB solves the LP relaxation and returns a lower bound on the
// optimal platform cost in dollars (unit cost times the fractional
// processor count, rounded up to the next integer processor).
func (m *Model) RelaxationLB() (float64, error) {
	sol, err := lp.Solve(m.Prob)
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("ilp: relaxation %v", sol.Status)
	}
	procs := math.Ceil(sol.Objective - 1e-6)
	if procs < 1 {
		procs = 1
	}
	return procs * m.unitCost, nil
}

// Limits bounds the branch-and-bound search.
type Limits struct {
	MaxNodes int // 0 means DefaultMaxNodes
}

// DefaultMaxNodes caps branch-and-bound.
const DefaultMaxNodes = 20000

// Result of an ILP solve.
type Result struct {
	Procs  int
	Cost   float64
	Nodes  int
	Proven bool
}

// branchBound is one stacked subproblem: variable bounds fixed so far.
type fixing struct {
	col int
	val float64 // 0 or 1
}

// Solve runs depth-first branch-and-bound on the model's binaries.
func (m *Model) Solve(lim Limits) (*Result, error) {
	maxNodes := lim.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	bestObj := math.Inf(1)
	nodes := 0
	budgetHit := false

	var rec func(fixings []fixing)
	rec = func(fixings []fixing) {
		if budgetHit {
			return
		}
		nodes++
		if nodes > maxNodes {
			budgetHit = true
			return
		}
		prob := m.withFixings(fixings)
		sol, err := lp.Solve(prob)
		if err != nil || sol.Status != lp.Optimal {
			return
		}
		if sol.Objective >= bestObj-1e-6 {
			return
		}
		// Most fractional binary.
		branch := -1
		bestFrac := 1e-6
		for _, j := range m.binaries {
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > bestFrac {
				bestFrac = f
				branch = j
			}
		}
		if branch == -1 {
			if sol.Objective < bestObj {
				bestObj = sol.Objective
			}
			return
		}
		// Explore the rounded-up side first: using a processor tends to be
		// necessary, and finding integer solutions early tightens pruning.
		rec(append(fixings, fixing{branch, 1}))
		rec(append(fixings, fixing{branch, 0}))
	}
	rec(nil)

	if math.IsInf(bestObj, 1) {
		if budgetHit {
			return nil, ErrBudget
		}
		return nil, errors.New("ilp: infeasible")
	}
	procs := int(math.Round(bestObj))
	return &Result{
		Procs:  procs,
		Cost:   float64(procs) * m.unitCost,
		Nodes:  nodes,
		Proven: !budgetHit,
	}, nil
}

// withFixings returns a copy of the base problem with rows pinning the
// fixed variables.
func (m *Model) withFixings(fixings []fixing) *lp.Problem {
	a := append([][]float64(nil), m.Prob.A...)
	b := append([]float64(nil), m.Prob.B...)
	rel := append([]lp.Rel(nil), m.Prob.Rel...)
	for _, f := range fixings {
		row := make([]float64, m.NumVars)
		row[f.col] = 1
		a = append(a, row)
		b = append(b, f.val)
		rel = append(rel, lp.EQ)
	}
	return &lp.Problem{C: m.Prob.C, A: a, B: b, Rel: rel}
}
