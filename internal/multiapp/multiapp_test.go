package multiapp

import (
	"testing"

	"repro/internal/apptree"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/rng"
)

func workload(seed int64) Workload {
	base := instance.Generate(instance.Config{NumOps: 5}, seed)
	return Workload{
		NumTypes: base.NumTypes,
		Sizes:    base.Sizes,
		Freqs:    base.Freqs,
		Holders:  base.Holders,
		Platform: base.Platform,
		Alpha:    1.0,
	}
}

func TestCombineStructure(t *testing.T) {
	w := workload(1)
	a := apptree.Random(rng.New(1), 6, w.NumTypes)
	b := apptree.Random(rng.New(2), 4, w.NumTypes)
	c := apptree.Random(rng.New(3), 3, w.NumTypes)
	in, err := Combine([]App{{a, 1}, {b, 2}, {c, 0.5}}, w)
	if err != nil {
		t.Fatal(err)
	}
	// 6+4+3 real operators + 2 virtual combiners.
	if in.Tree.NumOps() != 15 {
		t.Fatalf("merged tree has %d ops, want 15", in.Tree.NumOps())
	}
	if in.Tree.NumLeaves() != 7+5+4 {
		t.Fatalf("merged tree has %d leaves", in.Tree.NumLeaves())
	}
	// Virtual combiners carry no work and no traffic.
	for _, v := range []int{13, 14} {
		if in.W[v] != 0 || in.Delta[v] != 0 {
			t.Fatalf("virtual op %d has w=%v delta=%v", v, in.W[v], in.Delta[v])
		}
	}
}

func TestRhoScaling(t *testing.T) {
	w := workload(2)
	a := apptree.Random(rng.New(4), 5, w.NumTypes)
	in1, err := Combine([]App{{a, 1}}, w)
	if err != nil {
		t.Fatal(err)
	}
	in3, err := Combine([]App{{a, 3}}, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if in3.W[i] != 3*in1.W[i] {
			t.Fatalf("op %d: W not scaled by rho (got %v, want %v)", i, in3.W[i], 3*in1.W[i])
		}
		if in3.Delta[i] != 3*in1.Delta[i] {
			t.Fatalf("op %d: Delta not scaled by rho", i)
		}
	}
}

func TestCombinedSolveIsFeasibleAndShared(t *testing.T) {
	w := workload(3)
	a := apptree.Random(rng.New(5), 8, w.NumTypes)
	b := apptree.Random(rng.New(6), 8, w.NumTypes)

	solve := func(in *instance.Instance) float64 {
		res, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Mapping.Validate(); err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}

	combined, err := Combine([]App{{a, 1}, {b, 1}}, w)
	if err != nil {
		t.Fatal(err)
	}
	costShared := solve(combined)

	costA := solve(mustCombine(t, []App{{a, 1}}, w))
	costB := solve(mustCombine(t, []App{{b, 1}}, w))

	// Sharing one platform can never be modelled as costing more than the
	// heuristic's independent platforms here, because both workloads fit a
	// single processor.
	if costShared > costA+costB {
		t.Fatalf("shared platform $%v costs more than independent $%v+$%v", costShared, costA, costB)
	}
	if costShared >= costA+costB {
		t.Fatalf("no sharing benefit: %v vs %v", costShared, costA+costB)
	}
}

func mustCombine(t *testing.T, apps []App, w Workload) *instance.Instance {
	t.Helper()
	in, err := Combine(apps, w)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCombineErrors(t *testing.T) {
	w := workload(4)
	if _, err := Combine(nil, w); err == nil {
		t.Fatal("empty app list accepted")
	}
	a := apptree.Random(rng.New(1), 3, w.NumTypes)
	if _, err := Combine([]App{{a, 0}}, w); err == nil {
		t.Fatal("rho=0 accepted")
	}
	if _, err := Combine([]App{{nil, 1}}, w); err == nil {
		t.Fatal("nil tree accepted")
	}
}

func TestHighTargetsForceBiggerPlatform(t *testing.T) {
	w := workload(5)
	a := apptree.Random(rng.New(7), 10, w.NumTypes)
	cheap := mustCombine(t, []App{{a, 1}}, w)
	dear := mustCombine(t, []App{{a, 40}}, w)
	solve := func(in *instance.Instance) float64 {
		res, err := heuristics.Solve(in, heuristics.CompGreedy{}, heuristics.Options{})
		if err != nil {
			t.Skip("high-rho variant infeasible for this seed")
		}
		return res.Cost
	}
	if solve(dear) < solve(cheap) {
		t.Fatal("40x throughput target did not increase cost")
	}
}

// equalInstances asserts two combined instances agree field-for-field:
// identical merged tree shape and bit-identical scaled W/Delta.
func equalInstances(t *testing.T, got, want *instance.Instance) {
	t.Helper()
	if got.Tree.NumOps() != want.Tree.NumOps() || got.Tree.Root != want.Tree.Root {
		t.Fatalf("tree shape: %d ops root %d, want %d ops root %d",
			got.Tree.NumOps(), got.Tree.Root, want.Tree.NumOps(), want.Tree.Root)
	}
	for i := range want.Tree.Ops {
		g, w := &got.Tree.Ops[i], &want.Tree.Ops[i]
		if g.Parent != w.Parent || len(g.ChildOps) != len(w.ChildOps) || len(g.Leaves) != len(w.Leaves) {
			t.Fatalf("op %d: %+v, want %+v", i, g, w)
		}
		for j := range w.ChildOps {
			if g.ChildOps[j] != w.ChildOps[j] {
				t.Fatalf("op %d child %d: %d, want %d", i, j, g.ChildOps[j], w.ChildOps[j])
			}
		}
		for j := range w.Leaves {
			if g.Leaves[j] != w.Leaves[j] {
				t.Fatalf("op %d leaf %d: %d, want %d", i, j, g.Leaves[j], w.Leaves[j])
			}
		}
	}
	for li := range want.Tree.Leaves {
		if got.Tree.Leaves[li] != want.Tree.Leaves[li] {
			t.Fatalf("leaf %d: %+v, want %+v", li, got.Tree.Leaves[li], want.Tree.Leaves[li])
		}
	}
	for i := range want.W {
		if got.W[i] != want.W[i] || got.Delta[i] != want.Delta[i] {
			t.Fatalf("derived %d: w=%v delta=%v, want w=%v delta=%v",
				i, got.W[i], got.Delta[i], want.W[i], want.Delta[i])
		}
	}
	if got.Rho != want.Rho || got.Alpha != want.Alpha || got.NumTypes != want.NumTypes {
		t.Fatalf("scalars: %+v, want %+v", got, want)
	}
}

// TestBuilderMatchesOneShot: Builder.Combine reproduces one-shot
// Combine exactly, across repeated reuse of the same builder with
// varying tenant counts and shapes (shrinking and growing between
// calls exercises the arena reset paths).
func TestBuilderMatchesOneShot(t *testing.T) {
	w := workload(7)
	var b Builder
	cases := [][]App{
		{{apptree.Random(rng.New(1), 6, w.NumTypes), 1}, {apptree.Random(rng.New(2), 4, w.NumTypes), 2}},
		{{apptree.Random(rng.New(3), 12, w.NumTypes), 0.5}},
		{{apptree.Random(rng.New(4), 3, w.NumTypes), 1},
			{apptree.Random(rng.New(5), 8, w.NumTypes), 3},
			{apptree.Random(rng.New(6), 5, w.NumTypes), 0.25}},
		{{apptree.LeftDeep([]int{0, 1, 2, 3}), 2}, {apptree.Random(rng.New(8), 7, w.NumTypes), 1}},
	}
	for ci, apps := range cases {
		want, err := Combine(apps, w)
		if err != nil {
			t.Fatalf("case %d one-shot: %v", ci, err)
		}
		got, err := b.Combine(apps, w)
		if err != nil {
			t.Fatalf("case %d builder: %v", ci, err)
		}
		// The builder's output must satisfy the full validation the
		// one-shot path runs, even though it skips it for speed.
		if err := got.Validate(); err != nil {
			t.Fatalf("case %d builder instance invalid: %v", ci, err)
		}
		equalInstances(t, got, want)
	}
}

// TestBuilderErrors: the cheap checks reject the same degenerate
// inputs as the one-shot form.
func TestBuilderErrors(t *testing.T) {
	w := workload(9)
	var b Builder
	if _, err := b.Combine(nil, w); err == nil {
		t.Fatal("no applications accepted")
	}
	if _, err := b.Combine([]App{{nil, 1}}, w); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := b.Combine([]App{{apptree.Random(rng.New(1), 3, w.NumTypes), 0}}, w); err == nil {
		t.Fatal("rho 0 accepted")
	}
}

// TestBuilderSteadyStateAllocs: after warmup, repeated Combine calls
// on stable shapes allocate nothing.
func TestBuilderSteadyStateAllocs(t *testing.T) {
	w := workload(11)
	var b Builder
	trees := []*apptree.Tree{
		apptree.Random(rng.New(21), 8, w.NumTypes),
		apptree.Random(rng.New(22), 10, w.NumTypes),
	}
	apps := []App{{trees[0], 1}, {trees[1], 3}}
	if _, err := b.Combine(apps, w); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := b.Combine(apps, w); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Builder.Combine allocates %v/op, want 0", allocs)
	}
}
