package multiapp

import (
	"testing"

	"repro/internal/apptree"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/rng"
)

func workload(seed int64) Workload {
	base := instance.Generate(instance.Config{NumOps: 5}, seed)
	return Workload{
		NumTypes: base.NumTypes,
		Sizes:    base.Sizes,
		Freqs:    base.Freqs,
		Holders:  base.Holders,
		Platform: base.Platform,
		Alpha:    1.0,
	}
}

func TestCombineStructure(t *testing.T) {
	w := workload(1)
	a := apptree.Random(rng.New(1), 6, w.NumTypes)
	b := apptree.Random(rng.New(2), 4, w.NumTypes)
	c := apptree.Random(rng.New(3), 3, w.NumTypes)
	in, err := Combine([]App{{a, 1}, {b, 2}, {c, 0.5}}, w)
	if err != nil {
		t.Fatal(err)
	}
	// 6+4+3 real operators + 2 virtual combiners.
	if in.Tree.NumOps() != 15 {
		t.Fatalf("merged tree has %d ops, want 15", in.Tree.NumOps())
	}
	if in.Tree.NumLeaves() != 7+5+4 {
		t.Fatalf("merged tree has %d leaves", in.Tree.NumLeaves())
	}
	// Virtual combiners carry no work and no traffic.
	for _, v := range []int{13, 14} {
		if in.W[v] != 0 || in.Delta[v] != 0 {
			t.Fatalf("virtual op %d has w=%v delta=%v", v, in.W[v], in.Delta[v])
		}
	}
}

func TestRhoScaling(t *testing.T) {
	w := workload(2)
	a := apptree.Random(rng.New(4), 5, w.NumTypes)
	in1, err := Combine([]App{{a, 1}}, w)
	if err != nil {
		t.Fatal(err)
	}
	in3, err := Combine([]App{{a, 3}}, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if in3.W[i] != 3*in1.W[i] {
			t.Fatalf("op %d: W not scaled by rho (got %v, want %v)", i, in3.W[i], 3*in1.W[i])
		}
		if in3.Delta[i] != 3*in1.Delta[i] {
			t.Fatalf("op %d: Delta not scaled by rho", i)
		}
	}
}

func TestCombinedSolveIsFeasibleAndShared(t *testing.T) {
	w := workload(3)
	a := apptree.Random(rng.New(5), 8, w.NumTypes)
	b := apptree.Random(rng.New(6), 8, w.NumTypes)

	solve := func(in *instance.Instance) float64 {
		res, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Mapping.Validate(); err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}

	combined, err := Combine([]App{{a, 1}, {b, 1}}, w)
	if err != nil {
		t.Fatal(err)
	}
	costShared := solve(combined)

	costA := solve(mustCombine(t, []App{{a, 1}}, w))
	costB := solve(mustCombine(t, []App{{b, 1}}, w))

	// Sharing one platform can never be modelled as costing more than the
	// heuristic's independent platforms here, because both workloads fit a
	// single processor.
	if costShared > costA+costB {
		t.Fatalf("shared platform $%v costs more than independent $%v+$%v", costShared, costA, costB)
	}
	if costShared >= costA+costB {
		t.Fatalf("no sharing benefit: %v vs %v", costShared, costA+costB)
	}
}

func mustCombine(t *testing.T, apps []App, w Workload) *instance.Instance {
	t.Helper()
	in, err := Combine(apps, w)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCombineErrors(t *testing.T) {
	w := workload(4)
	if _, err := Combine(nil, w); err == nil {
		t.Fatal("empty app list accepted")
	}
	a := apptree.Random(rng.New(1), 3, w.NumTypes)
	if _, err := Combine([]App{{a, 0}}, w); err == nil {
		t.Fatal("rho=0 accepted")
	}
	if _, err := Combine([]App{{nil, 1}}, w); err == nil {
		t.Fatal("nil tree accepted")
	}
}

func TestHighTargetsForceBiggerPlatform(t *testing.T) {
	w := workload(5)
	a := apptree.Random(rng.New(7), 10, w.NumTypes)
	cheap := mustCombine(t, []App{{a, 1}}, w)
	dear := mustCombine(t, []App{{a, 40}}, w)
	solve := func(in *instance.Instance) float64 {
		res, err := heuristics.Solve(in, heuristics.CompGreedy{}, heuristics.Options{})
		if err != nil {
			t.Skip("high-rho variant infeasible for this seed")
		}
		return res.Cost
	}
	if solve(dear) < solve(cheap) {
		t.Fatal("40x throughput target did not increase cost")
	}
}
