// Package multiapp implements the paper's first future-work direction:
// executing multiple applications simultaneously, each with its own
// throughput target, on one shared purchased platform.
//
// The reduction is exact: the steady-state constraints (1)-(5) are linear
// in rho*w_i and rho*delta_i, so an application with target rho_k is
// folded into a global rho=1 problem by pre-scaling its operators' work
// and output sizes by rho_k. The K trees are stitched into one binary
// tree with zero-cost virtual combiner operators (w=0, delta=0), which
// never constrain any processor or link. Sharing pays in two ways: spare
// CPU/NIC capacity is pooled, and co-located operators of different
// applications that need the same basic object download it once — the
// paper's "reuse of common sub-expressions", at download granularity.
package multiapp

import (
	"fmt"

	"repro/internal/apptree"
	"repro/internal/instance"
	"repro/internal/platform"
)

// App is one application: a tree and its own QoS target.
type App struct {
	Tree *apptree.Tree
	Rho  float64
}

// Workload describes the shared environment of all applications.
type Workload struct {
	NumTypes int
	Sizes    []float64
	Freqs    []float64
	Holders  [][]int
	Platform *platform.Platform
	Alpha    float64
}

// Combine folds the applications into one solvable Instance with global
// rho = 1. The returned instance carries pre-scaled derived W/Delta; do
// not call Refresh on it (that would recompute them for rho = 1 only and
// assign work to the virtual combiners).
func Combine(apps []App, w Workload) (*instance.Instance, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("multiapp: no applications")
	}
	for i, a := range apps {
		if a.Tree == nil {
			return nil, fmt.Errorf("multiapp: application %d has no tree", i)
		}
		if err := a.Tree.Validate(); err != nil {
			return nil, fmt.Errorf("multiapp: application %d: %v", i, err)
		}
		if a.Rho <= 0 {
			return nil, fmt.Errorf("multiapp: application %d has rho %v", i, a.Rho)
		}
	}

	merged := &apptree.Tree{}
	var wAll, dAll []float64
	roots := make([]int, len(apps))
	for ai, a := range apps {
		opOff := len(merged.Ops)
		leafOff := len(merged.Leaves)
		for _, op := range a.Tree.Ops {
			cp := apptree.Operator{Parent: op.Parent}
			if op.Parent != apptree.NoParent {
				cp.Parent = op.Parent + opOff
			}
			for _, c := range op.ChildOps {
				cp.ChildOps = append(cp.ChildOps, c+opOff)
			}
			for _, li := range op.Leaves {
				cp.Leaves = append(cp.Leaves, li+leafOff)
			}
			merged.Ops = append(merged.Ops, cp)
		}
		for _, l := range a.Tree.Leaves {
			merged.Leaves = append(merged.Leaves, apptree.Leaf{Object: l.Object, Parent: l.Parent + opOff})
		}
		roots[ai] = a.Tree.Root + opOff

		// Pre-scale this application's work and traffic by its target.
		wApp, dApp := a.Tree.Derive(w.Sizes, w.Alpha)
		for i := range wApp {
			wAll = append(wAll, a.Rho*wApp[i])
			dAll = append(dAll, a.Rho*dApp[i])
		}
	}

	// Chain the application roots under zero-cost virtual combiners.
	cur := roots[0]
	for _, next := range roots[1:] {
		v := len(merged.Ops)
		merged.Ops = append(merged.Ops, apptree.Operator{
			Parent:   apptree.NoParent,
			ChildOps: []int{cur, next},
		})
		merged.Ops[cur].Parent = v
		merged.Ops[next].Parent = v
		wAll = append(wAll, 0)
		dAll = append(dAll, 0)
		cur = v
	}
	merged.Root = cur
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("multiapp: merged tree invalid: %v", err)
	}

	in := &instance.Instance{
		Tree:     merged,
		NumTypes: w.NumTypes,
		Sizes:    w.Sizes,
		Freqs:    w.Freqs,
		Holders:  w.Holders,
		Platform: w.Platform,
		Rho:      1, // targets are folded into W/Delta
		Alpha:    w.Alpha,
		W:        wAll,
		Delta:    dAll,
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("multiapp: combined instance invalid: %v", err)
	}
	return in, nil
}
