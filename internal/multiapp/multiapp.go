// Package multiapp implements the paper's first future-work direction:
// executing multiple applications simultaneously, each with its own
// throughput target, on one shared purchased platform.
//
// The reduction is exact: the steady-state constraints (1)-(5) are linear
// in rho*w_i and rho*delta_i, so an application with target rho_k is
// folded into a global rho=1 problem by pre-scaling its operators' work
// and output sizes by rho_k. The K trees are stitched into one binary
// tree with zero-cost virtual combiner operators (w=0, delta=0), which
// never constrain any processor or link. Sharing pays in two ways: spare
// CPU/NIC capacity is pooled, and co-located operators of different
// applications that need the same basic object download it once — the
// paper's "reuse of common sub-expressions", at download granularity.
package multiapp

import (
	"fmt"

	"repro/internal/apptree"
	"repro/internal/instance"
	"repro/internal/platform"
)

// App is one application: a tree and its own QoS target.
type App struct {
	Tree *apptree.Tree
	Rho  float64
}

// Workload describes the shared environment of all applications.
type Workload struct {
	NumTypes int
	Sizes    []float64
	Freqs    []float64
	Holders  [][]int
	Platform *platform.Platform
	Alpha    float64
}

// Combine folds the applications into one solvable Instance with global
// rho = 1. The returned instance carries pre-scaled derived W/Delta; do
// not call Refresh on it (that would recompute them for rho = 1 only and
// assign work to the virtual combiners).
//
// This one-shot form fully validates its inputs and the merged result
// and hands back an instance the caller solely owns. Hot sweep cells
// use Builder.Combine instead, which builds the identical instance on
// reusable arenas and skips the O(N) structural re-validation.
func Combine(apps []App, w Workload) (*instance.Instance, error) {
	for i, a := range apps {
		if a.Tree == nil {
			continue // checked by checkApps below
		}
		if err := a.Tree.Validate(); err != nil {
			return nil, fmt.Errorf("multiapp: application %d: %v", i, err)
		}
	}
	in, err := new(Builder).Combine(apps, w)
	if err != nil {
		return nil, err
	}
	if err := in.Tree.Validate(); err != nil {
		return nil, fmt.Errorf("multiapp: merged tree invalid: %v", err)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("multiapp: combined instance invalid: %v", err)
	}
	return in, nil
}

// checkApps runs the cheap per-application checks shared by both
// Combine forms.
func checkApps(apps []App) error {
	if len(apps) == 0 {
		return fmt.Errorf("multiapp: no applications")
	}
	for i, a := range apps {
		if a.Tree == nil {
			return fmt.Errorf("multiapp: application %d has no tree", i)
		}
		if len(a.Tree.Ops) == 0 {
			return fmt.Errorf("multiapp: application %d has an empty tree", i)
		}
		if a.Rho <= 0 {
			return fmt.Errorf("multiapp: application %d has rho %v", i, a.Rho)
		}
	}
	return nil
}

// Builder is Combine on reusable storage: the merged tree's operator
// and leaf tables are grow-only, every operator's ChildOps/Leaves
// slice is carved out of two shared arenas (mirroring apptree.Builder),
// the per-application Derive pass runs on scratch buffers via
// DeriveInto, and the scaled W/Delta vectors and the Instance itself
// are recycled across calls — so a multi-tenant sweep cell's instance
// construction is allocation-free in steady state (the last
// alloc-heavy sweep path, ~1.1k allocs/op as one-shot Combine).
//
// The returned *Instance and everything it references are owned by
// the Builder and valid only until the next Combine call; the sweep
// engine solves and discards it before the worker's next cell, the
// same contract as instance.Generator. Unlike the one-shot Combine,
// the Builder trusts its input trees to be structurally valid (as
// trees from apptree.Random, Builder.Random and LeftDeep are by
// construction) and skips re-validating the merged result — the
// reduction is equivalence-tested against one-shot Combine, which
// keeps the full checks. A Builder is not safe for concurrent use.
type Builder struct {
	tree                  apptree.Tree
	childArena, leafArena []int
	wAll, dAll            []float64 // scaled, merged-tree indexed
	wApp, dApp            []float64 // per-application DeriveInto scratch
	inst                  instance.Instance
}

// Combine is the package-level Combine on the builder's reusable
// storage. The resulting instance is field-for-field identical
// (tree shape, bit-identical W/Delta) to the one-shot form's.
func (b *Builder) Combine(apps []App, w Workload) (*instance.Instance, error) {
	if err := checkApps(apps); err != nil {
		return nil, err
	}
	totalOps := len(apps) - 1 // virtual combiners
	for _, a := range apps {
		totalOps += len(a.Tree.Ops)
	}
	merged := &b.tree
	if cap(merged.Ops) < totalOps {
		merged.Ops = make([]apptree.Operator, 0, totalOps)
	} else {
		merged.Ops = merged.Ops[:0]
	}
	merged.Leaves = merged.Leaves[:0]
	if cap(b.childArena) < 2*totalOps {
		b.childArena = make([]int, 2*totalOps)
		b.leafArena = make([]int, 2*totalOps)
	}
	wAll, dAll := b.wAll[:0], b.dAll[:0]

	// Stack-backed for the common few-tenant case; append spills to the
	// heap only beyond 16 applications.
	var rootsBuf [16]int
	roots := rootsBuf[:0]
	for _, a := range apps {
		opOff := len(merged.Ops)
		leafOff := len(merged.Leaves)
		for oi := range a.Tree.Ops {
			op := &a.Tree.Ops[oi]
			id := len(merged.Ops)
			cp := apptree.Operator{
				Parent:   op.Parent,
				ChildOps: b.childArena[2*id : 2*id : 2*id+2],
				Leaves:   b.leafArena[2*id : 2*id : 2*id+2],
			}
			if op.Parent != apptree.NoParent {
				cp.Parent = op.Parent + opOff
			}
			for _, c := range op.ChildOps {
				cp.ChildOps = append(cp.ChildOps, c+opOff)
			}
			for _, li := range op.Leaves {
				cp.Leaves = append(cp.Leaves, li+leafOff)
			}
			merged.Ops = append(merged.Ops, cp)
		}
		for _, l := range a.Tree.Leaves {
			merged.Leaves = append(merged.Leaves, apptree.Leaf{Object: l.Object, Parent: l.Parent + opOff})
		}
		roots = append(roots, a.Tree.Root+opOff)

		// Pre-scale this application's work and traffic by its target.
		// DeriveInto and Derive share the same per-operator fold, so the
		// scaled values are bit-identical to the one-shot path's.
		b.wApp, b.dApp = a.Tree.DeriveInto(w.Sizes, w.Alpha, b.wApp, b.dApp)
		for i := range a.Tree.Ops {
			wAll = append(wAll, a.Rho*b.wApp[i])
			dAll = append(dAll, a.Rho*b.dApp[i])
		}
	}

	// Chain the application roots under zero-cost virtual combiners.
	cur := roots[0]
	for _, next := range roots[1:] {
		v := len(merged.Ops)
		merged.Ops = append(merged.Ops, apptree.Operator{
			Parent:   apptree.NoParent,
			ChildOps: b.childArena[2*v : 2*v : 2*v+2],
			Leaves:   b.leafArena[2*v : 2*v : 2*v+2],
		})
		merged.Ops[v].ChildOps = append(merged.Ops[v].ChildOps, cur, next)
		merged.Ops[cur].Parent = v
		merged.Ops[next].Parent = v
		wAll = append(wAll, 0)
		dAll = append(dAll, 0)
		cur = v
	}
	merged.Root = cur
	b.wAll, b.dAll = wAll, dAll

	in := &b.inst
	*in = instance.Instance{
		Tree:     merged,
		NumTypes: w.NumTypes,
		Sizes:    w.Sizes,
		Freqs:    w.Freqs,
		Holders:  w.Holders,
		Platform: w.Platform,
		Rho:      1, // targets are folded into W/Delta
		Alpha:    w.Alpha,
		W:        wAll,
		Delta:    dAll,
	}
	return in, nil
}
