package stream

import (
	"context"
	"math"
	"testing"

	"repro/internal/apptree"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
)

// paperInstance is the Figure 1(a) tree with sizes {10,20,30} MB, f=1/2,
// alpha=1, rho=1 (same fixture as the mapping tests).
func paperInstance() *instance.Instance {
	t := &apptree.Tree{}
	t.Ops = make([]apptree.Operator, 5)
	t.Root = 3
	t.Ops[3] = apptree.Operator{Parent: apptree.NoParent, ChildOps: []int{4, 2}}
	t.Ops[4] = apptree.Operator{Parent: 3, ChildOps: []int{1, 0}}
	t.Ops[2] = apptree.Operator{Parent: 3}
	t.Ops[1] = apptree.Operator{Parent: 4}
	t.Ops[0] = apptree.Operator{Parent: 4}
	addLeaf := func(op, obj int) {
		li := len(t.Leaves)
		t.Leaves = append(t.Leaves, apptree.Leaf{Object: obj, Parent: op})
		t.Ops[op].Leaves = append(t.Ops[op].Leaves, li)
	}
	addLeaf(1, 0)
	addLeaf(0, 0)
	addLeaf(0, 1)
	addLeaf(2, 1)
	addLeaf(2, 2)
	in := &instance.Instance{
		Tree:     t,
		NumTypes: 3,
		Sizes:    []float64{10, 20, 30},
		Freqs:    []float64{0.5, 0.5, 0.5},
		Holders:  [][]int{{0}, {0, 1}, {2}},
		Platform: platform.DefaultPlatform(),
		Rho:      1,
		Alpha:    1,
	}
	in.Refresh()
	return in
}

func onePlacement(in *instance.Instance) *mapping.Mapping {
	m := mapping.New(in)
	p := m.Buy(in.Platform.Catalog.MostExpensive())
	for op := range in.Tree.Ops {
		m.Place(op, p)
	}
	for _, k := range m.NeededObjects(p) {
		m.SelectServer(p, k, in.Holders[k][0])
	}
	return m
}

func TestSingleProcessorThroughput(t *testing.T) {
	in := paperInstance()
	m := onePlacement(in)
	rep, err := Simulate(m, Options{Results: 200})
	if err != nil {
		t.Fatal(err)
	}
	// One processor, no transfers: steady state is work-conserving, so
	// throughput = speed / total work = 281280 / 220 = 1278.5 results/s.
	want := 281280.0 / 220.0
	if math.Abs(rep.Throughput-want)/want > 0.05 {
		t.Fatalf("throughput = %v, want ~%v", rep.Throughput, want)
	}
	if math.Abs(rep.Analytic-want)/want > 1e-9 {
		t.Fatalf("analytic = %v, want %v", rep.Analytic, want)
	}
}

func TestTransferBottleneck(t *testing.T) {
	// n3 alone on a second processor: the crossing edge carries delta=50 MB
	// per result over a 1000 MB/s link, one transfer at a time, capping
	// throughput at 20 results/s.
	in := paperInstance()
	m := mapping.New(in)
	p := m.Buy(in.Platform.Catalog.MostExpensive())
	q := m.Buy(in.Platform.Catalog.MostExpensive())
	for _, op := range []int{0, 1, 3, 4} {
		m.Place(op, p)
	}
	m.Place(2, q)
	for _, pp := range []int{p, q} {
		for _, k := range m.NeededObjects(pp) {
			m.SelectServer(pp, k, in.Holders[k][0])
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(m, Options{Results: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Analytic-20) > 1e-6 {
		t.Fatalf("analytic = %v, want 20", rep.Analytic)
	}
	if math.Abs(rep.Throughput-20)/20 > 0.10 {
		t.Fatalf("throughput = %v, want ~20", rep.Throughput)
	}
}

func TestMeetsRhoOnHeuristicMappings(t *testing.T) {
	// The headline validation (experiment V1): every feasible mapping a
	// heuristic produces sustains the target throughput dynamically.
	for seed := int64(0); seed < 4; seed++ {
		in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.3}, seed)
		for _, h := range heuristics.All() {
			res, err := heuristics.Solve(in, h, heuristics.Options{Seed: seed})
			if err != nil {
				continue
			}
			rep, err := Simulate(res.Mapping, Options{Results: 90})
			if err != nil {
				t.Fatalf("%s seed %d: %v", h.Name(), seed, err)
			}
			if rep.Analytic < in.Rho-1e-6 {
				t.Fatalf("%s seed %d: analytic max %v below rho %v", h.Name(), seed, rep.Analytic, in.Rho)
			}
			if rep.Throughput < 0.9*in.Rho {
				t.Fatalf("%s seed %d: measured throughput %v below 0.9*rho", h.Name(), seed, rep.Throughput)
			}
		}
	}
}

// TestSimulateBatchMatchesSerial asserts the fan-out returns the exact
// reports of one-at-a-time simulation, in input order, at several
// worker counts.
func TestSimulateBatchMatchesSerial(t *testing.T) {
	var ms []*mapping.Mapping
	for seed := int64(0); seed < 4; seed++ {
		in := instance.Generate(instance.Config{NumOps: 15, Alpha: 1.1}, seed)
		res, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: seed})
		if err != nil {
			continue
		}
		ms = append(ms, res.Mapping)
	}
	if len(ms) < 2 {
		t.Fatal("not enough feasible mappings")
	}
	opt := Options{Results: 50}
	want := make([]*Report, len(ms))
	for i, m := range ms {
		rep, err := Simulate(m, opt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}
	for _, workers := range []int{1, 4} {
		reps, errs := SimulateBatch(context.Background(), ms, opt, workers)
		for i := range ms {
			if errs[i] != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, errs[i])
			}
			if reps[i].Throughput != want[i].Throughput || reps[i].Events != want[i].Events {
				t.Fatalf("workers=%d item %d: batch %+v, serial %+v", workers, i, reps[i], want[i])
			}
		}
	}
}

func TestSimulateBatchCancelled(t *testing.T) {
	in := paperInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reps, errs := SimulateBatch(ctx, []*mapping.Mapping{onePlacement(in), onePlacement(in)}, Options{}, 2)
	for i := range reps {
		if reps[i] != nil || errs[i] == nil {
			t.Fatalf("item %d ran under a cancelled context", i)
		}
	}
}

func TestAnalyticZeroOnServerOverload(t *testing.T) {
	in := paperInstance()
	m := onePlacement(in)
	in.Platform.Servers[0].NICMBps = 1 // downloads exceed the server NIC
	if got := AnalyticMaxThroughput(m); got != 0 {
		t.Fatalf("analytic = %v, want 0", got)
	}
}

func TestIncompleteMappingRejected(t *testing.T) {
	in := paperInstance()
	m := mapping.New(in)
	if _, err := Simulate(m, Options{}); err == nil {
		t.Fatal("incomplete mapping accepted")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	in := paperInstance()
	a, err := Simulate(onePlacement(in), Options{Results: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(onePlacement(in), Options{Results: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.SimTime != b.SimTime {
		t.Fatal("simulation is not deterministic")
	}
}

func TestCreditsLimitPipelineDepth(t *testing.T) {
	in := paperInstance()
	m := onePlacement(in)
	rep, err := Simulate(m, Options{Results: 60, Credits: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With depth-1 credits the pipeline still progresses (no deadlock)
	// and throughput is positive.
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput)
	}
}

// TestContradictoryWarmupRejected pins the options fix: an explicit
// Warmup that leaves no measured results is an error, not a silent guess.
func TestContradictoryWarmupRejected(t *testing.T) {
	in := paperInstance()
	m := onePlacement(in)
	for _, opt := range []Options{
		{Results: 50, Warmup: 50},
		{Results: 50, Warmup: 80},
		{Warmup: 120}, // default Results = 120
	} {
		if _, err := Simulate(m, opt); err == nil {
			t.Fatalf("Options %+v accepted; want contradictory-warmup error", opt)
		}
	}
	if _, err := Simulate(m, Options{Results: 50, Warmup: 49}); err != nil {
		t.Fatalf("Warmup just under Results rejected: %v", err)
	}
}

// TestRunnerMatchesSimulate checks the reusable engine returns the exact
// report of the one-shot path, across mappings and repeated runs.
func TestRunnerMatchesSimulate(t *testing.T) {
	r := NewRunner()
	for seed := int64(0); seed < 4; seed++ {
		in := instance.Generate(instance.Config{NumOps: 18, Alpha: 1.2}, seed)
		res, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: seed})
		if err != nil {
			continue
		}
		want, err := Simulate(res.Mapping, Options{Results: 60})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ {
			got, err := r.Simulate(res.Mapping, Options{Results: 60})
			if err != nil {
				t.Fatal(err)
			}
			if got != *want {
				t.Fatalf("seed %d run %d: runner %+v, simulate %+v", seed, rep, got, *want)
			}
		}
	}
}

// TestCopiedRunnerReanchors checks a copied Runner drives its own engine:
// the cached completion closures re-anchor on the next bind instead of
// firing into the original engine.
func TestCopiedRunnerReanchors(t *testing.T) {
	in := paperInstance()
	m := onePlacement(in)
	r := NewRunner()
	want, err := r.Simulate(m, Options{Results: 50})
	if err != nil {
		t.Fatal(err)
	}
	cp := *r
	got, err := cp.Simulate(m, Options{Results: 50})
	if err != nil {
		t.Fatalf("copied runner: %v", err)
	}
	if got != want {
		t.Fatalf("copied runner report %+v, original %+v", got, want)
	}
}

// TestRunnerZeroAllocs pins the tentpole property: repeated simulations on
// a warmed Runner allocate nothing.
func TestRunnerZeroAllocs(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 20, Alpha: 1.1}, 1)
	res, err := heuristics.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	opt := Options{Results: 60}
	if _, err := r.Simulate(res.Mapping, opt); err != nil { // warm every buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.Simulate(res.Mapping, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Runner.Simulate allocates %v per run, want 0", allocs)
	}
}

func TestThroughputScalesWithSpeed(t *testing.T) {
	in := paperInstance()
	m := onePlacement(in)
	fast, err := Simulate(m, Options{Results: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Same mapping on the slowest CPU: throughput scales by 11.72/46.88.
	m.Procs[0].Config = platform.Config{CPU: 0, NIC: 4}
	slow, err := Simulate(m, Options{Results: 100})
	if err != nil {
		t.Fatal(err)
	}
	ratio := slow.Throughput / fast.Throughput
	want := 11.72 / 46.88
	if math.Abs(ratio-want)/want > 0.05 {
		t.Fatalf("speed scaling ratio = %v, want ~%v", ratio, want)
	}
}
