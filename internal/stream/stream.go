// Package stream executes a mapped operator tree in simulated time and
// measures the throughput it actually sustains, providing an independent
// dynamic check of the paper's steady-state constraint system.
//
// The execution model follows the paper's Section 2: every operator runs
// as a pipelined stage on its processor — while a processor computes the
// t-th result of an operator, it receives inputs for the (t+1)-th and
// sends the (t-1)-th output to the parent, all concurrently (full
// overlap). Computation shares a processor's CPU equally among its active
// operators (processor sharing); transfers share NIC and link bandwidth
// max-min fairly under the bounded multi-port model (package flow);
// basic-object downloads are a constant background load that permanently
// reserves NIC bandwidth.
//
// For any mapping that satisfies constraints (1)-(5) at throughput rho,
// the measured steady-state throughput converges to at least rho (the
// bottleneck stage rate); integration tests assert this on every
// heuristic's output.
//
// The engine is built for sweep workloads (thousands of simulations per
// experiment): a Runner owns every piece of run-time state — job table,
// event pool, flow-network scratch — and rebinds it to each mapping with
// grow-only buffers, so repeated Simulate calls on one goroutine perform
// zero steady-state allocations. The package-level Simulate draws Runners
// from a sync.Pool; hot loops can hold a Runner directly.
package stream

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/apptree"
	"repro/internal/desim"
	"repro/internal/flow"
	"repro/internal/mapping"
	"repro/internal/par"
	"repro/internal/xslice"
)

// Options tunes a simulation run.
type Options struct {
	Results   int   // root results to complete (default 120)
	Warmup    int   // leading results excluded from the measurement (default Results/3)
	Credits   int   // how far any operator may run ahead of its parent (default 8)
	MaxEvents int64 // event budget (default 2,000,000)
}

// withDefaults fills unset fields and rejects contradictory ones: a
// measurement needs at least one post-warmup result, so an explicit
// Warmup >= Results is an error rather than a silently replaced guess.
func (o Options) withDefaults() (Options, error) {
	if o.Results <= 0 {
		o.Results = 120
	}
	if o.Warmup >= o.Results {
		return o, fmt.Errorf("stream: Warmup %d leaves no measured results (Results %d)", o.Warmup, o.Results)
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Results / 3
	}
	if o.Credits <= 0 {
		o.Credits = 8
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 2_000_000
	}
	return o, nil
}

// Report is the outcome of a simulation.
type Report struct {
	Throughput float64 // measured steady-state root results/s
	Analytic   float64 // analytic maximum sustainable throughput
	Completed  int     // root results completed
	SimTime    float64 // virtual seconds elapsed
	Events     int64   // simulator events processed
}

// AnalyticMaxThroughput returns the largest rho' at which the mapping's
// constraint system still holds, treating download rates as fixed (they do
// not scale with throughput) and communication as linear in rho'. It
// returns 0 when the fixed download load alone violates a constraint and
// +Inf only for empty mappings. The scan allocates nothing: every loop
// walks the assignment vector directly in ascending order.
func AnalyticMaxThroughput(m *mapping.Mapping) float64 {
	in := m.Inst
	cat := in.Platform.Catalog
	best := math.Inf(1)
	for p := range m.Procs {
		if !m.Procs[p].Alive {
			continue
		}
		work := 0.0 // at rho = 1
		for op, q := range m.Assign {
			if q == p {
				work += in.W[op]
			}
		}
		if work > 0 {
			best = math.Min(best, cat.SpeedUnits(m.Procs[p].Config)/work)
		}
		dl := m.DownloadLoad(p)
		residual := cat.BandwidthMBps(m.Procs[p].Config) - dl
		comm := commAtUnitRho(m, p)
		if comm > 0 {
			best = math.Min(best, residual/comm)
		} else if residual < 0 {
			return 0
		}
	}
	for p := range m.Procs {
		if !m.Procs[p].Alive {
			continue
		}
		for q := p + 1; q < len(m.Procs); q++ {
			if !m.Procs[q].Alive {
				continue
			}
			tr := linkAtUnitRho(m, p, q)
			if tr > 0 {
				best = math.Min(best, in.Platform.ProcLinkMBps/tr)
			}
		}
	}
	for l := range in.Platform.Servers {
		if m.ServerLoad(l) > in.Platform.Servers[l].NICMBps+1e-9 {
			return 0
		}
		for p := range m.Procs {
			if !m.Procs[p].Alive {
				continue
			}
			if m.ServerLinkLoad(l, p) > in.Platform.ServerLinkMBps+1e-9 {
				return 0
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

func commAtUnitRho(m *mapping.Mapping, p int) float64 {
	in := m.Inst
	load := 0.0
	for op, onP := range m.Assign {
		if onP != p {
			continue
		}
		for _, c := range in.Tree.Ops[op].ChildOps {
			if m.OpProc(c) != p {
				load += in.Delta[c]
			}
		}
		if par := in.Tree.Ops[op].Parent; par != apptree.NoParent && m.OpProc(par) != p {
			load += in.Delta[op]
		}
	}
	return load
}

func linkAtUnitRho(m *mapping.Mapping, p, q int) float64 {
	in := m.Inst
	load := 0.0
	for op, onP := range m.Assign {
		if onP != p {
			continue
		}
		for _, c := range in.Tree.Ops[op].ChildOps {
			if m.OpProc(c) == q {
				load += in.Delta[c]
			}
		}
		if par := in.Tree.Ops[op].Parent; par != apptree.NoParent && m.OpProc(par) == q {
			load += in.Delta[op]
		}
	}
	return load
}

// job is one unit of in-flight work: the compute of an operator's next
// result, or the transfer of a finished result to a remote parent. Jobs
// live in a fixed table indexed (kind, op) — at most one compute and one
// transfer per operator are active at any instant — so iterating the
// table visits active jobs in the deterministic (kind, op) order the
// engine's float accumulation and event tie-breaking rely on.
type job struct {
	result    int     // result index
	remaining float64 // work-units or MB
	rate      float64
	updated   float64 // sim time of the last remaining-update
	event     *desim.Event
	active    bool
}

// engine holds the run-time state of one simulation. All slices are
// grow-only and rebound per run, so one engine serves many simulations
// without reallocating.
type engine struct {
	m   *mapping.Mapping
	sim desim.Sim
	opt Options

	// static structure, rebuilt per run
	procOf   []int // operator -> processor
	parentOf []int // operator -> parent operator (apptree.NoParent at root)
	speed    []float64
	nicFree  []float64 // NIC capacity minus download background, per processor
	children [][]int

	// static flow network: capacities never change during a run, so the
	// resource vector and each transfer's resource triple are precomputed.
	caps     []float64
	nicRes   []int    // processor -> resource index, -1 when not alive
	linkRes  []int    // flattened (p*numProcs+q) -> resource index, -1 unset
	transRes [][3]int // operator -> its transfer's (src NIC, dst NIC, link)

	// job table: [0, n) compute jobs, [n, 2n) transfer jobs.
	jobs []job
	fire []func() // cached completion closures, one per job slot
	self *engine  // identity check: fire closures bind to this address

	// dynamic per-operator state
	nextCompute []int  // next result index the operator will compute
	recv        []int  // results of this operator delivered to its parent
	computing   []bool // a compute job is active
	sendBusy    []bool // a transfer of its output is in flight
	sendQueue   []int  // outputs produced but not yet transferred (remote parents only)

	completions []float64
	err         error

	alloc     flow.Allocator
	flows     []flow.Flow
	transfers []int // operators with an active transfer, ascending
	cpuActive []int // per processor: active compute jobs
}

// Runner owns a reusable simulation engine. The zero value is ready to
// use; a Runner must not be used concurrently (copying one is safe — the
// next Simulate call re-anchors the engine's internal closures — but the
// copies must still run one at a time). Each Simulate call rebinds
// the engine to the given mapping (so mutating a mapping between calls is
// safe) while reusing all internal buffers, giving zero steady-state
// allocations on repeated calls. The Runner keeps references to the most
// recently simulated mapping until the next call.
type Runner struct {
	e engine
}

// NewRunner returns an empty Runner; see the type comment for reuse rules.
func NewRunner() *Runner { return &Runner{} }

// SimulateBatch runs Simulate on every mapping concurrently, at most
// workers at a time (<= 0 means GOMAXPROCS). Slot i of the returned
// slices holds mapping i's report or error, in input order regardless
// of scheduling. Each simulation owns its engine state, so the fan-out
// is race-free; cancelling ctx skips the simulations not yet started
// (in-flight ones run to completion) and reports them with an error
// wrapping the cancellation cause.
func SimulateBatch(ctx context.Context, ms []*mapping.Mapping, opt Options, workers int) ([]*Report, []error) {
	reps := make([]*Report, len(ms))
	errs := make([]error, len(ms))
	done, _ := par.ForEachDone(ctx, workers, len(ms), func(i int) {
		reps[i], errs[i] = Simulate(ms[i], opt)
	})
	par.SkipErrors(ctx, done, errs, "stream: batch")
	return reps, errs
}

// runnerPool recycles engines across package-level Simulate calls; a
// worker goroutine hammering Simulate reuses one warmed engine.
var runnerPool = sync.Pool{New: func() any { return new(Runner) }}

// Simulate runs the mapping and measures its root throughput.
func Simulate(m *mapping.Mapping, opt Options) (*Report, error) {
	r := runnerPool.Get().(*Runner)
	defer runnerPool.Put(r)
	rep, err := r.Simulate(m, opt)
	if err != nil {
		return nil, err
	}
	out := rep
	return &out, nil
}

// Simulate runs the mapping on the reusable engine and measures its root
// throughput. The report is returned by value so steady-state calls do
// not allocate.
func (r *Runner) Simulate(m *mapping.Mapping, opt Options) (Report, error) {
	e := &r.e
	if !m.Complete() {
		return Report{}, fmt.Errorf("stream: mapping is incomplete")
	}
	opt, err := opt.withDefaults()
	if err != nil {
		return Report{}, err
	}
	if err := e.bind(m, opt); err != nil {
		return Report{}, err
	}

	n := len(e.nextCompute)
	// Kick off every operator that can compute its first result.
	for op := 0; op < n; op++ {
		e.tryStartCompute(op)
	}
	e.reflow()

	for e.err == nil && len(e.completions) < opt.Results {
		if e.sim.Processed() >= opt.MaxEvents {
			return Report{}, fmt.Errorf("stream: event budget exhausted after %d results", len(e.completions))
		}
		if !e.sim.Step() {
			return Report{}, fmt.Errorf("stream: deadlock after %d results", len(e.completions))
		}
	}
	if e.err != nil {
		return Report{}, e.err
	}

	first, last := e.completions[opt.Warmup], e.completions[len(e.completions)-1]
	measured := math.Inf(1)
	if last > first {
		measured = float64(len(e.completions)-1-opt.Warmup) / (last - first)
	}
	return Report{
		Throughput: measured,
		Analytic:   AnalyticMaxThroughput(m),
		Completed:  len(e.completions),
		SimTime:    e.sim.Now(),
		Events:     e.sim.Processed(),
	}, nil
}

// bind points the engine at a mapping and resets all dynamic state. Every
// buffer is grow-only, so rebinding is allocation-free once warmed.
func (e *engine) bind(m *mapping.Mapping, opt Options) error {
	in := m.Inst
	cat := in.Platform.Catalog
	n := in.Tree.NumOps()
	np := len(m.Procs)
	e.m = m
	e.opt = opt
	e.err = nil
	e.sim.Reset()

	e.procOf = xslice.Grow(e.procOf, n)
	e.parentOf = xslice.Grow(e.parentOf, n)
	e.children = xslice.Grow(e.children, n)
	e.nextCompute = xslice.Grow(e.nextCompute, n)
	e.recv = xslice.Grow(e.recv, n)
	e.computing = xslice.Grow(e.computing, n)
	e.sendBusy = xslice.Grow(e.sendBusy, n)
	e.sendQueue = xslice.Grow(e.sendQueue, n)
	e.transRes = xslice.Grow(e.transRes, n)
	for op := 0; op < n; op++ {
		e.procOf[op] = m.OpProc(op)
		e.parentOf[op] = in.Tree.Ops[op].Parent
		e.children[op] = in.Tree.Ops[op].ChildOps
		e.nextCompute[op] = 0
		e.recv[op] = 0
		e.computing[op] = false
		e.sendBusy[op] = false
		e.sendQueue[op] = 0
	}

	e.speed = xslice.Grow(e.speed, np)
	e.nicFree = xslice.Grow(e.nicFree, np)
	e.nicRes = xslice.Grow(e.nicRes, np)
	e.cpuActive = xslice.Grow(e.cpuActive, np)
	e.caps = e.caps[:0]
	for p := 0; p < np; p++ {
		e.nicRes[p] = -1
		if !m.Procs[p].Alive {
			continue
		}
		e.speed[p] = cat.SpeedUnits(m.Procs[p].Config)
		e.nicFree[p] = cat.BandwidthMBps(m.Procs[p].Config) - m.DownloadLoad(p)
		if e.nicFree[p] < 0 {
			return fmt.Errorf("stream: processor %d downloads exceed its NIC", p)
		}
		e.nicRes[p] = len(e.caps)
		e.caps = append(e.caps, e.nicFree[p])
	}
	// One shared resource per processor pair that a transfer can cross.
	e.linkRes = xslice.Grow(e.linkRes, np*np)
	for i := range e.linkRes {
		e.linkRes[i] = -1
	}
	for op := 0; op < n; op++ {
		par := e.parentOf[op]
		if par == apptree.NoParent || e.procOf[par] == e.procOf[op] {
			continue
		}
		from, to := e.procOf[op], e.procOf[par]
		a, b := from, to
		if a > b {
			a, b = b, a
		}
		if e.linkRes[a*np+b] < 0 {
			e.linkRes[a*np+b] = len(e.caps)
			e.caps = append(e.caps, in.Platform.ProcLinkMBps)
		}
		e.transRes[op] = [3]int{e.nicRes[from], e.nicRes[to], e.linkRes[a*np+b]}
	}

	e.jobs = xslice.Grow(e.jobs, 2*n)
	for i := range e.jobs {
		e.jobs[i] = job{}
	}
	// The cached fire closures capture the engine's address; if the Runner
	// was copied or moved, rebuild them so they drive this engine and not
	// the original.
	if e.self != e {
		e.self = e
		for i := range e.fire {
			e.fire[i] = nil
		}
	}
	if cap(e.fire) < 2*n {
		fire := make([]func(), 2*n, 2*n+n)
		copy(fire, e.fire)
		e.fire = fire
	} else {
		e.fire = e.fire[:2*n]
	}
	for i := range e.fire {
		if e.fire[i] == nil {
			idx := i
			e.fire[i] = func() { e.finish(idx) }
		}
	}

	if cap(e.completions) < opt.Results {
		e.completions = make([]float64, 0, opt.Results)
	} else {
		e.completions = e.completions[:0]
	}
	return nil
}

// canCompute checks input availability and pipeline credits for op's next
// result.
func (e *engine) canCompute(op int) bool {
	t := e.nextCompute[op]
	if e.computing[op] {
		return false
	}
	// Credit: do not run more than Credits results ahead of the parent.
	if par := e.parentOf[op]; par != apptree.NoParent {
		if t >= e.nextCompute[par]+e.opt.Credits {
			return false
		}
	}
	// Back-pressure: an unbounded send queue means the transfer path is
	// the bottleneck; stall computation once the queue holds Credits
	// outputs so the simulation reaches a finite steady state.
	if e.sendQueue[op] >= e.opt.Credits {
		return false
	}
	for _, c := range e.children[op] {
		if e.recv[c] <= t {
			return false
		}
	}
	return true
}

func (e *engine) tryStartCompute(op int) {
	if !e.canCompute(op) {
		return
	}
	e.computing[op] = true
	e.jobs[op] = job{
		result:    e.nextCompute[op],
		remaining: e.m.Inst.W[op],
		updated:   e.sim.Now(),
		active:    true,
	}
}

// computeDone handles the completion of op's result t.
func (e *engine) computeDone(op, t int) {
	e.computing[op] = false
	e.nextCompute[op] = t + 1
	par := e.parentOf[op]
	if par == apptree.NoParent {
		e.completions = append(e.completions, e.sim.Now())
	} else if e.procOf[par] == e.procOf[op] {
		e.recv[op] = t + 1
		e.tryStartCompute(par)
	} else {
		e.sendQueue[op]++
		e.tryStartTransfer(op)
	}
	// This operator may proceed, and its children may have been waiting on
	// the parent-credit.
	e.tryStartCompute(op)
	for _, c := range e.children[op] {
		e.tryStartCompute(c)
	}
}

// tryStartTransfer starts the next queued output transfer of op to its
// (remote) parent; one transfer per edge at a time.
func (e *engine) tryStartTransfer(op int) {
	if e.sendBusy[op] || e.sendQueue[op] == 0 {
		return
	}
	e.sendBusy[op] = true
	e.sendQueue[op]--
	t := e.nextCompute[op] - 1 - e.sendQueue[op] // oldest unsent result
	n := len(e.nextCompute)
	e.jobs[n+op] = job{
		result:    t,
		remaining: e.m.Inst.Delta[op],
		updated:   e.sim.Now(),
		active:    true,
	}
}

func (e *engine) transferDone(op, t int) {
	e.sendBusy[op] = false
	par := e.parentOf[op]
	e.recv[op] = t + 1
	e.tryStartCompute(par)
	e.tryStartTransfer(op)
	e.tryStartCompute(op)
}

// reflow recomputes every active job's progress and rate and reschedules
// completion events. Called after any state change. Jobs are visited in
// table order — computes by ascending operator, then transfers — which is
// exactly the (kind, op) order the float accumulation and the event
// tie-breaking were defined with.
func (e *engine) reflow() {
	now := e.sim.Now()
	n := len(e.nextCompute)
	// Settle progress under the old rates.
	for i := range e.jobs {
		j := &e.jobs[i]
		if !j.active {
			continue
		}
		if j.rate > 0 {
			j.remaining -= j.rate * (now - j.updated)
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		j.updated = now
		if j.event != nil {
			e.sim.Cancel(j.event)
			j.event = nil
		}
	}

	// CPU rates: processor sharing per processor.
	for p := range e.cpuActive {
		e.cpuActive[p] = 0
	}
	for op := 0; op < n; op++ {
		if e.jobs[op].active {
			e.cpuActive[e.procOf[op]]++
		}
	}
	// Transfer rates: max-min over the precomputed NIC and link resources.
	e.transfers = e.transfers[:0]
	e.flows = e.flows[:0]
	for op := 0; op < n; op++ {
		if e.jobs[n+op].active {
			e.transfers = append(e.transfers, op)
			e.flows = append(e.flows, flow.Flow{Resources: e.transRes[op][:]})
		}
	}
	if len(e.flows) > 0 {
		rates, err := e.alloc.MaxMin(e.caps, e.flows)
		if err != nil {
			e.err = fmt.Errorf("stream: %v", err)
			return
		}
		for i, op := range e.transfers {
			e.jobs[n+op].rate = rates[i]
		}
	}

	for i := range e.jobs {
		j := &e.jobs[i]
		if !j.active {
			continue
		}
		if i < n {
			p := e.procOf[i]
			j.rate = e.speed[p] / float64(e.cpuActive[p])
		}
		if j.rate <= 0 {
			e.err = fmt.Errorf("stream: job stalled at zero rate (op %d)", i%n)
			return
		}
		j.event = e.sim.After(j.remaining/j.rate, e.fire[i])
	}
}

// finish retires job slot idx and advances the pipeline.
func (e *engine) finish(idx int) {
	n := len(e.nextCompute)
	j := &e.jobs[idx]
	j.active = false
	j.event = nil
	if idx < n {
		e.computeDone(idx, j.result)
	} else {
		e.transferDone(idx-n, j.result)
	}
	e.reflow()
}
