// Package stream executes a mapped operator tree in simulated time and
// measures the throughput it actually sustains, providing an independent
// dynamic check of the paper's steady-state constraint system.
//
// The execution model follows the paper's Section 2: every operator runs
// as a pipelined stage on its processor — while a processor computes the
// t-th result of an operator, it receives inputs for the (t+1)-th and
// sends the (t-1)-th output to the parent, all concurrently (full
// overlap). Computation shares a processor's CPU equally among its active
// operators (processor sharing); transfers share NIC and link bandwidth
// max-min fairly under the bounded multi-port model (package flow);
// basic-object downloads are a constant background load that permanently
// reserves NIC bandwidth.
//
// For any mapping that satisfies constraints (1)-(5) at throughput rho,
// the measured steady-state throughput converges to at least rho (the
// bottleneck stage rate); integration tests assert this on every
// heuristic's output.
package stream

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/apptree"
	"repro/internal/desim"
	"repro/internal/flow"
	"repro/internal/mapping"
	"repro/internal/par"
)

// Options tunes a simulation run.
type Options struct {
	Results   int   // root results to complete (default 120)
	Warmup    int   // leading results excluded from the measurement (default Results/3)
	Credits   int   // how far any operator may run ahead of its parent (default 8)
	MaxEvents int64 // event budget (default 2,000,000)
}

func (o Options) withDefaults() Options {
	if o.Results <= 0 {
		o.Results = 120
	}
	if o.Warmup <= 0 || o.Warmup >= o.Results {
		o.Warmup = o.Results / 3
	}
	if o.Credits <= 0 {
		o.Credits = 8
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 2_000_000
	}
	return o
}

// Report is the outcome of a simulation.
type Report struct {
	Throughput float64 // measured steady-state root results/s
	Analytic   float64 // analytic maximum sustainable throughput
	Completed  int     // root results completed
	SimTime    float64 // virtual seconds elapsed
	Events     int64   // simulator events processed
}

// AnalyticMaxThroughput returns the largest rho' at which the mapping's
// constraint system still holds, treating download rates as fixed (they do
// not scale with throughput) and communication as linear in rho'. It
// returns 0 when the fixed download load alone violates a constraint and
// +Inf only for empty mappings.
func AnalyticMaxThroughput(m *mapping.Mapping) float64 {
	in := m.Inst
	cat := in.Platform.Catalog
	best := math.Inf(1)
	procs := m.AliveProcs()
	for _, p := range procs {
		work := 0.0 // at rho = 1
		for _, op := range m.OpsOn(p) {
			work += in.W[op]
		}
		if work > 0 {
			best = math.Min(best, cat.SpeedUnits(m.Procs[p].Config)/work)
		}
		dl := m.DownloadLoad(p)
		residual := cat.BandwidthMBps(m.Procs[p].Config) - dl
		comm := commAtUnitRho(m, p)
		if comm > 0 {
			best = math.Min(best, residual/comm)
		} else if residual < 0 {
			return 0
		}
	}
	for i, p := range procs {
		for _, q := range procs[i+1:] {
			tr := linkAtUnitRho(m, p, q)
			if tr > 0 {
				best = math.Min(best, in.Platform.ProcLinkMBps/tr)
			}
		}
	}
	for l := range in.Platform.Servers {
		if m.ServerLoad(l) > in.Platform.Servers[l].NICMBps+1e-9 {
			return 0
		}
		for _, p := range procs {
			if m.ServerLinkLoad(l, p) > in.Platform.ServerLinkMBps+1e-9 {
				return 0
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

func commAtUnitRho(m *mapping.Mapping, p int) float64 {
	in := m.Inst
	load := 0.0
	for _, op := range m.OpsOn(p) {
		for _, c := range in.Tree.Ops[op].ChildOps {
			if m.OpProc(c) != p {
				load += in.Delta[c]
			}
		}
		if par := in.Tree.Ops[op].Parent; par != apptree.NoParent && m.OpProc(par) != p {
			load += in.Delta[op]
		}
	}
	return load
}

func linkAtUnitRho(m *mapping.Mapping, p, q int) float64 {
	in := m.Inst
	load := 0.0
	for _, op := range m.OpsOn(p) {
		for _, c := range in.Tree.Ops[op].ChildOps {
			if m.OpProc(c) == q {
				load += in.Delta[c]
			}
		}
		if par := in.Tree.Ops[op].Parent; par != apptree.NoParent && m.OpProc(par) == q {
			load += in.Delta[op]
		}
	}
	return load
}

// engine holds the run-time state of one simulation.
type engine struct {
	m   *mapping.Mapping
	sim desim.Sim
	opt Options

	// static structure
	procOf   []int // operator -> processor
	speed    map[int]float64
	nicFree  map[int]float64 // NIC capacity minus download background
	linkBW   float64
	children [][]int

	// dynamic state
	nextCompute []int         // per op: next result index it will compute
	received    []map[int]int // per op: child op -> results delivered
	computing   []bool        // per op: a compute job is active
	sendBusy    []bool        // per op: a transfer of its output is in flight
	sendQueue   []int         // per op: outputs produced but not yet transferred (remote parents only)

	jobs        map[*job]struct{}
	completions []float64
	err         error
}

// orderedJobs returns the active jobs in a deterministic order (kind, op,
// result) so float accumulation and event tie-breaking are reproducible.
func (e *engine) orderedJobs() []*job {
	out := make([]*job, 0, len(e.jobs))
	for j := range e.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].kind != out[b].kind {
			return out[a].kind < out[b].kind
		}
		if out[a].op != out[b].op {
			return out[a].op < out[b].op
		}
		return out[a].result < out[b].result
	})
	return out
}

type jobKind int

const (
	jobCompute jobKind = iota
	jobTransfer
)

type job struct {
	kind      jobKind
	op        int     // computing operator, or sending child for transfers
	result    int     // result index
	remaining float64 // work-units or MB
	rate      float64
	updated   float64 // sim time of the last remaining-update
	event     *desim.Event
}

// SimulateBatch runs Simulate on every mapping concurrently, at most
// workers at a time (<= 0 means GOMAXPROCS). Slot i of the returned
// slices holds mapping i's report or error, in input order regardless
// of scheduling. Each simulation owns its engine state, so the fan-out
// is race-free; cancelling ctx skips the simulations not yet started
// (in-flight ones run to completion) and reports them with an error
// wrapping the cancellation cause.
func SimulateBatch(ctx context.Context, ms []*mapping.Mapping, opt Options, workers int) ([]*Report, []error) {
	reps := make([]*Report, len(ms))
	errs := make([]error, len(ms))
	done, _ := par.ForEachDone(ctx, workers, len(ms), func(i int) {
		reps[i], errs[i] = Simulate(ms[i], opt)
	})
	par.SkipErrors(ctx, done, errs, "stream: batch")
	return reps, errs
}

// Simulate runs the mapping and measures its root throughput.
func Simulate(m *mapping.Mapping, opt Options) (*Report, error) {
	if !m.Complete() {
		return nil, fmt.Errorf("stream: mapping is incomplete")
	}
	opt = opt.withDefaults()
	in := m.Inst
	n := in.Tree.NumOps()
	e := &engine{
		m:           m,
		opt:         opt,
		procOf:      make([]int, n),
		speed:       map[int]float64{},
		nicFree:     map[int]float64{},
		linkBW:      in.Platform.ProcLinkMBps,
		children:    make([][]int, n),
		nextCompute: make([]int, n),
		received:    make([]map[int]int, n),
		computing:   make([]bool, n),
		sendBusy:    make([]bool, n),
		sendQueue:   make([]int, n),
		jobs:        map[*job]struct{}{},
	}
	cat := in.Platform.Catalog
	for op := 0; op < n; op++ {
		e.procOf[op] = m.OpProc(op)
		e.children[op] = in.Tree.Ops[op].ChildOps
		e.received[op] = map[int]int{}
	}
	for _, p := range m.AliveProcs() {
		e.speed[p] = cat.SpeedUnits(m.Procs[p].Config)
		e.nicFree[p] = cat.BandwidthMBps(m.Procs[p].Config) - m.DownloadLoad(p)
		if e.nicFree[p] < 0 {
			return nil, fmt.Errorf("stream: processor %d downloads exceed its NIC", p)
		}
	}

	// Kick off every operator that can compute its first result.
	for op := 0; op < n; op++ {
		e.tryStartCompute(op)
	}
	e.reflow()

	for e.err == nil && len(e.completions) < opt.Results {
		if e.sim.Processed() >= opt.MaxEvents {
			return nil, fmt.Errorf("stream: event budget exhausted after %d results", len(e.completions))
		}
		if !e.sim.Step() {
			return nil, fmt.Errorf("stream: deadlock after %d results", len(e.completions))
		}
	}
	if e.err != nil {
		return nil, e.err
	}

	first, last := e.completions[opt.Warmup], e.completions[len(e.completions)-1]
	measured := math.Inf(1)
	if last > first {
		measured = float64(len(e.completions)-1-opt.Warmup) / (last - first)
	}
	return &Report{
		Throughput: measured,
		Analytic:   AnalyticMaxThroughput(m),
		Completed:  len(e.completions),
		SimTime:    e.sim.Now(),
		Events:     e.sim.Processed(),
	}, nil
}

// canCompute checks input availability and pipeline credits for op's next
// result.
func (e *engine) canCompute(op int) bool {
	t := e.nextCompute[op]
	if e.computing[op] {
		return false
	}
	// Credit: do not run more than Credits results ahead of the parent.
	if par := e.m.Inst.Tree.Ops[op].Parent; par != apptree.NoParent {
		if t >= e.nextCompute[par]+e.opt.Credits {
			return false
		}
	}
	// Back-pressure: an unbounded send queue means the transfer path is
	// the bottleneck; stall computation once the queue holds Credits
	// outputs so the simulation reaches a finite steady state.
	if e.sendQueue[op] >= e.opt.Credits {
		return false
	}
	for _, c := range e.children[op] {
		if e.received[op][c] <= t {
			return false
		}
	}
	return true
}

func (e *engine) tryStartCompute(op int) {
	if !e.canCompute(op) {
		return
	}
	e.computing[op] = true
	j := &job{
		kind:      jobCompute,
		op:        op,
		result:    e.nextCompute[op],
		remaining: e.m.Inst.W[op],
		updated:   e.sim.Now(),
	}
	e.jobs[j] = struct{}{}
}

// computeDone handles the completion of op's result t.
func (e *engine) computeDone(op, t int) {
	e.computing[op] = false
	e.nextCompute[op] = t + 1
	in := e.m.Inst
	par := in.Tree.Ops[op].Parent
	if par == apptree.NoParent {
		e.completions = append(e.completions, e.sim.Now())
	} else if e.procOf[par] == e.procOf[op] {
		e.received[par][op] = t + 1
		e.tryStartCompute(par)
	} else {
		e.sendQueue[op]++
		e.tryStartTransfer(op)
	}
	// This operator may proceed, and its children may have been waiting on
	// the parent-credit.
	e.tryStartCompute(op)
	for _, c := range e.children[op] {
		e.tryStartCompute(c)
	}
}

// tryStartTransfer starts the next queued output transfer of op to its
// (remote) parent; one transfer per edge at a time.
func (e *engine) tryStartTransfer(op int) {
	if e.sendBusy[op] || e.sendQueue[op] == 0 {
		return
	}
	e.sendBusy[op] = true
	e.sendQueue[op]--
	t := e.nextCompute[op] - 1 - e.sendQueue[op] // oldest unsent result
	j := &job{
		kind:      jobTransfer,
		op:        op,
		result:    t,
		remaining: e.m.Inst.Delta[op],
		updated:   e.sim.Now(),
	}
	e.jobs[j] = struct{}{}
}

func (e *engine) transferDone(op, t int) {
	e.sendBusy[op] = false
	par := e.m.Inst.Tree.Ops[op].Parent
	e.received[par][op] = t + 1
	e.tryStartCompute(par)
	e.tryStartTransfer(op)
	e.tryStartCompute(op)
}

// reflow recomputes every active job's progress and rate and reschedules
// completion events. Called after any state change.
func (e *engine) reflow() {
	now := e.sim.Now()
	ordered := e.orderedJobs()
	// Settle progress under the old rates.
	for _, j := range ordered {
		if j.rate > 0 {
			j.remaining -= j.rate * (now - j.updated)
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		j.updated = now
		if j.event != nil {
			e.sim.Cancel(j.event)
			j.event = nil
		}
	}

	// CPU rates: processor sharing per processor.
	active := map[int]int{}
	for _, j := range ordered {
		if j.kind == jobCompute {
			active[e.procOf[j.op]]++
		}
	}
	// Transfer rates: max-min over NIC and link resources.
	var transfers []*job
	for _, j := range ordered {
		if j.kind == jobTransfer {
			transfers = append(transfers, j)
		}
	}
	rates := map[*job]float64{}
	if len(transfers) > 0 {
		resIndex := map[string]int{}
		var caps []float64
		resource := func(name string, cap float64) int {
			if i, ok := resIndex[name]; ok {
				return i
			}
			resIndex[name] = len(caps)
			caps = append(caps, cap)
			return len(caps) - 1
		}
		flows := make([]flow.Flow, len(transfers))
		for i, j := range transfers {
			from := e.procOf[j.op]
			to := e.procOf[e.m.Inst.Tree.Ops[j.op].Parent]
			a, b := from, to
			if a > b {
				a, b = b, a
			}
			flows[i].Resources = []int{
				resource(fmt.Sprintf("nic%d", from), e.nicFree[from]),
				resource(fmt.Sprintf("nic%d", to), e.nicFree[to]),
				resource(fmt.Sprintf("link%d-%d", a, b), e.linkBW),
			}
		}
		got, err := flow.MaxMin(caps, flows)
		if err != nil {
			e.err = fmt.Errorf("stream: %v", err)
			return
		}
		for i, j := range transfers {
			rates[j] = got[i]
		}
	}

	for _, j := range ordered {
		switch j.kind {
		case jobCompute:
			j.rate = e.speed[e.procOf[j.op]] / float64(active[e.procOf[j.op]])
		case jobTransfer:
			j.rate = rates[j]
		}
		if j.rate <= 0 {
			e.err = fmt.Errorf("stream: job stalled at zero rate (op %d)", j.op)
			return
		}
		jj := j
		j.event = e.sim.After(j.remaining/j.rate, func() { e.finish(jj) })
	}
}

func (e *engine) finish(j *job) {
	delete(e.jobs, j)
	switch j.kind {
	case jobCompute:
		e.computeDone(j.op, j.result)
	case jobTransfer:
		e.transferDone(j.op, j.result)
	}
	e.reflow()
}
