package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// scenarioStatus decodes a create/status response body.
func scenarioStatus(t *testing.T, body []byte) ScenarioStatus {
	t.Helper()
	var st ScenarioStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("scenario JSON: %v\n%s", err, body)
	}
	return st
}

// TestScenarioLifecycle drives one session end to end: create with an
// empty event stream, arrive, drift, depart, status, delete — every
// answer a validated incumbent, every counter advancing.
func TestScenarioLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	rec := do(t, s, "POST", "/v1/scenario",
		[]byte(`{"scenario":{"initial_apps":2,"min_ops":4,"max_ops":6},"seed":3}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("create: %d (%s)", rec.Code, rec.Body.String())
	}
	st := scenarioStatus(t, rec.Body.Bytes())
	if st.ID == "" || st.Cost <= 0 || st.Apps != 2 || st.Events != 0 || len(st.Trace) != 0 {
		t.Fatalf("create status: %+v", st)
	}
	if st.Policy != "repair" {
		t.Fatalf("default policy = %q, want repair", st.Policy)
	}
	base := fmt.Sprintf("/v1/scenario/%s", st.ID)

	events := []string{
		`{"kind":"arrive","num_ops":5,"tree_seed":11,"rho":1}`,
		`{"kind":"drift","slot":0,"factor":1.4}`,
		`{"kind":"depart","slot":1}`,
	}
	for i, body := range events {
		rec := do(t, s, "POST", base+"/event", []byte(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("event %d: %d (%s)", i, rec.Code, rec.Body.String())
		}
		var er ScenarioEventResult
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Fatalf("event %d JSON: %v", i, err)
		}
		if er.Outcome == "rejected" || er.Cost <= 0 {
			t.Fatalf("event %d: %+v", i, er)
		}
	}

	rec = do(t, s, "GET", base, nil)
	st = scenarioStatus(t, rec.Body.Bytes())
	if st.Events != 3 || st.Rejected != 0 || st.Repaired+st.Resolved != 3 {
		t.Fatalf("status after events: %+v", st)
	}
	if st.Apps != 2 { // 2 initial + 1 arrival - 1 departure
		t.Fatalf("apps = %d, want 2", st.Apps)
	}

	if rec := do(t, s, "DELETE", base, nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	if rec := do(t, s, "GET", base, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("status after delete: %d, want 404", rec.Code)
	}
}

// TestScenarioGeneratedStream creates a session whose seeded event
// stream runs at creation; the trace and counters must cover it, and
// the session stays live for further events.
func TestScenarioGeneratedStream(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	rec := do(t, s, "POST", "/v1/scenario",
		[]byte(`{"scenario":{"events":5,"min_ops":4,"max_ops":6},"policy":"resolve","seed":1}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("create: %d (%s)", rec.Code, rec.Body.String())
	}
	st := scenarioStatus(t, rec.Body.Bytes())
	if st.Policy != "resolve" || st.Events != 5 || len(st.Trace) != 5 {
		t.Fatalf("generated-stream status: %+v", st)
	}
	rec = do(t, s, "POST", fmt.Sprintf("/v1/scenario/%s/event", st.ID),
		[]byte(`{"kind":"drift","slot":0,"factor":1.1}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-stream event: %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestScenarioRejectedEvent pins the reject path: an invalid event
// answers 200 with outcome "rejected" and a reason, and the incumbent
// is untouched.
func TestScenarioRejectedEvent(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	rec := do(t, s, "POST", "/v1/scenario", []byte(`{"scenario":{"min_ops":4,"max_ops":6},"seed":2}`))
	st := scenarioStatus(t, rec.Body.Bytes())

	rec = do(t, s, "POST", fmt.Sprintf("/v1/scenario/%s/event", st.ID),
		[]byte(`{"kind":"depart","slot":99}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("rejected event: %d (%s)", rec.Code, rec.Body.String())
	}
	var er ScenarioEventResult
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Outcome != "rejected" || er.Error == "" {
		t.Fatalf("rejected event result: %+v", er)
	}
	if er.Cost != st.Cost || er.Apps != st.Apps {
		t.Fatalf("incumbent changed on rejection: %+v vs %+v", er, st)
	}
	after := scenarioStatus(t, do(t, s, "GET", "/v1/scenario/"+st.ID, nil).Body.Bytes())
	if after.Rejected != 1 || after.Cost != st.Cost {
		t.Fatalf("status after rejection: %+v", after)
	}
}

// TestScenarioBadRequests pins the HTTP error mapping.
func TestScenarioBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxOps: 50})
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/scenario", `not json`, http.StatusBadRequest},
		{"POST", "/v1/scenario", `{"policy":"magic"}`, http.StatusBadRequest},
		{"POST", "/v1/scenario", `{"scenario":{"drift":"sideways"}}`, http.StatusBadRequest},
		{"POST", "/v1/scenario", `{"scenario":{"min_ops":9,"max_ops":4}}`, http.StatusBadRequest},
		{"POST", "/v1/scenario", `{"scenario":{"arrive_frac":0.8,"depart_frac":0.8}}`, http.StatusBadRequest},
		{"POST", "/v1/scenario", `{"scenario":{"rho":-1}}`, http.StatusBadRequest},
		{"POST", "/v1/scenario", `{"scenario":{"max_ops":500}}`, http.StatusRequestEntityTooLarge},
		{"GET", "/v1/scenario/nope", "", http.StatusNotFound},
		{"DELETE", "/v1/scenario/nope", "", http.StatusNotFound},
		{"POST", "/v1/scenario/nope/event", `{"kind":"drift","slot":0,"factor":1.1}`, http.StatusNotFound},
	}
	for _, c := range cases {
		var body []byte
		if c.body != "" {
			body = []byte(c.body)
		}
		if rec := do(t, s, c.method, c.path, body); rec.Code != c.want {
			t.Errorf("%s %s %s: %d, want %d (%s)", c.method, c.path, c.body, rec.Code, c.want, rec.Body.String())
		}
	}

	// Event-level errors need a live session.
	st := scenarioStatus(t, do(t, s, "POST", "/v1/scenario",
		[]byte(`{"scenario":{"min_ops":4,"max_ops":6},"seed":1}`)).Body.Bytes())
	base := fmt.Sprintf("/v1/scenario/%s/event", st.ID)
	if rec := do(t, s, "POST", base, []byte(`{"kind":"mutate"}`)); rec.Code != http.StatusBadRequest {
		t.Errorf("bad kind: %d", rec.Code)
	}
	if rec := do(t, s, "POST", base, []byte(`{"kind":"arrive","num_ops":500}`)); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized arrival: %d", rec.Code)
	}
	// timeout_ms <= 0 falls back to the server default, like /v1/solve.
	if rec := do(t, s, "POST", base, []byte(`{"kind":"drift","slot":0,"factor":1.2,"timeout_ms":-1}`)); rec.Code != http.StatusOK {
		t.Errorf("default-timeout drift: %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestScenarioSessionCap fills the registry and requires 429 beyond it,
// then frees a slot with DELETE.
func TestScenarioSessionCap(t *testing.T) {
	if testing.Short() {
		t.Skip("creates maxScenarios sessions")
	}
	s := newTestServer(t, Config{Workers: 1})
	body := []byte(`{"scenario":{"initial_apps":1,"min_ops":3,"max_ops":3},"seed":1}`)
	var first string
	for i := 0; i < maxScenarios; i++ {
		rec := do(t, s, "POST", "/v1/scenario", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("create %d: %d (%s)", i, rec.Code, rec.Body.String())
		}
		if i == 0 {
			first = scenarioStatus(t, rec.Body.Bytes()).ID
		}
	}
	if rec := do(t, s, "POST", "/v1/scenario", body); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over cap: %d, want 429", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/scenario/"+first, nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/scenario", body); rec.Code != http.StatusOK {
		t.Fatalf("create after delete: %d", rec.Code)
	}
}

// TestScenarioStatszCounters checks the churn section of /statsz.
func TestScenarioStatszCounters(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st := scenarioStatus(t, do(t, s, "POST", "/v1/scenario",
		[]byte(`{"scenario":{"min_ops":4,"max_ops":6},"seed":4}`)).Body.Bytes())
	base := fmt.Sprintf("/v1/scenario/%s/event", st.ID)
	do(t, s, "POST", base, []byte(`{"kind":"drift","slot":0,"factor":1.3}`))
	do(t, s, "POST", base, []byte(`{"kind":"depart","slot":77}`)) // rejected

	rec := do(t, s, "GET", "/statsz", nil)
	var sz statszResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sz); err != nil {
		t.Fatalf("statsz JSON: %v", err)
	}
	if sz.Churn.Live != 1 || sz.Churn.Created != 1 {
		t.Fatalf("churn sessions: %+v", sz.Churn)
	}
	if sz.Churn.Events != 2 || sz.Churn.Rejected != 1 ||
		sz.Churn.Repaired+sz.Churn.Resolved != 1 {
		t.Fatalf("churn event counters: %+v", sz.Churn)
	}
}

// TestScenarioNoGoroutineLeak pins that sessions own no goroutines:
// after a busy create/event/delete mix and Close, the goroutine count
// returns to the baseline.
func TestScenarioNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 2})
	for i := 0; i < 3; i++ {
		rec := do(t, s, "POST", "/v1/scenario",
			[]byte(fmt.Sprintf(`{"scenario":{"events":2,"min_ops":4,"max_ops":6},"seed":%d}`, i+1)))
		if rec.Code != http.StatusOK {
			t.Fatalf("create %d: %d (%s)", i, rec.Code, rec.Body.String())
		}
		st := scenarioStatus(t, rec.Body.Bytes())
		do(t, s, "POST", fmt.Sprintf("/v1/scenario/%s/event", st.ID),
			[]byte(`{"kind":"drift","slot":0,"factor":1.2}`))
		if i%2 == 0 {
			do(t, s, "DELETE", "/v1/scenario/"+st.ID, nil)
		}
	}
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
