package serve

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord"
)

// counters are the server-wide monotonic counters behind /statsz.
// Written with atomics from HTTP goroutines and workers; read without
// coordination (a statsz snapshot need not be a consistent cut).
type counters struct {
	started       time.Time
	solveReqs     atomic.Int64
	verifyReqs    atomic.Int64
	ok            atomic.Int64
	clientErr     atomic.Int64
	serverErr     atomic.Int64
	rejectedFull  atomic.Int64
	rejectedDrain atomic.Int64
	timeouts      atomic.Int64
	inFlight      atomic.Int64

	// Churn-session counters (see scenario.go): session creations,
	// events answered, per-outcome splits and total operator
	// migrations across every session's lifetime.
	scenarioReqs   atomic.Int64
	scenarioEvents atomic.Int64
	churnRepaired  atomic.Int64
	churnResolved  atomic.Int64
	churnRejected  atomic.Int64
	churnMoved     atomic.Int64
}

// workerStats are one worker's counters; each worker writes only its
// own entry, so there is no cross-worker contention.
type workerStats struct {
	jobs        atomic.Int64 // jobs taken off the queue
	solves      atomic.Int64 // heuristic solves executed
	sims        atomic.Int64 // stream-engine simulations executed
	arenaReuses atomic.Int64 // solves served from an already-warm arena
}

// latencyWindow keeps the last windowSize request latencies (admitted
// requests that completed, in milliseconds) and answers percentile
// queries by copy-and-sort — cheap at this size, and the write path is
// a single indexed store under the mutex.
type latencyWindow struct {
	mu    sync.Mutex
	ring  [latencyWindowSize]float64
	n     int   // filled entries, <= len(ring)
	next  int   // write cursor
	total int64 // lifetime completions
}

const latencyWindowSize = 1024

func (l *latencyWindow) record(d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	l.mu.Lock()
	l.ring[l.next] = ms
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// quantiles returns the window's p50 and p99 plus the lifetime count.
func (l *latencyWindow) quantiles() (p50, p99 float64, total int64) {
	l.mu.Lock()
	buf := make([]float64, l.n)
	copy(buf, l.ring[:l.n])
	total = l.total
	l.mu.Unlock()
	if len(buf) == 0 {
		return 0, 0, total
	}
	sort.Float64s(buf)
	idx := func(q float64) float64 {
		i := int(q * float64(len(buf)-1))
		return buf[i]
	}
	return idx(0.50), idx(0.99), total
}

// statszResponse is the GET /statsz JSON document.
type statszResponse struct {
	UptimeS    float64 `json:"uptime_s"`
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	Queued     int     `json:"queued"`
	InFlight   int64   `json:"in_flight"`
	Draining   bool    `json:"draining"`

	SolveRequests    int64 `json:"solve_requests"`
	VerifyRequests   int64 `json:"verify_requests"`
	OK               int64 `json:"ok"`
	ClientErrors     int64 `json:"client_errors"`
	ServerErrors     int64 `json:"server_errors"`
	Rejected429      int64 `json:"rejected_429"`
	RejectedDraining int64 `json:"rejected_draining"`
	Timeouts         int64 `json:"timeouts"`

	Latency struct {
		Count int64   `json:"count"`
		P50MS float64 `json:"p50_ms"`
		P99MS float64 `json:"p99_ms"`
	} `json:"latency"`

	PerWorker []workerStatsJSON `json:"per_worker"`

	// Sweep carries the distributed sweep coordinator's lifetime
	// counters: jobs, leases granted, renewals, releases (expired leases
	// re-offered — straggler and dead-worker recoveries), duplicate
	// completions discarded, and merge latency.
	Sweep coord.SweepStats `json:"sweep"`

	// Churn carries the scenario sessions' lifetime counters: how many
	// sessions were created and are live, events answered, the
	// repair/re-solve/reject outcome split, and total surviving
	// operators migrated — the number local repair exists to minimize.
	Churn struct {
		Live     int   `json:"live"`
		Created  int64 `json:"created"`
		Events   int64 `json:"events"`
		Repaired int64 `json:"repaired"`
		Resolved int64 `json:"resolved"`
		Rejected int64 `json:"rejected"`
		Moved    int64 `json:"operators_moved"`
	} `json:"churn"`
}

type workerStatsJSON struct {
	Worker      int   `json:"worker"`
	Jobs        int64 `json:"jobs"`
	Solves      int64 `json:"solves"`
	Sims        int64 `json:"sims"`
	ArenaReuses int64 `json:"arena_reuses"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	resp := statszResponse{
		UptimeS:    time.Since(s.stats.started).Seconds(),
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Queued:     len(s.queue),
		InFlight:   s.stats.inFlight.Load(),
		Draining:   draining,

		SolveRequests:    s.stats.solveReqs.Load(),
		VerifyRequests:   s.stats.verifyReqs.Load(),
		OK:               s.stats.ok.Load(),
		ClientErrors:     s.stats.clientErr.Load(),
		ServerErrors:     s.stats.serverErr.Load(),
		Rejected429:      s.stats.rejectedFull.Load(),
		RejectedDraining: s.stats.rejectedDrain.Load(),
		Timeouts:         s.stats.timeouts.Load(),
	}
	resp.Latency.P50MS, resp.Latency.P99MS, resp.Latency.Count = s.lat.quantiles()
	resp.Sweep = s.coord.StatsSnapshot()
	s.scenMu.Lock()
	resp.Churn.Live = len(s.scenarios)
	s.scenMu.Unlock()
	resp.Churn.Created = s.stats.scenarioReqs.Load()
	resp.Churn.Events = s.stats.scenarioEvents.Load()
	resp.Churn.Repaired = s.stats.churnRepaired.Load()
	resp.Churn.Resolved = s.stats.churnResolved.Load()
	resp.Churn.Rejected = s.stats.churnRejected.Load()
	resp.Churn.Moved = s.stats.churnMoved.Load()
	for i := range s.workers {
		ws := &s.workers[i]
		resp.PerWorker = append(resp.PerWorker, workerStatsJSON{
			Worker:      i,
			Jobs:        ws.jobs.Load(),
			Solves:      ws.solves.Load(),
			Sims:        ws.sims.Load(),
			ArenaReuses: ws.arenaReuses.Load(),
		})
	}
	body, err := json.MarshalIndent(&resp, "", "  ")
	if err != nil {
		s.clientError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, append(body, '\n'))
}
