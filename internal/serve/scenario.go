package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/churn"
	"repro/internal/heuristics"
	"repro/internal/instance"
)

// Scenario endpoints: stateful churn sessions (internal/churn) mounted
// on the daemon. A session holds a live incumbent allocation and
// answers dynamic events — applications arriving and departing,
// throughput targets drifting — by journaled local repair (or, for
// comparison, a from-scratch portfolio re-solve), so a client can drive
// a long-lived deployment through workload changes without ever
// re-shipping the platform state. Like the sweep routes these never
// touch the worker pool: a single event's repair is far cheaper than a
// cold solve, sessions are serialized by their own mutex, and the work
// runs inline on the HTTP goroutine, so churn traffic can neither
// occupy nor be shed by the solve queue.
//
//	POST   /v1/scenario              create a session (initial solve; optional
//	                                 generated event stream) -> {"id": ...}
//	POST   /v1/scenario/{id}/event   apply one dynamic event to the incumbent
//	GET    /v1/scenario/{id}         incumbent + lifetime outcome counters
//	DELETE /v1/scenario/{id}         close the session
//
// Status mapping: 404 unknown session, 409 session busy (an event is
// in flight; one writer at a time), 422 no feasible initial mapping,
// 429 too many live sessions, 504 deadline expired mid-answer (the
// engine rolls the event back; the incumbent is untouched).

// maxScenarios bounds live sessions; beyond it creation sheds load
// with 429 until a client DELETEs one.
const maxScenarios = 64

// scenarioSession is one live churn engine plus its lifetime counters.
// The mutex serializes events: the engine mutates its incumbent in
// place, so a session admits one writer at a time and status reads
// take the same lock for a consistent snapshot.
type scenarioSession struct {
	mu       sync.Mutex
	id       string
	eng      *churn.Engine
	events   int
	repaired int
	resolved int
	rejected int
	moved    int
}

// registerScenario mounts the churn-session routes on the server mux.
func (s *Server) registerScenario() {
	s.scenarios = make(map[string]*scenarioSession)
	s.mux.HandleFunc("POST /v1/scenario", s.handleScenarioCreate)
	s.mux.HandleFunc("POST /v1/scenario/{id}/event", s.handleScenarioEvent)
	s.mux.HandleFunc("GET /v1/scenario/{id}", s.handleScenarioStatus)
	s.mux.HandleFunc("DELETE /v1/scenario/{id}", s.handleScenarioDelete)
}

// ScenarioSpec is the generator half of a create request: the knobs of
// churn.ScenarioConfig a client may set, JSON-shaped. Events > 0
// additionally generates that many seeded events and applies them all
// at creation, returning their per-event trace — the one-shot
// benchmark shape; Events == 0 creates a session holding only the
// initial allocation, to be driven by POSTed events.
type ScenarioSpec struct {
	InitialApps int     `json:"initial_apps,omitempty"`
	Events      int     `json:"events,omitempty"`
	MinOps      int     `json:"min_ops,omitempty"`
	MaxOps      int     `json:"max_ops,omitempty"`
	Rho         float64 `json:"rho,omitempty"`
	ArriveFrac  float64 `json:"arrive_frac,omitempty"`
	DepartFrac  float64 `json:"depart_frac,omitempty"`
	MaxApps     int     `json:"max_apps,omitempty"`
	Drift       string  `json:"drift,omitempty"` // "both" (default), "up", "down"
	DriftMax    float64 `json:"drift_max,omitempty"`
	RhoMin      float64 `json:"rho_min,omitempty"`
	RhoMax      float64 `json:"rho_max,omitempty"`
	Alpha       float64 `json:"alpha,omitempty"` // object-universe skew of the base instance
}

// ScenarioRequest is the POST /v1/scenario body. Policy is "repair"
// (default) or "resolve"; Seed drives the scenario generator, the
// initial solve and every per-event random stream, so one (body) pair
// is one reproducible trajectory. BudgetMS optionally bounds each
// event's refinement pass by wall clock; TimeoutMS bounds the whole
// request (initial solve plus any generated events) like the solve
// endpoints.
type ScenarioRequest struct {
	Scenario  ScenarioSpec `json:"scenario"`
	Policy    string       `json:"policy,omitempty"`
	Seed      int64        `json:"seed,omitempty"`
	BudgetMS  int64        `json:"budget_ms,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// ScenarioEventRequest is the POST /v1/scenario/{id}/event body. Kind
// selects which remaining fields are read, mirroring churn.Event:
// arrivals carry num_ops/tree_seed/rho, departures slot, drifts
// slot/factor.
type ScenarioEventRequest struct {
	Kind      string  `json:"kind"`
	NumOps    int     `json:"num_ops,omitempty"`
	TreeSeed  int64   `json:"tree_seed,omitempty"`
	Rho       float64 `json:"rho,omitempty"`
	Slot      int     `json:"slot,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

// ScenarioEventResult is one answered event on the wire.
type ScenarioEventResult struct {
	Kind    string  `json:"kind"`
	Outcome string  `json:"outcome"` // "repaired", "resolved", "rejected"
	Cost    float64 `json:"cost"`    // incumbent platform cost after the event
	Procs   int     `json:"procs"`
	Moved   int     `json:"moved"` // surviving operators migrated
	Ops     int     `json:"ops"`
	Apps    int     `json:"apps"`
	WallMS  float64 `json:"wall_ms"`
	Error   string  `json:"error,omitempty"` // rejection reason
}

// ScenarioStatus is the GET /v1/scenario/{id} document and the
// create response (which adds the generated events' trace).
type ScenarioStatus struct {
	ID       string                `json:"id"`
	Policy   string                `json:"policy"`
	Cost     float64               `json:"cost"`
	Procs    int                   `json:"procs"`
	Apps     int                   `json:"apps"`
	Ops      int                   `json:"ops"`
	Events   int                   `json:"events"`
	Repaired int                   `json:"repaired"`
	Resolved int                   `json:"resolved"`
	Rejected int                   `json:"rejected"`
	Moved    int                   `json:"moved"`
	Trace    []ScenarioEventResult `json:"trace,omitempty"`
}

// readScenarioBody decodes a scenario request body under the standard
// body cap.
func readScenarioBody(r *http.Request, dst any) *httpError {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return &httpError{http.StatusBadRequest, fmt.Sprintf("reading body: %v", err)}
	}
	if len(body) > maxBodyBytes {
		return &httpError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d bytes", maxBodyBytes)}
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return &httpError{http.StatusBadRequest, fmt.Sprintf("decoding JSON: %v", err)}
	}
	return nil
}

// scenarioTimeout clamps a client timeout like the solve endpoints do.
func (s *Server) scenarioTimeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// driftModelFor parses the wire drift-model name.
func driftModelFor(name string) (churn.DriftModel, *httpError) {
	switch name {
	case "", "both":
		return churn.DriftBoth, nil
	case "up":
		return churn.DriftUp, nil
	case "down":
		return churn.DriftDown, nil
	}
	return 0, &httpError{http.StatusBadRequest,
		fmt.Sprintf("unknown drift model %q (want both, up or down)", name)}
}

// scenarioConfigFor validates a spec against the server's operator cap
// and converts it to the generator's config.
func (s *Server) scenarioConfigFor(spec ScenarioSpec) (churn.ScenarioConfig, *httpError) {
	var cc churn.ScenarioConfig
	if spec.MaxOps > s.cfg.MaxOps {
		return cc, &httpError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("max_ops %d exceeds the server's limit of %d operators", spec.MaxOps, s.cfg.MaxOps)}
	}
	if spec.Events < 0 || spec.Events > 10_000 {
		return cc, &httpError{http.StatusBadRequest,
			fmt.Sprintf("events must be in [0, 10000], got %d", spec.Events)}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"initial_apps", float64(spec.InitialApps)}, {"min_ops", float64(spec.MinOps)},
		{"max_ops", float64(spec.MaxOps)}, {"max_apps", float64(spec.MaxApps)},
		{"rho", spec.Rho}, {"drift_max", spec.DriftMax},
		{"rho_min", spec.RhoMin}, {"rho_max", spec.RhoMax},
		{"arrive_frac", spec.ArriveFrac}, {"depart_frac", spec.DepartFrac},
		{"alpha", spec.Alpha},
	} {
		if f.v < 0 {
			return cc, &httpError{http.StatusBadRequest,
				fmt.Sprintf("%s must be >= 0, got %g", f.name, f.v)}
		}
	}
	if spec.MinOps > 0 && spec.MaxOps > 0 && spec.MinOps > spec.MaxOps {
		return cc, &httpError{http.StatusBadRequest,
			fmt.Sprintf("min_ops %d exceeds max_ops %d", spec.MinOps, spec.MaxOps)}
	}
	if spec.ArriveFrac > 1 || spec.DepartFrac > 1 || spec.ArriveFrac+spec.DepartFrac > 1 {
		return cc, &httpError{http.StatusBadRequest,
			"arrive_frac + depart_frac must not exceed 1"}
	}
	drift, herr := driftModelFor(spec.Drift)
	if herr != nil {
		return cc, herr
	}
	cc = churn.ScenarioConfig{
		InitialApps: spec.InitialApps,
		Events:      spec.Events,
		MinOps:      spec.MinOps,
		MaxOps:      spec.MaxOps,
		Rho:         spec.Rho,
		ArriveFrac:  spec.ArriveFrac,
		DepartFrac:  spec.DepartFrac,
		MaxApps:     spec.MaxApps,
		Drift:       drift,
		DriftMax:    spec.DriftMax,
		RhoMin:      spec.RhoMin,
		RhoMax:      spec.RhoMax,
		Base:        instance.Config{Alpha: spec.Alpha},
	}
	return cc, nil
}

// policyFor parses the wire policy name.
func policyFor(name string) (churn.Policy, *httpError) {
	switch name {
	case "", "repair":
		return churn.PolicyRepair, nil
	case "resolve":
		return churn.PolicyResolve, nil
	}
	return 0, &httpError{http.StatusBadRequest,
		fmt.Sprintf("unknown policy %q (want repair or resolve)", name)}
}

// eventResultJSON renders one engine answer for the wire.
func eventResultJSON(er churn.EventResult) ScenarioEventResult {
	out := ScenarioEventResult{
		Kind:    er.Event.Kind.String(),
		Outcome: er.Outcome.String(),
		Cost:    er.Cost,
		Procs:   er.Procs,
		Moved:   er.Moved,
		Ops:     er.Ops,
		Apps:    er.Apps,
		WallMS:  float64(er.Wall.Nanoseconds()) / 1e6,
	}
	if er.Err != nil {
		out.Error = er.Err.Error()
	}
	return out
}

// statusLocked snapshots a session; callers hold ses.mu.
func (ses *scenarioSession) statusLocked() ScenarioStatus {
	return ScenarioStatus{
		ID:       ses.id,
		Policy:   ses.eng.Policy().String(),
		Cost:     ses.eng.Cost(),
		Procs:    ses.eng.Procs(),
		Apps:     ses.eng.Apps(),
		Ops:      ses.eng.Ops(),
		Events:   ses.events,
		Repaired: ses.repaired,
		Resolved: ses.resolved,
		Rejected: ses.rejected,
		Moved:    ses.moved,
	}
}

// noteEvent folds one answered event into the session's and the
// server's counters; callers hold ses.mu.
func (s *Server) noteEvent(ses *scenarioSession, er churn.EventResult) {
	ses.events++
	s.stats.scenarioEvents.Add(1)
	switch er.Outcome {
	case churn.Repaired:
		ses.repaired++
		s.stats.churnRepaired.Add(1)
	case churn.Resolved:
		ses.resolved++
		s.stats.churnResolved.Add(1)
	case churn.Rejected:
		ses.rejected++
		s.stats.churnRejected.Add(1)
	}
	ses.moved += er.Moved
	s.stats.churnMoved.Add(int64(er.Moved))
}

func (s *Server) handleScenarioCreate(w http.ResponseWriter, r *http.Request) {
	var req ScenarioRequest
	if herr := readScenarioBody(r, &req); herr != nil {
		s.clientError(w, herr.status, herr.msg)
		return
	}
	policy, herr := policyFor(req.Policy)
	if herr == nil {
		var cc churn.ScenarioConfig
		if cc, herr = s.scenarioConfigFor(req.Scenario); herr == nil {
			s.createScenario(w, r, req, policy, cc)
			return
		}
	}
	s.clientError(w, herr.status, herr.msg)
}

// createScenario runs the initial solve (plus any generated events)
// and registers the session. Split from the handler so the parse
// errors above share one exit.
func (s *Server) createScenario(w http.ResponseWriter, r *http.Request, req ScenarioRequest, policy churn.Policy, cc churn.ScenarioConfig) {
	sc := churn.NewScenario(cc, req.Seed)
	// events == 0 on the wire means "no generated stream" (a session
	// driven purely by POSTed events), but the generator's zero-value
	// default is a nonempty stream — truncate it away.
	if req.Scenario.Events == 0 {
		sc.Events = nil
	}
	eng := churn.NewEngine(churn.Options{
		Policy: policy,
		Seed:   req.Seed,
		Budget: time.Duration(req.BudgetMS) * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(r.Context(), s.scenarioTimeout(req.TimeoutMS))
	defer cancel()

	ses := &scenarioSession{eng: eng}
	var trace []ScenarioEventResult
	if err := eng.Start(sc); err != nil {
		if errors.Is(err, heuristics.ErrInfeasible) {
			s.clientError(w, http.StatusUnprocessableEntity, err.Error())
		} else {
			s.clientError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	for _, ev := range sc.Events {
		er, err := eng.Step(ctx, ev)
		if err != nil {
			s.stats.timeouts.Add(1)
			s.clientError(w, http.StatusGatewayTimeout,
				fmt.Sprintf("generated event stream: %v (session not created)", err))
			return
		}
		s.noteEvent(ses, er)
		trace = append(trace, eventResultJSON(er))
	}

	s.scenMu.Lock()
	if len(s.scenarios) >= maxScenarios {
		s.scenMu.Unlock()
		s.clientError(w, http.StatusTooManyRequests,
			fmt.Sprintf("at most %d live scenario sessions; DELETE one first", maxScenarios))
		return
	}
	s.scenSeq++
	ses.id = fmt.Sprintf("c%06d", s.scenSeq)
	s.scenarios[ses.id] = ses
	s.scenMu.Unlock()
	s.stats.scenarioReqs.Add(1)

	ses.mu.Lock()
	status := ses.statusLocked()
	status.Trace = trace
	ses.mu.Unlock()
	s.writeSweepJSON(w, http.StatusOK, status)
}

// lookupScenario resolves {id} or answers 404.
func (s *Server) lookupScenario(w http.ResponseWriter, r *http.Request) *scenarioSession {
	s.scenMu.Lock()
	ses := s.scenarios[r.PathValue("id")]
	s.scenMu.Unlock()
	if ses == nil {
		s.clientError(w, http.StatusNotFound,
			fmt.Sprintf("unknown scenario session %q", r.PathValue("id")))
	}
	return ses
}

// eventFor converts a wire event; the engine re-validates against the
// live application list under the session lock.
func eventFor(req ScenarioEventRequest) (churn.Event, *httpError) {
	switch req.Kind {
	case "arrive":
		return churn.Event{Kind: churn.Arrive, NumOps: req.NumOps, TreeSeed: req.TreeSeed, Rho: req.Rho}, nil
	case "depart":
		return churn.Event{Kind: churn.Depart, Slot: req.Slot}, nil
	case "drift":
		return churn.Event{Kind: churn.Drift, Slot: req.Slot, Factor: req.Factor}, nil
	}
	return churn.Event{}, &httpError{http.StatusBadRequest,
		fmt.Sprintf("unknown event kind %q (want arrive, depart or drift)", req.Kind)}
}

func (s *Server) handleScenarioEvent(w http.ResponseWriter, r *http.Request) {
	var req ScenarioEventRequest
	if herr := readScenarioBody(r, &req); herr != nil {
		s.clientError(w, herr.status, herr.msg)
		return
	}
	ev, herr := eventFor(req)
	if herr != nil {
		s.clientError(w, herr.status, herr.msg)
		return
	}
	if ev.Kind == churn.Arrive && ev.NumOps > s.cfg.MaxOps {
		s.clientError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("num_ops %d exceeds the server's limit of %d operators", ev.NumOps, s.cfg.MaxOps))
		return
	}
	ses := s.lookupScenario(w, r)
	if ses == nil {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.scenarioTimeout(req.TimeoutMS))
	defer cancel()

	// One writer at a time: the engine mutates the incumbent in place,
	// and queueing writers behind a long repair would stack deadlines,
	// so a busy session answers 409 immediately instead.
	if !ses.mu.TryLock() {
		s.clientError(w, http.StatusConflict,
			fmt.Sprintf("scenario session %q has an event in flight", ses.id))
		return
	}
	er, err := ses.eng.Step(ctx, ev)
	if err != nil {
		ses.mu.Unlock()
		// The engine rolled the event back; the incumbent is untouched
		// and the session stays usable.
		s.stats.timeouts.Add(1)
		s.clientError(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	s.noteEvent(ses, er)
	ses.mu.Unlock()
	s.writeSweepJSON(w, http.StatusOK, eventResultJSON(er))
}

func (s *Server) handleScenarioStatus(w http.ResponseWriter, r *http.Request) {
	ses := s.lookupScenario(w, r)
	if ses == nil {
		return
	}
	ses.mu.Lock()
	status := ses.statusLocked()
	ses.mu.Unlock()
	s.writeSweepJSON(w, http.StatusOK, status)
}

func (s *Server) handleScenarioDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.scenMu.Lock()
	ses := s.scenarios[id]
	delete(s.scenarios, id)
	s.scenMu.Unlock()
	if ses == nil {
		s.clientError(w, http.StatusNotFound, fmt.Sprintf("unknown scenario session %q", id))
		return
	}
	s.writeSweepJSON(w, http.StatusOK, struct {
		ID     string `json:"id"`
		Closed bool   `json:"closed"`
	}{id, true})
}
