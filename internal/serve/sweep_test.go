package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/coord"
)

// TestSweepEndpointStatusMapping exercises the HTTP surface of the
// sweep coordinator: submit, claim through the lease lifecycle, and
// the status codes each coordinator sentinel maps to. (The full
// worker-driven path, including fault injection, lives in
// internal/coord's e2e test.)
func TestSweepEndpointStatusMapping(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	// Bad submissions are 400 with the error envelope.
	rec := do(t, s, "POST", "/v1/sweep", []byte(`{"figure":"nope","shards":2}`))
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "unknown figure") {
		t.Fatalf("bad figure: %d %s", rec.Code, rec.Body.String())
	}
	rec = do(t, s, "POST", "/v1/sweep", []byte(`not json`))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", rec.Code)
	}

	// Valid submission returns an id.
	rec = do(t, s, "POST", "/v1/sweep", []byte(`{"figure":"fig2a","seeds":2,"base_seed":1,"shards":1}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body: %v %s", err, rec.Body.String())
	}

	// Unknown job ids are 404 on every job-scoped route.
	for _, r := range [][2]string{
		{"GET", "/v1/sweep/zzz"},
		{"GET", "/v1/sweep/zzz/result"},
		{"POST", "/v1/sweep/zzz/lease"},
		{"POST", "/v1/sweep/zzz/renew"},
		{"POST", "/v1/sweep/zzz/complete"},
	} {
		body := []byte(`{}`)
		if r[0] == "GET" {
			body = nil
		}
		if rec := do(t, s, r[0], r[1], body); rec.Code != http.StatusNotFound {
			t.Errorf("%s %s: %d, want 404", r[0], r[1], rec.Code)
		}
	}

	// Result before completion is 409.
	if rec := do(t, s, "GET", "/v1/sweep/"+sub.ID+"/result", nil); rec.Code != http.StatusConflict {
		t.Fatalf("early result: %d", rec.Code)
	}

	// Claim the only shard; a second claim finds nothing (204).
	rec = do(t, s, "POST", "/v1/sweep/"+sub.ID+"/lease", []byte(`{"worker":"a"}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("claim: %d %s", rec.Code, rec.Body.String())
	}
	var lease coord.Lease
	if err := json.Unmarshal(rec.Body.Bytes(), &lease); err != nil || lease.Token == "" {
		t.Fatalf("lease body: %v %s", err, rec.Body.String())
	}
	if rec := do(t, s, "POST", "/v1/sweep/"+sub.ID+"/lease", []byte(`{"worker":"b"}`)); rec.Code != http.StatusNoContent {
		t.Fatalf("claim while leased: %d", rec.Code)
	}
	// Any-job claim route agrees.
	if rec := do(t, s, "POST", "/v1/sweep/lease", []byte(`{"worker":"b"}`)); rec.Code != http.StatusNoContent {
		t.Fatalf("any-job claim while leased: %d", rec.Code)
	}

	// Renew with the right token works, wrong token is 409.
	rec = do(t, s, "POST", "/v1/sweep/"+sub.ID+"/renew",
		[]byte(`{"shard":0,"token":"`+lease.Token+`"}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("renew: %d %s", rec.Code, rec.Body.String())
	}
	rec = do(t, s, "POST", "/v1/sweep/"+sub.ID+"/renew", []byte(`{"shard":0,"token":"bogus"}`))
	if rec.Code != http.StatusConflict {
		t.Fatalf("renew with bogus token: %d", rec.Code)
	}

	// Progress reflects the live lease and the statsz sweep section
	// carries coordinator counters.
	rec = do(t, s, "GET", "/v1/sweep/"+sub.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("progress: %d", rec.Code)
	}
	var p coord.Progress
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("progress body: %v", err)
	}
	if p.State != "running" || p.Shards[0].State != "leased" || p.Shards[0].Worker != "a" {
		t.Fatalf("progress: %+v", p)
	}
	rec = do(t, s, "GET", "/statsz", nil)
	var st statszResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if st.Sweep.JobsSubmitted != 1 || st.Sweep.JobsActive != 1 || st.Sweep.LeasesGranted != 1 || st.Sweep.Renewals != 1 {
		t.Fatalf("statsz sweep section: %+v", st.Sweep)
	}
}
