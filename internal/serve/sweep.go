package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/coord"
)

// Sweep endpoints: the distributed sweep coordinator (internal/coord)
// mounted on the daemon. Unlike solve/verify these never touch the
// worker pool — coordination is cheap mutex-guarded bookkeeping, and
// the actual shard computation happens in external sweepworker
// processes — so sweep traffic can neither occupy nor be shed by the
// solve queue. The final merge runs inline on the HTTP goroutine of
// whichever worker completes the last shard.
//
//	POST /v1/sweep                submit a job            -> {"id": ...}
//	GET  /v1/sweep/{id}           progress snapshot
//	GET  /v1/sweep/{id}/result    merged .dat text (409 until done)
//	POST /v1/sweep/lease          claim a shard of any running job
//	POST /v1/sweep/{id}/lease     claim a shard of one job
//	POST /v1/sweep/{id}/renew     heartbeat a lease
//	POST /v1/sweep/{id}/complete  deliver a shard's cells
//
// Status mapping: 204 no claimable work, 404 unknown job, 409 lease
// lost / result not ready, 410 job finished (per-job claim), 429 too
// many live jobs.

// registerSweep mounts the coordinator routes on the server mux.
func (s *Server) registerSweep() {
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweepSubmit)
	s.mux.HandleFunc("POST /v1/sweep/lease", func(w http.ResponseWriter, r *http.Request) {
		s.handleSweepClaim(w, r, "")
	})
	s.mux.HandleFunc("GET /v1/sweep/{id}", s.handleSweepProgress)
	s.mux.HandleFunc("GET /v1/sweep/{id}/result", s.handleSweepResult)
	s.mux.HandleFunc("POST /v1/sweep/{id}/lease", func(w http.ResponseWriter, r *http.Request) {
		s.handleSweepClaim(w, r, r.PathValue("id"))
	})
	s.mux.HandleFunc("POST /v1/sweep/{id}/renew", s.handleSweepRenew)
	s.mux.HandleFunc("POST /v1/sweep/{id}/complete", s.handleSweepComplete)
}

// readSweepBody reads and decodes a sweep request body into dst.
// Sweep bodies carry whole shard-cell artifacts, so the cap is wider
// than the solve endpoints' maxBodyBytes.
const maxSweepBodyBytes = 64 << 20

func readSweepBody(r *http.Request, dst any) *httpError {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSweepBodyBytes+1))
	if err != nil {
		return &httpError{http.StatusBadRequest, fmt.Sprintf("reading body: %v", err)}
	}
	if len(body) > maxSweepBodyBytes {
		return &httpError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d bytes", maxSweepBodyBytes)}
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return &httpError{http.StatusBadRequest, fmt.Sprintf("decoding JSON: %v", err)}
	}
	return nil
}

// sweepError maps coordinator sentinels onto HTTP statuses.
func (s *Server) sweepError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, coord.ErrUnknownJob):
		s.clientError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, coord.ErrLeaseLost), errors.Is(err, coord.ErrNotDone):
		s.clientError(w, http.StatusConflict, err.Error())
	case errors.Is(err, coord.ErrJobDone):
		s.clientError(w, http.StatusGone, err.Error())
	case errors.Is(err, coord.ErrTooManyJobs):
		s.clientError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, coord.ErrJournal):
		// The durable coordinator could not persist the operation; the
		// client must not believe it happened.
		s.clientError(w, http.StatusInternalServerError, err.Error())
	default:
		s.clientError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec coord.SweepJob
	if herr := readSweepBody(r, &spec); herr != nil {
		s.clientError(w, herr.status, herr.msg)
		return
	}
	id, err := s.coord.Submit(spec)
	if err != nil {
		s.sweepError(w, err)
		return
	}
	s.writeSweepJSON(w, http.StatusOK, struct {
		ID string `json:"id"`
	}{id})
}

func (s *Server) handleSweepProgress(w http.ResponseWriter, r *http.Request) {
	p, err := s.coord.Progress(r.PathValue("id"))
	if err != nil {
		s.sweepError(w, err)
		return
	}
	s.writeSweepJSON(w, http.StatusOK, p)
}

func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	dat, err := s.coord.Result(r.PathValue("id"))
	if err != nil {
		s.sweepError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(dat)
}

func (s *Server) handleSweepClaim(w http.ResponseWriter, r *http.Request, jobID string) {
	var req struct {
		Worker string `json:"worker"`
	}
	if herr := readSweepBody(r, &req); herr != nil {
		s.clientError(w, herr.status, herr.msg)
		return
	}
	lease, err := s.coord.Claim(jobID, req.Worker)
	switch {
	case errors.Is(err, coord.ErrNoWork):
		w.WriteHeader(http.StatusNoContent)
		return
	case err != nil:
		s.sweepError(w, err)
		return
	}
	s.writeSweepJSON(w, http.StatusOK, lease)
}

func (s *Server) handleSweepRenew(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Shard int    `json:"shard"`
		Token string `json:"token"`
	}
	if herr := readSweepBody(r, &req); herr != nil {
		s.clientError(w, herr.status, herr.msg)
		return
	}
	ttlMS, err := s.coord.Renew(r.PathValue("id"), req.Shard, req.Token)
	if err != nil {
		s.sweepError(w, err)
		return
	}
	s.writeSweepJSON(w, http.StatusOK, struct {
		TTLMS int64 `json:"ttl_ms"`
	}{ttlMS})
}

func (s *Server) handleSweepComplete(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Shard  int    `json:"shard"`
		Token  string `json:"token"`
		Worker string `json:"worker"`
		Cells  string `json:"cells"`
	}
	if herr := readSweepBody(r, &req); herr != nil {
		s.clientError(w, herr.status, herr.msg)
		return
	}
	err := s.coord.Complete(r.PathValue("id"), req.Shard, req.Token, req.Worker, []byte(req.Cells))
	switch {
	case errors.Is(err, coord.ErrDuplicate):
		// Benign by the determinism contract: someone else's identical
		// result was already accepted. 200 with a flag, not an error.
		s.writeSweepJSON(w, http.StatusOK, struct {
			Duplicate bool `json:"duplicate"`
		}{true})
		return
	case err != nil:
		s.sweepError(w, err)
		return
	}
	s.writeSweepJSON(w, http.StatusOK, struct {
		Duplicate bool `json:"duplicate"`
	}{false})
}

// writeSweepJSON marshals and writes one OK sweep reply, counting it.
func (s *Server) writeSweepJSON(w http.ResponseWriter, status int, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		s.clientError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.stats.ok.Add(1)
	writeJSON(w, status, append(buf, '\n'))
}
