// Package serve is the allocation daemon behind cmd/serve: it turns the
// repository's near-zero-alloc solve pipeline into a long-running HTTP
// service. A fixed-size pool of workers — each owning a warmed
// per-worker arena (instance.Generator, heuristics.SolveContext with
// SetReuse, stream.Runner), never shared, mirroring the per-worker
// isolation of par.ForEachWorker — drains a bounded admission queue fed
// by the HTTP handlers. When the queue is full the server sheds load
// with 429 + Retry-After instead of building an unbounded backlog;
// per-request deadlines ride the standard context cancellation, checked
// between the portfolio's heuristics; Close drains gracefully (stop
// admitting, finish in-flight, no goroutine outlives the call).
//
// Endpoints:
//
//	POST /v1/solve   instance spec or corpus ref -> best mapping + cost
//	                 + per-heuristic breakdown (deterministic JSON:
//	                 byte-identical at any worker count)
//	POST /v1/verify  instance + mapping -> stream-engine verification
//	POST /v1/sweep   submit a distributed figure sweep; plus lease
//	                 claim/renew/complete and progress/result routes —
//	                 see sweep.go and internal/coord
//	POST /v1/scenario  create a churn session: a live incumbent
//	                 allocation answering dynamic events (application
//	                 arrivals/departures, rate drift) by journaled
//	                 local repair; plus per-session event/status/delete
//	                 routes — see scenario.go and internal/churn
//	GET  /healthz    liveness ("ok")
//	GET  /statsz     JSON counters: requests, rejections, in-flight,
//	                 p50/p99 latency, per-worker arena reuse stats,
//	                 sweep coordinator lease/re-lease/merge counters,
//	                 churn session/outcome/migration counters
//
// Every response the solve and verify endpoints produce is a pure
// function of the request body: workers carry no identity into results,
// randomness is reseeded per request from the request's seed, and
// portfolio ties break in the paper's fixed heuristic order.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/heuristics"
)

// Config tunes the daemon. The zero value serves with one worker per
// CPU, a queue of four waiting requests per worker, a 10s default /
// 60s maximum per-request deadline and a 2000-operator instance cap.
type Config struct {
	// Workers is the number of solve workers (and warmed arenas);
	// <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker; beyond it the server sheds load with 429. <= 0 means
	// 4*Workers.
	QueueDepth int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// <= 0 means 10s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines; <= 0 means 60s.
	MaxTimeout time.Duration
	// MaxOps rejects instances larger than this many operators with
	// 413 before they reach a worker; <= 0 means 2000.
	MaxOps int
	// SweepLeaseTTL is the default lease deadline the sweep coordinator
	// grants workers; <= 0 means the coordinator's 30s default. Jobs may
	// override per submission via lease_ttl_ms.
	SweepLeaseTTL time.Duration
	// CoordStateDir, when set, makes the sweep coordinator durable:
	// job state is journaled + snapshotted there and recovered on the
	// next start (see internal/coord). Empty means in-memory only.
	CoordStateDir string
}

// maxBodyBytes bounds request bodies; an inline 2000-operator instance
// with full holder tables marshals well under this.
const maxBodyBytes = 8 << 20

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxOps <= 0 {
		c.MaxOps = 2000
	}
	return c
}

// Server is the allocation service: an http.Handler backed by the
// worker pool. Create with New, serve via any http.Server, then Close
// to drain. Safe for concurrent use by any number of HTTP goroutines.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *job

	mu       sync.RWMutex // guards draining vs. enqueue races
	draining bool
	wg       sync.WaitGroup // worker goroutines

	stats   counters
	lat     latencyWindow
	workers []workerStats

	// coord schedules distributed sweep jobs (see sweep.go). It owns no
	// goroutines — lease expiry is lazy — so Close only has to flush its
	// durable state (final snapshot + journal fsync), never to drain.
	coord *coord.Coordinator

	// scenarios are the live churn sessions (see scenario.go). Sessions
	// own no goroutines — events run inline on HTTP goroutines — so
	// Close has nothing extra to drain here either.
	scenMu    sync.Mutex
	scenarios map[string]*scenarioSession
	scenSeq   int64

	// testHookJobStart, when set before any request arrives, runs on the
	// worker goroutine at the start of every job; tests use it to hold
	// workers busy deterministically (queue-full and deadline paths).
	testHookJobStart func()
}

// New starts the worker pool and returns the ready-to-serve Server.
// It panics when Config asks for a durable coordinator whose state dir
// cannot be opened — use Open to handle that error.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts the worker pool and returns the ready-to-serve Server.
// Each worker owns its arenas exclusively and warms them immediately,
// so the first requests do not pay cold-buffer growth. When
// Config.CoordStateDir is set, the sweep coordinator recovers any
// journaled job state from it before the first request is served; an
// unreadable or corrupt state dir fails the open rather than silently
// dropping committed jobs.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		workers: make([]workerStats, cfg.Workers),
	}
	s.stats.started = time.Now()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		s.dispatch(w, r, jobSolve)
	})
	s.mux.HandleFunc("POST /v1/verify", func(w http.ResponseWriter, r *http.Request) {
		s.dispatch(w, r, jobVerify)
	})
	var err error
	s.coord, err = coord.Open(coord.Config{
		DefaultLeaseTTL: cfg.SweepLeaseTTL,
		StateDir:        cfg.CoordStateDir,
	})
	if err != nil {
		return nil, fmt.Errorf("opening sweep coordinator state: %w", err)
	}
	s.registerSweep()
	s.registerScenario()
	s.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker(w)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Handler returns the server's route mux (identical to using the
// Server itself as an http.Handler).
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the pool: no further requests are admitted (they get
// 503), queued and in-flight requests finish and are answered, and
// every worker goroutine has exited when Close returns. A durable
// sweep coordinator then takes a final snapshot and fsyncs its
// journal, so a clean shutdown recovers without replay. Safe to call
// more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
	_ = s.coord.Close()
}

// admission is the outcome of trying to hand a job to the pool.
type admission int

const (
	admitted admission = iota
	admitFull
	admitDraining
)

// enqueue offers the job to the pool without blocking. The read lock
// orders it against Close: the queue can only be closed while no
// enqueue is in flight, so sends never hit a closed channel.
func (s *Server) enqueue(jb *job) admission {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return admitDraining
	}
	select {
	case s.queue <- jb:
		return admitted
	default:
		return admitFull
	}
}

// dispatch parses, admits and awaits one solve/verify request. Request
// validation that needs no solver state (JSON shape, heuristic names,
// size caps) happens here on the HTTP goroutine, so malformed traffic
// never occupies a worker.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, kind jobKind) {
	switch kind {
	case jobSolve:
		s.stats.solveReqs.Add(1)
	case jobVerify:
		s.stats.verifyReqs.Add(1)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		s.clientError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	if len(body) > maxBodyBytes {
		s.clientError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d bytes", maxBodyBytes))
		return
	}
	jb := &job{kind: kind, done: make(chan jobResult, 1)}
	var timeoutMS int64
	switch kind {
	case jobSolve:
		req, herr := parseSolveRequest(body, s.cfg.MaxOps)
		if herr != nil {
			s.clientError(w, herr.status, herr.msg)
			return
		}
		jb.solve = req
		timeoutMS = req.TimeoutMS
	case jobVerify:
		req, herr := parseVerifyRequest(body, s.cfg.MaxOps)
		if herr != nil {
			s.clientError(w, herr.status, herr.msg)
			return
		}
		jb.verify = req
		timeoutMS = req.TimeoutMS
	}
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	jb.ctx = ctx

	start := time.Now()
	switch s.enqueue(jb) {
	case admitDraining:
		s.stats.rejectedDrain.Add(1)
		w.Header().Set("Connection", "close")
		s.clientError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case admitFull:
		s.stats.rejectedFull.Add(1)
		w.Header().Set("Retry-After", "1")
		s.clientError(w, http.StatusTooManyRequests, "admission queue full")
		return
	}
	select {
	case res := <-jb.done:
		s.lat.record(time.Since(start))
		if res.status >= 500 {
			s.stats.serverErr.Add(1)
		} else if res.status >= 400 {
			s.stats.clientErr.Add(1)
		} else {
			s.stats.ok.Add(1)
		}
		writeJSON(w, res.status, res.body)
	case <-ctx.Done():
		// The worker may still pick the job up; it will see the expired
		// context, skip the solve and discard its buffered reply.
		s.stats.timeouts.Add(1)
		s.clientError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("deadline exceeded after %s", timeout))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// clientError writes a uniform JSON error envelope and counts it.
func (s *Server) clientError(w http.ResponseWriter, status int, msg string) {
	if status >= 500 {
		s.stats.serverErr.Add(1)
	} else {
		s.stats.clientErr.Add(1)
	}
	body, _ := json.Marshal(errorResponse{Error: msg})
	writeJSON(w, status, append(body, '\n'))
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// errorResponse is the uniform error envelope of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// httpError carries a status+message pair out of request parsing.
type httpError struct {
	status int
	msg    string
}

// heuristicsFor resolves a request's heuristic field: empty or "all"
// means the paper's full portfolio, anything else one named heuristic.
func heuristicsFor(name string) ([]heuristics.Heuristic, *httpError) {
	if name == "" || name == "all" {
		return heuristics.All(), nil
	}
	h, err := heuristics.ByName(name)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	return []heuristics.Heuristic{h}, nil
}
