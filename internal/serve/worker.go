package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/bounds"
	"repro/internal/heuristics"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/stream"
)

// jobKind selects the work a queued job carries.
type jobKind int

const (
	jobSolve jobKind = iota
	jobVerify
)

// job is one admitted request travelling from an HTTP goroutine to a
// worker and back. done is buffered so a worker's reply never blocks
// even when the handler gave up on the deadline.
type job struct {
	ctx    context.Context
	kind   jobKind
	solve  *solveRequest
	verify *verifyRequest
	done   chan jobResult
}

// jobResult is a fully rendered response: workers build the final bytes
// so nothing request-scoped outlives the job on the worker side.
type jobResult struct {
	status int
	body   []byte
}

// CorpusRef names a generated instance by its coordinates: the same
// (n, alpha, seed) triple the canonical corpus and every sweep derive
// instances from (instance.Generate with the paper's defaults), so a
// request can reference a reproducible workload without shipping it.
type CorpusRef struct {
	N     int     `json:"n"`
	Alpha float64 `json:"alpha,omitempty"`
	Seed  int64   `json:"seed"`
}

// SolveRequest is the POST /v1/solve body. Exactly one of Ref and
// Instance must be set. Heuristic is empty or "all" for the full paper
// portfolio, or one heuristic name (see GET /statsz for the list the
// binary was built with). Seed feeds the placement/selection random
// streams; TimeoutMS bounds the request's deadline.
type SolveRequest struct {
	Ref       *CorpusRef         `json:"ref,omitempty"`
	Instance  *instance.Instance `json:"instance,omitempty"`
	Heuristic string             `json:"heuristic,omitempty"`
	Seed      int64              `json:"seed,omitempty"`
	TimeoutMS int64              `json:"timeout_ms,omitempty"`
}

// solveRequest is the parsed, validated form handed to a worker.
type solveRequest struct {
	inst      *instance.Instance // inline instance, nil when ref-derived
	ref       *CorpusRef
	hs        []heuristics.Heuristic
	portfolio bool // true when the full portfolio was requested
	Seed      int64
	TimeoutMS int64
}

// ProcSpec is one purchased processor configuration by catalog indices.
type ProcSpec struct {
	CPU int `json:"cpu"`
	NIC int `json:"nic"`
}

// DownloadSpec pins one basic-object download: processor p (compact
// numbering) downloads object type k from server l.
type DownloadSpec struct {
	Proc   int `json:"proc"`
	Object int `json:"object"`
	Server int `json:"server"`
}

// MappingSpec is the wire form of a complete mapping: the purchased
// processors in compact numbering, the operator->processor assignment
// and the chosen download servers. /v1/solve emits it and /v1/verify
// accepts it back unchanged.
type MappingSpec struct {
	Procs     []ProcSpec     `json:"procs"`
	Assign    []int          `json:"assign"`
	Downloads []DownloadSpec `json:"downloads"`
}

// OutcomeJSON is one heuristic's result in a solve response. Error is
// empty on success; Cost/Procs are zero on failure.
type OutcomeJSON struct {
	Heuristic string  `json:"heuristic"`
	Cost      float64 `json:"cost,omitempty"`
	Procs     int     `json:"procs,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// BestJSON is the cheapest feasible solution of a solve response.
type BestJSON struct {
	Heuristic string      `json:"heuristic"`
	Cost      float64     `json:"cost"`
	Procs     int         `json:"procs"`
	Mapping   MappingSpec `json:"mapping"`
}

// SolveResponse is the POST /v1/solve answer. Outcomes always lists
// every requested heuristic in the paper's fixed order; Best is nil
// when none was feasible. The body is a pure function of the request:
// identical bytes at any worker count.
type SolveResponse struct {
	Feasible   bool          `json:"feasible"`
	Best       *BestJSON     `json:"best,omitempty"`
	LowerBound float64       `json:"lower_bound"`
	Outcomes   []OutcomeJSON `json:"outcomes"`
}

// VerifyRequest is the POST /v1/verify body: the instance (by ref or
// inline, as in SolveRequest) plus the mapping to execute on the
// stream engine. Results optionally overrides the simulated root
// results (default 120).
type VerifyRequest struct {
	Ref       *CorpusRef         `json:"ref,omitempty"`
	Instance  *instance.Instance `json:"instance,omitempty"`
	Mapping   *MappingSpec       `json:"mapping"`
	Results   int                `json:"results,omitempty"`
	TimeoutMS int64              `json:"timeout_ms,omitempty"`
}

type verifyRequest struct {
	inst      *instance.Instance
	ref       *CorpusRef
	spec      MappingSpec
	Results   int
	TimeoutMS int64
}

// VerifyResponse is the POST /v1/verify answer: the stream engine's
// measurement plus the pass verdict (measured throughput within 10% of
// the instance's QoS target, matching core.Verify). Simulated time is
// virtual, so the body is deterministic like SolveResponse's.
type VerifyResponse struct {
	OK         bool    `json:"ok"`
	Throughput float64 `json:"throughput"`
	Target     float64 `json:"target"`
	Analytic   float64 `json:"analytic"`
	Completed  int     `json:"completed"`
	SimTime    float64 `json:"sim_time"`
	Events     int64   `json:"events"`
}

// decodeStrict unmarshals JSON rejecting unknown top-level fields, so
// typo'd requests fail loudly instead of solving with defaults.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// checkInstanceSpec validates the shared ref-or-inline instance choice.
func checkInstanceSpec(ref *CorpusRef, inst *instance.Instance, maxOps int) *httpError {
	switch {
	case ref == nil && inst == nil:
		return &httpError{http.StatusBadRequest, "one of ref and instance is required"}
	case ref != nil && inst != nil:
		return &httpError{http.StatusBadRequest, "ref and instance are mutually exclusive"}
	case ref != nil:
		if ref.N < 1 {
			return &httpError{http.StatusBadRequest, fmt.Sprintf("ref.n must be >= 1, got %d", ref.N)}
		}
		if ref.N > maxOps {
			return &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("ref.n %d exceeds the server's limit of %d operators", ref.N, maxOps)}
		}
	default:
		if err := inst.Validate(); err != nil {
			return &httpError{http.StatusBadRequest, fmt.Sprintf("invalid instance: %v", err)}
		}
		if n := inst.Tree.NumOps(); n > maxOps {
			return &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("instance has %d operators, exceeding the server's limit of %d", n, maxOps)}
		}
		// The derived per-operator tables are json:"-", so an inline
		// instance arrives without them; rebuild before any solve.
		inst.Refresh()
	}
	return nil
}

func parseSolveRequest(body []byte, maxOps int) (*solveRequest, *httpError) {
	var wire SolveRequest
	if err := decodeStrict(body, &wire); err != nil {
		return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("parsing request: %v", err)}
	}
	if herr := checkInstanceSpec(wire.Ref, wire.Instance, maxOps); herr != nil {
		return nil, herr
	}
	hs, herr := heuristicsFor(wire.Heuristic)
	if herr != nil {
		return nil, herr
	}
	return &solveRequest{
		inst:      wire.Instance,
		ref:       wire.Ref,
		hs:        hs,
		portfolio: len(hs) > 1,
		Seed:      wire.Seed,
		TimeoutMS: wire.TimeoutMS,
	}, nil
}

func parseVerifyRequest(body []byte, maxOps int) (*verifyRequest, *httpError) {
	var wire VerifyRequest
	if err := decodeStrict(body, &wire); err != nil {
		return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("parsing request: %v", err)}
	}
	if herr := checkInstanceSpec(wire.Ref, wire.Instance, maxOps); herr != nil {
		return nil, herr
	}
	if wire.Mapping == nil {
		return nil, &httpError{http.StatusBadRequest, "mapping is required"}
	}
	if wire.Results < 0 {
		return nil, &httpError{http.StatusBadRequest, "results must be >= 0"}
	}
	return &verifyRequest{
		inst:      wire.Instance,
		ref:       wire.Ref,
		spec:      *wire.Mapping,
		Results:   wire.Results,
		TimeoutMS: wire.TimeoutMS,
	}, nil
}

// env is one worker's private arena set, mirroring the sweep engine's
// WorkerEnv: an instance generator, a solve context on its mapping
// arena, a dedicated mapping for verify reconstruction and a stream
// runner. Never shared; owned by exactly one worker goroutine.
type env struct {
	gen    instance.Generator
	sc     heuristics.SolveContext
	vmap   mapping.Mapping
	runner stream.Runner
	warmed bool
}

func newEnv() *env {
	e := &env{}
	e.sc.SetReuse(true)
	return e
}

// warm exercises every arena once on a small pinned instance so the
// first real request pays no cold-buffer growth: a generate, a full
// solve and a short simulation.
func (e *env) warm() {
	in := e.gen.Generate(instance.Config{NumOps: 8, Alpha: 0.9}, 1)
	res, err := e.sc.Solve(in, heuristics.SubtreeBottomUp{}, heuristics.Options{})
	if err == nil {
		e.runner.Simulate(res.Mapping, stream.Options{Results: 30})
	}
	e.warmed = true
}

// worker is one pool goroutine: it owns env w exclusively and drains
// the admission queue until Close closes it.
func (s *Server) worker(w int) {
	defer s.wg.Done()
	e := newEnv()
	e.warm()
	ws := &s.workers[w]
	for jb := range s.queue {
		s.stats.inFlight.Add(1)
		jb.done <- s.process(e, ws, jb)
		s.stats.inFlight.Add(-1)
	}
}

// process runs one job on the worker's env. Panics become 500s so a
// poisoned request cannot take the worker (and its arena) down.
func (s *Server) process(e *env, ws *workerStats, jb *job) (res jobResult) {
	defer func() {
		if r := recover(); r != nil {
			res = errorResult(http.StatusInternalServerError, fmt.Sprintf("internal error: %v", r))
		}
	}()
	if s.testHookJobStart != nil {
		s.testHookJobStart()
	}
	ws.jobs.Add(1)
	if jb.ctx.Err() != nil {
		// Expired while queued: the handler has already answered 504;
		// this reply goes to the buffered channel and is dropped.
		return errorResult(http.StatusGatewayTimeout, "deadline exceeded in queue")
	}
	switch jb.kind {
	case jobSolve:
		return e.runSolve(ws, jb.ctx, jb.solve)
	default:
		return e.runVerify(ws, jb.verify)
	}
}

func errorResult(status int, msg string) jobResult {
	body, _ := json.Marshal(errorResponse{Error: msg})
	return jobResult{status: status, body: append(body, '\n')}
}

// instanceFor materializes the request's instance: inline ones pass
// through, refs are generated on the worker's arena (valid until its
// next generate — i.e. for the rest of this job, which renders the
// response before the worker moves on).
func (e *env) instanceFor(ref *CorpusRef, inline *instance.Instance) *instance.Instance {
	if inline != nil {
		return inline
	}
	return e.gen.Generate(instance.Config{NumOps: ref.N, Alpha: ref.Alpha}, ref.Seed)
}

// solveOnce runs one heuristic on the worker's arena, counting stats.
func (e *env) solveOnce(ws *workerStats, in *instance.Instance, h heuristics.Heuristic, seed int64) (*heuristics.Result, error) {
	ws.solves.Add(1)
	if e.warmed {
		ws.arenaReuses.Add(1)
	}
	return e.sc.Solve(in, h, heuristics.Options{Seed: seed})
}

// runSolve executes the portfolio serially on this worker's arena: one
// pass over the requested heuristics for the breakdown, then a re-solve
// of the winner to materialize its mapping for rendering (the arena
// holds only the latest solution). Ties break in the paper's fixed
// heuristic order, so the response never depends on scheduling.
func (e *env) runSolve(ws *workerStats, ctx context.Context, req *solveRequest) jobResult {
	in := e.instanceFor(req.ref, req.inst)
	resp := SolveResponse{
		LowerBound: bounds.CostLowerBound(in),
		Outcomes:   make([]OutcomeJSON, 0, len(req.hs)),
	}
	bestIdx, bestCost := -1, 0.0
	var bestRes *heuristics.Result
	for i, h := range req.hs {
		if ctx.Err() != nil {
			return errorResult(http.StatusGatewayTimeout, "deadline exceeded mid-portfolio")
		}
		res, err := e.solveOnce(ws, in, h, req.Seed)
		if err != nil {
			resp.Outcomes = append(resp.Outcomes, OutcomeJSON{Heuristic: h.Name(), Error: err.Error()})
			continue
		}
		resp.Outcomes = append(resp.Outcomes, OutcomeJSON{
			Heuristic: h.Name(), Cost: res.Cost, Procs: res.Procs,
		})
		if bestIdx < 0 || res.Cost < bestCost {
			bestIdx, bestCost, bestRes = i, res.Cost, res
		}
	}
	if bestIdx >= 0 {
		if req.portfolio {
			// The arena was overwritten by later heuristics; re-solving the
			// winner is deterministic and allocation-free.
			var err error
			bestRes, err = e.solveOnce(ws, in, req.hs[bestIdx], req.Seed)
			if err != nil {
				return errorResult(http.StatusInternalServerError,
					fmt.Sprintf("re-solving winner %s: %v", req.hs[bestIdx].Name(), err))
			}
		}
		resp.Feasible = true
		resp.Best = &BestJSON{
			Heuristic: bestRes.Heuristic,
			Cost:      bestRes.Cost,
			Procs:     bestRes.Procs,
			Mapping:   buildMappingSpec(bestRes.Mapping),
		}
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		return errorResult(http.StatusInternalServerError, fmt.Sprintf("encoding response: %v", err))
	}
	return jobResult{status: http.StatusOK, body: append(body, '\n')}
}

// runVerify rebuilds the mapping on the worker's verify arena and
// executes it on the stream engine.
func (e *env) runVerify(ws *workerStats, req *verifyRequest) jobResult {
	in := e.instanceFor(req.ref, req.inst)
	if herr := rebuildMapping(&e.vmap, in, &req.spec); herr != nil {
		return errorResult(herr.status, herr.msg)
	}
	ws.sims.Add(1)
	rep, err := e.runner.Simulate(&e.vmap, stream.Options{Results: req.Results})
	if err != nil {
		return errorResult(http.StatusUnprocessableEntity, fmt.Sprintf("simulation failed: %v", err))
	}
	resp := VerifyResponse{
		OK:         rep.Throughput >= 0.9*in.Rho,
		Throughput: rep.Throughput,
		Target:     in.Rho,
		Analytic:   rep.Analytic,
		Completed:  rep.Completed,
		SimTime:    rep.SimTime,
		Events:     rep.Events,
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		return errorResult(http.StatusInternalServerError, fmt.Sprintf("encoding response: %v", err))
	}
	return jobResult{status: http.StatusOK, body: append(body, '\n')}
}

// buildMappingSpec renders a solved mapping in compact processor
// numbering with downloads sorted by (proc, object) — a canonical form,
// so equal mappings render to equal bytes.
func buildMappingSpec(m *mapping.Mapping) MappingSpec {
	spec := MappingSpec{
		Procs:     []ProcSpec{},
		Assign:    make([]int, len(m.Assign)),
		Downloads: []DownloadSpec{},
	}
	compact := make([]int, len(m.Procs))
	for p := range m.Procs {
		compact[p] = -1
		if m.Procs[p].Alive {
			compact[p] = len(spec.Procs)
			spec.Procs = append(spec.Procs, ProcSpec{CPU: m.Procs[p].Config.CPU, NIC: m.Procs[p].Config.NIC})
		}
	}
	for op, p := range m.Assign {
		if p == mapping.Unassigned {
			spec.Assign[op] = -1
			continue
		}
		spec.Assign[op] = compact[p]
	}
	var objs []int
	for p := range m.Procs {
		if !m.Procs[p].Alive || len(m.DL[p]) == 0 {
			continue
		}
		objs = objs[:0]
		for k := range m.DL[p] {
			objs = append(objs, k)
		}
		sort.Ints(objs)
		for _, k := range objs {
			spec.Downloads = append(spec.Downloads, DownloadSpec{
				Proc: compact[p], Object: k, Server: m.DL[p][k],
			})
		}
	}
	return spec
}

// rebuildMapping reconstructs a MappingSpec onto the worker's verify
// arena and validates it against the full steady-state constraint
// system. Index errors are 400s; a well-formed but infeasible mapping
// is a 422.
func rebuildMapping(arena *mapping.Mapping, in *instance.Instance, spec *MappingSpec) *httpError {
	cat := in.Platform.Catalog
	arena.Reset(in)
	for i, pc := range spec.Procs {
		if pc.CPU < 0 || pc.CPU >= len(cat.CPUs) || pc.NIC < 0 || pc.NIC >= len(cat.NICs) {
			return &httpError{http.StatusBadRequest,
				fmt.Sprintf("proc %d: config (cpu=%d, nic=%d) outside the catalog", i, pc.CPU, pc.NIC)}
		}
		arena.Buy(platform.Config{CPU: pc.CPU, NIC: pc.NIC})
	}
	if len(spec.Assign) != in.Tree.NumOps() {
		return &httpError{http.StatusBadRequest,
			fmt.Sprintf("assign lists %d operators, instance has %d", len(spec.Assign), in.Tree.NumOps())}
	}
	for op, p := range spec.Assign {
		if p < 0 || p >= len(spec.Procs) {
			return &httpError{http.StatusBadRequest,
				fmt.Sprintf("operator %d assigned to invalid processor %d", op, p)}
		}
		arena.Place(op, p)
	}
	for i, d := range spec.Downloads {
		if d.Proc < 0 || d.Proc >= len(spec.Procs) {
			return &httpError{http.StatusBadRequest, fmt.Sprintf("download %d: invalid proc %d", i, d.Proc)}
		}
		if d.Object < 0 || d.Object >= in.NumTypes {
			return &httpError{http.StatusBadRequest, fmt.Sprintf("download %d: invalid object %d", i, d.Object)}
		}
		if d.Server < 0 || d.Server >= len(in.Platform.Servers) {
			return &httpError{http.StatusBadRequest, fmt.Sprintf("download %d: invalid server %d", i, d.Server)}
		}
		arena.SelectServer(d.Proc, d.Object, d.Server)
	}
	if err := arena.Validate(); err != nil {
		return &httpError{http.StatusUnprocessableEntity, fmt.Sprintf("mapping infeasible: %v", err)}
	}
	return nil
}
