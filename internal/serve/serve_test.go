package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/instance"
)

// -update regenerates the committed golden responses (shared with the
// serve-smoke CI script): go test ./internal/serve -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// do posts body (or GETs when body is nil) against the server's handler.
func do(t *testing.T, s *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == nil {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, bytes.NewReader(body))
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v (run with -update to create)", path, err)
	}
	return data
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	rec := do(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

// TestSolveGolden pins the solve endpoint byte-for-byte against the
// committed golden (the same file the serve-smoke CI script diffs
// against a live daemon), so the response can never drift between the
// in-process handler and the HTTP surface.
func TestSolveGolden(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	reqBody := readFile(t, filepath.Join("testdata", "solve_request.json"))
	rec := do(t, s, "POST", "/v1/solve", reqBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve = %d: %s", rec.Code, rec.Body.String())
	}
	golden := filepath.Join("testdata", "solve_golden.json")
	if *update {
		if err := os.WriteFile(golden, rec.Body.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if want := readFile(t, golden); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("solve response differs from %s:\n got: %s\nwant: %s", golden, rec.Body.Bytes(), want)
	}
}

// TestVerifyGolden closes the loop: the committed verify request embeds
// the mapping from the solve golden, and the stream engine's verdict is
// pinned byte-for-byte too.
func TestVerifyGolden(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	reqBody := readFile(t, filepath.Join("testdata", "verify_request.json"))
	rec := do(t, s, "POST", "/v1/verify", reqBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("verify = %d: %s", rec.Code, rec.Body.String())
	}
	golden := filepath.Join("testdata", "verify_golden.json")
	if *update {
		if err := os.WriteFile(golden, rec.Body.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if want := readFile(t, golden); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("verify response differs from %s:\n got: %s\nwant: %s", golden, rec.Body.Bytes(), want)
	}
	var resp VerifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("golden mapping failed verification: %+v", resp)
	}
}

// TestVerifyRequestMatchesSolveGolden pins the testdata consistency:
// the committed verify request must carry exactly the mapping the solve
// golden reports, so regenerating one without the other fails loudly.
func TestVerifyRequestMatchesSolveGolden(t *testing.T) {
	var solveResp SolveResponse
	if err := json.Unmarshal(readFile(t, filepath.Join("testdata", "solve_golden.json")), &solveResp); err != nil {
		t.Fatal(err)
	}
	var verifyReq VerifyRequest
	if err := json.Unmarshal(readFile(t, filepath.Join("testdata", "verify_request.json")), &verifyReq); err != nil {
		t.Fatal(err)
	}
	if solveResp.Best == nil || verifyReq.Mapping == nil {
		t.Fatal("goldens incomplete")
	}
	got, _ := json.Marshal(verifyReq.Mapping)
	want, _ := json.Marshal(&solveResp.Best.Mapping)
	if !bytes.Equal(got, want) {
		t.Fatalf("verify_request.json mapping drifted from solve_golden.json:\n got: %s\nwant: %s", got, want)
	}
}

// TestSolveDeterministicAcrossWorkerCounts is the worker-count
// determinism pin: the same request body must produce byte-identical
// responses at 1, 2 and 8 workers, repeatedly, under concurrency.
func TestSolveDeterministicAcrossWorkerCounts(t *testing.T) {
	reqs := [][]byte{
		[]byte(`{"ref":{"n":40,"alpha":0.9,"seed":7}}`),
		[]byte(`{"ref":{"n":25,"alpha":1.1,"seed":3},"heuristic":"Comp-Greedy","seed":5}`),
		[]byte(`{"ref":{"n":60,"alpha":1.7,"seed":2}}`), // infeasible cells answer deterministically too
	}
	var want [][]byte
	{
		s := newTestServer(t, Config{Workers: 1})
		for _, body := range reqs {
			rec := do(t, s, "POST", "/v1/solve", body)
			if rec.Code != http.StatusOK {
				t.Fatalf("workers=1: %d: %s", rec.Code, rec.Body.String())
			}
			want = append(want, rec.Body.Bytes())
		}
	}
	for _, workers := range []int{2, 8} {
		s := newTestServer(t, Config{Workers: workers, QueueDepth: 64})
		// Hammer every request a few times concurrently so jobs really
		// spread over distinct workers and reused arenas.
		var wg sync.WaitGroup
		errs := make(chan string, len(reqs)*6)
		for round := 0; round < 6; round++ {
			for i, body := range reqs {
				wg.Add(1)
				go func(i int, body []byte) {
					defer wg.Done()
					rec := do(t, s, "POST", "/v1/solve", body)
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("workers=%d req %d: status %d", workers, i, rec.Code)
						return
					}
					if !bytes.Equal(rec.Body.Bytes(), want[i]) {
						errs <- fmt.Sprintf("workers=%d req %d: body differs from workers=1", workers, i)
					}
				}(i, body)
			}
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}

func TestSolveInlineInstance(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// Round-trip an instance through its JSON form and solve it inline;
	// the response must match the equivalent ref-derived request.
	recRef := do(t, s, "POST", "/v1/solve", []byte(`{"ref":{"n":20,"alpha":0.9,"seed":4}}`))
	if recRef.Code != http.StatusOK {
		t.Fatalf("ref solve: %d: %s", recRef.Code, recRef.Body.String())
	}
	inst := genInstanceJSON(t, 20, 0.9, 4)
	inline := []byte(`{"instance":` + string(inst) + `}`)
	recInline := do(t, s, "POST", "/v1/solve", inline)
	if recInline.Code != http.StatusOK {
		t.Fatalf("inline solve: %d: %s", recInline.Code, recInline.Body.String())
	}
	if !bytes.Equal(recRef.Body.Bytes(), recInline.Body.Bytes()) {
		t.Fatalf("inline instance solve differs from ref solve:\n ref: %s\n inl: %s",
			recRef.Body.Bytes(), recInline.Body.Bytes())
	}
}

func TestSolveBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxOps: 100})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"both ref and instance", `{"ref":{"n":5,"seed":1},"instance":{}}`, http.StatusBadRequest},
		{"malformed JSON", `{"ref":`, http.StatusBadRequest},
		{"unknown field", `{"ref":{"n":5,"seed":1},"heuristics":"all"}`, http.StatusBadRequest},
		{"unknown heuristic", `{"ref":{"n":5,"seed":1},"heuristic":"Simulated-Annealing"}`, http.StatusBadRequest},
		{"n too small", `{"ref":{"n":0,"seed":1}}`, http.StatusBadRequest},
		{"n over cap", `{"ref":{"n":101,"seed":1}}`, http.StatusRequestEntityTooLarge},
		{"get method", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		var rec *httptest.ResponseRecorder
		if tc.name == "get method" {
			rec = do(t, s, "GET", "/v1/solve", nil)
		} else {
			rec = do(t, s, "POST", "/v1/solve", []byte(tc.body))
		}
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}
}

func TestVerifyRejectsInvalidMapping(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// Structurally broken: operator assigned to a processor that does
	// not exist.
	bad := `{"ref":{"n":5,"alpha":0.9,"seed":1},"mapping":{"procs":[{"cpu":4,"nic":4}],"assign":[0,0,0,0,9],"downloads":[]}}`
	rec := do(t, s, "POST", "/v1/verify", []byte(bad))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid proc index: %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
	// Well-formed but infeasible: everything on the weakest processor
	// with no downloads selected.
	weak := `{"ref":{"n":20,"alpha":0.9,"seed":1},"mapping":{"procs":[{"cpu":0,"nic":0}],"assign":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],"downloads":[]}}`
	rec = do(t, s, "POST", "/v1/verify", []byte(weak))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible mapping: %d, want 422 (%s)", rec.Code, rec.Body.String())
	}
}

// TestQueueFullSheds429 pins the admission contract: with the single
// worker held busy and the queue full, the next request is shed
// immediately with 429 + Retry-After rather than waiting.
func TestQueueFullSheds429(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	started := make(chan struct{}, 8)
	s.testHookJobStart = func() {
		started <- struct{}{}
		<-release
	}
	defer once.Do(func() { close(release) })

	body := []byte(`{"ref":{"n":5,"alpha":0.9,"seed":1}}`)
	type result struct{ code int }
	results := make(chan result, 2)
	post := func() {
		rec := do(t, s, "POST", "/v1/solve", body)
		results <- result{rec.Code}
	}
	go post() // occupies the worker
	<-started // worker is now provably busy
	go post() // occupies the queue's single slot
	// The queued job never reaches the hook; give the enqueue a moment.
	waitFor(t, func() bool { return len(s.queue) == 1 })

	rec := do(t, s, "POST", "/v1/solve", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429 (%s)", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if got := s.stats.rejectedFull.Load(); got != 1 {
		t.Fatalf("rejected_429 = %d, want 1", got)
	}

	once.Do(func() { close(release) })
	for i := 0; i < 2; i++ {
		if r := <-results; r.code != http.StatusOK {
			t.Fatalf("held request %d finished with %d", i, r.code)
		}
	}
}

// TestDeadlineExceeded covers both timeout paths: a request whose
// deadline expires while the worker is busy (answered 504 by the
// handler) and one that expires before a worker picks it up (the worker
// skips the solve).
func TestDeadlineExceeded(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	started := make(chan struct{}, 8)
	s.testHookJobStart = func() {
		started <- struct{}{}
		<-release
	}
	defer once.Do(func() { close(release) })

	slow := []byte(`{"ref":{"n":5,"alpha":0.9,"seed":1}}`)
	go func() {
		do(t, s, "POST", "/v1/solve", slow)
	}()
	<-started

	// This request can only wait in the queue; its 1ms budget expires
	// there and the handler must answer 504 without a worker.
	rec := do(t, s, "POST", "/v1/solve", []byte(`{"ref":{"n":5,"alpha":0.9,"seed":1},"timeout_ms":1}`))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("queued timeout: status %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	if got := s.stats.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}
	once.Do(func() { close(release) })
	// The worker eventually drains the expired job and skips its solve;
	// the skip is visible as a job without a solve.
	waitFor(t, func() bool {
		return s.workers[0].jobs.Load() >= 2
	})
}

// TestDrainGoroutineLeak is the graceful-drain pin, patterned on the
// par/core leak tests: requests complete, Close returns, and no pool or
// handler goroutine survives.
func TestDrainGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 4, QueueDepth: 8})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"ref":{"n":20,"alpha":0.9,"seed":%d}}`, i%4+1)
			do(t, s, "POST", "/v1/solve", []byte(body))
		}(i)
	}
	wg.Wait()
	s.Close()
	s.Close() // idempotent

	// Requests arriving after Close are refused, not queued.
	rec := do(t, s, "POST", "/v1/solve", []byte(`{"ref":{"n":5,"seed":1}}`))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", rec.Code)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatszCounters drives every counter class and checks the JSON.
func TestStatszCounters(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	if rec := do(t, s, "POST", "/v1/solve", []byte(`{"ref":{"n":20,"alpha":0.9,"seed":1}}`)); rec.Code != http.StatusOK {
		t.Fatalf("solve: %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/solve", []byte(`not json`)); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad solve: %d", rec.Code)
	}
	rec := do(t, s, "GET", "/statsz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz: %d", rec.Code)
	}
	var st statszResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("statsz JSON: %v\n%s", err, rec.Body.String())
	}
	if st.Workers != 2 || st.QueueDepth != 4 {
		t.Fatalf("statsz config echo: %+v", st)
	}
	if st.SolveRequests != 2 || st.OK != 1 || st.ClientErrors != 1 {
		t.Fatalf("statsz counters: %+v", st)
	}
	if st.Latency.Count != 1 || st.Latency.P50MS <= 0 {
		t.Fatalf("statsz latency: %+v", st.Latency)
	}
	var jobs, reuses int64
	for _, w := range st.PerWorker {
		jobs += w.Jobs
		reuses += w.ArenaReuses
	}
	if jobs != 1 || reuses < 1 {
		t.Fatalf("statsz per-worker: %+v", st.PerWorker)
	}
}

// waitFor polls cond with a deadline; used where the interesting state
// is reached asynchronously but promptly.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// genInstanceJSON produces the JSON form of the same generated
// instance a {n, alpha, seed} ref resolves to on the server.
func genInstanceJSON(t *testing.T, n int, alpha float64, seed int64) []byte {
	t.Helper()
	var gen instance.Generator
	in := gen.Generate(instance.Config{NumOps: n, Alpha: alpha}, seed)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
