package heuristics

import (
	"fmt"

	"repro/internal/mapping"
)

// Downgrade replaces every purchased processor with the cheapest catalog
// configuration that still sustains its compute load (constraint (1)) and
// NIC load (constraint (2)). Loads are unchanged by the swap, so a
// feasible mapping stays feasible; the paper runs this as a third step
// after server selection, except under CONSTR-HOM where there is a single
// configuration anyway.
func Downgrade(m *mapping.Mapping) error {
	cat := m.Inst.Platform.Catalog
	for p := range m.Procs {
		if !m.Procs[p].Alive {
			continue
		}
		cfg, ok := cat.CheapestFitting(m.ComputeLoad(p), m.NICLoad(p))
		if !ok {
			// Cannot happen for a feasible mapping: the current
			// configuration itself fits.
			return fmt.Errorf("downgrade: no configuration sustains processor %d", p)
		}
		if cat.Cost(cfg) <= cat.Cost(m.Procs[p].Config) {
			// Through SetConfig so the swap lands in the move journal when
			// one is recording (identical write otherwise).
			m.SetConfig(p, cfg)
		}
	}
	return nil
}
