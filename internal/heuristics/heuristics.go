// Package heuristics implements the six polynomial operator-placement
// heuristics of Benoit et al. (Section 4) together with the shared server
// selection and downgrade steps.
//
// Every heuristic works in the paper's two (plus one) steps:
//
//  1. operator placement: decide how many processors to acquire and which
//     operators run where; most heuristics buy only the most powerful
//     configuration at this stage,
//  2. server selection: decide from which data server each processor
//     downloads each basic object it needs,
//  3. downgrade: replace each purchased processor with the cheapest
//     configuration that still sustains its compute and NIC load.
//
// Solve runs the full pipeline and independently validates the result, so
// a returned Result is always a feasible mapping.
package heuristics

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/apptree"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/rng"
)

// ErrInfeasible is wrapped by all placement/selection failures, so callers
// can distinguish "no mapping found" from programming errors.
var ErrInfeasible = errors.New("no feasible mapping found")

// Heuristic is an operator-placement strategy.
type Heuristic interface {
	// Name returns the paper's name for the heuristic.
	Name() string
	// Place assigns every operator of m.Inst to purchased processors on
	// m — handed in empty (mapping.New or an arena Reset) — or fails
	// with an error wrapping ErrInfeasible. Taking the mapping rather
	// than building one lets the solve pipeline thread a caller-owned
	// arena through repeated solves.
	Place(m *mapping.Mapping, r *rand.Rand) error
}

// All returns the six paper heuristics in the order of the paper's plots.
func All() []Heuristic {
	return []Heuristic{
		Random{},
		CompGreedy{},
		CommGreedy{},
		SubtreeBottomUp{},
		ObjectGrouping{},
		ObjectAvailability{},
	}
}

// ByName returns the heuristic with the given Name. Besides the six
// paper heuristics it recognizes the repository's A3 ablation variant
// "Subtree-bottom-up-nofold", so name-keyed surfaces (the public sweep
// Grid, CLIs) can address every heuristic the experiment harness plots.
func ByName(name string) (Heuristic, error) {
	for _, h := range All() {
		if h.Name() == name {
			return h, nil
		}
	}
	if nofold := (SubtreeBottomUp{DisableFold: true}); name == nofold.Name() {
		return nofold, nil
	}
	return nil, fmt.Errorf("heuristics: unknown heuristic %q", name)
}

// ServerSelectionMode selects the second pipeline step.
type ServerSelectionMode int

const (
	// SelectThreeLoop is the paper's sophisticated three-loop selection.
	SelectThreeLoop ServerSelectionMode = iota
	// SelectRandom associates a random capacity-respecting server with
	// each download (used by the Random heuristic and the A2 ablation).
	SelectRandom
)

// Options tunes the Solve pipeline.
type Options struct {
	Selection     ServerSelectionMode
	SkipDowngrade bool  // A1 ablation: keep the most expensive configurations
	Seed          int64 // randomness for Random placement / random selection
}

// Result is a validated solution.
type Result struct {
	Heuristic string
	Mapping   *mapping.Mapping
	Cost      float64
	Procs     int // number of purchased processors
}

// SolveContext owns the reusable scratch threaded through repeated Solve
// calls: the server-selection Selector and, when the caller opts in with
// SetReuse, an arena Mapping, a recycled Result and reseedable random
// streams. A SolveContext is not safe for concurrent use: sweep engines
// hold one per worker.
type SolveContext struct {
	sel Selector

	// Caller-owned arena (SetReuse(true)): repeated solves rebuild the
	// mapping in place instead of allocating a fresh one per call.
	reuse        bool
	arena        mapping.Mapping
	res          Result
	prand, srand *rand.Rand // placement / selection streams, reseeded per solve
}

// NewSolveContext returns an empty reusable solve context.
func NewSolveContext() *SolveContext { return &SolveContext{} }

// SetReuse switches the context onto its caller-owned mapping arena.
// With reuse on, Solve rebuilds one arena Mapping in place
// (mapping.Reset) and returns a context-owned Result — both are valid
// only until the next Solve on this context, so callers that keep a
// mapping must Clone it. Solutions are bit-for-bit identical to the
// allocating path; only the storage ownership changes. The package-level
// Solve never enables reuse: its results escape to unknown callers.
func (c *SolveContext) SetReuse(on bool) { c.reuse = on }

// solveCtxPool backs the package-level Solve so one-shot callers reuse
// scratch across calls too (the same trick stream.Simulate plays with
// its pooled runners).
var solveCtxPool = sync.Pool{New: func() any { return NewSolveContext() }}

// Solve runs placement, server selection and downgrade for one heuristic
// and validates the outcome, borrowing a pooled SolveContext.
func Solve(in *instance.Instance, h Heuristic, opts Options) (*Result, error) {
	c := solveCtxPool.Get().(*SolveContext)
	res, err := c.Solve(in, h, opts)
	solveCtxPool.Put(c)
	return res, err
}

// Solve runs the full pipeline on the context's reusable scratch. With
// SetReuse(true) the mapping is built in the context's arena and the
// returned Result is context-owned (valid until the next Solve); the
// solution itself is identical either way.
func (c *SolveContext) Solve(in *instance.Instance, h Heuristic, opts Options) (*Result, error) {
	if err := Precheck(in); err != nil {
		return nil, err
	}
	var m *mapping.Mapping
	var r *rand.Rand
	if c.reuse {
		m = &c.arena
		m.Reset(in)
		if c.prand == nil {
			c.prand, c.srand = rng.New(0), rng.New(0)
		}
		rng.Reseed2(c.prand, opts.Seed, "heuristic:", h.Name())
		r = c.prand
	} else {
		m = mapping.New(in)
		r = rng.Derive(opts.Seed, "heuristic:"+h.Name())
	}
	if err := h.Place(m, r); err != nil {
		return nil, fmt.Errorf("%s placement: %w", h.Name(), err)
	}
	if !m.Complete() {
		return nil, fmt.Errorf("%s placement left operators unassigned: %w", h.Name(), ErrInfeasible)
	}
	sellEmpty(m)

	selection := opts.Selection
	if _, isRandom := h.(Random); isRandom {
		// The paper pairs the Random placement with random selection.
		selection = SelectRandom
	}
	var err error
	switch selection {
	case SelectRandom:
		sr := c.srand
		if c.reuse {
			rng.Reseed2(sr, opts.Seed, "selection:", h.Name())
		} else {
			sr = rng.Derive(opts.Seed, "selection:"+h.Name())
		}
		err = c.sel.Random(m, sr)
	default:
		err = c.sel.ThreeLoop(m)
	}
	c.sel.release()
	if err != nil {
		return nil, fmt.Errorf("%s server selection: %w", h.Name(), err)
	}

	if !opts.SkipDowngrade && !in.Platform.Catalog.Homogeneous() {
		if err := Downgrade(m); err != nil {
			return nil, fmt.Errorf("%s downgrade: %w", h.Name(), err)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s produced an invalid mapping: %v", h.Name(), err)
	}
	res := &Result{}
	if c.reuse {
		res = &c.res
	}
	*res = Result{
		Heuristic: h.Name(),
		Mapping:   m,
		Cost:      m.Cost(),
		Procs:     m.NumAlive(),
	}
	return res, nil
}

// Precheck fails fast on instances no allocation can satisfy: an operator
// whose work exceeds the fastest processor, a needed object whose download
// rate exceeds the server links or every holder's NIC, or a download load
// that cannot fit the widest processor NIC.
func Precheck(in *instance.Instance) error {
	cat := in.Platform.Catalog
	best := cat.MostExpensive()
	maxSpeed := cat.SpeedUnits(best)
	maxNIC := cat.BandwidthMBps(best)
	for i, w := range in.W {
		if in.Rho*w > maxSpeed {
			return fmt.Errorf("operator %d needs %.0f units/s > fastest processor %.0f: %w",
				i, in.Rho*w, maxSpeed, ErrInfeasible)
		}
	}
	for _, k := range in.Tree.ObjectSet() {
		rate := in.Rate(k)
		if rate > in.Platform.ServerLinkMBps {
			return fmt.Errorf("object %d rate %.1f MB/s exceeds server links %.1f: %w",
				k, rate, in.Platform.ServerLinkMBps, ErrInfeasible)
		}
		if rate > maxNIC {
			return fmt.Errorf("object %d rate %.1f MB/s exceeds widest NIC %.1f: %w",
				k, rate, maxNIC, ErrInfeasible)
		}
		ok := false
		for _, l := range in.Holders[k] {
			if in.Platform.Servers[l].NICMBps >= rate {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("object %d rate %.1f MB/s exceeds every holder NIC: %w", k, rate, ErrInfeasible)
		}
	}
	return nil
}

// sellEmpty returns processors that ended up with no operators.
func sellEmpty(m *mapping.Mapping) {
	for p := range m.Procs {
		if m.Procs[p].Alive && m.NumOpsOn(p) == 0 {
			m.Sell(p)
		}
	}
}

// configsByCost returns every purchasable configuration sorted by
// non-decreasing cost (ties: slower CPU first, then narrower NIC).
func configsByCost(cat *platform.Catalog) []platform.Config {
	var out []platform.Config
	for ci := range cat.CPUs {
		for ni := range cat.NICs {
			out = append(out, platform.Config{CPU: ci, NIC: ni})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ca, cb := cat.Cost(out[a]), cat.Cost(out[b])
		if ca != cb {
			return ca < cb
		}
		if out[a].CPU != out[b].CPU {
			return out[a].CPU < out[b].CPU
		}
		return out[a].NIC < out[b].NIC
	})
	return out
}

// neighbours lists the tree neighbours of op (operator children and
// parent) with the steady-state traffic on the shared edge, sorted by
// non-increasing traffic (ties: smaller operator index first). A binary
// tree bounds the neighbour count at 3, so callers pass a fixed-size
// buffer and no allocation or sort.Slice machinery is needed.
type neighbour struct {
	op      int
	traffic float64
}

func neighbours(in *instance.Instance, op int, buf *[3]neighbour) []neighbour {
	n := 0
	insert := func(nb neighbour) {
		i := n
		for i > 0 && (buf[i-1].traffic < nb.traffic ||
			(buf[i-1].traffic == nb.traffic && buf[i-1].op > nb.op)) {
			buf[i] = buf[i-1]
			i--
		}
		buf[i] = nb
		n++
	}
	for _, c := range in.Tree.Ops[op].ChildOps {
		insert(neighbour{op: c, traffic: in.EdgeTraffic(c)})
	}
	if par := in.Tree.Ops[op].Parent; par != apptree.NoParent {
		insert(neighbour{op: par, traffic: in.EdgeTraffic(op)})
	}
	return buf[:n]
}

// detachOp removes op from its processor (if any), selling the processor
// when it becomes empty, and returns whether it was assigned.
func detachOp(m *mapping.Mapping, op int) bool {
	p := m.OpProc(op)
	if p == mapping.Unassigned {
		return false
	}
	m.Unplace(op)
	if m.NumOpsOn(p) == 0 {
		m.Sell(p)
	}
	return true
}

// buyMostExpensive buys the catalog's most powerful configuration.
func buyMostExpensive(m *mapping.Mapping) int {
	return m.Buy(m.Inst.Platform.Catalog.MostExpensive())
}

// buyCheapestHosting buys the cheapest configuration that can "handle" the
// operator group in the paper's sense — its CPU sustains the group's work
// and its NIC the group's worst-case (StaticNICReq) bandwidth, so later
// placements of the group's neighbours can never overload the purchase —
// and places the group on it. configs must be sorted by cost. Returns
// false when no configuration works.
func buyCheapestHosting(m *mapping.Mapping, configs []platform.Config, ops ...int) bool {
	cat := m.Inst.Platform.Catalog
	work := 0.0
	for _, op := range ops {
		work += m.Inst.Rho * m.Inst.W[op]
	}
	// Cap the worst-case requirement at the widest purchasable NIC:
	// beyond it the group's neighbours will have to be co-located anyway
	// (TryPlace and the final validation still enforce the real loads),
	// and refusing every configuration would wrongly fail e.g. the
	// large-object scenarios where big edges are always internalized.
	nic := m.StaticNICReq(ops...)
	if widest := cat.BandwidthMBps(cat.MostExpensive()); nic > widest {
		nic = widest
	}
	for _, cfg := range configs {
		if cat.SpeedUnits(cfg) < work || cat.BandwidthMBps(cfg) < nic {
			continue
		}
		p := m.Buy(cfg)
		if m.TryPlace(p, ops...) {
			return true
		}
		m.Sell(p)
	}
	return false
}

// placeWithGrouping implements the paper's grouping fallback shared by
// Random and Comp-Greedy: op must go on processor p; if it does not fit
// alone, it is grouped with the neighbour with which it has the most
// demanding communication requirement (detaching that neighbour from any
// previous processor). Returns an ErrInfeasible-wrapped error when even
// the pair does not fit.
func placeWithGrouping(m *mapping.Mapping, p, op int) error {
	if m.TryPlace(p, op) {
		return nil
	}
	var nbBuf [3]neighbour
	for _, nb := range neighbours(m.Inst, op, &nbBuf) {
		was := m.OpProc(nb.op)
		detachOp(m, nb.op)
		if m.TryPlace(p, op, nb.op) {
			return nil
		}
		if was != mapping.Unassigned {
			// The neighbour's old processor may have been sold; rebuy the
			// same configuration if needed and put it back.
			if !m.Procs[was].Alive {
				was = m.Buy(m.Procs[was].Config)
			}
			m.Place(nb.op, was)
		}
		// The paper groups with the single most demanding neighbour and
		// fails if that does not work; we honour that by breaking here.
		break
	}
	// Last resort before declaring failure: co-locate with any existing
	// processor that can take the operator.
	for _, q := range m.AliveProcs() {
		if q != p && m.TryPlace(q, op) {
			return nil
		}
	}
	return fmt.Errorf("operator %d does not fit even when grouped: %w", op, ErrInfeasible)
}
