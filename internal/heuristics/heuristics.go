package heuristics

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"repro/internal/apptree"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/rng"
)

// ErrInfeasible is wrapped by all placement/selection failures, so callers
// can distinguish "no mapping found" from programming errors.
var ErrInfeasible = errors.New("no feasible mapping found")

// Heuristic is an operator-placement strategy.
type Heuristic interface {
	// Name returns the paper's name for the heuristic.
	Name() string
	// Place assigns every operator of m.Inst to purchased processors on
	// m — handed in empty (mapping.New or an arena Reset) — or fails
	// with an error wrapping ErrInfeasible. Taking the mapping rather
	// than building one lets the solve pipeline thread a caller-owned
	// arena through repeated solves; pc carries the reusable sort and
	// traversal scratch (nil is valid and falls back to allocating).
	Place(pc *PlaceContext, m *mapping.Mapping, r *rand.Rand) error
}

// PlaceContext owns the sort and traversal scratch the placement
// strategies previously allocated per solve: the work-descending operator
// order, the cost-ascending configuration list (cached per catalog), the
// tree edge list, the al-operator / object-set / popularity tables and
// the bottom-up traversal buffers. A SolveContext threads one through
// repeated Solve calls so steady-state placement allocates nothing; a nil
// *PlaceContext is valid everywhere and simply allocates fresh storage
// (the behaviour — and every resulting placement — is identical either
// way). A PlaceContext is not safe for concurrent use.
type PlaceContext struct {
	order     []int          // opsByWorkDesc result
	alOps     []int          // ALOperators buffer
	objs      []int          // ObjectSet buffer
	pop       []int          // Popularity buffer
	pending   []int          // per-object pending al-operator gather
	bu, stack []int          // BottomUp traversal buffers
	edges     []apptree.Edge // tree edge list
	cat       *platform.Catalog
	configs   []platform.Config // configsByCost(cat), cached while cat is unchanged
}

// pendingBuf returns the reusable pending-operator buffer (reset to
// length 0); on a nil context appends simply allocate.
func (pc *PlaceContext) pendingBuf() []int {
	if pc == nil {
		return nil
	}
	return pc.pending[:0]
}

// alOperators returns the tree's al-operators through the context buffer.
func (pc *PlaceContext) alOperators(t *apptree.Tree) []int {
	if pc == nil {
		return t.ALOperators()
	}
	pc.alOps = t.ALOperatorsInto(pc.alOps)
	return pc.alOps
}

// objectSet returns the tree's object set through the context buffer.
func (pc *PlaceContext) objectSet(t *apptree.Tree) []int {
	if pc == nil {
		return t.ObjectSet()
	}
	pc.objs = t.ObjectSetInto(pc.objs)
	return pc.objs
}

// popularity returns the per-object popularity counts through the
// context buffer.
func (pc *PlaceContext) popularity(t *apptree.Tree, numTypes int) []int {
	if pc == nil {
		return t.Popularity(numTypes)
	}
	pc.pop = t.PopularityInto(numTypes, pc.pop)
	return pc.pop
}

// bottomUp returns the tree's bottom-up operator order through the
// context buffers.
func (pc *PlaceContext) bottomUp(t *apptree.Tree) []int {
	if pc == nil {
		return t.BottomUp()
	}
	pc.bu, pc.stack = t.BottomUpInto(pc.bu, pc.stack)
	return pc.bu
}

// treeEdges returns the tree's sorted edge list through the context
// buffer.
func (pc *PlaceContext) treeEdges(t *apptree.Tree) []apptree.Edge {
	if pc == nil {
		return t.Edges()
	}
	pc.edges = t.EdgesInto(pc.edges)
	return pc.edges
}

// All returns the six paper heuristics in the order of the paper's plots.
func All() []Heuristic {
	return []Heuristic{
		Random{},
		CompGreedy{},
		CommGreedy{},
		SubtreeBottomUp{},
		ObjectGrouping{},
		ObjectAvailability{},
	}
}

// registered holds heuristics contributed by other packages through
// Register; ByName consults it after the built-ins. Writes happen in
// package init functions (refine's "Refined", exact's "Exact"), reads
// from any goroutine afterwards, so no lock is needed.
var registered = map[string]Heuristic{}

// Register makes an externally-implemented Heuristic addressable through
// ByName, so name-keyed surfaces (the sweep Grid, CLIs) can run it
// alongside the paper's six. Meant to be called from package init (the
// refinement layer and the exact solver register themselves); a name that
// collides with a built-in or an earlier registration panics.
func Register(h Heuristic) {
	name := h.Name()
	if _, err := byBuiltinName(name); err == nil {
		panic(fmt.Sprintf("heuristics: Register(%q) collides with a built-in", name))
	}
	if _, dup := registered[name]; dup {
		panic(fmt.Sprintf("heuristics: Register(%q) called twice", name))
	}
	registered[name] = h
}

// ByName returns the heuristic with the given Name. Besides the six
// paper heuristics it recognizes the repository's A3 ablation variant
// "Subtree-bottom-up-nofold" and anything contributed via Register
// ("Refined", "Exact"), so name-keyed surfaces (the public sweep Grid,
// CLIs) can address every heuristic the experiment harness plots.
func ByName(name string) (Heuristic, error) {
	if h, err := byBuiltinName(name); err == nil {
		return h, nil
	}
	if h, ok := registered[name]; ok {
		return h, nil
	}
	return nil, fmt.Errorf("heuristics: unknown heuristic %q", name)
}

func byBuiltinName(name string) (Heuristic, error) {
	for _, h := range All() {
		if h.Name() == name {
			return h, nil
		}
	}
	if nofold := (SubtreeBottomUp{DisableFold: true}); name == nofold.Name() {
		return nofold, nil
	}
	return nil, fmt.Errorf("heuristics: unknown heuristic %q", name)
}

// ServerSelectionMode selects the second pipeline step.
type ServerSelectionMode int

const (
	// SelectThreeLoop is the paper's sophisticated three-loop selection.
	SelectThreeLoop ServerSelectionMode = iota
	// SelectRandom associates a random capacity-respecting server with
	// each download (used by the Random heuristic and the A2 ablation).
	SelectRandom
)

// Options tunes the Solve pipeline.
type Options struct {
	Selection     ServerSelectionMode
	SkipDowngrade bool  // A1 ablation: keep the most expensive configurations
	Seed          int64 // randomness for Random placement / random selection

	// Journal runs the solve with the mapping's move journal recording
	// (mapping.SetJournal). Constructive placements never roll back
	// through it, so this is off by default and exists for overhead
	// measurement and for callers that refine the returned arena mapping
	// in place; the solution is identical either way.
	Journal bool
}

// Result is a validated solution.
type Result struct {
	Heuristic string
	Mapping   *mapping.Mapping
	Cost      float64
	Procs     int // number of purchased processors
}

// SolveContext owns the reusable scratch threaded through repeated Solve
// calls: the server-selection Selector, the placement-strategy
// PlaceContext and, when the caller opts in with SetReuse, an arena
// Mapping, a recycled Result and reseedable random streams. A
// SolveContext is not safe for concurrent use: sweep engines hold one per
// worker.
type SolveContext struct {
	sel   Selector
	place PlaceContext

	// Caller-owned arena (SetReuse(true)): repeated solves rebuild the
	// mapping in place instead of allocating a fresh one per call.
	reuse        bool
	arena        mapping.Mapping
	res          Result
	prand, srand *rand.Rand // placement / selection streams, reseeded per solve
}

// NewSolveContext returns an empty reusable solve context.
func NewSolveContext() *SolveContext { return &SolveContext{} }

// SetReuse switches the context onto its caller-owned mapping arena.
// With reuse on, Solve rebuilds one arena Mapping in place
// (mapping.Reset) and returns a context-owned Result — both are valid
// only until the next Solve on this context, so callers that keep a
// mapping must Clone it. Solutions are bit-for-bit identical to the
// allocating path; only the storage ownership changes. The package-level
// Solve also runs on a pooled arena and clones the winning mapping out,
// so its escaping results never pin pool-owned storage.
func (c *SolveContext) SetReuse(on bool) { c.reuse = on }

// solveCtxPool backs the package-level Solve so one-shot callers reuse
// scratch across calls too (the same trick stream.Simulate plays with
// its pooled runners). The pooled contexts run with the mapping arena
// enabled: building the solution in the arena and cloning it on the way
// out is ~2x fewer allocations than constructing the incremental
// adjacency on a fresh Mapping placement by placement (Clone copies the
// finished opsOn/objRef state into right-sized one-shot slices).
var solveCtxPool = sync.Pool{New: func() any {
	c := NewSolveContext()
	c.SetReuse(true)
	return c
}}

// Solve runs placement, server selection and downgrade for one heuristic
// and validates the outcome, borrowing a pooled SolveContext. The solve
// runs on the pooled context's arena and the returned Result holds an
// independent clone of the mapping, so it is caller-owned with no
// lifetime caveats — and bit-for-bit identical to a non-arena solve.
func Solve(in *instance.Instance, h Heuristic, opts Options) (*Result, error) {
	c := solveCtxPool.Get().(*SolveContext)
	res, err := c.Solve(in, h, opts)
	var out *Result
	if err == nil {
		out = &Result{
			Heuristic: res.Heuristic,
			Mapping:   res.Mapping.Clone(),
			Cost:      res.Cost,
			Procs:     res.Procs,
		}
	}
	solveCtxPool.Put(c)
	return out, err
}

// Solve runs the full pipeline on the context's reusable scratch. With
// SetReuse(true) the mapping is built in the context's arena and the
// returned Result is context-owned (valid until the next Solve); the
// solution itself is identical either way.
func (c *SolveContext) Solve(in *instance.Instance, h Heuristic, opts Options) (*Result, error) {
	if err := precheckCtx(in, &c.place); err != nil {
		return nil, err
	}
	var m *mapping.Mapping
	var r *rand.Rand
	if c.reuse {
		m = &c.arena
		m.Reset(in)
		if c.prand == nil {
			c.prand, c.srand = rng.New(0), rng.New(0)
		}
		rng.Reseed2(c.prand, opts.Seed, "heuristic:", h.Name())
		r = c.prand
	} else {
		m = mapping.New(in)
		r = rng.Derive(opts.Seed, "heuristic:"+h.Name())
	}
	m.SetJournal(opts.Journal)
	if err := h.Place(&c.place, m, r); err != nil {
		return nil, fmt.Errorf("%s placement: %w", h.Name(), err)
	}
	if !m.Complete() {
		return nil, fmt.Errorf("%s placement left operators unassigned: %w", h.Name(), ErrInfeasible)
	}
	sellEmpty(m)

	selection := opts.Selection
	if _, isRandom := h.(Random); isRandom {
		// The paper pairs the Random placement with random selection.
		selection = SelectRandom
	}
	var err error
	switch selection {
	case SelectRandom:
		sr := c.srand
		if c.reuse {
			rng.Reseed2(sr, opts.Seed, "selection:", h.Name())
		} else {
			sr = rng.Derive(opts.Seed, "selection:"+h.Name())
		}
		err = c.sel.Random(m, sr)
	default:
		err = c.sel.ThreeLoop(m)
	}
	c.sel.release()
	if err != nil {
		return nil, fmt.Errorf("%s server selection: %w", h.Name(), err)
	}

	if !opts.SkipDowngrade && !in.Platform.Catalog.Homogeneous() {
		if err := Downgrade(m); err != nil {
			return nil, fmt.Errorf("%s downgrade: %w", h.Name(), err)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s produced an invalid mapping: %v", h.Name(), err)
	}
	res := &Result{}
	if c.reuse {
		res = &c.res
	}
	*res = Result{
		Heuristic: h.Name(),
		Mapping:   m,
		Cost:      m.Cost(),
		Procs:     m.NumAlive(),
	}
	return res, nil
}

// Precheck fails fast on instances no allocation can satisfy: an operator
// whose work exceeds the fastest processor, a needed object whose download
// rate exceeds the server links or every holder's NIC, or a download load
// that cannot fit the widest processor NIC.
func Precheck(in *instance.Instance) error {
	return precheckCtx(in, nil)
}

// precheckCtx is Precheck through a PlaceContext's reusable object-set
// buffer (nil allocates). The object set is gathered only after the
// per-operator work check passes, so the instant-reject path of oversized
// corpus cells stays O(N) with no sort.
func precheckCtx(in *instance.Instance, pc *PlaceContext) error {
	cat := in.Platform.Catalog
	best := cat.MostExpensive()
	maxSpeed := cat.SpeedUnits(best)
	maxNIC := cat.BandwidthMBps(best)
	for i, w := range in.W {
		if in.Rho*w > maxSpeed {
			return fmt.Errorf("operator %d needs %.0f units/s > fastest processor %.0f: %w",
				i, in.Rho*w, maxSpeed, ErrInfeasible)
		}
	}
	for _, k := range pc.objectSet(in.Tree) {
		rate := in.Rate(k)
		if rate > in.Platform.ServerLinkMBps {
			return fmt.Errorf("object %d rate %.1f MB/s exceeds server links %.1f: %w",
				k, rate, in.Platform.ServerLinkMBps, ErrInfeasible)
		}
		if rate > maxNIC {
			return fmt.Errorf("object %d rate %.1f MB/s exceeds widest NIC %.1f: %w",
				k, rate, maxNIC, ErrInfeasible)
		}
		ok := false
		for _, l := range in.Holders[k] {
			if in.Platform.Servers[l].NICMBps >= rate {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("object %d rate %.1f MB/s exceeds every holder NIC: %w", k, rate, ErrInfeasible)
		}
	}
	return nil
}

// sellEmpty returns processors that ended up with no operators.
func sellEmpty(m *mapping.Mapping) {
	for p := range m.Procs {
		if m.Procs[p].Alive && m.NumOpsOn(p) == 0 {
			m.Sell(p)
		}
	}
}

// configsByCost returns every purchasable configuration sorted by
// non-decreasing cost (ties: slower CPU first, then narrower NIC). The
// order is a pure function of the catalog, so a PlaceContext caches it
// and repeated solves on one catalog (every sweep) skip the rebuild.
func configsByCost(pc *PlaceContext, cat *platform.Catalog) []platform.Config {
	if pc != nil && pc.cat == cat && pc.configs != nil {
		return pc.configs
	}
	n := len(cat.CPUs) * len(cat.NICs)
	out := make([]platform.Config, 0, n)
	if pc != nil && cap(pc.configs) >= n {
		out = pc.configs[:0]
	}
	for ci := range cat.CPUs {
		for ni := range cat.NICs {
			out = append(out, platform.Config{CPU: ci, NIC: ni})
		}
	}
	slices.SortFunc(out, func(a, b platform.Config) int {
		ca, cb := cat.Cost(a), cat.Cost(b)
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		if a.CPU != b.CPU {
			return a.CPU - b.CPU
		}
		return a.NIC - b.NIC
	})
	if pc != nil {
		pc.cat, pc.configs = cat, out
	}
	return out
}

// neighbours lists the tree neighbours of op (operator children and
// parent) with the steady-state traffic on the shared edge, sorted by
// non-increasing traffic (ties: smaller operator index first). A binary
// tree bounds the neighbour count at 3, so callers pass a fixed-size
// buffer and no allocation or sort.Slice machinery is needed.
type neighbour struct {
	op      int
	traffic float64
}

func neighbours(in *instance.Instance, op int, buf *[3]neighbour) []neighbour {
	n := 0
	insert := func(nb neighbour) {
		i := n
		for i > 0 && (buf[i-1].traffic < nb.traffic ||
			(buf[i-1].traffic == nb.traffic && buf[i-1].op > nb.op)) {
			buf[i] = buf[i-1]
			i--
		}
		buf[i] = nb
		n++
	}
	for _, c := range in.Tree.Ops[op].ChildOps {
		insert(neighbour{op: c, traffic: in.EdgeTraffic(c)})
	}
	if par := in.Tree.Ops[op].Parent; par != apptree.NoParent {
		insert(neighbour{op: par, traffic: in.EdgeTraffic(op)})
	}
	return buf[:n]
}

// detachOp removes op from its processor (if any), selling the processor
// when it becomes empty, and returns whether it was assigned.
func detachOp(m *mapping.Mapping, op int) bool {
	p := m.OpProc(op)
	if p == mapping.Unassigned {
		return false
	}
	m.Unplace(op)
	if m.NumOpsOn(p) == 0 {
		m.Sell(p)
	}
	return true
}

// buyMostExpensive buys the catalog's most powerful configuration.
func buyMostExpensive(m *mapping.Mapping) int {
	return m.Buy(m.Inst.Platform.Catalog.MostExpensive())
}

// buyCheapestHosting buys the cheapest configuration that can "handle" the
// operator group in the paper's sense — its CPU sustains the group's work
// and its NIC the group's worst-case (StaticNICReq) bandwidth, so later
// placements of the group's neighbours can never overload the purchase —
// and places the group on it. configs must be sorted by cost. Returns
// false when no configuration works.
func buyCheapestHosting(m *mapping.Mapping, configs []platform.Config, ops ...int) bool {
	cat := m.Inst.Platform.Catalog
	work := 0.0
	for _, op := range ops {
		work += m.Inst.Rho * m.Inst.W[op]
	}
	// Cap the worst-case requirement at the widest purchasable NIC:
	// beyond it the group's neighbours will have to be co-located anyway
	// (TryPlace and the final validation still enforce the real loads),
	// and refusing every configuration would wrongly fail e.g. the
	// large-object scenarios where big edges are always internalized.
	nic := m.StaticNICReq(ops...)
	if widest := cat.BandwidthMBps(cat.MostExpensive()); nic > widest {
		nic = widest
	}
	for _, cfg := range configs {
		if cat.SpeedUnits(cfg) < work || cat.BandwidthMBps(cfg) < nic {
			continue
		}
		p := m.Buy(cfg)
		if m.TryPlace(p, ops...) {
			return true
		}
		m.Sell(p)
	}
	return false
}

// placeWithGrouping implements the paper's grouping fallback shared by
// Random and Comp-Greedy: op must go on processor p; if it does not fit
// alone, it is grouped with the neighbour with which it has the most
// demanding communication requirement (detaching that neighbour from any
// previous processor). Returns an ErrInfeasible-wrapped error when even
// the pair does not fit.
func placeWithGrouping(m *mapping.Mapping, p, op int) error {
	if m.TryPlace(p, op) {
		return nil
	}
	var nbBuf [3]neighbour
	for _, nb := range neighbours(m.Inst, op, &nbBuf) {
		was := m.OpProc(nb.op)
		detachOp(m, nb.op)
		if m.TryPlace(p, op, nb.op) {
			return nil
		}
		if was != mapping.Unassigned {
			// The neighbour's old processor may have been sold; rebuy the
			// same configuration if needed and put it back.
			if !m.Procs[was].Alive {
				was = m.Buy(m.Procs[was].Config)
			}
			m.Place(nb.op, was)
		}
		// The paper groups with the single most demanding neighbour and
		// fails if that does not work; we honour that by breaking here.
		break
	}
	// Last resort before declaring failure: co-locate with any existing
	// processor that can take the operator.
	for _, q := range m.AliveProcs() {
		if q != p && m.TryPlace(q, op) {
			return nil
		}
	}
	return fmt.Errorf("operator %d does not fit even when grouped: %w", op, ErrInfeasible)
}
