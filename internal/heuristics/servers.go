package heuristics

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/mapping"
	"repro/internal/xslice"
)

// Selector runs the server-selection step on flat, index-based scratch
// that is reused across solves: dense per-server NIC residuals, an
// epoch-stamped sparse array of per-(server, processor) link residuals,
// and per-object pending-download lists maintained incrementally instead
// of being rebuilt from maps every loop iteration (the pre-refactor
// selectionState rebuilt and re-sorted a map per loop-3 iteration and per
// loop-2 server, which dominated the solve allocation profile). After the
// first call every ThreeLoop/Random run is allocation-free.
//
// A Selector is not safe for concurrent use; SolveContext owns one per
// solving goroutine and the package-level SelectServers* helpers borrow
// one from an internal pool.
//
// Capacity admission is governed by the single admissionEps constant
// below, chosen so selection can never commit a download that mapping's
// Eps-tolerant verification rejects (see TestCapacityEpsBoundary).
type Selector struct {
	m      *mapping.Mapping
	nProcs int
	nSrv   int
	epoch  uint32

	serverLeft []float64 // residual NIC bandwidth per server
	linkLeft   []float64 // residual (server, proc) link bandwidth, flat l*nProcs+p
	linkSeen   []uint32  // epoch stamp: linkLeft entry valid this run
	need       []uint32  // epoch stamp per (object, proc): download outstanding at reset
	pendingOf  [][]int   // per object: procs still needing it, ascending
	npending   int       // total outstanding downloads

	procBuf   []int    // snapshot of one object's pending procs
	holdBuf   []int    // holder candidates, sorted (three-loop) or shuffled (random)
	typeCnt   []int    // loop-2 scratch: distinct object types per server
	typeOf    []int    // loop-2 scratch: smallest object type per server
	dlCount   []int    // reset scratch: downloads per processor, for DL pre-sizing
	downloads [][2]int // random-selection scratch: the (proc, object) work list
}

// reset rebinds the selector to m and rebuilds the residual and pending
// state from the mapping's current placement. One pass over the operator
// assignment stamps every outstanding (object, proc) download; a second
// pass over the (object, proc) grid gathers the per-object pending lists
// already sorted by processor.
func (st *Selector) reset(m *mapping.Mapping) {
	in := m.Inst
	st.m = m
	st.nProcs = len(m.Procs)
	st.nSrv = len(in.Platform.Servers)
	st.epoch++
	if st.epoch == 0 { // stamp wrap-around: invalidate every recycled stamp,
		// including capacity beyond the current length that a later Grow
		// could re-expose.
		clear(st.linkSeen[:cap(st.linkSeen)])
		clear(st.need[:cap(st.need)])
		st.epoch = 1
	}

	st.serverLeft = xslice.Grow(st.serverLeft, st.nSrv)
	for l := range st.serverLeft {
		st.serverLeft[l] = in.Platform.Servers[l].NICMBps
	}
	st.linkLeft = xslice.Grow(st.linkLeft, st.nSrv*st.nProcs)
	st.linkSeen = xslice.Grow(st.linkSeen, st.nSrv*st.nProcs)
	st.need = xslice.Grow(st.need, in.NumTypes*st.nProcs)

	tree := in.Tree
	for op, p := range m.Assign {
		if p == mapping.Unassigned {
			continue
		}
		for _, li := range tree.Ops[op].Leaves {
			st.need[tree.Leaves[li].Object*st.nProcs+p] = st.epoch
		}
	}
	st.pendingOf = xslice.Grow(st.pendingOf, in.NumTypes)
	st.dlCount = xslice.Grow(st.dlCount, st.nProcs)
	for p := range st.dlCount {
		st.dlCount[p] = 0
	}
	st.npending = 0
	for k := 0; k < in.NumTypes; k++ {
		lst := st.pendingOf[k][:0]
		base := k * st.nProcs
		for p := 0; p < st.nProcs; p++ {
			if st.need[base+p] == st.epoch {
				lst = append(lst, p)
				st.dlCount[p]++
			}
		}
		st.pendingOf[k] = lst
		st.npending += len(lst)
	}
	for p, n := range st.dlCount {
		m.PresizeDL(p, n)
	}
}

// linkResidual returns the remaining bandwidth on the (server l, proc p)
// link without materializing untouched links.
func (st *Selector) linkResidual(l, p int) float64 {
	i := l*st.nProcs + p
	if st.linkSeen[i] == st.epoch {
		return st.linkLeft[i]
	}
	return st.m.Inst.Platform.ServerLinkMBps
}

// admissionEps is the tolerance selection adds to a residual capacity
// when admitting a download: zero, deliberately stricter than
// verification's mapping.Eps. Validate recomputes every load as a fresh
// sum whose rounding can differ from the selector's incremental
// residuals by a few ULPs, so the invariant "an admitted download is
// never rejected by verification" holds exactly when the admission
// tolerance plus that drift stays within mapping.Eps — which zero
// guarantees and any positive tolerance does not: the historical code
// admitted with a hardcoded 1e-9 in three places (assign twice,
// usableHolders), letting accumulated downloads overshoot a server NIC
// by up to ~Eps and verification reject the mapping at the boundary.
// Exact fits (residual == rate) are still admitted.
const admissionEps = 0

// assign commits download (p,k) to server l if capacities allow, with
// admissionEps headroom against mapping's verification.
func (st *Selector) assign(p, k, l int) bool {
	rate := st.m.Inst.Rate(k)
	if rate > st.serverLeft[l]+admissionEps || rate > st.linkResidual(l, p)+admissionEps {
		return false
	}
	st.serverLeft[l] -= rate
	i := l*st.nProcs + p
	st.linkLeft[i] = st.linkResidual(l, p) - rate
	st.linkSeen[i] = st.epoch
	st.m.SelectServer(p, k, l)
	st.removePending(p, k)
	return true
}

// removePending drops p from object k's pending list, keeping it sorted.
func (st *Selector) removePending(p, k int) {
	lst := st.pendingOf[k]
	for i, q := range lst {
		if q == p {
			st.pendingOf[k] = append(lst[:i], lst[i+1:]...)
			st.npending--
			return
		}
	}
}

// snapshotPending copies object k's current pending processors into the
// shared scratch buffer, so callers can iterate while assign mutates the
// live list.
func (st *Selector) snapshotPending(k int) []int {
	st.procBuf = append(st.procBuf[:0], st.pendingOf[k]...)
	return st.procBuf
}

// usableHolders counts the servers from which object k can still be
// downloaded (residual NIC admits at least one more download of k).
func (st *Selector) usableHolders(k int) int {
	rate := st.m.Inst.Rate(k)
	n := 0
	for _, l := range st.m.Inst.Holders[k] {
		if rate <= st.serverLeft[l]+admissionEps {
			n++
		}
	}
	return n
}

// objRank is loop 3's priority for object k: decreasing nbP/nbS.
func (st *Selector) objRank(k int) float64 {
	return ratio(len(st.pendingOf[k]), st.usableHolders(k))
}

// ThreeLoop runs the paper's three-loop server selection on m:
//
//  1. downloads of objects held by exactly one server are pinned to that
//     server (failure here is fatal — there is no alternative),
//  2. downloads are steered to servers that provide only one object type,
//  3. the rest are assigned object-by-object in decreasing nbP/nbS order,
//     each download going to the holder with the largest
//     min(residual server NIC, residual link bandwidth).
//
// Both priority orders are total (ties break on index), so the max-scan
// and insertion sort below reproduce the original sort.Slice results
// exactly without its closure allocations.
func (st *Selector) ThreeLoop(m *mapping.Mapping) error {
	in := m.Inst
	st.reset(m)

	// Loop 1: single-holder objects have no freedom.
	for k := 0; k < in.NumTypes; k++ {
		if len(st.pendingOf[k]) == 0 || in.Availability(k) != 1 {
			continue
		}
		l := in.Holders[k][0]
		for _, p := range st.snapshotPending(k) {
			if !st.assign(p, k, l) {
				return fmt.Errorf("object %d only on server %d which lacks capacity: %w", k, l, ErrInfeasible)
			}
		}
	}

	// Loop 2: servers that provide only one object type absorb as many of
	// that object's downloads as possible.
	st.typeCnt = xslice.Grow(st.typeCnt, st.nSrv)
	st.typeOf = xslice.Grow(st.typeOf, st.nSrv)
	for l := range st.typeCnt {
		st.typeCnt[l] = 0
	}
	for k := range in.Holders {
		for _, l := range in.Holders[k] {
			if st.typeCnt[l] == 0 {
				st.typeOf[l] = k
			}
			st.typeCnt[l]++
		}
	}
	for l := 0; l < st.nSrv; l++ {
		if st.typeCnt[l] != 1 {
			continue
		}
		k := st.typeOf[l]
		for _, p := range st.snapshotPending(k) {
			st.assign(p, k, l) // best effort
		}
	}

	// Loop 3: remaining downloads, objects in decreasing nbP/nbS. Only
	// the top-priority object is consumed per round and the priority
	// order is total (ties: smaller object first), so an ascending
	// max-scan replaces the historical full sort with byte-identical
	// selections.
	for st.npending > 0 {
		k, rank := -1, 0.0
		for c := 0; c < in.NumTypes; c++ {
			if len(st.pendingOf[c]) == 0 {
				continue
			}
			if r := st.objRank(c); k < 0 || r > rank {
				k, rank = c, r
			}
		}
		for _, p := range st.snapshotPending(k) {
			holders := append(st.holdBuf[:0], in.Holders[k]...)
			st.holdBuf = holders
			for i := 1; i < len(holders); i++ {
				l := holders[i]
				cl := minf(st.serverLeft[l], st.linkResidual(l, p))
				j := i
				for ; j > 0; j-- {
					cj := minf(st.serverLeft[holders[j-1]], st.linkResidual(holders[j-1], p))
					if cj > cl || (cj == cl && holders[j-1] < l) {
						break
					}
					holders[j] = holders[j-1]
				}
				holders[j] = l
			}
			done := false
			for _, l := range holders {
				if st.assign(p, k, l) {
					done = true
					break
				}
			}
			if !done {
				return fmt.Errorf("no server has capacity for object %d to processor %d: %w", k, p, ErrInfeasible)
			}
		}
	}
	return nil
}

// Random associates a random holder with every download, retrying the
// other holders when capacities are exceeded (the paper pairs this with
// the Random placement heuristic). The work list is gathered in (proc,
// object) order before shuffling, so the consumed random stream — and
// hence every chosen server — is identical to the historical map-and-sort
// implementation.
func (st *Selector) Random(m *mapping.Mapping, r *rand.Rand) error {
	st.reset(m)
	in := m.Inst
	downloads := st.downloads[:0]
	for p := 0; p < st.nProcs; p++ {
		for k := 0; k < in.NumTypes; k++ {
			if st.need[k*st.nProcs+p] == st.epoch {
				downloads = append(downloads, [2]int{p, k})
			}
		}
	}
	st.downloads = downloads
	r.Shuffle(len(downloads), func(i, j int) { downloads[i], downloads[j] = downloads[j], downloads[i] })
	for _, pk := range downloads {
		p, k := pk[0], pk[1]
		holders := append(st.holdBuf[:0], in.Holders[k]...)
		st.holdBuf = holders
		r.Shuffle(len(holders), func(i, j int) { holders[i], holders[j] = holders[j], holders[i] })
		done := false
		for _, l := range holders {
			if st.assign(p, k, l) {
				done = true
				break
			}
		}
		if !done {
			return fmt.Errorf("no server has capacity for object %d to processor %d: %w", k, p, ErrInfeasible)
		}
	}
	return nil
}

// release drops the mapping reference so pooled selectors do not pin
// solved instances in memory.
func (st *Selector) release() { st.m = nil }

// selectorPool backs the package-level SelectServers* helpers so
// standalone calls reuse scratch too.
var selectorPool = sync.Pool{New: func() any { return new(Selector) }}

// SelectServersThreeLoop runs the paper's three-loop server selection on
// a pooled Selector. Callers running many solves hold a SolveContext (or
// their own Selector) instead.
func SelectServersThreeLoop(m *mapping.Mapping) error {
	st := selectorPool.Get().(*Selector)
	err := st.ThreeLoop(m)
	st.release()
	selectorPool.Put(st)
	return err
}

// SelectServersRandom is the pooled-selector form of (*Selector).Random.
func SelectServersRandom(m *mapping.Mapping, r *rand.Rand) error {
	st := selectorPool.Get().(*Selector)
	err := st.Random(m, r)
	st.release()
	selectorPool.Put(st)
	return err
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 1e18 // most constrained first
	}
	return float64(a) / float64(b)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
