package heuristics

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
)

func solveOK(t *testing.T, in *instance.Instance, h Heuristic) *Result {
	t.Helper()
	res, err := Solve(in, h, Options{Seed: 1})
	if err != nil {
		t.Fatalf("%s failed: %v", h.Name(), err)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatalf("%s produced invalid mapping: %v", h.Name(), err)
	}
	return res
}

func TestAllHeuristicsProduceValidMappings(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20, 60} {
		in := instance.Generate(instance.Config{NumOps: n, Alpha: 0.9}, int64(n))
		for _, h := range All() {
			res, err := Solve(in, h, Options{Seed: 1})
			if err != nil {
				// The object-sensitive heuristics legitimately fail on
				// some larger instances (the paper reports the same);
				// the others must always succeed at alpha = 0.9.
				_, og := h.(ObjectGrouping)
				_, oa := h.(ObjectAvailability)
				if (og || oa) && n >= 20 && errors.Is(err, ErrInfeasible) {
					continue
				}
				t.Fatalf("%s on N=%d: %v", h.Name(), n, err)
			}
			if verr := res.Mapping.Validate(); verr != nil {
				t.Fatalf("%s on N=%d: invalid mapping: %v", h.Name(), n, verr)
			}
			if res.Cost <= 0 || res.Procs < 1 {
				t.Fatalf("%s on N=%d: cost=%v procs=%d", h.Name(), n, res.Cost, res.Procs)
			}
		}
	}
}

func TestManySeedsAllHeuristics(t *testing.T) {
	// The central soundness property: whatever a heuristic returns passes
	// the independent full validator. Failures must wrap ErrInfeasible.
	for seed := int64(0); seed < 15; seed++ {
		for _, alpha := range []float64{0.9, 1.4, 1.7} {
			in := instance.Generate(instance.Config{NumOps: 30, Alpha: alpha}, seed)
			for _, h := range All() {
				res, err := Solve(in, h, Options{Seed: seed})
				if err != nil {
					if !errors.Is(err, ErrInfeasible) {
						t.Fatalf("%s seed=%d alpha=%v: non-infeasibility error: %v", h.Name(), seed, alpha, err)
					}
					continue
				}
				if err := res.Mapping.Validate(); err != nil {
					t.Fatalf("%s seed=%d alpha=%v: invalid mapping: %v", h.Name(), seed, alpha, err)
				}
			}
		}
	}
}

func TestLargeObjects(t *testing.T) {
	// Large objects (450-530 MB) with high frequency: downloads are
	// ~225-265 MB/s each. Small trees should still be mappable.
	in := instance.Generate(instance.Config{NumOps: 10, Alpha: 0.9, SizeMin: 450, SizeMax: 530}, 3)
	okCount := 0
	for _, h := range All() {
		if res, err := Solve(in, h, Options{Seed: 3}); err == nil {
			if err := res.Mapping.Validate(); err != nil {
				t.Fatalf("%s: invalid mapping: %v", h.Name(), err)
			}
			okCount++
		} else if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%s: unexpected error: %v", h.Name(), err)
		}
	}
	if okCount == 0 {
		t.Fatal("no heuristic found a mapping for a small large-object tree")
	}
}

func TestHighAlphaInfeasible(t *testing.T) {
	// At alpha=3 the root operator alone exceeds the fastest processor for
	// any reasonably sized tree; every heuristic must fail cleanly.
	in := instance.Generate(instance.Config{NumOps: 60, Alpha: 3}, 1)
	for _, h := range All() {
		_, err := Solve(in, h, Options{Seed: 1})
		if err == nil {
			t.Fatalf("%s found a mapping for alpha=3, N=60 (should be impossible)", h.Name())
		}
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%s: error does not wrap ErrInfeasible: %v", h.Name(), err)
		}
	}
}

func TestPrecheck(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 10, Alpha: 0.9}, 1)
	if err := Precheck(in); err != nil {
		t.Fatalf("feasible instance failed precheck: %v", err)
	}
	// Object rate above the server links.
	in2 := instance.Generate(instance.Config{NumOps: 10, Alpha: 0.9}, 1)
	k := in2.Tree.Leaves[0].Object
	in2.Freqs[k] = 1000 // rate > 1000 MB/s links
	in2.Refresh()
	if err := Precheck(in2); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("oversized object rate not caught: %v", err)
	}
	// Operator work above the fastest CPU.
	in3 := instance.Generate(instance.Config{NumOps: 10, Alpha: 3}, 1)
	if err := Precheck(in3); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("oversized operator not caught: %v", err)
	}
}

func TestSubtreeBottomUpIsCompetitive(t *testing.T) {
	// The paper's headline ranking: Subtree-bottom-up achieves the best
	// cost in most situations. Check it is never worse than Random and is
	// the (possibly tied) winner on a clear majority of seeds.
	wins, totals := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		in := instance.Generate(instance.Config{NumOps: 40, Alpha: 0.9}, seed)
		costs := map[string]float64{}
		for _, h := range All() {
			if res, err := Solve(in, h, Options{Seed: seed}); err == nil {
				costs[h.Name()] = res.Cost
			}
		}
		sbu, ok := costs["Subtree-bottom-up"]
		if !ok {
			continue
		}
		totals++
		if rnd, ok := costs["Random"]; ok && sbu > rnd {
			t.Fatalf("seed %d: Subtree-bottom-up (%v) worse than Random (%v)", seed, sbu, rnd)
		}
		best := sbu
		for _, c := range costs {
			if c < best {
				best = c
			}
		}
		if sbu == best {
			wins++
		}
	}
	if totals == 0 {
		t.Fatal("Subtree-bottom-up never produced a mapping")
	}
	if wins*2 < totals {
		t.Fatalf("Subtree-bottom-up best in only %d/%d runs", wins, totals)
	}
}

func TestSmallTreeCollapsesToOneProcessor(t *testing.T) {
	// For tiny trees at low alpha the optimal solution is a single
	// processor (the paper's CPLEX result); Subtree-bottom-up and
	// Comm-Greedy should find a one-processor mapping.
	in := instance.Generate(instance.Config{NumOps: 8, Alpha: 0.9}, 5)
	for _, name := range []string{"Subtree-bottom-up", "Comm-Greedy"} {
		h, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res := solveOK(t, in, h)
		if res.Procs != 1 {
			t.Fatalf("%s used %d processors on a tiny tree, want 1", name, res.Procs)
		}
	}
}

func TestDowngradeReducesCost(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 30, Alpha: 0.9}, 9)
	h := SubtreeBottomUp{}
	with, err := Solve(in, h, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Solve(in, h, Options{Seed: 9, SkipDowngrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Cost > without.Cost {
		t.Fatalf("downgrade increased cost: %v > %v", with.Cost, without.Cost)
	}
	if with.Procs != without.Procs {
		t.Fatalf("downgrade changed processor count: %d vs %d", with.Procs, without.Procs)
	}
}

func TestHomogeneousCatalogSkipsDowngrade(t *testing.T) {
	p := platform.DefaultPlatform()
	p.Catalog = platform.Homogeneous(4, 4)
	in := instance.Generate(instance.Config{NumOps: 20, Alpha: 0.9, Platform: p}, 2)
	res := solveOK(t, in, SubtreeBottomUp{})
	for _, pid := range res.Mapping.AliveProcs() {
		if res.Mapping.Procs[pid].Config != (platform.Config{CPU: 0, NIC: 0}) {
			t.Fatalf("homogeneous catalog produced config %+v", res.Mapping.Procs[pid].Config)
		}
	}
}

func TestByName(t *testing.T) {
	for _, h := range All() {
		got, err := ByName(h.Name())
		if err != nil || got.Name() != h.Name() {
			t.Fatalf("ByName(%q) = %v, %v", h.Name(), got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestRandomHeuristicDeterministicPerSeed(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 25, Alpha: 0.9}, 4)
	a, errA := Solve(in, Random{}, Options{Seed: 7})
	b, errB := Solve(in, Random{}, Options{Seed: 7})
	if (errA == nil) != (errB == nil) {
		t.Fatal("same seed, different feasibility")
	}
	if errA == nil && a.Cost != b.Cost {
		t.Fatalf("same seed, different costs: %v vs %v", a.Cost, b.Cost)
	}
}

func TestSingleOperatorTree(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 1, Alpha: 1.0}, 1)
	for _, h := range All() {
		res := solveOK(t, in, h)
		if res.Procs != 1 {
			t.Fatalf("%s used %d processors for one operator", h.Name(), res.Procs)
		}
	}
}

// TestSolveContextReuseEquivalence proves the caller-owned mapping
// arena changes storage ownership only: for every heuristic and a
// spread of instances, a SetReuse(true) context produces bit-identical
// solutions (cost, processor count, assignment, download tables) to the
// allocating path.
func TestSolveContextReuseEquivalence(t *testing.T) {
	reused := NewSolveContext()
	reused.SetReuse(true)
	hs := append(All(), SubtreeBottomUp{DisableFold: true})
	for _, n := range []int{1, 5, 20, 60} {
		for seed := int64(1); seed <= 3; seed++ {
			in := instance.Generate(instance.Config{NumOps: n, Alpha: 0.9}, seed)
			for _, h := range hs {
				want, errA := Solve(in, h, Options{Seed: seed})
				got, errB := reused.Solve(in, h, Options{Seed: seed})
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s N=%d seed=%d: fresh err=%v, reused err=%v", h.Name(), n, seed, errA, errB)
				}
				if errA != nil {
					continue
				}
				if want.Cost != got.Cost || want.Procs != got.Procs {
					t.Fatalf("%s N=%d seed=%d: fresh (%v, %d) != reused (%v, %d)",
						h.Name(), n, seed, want.Cost, want.Procs, got.Cost, got.Procs)
				}
				for op := range want.Mapping.Assign {
					pw, pg := want.Mapping.Assign[op], got.Mapping.Assign[op]
					if (pw == -1) != (pg == -1) {
						t.Fatalf("%s N=%d seed=%d: op %d assignment differs", h.Name(), n, seed, op)
					}
				}
				if len(want.Mapping.Procs) != len(got.Mapping.Procs) {
					t.Fatalf("%s N=%d seed=%d: proc lists differ in length", h.Name(), n, seed)
				}
				for p := range want.Mapping.Procs {
					if want.Mapping.Procs[p] != got.Mapping.Procs[p] {
						t.Fatalf("%s N=%d seed=%d: proc %d differs", h.Name(), n, seed, p)
					}
					dw, dg := want.Mapping.DL[p], got.Mapping.DL[p]
					if len(dw) != len(dg) {
						t.Fatalf("%s N=%d seed=%d: proc %d download tables differ", h.Name(), n, seed, p)
					}
					for k, l := range dw {
						if dg[k] != l {
							t.Fatalf("%s N=%d seed=%d: proc %d object %d server %d != %d",
								h.Name(), n, seed, p, k, l, dg[k])
						}
					}
				}
			}
		}
	}
}

// TestSolveContextReuseAllocs pins the arena's effect: repeated
// Subtree-bottom-up solves through a reused context allocate only the
// handful of per-call tree traversals (ALOperators/BottomUp), never a
// mapping, download table, rng or Result.
func TestSolveContextReuseAllocs(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 60, Alpha: 0.9}, 1)
	c := NewSolveContext()
	c.SetReuse(true)
	if _, err := c.Solve(in, SubtreeBottomUp{}, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := c.Solve(in, SubtreeBottomUp{}, Options{Seed: 1}); err != nil {
			t.Fatal(err)
		}
	})
	// The two tree traversals in place_subtree are the only remaining
	// per-solve allocations; anything above this bound means the arena
	// sprang a leak.
	if allocs > 6 {
		t.Fatalf("reused SolveContext allocates %.1f allocs/op, want <= 6", allocs)
	}
}

// TestOneShotSolveMatchesNonArena pins the one-shot routing: the
// package-level Solve runs on a pooled arena context and clones the
// mapping out, and that must be indistinguishable from a plain
// non-arena context solve — same cost, processor list, assignment and
// download tables — while the returned mapping owns independent storage
// that stays internally consistent after further pooled solves reuse
// the arena it was cloned from.
func TestOneShotSolveMatchesNonArena(t *testing.T) {
	plain := NewSolveContext() // reuse off: the historical allocating path
	hs := append(All(), SubtreeBottomUp{DisableFold: true})
	for _, n := range []int{1, 5, 20, 60} {
		for seed := int64(1); seed <= 3; seed++ {
			in := instance.Generate(instance.Config{NumOps: n, Alpha: 0.9}, seed)
			for _, h := range hs {
				got, errA := Solve(in, h, Options{Seed: seed})
				want, errB := plain.Solve(in, h, Options{Seed: seed})
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s N=%d seed=%d: one-shot err=%v, non-arena err=%v", h.Name(), n, seed, errA, errB)
				}
				if errA != nil {
					continue
				}
				if got.Heuristic != want.Heuristic || got.Cost != want.Cost || got.Procs != want.Procs {
					t.Fatalf("%s N=%d seed=%d: one-shot (%v, %d) != non-arena (%v, %d)",
						h.Name(), n, seed, got.Cost, got.Procs, want.Cost, want.Procs)
				}
				for op := range want.Mapping.Assign {
					if want.Mapping.Assign[op] != got.Mapping.Assign[op] {
						t.Fatalf("%s N=%d seed=%d: op %d assigned %d, want %d",
							h.Name(), n, seed, op, got.Mapping.Assign[op], want.Mapping.Assign[op])
					}
				}
				if len(want.Mapping.Procs) != len(got.Mapping.Procs) {
					t.Fatalf("%s N=%d seed=%d: proc lists differ in length", h.Name(), n, seed)
				}
				for p := range want.Mapping.Procs {
					if want.Mapping.Procs[p] != got.Mapping.Procs[p] {
						t.Fatalf("%s N=%d seed=%d: proc %d differs", h.Name(), n, seed, p)
					}
					dw, dg := want.Mapping.DL[p], got.Mapping.DL[p]
					if len(dw) != len(dg) {
						t.Fatalf("%s N=%d seed=%d: proc %d download tables differ", h.Name(), n, seed, p)
					}
					for k, l := range dw {
						if dg[k] != l {
							t.Fatalf("%s N=%d seed=%d: proc %d object %d server %d != %d",
								h.Name(), n, seed, p, k, l, dg[k])
						}
					}
				}
				// The clone must be self-consistent storage of its own: the
				// pooled arena it came from is reused by other solves in
				// this very loop, so any aliasing shows up here.
				if err := got.Mapping.CheckInvariants(); err != nil {
					t.Fatalf("%s N=%d seed=%d: cloned mapping inconsistent: %v", h.Name(), n, seed, err)
				}
			}
		}
	}
}

// TestOneShotSolveAllocs pins the one-shot arena routing's allocation
// win: a package-level Solve now costs one clone of the finished
// mapping (right-sized slices plus the per-proc download tables), not
// an incremental rebuild of the adjacency state on a fresh Mapping —
// which paid roughly 2x this count in append growth.
func TestOneShotSolveAllocs(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 60, Alpha: 0.9}, 1)
	if _, err := Solve(in, SubtreeBottomUp{}, Options{Seed: 1}); err != nil {
		t.Fatal(err) // warm the pooled context
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Solve(in, SubtreeBottomUp{}, Options{Seed: 1}); err != nil {
			t.Fatal(err)
		}
	})
	// Clone of the N=60 solution runs ~30 allocations (slices + one
	// download table and operator list per purchased processor); the old
	// fresh-Mapping path paid ~176. The slack above the measured count
	// absorbs GC-timed sync.Pool refills, nothing else.
	if allocs > 80 {
		t.Fatalf("one-shot Solve allocates %.1f allocs/op, want <= 80", allocs)
	}
}

// TestJournaledSolveIdentical pins Options.Journal as pure observation:
// recording the move journal during a solve must not change the solution
// in any way.
func TestJournaledSolveIdentical(t *testing.T) {
	for _, n := range []int{20, 60} {
		for seed := int64(0); seed < 3; seed++ {
			in := instance.Generate(instance.Config{NumOps: n, Alpha: 0.9}, seed)
			for _, h := range All() {
				plain, perr := Solve(in, h, Options{Seed: seed})
				logged, jerr := Solve(in, h, Options{Seed: seed, Journal: true})
				if (perr == nil) != (jerr == nil) {
					t.Fatalf("N=%d seed=%d %s: journal flipped feasibility: %v vs %v", n, seed, h.Name(), perr, jerr)
				}
				if perr != nil {
					continue
				}
				if plain.Cost != logged.Cost || plain.Procs != logged.Procs {
					t.Fatalf("N=%d seed=%d %s: journaled solve diverged: cost %v/%v procs %d/%d",
						n, seed, h.Name(), plain.Cost, logged.Cost, plain.Procs, logged.Procs)
				}
				for op := range plain.Mapping.Assign {
					if plain.Mapping.Assign[op] != logged.Mapping.Assign[op] {
						t.Fatalf("N=%d seed=%d %s: journaled solve moved operator %d", n, seed, h.Name(), op)
					}
				}
			}
		}
	}
}

// TestRegister pins the external-heuristic registry: registered names
// resolve through ByName, built-in collisions and duplicates panic.
func TestRegister(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	h := nameOnlyHeuristic{name: "test-registered"}
	Register(h)
	t.Cleanup(func() { delete(registered, h.name) })
	got, err := ByName(h.name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != h.name {
		t.Fatalf("ByName returned %q", got.Name())
	}
	mustPanic("duplicate", func() { Register(h) })
	mustPanic("builtin collision", func() { Register(nameOnlyHeuristic{name: SubtreeBottomUp{}.Name()}) })
}

type nameOnlyHeuristic struct{ name string }

func (h nameOnlyHeuristic) Name() string { return h.name }
func (h nameOnlyHeuristic) Place(pc *PlaceContext, m *mapping.Mapping, r *rand.Rand) error {
	return fmt.Errorf("not a real heuristic")
}
