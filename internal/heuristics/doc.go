// Package heuristics implements the six polynomial operator-placement
// heuristics of Benoit et al. (Section 4) together with the shared server
// selection and downgrade steps.
//
// Every heuristic works in the paper's two (plus one) steps:
//
//  1. operator placement: decide how many processors to acquire and which
//     operators run where; most heuristics buy only the most powerful
//     configuration at this stage,
//  2. server selection: decide from which data server each processor
//     downloads each basic object it needs,
//  3. downgrade: replace each purchased processor with the cheapest
//     configuration that still sustains its compute and NIC load.
//
// Solve runs the full pipeline and independently validates the result, so
// a returned Result is always a feasible mapping.
//
// # Reusable solve scratch
//
// Sweep workloads run thousands of solves, so every piece of per-solve
// state has a reusable home and the steady-state pipeline allocates
// almost nothing:
//
//   - SolveContext is the per-worker root: it owns the server-selection
//     Selector, the placement PlaceContext and (with SetReuse) an arena
//     Mapping, recycled Result and reseedable rng streams.
//   - PlaceContext caches the placement strategies' sort and traversal
//     scratch — the work-descending operator order, the per-catalog
//     cost-ascending configuration list, the tree edge list and the
//     al-operator/object-set/popularity/bottom-up tables. A nil
//     PlaceContext is valid everywhere and simply allocates fresh.
//   - Selector runs server selection on flat index-based scratch (dense
//     server residuals, epoch-stamped link residuals, incrementally
//     maintained pending lists); a warmed selector selects with zero
//     allocations.
//
// All orders the heuristics sort by are total (ties break on operator,
// edge or object indices), so the cached-scratch paths produce the same
// canonical orders — and therefore bit-identical mappings — as the
// historical allocating implementations.
//
// The placement probes lean on package mapping's incremental load
// tracking: TryPlace/ProcFeasible answer from per-processor adjacency
// state in O(|ops on p|) rather than re-walking the whole tree, which is
// what keeps large-N solves out of the historical O(N²) regime. See the
// mapping package documentation for the invariants.
//
// None of SolveContext, PlaceContext or Selector is safe for concurrent
// use. Sweep engines hold one SolveContext per worker goroutine; the
// package-level Solve and SelectServers* helpers borrow warmed instances
// from internal pools.
//
// Capacity admission during selection is governed by the single
// admissionEps constant (zero, deliberately stricter than verification's
// mapping.Eps), so selection can never commit a download that Validate
// rejects at a float boundary.
package heuristics
