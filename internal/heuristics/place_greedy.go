package heuristics

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/instance"
	"repro/internal/mapping"
)

// CompGreedy is the paper's computation-greedy heuristic: operators are
// taken in non-increasing order of w_i; each outer round acquires the most
// expensive processor, seeds it with the most computationally demanding
// unassigned operator (grouping with a neighbour when it does not fit
// alone), then packs as many further operators as possible, again by
// non-increasing w_i.
type CompGreedy struct{}

// Name implements Heuristic.
func (CompGreedy) Name() string { return "Comp-Greedy" }

// Place implements Heuristic.
func (CompGreedy) Place(m *mapping.Mapping, _ *rand.Rand) error {
	in := m.Inst
	order := opsByWorkDesc(in)
	for {
		seed := -1
		for _, op := range order {
			if m.OpProc(op) == mapping.Unassigned {
				seed = op
				break
			}
		}
		if seed < 0 {
			return nil
		}
		p := buyMostExpensive(m)
		if err := placeWithGrouping(m, p, seed); err != nil {
			return err
		}
		for _, op := range order {
			if m.OpProc(op) == mapping.Unassigned {
				m.TryPlace(p, op) // best effort: skip operators that do not fit
			}
		}
	}
}

// opsByWorkDesc returns all operator indices by non-increasing w_i
// (ties: smaller index first).
func opsByWorkDesc(in *instance.Instance) []int {
	order := make([]int, in.Tree.NumOps())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := in.W[order[a]], in.W[order[b]]
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	return order
}

// CommGreedy is the paper's communication-greedy heuristic: tree edges are
// taken in non-increasing order of steady-state traffic and the two
// endpoint operators are grouped on one processor whenever possible,
// saving the costly inter-processor communication.
type CommGreedy struct{}

// Name implements Heuristic.
func (CommGreedy) Name() string { return "Comm-Greedy" }

// Place implements Heuristic.
func (CommGreedy) Place(m *mapping.Mapping, _ *rand.Rand) error {
	in := m.Inst
	configs := configsByCost(in.Platform.Catalog)

	buyCheapestFor := func(ops ...int) bool {
		return buyCheapestHosting(m, configs, ops...)
	}
	buyBestFor := func(op int) error {
		p := buyMostExpensive(m)
		return placeWithGrouping(m, p, op)
	}

	edges := in.Tree.Edges()
	sort.Slice(edges, func(a, b int) bool {
		ta, tb := in.EdgeTraffic(edges[a].Child), in.EdgeTraffic(edges[b].Child)
		if ta != tb {
			return ta > tb
		}
		if edges[a].Child != edges[b].Child {
			return edges[a].Child < edges[b].Child
		}
		return edges[a].Parent < edges[b].Parent
	})

	for _, e := range edges {
		pu, pv := m.OpProc(e.Parent), m.OpProc(e.Child)
		switch {
		case pu == mapping.Unassigned && pv == mapping.Unassigned:
			// (i) both unassigned: cheapest processor hosting both, else
			// the most expensive processor for each.
			if buyCheapestFor(e.Parent, e.Child) {
				continue
			}
			if err := buyBestFor(e.Parent); err != nil {
				return err
			}
			if err := buyBestFor(e.Child); err != nil {
				return err
			}
		case pu == mapping.Unassigned || pv == mapping.Unassigned:
			// (ii) one assigned: try to accommodate the other on the same
			// processor, else most expensive processor for it.
			assignedProc, other := pu, e.Child
			if pu == mapping.Unassigned {
				assignedProc, other = pv, e.Parent
			}
			if m.TryPlace(assignedProc, other) {
				continue
			}
			if err := buyBestFor(other); err != nil {
				return err
			}
		case pu != pv:
			// (iii) both assigned on different processors: try to merge
			// one processor's operators onto the other and sell it; keep
			// the current assignment when neither direction works.
			if !m.MoveAll(pv, pu) {
				m.MoveAll(pu, pv)
			}
		}
	}
	// A single-operator tree has no edges; place the lone operator.
	for op := range in.Tree.Ops {
		if m.OpProc(op) == mapping.Unassigned {
			if !buyCheapestFor(op) {
				return fmt.Errorf("operator %d fits no processor: %w", op, ErrInfeasible)
			}
		}
	}
	return nil
}
