package heuristics

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/apptree"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/xslice"
)

// CompGreedy is the paper's computation-greedy heuristic: operators are
// taken in non-increasing order of w_i; each outer round acquires the most
// expensive processor, seeds it with the most computationally demanding
// unassigned operator (grouping with a neighbour when it does not fit
// alone), then packs as many further operators as possible, again by
// non-increasing w_i.
type CompGreedy struct{}

// Name implements Heuristic.
func (CompGreedy) Name() string { return "Comp-Greedy" }

// Place implements Heuristic.
func (CompGreedy) Place(pc *PlaceContext, m *mapping.Mapping, _ *rand.Rand) error {
	in := m.Inst
	order := opsByWorkDesc(pc, in)
	// Operators only ever gain assignments inside this loop (grouping
	// restores any operator it detaches), so the seed scan can resume
	// where the last round stopped instead of rescanning the prefix.
	start := 0
	for {
		for start < len(order) && m.OpProc(order[start]) != mapping.Unassigned {
			start++
		}
		if start == len(order) {
			return nil
		}
		seed := order[start]
		p := buyMostExpensive(m)
		if err := placeWithGrouping(m, p, seed); err != nil {
			return err
		}
		for _, op := range order[start:] {
			if m.OpProc(op) == mapping.Unassigned {
				m.TryPlace(p, op) // best effort: skip operators that do not fit
			}
		}
	}
}

// opsByWorkDesc returns all operator indices by non-increasing w_i
// (ties: smaller index first) — a total order, so the sorted result is
// canonical. The order lives in the PlaceContext buffer when one is
// supplied.
func opsByWorkDesc(pc *PlaceContext, in *instance.Instance) []int {
	n := in.Tree.NumOps()
	var order []int
	if pc == nil {
		order = make([]int, n)
	} else {
		pc.order = xslice.Grow(pc.order, n)
		order = pc.order
	}
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		wa, wb := in.W[a], in.W[b]
		switch {
		case wa > wb:
			return -1
		case wa < wb:
			return 1
		}
		return a - b
	})
	return order
}

// CommGreedy is the paper's communication-greedy heuristic: tree edges are
// taken in non-increasing order of steady-state traffic and the two
// endpoint operators are grouped on one processor whenever possible,
// saving the costly inter-processor communication.
type CommGreedy struct{}

// Name implements Heuristic.
func (CommGreedy) Name() string { return "Comm-Greedy" }

// Place implements Heuristic.
func (CommGreedy) Place(pc *PlaceContext, m *mapping.Mapping, _ *rand.Rand) error {
	in := m.Inst
	configs := configsByCost(pc, in.Platform.Catalog)

	buyCheapestFor := func(ops ...int) bool {
		return buyCheapestHosting(m, configs, ops...)
	}
	buyBestFor := func(op int) error {
		p := buyMostExpensive(m)
		return placeWithGrouping(m, p, op)
	}

	edges := pc.treeEdges(in.Tree)
	slices.SortFunc(edges, func(a, b apptree.Edge) int {
		ta, tb := in.EdgeTraffic(a.Child), in.EdgeTraffic(b.Child)
		switch {
		case ta > tb:
			return -1
		case ta < tb:
			return 1
		}
		if a.Child != b.Child {
			return a.Child - b.Child
		}
		return a.Parent - b.Parent
	})

	for _, e := range edges {
		pu, pv := m.OpProc(e.Parent), m.OpProc(e.Child)
		switch {
		case pu == mapping.Unassigned && pv == mapping.Unassigned:
			// (i) both unassigned: cheapest processor hosting both, else
			// the most expensive processor for each.
			if buyCheapestFor(e.Parent, e.Child) {
				continue
			}
			if err := buyBestFor(e.Parent); err != nil {
				return err
			}
			if err := buyBestFor(e.Child); err != nil {
				return err
			}
		case pu == mapping.Unassigned || pv == mapping.Unassigned:
			// (ii) one assigned: try to accommodate the other on the same
			// processor, else most expensive processor for it.
			assignedProc, other := pu, e.Child
			if pu == mapping.Unassigned {
				assignedProc, other = pv, e.Parent
			}
			if m.TryPlace(assignedProc, other) {
				continue
			}
			if err := buyBestFor(other); err != nil {
				return err
			}
		case pu != pv:
			// (iii) both assigned on different processors: try to merge
			// one processor's operators onto the other and sell it; keep
			// the current assignment when neither direction works.
			if !m.MoveAll(pv, pu) {
				m.MoveAll(pu, pv)
			}
		}
	}
	// A single-operator tree has no edges; place the lone operator.
	for op := range in.Tree.Ops {
		if m.OpProc(op) == mapping.Unassigned {
			if !buyCheapestFor(op) {
				return fmt.Errorf("operator %d fits no processor: %w", op, ErrInfeasible)
			}
		}
	}
	return nil
}
