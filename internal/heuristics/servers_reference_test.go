package heuristics

// This file preserves the pre-refactor map-based server selection as a
// reference implementation. TestThreeLoopMatchesReference proves the
// flat-scratch Selector chooses byte-identical servers on real
// instances; the reference is test-only code and must not grow features.
// (Its admission tests keep the historical 1e-9 tolerance — the boundary
// behavior TestCapacityEpsBoundary shows the Selector fixed.)

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/mapping"
)

type refSelectionState struct {
	m          *mapping.Mapping
	serverLeft []float64
	linkLeft   map[[2]int]float64
	pending    map[[2]int]bool
}

func newRefSelectionState(m *mapping.Mapping) *refSelectionState {
	in := m.Inst
	st := &refSelectionState{
		m:          m,
		serverLeft: make([]float64, len(in.Platform.Servers)),
		linkLeft:   map[[2]int]float64{},
		pending:    map[[2]int]bool{},
	}
	for l := range in.Platform.Servers {
		st.serverLeft[l] = in.Platform.Servers[l].NICMBps
	}
	for _, p := range m.AliveProcs() {
		for _, k := range m.NeededObjects(p) {
			st.pending[[2]int{p, k}] = true
		}
	}
	return st
}

func (st *refSelectionState) linkResidual(l, p int) float64 {
	if v, ok := st.linkLeft[[2]int{l, p}]; ok {
		return v
	}
	return st.m.Inst.Platform.ServerLinkMBps
}

func (st *refSelectionState) assign(p, k, l int) bool {
	rate := st.m.Inst.Rate(k)
	if st.serverLeft[l] < rate-1e-9 || st.linkResidual(l, p) < rate-1e-9 {
		return false
	}
	st.serverLeft[l] -= rate
	st.linkLeft[[2]int{l, p}] = st.linkResidual(l, p) - rate
	st.m.SelectServer(p, k, l)
	delete(st.pending, [2]int{p, k})
	return true
}

func (st *refSelectionState) pendingByObject() (objs []int, procsOf map[int][]int) {
	procsOf = map[int][]int{}
	for pk := range st.pending {
		procsOf[pk[1]] = append(procsOf[pk[1]], pk[0])
	}
	for k := range procsOf {
		sort.Ints(procsOf[k])
		objs = append(objs, k)
	}
	sort.Ints(objs)
	return objs, procsOf
}

func (st *refSelectionState) usableHolders(k int) int {
	rate := st.m.Inst.Rate(k)
	n := 0
	for _, l := range st.m.Inst.Holders[k] {
		if st.serverLeft[l] >= rate-1e-9 {
			n++
		}
	}
	return n
}

func refSelectServersThreeLoop(m *mapping.Mapping) error {
	in := m.Inst
	st := newRefSelectionState(m)

	objs, procsOf := st.pendingByObject()
	for _, k := range objs {
		if in.Availability(k) != 1 {
			continue
		}
		l := in.Holders[k][0]
		for _, p := range procsOf[k] {
			if !st.assign(p, k, l) {
				return fmt.Errorf("object %d only on server %d which lacks capacity: %w", k, l, ErrInfeasible)
			}
		}
	}

	typesOn := make(map[int][]int)
	for k := range in.Holders {
		for _, l := range in.Holders[k] {
			typesOn[l] = append(typesOn[l], k)
		}
	}
	var singleTypeServers []int
	for l, ks := range typesOn {
		if len(ks) == 1 {
			singleTypeServers = append(singleTypeServers, l)
		}
	}
	sort.Ints(singleTypeServers)
	for _, l := range singleTypeServers {
		k := typesOn[l][0]
		_, procsOf := st.pendingByObject()
		for _, p := range procsOf[k] {
			st.assign(p, k, l)
		}
	}

	for len(st.pending) > 0 {
		objs, procsOf := st.pendingByObject()
		sort.Slice(objs, func(a, b int) bool {
			ra := ratio(len(procsOf[objs[a]]), st.usableHolders(objs[a]))
			rb := ratio(len(procsOf[objs[b]]), st.usableHolders(objs[b]))
			if ra != rb {
				return ra > rb
			}
			return objs[a] < objs[b]
		})
		k := objs[0]
		for _, p := range procsOf[k] {
			holders := append([]int(nil), in.Holders[k]...)
			sort.Slice(holders, func(a, b int) bool {
				ca := minf(st.serverLeft[holders[a]], st.linkResidual(holders[a], p))
				cb := minf(st.serverLeft[holders[b]], st.linkResidual(holders[b], p))
				if ca != cb {
					return ca > cb
				}
				return holders[a] < holders[b]
			})
			done := false
			for _, l := range holders {
				if st.assign(p, k, l) {
					done = true
					break
				}
			}
			if !done {
				return fmt.Errorf("no server has capacity for object %d to processor %d: %w", k, p, ErrInfeasible)
			}
		}
	}
	return nil
}

func refSelectServersRandom(m *mapping.Mapping, r *rand.Rand) error {
	st := newRefSelectionState(m)
	var downloads [][2]int
	for pk := range st.pending {
		downloads = append(downloads, pk)
	}
	sort.Slice(downloads, func(a, b int) bool {
		if downloads[a][0] != downloads[b][0] {
			return downloads[a][0] < downloads[b][0]
		}
		return downloads[a][1] < downloads[b][1]
	})
	r.Shuffle(len(downloads), func(i, j int) { downloads[i], downloads[j] = downloads[j], downloads[i] })
	for _, pk := range downloads {
		p, k := pk[0], pk[1]
		holders := append([]int(nil), m.Inst.Holders[k]...)
		r.Shuffle(len(holders), func(i, j int) { holders[i], holders[j] = holders[j], holders[i] })
		done := false
		for _, l := range holders {
			if st.assign(p, k, l) {
				done = true
				break
			}
		}
		if !done {
			return fmt.Errorf("no server has capacity for object %d to processor %d: %w", k, p, ErrInfeasible)
		}
	}
	return nil
}
