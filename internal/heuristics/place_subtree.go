package heuristics

import (
	"fmt"
	"math/rand"

	"repro/internal/mapping"
)

// SubtreeBottomUp is the paper's best-performing heuristic: it first
// acquires one most-expensive processor per al-operator, then walks the
// tree bottom-up, merging each operator with the processor of one of its
// children (preferring the child with the most demanding communication)
// and opportunistically folding whole child processors together, returning
// the processors this empties.
//
// DisableFold keeps the per-operator merges but skips the wholesale
// folding of sibling processors; this mimics the more conservative merging
// the paper's cost curves suggest (ablation A3 in DESIGN.md) at the price
// of buying roughly one processor per al-operator.
type SubtreeBottomUp struct {
	DisableFold bool
}

// Name implements Heuristic.
func (h SubtreeBottomUp) Name() string {
	if h.DisableFold {
		return "Subtree-bottom-up-nofold"
	}
	return "Subtree-bottom-up"
}

// Place implements Heuristic.
func (h SubtreeBottomUp) Place(pc *PlaceContext, m *mapping.Mapping, _ *rand.Rand) error {
	in := m.Inst

	// Step 1: one most-expensive processor per al-operator. When an
	// al-operator is adjacent to an already-placed one and the shared edge
	// exceeds the processor links, the grouping fallback co-locates them.
	for _, op := range pc.alOperators(in.Tree) {
		p := buyMostExpensive(m)
		if err := placeWithGrouping(m, p, op); err != nil {
			return fmt.Errorf("al-operator %d: %w", op, err)
		}
	}

	// Step 2: bottom-up, place each remaining operator with one of its
	// children, merging sibling processors whenever that fits.
	for _, op := range pc.bottomUp(in.Tree) {
		if m.OpProc(op) != mapping.Unassigned {
			// Already placed (al-operator); still try to fold the
			// processors of its operator children into this one.
			if !h.DisableFold {
				mergeChildren(m, op)
			}
			continue
		}
		// Prefer the child with the largest edge traffic. A binary tree
		// has at most two operator children, so a fixed buffer and one
		// conditional swap replace the allocating sort.
		var cbuf [2]int
		children := append(cbuf[:0], in.Tree.Ops[op].ChildOps...)
		if len(children) == 2 {
			ta, tb := in.EdgeTraffic(children[0]), in.EdgeTraffic(children[1])
			if tb > ta || (tb == ta && children[1] < children[0]) {
				children[0], children[1] = children[1], children[0]
			}
		}
		placed := false
		for _, c := range children {
			p := m.OpProc(c)
			if p == mapping.Unassigned {
				continue
			}
			if m.TryPlace(p, op) {
				placed = true
				break
			}
			if h.DisableFold {
				continue
			}
			// The blocking constraint is usually the edge to the other
			// child's processor; fold that processor in first and retry.
			for _, other := range children {
				if q := m.OpProc(other); other != c && q != mapping.Unassigned && q != p {
					m.MoveAll(q, p)
				}
			}
			if m.TryPlace(p, op) {
				placed = true
				break
			}
		}
		if !placed {
			p := buyMostExpensive(m)
			if !m.TryPlace(p, op) {
				m.Sell(p)
				return fmt.Errorf("operator %d fits no processor: %w", op, ErrInfeasible)
			}
		}
		if !h.DisableFold {
			mergeChildren(m, op)
		}
	}
	return nil
}

// mergeChildren tries to fold the processors hosting op's operator
// children into op's processor (selling the emptied ones). Children hosted
// on op's own processor are already merged.
func mergeChildren(m *mapping.Mapping, op int) {
	p := m.OpProc(op)
	for _, c := range m.Inst.Tree.Ops[op].ChildOps {
		if q := m.OpProc(c); q != mapping.Unassigned && q != p {
			m.MoveAll(q, p)
		}
	}
}
