package heuristics

import (
	"fmt"
	"math/rand"

	"repro/internal/mapping"
)

// Random is the paper's baseline heuristic: it repeatedly picks a random
// unassigned operator and acquires the cheapest processor able to handle
// it; when no single processor can, the operator is grouped with the
// neighbour sharing its most demanding communication requirement
// (detaching that neighbour from any processor it was already on, selling
// the processor if emptied).
type Random struct{}

// Name implements Heuristic.
func (Random) Name() string { return "Random" }

// Place implements Heuristic.
func (Random) Place(pc *PlaceContext, m *mapping.Mapping, r *rand.Rand) error {
	in := m.Inst
	configs := configsByCost(pc, in.Platform.Catalog)

	rest := pc.pendingBuf() // reused across rounds; refilled before each draw
	unassigned := func() []int {
		rest = rest[:0]
		for op := range in.Tree.Ops {
			if m.OpProc(op) == mapping.Unassigned {
				rest = append(rest, op)
			}
		}
		if pc != nil {
			pc.pending = rest // keep grown capacity for the next solve
		}
		return rest
	}

	buyCheapestFor := func(ops ...int) bool {
		return buyCheapestHosting(m, configs, ops...)
	}

	for {
		pending := unassigned()
		if len(pending) == 0 {
			return nil
		}
		op := pending[r.Intn(len(pending))]
		if buyCheapestFor(op) {
			continue
		}
		// Group with the most communication-demanding neighbour.
		var nbBuf [3]neighbour
		nbs := neighbours(in, op, &nbBuf)
		if len(nbs) == 0 {
			return fmt.Errorf("operator %d fits no processor: %w", op, ErrInfeasible)
		}
		nb := nbs[0]
		was := m.OpProc(nb.op)
		detachOp(m, nb.op)
		if buyCheapestFor(op, nb.op) {
			continue
		}
		if was != mapping.Unassigned {
			if !m.Procs[was].Alive {
				was = m.Buy(m.Procs[was].Config)
			}
			m.Place(nb.op, was)
		}
		return fmt.Errorf("operators %d+%d fit no processor together: %w", op, nb.op, ErrInfeasible)
	}
}
