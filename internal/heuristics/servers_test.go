package heuristics

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/apptree"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/rng"
)

// selInstance builds a controllable instance for server-selection tests:
// a left-deep tree over the given object types, with chosen holders and
// server NIC capacities.
func selInstance(objects []int, numTypes int, holders [][]int, serverNIC []float64, freq float64) *instance.Instance {
	p := platform.DefaultPlatform()
	p.Servers = make([]platform.Server, len(serverNIC))
	for i, b := range serverNIC {
		p.Servers[i] = platform.Server{NICMBps: b}
	}
	sizes := make([]float64, numTypes)
	freqs := make([]float64, numTypes)
	for k := range sizes {
		sizes[k] = 10
		freqs[k] = freq
	}
	in := &instance.Instance{
		Tree:     apptree.LeftDeep(objects),
		NumTypes: numTypes,
		Sizes:    sizes,
		Freqs:    freqs,
		Holders:  holders,
		Platform: p,
		Rho:      1,
		Alpha:    1,
	}
	in.Refresh()
	return in
}

// mapAllOnOne places every operator on one most-expensive processor.
func mapAllOnOne(in *instance.Instance) *mapping.Mapping {
	m := mapping.New(in)
	p := m.Buy(in.Platform.Catalog.MostExpensive())
	for op := range in.Tree.Ops {
		m.Place(op, p)
	}
	return m
}

func TestThreeLoopSingleHolderPinned(t *testing.T) {
	// Object 0 held only by server 1: loop 1 must pin it there.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{1}, {0, 1}}, []float64{10000, 10000}, 0.5)
	m := mapAllOnOne(in)
	if err := SelectServersThreeLoop(m); err != nil {
		t.Fatal(err)
	}
	if got := m.DL[0][0]; got != 1 {
		t.Fatalf("object 0 downloaded from server %d, want 1", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThreeLoopSingleHolderOverloadFails(t *testing.T) {
	// Object 0 (rate 5 MB/s) only on a server with a 1 MB/s NIC.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{1}, {0}}, []float64{10000, 1}, 0.5)
	m := mapAllOnOne(in)
	err := SelectServersThreeLoop(m)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestThreeLoopPrefersSingleTypeServer(t *testing.T) {
	// Server 1 holds only object 0; server 0 holds both types. Loop 2
	// should route object 0 to server 1, keeping server 0 free for 1.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0, 1}, {0}}, []float64{10000, 10000}, 0.5)
	m := mapAllOnOne(in)
	if err := SelectServersThreeLoop(m); err != nil {
		t.Fatal(err)
	}
	if got := m.DL[0][0]; got != 1 {
		t.Fatalf("object 0 downloaded from server %d, want single-type server 1", got)
	}
}

func TestThreeLoopBalancesLoadedServers(t *testing.T) {
	// Three downloads of 5 MB/s each (object 0 by two processors, object 1
	// by one) must spread across two servers with 10 MB/s NICs; loop 3's
	// max-min-residual rule balances them.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0, 1}, {0, 1}}, []float64{10, 10}, 0.5)
	// Two processors: split the operators.
	m := mapping.New(in)
	p1 := m.Buy(in.Platform.Catalog.MostExpensive())
	p2 := m.Buy(in.Platform.Catalog.MostExpensive())
	// Left-deep tree over objects [0 1 0 1]: op0 needs {0,1}, op1 needs
	// {0}, op2 needs {1}.
	m.Place(0, p1)
	m.Place(1, p2)
	m.Place(2, p1)
	if err := SelectServersThreeLoop(m); err != nil {
		t.Fatal(err)
	}
	// Both p1 and p2 download object 0; they must use different servers
	// (each server only has capacity for one 5 MB/s download... of obj 0;
	// object 1 at rate 5 must then fail -- so actually give servers 10).
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.DL[p1][0] == m.DL[p2][0] {
		srv := m.DL[p1][0]
		if m.ServerLoad(srv) > in.Platform.Servers[srv].NICMBps {
			t.Fatal("both downloads on one server exceeded its NIC")
		}
	}
}

func TestThreeLoopNoCapacityFails(t *testing.T) {
	// Total demanded rate exceeds all server NICs combined.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0}, {0}}, []float64{7}, 0.5)
	m := mapAllOnOne(in)
	err := SelectServersThreeLoop(m)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestRandomSelectionRespectsCapacity(t *testing.T) {
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0, 1}, {0, 1}}, []float64{5, 10}, 0.5)
	m := mapAllOnOne(in)
	if err := SelectServersRandom(m, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSelectionFailsWhenImpossible(t *testing.T) {
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0}, {0}}, []float64{7}, 0.5)
	m := mapAllOnOne(in)
	if err := SelectServersRandom(m, rng.New(3)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSelectionCoversExactlyNeededObjects(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 25, Alpha: 0.9}, 8)
	res, err := Solve(in, CompGreedy{}, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mapping
	for _, p := range m.AliveProcs() {
		needed := m.NeededObjects(p)
		if len(needed) != len(m.DL[p]) {
			t.Fatalf("proc %d: %d needed objects, %d downloads", p, len(needed), len(m.DL[p]))
		}
	}
}

func TestLinkCapacityForcesSplit(t *testing.T) {
	// One processor needs objects 0 and 1 (5 MB/s each), both held only by
	// server 0, and the server->proc link is 8 MB/s: total 10 > 8 must
	// fail even though the server NIC (10 GB/s) is fine.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0}, {0}}, []float64{10000}, 0.5)
	in.Platform.ServerLinkMBps = 8
	m := mapAllOnOne(in)
	if err := SelectServersThreeLoop(m); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible from link capacity, got %v", err)
	}
	// With two holders the loads can split across two links.
	in2 := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0}, {1}}, []float64{10000, 10000}, 0.5)
	in2.Platform.ServerLinkMBps = 8
	m2 := mapAllOnOne(in2)
	if err := SelectServersThreeLoop(m2); err != nil {
		t.Fatal(err)
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
}

// placedMapping runs the placement half of the Solve pipeline, returning
// nil when the instance is infeasible for the heuristic.
func placedMapping(in *instance.Instance, h Heuristic, seed int64) *mapping.Mapping {
	if Precheck(in) != nil {
		return nil
	}
	m := mapping.New(in)
	if err := h.Place(nil, m, rng.Derive(seed, "heuristic:"+h.Name())); err != nil || !m.Complete() {
		return nil
	}
	sellEmpty(m)
	return m
}

// checkServerCapacities asserts property (a) of the selector: committed
// downloads never exceed a server NIC or a server-processor link beyond
// the verification tolerance.
func checkServerCapacities(t *testing.T, m *mapping.Mapping) {
	t.Helper()
	in := m.Inst
	for l := range in.Platform.Servers {
		if load, cap := m.ServerLoad(l), in.Platform.Servers[l].NICMBps; load > cap+mapping.Eps {
			t.Fatalf("server %d NIC overshoot: %.12f > %.12f", l, load, cap)
		}
		for p := range m.Procs {
			if !m.Procs[p].Alive {
				continue
			}
			if load := m.ServerLinkLoad(l, p); load > in.Platform.ServerLinkMBps+mapping.Eps {
				t.Fatalf("link %d->%d overshoot: %.12f", l, p, load)
			}
		}
	}
}

// TestThreeLoopMatchesReference proves the flat-scratch selector (b)
// chooses byte-identical servers to the historical map-based
// implementation across the canonical corpus grid, for every placement
// heuristic, while (a) respecting all server-side capacities.
func TestThreeLoopMatchesReference(t *testing.T) {
	sel := &Selector{}
	for _, n := range []int{20, 60, 140} {
		for _, alpha := range []float64{0.9, 1.7} {
			for seed := int64(1); seed <= 3; seed++ {
				in := instance.Generate(instance.Config{NumOps: n, Alpha: alpha}, seed)
				for _, h := range All() {
					m := placedMapping(in, h, seed)
					if m == nil {
						continue
					}
					ref := m.Clone()
					errNew := sel.ThreeLoop(m)
					errRef := refSelectServersThreeLoop(ref)
					if (errNew == nil) != (errRef == nil) {
						t.Fatalf("N=%d alpha=%g seed=%d %s: selector err=%v, reference err=%v",
							n, alpha, seed, h.Name(), errNew, errRef)
					}
					if errNew != nil {
						continue
					}
					if !reflect.DeepEqual(m.DL, ref.DL) {
						t.Fatalf("N=%d alpha=%g seed=%d %s: server choices diverge:\n%v\nvs reference\n%v",
							n, alpha, seed, h.Name(), m.DL, ref.DL)
					}
					checkServerCapacities(t, m)
				}
			}
		}
	}
}

// TestRandomSelectionMatchesReference is the same equivalence for the
// random selection: the selector gathers its work list in the exact
// (proc, object) order the reference sorted into, so both consume the
// same random stream and pick the same servers.
func TestRandomSelectionMatchesReference(t *testing.T) {
	sel := &Selector{}
	for seed := int64(1); seed <= 5; seed++ {
		in := instance.Generate(instance.Config{NumOps: 40, Alpha: 0.9}, seed)
		m := placedMapping(in, Random{}, seed)
		if m == nil {
			continue
		}
		ref := m.Clone()
		errNew := sel.Random(m, rng.Derive(seed, "selection:Random"))
		errRef := refSelectServersRandom(ref, rng.Derive(seed, "selection:Random"))
		if (errNew == nil) != (errRef == nil) {
			t.Fatalf("seed %d: selector err=%v, reference err=%v", seed, errNew, errRef)
		}
		if errNew == nil && !reflect.DeepEqual(m.DL, ref.DL) {
			t.Fatalf("seed %d: server choices diverge", seed)
		}
	}
}

// boundaryInstance builds one processor needing objects with the given
// download rates, all held by a single server with NIC capacity cap.
func boundaryInstance(rates []float64, cap float64) *mapping.Mapping {
	objects := make([]int, len(rates))
	holders := make([][]int, len(rates))
	for k := range rates {
		objects[k] = k
		holders[k] = []int{0}
	}
	p := platform.DefaultPlatform()
	p.Servers = []platform.Server{{NICMBps: cap}}
	p.ServerLinkMBps = 1e12 // keep links out of the picture
	in := &instance.Instance{
		Tree:     apptree.LeftDeep(objects),
		NumTypes: len(rates),
		Sizes:    append([]float64(nil), rates...),
		Freqs:    make([]float64, len(rates)),
		Holders:  holders,
		Platform: p,
		Rho:      1,
		Alpha:    1,
	}
	for k := range in.Freqs {
		in.Freqs[k] = 1 // rate_k == Sizes[k]
	}
	in.Refresh()
	return mapAllOnOne(in)
}

// TestCapacityEpsBoundary is the regression test for the capacity-
// tolerance unification: at rates exactly on the capacity boundary the
// selector must never commit a download set that mapping's verification
// rejects. The historical 1e-9-tolerant admission did exactly that —
// with the server NIC one Eps short of the total rate it admitted every
// download (overshooting the NIC), and Validate's fresh re-summation
// could reject the mapping depending on map iteration order. The
// selector's zero-tolerance admission refuses instead, and still admits
// exact fits.
func TestCapacityEpsBoundary(t *testing.T) {
	// A rate triple (found by scanning the float lattice) whose
	// sequential admission chain stays within the historical 1e-9
	// tolerance while the total overshoots the capacity.
	rates := []float64{0.003655, 1.1006850000000001, 2.7015000000000002}
	sum := rates[0] + rates[1] + rates[2]

	// The historical implementation admits the whole set even though the
	// server NIC is Eps short of it: an overshoot verification is
	// entitled to reject.
	ref := boundaryInstance(rates, sum-mapping.Eps)
	if err := refSelectServersThreeLoop(ref); err != nil {
		t.Fatalf("reference no longer admits the boundary overshoot: %v", err)
	}
	if load, cap := ref.ServerLoad(0), ref.Inst.Platform.Servers[0].NICMBps; load <= cap {
		t.Fatalf("reference was expected to overshoot the NIC: load %.12f <= cap %.12f", load, cap)
	}

	// The selector must keep the selection/verification agreement at
	// every capacity in the boundary's neighbourhood: either refuse with
	// ErrInfeasible, or produce a mapping Validate accepts.
	caps := []float64{
		sum - mapping.Eps,
		math.Nextafter(sum, 0),
		sum,
		math.Nextafter(sum, math.Inf(1)),
		sum + mapping.Eps,
		rates[2], // single-download boundaries, via the other objects failing
	}
	for _, cap := range caps {
		m := boundaryInstance(rates, cap)
		err := SelectServersThreeLoop(m)
		switch {
		case err == nil:
			if verr := m.Validate(); verr != nil {
				t.Fatalf("cap=%v: selection committed a mapping verification rejects: %v", cap, verr)
			}
			checkServerCapacities(t, m)
		case !errors.Is(err, ErrInfeasible):
			t.Fatalf("cap=%v: unexpected error %v", cap, err)
		}
	}

	// Exact fit: a capacity of exactly the total rate must stay feasible.
	m := boundaryInstance(rates, sum)
	if err := SelectServersThreeLoop(m); err != nil {
		t.Fatalf("exact-fit capacity must be admitted: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	// One Eps short of the total must now be refused up front (the
	// admission has zero tolerance), never committed-then-invalid.
	m = boundaryInstance(rates, sum-mapping.Eps)
	if err := SelectServersThreeLoop(m); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("under-capacity boundary must be ErrInfeasible, got %v", err)
	}

	// Same agreement for the random selection.
	for _, cap := range caps {
		m := boundaryInstance(rates, cap)
		err := SelectServersRandom(m, rng.New(7))
		switch {
		case err == nil:
			if verr := m.Validate(); verr != nil {
				t.Fatalf("random cap=%v: selection committed a mapping verification rejects: %v", cap, verr)
			}
		case !errors.Is(err, ErrInfeasible):
			t.Fatalf("random cap=%v: unexpected error %v", cap, err)
		}
	}
}

// TestSelectorAllocsPinned pins the tentpole: a reused selector runs the
// three-loop selection without allocating.
func TestSelectorAllocsPinned(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 60, Alpha: 0.9}, 1)
	m := placedMapping(in, SubtreeBottomUp{}, 1)
	if m == nil {
		t.Fatal("placement failed")
	}
	sel := &Selector{}
	if err := sel.ThreeLoop(m); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := sel.ThreeLoop(m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("reused selector allocates %.1f allocs/op, want 0", allocs)
	}
}
