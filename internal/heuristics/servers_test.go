package heuristics

import (
	"errors"
	"testing"

	"repro/internal/apptree"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/rng"
)

// selInstance builds a controllable instance for server-selection tests:
// a left-deep tree over the given object types, with chosen holders and
// server NIC capacities.
func selInstance(objects []int, numTypes int, holders [][]int, serverNIC []float64, freq float64) *instance.Instance {
	p := platform.DefaultPlatform()
	p.Servers = make([]platform.Server, len(serverNIC))
	for i, b := range serverNIC {
		p.Servers[i] = platform.Server{NICMBps: b}
	}
	sizes := make([]float64, numTypes)
	freqs := make([]float64, numTypes)
	for k := range sizes {
		sizes[k] = 10
		freqs[k] = freq
	}
	in := &instance.Instance{
		Tree:     apptree.LeftDeep(objects),
		NumTypes: numTypes,
		Sizes:    sizes,
		Freqs:    freqs,
		Holders:  holders,
		Platform: p,
		Rho:      1,
		Alpha:    1,
	}
	in.Refresh()
	return in
}

// mapAllOnOne places every operator on one most-expensive processor.
func mapAllOnOne(in *instance.Instance) *mapping.Mapping {
	m := mapping.New(in)
	p := m.Buy(in.Platform.Catalog.MostExpensive())
	for op := range in.Tree.Ops {
		m.Place(op, p)
	}
	return m
}

func TestThreeLoopSingleHolderPinned(t *testing.T) {
	// Object 0 held only by server 1: loop 1 must pin it there.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{1}, {0, 1}}, []float64{10000, 10000}, 0.5)
	m := mapAllOnOne(in)
	if err := SelectServersThreeLoop(m); err != nil {
		t.Fatal(err)
	}
	if got := m.DL[0][0]; got != 1 {
		t.Fatalf("object 0 downloaded from server %d, want 1", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThreeLoopSingleHolderOverloadFails(t *testing.T) {
	// Object 0 (rate 5 MB/s) only on a server with a 1 MB/s NIC.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{1}, {0}}, []float64{10000, 1}, 0.5)
	m := mapAllOnOne(in)
	err := SelectServersThreeLoop(m)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestThreeLoopPrefersSingleTypeServer(t *testing.T) {
	// Server 1 holds only object 0; server 0 holds both types. Loop 2
	// should route object 0 to server 1, keeping server 0 free for 1.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0, 1}, {0}}, []float64{10000, 10000}, 0.5)
	m := mapAllOnOne(in)
	if err := SelectServersThreeLoop(m); err != nil {
		t.Fatal(err)
	}
	if got := m.DL[0][0]; got != 1 {
		t.Fatalf("object 0 downloaded from server %d, want single-type server 1", got)
	}
}

func TestThreeLoopBalancesLoadedServers(t *testing.T) {
	// Three downloads of 5 MB/s each (object 0 by two processors, object 1
	// by one) must spread across two servers with 10 MB/s NICs; loop 3's
	// max-min-residual rule balances them.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0, 1}, {0, 1}}, []float64{10, 10}, 0.5)
	// Two processors: split the operators.
	m := mapping.New(in)
	p1 := m.Buy(in.Platform.Catalog.MostExpensive())
	p2 := m.Buy(in.Platform.Catalog.MostExpensive())
	// Left-deep tree over objects [0 1 0 1]: op0 needs {0,1}, op1 needs
	// {0}, op2 needs {1}.
	m.Place(0, p1)
	m.Place(1, p2)
	m.Place(2, p1)
	if err := SelectServersThreeLoop(m); err != nil {
		t.Fatal(err)
	}
	// Both p1 and p2 download object 0; they must use different servers
	// (each server only has capacity for one 5 MB/s download... of obj 0;
	// object 1 at rate 5 must then fail -- so actually give servers 10).
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.DL[p1][0] == m.DL[p2][0] {
		srv := m.DL[p1][0]
		if m.ServerLoad(srv) > in.Platform.Servers[srv].NICMBps {
			t.Fatal("both downloads on one server exceeded its NIC")
		}
	}
}

func TestThreeLoopNoCapacityFails(t *testing.T) {
	// Total demanded rate exceeds all server NICs combined.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0}, {0}}, []float64{7}, 0.5)
	m := mapAllOnOne(in)
	err := SelectServersThreeLoop(m)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestRandomSelectionRespectsCapacity(t *testing.T) {
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0, 1}, {0, 1}}, []float64{5, 10}, 0.5)
	m := mapAllOnOne(in)
	if err := SelectServersRandom(m, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSelectionFailsWhenImpossible(t *testing.T) {
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0}, {0}}, []float64{7}, 0.5)
	m := mapAllOnOne(in)
	if err := SelectServersRandom(m, rng.New(3)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSelectionCoversExactlyNeededObjects(t *testing.T) {
	in := instance.Generate(instance.Config{NumOps: 25, Alpha: 0.9}, 8)
	res, err := Solve(in, CompGreedy{}, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mapping
	for _, p := range m.AliveProcs() {
		needed := m.NeededObjects(p)
		if len(needed) != len(m.DL[p]) {
			t.Fatalf("proc %d: %d needed objects, %d downloads", p, len(needed), len(m.DL[p]))
		}
	}
}

func TestLinkCapacityForcesSplit(t *testing.T) {
	// One processor needs objects 0 and 1 (5 MB/s each), both held only by
	// server 0, and the server->proc link is 8 MB/s: total 10 > 8 must
	// fail even though the server NIC (10 GB/s) is fine.
	in := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0}, {0}}, []float64{10000}, 0.5)
	in.Platform.ServerLinkMBps = 8
	m := mapAllOnOne(in)
	if err := SelectServersThreeLoop(m); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible from link capacity, got %v", err)
	}
	// With two holders the loads can split across two links.
	in2 := selInstance([]int{0, 1, 0, 1}, 2, [][]int{{0}, {1}}, []float64{10000, 10000}, 0.5)
	in2.Platform.ServerLinkMBps = 8
	m2 := mapAllOnOne(in2)
	if err := SelectServersThreeLoop(m2); err != nil {
		t.Fatal(err)
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
}
