package heuristics

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/mapping"
)

// ObjectGrouping is the paper's object-popularity heuristic: it counts how
// many operators need each basic object ("popularity"), sorts al-operators
// by non-increasing summed popularity of their objects, and packs each new
// most-expensive processor with a seed al-operator, then al-operators
// sharing its objects, then as many other operators as possible.
type ObjectGrouping struct{}

// Name implements Heuristic.
func (ObjectGrouping) Name() string { return "Object-Grouping" }

// Place implements Heuristic.
func (ObjectGrouping) Place(pc *PlaceContext, m *mapping.Mapping, _ *rand.Rand) error {
	in := m.Inst
	pop := pc.popularity(in.Tree, in.NumTypes)

	alOrder := pc.alOperators(in.Tree)
	popSum := func(op int) int {
		s := 0
		var buf [2]int
		for _, k := range in.Tree.LeafObjectsBuf(op, &buf) {
			s += pop[k]
		}
		return s
	}
	slices.SortFunc(alOrder, func(a, b int) int {
		sa, sb := popSum(a), popSum(b)
		if sa != sb {
			return sb - sa
		}
		return a - b
	})
	nonAL := opsByWorkDesc(pc, in)

	// Assignments are monotone across rounds (grouping restores any
	// operator it detaches), so the seed scans below resume where the
	// previous round stopped.
	alStart := 0
	for {
		for alStart < len(alOrder) && m.OpProc(alOrder[alStart]) != mapping.Unassigned {
			alStart++
		}
		if alStart == len(alOrder) {
			break
		}
		seed := alOrder[alStart]
		p := buyMostExpensive(m)
		if err := placeWithGrouping(m, p, seed); err != nil {
			return fmt.Errorf("al-operator %d: %w", seed, err)
		}
		var seedBuf, opBuf [2]int
		seedObjs := in.Tree.LeafObjectsBuf(seed, &seedBuf)
		// Other al-operators requiring the same basic objects, by
		// non-increasing popularity.
		for _, op := range alOrder {
			if m.OpProc(op) != mapping.Unassigned {
				continue
			}
			shares := false
			for _, k := range in.Tree.LeafObjectsBuf(op, &opBuf) {
				for _, sk := range seedObjs {
					if sk == k {
						shares = true
					}
				}
			}
			if shares {
				m.TryPlace(p, op)
			}
		}
		// Then as many non al-operators as possible.
		for _, op := range nonAL {
			if m.OpProc(op) == mapping.Unassigned && !in.Tree.IsAL(op) {
				m.TryPlace(p, op)
			}
		}
	}

	// Any remaining operators (non-al ones that fit nowhere yet): keep
	// buying most-expensive processors and packing by non-increasing w_i.
	start := 0
	for {
		for start < len(nonAL) && m.OpProc(nonAL[start]) != mapping.Unassigned {
			start++
		}
		if start == len(nonAL) {
			return nil
		}
		seed := nonAL[start]
		p := buyMostExpensive(m)
		if err := placeWithGrouping(m, p, seed); err != nil {
			return err
		}
		for _, op := range nonAL[start:] {
			if m.OpProc(op) == mapping.Unassigned {
				m.TryPlace(p, op)
			}
		}
	}
}

// ObjectAvailability is the paper's replication-aware heuristic: object
// types are taken in increasing order of availability av_k (the number of
// servers holding them) and, for each, as many al-operators downloading
// that object as possible are packed onto most-expensive processors; the
// remaining operators are then assigned like Comp-Greedy, by
// non-increasing w_i.
type ObjectAvailability struct{}

// Name implements Heuristic.
func (ObjectAvailability) Name() string { return "Object-Availability" }

// Place implements Heuristic.
func (ObjectAvailability) Place(pc *PlaceContext, m *mapping.Mapping, _ *rand.Rand) error {
	in := m.Inst

	objs := pc.objectSet(in.Tree)
	slices.SortFunc(objs, func(a, b int) int {
		aa, ab := in.Availability(a), in.Availability(b)
		if aa != ab {
			return aa - ab
		}
		return a - b
	})

	needsObj := func(op, k int) bool {
		var buf [2]int
		for _, x := range in.Tree.LeafObjectsBuf(op, &buf) {
			if x == k {
				return true
			}
		}
		return false
	}

	alOps := pc.alOperators(in.Tree)
	pending := pc.pendingBuf()
	for _, k := range objs {
		for {
			// Collect still-unassigned al-operators that download k.
			pending = pending[:0]
			for _, op := range alOps {
				if m.OpProc(op) == mapping.Unassigned && needsObj(op, k) {
					pending = append(pending, op)
				}
			}
			if len(pending) == 0 {
				break
			}
			p := buyMostExpensive(m)
			placedAny := false
			for _, op := range pending {
				if m.TryPlace(p, op) {
					placedAny = true
				}
			}
			if !placedAny {
				// The whole batch failed on a fresh processor; fall back
				// to the grouping technique for the first operator.
				if err := placeWithGrouping(m, p, pending[0]); err != nil {
					return fmt.Errorf("al-operator %d (object %d): %w", pending[0], k, err)
				}
			}
		}
	}
	if pc != nil {
		pc.pending = pending // keep any grown capacity for the next solve
	}

	// Remaining internal operators: Comp-Greedy style.
	order := opsByWorkDesc(pc, in)
	start := 0
	for {
		for start < len(order) && m.OpProc(order[start]) != mapping.Unassigned {
			start++
		}
		if start == len(order) {
			return nil
		}
		seed := order[start]
		// First try to pack onto an existing processor (the one with which
		// the operator communicates most, then any other).
		if p := bestExistingProc(m, seed); p >= 0 && m.TryPlace(p, seed) {
			continue
		}
		p := buyMostExpensive(m)
		if err := placeWithGrouping(m, p, seed); err != nil {
			return err
		}
	}
}

// bestExistingProc returns the alive processor hosting the neighbour of op
// with the largest shared traffic, or -1 when no neighbour is assigned.
func bestExistingProc(m *mapping.Mapping, op int) int {
	var nbBuf [3]neighbour
	for _, nb := range neighbours(m.Inst, op, &nbBuf) {
		if p := m.OpProc(nb.op); p != mapping.Unassigned {
			return p
		}
	}
	return -1
}
